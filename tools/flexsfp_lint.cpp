// flexsfp-lint: static pipeline verification from the command line.
//
// Runs analysis::PipelineVerifier over catalogued deployable designs and
// prints compiler-style diagnostics (or JSON for CI). Exit codes:
//   0  every verified design is acceptable
//   1  lint failure: error-severity diagnostics (or warnings with
//      --fail-on-warning), or an expectation mismatch in
//      --check-expectations mode
//   2  usage error / unknown design / unknown device
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/catalog.hpp"
#include "analysis/diagnostics.hpp"
#include "analysis/verifier.hpp"
#include "apps/register.hpp"
#include "hw/device.hpp"

namespace {

using namespace flexsfp;

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: flexsfp-lint [options]\n"
               "\n"
               "Statically verify FlexSFP pipeline designs: resource fit,\n"
               "line-rate arithmetic, table geometry and pipeline shape --\n"
               "the paper's feasibility verdicts without running the\n"
               "simulator.\n"
               "\n"
               "options:\n"
               "  --list                 list catalogued designs and exit\n"
               "  --list-rules           list the FSL rule catalog and exit\n"
               "  --design <name>        verify one design (repeatable)\n"
               "  --all                  verify every catalogued design\n"
               "                         (default when no --design given)\n"
               "  --device <name>        target device (MPF100T, MPF200T,\n"
               "                         MPF300T, MPF500T; default MPF200T)\n"
               "  --min-frame <bytes>    smallest frame the BPF abstract\n"
               "                         interpreter proves packet loads\n"
               "                         against (default 64)\n"
               "  --json                 machine-readable report on stdout\n"
               "  --fail-on-warning      treat warnings as failures\n"
               "  --check-expectations   fail when a design's verdict\n"
               "                         differs from the catalog's\n"
               "                         expect_feasible flag (CI mode)\n"
               "  -h, --help             this text\n");
}

struct DesignResult {
  const analysis::DeployableDesign* design = nullptr;
  analysis::DiagnosticReport report;
  bool feasible = true;  // no error-severity diagnostics
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> names;
  std::string device_name = "MPF200T";
  std::size_t min_frame_bytes = 64;
  bool list_rules = false;
  bool list_only = false;
  bool all = false;
  bool json = false;
  bool fail_on_warning = false;
  bool check_expectations = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list_only = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--design") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flexsfp-lint: --design needs a name\n");
        return 2;
      }
      names.emplace_back(argv[++i]);
    } else if (arg == "--all") {
      all = true;
    } else if (arg == "--device") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flexsfp-lint: --device needs a name\n");
        return 2;
      }
      device_name = argv[++i];
    } else if (arg == "--min-frame") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flexsfp-lint: --min-frame needs a byte count\n");
        return 2;
      }
      const long parsed = std::strtol(argv[++i], nullptr, 10);
      if (parsed <= 0) {
        std::fprintf(stderr, "flexsfp-lint: --min-frame wants a positive "
                             "byte count, got '%s'\n", argv[i]);
        return 2;
      }
      min_frame_bytes = static_cast<std::size_t>(parsed);
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--fail-on-warning") {
      fail_on_warning = true;
    } else if (arg == "--check-expectations") {
      check_expectations = true;
    } else if (arg == "-h" || arg == "--help") {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "flexsfp-lint: unknown option '%s'\n", arg.c_str());
      usage(stderr);
      return 2;
    }
  }

  if (list_rules) {
    for (const auto& rule : analysis::rule_catalog()) {
      std::printf("%-8s %-8s %s\n", std::string(rule.id).c_str(),
                  analysis::to_string(rule.max_severity).c_str(),
                  std::string(rule.summary).c_str());
    }
    return 0;
  }

  const auto& catalog = analysis::deployable_designs();
  if (list_only) {
    for (const auto& design : catalog) {
      std::printf("%-18s %-10s %s\n", design.name.c_str(),
                  design.expect_feasible ? "feasible" : "infeasible",
                  design.description.c_str());
    }
    return 0;
  }

  const auto device = hw::FpgaDevice::by_name(device_name);
  if (!device) {
    std::fprintf(stderr, "flexsfp-lint: unknown device '%s'\n",
                 device_name.c_str());
    return 2;
  }

  std::vector<const analysis::DeployableDesign*> selected;
  if (names.empty() || all) {
    for (const auto& design : catalog) selected.push_back(&design);
  }
  for (const auto& name : names) {
    const auto* design = analysis::find_design(name);
    if (design == nullptr) {
      std::fprintf(stderr,
                   "flexsfp-lint: unknown design '%s' (--list shows the "
                   "catalog)\n",
                   name.c_str());
      return 2;
    }
    selected.push_back(design);
  }

  apps::register_builtin_apps();
  analysis::VerifierOptions options;
  options.device = *device;
  options.bpf_min_frame_bytes = min_frame_bytes;
  const analysis::PipelineVerifier verifier(options);

  std::vector<DesignResult> results;
  for (const auto* design : selected) {
    DesignResult result;
    result.design = design;
    result.report = verifier.verify(*design->build());
    result.feasible = !result.report.has_errors();
    results.push_back(std::move(result));
  }

  bool failed = false;
  for (const auto& result : results) {
    if (check_expectations) {
      if (result.feasible != result.design->expect_feasible) failed = true;
    } else if (!result.feasible) {
      failed = true;
    }
    if (fail_on_warning && result.report.has_warnings()) failed = true;
  }

  if (json) {
    std::string out = "{\"device\":\"" + analysis::json_escape(device->name()) +
                      "\",\"designs\":[";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const DesignResult& result = results[i];
      if (i != 0) out += ",";
      out += "{\"name\":\"" + analysis::json_escape(result.design->name) +
             "\",\"description\":\"" +
             analysis::json_escape(result.design->description) +
             "\",\"expected_feasible\":" +
             (result.design->expect_feasible ? "true" : "false") +
             ",\"feasible\":" + (result.feasible ? "true" : "false") +
             ",\"report\":" + result.report.to_json() + "}";
    }
    out += "],\"pass\":" + std::string(failed ? "false" : "true") + "}";
    std::printf("%s\n", out.c_str());
  } else {
    for (const DesignResult& result : results) {
      const bool expectation_ok =
          result.feasible == result.design->expect_feasible;
      std::printf("== %s [%s on %s, expected %s]%s\n",
                  result.design->name.c_str(),
                  result.feasible ? "FEASIBLE" : "INFEASIBLE",
                  device->name().c_str(),
                  result.design->expect_feasible ? "feasible" : "infeasible",
                  check_expectations && !expectation_ok
                      ? "  <-- EXPECTATION MISMATCH"
                      : "");
      const std::string text = result.report.to_text();
      std::fputs(text.c_str(), stdout);
      std::printf("\n");
    }
    std::printf("%zu design(s) verified on %s: %s\n", results.size(),
                device->name().c_str(), failed ? "FAIL" : "OK");
  }
  return failed ? 1 : 0;
}
