#!/usr/bin/env python3
"""Perf-regression gate over BENCH_*.json artifacts.

Compares the figures of freshly emitted BENCH_<name>.json files against the
committed baselines in bench/baselines/ and fails (exit 1) when a gated
figure regresses.

Two gate classes, because two kinds of figures travel in the same file:

* strict   — machine-independent figures (allocations/packet, loss rate,
             delivered Gb/s at a fixed offered load, determinism flags).
             These are properties of the code, not the host: any regression
             beyond --tolerance (default 15%) fails everywhere, including CI.
* lenient  — wall-clock figures (events/sec). These move with the host, so
             the gate only trips on a collapse (default: fresh < 50% of
             baseline). Override with BENCH_GATE_RATE_TOLERANCE=<0..1> or
             disable entirely with BENCH_GATE_SKIP_RATE=1 when comparing
             across different machines.

Context figures (e.g. `shards`) must match exactly — a mismatch means the
fresh run used different parameters than the baseline and every other
comparison would be meaningless, so that is an error, not a regression.

Usage:
  tools/bench_gate.py [--baselines bench/baselines] [--fresh .]
                      [--tolerance 0.15] [name ...]

With no names, every BENCH_*.json present in --baselines is gated; a fresh
file missing for a committed baseline is a failure (the bench silently
stopped emitting). Updating a baseline is deliberate: rerun the bench and
copy the new BENCH_<name>.json over bench/baselines/ in the same commit as
the change that moved the number.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import os
import sys

# (figure-name pattern, direction, gate class). First match wins; figures
# matching no pattern are reported as info only.
POLICIES = [
    ("allocs_per_packet*", "higher_is_worse", "strict"),
    ("worst_loss_rate", "higher_is_worse", "strict"),
    ("delivered_gbps_*", "lower_is_worse", "strict"),
    ("determinism_ok", "lower_is_worse", "strict"),
    ("shards", "equal", "context"),
    ("modules", "equal", "context"),
    ("crosspoint_drops*", "higher_is_worse", "strict"),  # deterministic sim
    ("rounds_*", "equal", "context"),  # sync windows are deterministic too
    # Batched dispatch must be observable only as throughput: the bench
    # re-runs its workload at widths {1,8,16} and sets batch_identical to 1
    # iff every merged snapshot is bit-identical. A 0 is a semantics bug.
    ("batch_identical", "lower_is_worse", "strict"),
    ("batch_width", "equal", "context"),
    # RFC 8219 softwire bench: the binary-search throughput is an offered
    # rate in simulated time — a property of the code, not the host — and
    # the ledger/determinism flags are invariants, so all gate strictly.
    ("throughput_gbps_*", "lower_is_worse", "strict"),
    ("ledger_ok", "lower_is_worse", "strict"),
    ("verify_loss_*", "higher_is_worse", "strict"),
    ("pool_heap_fallbacks", "higher_is_worse", "strict"),
    ("subscribers", "equal", "context"),
    ("search_steps", "equal", "context"),
    ("loss_threshold", "equal", "context"),
    ("latency_p*", None, "info"),  # bucketed percentiles: shape, not a gate
    ("pdv_ns_*", None, "info"),
    ("churn_unmappable_drops", None, "info"),
    ("events_per_sec*", "lower_is_worse", "lenient"),
    # Wall-clock ratio, but one the refactor is accountable for: the windowed
    # engine must not be slower than sequential beyond a collapse threshold.
    ("speedup_w4", "lower_is_worse", "lenient"),
    ("speedup_*", None, "info"),  # derived from events/sec: machine-bound
    ("seed_events_per_sec", None, "info"),
    ("wall_seconds*", None, "info"),
    ("events_total", None, "info"),  # informational: legitimately moves
]

# Headroom added on top of the relative tolerance so figures sitting near
# zero (allocs/pkt 0.03, loss 0.0) don't trip the gate on noise.
ABS_EPSILON = 0.02


def policy_for(figure: str):
    for pattern, direction, kind in POLICIES:
        if fnmatch.fnmatch(figure, pattern):
            return direction, kind
    return None, "info"


def load_figures(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    figures = doc.get("figures", {})
    if not isinstance(figures, dict):
        raise ValueError(f"{path}: 'figures' is not an object")
    return {k: v for k, v in figures.items() if isinstance(v, (int, float))}


def gate_bench(name: str, baseline_path: str, fresh_path: str,
               strict_tol: float, rate_tol: float, skip_rate: bool):
    """Returns a list of failure strings for one bench."""
    failures = []
    baseline = load_figures(baseline_path)
    if not os.path.exists(fresh_path):
        return [f"{name}: fresh {fresh_path} missing — did the bench run?"]
    fresh = load_figures(fresh_path)

    print(f"== {name} ==")
    for figure, base in sorted(baseline.items()):
        direction, kind = policy_for(figure)
        if figure not in fresh:
            failures.append(f"{name}: figure '{figure}' vanished from the "
                            f"fresh run")
            continue
        now = fresh[figure]
        delta = (now / base - 1.0) * 100.0 if base != 0 else float("inf")
        line = f"  {figure:30s} base={base:<14.6g} fresh={now:<14.6g}"
        if kind == "info" or direction is None:
            print(line + " (info)")
            continue
        if kind == "context":
            if now != base:
                failures.append(
                    f"{name}: context figure '{figure}' differs "
                    f"({base} vs {now}) — fresh run used different "
                    f"parameters than the baseline")
            else:
                print(line + " (context ok)")
            continue
        if kind == "lenient" and skip_rate:
            print(line + " (rate gate skipped)")
            continue
        tol = rate_tol if kind == "lenient" else strict_tol
        if direction == "higher_is_worse":
            bad = now > base * (1.0 + tol) + ABS_EPSILON
        else:  # lower_is_worse
            bad = now < base * (1.0 - tol) - ABS_EPSILON
        verdict = "REGRESSED" if bad else "ok"
        print(f"{line} {delta:+8.1f}%  [{kind} ±{tol:.0%}] {verdict}")
        if bad:
            failures.append(
                f"{name}: '{figure}' regressed {delta:+.1f}% "
                f"(baseline {base:.6g} -> fresh {now:.6g}, "
                f"{kind} tolerance {tol:.0%})")
    for figure in sorted(set(fresh) - set(baseline)):
        print(f"  {figure:30s} fresh={fresh[figure]:<14.6g} (new, ungated)")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(
        description="fail CI when BENCH_*.json figures regress vs baselines")
    parser.add_argument("--baselines", default="bench/baselines",
                        help="directory of committed BENCH_*.json baselines")
    parser.add_argument("--fresh", default=".",
                        help="directory holding freshly emitted BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="strict-gate relative tolerance (default 0.15)")
    parser.add_argument("names", nargs="*",
                        help="bench names to gate (default: every baseline)")
    args = parser.parse_args()

    rate_tol = float(os.environ.get("BENCH_GATE_RATE_TOLERANCE", "0.5"))
    skip_rate = os.environ.get("BENCH_GATE_SKIP_RATE", "") not in ("", "0")

    if args.names:
        names = args.names
    else:
        names = sorted(
            f[len("BENCH_"):-len(".json")]
            for f in os.listdir(args.baselines)
            if f.startswith("BENCH_") and f.endswith(".json"))
    if not names:
        print(f"bench_gate: no baselines under {args.baselines}",
              file=sys.stderr)
        return 2

    failures = []
    for name in names:
        baseline_path = os.path.join(args.baselines, f"BENCH_{name}.json")
        fresh_path = os.path.join(args.fresh, f"BENCH_{name}.json")
        if not os.path.exists(baseline_path):
            failures.append(f"{name}: no baseline {baseline_path}")
            continue
        try:
            failures += gate_bench(name, baseline_path, fresh_path,
                                   args.tolerance, rate_tol, skip_rate)
        except (ValueError, json.JSONDecodeError) as err:
            failures.append(f"{name}: {err}")

    if failures:
        print("\nbench_gate: FAIL", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nbench_gate: OK ({len(names)} bench(es) within tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
