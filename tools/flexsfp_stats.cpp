// flexsfp-stats: run one ModuleTestbed and render the telemetry spine.
//
// Drives traffic through a FlexSFP module running a registry app and prints
// a top-style per-stage report from the run's obs::MetricRegistry snapshot:
// packets served, utilization, queue drops and high watermark per service
// stage, app verdict counters, and a tail of the per-packet flight
// recording. Exit codes:
//   0  run completed
//   2  usage error / unknown app
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "apps/register.hpp"
#include "fabric/fabric_testbed.hpp"
#include "fabric/parallel_testbed.hpp"
#include "fabric/testbed.hpp"
#include "ppe/registry.hpp"

namespace {

using namespace flexsfp;

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: flexsfp-stats [options]\n"
               "\n"
               "Run traffic through one FlexSFP module and report the\n"
               "unified metric registry per stage -- the in-cable telemetry\n"
               "view of a testbed run.\n"
               "\n"
               "options:\n"
               "  --app <name>         PPE app from the registry (default\n"
               "                       nat; --list-apps shows choices)\n"
               "  --list-apps          list registered apps and exit\n"
               "  --rate <gbps>        offered rate per direction (default 10)\n"
               "  --frame <bytes>      fixed frame size (default 512)\n"
               "  --imix               IMIX sizes instead of fixed frames\n"
               "  --poisson            Poisson arrivals instead of CBR\n"
               "  --duration-us <n>    traffic duration (default 200)\n"
               "  --two-way            drive the optical side too\n"
               "  --seed <n>           traffic seed (default 1)\n"
               "  --sample-every <n>   flight-recorder sampling, 1 = every\n"
               "                       packet, 0 = off (default 16)\n"
               "  --flight <n>         flight-tail rows in the report\n"
               "                       (default 12)\n"
               "  --faults             inject a canned chaos profile on the\n"
               "                       ingress side and print the fault\n"
               "                       ledger (1%% drop, 1e-7 BER, dup,\n"
               "                       reorder, one mid-run flap)\n"
               "  --drop <p>           per-packet random loss probability\n"
               "  --ber <p>            per-bit corruption probability\n"
               "  --dup <p>            per-packet duplication probability\n"
               "  --reorder <p>        bounded-reorder probability\n"
               "  --mgmt-loss <p>      targeted loss of management frames\n"
               "  --flap <start:dur>   link-down window in microseconds\n"
               "                       (repeatable)\n"
               "  --fault-seed <n>     fault-stream seed (default 1)\n"
               "  --pools              run the flow-sharded parallel testbed\n"
               "                       and report per-shard packet-pool\n"
               "                       occupancy and event-queue pressure\n"
               "  --shards <n>         shard count for --pools (default 4)\n"
               "  --workers <n>        worker threads for --pools, 0 = one\n"
               "                       per hardware thread (default 0)\n"
               "  --fabric             run a multi-module crossbar fabric\n"
               "                       (ring topology) and report per-\n"
               "                       crosspoint occupancy/drops and the\n"
               "                       east-west byte matrix\n"
               "  --modules <n>        module count for --fabric (default 3)\n"
               "  --json               machine-readable report on stdout\n"
               "  --csv <metrics|flight>  raw CSV dump on stdout\n"
               "  -h, --help           this text\n");
}

struct StageRow {
  std::string stage;
  std::uint64_t served_packets = 0;
  std::uint64_t served_bytes = 0;
  std::uint64_t busy_ps = 0;
  std::uint64_t queue_drops = 0;
  std::uint64_t watermark = 0;
};

const std::string* label(const obs::MetricSample& sample,
                         std::string_view key) {
  for (const auto& [k, v] : sample.labels) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool parse_u64(const char* text, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(text, &end, 10);
  return end != nullptr && *end == '\0' && end != text;
}

// "start:dur" in microseconds -> a FlapWindow in picoseconds.
bool parse_flap(const char* text, sim::FlapWindow& out) {
  char* end = nullptr;
  const std::uint64_t start_us = std::strtoull(text, &end, 10);
  if (end == text || *end != ':') return false;
  const char* dur_text = end + 1;
  const std::uint64_t dur_us = std::strtoull(dur_text, &end, 10);
  if (end == dur_text || *end != '\0' || dur_us == 0) return false;
  out.start = static_cast<sim::TimePs>(start_us) * 1'000'000;
  out.duration = static_cast<sim::TimePs>(dur_us) * 1'000'000;
  return true;
}

/// Everything one shard's pool.* / sim.queue.* series say about memory
/// pressure, pulled from the shard's already-labeled snapshot.
struct PoolRow {
  std::size_t shard = 0;
  std::uint64_t made = 0;
  std::uint64_t reused = 0;
  std::uint64_t heap_fallbacks = 0;
  std::uint64_t in_use = 0;
  std::uint64_t high_watermark = 0;
  std::uint64_t capacity = 0;
  std::uint64_t queue_peak = 0;
};

PoolRow pool_row(const fabric::ShardOutcome& outcome) {
  PoolRow row;
  row.shard = outcome.shard;
  for (const auto& sample : outcome.metrics.samples()) {
    if (sample.name == "pool.made") row.made = sample.value;
    if (sample.name == "pool.reused") row.reused = sample.value;
    if (sample.name == "pool.heap_fallbacks") row.heap_fallbacks = sample.value;
    if (sample.name == "pool.in_use") row.in_use = sample.value;
    if (sample.name == "pool.high_watermark") row.high_watermark = sample.value;
    if (sample.name == "pool.capacity") row.capacity = sample.value;
    if (sample.name == "sim.queue.pending_high_watermark") {
      row.queue_peak = sample.value;
    }
  }
  return row;
}

void print_pool_row(const char* name, const PoolRow& row) {
  const double reuse_pct =
      row.made > 0 ? 100.0 * double(row.reused) / double(row.made) : 0.0;
  const double occupancy_pct =
      row.capacity > 0 ? 100.0 * double(row.high_watermark) / double(row.capacity)
                       : 0.0;
  std::printf("%-8s %12llu %12llu %7.1f%% %10llu %8llu %8llu %8llu %6.1f%% %8llu\n",
              name, static_cast<unsigned long long>(row.made),
              static_cast<unsigned long long>(row.reused), reuse_pct,
              static_cast<unsigned long long>(row.heap_fallbacks),
              static_cast<unsigned long long>(row.in_use),
              static_cast<unsigned long long>(row.high_watermark),
              static_cast<unsigned long long>(row.capacity), occupancy_pct,
              static_cast<unsigned long long>(row.queue_peak));
}

void print_fault_ledger(const char* port, const sim::FaultTally& tally) {
  std::printf("%-14s %12llu %10llu %10llu %10llu %10llu %10llu %10llu\n",
              port, static_cast<unsigned long long>(tally.delivered),
              static_cast<unsigned long long>(tally.dropped),
              static_cast<unsigned long long>(tally.target_dropped),
              static_cast<unsigned long long>(tally.flap_dropped),
              static_cast<unsigned long long>(tally.corrupted),
              static_cast<unsigned long long>(tally.duplicated),
              static_cast<unsigned long long>(tally.reordered));
}

}  // namespace

int main(int argc, char** argv) {
  std::string app_name = "nat";
  double rate_gbps = 10.0;
  std::uint64_t frame = 512;
  bool imix = false;
  bool poisson = false;
  std::uint64_t duration_us = 200;
  bool two_way = false;
  std::uint64_t seed = 1;
  std::uint64_t sample_every = 16;
  std::uint64_t flight_tail = 12;
  bool list_apps = false;
  bool json = false;
  std::string csv;
  bool faults = false;
  double drop_prob = -1.0;
  double ber = -1.0;
  double dup_prob = -1.0;
  double reorder_prob = -1.0;
  double mgmt_loss = -1.0;
  std::vector<sim::FlapWindow> flaps;
  std::uint64_t fault_seed = 1;
  bool pools = false;
  std::uint64_t shards = 4;
  std::uint64_t workers = 0;
  bool fabric = false;
  std::uint64_t modules = 3;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--app" && has_value) {
      app_name = argv[++i];
    } else if (arg == "--list-apps") {
      list_apps = true;
    } else if (arg == "--rate" && has_value) {
      rate_gbps = std::strtod(argv[++i], nullptr);
    } else if (arg == "--frame" && has_value) {
      if (!parse_u64(argv[++i], frame)) frame = 0;
    } else if (arg == "--imix") {
      imix = true;
    } else if (arg == "--poisson") {
      poisson = true;
    } else if (arg == "--duration-us" && has_value) {
      if (!parse_u64(argv[++i], duration_us)) duration_us = 0;
    } else if (arg == "--two-way") {
      two_way = true;
    } else if (arg == "--seed" && has_value) {
      parse_u64(argv[++i], seed);
    } else if (arg == "--sample-every" && has_value) {
      parse_u64(argv[++i], sample_every);
    } else if (arg == "--flight" && has_value) {
      parse_u64(argv[++i], flight_tail);
    } else if (arg == "--faults") {
      faults = true;
    } else if (arg == "--drop" && has_value) {
      drop_prob = std::strtod(argv[++i], nullptr);
    } else if (arg == "--ber" && has_value) {
      ber = std::strtod(argv[++i], nullptr);
    } else if (arg == "--dup" && has_value) {
      dup_prob = std::strtod(argv[++i], nullptr);
    } else if (arg == "--reorder" && has_value) {
      reorder_prob = std::strtod(argv[++i], nullptr);
    } else if (arg == "--mgmt-loss" && has_value) {
      mgmt_loss = std::strtod(argv[++i], nullptr);
    } else if (arg == "--flap" && has_value) {
      sim::FlapWindow window;
      if (!parse_flap(argv[++i], window)) {
        std::fprintf(stderr,
                     "flexsfp-stats: --flap takes '<start_us>:<dur_us>'\n");
        return 2;
      }
      flaps.push_back(window);
    } else if (arg == "--fault-seed" && has_value) {
      parse_u64(argv[++i], fault_seed);
    } else if (arg == "--pools") {
      pools = true;
    } else if (arg == "--fabric") {
      fabric = true;
    } else if (arg == "--modules" && has_value) {
      if (!parse_u64(argv[++i], modules)) modules = 0;
    } else if (arg == "--shards" && has_value) {
      if (!parse_u64(argv[++i], shards)) shards = 0;
    } else if (arg == "--workers" && has_value) {
      parse_u64(argv[++i], workers);
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--csv" && has_value) {
      csv = argv[++i];
    } else if (arg == "-h" || arg == "--help") {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "flexsfp-stats: unknown option '%s'\n",
                   arg.c_str());
      usage(stderr);
      return 2;
    }
  }
  if (!csv.empty() && csv != "metrics" && csv != "flight") {
    std::fprintf(stderr, "flexsfp-stats: --csv takes 'metrics' or 'flight'\n");
    return 2;
  }
  if (rate_gbps <= 0 || duration_us == 0 || (!imix && frame < 60)) {
    std::fprintf(stderr,
                 "flexsfp-stats: need --rate > 0, --duration-us >= 1 and "
                 "--frame >= 60\n");
    return 2;
  }
  if (pools && shards == 0) {
    std::fprintf(stderr, "flexsfp-stats: --shards must be >= 1\n");
    return 2;
  }
  if (fabric && modules < 2) {
    std::fprintf(stderr, "flexsfp-stats: --modules must be >= 2\n");
    return 2;
  }

  apps::register_builtin_apps();
  const auto& registry = ppe::AppRegistry::instance();
  if (list_apps) {
    for (const auto& name : registry.names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  auto app = registry.create(app_name, net::BytesView{});
  if (app == nullptr) {
    std::fprintf(stderr,
                 "flexsfp-stats: unknown app '%s' (--list-apps shows the "
                 "registry)\n",
                 app_name.c_str());
    return 2;
  }

  fabric::TestbedConfig config;
  config.flight.sample_every = sample_every;
  fabric::TrafficSpec spec;
  spec.rate = sim::DataRate::gbps(rate_gbps);
  spec.arrivals = poisson ? fabric::ArrivalProcess::poisson
                          : fabric::ArrivalProcess::cbr;
  spec.sizes = imix ? fabric::SizeDistribution::imix
                    : fabric::SizeDistribution::fixed;
  spec.fixed_size = static_cast<std::size_t>(frame);
  spec.seed = seed;
  spec.duration = static_cast<sim::TimePs>(duration_us) * 1'000'000;
  config.edge_traffic = spec;
  if (two_way) {
    fabric::TrafficSpec reverse = spec;
    reverse.seed = seed + 1;
    config.optical_traffic = reverse;
  }

  const bool fault_knob_given = drop_prob >= 0 || ber >= 0 || dup_prob >= 0 ||
                                reorder_prob >= 0 || mgmt_loss >= 0 ||
                                !flaps.empty();
  if (faults || fault_knob_given) {
    faults = true;
    sim::FaultSpec fault_spec;
    if (fault_knob_given) {
      if (drop_prob >= 0) fault_spec.drop_prob = drop_prob;
      if (ber >= 0) fault_spec.ber = ber;
      if (dup_prob >= 0) fault_spec.duplicate_prob = dup_prob;
      if (reorder_prob >= 0) fault_spec.reorder_prob = reorder_prob;
      if (mgmt_loss >= 0) fault_spec.target_drop_prob = mgmt_loss;
      fault_spec.flaps = flaps;
    } else {
      // Canned chaos profile: enough of everything to exercise each fault
      // path, plus one link flap covering 10% of the run.
      fault_spec.drop_prob = 0.01;
      fault_spec.ber = 1e-7;
      fault_spec.duplicate_prob = 0.005;
      fault_spec.reorder_prob = 0.005;
      fault_spec.flaps.push_back(
          {spec.duration / 4, spec.duration / 10});
    }
    fault_spec.seed = fault_seed;
    config.edge_faults = fault_spec;
    if (two_way) {
      sim::FaultSpec reverse_faults = fault_spec;
      reverse_faults.seed = fault_seed + 1;
      config.optical_faults = reverse_faults;
    }
  }

  if (fabric) {
    // Multi-module crossbar fabric: ring topology, every module's edge
    // traffic crosses cable -> switch -> cable. The report reads the
    // fabric.xbar.* series: per-crosspoint occupancy high-watermarks and
    // drops, and the east-west byte matrix per output port.
    fabric::Topology topo;
    topo.modules = static_cast<std::size_t>(modules);
    topo.base_seed = seed;
    topo.traffic_prototype = spec;
    topo.flight.sample_every = sample_every;
    if (config.edge_faults) topo.link_faults = config.edge_faults;
    fabric::FabricTestbed bed(topo, [&registry, &app_name] {
      return registry.create(app_name, net::BytesView{});
    });
    const auto run = bed.run();
    const auto& xbar = bed.crossbar();

    if (json) {
      std::string doc = "{\"app\":\"" + app_name +
                        "\",\"modules\":" + std::to_string(modules) +
                        ",\"crosspoints\":[";
      bool first = true;
      for (std::size_t in = 0; in < modules; ++in) {
        for (std::size_t out = 0; out < modules; ++out) {
          if (!first) doc += ",";
          first = false;
          const std::uint64_t drops = run.metrics.value(
              "fabric.xbar.crosspoint_drops{in=" + std::to_string(in) +
              ",out=" + std::to_string(out) + ",xbar=" + xbar.name() + "}");
          doc += "{\"in\":" + std::to_string(in) +
                 ",\"out\":" + std::to_string(out) + ",\"hwm\":" +
                 std::to_string(xbar.crosspoint_high_watermark(in, out)) +
                 ",\"drops\":" + std::to_string(drops) + "}";
        }
      }
      doc += "],\"ledger\":{\"sent\":" + std::to_string(run.ledger.sent) +
             ",\"delivered\":" + std::to_string(run.ledger.delivered) +
             ",\"crosspoint_drops\":" +
             std::to_string(run.ledger.crosspoint_drops) +
             ",\"unrouted\":" + std::to_string(run.ledger.unrouted) +
             ",\"balanced\":" +
             (run.ledger.balanced() ? "true" : "false") +
             "},\"metrics\":" + run.metrics.to_json() + "}";
      std::printf("%s\n", doc.c_str());
      return run.ledger.balanced() ? 0 : 1;
    }

    std::printf("flexsfp-stats: app=%s, %llu-module crossbar fabric, "
                "%.6g us simulated\n\n",
                app_name.c_str(), static_cast<unsigned long long>(modules),
                static_cast<double>(spec.duration) * 1e-6);
    std::printf("%-8s %12s %12s %12s %10s %10s\n", "module", "sent",
                "received", "delivered", "p50 (ns)", "p99 (ns)");
    for (std::size_t i = 0; i < run.modules.size(); ++i) {
      const auto& m = run.modules[i];
      std::printf("%-8zu %12llu %12llu %9.2f Gb %10.1f %10.1f\n", i,
                  static_cast<unsigned long long>(m.sent_packets),
                  static_cast<unsigned long long>(m.received_packets),
                  m.delivered_gbps, m.latency_p50_ns, m.latency_p99_ns);
    }

    // East-west matrix: occupancy high-watermark of every crosspoint (row =
    // input module, column = output port), then per-output forwarded bytes.
    std::printf("\ncrosspoint occupancy high-watermark (in x out):\n%8s", "");
    for (std::size_t out = 0; out < modules; ++out) {
      std::printf(" %8zu", out);
    }
    std::putchar('\n');
    for (std::size_t in = 0; in < modules; ++in) {
      std::printf("%8zu", in);
      for (std::size_t out = 0; out < modules; ++out) {
        std::printf(" %8llu", static_cast<unsigned long long>(
                                  xbar.crosspoint_high_watermark(in, out)));
      }
      std::putchar('\n');
    }
    std::printf("\n%-8s %16s %14s\n", "output", "east-west bytes", "packets");
    for (std::size_t out = 0; out < modules; ++out) {
      std::printf("%-8zu %16llu %14llu\n", out,
                  static_cast<unsigned long long>(xbar.forwarded_bytes(out)),
                  static_cast<unsigned long long>(
                      xbar.forwarded_packets(out)));
    }

    std::printf("\nledger: sent=%llu delivered=%llu crosspoint_drops=%llu "
                "unrouted=%llu fault_dropped=%llu -> %s\n",
                static_cast<unsigned long long>(run.ledger.sent),
                static_cast<unsigned long long>(run.ledger.delivered),
                static_cast<unsigned long long>(run.ledger.crosspoint_drops),
                static_cast<unsigned long long>(run.ledger.unrouted),
                static_cast<unsigned long long>(run.ledger.fault_dropped),
                run.ledger.balanced() ? "balanced" : "UNBALANCED");
    return run.ledger.balanced() ? 0 : 1;
  }

  if (pools) {
    // Per-shard memory-pressure report: one pool per shard simulation, so
    // the pool.* series of each shard's snapshot are that shard's pool.
    fabric::ParallelTestbedConfig parallel_config;
    parallel_config.shards = static_cast<std::size_t>(shards);
    parallel_config.workers = static_cast<unsigned>(workers);
    parallel_config.base_seed = seed;
    parallel_config.prototype = config;
    fabric::ParallelTestbed bed(parallel_config, [&registry, &app_name] {
      return registry.create(app_name, net::BytesView{});
    });
    const auto parallel = bed.run();

    if (json) {
      std::string doc = "{\"app\":\"" + app_name + "\",\"shards\":[";
      for (std::size_t i = 0; i < parallel.shards.size(); ++i) {
        const PoolRow row = pool_row(parallel.shards[i]);
        if (i != 0) doc += ",";
        doc += "{\"shard\":" + std::to_string(row.shard) +
               ",\"made\":" + std::to_string(row.made) +
               ",\"reused\":" + std::to_string(row.reused) +
               ",\"heap_fallbacks\":" + std::to_string(row.heap_fallbacks) +
               ",\"in_use\":" + std::to_string(row.in_use) +
               ",\"high_watermark\":" + std::to_string(row.high_watermark) +
               ",\"capacity\":" + std::to_string(row.capacity) +
               ",\"queue_peak\":" + std::to_string(row.queue_peak) + "}";
      }
      doc += "],\"workers_used\":" + std::to_string(parallel.workers_used) +
             "}";
      std::printf("%s\n", doc.c_str());
      return 0;
    }

    std::printf("flexsfp-stats: app=%s, %zu shard(s) on %u worker(s), "
                "%.6g us simulated per shard\n\n",
                app_name.c_str(), parallel.shards.size(),
                parallel.workers_used,
                static_cast<double>(spec.duration) * 1e-6);
    std::printf("%-8s %12s %12s %8s %10s %8s %8s %8s %7s %8s\n", "shard",
                "made", "reused", "reuse", "fallbacks", "in-use", "peak",
                "cap", "occ", "q-peak");
    PoolRow total;
    for (const auto& outcome : parallel.shards) {
      const PoolRow row = pool_row(outcome);
      print_pool_row(std::to_string(row.shard).c_str(), row);
      total.made += row.made;
      total.reused += row.reused;
      total.heap_fallbacks += row.heap_fallbacks;
      total.in_use += row.in_use;
      total.high_watermark += row.high_watermark;
      total.capacity += row.capacity;
      total.queue_peak = std::max(total.queue_peak, row.queue_peak);
    }
    print_pool_row("all", total);
    std::printf(
        "\npools: heap fallbacks mean a shard outran its pool reserve; "
        "in-use > 0 after a run means packets were retained past the "
        "barrier.\n");
    return 0;
  }

  fabric::ModuleTestbed testbed(std::move(config), std::move(app));
  const auto result = testbed.run();
  const auto& flight = testbed.sim().flight();

  if (json) {
    std::printf("{\"app\":\"%s\",\"duration_ps\":%lld,\"metrics\":%s,"
                "\"flight\":%s}\n",
                app_name.c_str(), static_cast<long long>(result.duration),
                result.metrics.to_json().c_str(), flight.to_json().c_str());
    return 0;
  }
  if (csv == "metrics") {
    std::fputs(result.metrics.to_csv().c_str(), stdout);
    return 0;
  }
  if (csv == "flight") {
    std::fputs(flight.to_csv().c_str(), stdout);
    return 0;
  }

  // --- per-stage report (every server.* series, grouped by stage label) ---
  std::map<std::string, StageRow> stages;
  for (const auto& sample : result.metrics.samples()) {
    const std::string* stage = label(sample, "stage");
    if (stage == nullptr) continue;
    StageRow& row = stages[*stage];
    row.stage = *stage;
    if (sample.name == "server.served.packets") {
      row.served_packets += sample.value;
    } else if (sample.name == "server.served.bytes") {
      row.served_bytes += sample.value;
    } else if (sample.name == "server.busy_ps") {
      row.busy_ps += sample.value;
    } else if (sample.name == "server.queue_drops") {
      row.queue_drops += sample.value;
    } else if (sample.name == "server.queue_high_watermark") {
      row.watermark = std::max(row.watermark, sample.value);
    }
  }
  std::vector<StageRow> rows;
  rows.reserve(stages.size());
  for (auto& [_, row] : stages) rows.push_back(std::move(row));
  std::sort(rows.begin(), rows.end(), [](const StageRow& a, const StageRow& b) {
    if (a.served_packets != b.served_packets) {
      return a.served_packets > b.served_packets;
    }
    return a.stage < b.stage;
  });

  const double duration_ps = static_cast<double>(result.duration);
  std::printf("flexsfp-stats: app=%s, %.6g us simulated\n\n", app_name.c_str(),
              duration_ps * 1e-6);
  std::printf("%-14s %12s %14s %8s %10s %10s\n", "stage", "served", "bytes",
              "util", "q-drops", "q-peak");
  for (const StageRow& row : rows) {
    std::printf("%-14s %12llu %14llu %7.1f%% %10llu %10llu\n",
                row.stage.c_str(),
                static_cast<unsigned long long>(row.served_packets),
                static_cast<unsigned long long>(row.served_bytes),
                duration_ps > 0
                    ? 100.0 * static_cast<double>(row.busy_ps) / duration_ps
                    : 0.0,
                static_cast<unsigned long long>(row.queue_drops),
                static_cast<unsigned long long>(row.watermark));
  }

  std::printf("\n%-24s %12s %12s %12s\n", "app verdicts", "forwarded",
              "app-drops", "punted");
  std::map<std::string, std::array<std::uint64_t, 3>> verdicts;
  for (const auto& sample : result.metrics.samples()) {
    const std::string* app_label = label(sample, "app");
    if (app_label == nullptr) continue;
    auto& row = verdicts[*app_label];
    if (sample.name == "engine.forwarded") row[0] += sample.value;
    if (sample.name == "engine.app_drops") row[1] += sample.value;
    if (sample.name == "engine.punted") row[2] += sample.value;
  }
  for (const auto& [name, row] : verdicts) {
    std::printf("%-24s %12llu %12llu %12llu\n", name.c_str(),
                static_cast<unsigned long long>(row[0]),
                static_cast<unsigned long long>(row[1]),
                static_cast<unsigned long long>(row[2]));
  }

  std::printf("\nedge->optical: sent=%llu received=%llu loss=%.3f%% "
              "p99=%.1fns\n",
              static_cast<unsigned long long>(
                  result.edge_to_optical.sent_packets),
              static_cast<unsigned long long>(
                  result.edge_to_optical.received_packets),
              result.edge_to_optical.loss_rate * 100.0,
              result.edge_to_optical.latency_p99_ns);
  if (two_way) {
    std::printf("optical->edge: sent=%llu received=%llu loss=%.3f%% "
                "p99=%.1fns\n",
                static_cast<unsigned long long>(
                    result.optical_to_edge.sent_packets),
                static_cast<unsigned long long>(
                    result.optical_to_edge.received_packets),
                result.optical_to_edge.loss_rate * 100.0,
                result.optical_to_edge.latency_p99_ns);
  }
  if (faults) {
    std::printf("\n%-14s %12s %10s %10s %10s %10s %10s %10s\n",
                "fault ledger", "delivered", "dropped", "targeted", "flapped",
                "corrupted", "duplicated", "reordered");
    print_fault_ledger("edge", result.edge_fault_tally);
    if (two_way) {
      print_fault_ledger("optical", result.optical_fault_tally);
    }
  }
  std::printf("dark drops=%llu, control punts=%llu, %zu series in snapshot\n",
              static_cast<unsigned long long>(
                  result.metrics.sum("module.dark_drops")),
              static_cast<unsigned long long>(
                  result.metrics.sum("shell.control_punts")),
              result.metrics.size());

  // --- flight tail: the newest sampled stage hops, oldest first ----------
  if (flight_tail > 0 && flight.enabled()) {
    const auto events = flight.events();
    const std::size_t tail =
        std::min<std::size_t>(events.size(), flight_tail);
    std::printf("\nflight recorder: %llu hops recorded, %llu overwritten, "
                "1-in-%llu sampling; last %zu:\n",
                static_cast<unsigned long long>(flight.recorded()),
                static_cast<unsigned long long>(flight.overwritten()),
                static_cast<unsigned long long>(flight.sample_every()), tail);
    std::printf("%12s %14s %-14s %-12s %8s %12s\n", "packet", "time_ps",
                "stage", "hop", "depth", "aux_ps");
    for (std::size_t i = events.size() - tail; i < events.size(); ++i) {
      const auto& event = events[i];
      std::printf("%12llu %14lld %-14s %-12s %8u %12llu\n",
                  static_cast<unsigned long long>(event.packet),
                  static_cast<long long>(event.time_ps),
                  flight.stage_name(event.stage).c_str(),
                  obs::to_string(event.kind).c_str(), event.queue_depth,
                  static_cast<unsigned long long>(event.aux));
    }
  }
  return 0;
}
