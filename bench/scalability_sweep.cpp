// Ablation for §5.3 "Scalability": how datapath width and clock frequency
// take the architecture from the 10G prototype toward 100G, and what that
// costs in fabric and power.
#include <cstdio>

#include "apps/nat.hpp"
#include "bench_util.hpp"
#include "hw/device.hpp"
#include "hw/power_model.hpp"
#include "hw/form_factor.hpp"
#include "hw/resource_model.hpp"

int main() {
  using namespace flexsfp;

  bench::title("Section 5.3 — datapath width x clock scalability sweep");

  std::printf("%-8s %-10s %12s %10s %12s %12s %10s\n", "width", "clock",
              "bus BW", "64B @10G", "64B @25G", "64B @100G", "NAT LUTs");
  bench::rule(82);

  const apps::StaticNat nat;
  struct Point {
    std::uint32_t width;
    double mhz;
  };
  const Point points[] = {{64, 156.25},  {128, 156.25}, {128, 322.265625},
                          {256, 322.265625}, {512, 200},    {512, 322.265625}};
  for (const auto& point : points) {
    const hw::DatapathConfig dp{point.width, hw::ClockDomain::mhz(point.mhz)};
    const auto usage = nat.resource_usage(dp);
    auto yes_no = [&dp](double gbps) {
      return dp.sustains_line_rate(
                 static_cast<std::uint64_t>(gbps * 1e9), 64)
                 ? "yes"
                 : "no";
    };
    std::printf("%5u b %7.2fM %9.1f Gb/s %10s %12s %12s %10llu\n",
                point.width, point.mhz, double(dp.bandwidth_bps()) * 1e-9,
                yes_no(10), yes_no(25), yes_no(100),
                static_cast<unsigned long long>(usage.luts));
  }
  bench::rule(82);

  bench::title(
      "Full-module design points per target line rate (MACs scale with "
      "rate)");
  std::printf("%-8s %-8s %-10s %-10s %10s %10s %12s %-10s\n", "target",
              "width", "clock", "device", "worst util", "module W",
              "SFP+ envl?", "cage");
  bench::rule(88);
  struct Target {
    double gbps;
    std::uint32_t width;
    double mhz;
  };
  const Target targets[] = {{10, 64, 156.25},
                            {25, 128, 200},
                            {40, 256, 161.1328125},
                            {100, 512, 200}};
  for (const auto& target : targets) {
    const hw::DatapathConfig dp{target.width,
                                hw::ClockDomain::mhz(target.mhz)};
    const auto iface = hw::ResourceModel::ethernet_iface_scaled(target.gbps);
    const auto usage = hw::ResourceModel::miv_rv32() + iface + iface +
                       nat.resource_usage(dp);
    // Pick the smallest PolarFire that fits.
    std::string chosen = "none";
    double util = 0;
    double watts = 0;
    for (const auto& device : hw::FpgaDevice::polarfire_family()) {
      if (device.fits(usage)) {
        chosen = device.name();
        util = device.utilization(usage).worst();
        watts =
            hw::PowerModel::flexsfp(device, usage, dp.clock, 1.0).total();
        break;
      }
    }
    const auto cage = hw::smallest_form_factor(watts, target.gbps);
    std::printf("%5.0f G %6u b %7.2fM %-10s %9.1f%% %10.2f W %12s %-10s\n",
                target.gbps, target.width, target.mhz, chosen.c_str(), util,
                watts, watts > 0 && watts <= 3.0 ? "yes" : "NO",
                cage ? cage->name.c_str() : "none");
  }
  bench::rule(88);
  bench::note(
      "the 10G design point is comfortable on the MPF200T; 512-bit datapaths "
      "for 100G demand bigger parts and push power toward (and past) the "
      "SFP+ thermal envelope — exactly the §5.3 constraint triangle "
      "(size/power/thermals), motivating QSFP/OSFP form factors for higher "
      "rates.");
  return 0;
}
