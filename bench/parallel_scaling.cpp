// Flow-sharded parallel testbed scaling: wall-clock speedup of the
// shard-per-thread runner over the sequential oracle, plus the determinism
// self-check (parallel merges must be bit-identical to sequential).
//
// Usage: parallel_scaling [shards] [duration_us]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>

#include "apps/nat.hpp"
#include "bench_util.hpp"
#include "fabric/parallel_testbed.hpp"

namespace {

using namespace flexsfp;
using namespace flexsfp::sim;  // time literals

bool stats_identical(const sim::Stats& a, const sim::Stats& b) {
  return a.sent.packets() == b.sent.packets() &&
         a.sent.bytes() == b.sent.bytes() &&
         a.received.packets() == b.received.packets() &&
         a.received.bytes() == b.received.bytes() &&
         a.latency.count() == b.latency.count() &&
         a.latency.min() == b.latency.min() &&
         a.latency.max() == b.latency.max() &&
         a.latency.percentile(50) == b.latency.percentile(50) &&
         a.latency.percentile(99) == b.latency.percentile(99) &&
         a.latency.mean_ns() == b.latency.mean_ns() &&  // exact: fixed order
         a.queue_drops == b.queue_drops && a.app_drops == b.app_drops &&
         a.dark_drops == b.dark_drops && a.events == b.events;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t shards = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8;
  const auto duration_us =
      argc > 2 ? std::strtoll(argv[2], nullptr, 10) : 20000;
  if (shards == 0 || duration_us <= 0) {
    std::fprintf(stderr,
                 "usage: %s [shards >= 1] [duration_us >= 1]  (got %s %s)\n",
                 argv[0], argc > 1 ? argv[1] : "-", argc > 2 ? argv[2] : "-");
    return 2;
  }

  bench::title("Flow-sharded parallel testbed scaling");
  std::printf("shards=%zu, %lld us of Poisson IMIX @ 9 Gb/s per module, "
              "hardware threads=%u\n\n",
              shards, static_cast<long long>(duration_us),
              std::thread::hardware_concurrency());

  fabric::ParallelTestbedConfig config;
  config.shards = shards;
  config.base_seed = 1;
  fabric::TrafficSpec spec;
  spec.rate = DataRate::gbps(9);
  spec.arrivals = fabric::ArrivalProcess::poisson;
  spec.sizes = fabric::SizeDistribution::imix;
  spec.duration = duration_us * 1_us;
  config.prototype.edge_traffic = spec;

  auto factory = [] { return std::make_unique<apps::StaticNat>(); };

  // Timing is best-of-N (results are bit-identical across repeats, only the
  // wall clock moves), with one discarded warmup to fault in code and data.
  const int repeats = bench::repeats_from_env(3);

  config.workers = 1;
  fabric::ParallelTestbed sequential_bed(config, factory);
  (void)sequential_bed.run_sequential();  // warmup
  auto oracle = sequential_bed.run_sequential();
  for (int rep = 1; rep < repeats; ++rep) {
    auto again = sequential_bed.run_sequential();
    if (again.wall_seconds < oracle.wall_seconds) oracle = std::move(again);
  }

  std::printf("%-10s %12s %10s %14s %12s\n", "workers", "wall (s)", "speedup",
              "events/s", "identical?");
  bench::rule(64);
  std::printf("%-10s %12.3f %10s %14.3g %12s\n", "1 (seq)",
              oracle.wall_seconds, "1.00x",
              double(oracle.combined.events) / oracle.wall_seconds, "oracle");

  bool all_identical = true;
  bench::Figures figures{
      {"shards", double(shards)},
      {"wall_seconds_seq", oracle.wall_seconds},
      {"events_per_sec_seq",
       double(oracle.combined.events) / oracle.wall_seconds}};
  for (unsigned workers : {2u, 4u, 8u}) {
    if (workers > shards) break;
    config.workers = workers;
    fabric::ParallelTestbed bed(config, factory);
    auto run = bed.run();
    for (int rep = 1; rep < repeats; ++rep) {
      auto again = bed.run();
      if (again.wall_seconds < run.wall_seconds) run = std::move(again);
    }
    // The determinism self-check covers the whole telemetry spine: merged
    // registry snapshots must be bit-identical too, not just sim::Stats.
    const bool same = stats_identical(run.combined, oracle.combined) &&
                      run.combined_counters == oracle.combined_counters &&
                      run.combined_metrics == oracle.combined_metrics;
    all_identical = all_identical && same;
    figures.emplace_back("speedup_w" + std::to_string(workers),
                         oracle.wall_seconds / run.wall_seconds);
    figures.emplace_back("events_per_sec_w" + std::to_string(workers),
                         double(run.combined.events) / run.wall_seconds);
    std::printf("%-10u %12.3f %9.2fx %14.3g %12s\n", workers,
                run.wall_seconds, oracle.wall_seconds / run.wall_seconds,
                double(run.combined.events) / run.wall_seconds,
                same ? "yes" : "NO");
  }
  bench::rule(64);

  std::printf(
      "\ncombined: sent=%llu received=%llu drops=%llu p50=%.1fns "
      "p99=%.1fns events=%llu\n",
      static_cast<unsigned long long>(oracle.combined.sent.packets()),
      static_cast<unsigned long long>(oracle.combined.received.packets()),
      static_cast<unsigned long long>(oracle.combined.total_drops()),
      to_nanos(oracle.combined.latency.percentile(50)),
      to_nanos(oracle.combined.latency.percentile(99)),
      static_cast<unsigned long long>(oracle.combined.events));

  figures.emplace_back("events_total", double(oracle.combined.events));
  figures.emplace_back("determinism_ok", all_identical ? 1.0 : 0.0);
  bench::write_bench_json("parallel_scaling", oracle.combined_metrics,
                          figures);

  if (std::thread::hardware_concurrency() < 2) {
    bench::note(
        "single hardware thread: speedup is not expected here; the "
        "determinism check is the meaningful result.");
  } else {
    bench::note(
        "speedup tracks min(workers, cores, shards); shards share no state, "
        "so scaling is limited only by the merge barrier — the paper's "
        "one-module-per-port cheap-path argument in wall-clock form.");
  }

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: parallel run diverged from the sequential oracle\n");
    return 1;
  }
  std::printf("determinism self-check: PASS (all worker counts bit-identical "
              "to sequential)\n");
  return 0;
}
