// RFC 2544/8219-style benchmark of the lw4o6 softwire AFTR: binary-search
// the highest offered rate whose loss stays under a configurable threshold,
// with bidirectional traffic (IPv4 downstream from the internet side,
// pre-encapsulated IPv6 upstream from the subscriber B4s), Zipf subscriber
// popularity, latency percentiles and PDV from the sink histograms, plus a
// churn trial (fault injector + lease expire/re-add + out-of-set ports)
// closed by the zero-black-hole ledger.
//
// The run is subscriber-sharded across 4 independent ModuleTestbeds merged
// by shard index, so the reported figures are bit-identical at any worker
// count — the determinism audit below re-runs the 64-byte search twice and
// at workers {1, 2, 4} and gates on equality.
//
// Usage: rfc8219_softwire [subscribers] [trial_us] [workers]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "apps/softwire.hpp"
#include "bench_util.hpp"
#include "fabric/testbed.hpp"
#include "net/builder.hpp"
#include "net/bytes.hpp"
#include "sim/parallel.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace {

using namespace flexsfp;

constexpr std::size_t kShards = 4;
constexpr int kSearchSteps = 7;       // 10 Gb/s / 2^7 ~ 0.08 Gb/s resolution
constexpr double kLossThreshold = 0.001;  // RFC 8219 acceptable-loss knob
// RFC 7597's default-style layout: a = 6 excluded bits, k = 6 PSID bits,
// m = 4 -> 64 subscribers per shared IPv4, 1008 ports each.
constexpr apps::PsidParams kParams{6, 6};
constexpr std::uint16_t kPsidsPerAddr = 64;

const net::Ipv6Address aftr_addr() {
  return *net::Ipv6Address::parse("2001:db8:ffff::1");
}
net::Ipv4Address subscriber_ipv4(std::size_t global) {
  // 198.18.0.0/15 is the RFC 2544 benchmarking block.
  return net::Ipv4Address{net::Ipv4Address::from_octets(198, 18, 0, 0).value() +
                          static_cast<std::uint32_t>(global / kPsidsPerAddr)};
}
std::uint16_t subscriber_psid(std::size_t global) {
  return static_cast<std::uint16_t>(global % kPsidsPerAddr);
}
net::Ipv6Address subscriber_b4(std::size_t global) {
  return net::Ipv6Address::from_u64_pair(0x20010db8'00000000ull,
                                         static_cast<std::uint64_t>(global) + 1);
}

struct TrialSpec {
  std::size_t subscribers = 8192;
  double rate_gbps = 10.0;       // offered per direction
  std::size_t frame_size = 64;   // IPv4 frame; the v6 side carries +40
  sim::TimePs duration = 200'000'000;  // 200 us
  unsigned workers = 2;
  bool churn = false;            // faults + lease churn + out-of-set ports
  bool collect_metrics = false;
};

struct ShardStats {
  std::uint64_t sent_down = 0, recv_down = 0;
  std::uint64_t sent_up = 0, recv_up = 0;
  std::uint64_t injector_drops = 0;
  std::uint64_t queue_drops = 0;
  std::uint64_t app_drops = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t pool_heap_fallbacks = 0;
  std::uint64_t unmappable = 0;
  std::uint64_t antispoof = 0;
  sim::LatencyHistogram lat_down;  // measured at the optical-side sink
  sim::LatencyHistogram lat_up;    // measured at the edge-side sink
  obs::MetricSnapshot metrics;
};

struct TrialResult {
  ShardStats total;  // shards merged in index order
  [[nodiscard]] double worst_loss() const {
    const auto loss = [](std::uint64_t sent, std::uint64_t recv) {
      return sent > 0 ? 1.0 - double(recv) / double(sent) : 0.0;
    };
    return std::max(loss(total.sent_down, total.recv_down),
                    loss(total.sent_up, total.recv_up));
  }
  [[nodiscard]] bool ledger_closes() const {
    // Zero black holes: every emitted packet is delivered or accounted to a
    // named drop point (injector, engine ingress FIFO, app verdict).
    // Injector duplicates mint extra deliverable packets, so they join the
    // sent side of the balance.
    return total.sent_down + total.sent_up + total.duplicated ==
           total.recv_down + total.recv_up + total.injector_drops +
               total.queue_drops + total.app_drops;
  }
};

/// Steady-state CBR emitter: copies a per-subscriber template into a pooled
/// packet, patches the A+P port, and re-arms itself one serialization slot
/// later — the same pacing discipline as fabric::TrafficGen, with the
/// subscriber chosen by Zipf popularity.
struct Emitter {
  sim::Simulation* sim = nullptr;
  sim::PacketHandler* out = nullptr;
  const std::vector<net::Bytes>* templates = nullptr;
  const std::vector<std::uint16_t>* psids = nullptr;
  sim::ZipfDistribution* zipf = nullptr;
  sim::Rng rng{1};
  std::size_t port_offset = 0;  // where the patched port lives in the frame
  sim::TimePs gap = 0;
  sim::TimePs stop_at = 0;
  std::uint64_t sent = 0;
  /// churn only: one emit in 16 uses a port from the excluded system range,
  /// provoking the unmappable/anti-spoof drop paths (port-set exhaustion).
  bool inject_out_of_set = false;

  void emit() {
    if (sim->now() >= stop_at) return;
    const std::size_t j = zipf->sample(rng) - 1;
    net::PacketPtr packet = sim->packet_pool().make();
    packet->data() = (*templates)[j];
    std::uint16_t port;
    if (inject_out_of_set && rng.uniform(0, 15) == 0) {
      port = static_cast<std::uint16_t>(rng.uniform(1, 1023));  // excluded
    } else {
      port = apps::port_for_index(
          kParams, (*psids)[j],
          static_cast<std::uint32_t>(
              rng.uniform(0, apps::port_set_size(kParams) - 1)));
    }
    net::write_be16(packet->data(), port_offset, port);
    packet->set_id(sim->next_packet_id());
    packet->set_created_time_ps(sim->now());
    ++sent;
    out->handle_packet(std::move(packet));
    sim->schedule_in(gap, [this] { emit(); });
  }
};

ShardStats run_shard(const TrialSpec& spec, std::size_t shard) {
  const std::size_t per_shard = spec.subscribers / kShards;
  const std::size_t base = shard * per_shard;

  fabric::TestbedConfig config;
  if (spec.churn) {
    sim::FaultSpec faults;
    faults.drop_prob = 0.01;
    faults.duplicate_prob = 0.002;
    faults.reorder_prob = 0.02;
    faults.seed = sim::derive_stream_seed(8219, shard);
    config.edge_faults = faults;
  }

  apps::LwAftrConfig aftr_config;
  aftr_config.aftr_addr = aftr_addr();
  aftr_config.icmp_src = net::Ipv4Address::from_octets(192, 0, 2, 254);
  aftr_config.binding_capacity =
      static_cast<std::uint32_t>(per_shard * 2);  // 0.5 load factor
  aftr_config.miss_action = apps::SoftwireMissAction::drop;
  auto app = std::make_unique<apps::LwAftr>(aftr_config);
  apps::LwAftr* aftr = app.get();
  for (std::size_t j = 0; j < per_shard; ++j) {
    const std::size_t g = base + j;
    if (!aftr->add_binding(subscriber_ipv4(g), subscriber_psid(g), kParams,
                           subscriber_b4(g))) {
      std::fprintf(stderr, "rfc8219: binding %zu failed\n", g);
      std::exit(1);
    }
  }
  fabric::ModuleTestbed tb(std::move(config), std::move(app));

  // Per-subscriber frame templates, both directions, built once at setup.
  // UDP checksums are zeroed (legal over IPv4) so the per-emit port patch
  // needs no checksum fixup.
  const net::MacAddress core_mac = net::MacAddress::from_u64(0x02000000aa01);
  const net::MacAddress aftr_mac = net::MacAddress::from_u64(0x02000000aa02);
  const net::Ipv4Address remote = net::Ipv4Address::from_octets(192, 0, 2, 1);
  std::vector<net::Bytes> down(per_shard), up(per_shard);
  std::vector<std::uint16_t> psids(per_shard);
  net::PacketBuilder builder;
  for (std::size_t j = 0; j < per_shard; ++j) {
    const std::size_t g = base + j;
    psids[j] = subscriber_psid(g);
    const std::uint16_t port = apps::port_for_index(kParams, psids[j], 0);
    builder.reset();
    builder.ethernet(aftr_mac, core_mac)
        .ipv4(remote, subscriber_ipv4(g), net::IpProto::udp)
        .udp(9999, port)
        .min_frame_size(spec.frame_size)
        .payload_size(spec.frame_size > 42 ? spec.frame_size - 42 : 0);
    down[j] = builder.build();
    net::write_be16(down[j], 14 + 20 + 6, 0);  // UDP checksum off

    builder.reset();
    builder.ethernet(aftr_mac, core_mac)
        .ipv4(subscriber_ipv4(g), remote, net::IpProto::udp)
        .udp(port, 9999)
        .min_frame_size(spec.frame_size)
        .payload_size(spec.frame_size > 42 ? spec.frame_size - 42 : 0);
    up[j] = builder.build();
    net::write_be16(up[j], 14 + 20 + 6, 0);
    if (!net::encapsulate_ipv4_in_ipv6(up[j], subscriber_b4(g), aftr_addr())) {
      std::fprintf(stderr, "rfc8219: template encap failed\n");
      std::exit(1);
    }
  }

  const sim::DataRate rate = sim::DataRate::gbps(spec.rate_gbps);
  sim::ZipfDistribution zipf_down(per_shard, 1.0), zipf_up(per_shard, 1.0);

  Emitter down_emit, up_emit;
  down_emit.sim = &tb.sim();
  down_emit.templates = &down;
  down_emit.psids = &psids;
  down_emit.zipf = &zipf_down;
  down_emit.rng = sim::Rng::for_stream(1001, shard);
  down_emit.port_offset = 14 + 20 + 2;  // UDP destination port
  down_emit.gap = rate.serialization_time(spec.frame_size + 24);
  down_emit.stop_at = spec.duration;
  down_emit.inject_out_of_set = spec.churn;
  sim::LambdaHandler edge_in([&tb](net::PacketPtr p) {
    tb.module().inject(sfp::FlexSfpModule::edge_port, std::move(p));
  });
  down_emit.out = tb.edge_faults() != nullptr
                      ? static_cast<sim::PacketHandler*>(tb.edge_faults())
                      : &edge_in;

  up_emit.sim = &tb.sim();
  up_emit.templates = &up;
  up_emit.psids = &psids;
  up_emit.zipf = &zipf_up;
  up_emit.rng = sim::Rng::for_stream(2002, shard);
  up_emit.port_offset = 14 + 40 + 20;  // inner UDP source port
  up_emit.gap = rate.serialization_time(spec.frame_size + 40 + 24);
  up_emit.stop_at = spec.duration;
  up_emit.inject_out_of_set = spec.churn;
  sim::LambdaHandler optical_in([&tb](net::PacketPtr p) {
    tb.module().inject(sfp::FlexSfpModule::optical_port, std::move(p));
  });
  up_emit.out = &optical_in;

  tb.sim().schedule_at(0, [&down_emit] { down_emit.emit(); });
  tb.sim().schedule_at(0, [&up_emit] { up_emit.emit(); });

  if (spec.churn) {
    // Lease churn riding on live traffic: every eighth of the run, one in
    // seven subscribers loses its binding (downstream turns unmappable) and
    // gets it back half a window later — insert/expire/re-add under fire.
    const sim::TimePs window = spec.duration / 8;
    for (int tick = 0; tick < 8; ++tick) {
      tb.sim().schedule_at(tick * window, [aftr, base, per_shard, tick] {
        for (std::size_t j = tick % 7; j < per_shard; j += 7) {
          const std::size_t g = base + j;
          (void)aftr->remove_binding(subscriber_ipv4(g), subscriber_psid(g));
        }
      });
      tb.sim().schedule_at(tick * window + window / 2,
                           [aftr, base, per_shard, tick] {
        for (std::size_t j = tick % 7; j < per_shard; j += 7) {
          const std::size_t g = base + j;
          (void)aftr->add_binding(subscriber_ipv4(g), subscriber_psid(g),
                                  kParams, subscriber_b4(g));
        }
      });
    }
  }

  const fabric::TestbedResult result = tb.run();

  ShardStats out;
  out.sent_down = down_emit.sent;
  out.sent_up = up_emit.sent;
  out.recv_down = tb.optical_sink().received().packets();
  out.recv_up = tb.edge_sink().received().packets();
  out.queue_drops = result.ppe_queue_drops;
  out.app_drops = result.app_drops;
  out.injector_drops = result.edge_fault_tally.total_dropped();
  out.duplicated = result.edge_fault_tally.duplicated;
  out.pool_heap_fallbacks = tb.sim().packet_pool().stats().heap_fallbacks;
  out.unmappable = aftr->stat_packets(apps::LwAftr::stat_unmappable_v4);
  out.antispoof = aftr->stat_packets(apps::LwAftr::stat_antispoof_dropped);
  out.lat_down = tb.optical_sink().latency();
  out.lat_up = tb.edge_sink().latency();
  if (spec.collect_metrics) {
    out.metrics = result.metrics.with_label("shard", std::to_string(shard));
  }
  return out;
}

TrialResult run_trial(const TrialSpec& spec) {
  std::vector<ShardStats> shards(kShards);
  sim::parallel_for_each_shard(kShards, spec.workers, [&](std::size_t shard) {
    shards[shard] = run_shard(spec, shard);
  });
  TrialResult result;
  for (const ShardStats& s : shards) {  // fixed order: bit-identical merge
    result.total.sent_down += s.sent_down;
    result.total.recv_down += s.recv_down;
    result.total.sent_up += s.sent_up;
    result.total.recv_up += s.recv_up;
    result.total.injector_drops += s.injector_drops;
    result.total.queue_drops += s.queue_drops;
    result.total.app_drops += s.app_drops;
    result.total.duplicated += s.duplicated;
    result.total.pool_heap_fallbacks += s.pool_heap_fallbacks;
    result.total.unmappable += s.unmappable;
    result.total.antispoof += s.antispoof;
    result.total.lat_down.merge(s.lat_down);
    result.total.lat_up.merge(s.lat_up);
    result.total.metrics.merge(s.metrics);
  }
  return result;
}

/// RFC 2544 §26.1 binary search: halve the [passing, failing] rate bracket
/// a fixed number of steps, report the highest passing offered rate. A
/// fixed step count (not convergence-to-epsilon) keeps the trial sequence —
/// and therefore the figure — identical across runs and worker counts.
double search_throughput(TrialSpec spec, const char* label) {
  double lo = 0.0, hi = spec.rate_gbps;
  double best = 0.0;
  for (int step = 0; step < kSearchSteps; ++step) {
    const double mid = (lo + hi) / 2.0;
    spec.rate_gbps = mid;
    const TrialResult trial = run_trial(spec);
    const double loss = trial.worst_loss();
    const bool pass = loss <= kLossThreshold;
    std::printf("  %-14s step %d: %6.3f Gb/s -> loss %.5f %s\n", label,
                step + 1, mid, loss, pass ? "PASS" : "FAIL");
    if (pass) {
      best = mid;
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flexsfp;

  TrialSpec spec;
  if (argc > 1) spec.subscribers = std::strtoull(argv[1], nullptr, 10);
  sim::TimePs trial_us = 200;
  if (argc > 2) trial_us = std::strtoll(argv[2], nullptr, 10);
  spec.duration = trial_us * 1'000'000;
  if (argc > 3) spec.workers = unsigned(std::strtoul(argv[3], nullptr, 10));
  if (spec.subscribers < kShards * kPsidsPerAddr) {
    spec.subscribers = kShards * kPsidsPerAddr;
  }
  spec.subscribers -= spec.subscribers % kShards;

  bench::title("RFC 8219 softwire benchmark — lw4o6 AFTR, " +
               std::to_string(spec.subscribers) + " subscribers, " +
               std::to_string(kShards) + " shards");

  bench::Figures figures;

  // --- binary-search throughput, 64 B and 1518 B IPv4 frames --------------
  spec.frame_size = 64;
  const double r64 = search_throughput(spec, "64B");
  spec.frame_size = 1518;
  const double r1518 = search_throughput(spec, "1518B");
  std::printf("throughput: %.3f Gb/s @ 64B, %.3f Gb/s @ 1518B (loss <= %g)\n",
              r64, r1518, kLossThreshold);

  // --- determinism audit: re-run + worker sweep must reproduce exactly ----
  spec.frame_size = 64;
  bool determinism_ok = search_throughput(spec, "64B rerun") == r64;
  for (const unsigned workers : {1u, 2u, 4u}) {
    TrialSpec wspec = spec;
    wspec.workers = workers;
    determinism_ok =
        determinism_ok &&
        search_throughput(wspec, ("64B w" + std::to_string(workers)).c_str()) ==
            r64;
  }
  std::printf("determinism: search figure %s across reruns and workers "
              "{1,2,4}\n",
              determinism_ok ? "identical" : "DIVERGED");

  // --- verification trial at the found rate: latency + PDV ----------------
  TrialSpec verify = spec;
  verify.rate_gbps = r64 > 0 ? r64 : 1.0;
  verify.collect_metrics = true;
  const TrialResult vr = run_trial(verify);
  // percentile() reports the containing bucket's representative value, which
  // can undershoot the exact min by a sub-bucket amount — clamp PDV at 0.
  const double pdv_down = std::max(
      0.0, sim::to_nanos(vr.total.lat_down.percentile(99.9) -
                         vr.total.lat_down.min()));
  const double pdv_up = std::max(
      0.0,
      sim::to_nanos(vr.total.lat_up.percentile(99.9) - vr.total.lat_up.min()));
  std::printf(
      "at %.3f Gb/s: down p50 %.1f ns p99 %.1f ns PDV %.1f ns | up p50 %.1f "
      "ns p99 %.1f ns PDV %.1f ns\n",
      verify.rate_gbps, sim::to_nanos(vr.total.lat_down.percentile(50)),
      sim::to_nanos(vr.total.lat_down.percentile(99)), pdv_down,
      sim::to_nanos(vr.total.lat_up.percentile(50)),
      sim::to_nanos(vr.total.lat_up.percentile(99)), pdv_up);

  // --- churn trial: faults + lease expire/re-add + out-of-set ports -------
  TrialSpec churn = spec;
  churn.rate_gbps = (r64 > 0 ? r64 : 1.0) * 0.8;
  churn.churn = true;
  const TrialResult cr = run_trial(churn);
  const bool ledger_ok = cr.ledger_closes();
  std::printf(
      "churn @ %.3f Gb/s: sent %llu+%llu dup %llu, recv %llu+%llu, injector "
      "%llu, queue %llu, app %llu (unmappable %llu, antispoof %llu) -> "
      "ledger %s; pool heap fallbacks %llu\n",
      churn.rate_gbps, (unsigned long long)cr.total.sent_down,
      (unsigned long long)cr.total.sent_up,
      (unsigned long long)cr.total.duplicated,
      (unsigned long long)cr.total.recv_down,
      (unsigned long long)cr.total.recv_up,
      (unsigned long long)cr.total.injector_drops,
      (unsigned long long)cr.total.queue_drops,
      (unsigned long long)cr.total.app_drops,
      (unsigned long long)cr.total.unmappable,
      (unsigned long long)cr.total.antispoof, ledger_ok ? "CLOSED" : "LEAKED",
      (unsigned long long)cr.total.pool_heap_fallbacks);

  figures.emplace_back("throughput_gbps_64", r64);
  figures.emplace_back("throughput_gbps_1518", r1518);
  figures.emplace_back("determinism_ok", determinism_ok ? 1.0 : 0.0);
  figures.emplace_back("ledger_ok", ledger_ok ? 1.0 : 0.0);
  figures.emplace_back("verify_loss_64", vr.worst_loss());
  figures.emplace_back("latency_p50_ns_down",
                       sim::to_nanos(vr.total.lat_down.percentile(50)));
  figures.emplace_back("latency_p99_ns_down",
                       sim::to_nanos(vr.total.lat_down.percentile(99)));
  figures.emplace_back("pdv_ns_down", pdv_down);
  figures.emplace_back("latency_p50_ns_up",
                       sim::to_nanos(vr.total.lat_up.percentile(50)));
  figures.emplace_back("latency_p99_ns_up",
                       sim::to_nanos(vr.total.lat_up.percentile(99)));
  figures.emplace_back("pdv_ns_up", pdv_up);
  figures.emplace_back("churn_unmappable_drops", double(cr.total.unmappable));
  figures.emplace_back("pool_heap_fallbacks",
                       double(cr.total.pool_heap_fallbacks));
  figures.emplace_back("subscribers", double(spec.subscribers));
  figures.emplace_back("shards", double(kShards));
  figures.emplace_back("search_steps", double(kSearchSteps));
  figures.emplace_back("loss_threshold", kLossThreshold);
  bench::write_bench_json("rfc8219", vr.total.metrics, figures);
  bench::note(
      "binary-search throughput per RFC 2544 §26 with RFC 8219's "
      "encapsulation-aware frame sizes; PDV = p99.9 - min per RFC 5481. The "
      "figure is the offered rate, so it is exact across reruns and worker "
      "counts by construction of the sharded merge.");
  return (determinism_ok && ledger_ok) ? 0 : 1;
}
