// Reproduces Table 3: "Raw and ideal-scaled cost/power (per 10 Gb/s)" plus
// the §5.2 bill-of-materials breakdown behind the FlexSFP row.
#include <cstdio>

#include "bench_util.hpp"
#include "hw/cost_model.hpp"

int main() {
  using namespace flexsfp;

  bench::title("FlexSFP prototype bill of materials (Section 5.2)");
  std::printf("%-44s %12s\n", "Component", "unit cost");
  bench::rule(58);
  for (const auto& item : hw::flexsfp_bom()) {
    std::printf("%-44s %12s\n", item.name.c_str(),
                item.unit_cost.to_string().c_str());
  }
  bench::rule(58);
  std::printf("%-44s %12s\n", "Direct production cost",
              hw::flexsfp_unit_cost().to_string().c_str());
  std::printf("paper: \"around $300 per unit, with potential reductions "
              "toward $250\"\n");

  bench::title("Table 3 — raw and ideal-scaled cost/power per 10 Gb/s");
  std::printf("%-22s %12s %8s %12s %8s\n", "Solution", "Raw $", "Raw W",
              "$/10G", "W/10G");
  bench::rule(70);
  for (const auto& platform : hw::table3_platforms()) {
    char watts[24];
    if (platform.raw_power_lo_w == platform.raw_power_hi_w) {
      std::snprintf(watts, sizeof watts, "%.1f", platform.raw_power_lo_w);
    } else {
      std::snprintf(watts, sizeof watts, "%.0f-%.0f", platform.raw_power_lo_w,
                    platform.raw_power_hi_w);
    }
    char w10[24];
    if (platform.power_per_10g_lo() == platform.power_per_10g_hi()) {
      std::snprintf(w10, sizeof w10, "%.1f", platform.power_per_10g_lo());
    } else {
      std::snprintf(w10, sizeof w10, "%.0f-%.0f", platform.power_per_10g_lo(),
                    platform.power_per_10g_hi());
    }
    std::printf("%-22s %12s %8s %12s %8s\n", platform.name.c_str(),
                platform.raw_cost.to_string().c_str(), watts,
                platform.cost_per_10g().to_string().c_str(), w10);
  }
  bench::rule(70);
  std::printf("paper: DPU 300-400 / 15; many-core 100-150 / 5; FPGA 200-400 "
              "/ 7-10; FlexSFP 250-300 / 1.5\n");
  bench::note(
      "ideal scaling divides raw cost/power by the cited card's aggregate "
      "throughput (HotNets'23 fair-comparison rule). FlexSFP: ~2/3 CAPEX "
      "saving vs the DPU and an order-of-magnitude power reduction.");
  return 0;
}
