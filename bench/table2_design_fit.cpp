// Reproduces Table 2: "FPGA resource usage of key designs; logic normalized
// to 4-input LE equivalents, BRAM in kbit" — and the fit-or-not verdicts the
// paper draws from it.
#include <cstdio>

#include "bench_util.hpp"
#include "hw/design_catalog.hpp"

int main() {
  using namespace flexsfp;
  bench::title("Table 2 — FPGA resource usage of key designs vs FlexSFP");

  const auto device = hw::FpgaDevice::mpf200t();

  std::printf("%-22s %14s %14s %12s %8s\n", "Use case", "raw logic",
              "logic (~LE)", "BRAM (kbit)", "fits?");
  bench::rule(76);
  for (const auto& design : hw::table2_designs()) {
    const char* unit = design.unit == hw::LogicUnit::lut6  ? "LUT6"
                       : design.unit == hw::LogicUnit::alm ? "ALM"
                                                           : "LE";
    const auto verdict = hw::check_fit(design, device);
    char raw[32];
    std::snprintf(raw, sizeof raw, "%llu %s",
                  static_cast<unsigned long long>(design.logic_count), unit);
    std::printf("%-22s %14s %11lluk %12llu %8s\n", design.name.c_str(), raw,
                static_cast<unsigned long long>(
                    (design.logic_le_equivalent() + 500) / 1000),
                static_cast<unsigned long long>(design.bram_kbits),
                verdict.fits() ? "yes"
                : verdict.logic_fits
                    ? "no (BRAM)"
                    : (verdict.bram_fits ? "no (logic)" : "no"));
  }
  bench::rule(76);
  std::printf("%-22s %14s %11lluk %12llu %8s\n", "FlexSFP (MPF200T)",
              "capacity",
              static_cast<unsigned long long>(
                  (device.capacity().luts + 500) / 1000),
              static_cast<unsigned long long>(
                  device.capacity().total_sram_kbits()),
              "-");
  std::printf("\npaper: FlowBlaze ~115k LE / 14,148 kbit; Pigasus ~416k / "
              "64,400;\n       hXDP ~109k / 1,799; ClickNP ~388k / 39,161; "
              "MPF200T 192k LE / 13,300 kbit\n");
  bench::note(
      "conversions per the paper's footnotes: 1 LUT6 ~ 1.6 LE, 1 ALM ~ 2 LE. "
      "hXDP (single core) is the only design that fits the MPF200T, matching "
      "the paper's order-of-magnitude viability argument.");
  return 0;
}
