// google-benchmark microbenchmarks over the library's hot paths: the
// per-packet primitives a PPE application is composed of. These measure the
// *simulator's* software speed (useful for keeping experiments fast), not
// the modeled hardware throughput.
#include <benchmark/benchmark.h>

#include "apps/acl.hpp"
#include "apps/load_balancer.hpp"
#include "apps/nat.hpp"
#include "net/builder.hpp"
#include "net/checksum.hpp"
#include "net/parser.hpp"
#include "ppe/tables.hpp"
#include "sim/random.hpp"

namespace {

using namespace flexsfp;

net::Bytes sample_frame(std::size_t payload) {
  return net::PacketBuilder()
      .ethernet(net::MacAddress::from_u64(2), net::MacAddress::from_u64(1))
      .ipv4(net::Ipv4Address::from_octets(10, 0, 0, 1),
            net::Ipv4Address::from_octets(192, 168, 0, 1), net::IpProto::tcp)
      .tcp(12345, 443)
      .payload_size(payload)
      .build();
}

void BM_ParsePacket(benchmark::State& state) {
  const auto frame = sample_frame(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::parse_packet(frame));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(frame.size()));
}
BENCHMARK(BM_ParsePacket)->Arg(10)->Arg(512)->Arg(1460);

void BM_InternetChecksum(benchmark::State& state) {
  const net::Bytes data(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::internet_checksum(data));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(64)->Arg(1500);

void BM_IncrementalChecksumUpdate(benchmark::State& state) {
  std::uint16_t checksum = 0x1234;
  for (auto _ : state) {
    checksum = net::checksum_incremental_update(checksum, 0xaaaa, 0xbbbb);
    benchmark::DoNotOptimize(checksum);
  }
}
BENCHMARK(BM_IncrementalChecksumUpdate);

void BM_NatProcess(benchmark::State& state) {
  apps::StaticNat nat;
  nat.add_mapping(net::Ipv4Address::from_octets(10, 0, 0, 1),
                  net::Ipv4Address::from_octets(99, 0, 0, 1));
  net::Packet packet{sample_frame(64)};
  for (auto _ : state) {
    ppe::PacketContext ctx(packet);
    benchmark::DoNotOptimize(nat.process(ctx));
  }
}
BENCHMARK(BM_NatProcess);

void BM_ExactMatchLookup(benchmark::State& state) {
  ppe::ExactMatchTable table("t", 32768, 32, 64);
  sim::Rng rng(1);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 30000; ++i) {
    const auto key = rng.next_u64();
    if (table.insert(key, key)) keys.push_back(key);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(keys[i++ % keys.size()]));
  }
}
BENCHMARK(BM_ExactMatchLookup);

void BM_TernaryMatch(benchmark::State& state) {
  apps::AclFirewall acl;
  for (int i = 0; i < state.range(0); ++i) {
    apps::AclRuleSpec rule;
    rule.src = net::Ipv4Prefix{
        net::Ipv4Address{std::uint32_t(i) << 16}, 16};
    rule.action = apps::AclAction::deny;
    acl.add_rule(rule);
  }
  net::Packet packet{sample_frame(64)};
  for (auto _ : state) {
    ppe::PacketContext ctx(packet);
    benchmark::DoNotOptimize(acl.process(ctx));
  }
}
BENCHMARK(BM_TernaryMatch)->Arg(16)->Arg(128);

void BM_MaglevRebuild(benchmark::State& state) {
  for (auto _ : state) {
    apps::LoadBalancer lb;
    for (int i = 0; i < state.range(0); ++i) {
      lb.add_backend(apps::Backend{
          static_cast<std::uint32_t>(i),
          net::MacAddress::from_u64(0x100 + std::uint64_t(i)), true});
    }
    benchmark::DoNotOptimize(lb.lookup_table().data());
  }
}
BENCHMARK(BM_MaglevRebuild)->Arg(4)->Arg(16);

void BM_ToeplitzHash(benchmark::State& state) {
  const auto hash = net::ToeplitzHash::symmetric();
  const net::FiveTuple tuple{net::Ipv4Address{0x0a000001},
                             net::Ipv4Address{0xc0a80001}, 1234, 80, 6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash.hash_tuple(tuple));
  }
}
BENCHMARK(BM_ToeplitzHash);

void BM_BuildFrame(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(sample_frame(512));
  }
}
BENCHMARK(BM_BuildFrame);

void BM_GreEncapDecap(benchmark::State& state) {
  const auto original = sample_frame(256);
  for (auto _ : state) {
    net::Bytes frame = original;
    net::encapsulate_gre(frame, net::Ipv4Address{1}, net::Ipv4Address{2});
    net::decapsulate(frame);
    benchmark::DoNotOptimize(frame.data());
  }
}
BENCHMARK(BM_GreEncapDecap);

}  // namespace

BENCHMARK_MAIN();
