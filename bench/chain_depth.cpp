// Ablation for the §5.3 "keep chains compact (about 3-4 stages)" guidance:
// app chains of growing depth on the Two-Way-Core shell — throughput,
// latency and fabric cost per depth.
#include <cstdio>

#include "apps/acl.hpp"
#include "apps/chain.hpp"
#include "apps/nat.hpp"
#include "apps/sanitizer.hpp"
#include "apps/telemetry.hpp"
#include "apps/vlan.hpp"
#include "bench_util.hpp"
#include "fabric/testbed.hpp"
#include "hw/device.hpp"
#include "hw/resource_model.hpp"

namespace {

using namespace flexsfp;

std::unique_ptr<apps::AppChain> make_chain(std::size_t depth) {
  auto chain = std::make_unique<apps::AppChain>();
  const auto add_stage = [&chain](std::size_t index) {
    switch (index % 6) {
      case 0: chain->append(std::make_unique<apps::StaticNat>()); break;
      case 1: chain->append(std::make_unique<apps::AclFirewall>()); break;
      case 2: chain->append(std::make_unique<apps::VlanTagger>()); break;
      case 3: chain->append(std::make_unique<apps::IntStamper>()); break;
      case 4: chain->append(std::make_unique<apps::Sanitizer>()); break;
      case 5: chain->append(std::make_unique<apps::FlowStats>()); break;
    }
  };
  for (std::size_t i = 0; i < depth; ++i) add_stage(i);
  return chain;
}

}  // namespace

int main() {
  using namespace flexsfp::sim;

  bench::title(
      "Section 5.3 — chain depth on the Two-Way-Core (bidirectional 2x10G, "
      "312.5 MHz PPE)");

  std::printf("%-7s %8s %10s %10s %10s %10s %8s\n", "depth", "loss",
              "p50 lat", "p99 lat", "app LUTs", "LUT util", "fits?");
  bench::rule(72);

  const auto device = hw::FpgaDevice::mpf200t();
  const auto fixed = hw::ResourceModel::miv_rv32() +
                     hw::ResourceModel::ethernet_iface_electrical() +
                     hw::ResourceModel::ethernet_iface_optical();

  for (std::size_t depth = 1; depth <= 6; ++depth) {
    fabric::TestbedConfig config;
    config.module.shell.kind = sfp::ShellKind::two_way_core;
    config.module.shell.datapath.clock = hw::ClockDomain::mhz(312.5);
    fabric::TrafficSpec spec;
    spec.rate = DataRate::gbps(10);
    spec.fixed_size = 256;
    spec.duration = 200'000'000;  // 200 us
    config.edge_traffic = spec;
    fabric::TrafficSpec rx = spec;
    rx.seed = 2;
    config.optical_traffic = rx;

    auto chain = make_chain(depth);
    const auto usage =
        chain->resource_usage({64, hw::ClockDomain::mhz(312.5)});
    const auto total = usage + fixed;

    fabric::ModuleTestbed testbed(std::move(config), std::move(chain));
    const auto result = testbed.run();
    const double loss = (result.edge_to_optical.loss_rate +
                         result.optical_to_edge.loss_rate) /
                        2.0;
    std::printf("%-7zu %7.3f%% %7.0f ns %7.0f ns %10llu %9.1f%% %8s\n",
                depth, loss * 100.0,
                std::max(result.edge_to_optical.latency_p50_ns,
                         result.optical_to_edge.latency_p50_ns),
                std::max(result.edge_to_optical.latency_p99_ns,
                         result.optical_to_edge.latency_p99_ns),
                static_cast<unsigned long long>(usage.luts),
                device.utilization(total).worst(),
                device.fits(total) ? "yes" : "NO");
  }
  bench::rule(72);
  bench::note(
      "throughput is width x clock bound, so depth costs latency and fabric "
      "rather than rate; around 4-6 stages the worst-dimension utilization "
      "approaches the MPF200T's limits — the paper's 'compact chains' "
      "guidance made quantitative.");
  return 0;
}
