// Hot-path allocation audit: drives the full module pipeline (TrafficGen ->
// fault-free link -> PPE running StaticNat -> sink) under a counting global
// allocator and reports events/sec plus allocations/packet. The packet pool
// and the slab event queue exist to push the steady-state figure toward
// zero; this bench is the evidence, and tools/bench_gate.py fails CI when
// either figure regresses against bench/baselines/.
#include <execinfo.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "apps/nat.hpp"
#include "bench_util.hpp"
#include "fabric/testbed.hpp"

// ---------------------------------------------------------------------------
// Binary-local counting allocator. Every user-code allocation in this
// process funnels through these replacements; the counter is atomic only
// because the contract requires thread safety — this bench is sequential.
//
// Set FLEXSFP_ALLOC_TRACE=N to print a backtrace for every Nth allocation
// made while a measured run() is in flight — the quickest way to find who
// reintroduced a hot-path allocation when the CI gate trips.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
std::atomic<bool> g_tracing{false};
std::uint64_t g_trace_every = 0;  // 0 = off; read once from the environment
thread_local bool g_in_trace = false;

void maybe_trace(std::uint64_t serial) {
  if (g_trace_every == 0 || !g_tracing.load(std::memory_order_relaxed)) {
    return;
  }
  if (serial % g_trace_every != 0 || g_in_trace) return;
  g_in_trace = true;  // backtrace() itself allocates on first use
  void* frames[16];
  const int depth = backtrace(frames, 16);
  std::fprintf(stderr, "--- allocation #%llu ---\n",
               static_cast<unsigned long long>(serial));
  backtrace_symbols_fd(frames, depth, 2);
  g_in_trace = false;
}
}  // namespace

void* operator new(std::size_t size) {
  maybe_trace(g_allocations.fetch_add(1, std::memory_order_relaxed));
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
// ---------------------------------------------------------------------------

int main(int argc, char** argv) {
  using namespace flexsfp;
  using namespace flexsfp::sim;

  // Longer horizon than nat_linerate so steady state dominates setup; a
  // repeat count argument lets profiling runs scale the workload further.
  const int repeats = argc > 1 ? std::atoi(argv[1]) : 1;
  if (const char* every = std::getenv("FLEXSFP_ALLOC_TRACE")) {
    g_trace_every = std::strtoull(every, nullptr, 10);
  }

  bench::title("Hot-path audit — events/sec and allocations/packet");
  std::printf("%-10s %12s %14s %14s %12s\n", "frame", "packets", "events",
              "allocs/pkt", "events/s");
  bench::rule(70);

  obs::MetricSnapshot all_frames;
  bench::Figures figures;
  double worst_allocs_per_packet = 0;
  std::uint64_t events_total = 0;
  double wall_seconds = 0;

  for (const std::size_t frame : {64, 512, 1518}) {
    std::uint64_t frame_events = 0;
    std::uint64_t frame_packets = 0;
    std::uint64_t frame_allocs = 0;
    double frame_seconds = 0;
    for (int rep = 0; rep < repeats; ++rep) {
      fabric::TestbedConfig config;
      fabric::TrafficSpec spec;
      spec.rate = DataRate::gbps(10);
      spec.fixed_size = frame;
      spec.duration = 2_ms;
      config.edge_traffic = spec;

      auto nat = std::make_unique<apps::StaticNat>();
      for (std::uint32_t i = 0; i < 1024; ++i) {
        nat->add_mapping(net::Ipv4Address{0x0a000000u + i},
                         net::Ipv4Address{0xcb007100u + i});
      }
      fabric::ModuleTestbed testbed(std::move(config), std::move(nat));

      // Count only what run() allocates: the construction above (tables,
      // registry, pool reserve) is setup, not the hot path.
      const std::uint64_t allocs_before =
          g_allocations.load(std::memory_order_relaxed);
      g_tracing.store(true, std::memory_order_relaxed);
      const auto t0 = std::chrono::steady_clock::now();
      const auto result = testbed.run();
      const auto t1 = std::chrono::steady_clock::now();
      g_tracing.store(false, std::memory_order_relaxed);
      frame_allocs += g_allocations.load(std::memory_order_relaxed) -
                      allocs_before;
      frame_seconds += std::chrono::duration<double>(t1 - t0).count();
      frame_events += testbed.sim().executed_events();
      frame_packets += result.edge_to_optical.sent_packets;
      if (rep == 0) {
        all_frames.merge(
            result.metrics.with_label("frame", std::to_string(frame)));
      }
    }
    const double allocs_per_packet =
        frame_packets > 0 ? double(frame_allocs) / double(frame_packets) : 0;
    const double events_per_sec =
        frame_seconds > 0 ? double(frame_events) / frame_seconds : 0;
    std::printf("%7zu B %12llu %14llu %14.3f %12.3g\n", frame,
                static_cast<unsigned long long>(frame_packets),
                static_cast<unsigned long long>(frame_events),
                allocs_per_packet, events_per_sec);
    worst_allocs_per_packet =
        std::max(worst_allocs_per_packet, allocs_per_packet);
    events_total += frame_events;
    wall_seconds += frame_seconds;
    figures.emplace_back("allocs_per_packet_" + std::to_string(frame),
                         allocs_per_packet);
  }
  bench::rule(70);

  const double events_per_sec =
      wall_seconds > 0 ? double(events_total) / wall_seconds : 0;
  std::printf("total: %llu events in %.3f s = %.3g events/s, worst "
              "allocs/pkt %.3f\n",
              static_cast<unsigned long long>(events_total), wall_seconds,
              events_per_sec, worst_allocs_per_packet);
  figures.emplace_back("events_total", double(events_total));
  figures.emplace_back("wall_seconds", wall_seconds);
  figures.emplace_back("events_per_sec", events_per_sec);
  figures.emplace_back("allocs_per_packet", worst_allocs_per_packet);
  bench::write_bench_json("hotpath_alloc", all_frames, figures);
  bench::note(
      "allocations/packet is machine-independent and gated strictly by "
      "tools/bench_gate.py; events/sec is hardware-dependent and gated "
      "loosely.");
  return 0;
}
