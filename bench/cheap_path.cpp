// Ablation for §2's "acceleration gap": the same lightweight micro-task
// (ACL filtering) executed on the three tiers — host CPU (slow path),
// SmartNIC (fast path) and FlexSFP (cheap path) — compared on latency,
// jitter, power and cost.
#include <cstdio>

#include "apps/acl.hpp"
#include "bench_util.hpp"
#include "fabric/baselines.hpp"
#include "fabric/testbed.hpp"

namespace {

using namespace flexsfp;
using namespace flexsfp::sim;

struct TierResult {
  double p50_us;
  double p99_us;
  double watts;
  std::string cost;
};

TierResult run_flexsfp() {
  fabric::TestbedConfig config;
  fabric::TrafficSpec spec;
  spec.rate = DataRate::gbps(5);
  spec.fixed_size = 256;
  spec.duration = 500'000'000;  // 500 us
  config.edge_traffic = spec;
  auto acl = std::make_unique<apps::AclFirewall>();
  apps::AclRuleSpec rule;
  rule.src = net::Ipv4Prefix::parse("10.99.0.0/16");
  rule.action = apps::AclAction::deny;
  acl->add_rule(rule);
  fabric::ModuleTestbed testbed(std::move(config), std::move(acl));
  const auto result = testbed.run();
  return {result.edge_to_optical.latency_p50_ns / 1000.0,
          result.edge_to_optical.latency_p99_ns / 1000.0,
          result.power.total(), hw::flexsfp_unit_cost().to_string()};
}

template <typename Server>
TierResult run_server(Server& server, double watts, const std::string& cost,
                      Simulation& sim) {
  fabric::Sink sink(sim);
  server.set_output(
      [&sink](net::PacketPtr p) { sink.handle_packet(std::move(p)); });
  sim::LambdaHandler into([&server](net::PacketPtr p) {
    server.handle_packet(std::move(p));
  });
  fabric::TrafficSpec spec;
  spec.rate = DataRate::gbps(5);
  spec.fixed_size = 256;
  spec.duration = 500'000'000;
  fabric::TrafficGen gen(sim, spec, into);
  gen.start();
  sim.run();
  return {to_nanos(sink.latency().percentile(50)) / 1000.0,
          to_nanos(sink.latency().percentile(99)) / 1000.0, watts, cost};
}

}  // namespace

int main() {
  bench::title(
      "Section 2 — the cheap path: ACL micro-task on three tiers (5 Gb/s "
      "of 256 B frames)");

  std::printf("%-22s %10s %10s %9s %14s\n", "tier", "p50 lat", "p99 lat",
              "power", "unit cost");
  bench::rule(70);

  {
    Simulation sim;
    fabric::CpuPath cpu(sim);
    const auto result = run_server(cpu, cpu.watts(), "$0 (sunk)", sim);
    std::printf("%-22s %7.1f us %7.1f us %7.1f W %14s\n",
                "host CPU (slow path)", result.p50_us, result.p99_us,
                result.watts, result.cost.c_str());
  }
  {
    Simulation sim;
    fabric::SmartNic nic(sim);
    const auto result =
        run_server(nic, nic.watts(), nic.cost_usd().to_string(), sim);
    std::printf("%-22s %7.1f us %7.1f us %7.1f W %14s\n",
                "SmartNIC (fast path)", result.p50_us, result.p99_us,
                result.watts, result.cost.c_str());
  }
  {
    const auto result = run_flexsfp();
    std::printf("%-22s %7.2f us %7.2f us %7.2f W %14s\n",
                "FlexSFP (cheap path)", result.p50_us, result.p99_us,
                result.watts, result.cost.c_str());
  }
  bench::rule(70);
  bench::note(
      "the FlexSFP executes the micro-task with sub-microsecond, "
      "hardware-paced latency at ~1.5 W — the CPU path pays tens of "
      "microseconds and scheduler jitter, the SmartNIC pays 25+ W and "
      "$800-2000 for capability this task never uses.");
  return 0;
}
