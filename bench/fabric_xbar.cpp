// Crosspoint-queued crossbar fabric under the two canonical stress mixes:
// incast (every module blasts one victim output) and elephant/mouse (jumbo
// bulk flows vs minimum-size request traffic), plus the windowed parallel
// engine's determinism self-check across worker counts.
//
// Usage: fabric_xbar [modules] [duration_us]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "bench_util.hpp"
#include "fabric/fabric_testbed.hpp"

namespace {

using namespace flexsfp;
using namespace flexsfp::sim;  // time literals

fabric::Topology base_topology(std::size_t modules, sim::TimePs duration) {
  fabric::Topology topo;
  topo.modules = modules;
  topo.traffic_prototype.duration = duration;
  topo.traffic_prototype.arrivals = fabric::ArrivalProcess::poisson;
  return topo;
}

double sum_delivered_gbps(const fabric::FabricRunResult& run) {
  double total = 0;
  for (const auto& m : run.modules) total += m.delivered_gbps;
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t modules =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4;
  const auto duration_us =
      argc > 2 ? std::strtoll(argv[2], nullptr, 10) : 2000;
  if (modules < 2 || duration_us <= 0) {
    std::fprintf(stderr,
                 "usage: %s [modules >= 2] [duration_us >= 1]  (got %s %s)\n",
                 argv[0], argc > 1 ? argv[1] : "-", argc > 2 ? argv[2] : "-");
    return 2;
  }
  const auto duration = duration_us * 1_us;

  bench::title("Crossbar fabric: incast and elephant/mouse mixes");
  std::printf("%zu modules, %lld us per scenario, crosspoint-queued fabric "
              "@ 10 Gb/s ports\n\n",
              modules, static_cast<long long>(duration_us));

  bench::Figures figures{{"modules", double(modules)}};

  // --- Scenario 1: incast. Everyone targets module 0's edge; output 0 is
  // (modules-1)-to-1 oversubscribed, so crosspoints toward it fill, the
  // round-robin arbiter shares what the port can carry fairly, and the
  // overflow is dropped AT A NAMED COUNTER, never black-holed.
  {
    fabric::Topology topo = base_topology(modules, duration);
    topo.targets.assign(modules, 0);
    topo.traffic_prototype.rate = DataRate::gbps(6);
    topo.crosspoint_capacity = 16;
    fabric::FabricTestbed bed(topo);
    const auto run = bed.run();
    const double victim_gbps = run.modules[0].delivered_gbps;
    std::printf("%-22s %10s %14s %16s %10s\n", "scenario", "offered",
                "delivered", "crosspoint drops", "balanced");
    bench::rule(78);
    std::printf("%-22s %7.2f Gb %11.2f Gb %16llu %10s\n", "incast -> module 0",
                6.0 * double(modules), victim_gbps,
                static_cast<unsigned long long>(run.ledger.crosspoint_drops),
                run.ledger.balanced() ? "yes" : "NO");
    figures.emplace_back("delivered_gbps_incast", victim_gbps);
    figures.emplace_back("crosspoint_drops_incast",
                         double(run.ledger.crosspoint_drops));
    if (!run.ledger.balanced()) {
      std::fprintf(stderr, "FAIL: incast ledger unbalanced (%llu != %llu)\n",
                   static_cast<unsigned long long>(run.ledger.injected()),
                   static_cast<unsigned long long>(run.ledger.accounted()));
      return 1;
    }
  }

  // --- Scenario 2/3: elephant vs mouse on the default ring. Same fabric,
  // same target permutation; only the traffic shape changes. Elephants are
  // MTU-size bulk transfers near line rate, mice are minimum-size frames at
  // modest load — per-packet overheads dominate the mouse number.
  for (const bool elephant : {true, false}) {
    fabric::Topology topo = base_topology(modules, duration);
    topo.traffic_prototype.arrivals = fabric::ArrivalProcess::cbr;
    topo.traffic_prototype.fixed_size = elephant ? 1500 : 64;
    topo.traffic_prototype.rate = DataRate::gbps(elephant ? 8 : 2);
    fabric::FabricTestbed bed(topo);
    const auto run = bed.run();
    const double delivered = sum_delivered_gbps(run);
    std::printf("%-22s %7.2f Gb %11.2f Gb %16llu %10s\n",
                elephant ? "elephant ring (1500B)" : "mouse ring (64B)",
                (elephant ? 8.0 : 2.0) * double(modules), delivered,
                static_cast<unsigned long long>(run.ledger.crosspoint_drops),
                run.ledger.balanced() ? "yes" : "NO");
    figures.emplace_back(
        elephant ? "delivered_gbps_elephant" : "delivered_gbps_mouse",
        delivered);
    if (!run.ledger.balanced()) {
      std::fprintf(stderr, "FAIL: %s ledger unbalanced\n",
                   elephant ? "elephant" : "mouse");
      return 1;
    }
  }
  bench::rule(78);

  // --- Determinism self-check: the conservatively synchronized parallel
  // engine must merge to the exact snapshot of its sequential oracle for
  // every worker count, faults included.
  fabric::Topology topo = base_topology(modules, duration);
  sim::FaultSpec faults;
  faults.drop_prob = 0.02;
  faults.duplicate_prob = 0.01;
  topo.link_faults = faults;
  fabric::FabricParallelTestbed bed(topo);
  const auto oracle = bed.run(1);
  bool deterministic = oracle.ledger.balanced();
  double best_wall = oracle.wall_seconds;
  std::printf("\nwindowed engine: %llu sync rounds, lookahead %lld ps\n",
              static_cast<unsigned long long>(oracle.rounds),
              static_cast<long long>(topo.link_delay_ps));
  for (const unsigned workers : {2u, 4u}) {
    const auto run = bed.run(workers);
    const bool same = run.metrics == oracle.metrics;
    deterministic = deterministic && same;
    best_wall = std::min(best_wall, run.wall_seconds);
    std::printf("  workers=%u (threads=%u): %s, %.3f s\n", workers,
                run.workers_used, same ? "bit-identical" : "DIVERGED",
                run.wall_seconds);
  }
  figures.emplace_back("determinism_ok", deterministic ? 1.0 : 0.0);
  figures.emplace_back("rounds_fabric", double(oracle.rounds));
  figures.emplace_back("events_per_sec_fabric",
                       double(oracle.events) / best_wall);

  bench::write_bench_json("fabric_xbar", oracle.metrics, figures);
  bench::note("delivered_gbps_* and crosspoint drops are deterministic "
              "simulation outputs (strict-gated); events_per_sec_fabric is "
              "host-bound (lenient).");

  if (!deterministic) {
    std::fprintf(stderr,
                 "FAIL: parallel fabric diverged from its sequential run\n");
    return 1;
  }
  std::printf("determinism self-check: PASS\n");
  return 0;
}
