// Reproduces the §5.1 end-to-end test: "a simple end-to-end test ...
// confirmed line-rate performance" — static NAT at 10 Gb/s across frame
// sizes, reporting throughput, loss and latency per size.
//
// Also the repo's headline hot-path figure: sequential simulated events/sec
// across the whole sweep, recorded next to the seed-era number so the
// pooled-packet + slab-queue speedup stays visible (and gated) in BENCH JSON.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "apps/nat.hpp"
#include "bench_util.hpp"
#include "fabric/testbed.hpp"

namespace {
// Sequential events/sec of this sweep measured at the seed (shared_ptr
// packets + std::function/priority_queue event loop), Release, best-of-7
// runs interleaved with the pooled build on the machine that committed
// bench/baselines. Kept as a figure so the before/after ratio travels with
// every fresh BENCH JSON.
constexpr double seed_events_per_sec = 6.7e6;
}  // namespace

int main() {
  using namespace flexsfp;
  using namespace flexsfp::sim;

  bench::title(
      "Section 5.1 — static NAT line-rate test (One-Way-Filter, 64b @ "
      "156.25 MHz)");

  std::printf("%-10s %12s %12s %8s %10s %10s %10s\n", "frame", "offered",
              "delivered", "loss", "p50 lat", "p99 lat", "PPE util");
  bench::rule(80);

  obs::MetricSnapshot all_frames;
  bench::Figures figures;
  double worst_loss = 0;
  std::uint64_t events_total = 0;
  // The sweep is deterministic, so the fastest of `repeats` runs is the one
  // with the least interference from whatever else the machine is doing —
  // that is the number comparable across commits on a shared box.
  const int repeats = bench::repeats_from_env(5);
  double best_wall = 0;
  for (int rep = 0; rep < repeats; ++rep) {
    std::uint64_t rep_events = 0;
    double rep_wall = 0;
    for (const std::size_t frame : {64, 128, 256, 512, 1024, 1280, 1518}) {
      fabric::TestbedConfig config;
      fabric::TrafficSpec spec;
      spec.rate = DataRate::gbps(10);
      spec.fixed_size = frame;
      spec.duration = 500_us;
      config.edge_traffic = spec;

      auto nat = std::make_unique<apps::StaticNat>();
      // Populate a realistic share of the 32k table.
      for (std::uint32_t i = 0; i < 1024; ++i) {
        nat->add_mapping(net::Ipv4Address{0x0a000000u + i},
                         net::Ipv4Address{0xcb007100u + i});
      }
      fabric::ModuleTestbed testbed(std::move(config), std::move(nat));
      const auto start = std::chrono::steady_clock::now();
      const auto result = testbed.run();
      rep_wall += std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
      rep_events += testbed.sim().executed_events();
      if (rep != 0) continue;
      const auto& direction = result.edge_to_optical;
      std::printf(
          "%7zu B %9.3f G %9.3f G %7.3f%% %8.1f ns %8.1f ns %9.1f%%\n", frame,
          direction.offered_gbps, direction.delivered_gbps,
          direction.loss_rate * 100.0, direction.latency_p50_ns,
          direction.latency_p99_ns, result.ppe_utilization * 100.0);
      // Keep every frame size's registry series apart with a {frame=N}
      // label, the same trick the parallel testbed uses for shards.
      all_frames.merge(
          result.metrics.with_label("frame", std::to_string(frame)));
      figures.emplace_back("delivered_gbps_" + std::to_string(frame),
                           direction.delivered_gbps);
      worst_loss = std::max(worst_loss, direction.loss_rate);
    }
    events_total = rep_events;
    best_wall = rep == 0 ? rep_wall : std::min(best_wall, rep_wall);
  }
  bench::rule(80);
  const double events_per_sec =
      best_wall > 0 ? double(events_total) / best_wall : 0;
  std::printf("hot path: %llu events, best of %d runs %.3f s = %.3g events/s "
              "(seed: %.3g, %.2fx)\n",
              static_cast<unsigned long long>(events_total), repeats,
              best_wall, events_per_sec, seed_events_per_sec,
              events_per_sec / seed_events_per_sec);
  // --- batched-dispatch differential -------------------------------------
  // The same sweep at batch widths {1, 8, 16}: the width may only show up
  // as throughput, so the merged {frame=N}-labeled snapshots must be
  // bit-identical. batch_identical rides in the JSON as a strict gate.
  std::vector<obs::MetricSnapshot> width_snaps;
  const int width_repeats = std::max(1, repeats / 3);
  for (const std::size_t width : {1, 8, 16}) {
    obs::MetricSnapshot snap;
    std::uint64_t width_events = 0;
    double width_wall = 0;
    for (int rep = 0; rep < width_repeats; ++rep) {
      std::uint64_t rep_events = 0;
      double rep_wall = 0;
      for (const std::size_t frame : {64, 128, 256, 512, 1024, 1280, 1518}) {
        fabric::TestbedConfig config;
        fabric::TrafficSpec spec;
        spec.rate = DataRate::gbps(10);
        spec.fixed_size = frame;
        spec.duration = 500_us;
        config.edge_traffic = spec;
        auto nat = std::make_unique<apps::StaticNat>();
        for (std::uint32_t i = 0; i < 1024; ++i) {
          nat->add_mapping(net::Ipv4Address{0x0a000000u + i},
                           net::Ipv4Address{0xcb007100u + i});
        }
        fabric::ModuleTestbed testbed(std::move(config), std::move(nat));
        testbed.sim().set_batch_width(width);
        const auto start = std::chrono::steady_clock::now();
        const auto result = testbed.run();
        rep_wall += std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
        rep_events += testbed.sim().executed_events();
        if (rep != 0) continue;
        snap.merge(result.metrics.with_label("frame", std::to_string(frame)));
      }
      width_events = rep_events;
      width_wall = rep == 0 ? rep_wall : std::min(width_wall, rep_wall);
    }
    figures.emplace_back("events_per_sec_w" + std::to_string(width),
                         width_wall > 0 ? double(width_events) / width_wall
                                        : 0);
    width_snaps.push_back(std::move(snap));
  }
  bool batch_identical = true;
  for (const auto& snap : width_snaps) {
    batch_identical = batch_identical && snap == width_snaps.front();
  }
  std::printf("batch widths {1,8,16}: merged snapshots %s\n",
              batch_identical ? "bit-identical" : "DIVERGED");

  const double wall_seconds = best_wall;
  figures.emplace_back("batch_identical", batch_identical ? 1.0 : 0.0);
  figures.emplace_back("batch_width", double(Simulation::kDefaultBatchWidth));
  figures.emplace_back("worst_loss_rate", worst_loss);
  figures.emplace_back("events_total", double(events_total));
  figures.emplace_back("wall_seconds", wall_seconds);
  figures.emplace_back("events_per_sec", events_per_sec);
  figures.emplace_back("seed_events_per_sec", seed_events_per_sec);
  figures.emplace_back("speedup_vs_seed", events_per_sec / seed_events_per_sec);
  bench::write_bench_json("nat_linerate", all_frames, figures);
  bench::note(
      "paper reports line rate at 10 Gb/s; zero loss at every frame size "
      "reproduces it. The 64b x 156.25 MHz bus is exactly 10 Gb/s, so PPE "
      "utilization approaches 100% at small frames.");
  return 0;
}
