// Reproduces the §5 power experiment: a Thunderbolt NIC measured alone,
// with a standard SFP under line-rate RX+TX stress, and with a FlexSFP
// running the NAT — the paper's 3.800 / 4.693 / 5.320 W operating points.
#include <cstdio>

#include "apps/nat.hpp"
#include "bench_util.hpp"
#include "fabric/testbed.hpp"

int main() {
  using namespace flexsfp;

  bench::title("Section 5 — power measurement testbed");

  const auto measurement = fabric::run_power_measurement(
      std::make_unique<apps::StaticNat>(), /*duration=*/5'000'000'000);

  std::printf("%-38s %10s %10s\n", "Operating point", "measured", "paper");
  bench::rule(62);
  std::printf("%-38s %8.3f W %10s\n", "NIC alone (no module)",
              measurement.nic_only_w, "3.800 W");
  std::printf("%-38s %8.3f W %10s\n", "NIC + standard SFP (line-rate RX+TX)",
              measurement.nic_plus_sfp_w, "4.693 W");
  std::printf("%-38s %8.3f W %10s\n", "NIC + FlexSFP (NAT at line rate)",
              measurement.nic_plus_flexsfp_w, "5.320 W");
  bench::rule(62);
  std::printf("%-38s %8.3f W %10s\n", "standard SFP draw (delta)",
              measurement.sfp_delta_w(), "~0.9 W");
  std::printf("%-38s %8.3f W %10s\n", "FlexSFP draw (delta)",
              measurement.flexsfp_delta_w(), "~1.5 W");
  std::printf("%-38s %8.3f W %10s\n", "programmability premium",
              measurement.flexsfp_delta_w() - measurement.sfp_delta_w(),
              "~0.7 W");

  // Power vs utilization curve — what the component model adds beyond the
  // paper's single operating point.
  bench::title("FlexSFP power vs link utilization (model extension)");
  std::printf("%-12s %12s\n", "utilization", "module W");
  bench::rule(26);
  const apps::StaticNat nat;
  const auto usage = hw::ResourceModel::miv_rv32() +
                     hw::ResourceModel::ethernet_iface_electrical() +
                     hw::ResourceModel::ethernet_iface_optical() +
                     nat.resource_usage(hw::DatapathConfig{});
  for (const double util : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const auto power = hw::PowerModel::flexsfp(
        hw::FpgaDevice::mpf200t(), usage, hw::clock_156_25_mhz, util);
    std::printf("%11.0f%% %10.3f W\n", util * 100.0, power.total());
  }
  bench::note(
      "optics and FPGA-static terms dominate at idle; switching power grows "
      "with traffic, staying inside the 1-3 W SFP+ envelope throughout.");
  return 0;
}
