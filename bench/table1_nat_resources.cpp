// Reproduces Table 1: "Resource usage for the simple NAT case study, broken
// down by design component" — Mi-V, electrical and optical 10G interfaces,
// and the NAT application on the MPF200T, with Used/Avail/Perc rows.
#include <cstdio>

#include "apps/nat.hpp"
#include "bench_util.hpp"
#include "hw/device.hpp"
#include "hw/resource_model.hpp"

namespace {

using namespace flexsfp;

void print_row(const char* name, const hw::ResourceUsage& u) {
  std::printf("%-12s %10llu %10llu %8llu %8llu\n", name,
              static_cast<unsigned long long>(u.luts),
              static_cast<unsigned long long>(u.ffs),
              static_cast<unsigned long long>(u.usram_blocks),
              static_cast<unsigned long long>(u.lsram_blocks));
}

}  // namespace

int main() {
  bench::title("Table 1 — NAT case study resource usage (MPF200T)");

  const hw::DatapathConfig datapath{};  // 64 bit @ 156.25 MHz, the paper's
  const apps::StaticNat nat;            // 32,768-flow build

  std::printf("%-12s %10s %10s %8s %8s\n", "", "4LUT", "FF", "uSRAM",
              "LSRAM");
  bench::rule(54);
  const auto miv = hw::ResourceModel::miv_rv32();
  const auto elec = hw::ResourceModel::ethernet_iface_electrical();
  const auto opt = hw::ResourceModel::ethernet_iface_optical();
  const auto app = nat.resource_usage(datapath);
  print_row("Mi-V", miv);
  print_row("Elec. I/F", elec);
  print_row("Opt. I/F", opt);
  print_row("NAT app", app);
  bench::rule(54);
  const auto used = miv + elec + opt + app;
  print_row("Used", used);

  const auto device = hw::FpgaDevice::mpf200t();
  print_row("Avail.", hw::ResourceUsage{device.capacity().luts,
                                        device.capacity().ffs,
                                        device.capacity().usram_blocks,
                                        device.capacity().lsram_blocks});
  const auto util = device.utilization(used);
  std::printf("%-12s %9.0f%% %9.0f%% %7.0f%% %7.0f%%\n", "Perc.",
              util.luts_pct, util.ffs_pct, util.usram_pct, util.lsram_pct);

  bench::rule(54);
  std::printf("paper:       %10s %10s %8s %8s\n", "31455", "25518", "278",
              "164");
  std::printf("paper Perc.: %9s%% %9s%% %7s%% %7s%%\n", "16", "13", "15",
              "26");
  std::printf("fits on MPF200T: %s\n", device.fits(used) ? "yes" : "NO");

  // Per-component NAT breakdown (what the analytical model is made of).
  bench::title("NAT app component breakdown (calibrated model)");
  const auto breakdown = nat.resource_breakdown(datapath);
  for (const auto& component : breakdown.components()) {
    print_row(component.name.c_str(), component.usage);
  }

  bench::note(
      "fixed IP blocks are catalog constants from the paper's synthesis "
      "report; NAT logic is the calibrated analytical model (Table 1 memory "
      "blocks are exact, logic within 0.1%).");
  return 0;
}
