// §5.3 "Failure Recovery" as a measured study: VCSEL wear-out across a
// module population (lognormal TTF, the paper's cited reliability model),
// degradation telemetry, and the targeted-diagnosis argument — the internal
// visibility that distinguishes laser wear from driver faults.
#include <cstdio>

#include <algorithm>
#include <vector>

#include "bench_util.hpp"
#include "sfp/vcsel.hpp"
#include "sim/random.hpp"

int main() {
  using namespace flexsfp;

  bench::title("Section 5.3 — VCSEL wear-out across a 10,000-module fleet");

  std::vector<double> ttf_hours;
  sfp::VcselParams params;
  for (std::uint64_t seed = 0; seed < 10'000; ++seed) {
    sim::Rng rng(seed);
    const sfp::VcselModel laser(params, rng);
    ttf_hours.push_back(laser.time_to_failure_hours());
  }
  std::sort(ttf_hours.begin(), ttf_hours.end());
  auto percentile = [&ttf_hours](double p) {
    return ttf_hours[static_cast<std::size_t>(p / 100.0 *
                                              (ttf_hours.size() - 1))];
  };
  const double hours_per_year = 24 * 365.25;
  std::printf("time-to-failure distribution (lognormal, mu=%.2f, "
              "sigma=%.2f):\n",
              params.ttf_mu_log_hours, params.ttf_sigma);
  std::printf("  %-12s %14s %10s\n", "percentile", "hours", "years");
  for (const double p : {1.0, 10.0, 50.0, 90.0, 99.0}) {
    std::printf("  p%-11.0f %14.0f %10.1f\n", p, percentile(p),
                percentile(p) / hours_per_year);
  }
  std::printf("  fleet failed within 5 years: %.2f%%\n",
              100.0 *
                  double(std::lower_bound(ttf_hours.begin(), ttf_hours.end(),
                                          5 * hours_per_year) -
                         ttf_hours.begin()) /
                  double(ttf_hours.size()));

  bench::title("Degradation telemetry over one laser's life");
  sim::Rng rng(42);
  const sfp::VcselModel laser(params, rng);
  const double ttf = laser.time_to_failure_hours();
  std::printf("%-12s %12s %12s %14s\n", "life", "power (mW)", "health",
              "diagnosis");
  bench::rule(54);
  for (const double x : {0.0, 0.25, 0.5, 0.632, 0.8, 0.95, 1.0}) {
    const double age = ttf * x;
    const auto health = laser.health(age);
    const char* health_name =
        health == sfp::LaserHealth::nominal
            ? "nominal"
            : health == sfp::LaserHealth::degrading ? "degrading" : "failed";
    const auto fault = laser.diagnose(age);
    const char* fault_name =
        fault == sfp::OpticalFault::none
            ? "-"
            : fault == sfp::OpticalFault::laser_degradation
                  ? "replace laser"
                  : "repair driver";
    std::printf("%9.0f%% %12.3f %12s %14s\n", x * 100, laser.power_mw(age),
                health_name, fault_name);
  }

  bench::title("Targeted diagnosis (laser vs driver) across the fleet");
  int correct = 0;
  const int trials = 1000;
  for (int i = 0; i < trials; ++i) {
    sim::Rng trial_rng(static_cast<std::uint64_t>(i) + 777);
    sfp::VcselModel unit(params, trial_rng);
    const bool inject_driver_fault = i % 2 == 0;
    if (inject_driver_fault) unit.inject_driver_fault();
    // Observe mid-degradation (or healthy, if driver-faulted young).
    const double age = unit.time_to_failure_hours() * (i % 2 == 0 ? 0.1 : 0.9);
    const auto fault = unit.diagnose(age);
    const bool said_driver = fault == sfp::OpticalFault::driver_fault;
    if (said_driver == inject_driver_fault) ++correct;
  }
  std::printf("diagnosis accuracy over %d mixed faults: %.1f%%\n", trials,
              100.0 * correct / trials);
  bench::note(
      "the paper's argument: standard SFPs are discarded whole when lasers "
      "fail; a FlexSFP's internal telemetry justifies component-level repair "
      "by telling laser wear-out apart from driver malfunction.");
  return 0;
}
