// Shared table-printing and result-emission helpers for the paper benches.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace flexsfp::bench {

/// Repeat count for best-of-N timing loops: FLEXSFP_BENCH_REPEATS overrides
/// the bench's default (clamped to [1, 1000]). Timing benches run their
/// deterministic workload N times and report the fastest run — the one
/// least disturbed by other tenants of the machine.
inline int repeats_from_env(int fallback) {
  const char* env = std::getenv("FLEXSFP_BENCH_REPEATS");
  if (env == nullptr || *env == '\0') return fallback;
  const long parsed = std::strtol(env, nullptr, 10);
  if (parsed < 1) return 1;
  if (parsed > 1000) return 1000;
  return static_cast<int>(parsed);
}

inline void title(const std::string& text) {
  std::printf("\n=== %s ===\n\n", text.c_str());
}

inline void rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void note(const std::string& text) {
  std::printf("note: %s\n", text.c_str());
}

/// Named scalar results of a bench run ("speedup_w4", "delivered_gbps").
using Figures = std::vector<std::pair<std::string, double>>;

/// Write `BENCH_<name>.json` in the working directory: the bench's headline
/// figures plus the full registry snapshot of the run, so CI can archive
/// machine-readable results next to the human tables. Returns false (and
/// says so on stderr) when the file cannot be written.
inline bool write_bench_json(const std::string& name,
                             const obs::MetricSnapshot& snapshot,
                             const Figures& figures = {}) {
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return false;
  }
  std::string doc = "{\"bench\":\"" + name + "\",\"figures\":{";
  for (std::size_t i = 0; i < figures.size(); ++i) {
    if (i != 0) doc += ",";
    doc += "\"" + figures[i].first + "\":";
    if (std::isfinite(figures[i].second)) {
      char buffer[64];
      std::snprintf(buffer, sizeof buffer, "%.17g", figures[i].second);
      doc += buffer;
    } else {
      doc += "null";  // NaN/inf are not JSON
    }
  }
  doc += "},\"metrics\":" + snapshot.to_json() + "}\n";
  const bool ok = std::fputs(doc.c_str(), out) >= 0;
  std::fclose(out);
  if (ok) note("wrote " + path);
  return ok;
}

}  // namespace flexsfp::bench
