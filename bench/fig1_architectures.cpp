// Reproduces Figure 1's architectural comparison as measured behaviour:
//  (a) One-Way-Filter — line rate on the processed direction, pure wire on
//      the reverse path;
//  (b) Two-Way-Core — both directions share the PPE, which therefore needs
//      ~2x the clock for bidirectional line rate;
//  (c) Active-CP — the control plane terminates/originates traffic, and
//      the §4.1 assumption that control traffic is negligible at the
//      egress aggregation point is verified by measurement.
#include <cstdio>

#include "apps/nat.hpp"
#include "bench_util.hpp"
#include "fabric/testbed.hpp"
#include "sfp/mgmt_protocol.hpp"

namespace {

using namespace flexsfp;
using namespace flexsfp::sim;

struct RunOutcome {
  double loss_pct;
  double p99_ns;
  double util_pct;
};

RunOutcome run_shell(sfp::ShellKind kind, double clock_mhz,
                     bool bidirectional) {
  fabric::TestbedConfig config;
  config.module.shell.kind = kind;
  config.module.shell.datapath.clock = hw::ClockDomain::mhz(clock_mhz);
  fabric::TrafficSpec spec;
  spec.rate = DataRate::gbps(10);
  spec.fixed_size = 64;
  spec.duration = 300_us;
  config.edge_traffic = spec;
  if (bidirectional) {
    fabric::TrafficSpec rx = spec;
    rx.seed = 2;
    config.optical_traffic = rx;
  }
  fabric::ModuleTestbed testbed(std::move(config),
                                std::make_unique<apps::StaticNat>());
  const auto result = testbed.run();
  double loss = result.edge_to_optical.loss_rate;
  double p99 = result.edge_to_optical.latency_p99_ns;
  if (bidirectional) {
    loss = (loss + result.optical_to_edge.loss_rate) / 2.0;
    p99 = std::max(p99, result.optical_to_edge.latency_p99_ns);
  }
  return {loss * 100.0, p99, result.ppe_utilization * 100.0};
}

}  // namespace

int main() {
  bench::title("Figure 1 — architecture shells under 10G min-frame load");

  std::printf("%-18s %10s %10s %8s %10s %9s\n", "shell", "PPE clock",
              "traffic", "loss", "p99 lat", "PPE util");
  bench::rule(72);

  struct Case {
    const char* label;
    sfp::ShellKind kind;
    double mhz;
    bool bidir;
  };
  const Case cases[] = {
      {"One-Way-Filter", sfp::ShellKind::one_way_filter, 156.25, false},
      {"One-Way-Filter", sfp::ShellKind::one_way_filter, 156.25, true},
      {"Two-Way-Core", sfp::ShellKind::two_way_core, 156.25, true},
      {"Two-Way-Core", sfp::ShellKind::two_way_core, 200.00, true},
      {"Two-Way-Core", sfp::ShellKind::two_way_core, 312.50, true},
      {"Active-CP", sfp::ShellKind::active_cp, 312.50, true},
  };
  for (const auto& c : cases) {
    const auto outcome = run_shell(c.kind, c.mhz, c.bidir);
    std::printf("%-18s %7.2fMHz %10s %7.2f%% %7.0f ns %8.1f%%\n", c.label,
                c.mhz, c.bidir ? "bidir 2x10G" : "uni 10G", outcome.loss_pct,
                outcome.p99_ns, outcome.util_pct);
  }
  bench::rule(72);
  bench::note(
      "One-Way-Filter is clean at the base clock (reverse path bypasses the "
      "PPE). Two-Way-Core aggregates both directions: lossy at 156.25 MHz, "
      "clean at ~2x — the paper's 'increase the operating frequency' "
      "remedy.");

  // Shell hardware overhead (the "not linear" growth of §4.1).
  bench::title("Shell glue-logic overhead (Figure 1 hardware consideration)");
  std::printf("%-18s %10s %10s %8s\n", "shell", "glue LUT", "glue FF",
              "uSRAM");
  bench::rule(50);
  for (const auto kind :
       {sfp::ShellKind::one_way_filter, sfp::ShellKind::two_way_core}) {
    Simulation sim;
    sfp::ShellConfig config;
    config.kind = kind;
    sfp::ArchitectureShell shell(sim, std::make_unique<apps::StaticNat>(),
                                 config);
    const auto glue = shell.shell_overhead_resources();
    std::printf("%-18s %10llu %10llu %8llu\n",
                sfp::to_string(kind).c_str(),
                static_cast<unsigned long long>(glue.luts),
                static_cast<unsigned long long>(glue.ffs),
                static_cast<unsigned long long>(glue.usram_blocks));
  }

  // Control-plane traffic share at the egress merge (the §4.1 assumption).
  bench::title("Control-traffic share at the egress aggregation point");
  {
    fabric::TestbedConfig config;
    config.module.shell.module_mac = net::MacAddress::from_u64(0xee);
    fabric::TrafficSpec spec;
    spec.rate = DataRate::gbps(9);
    spec.fixed_size = 512;
    spec.duration = 1'000'000'000;  // 1 ms
    config.optical_traffic = spec;  // data plane: optical -> edge

    fabric::ModuleTestbed testbed(std::move(config),
                                  std::make_unique<apps::StaticNat>());
    // A steady stream of management pings (100 req/ms is already generous
    // for a control plane).
    auto& module = testbed.module();
    for (int i = 0; i < 100; ++i) {
      sfp::MgmtRequest request;
      request.seq = static_cast<std::uint32_t>(i);
      request.op = sfp::MgmtOp::ping;
      auto frame = net::make_packet(sfp::make_mgmt_frame(
          net::MacAddress::from_u64(0xee), net::MacAddress::from_u64(0x11),
          request.serialize(sfp::FlexSfpConfig{}.auth_key)));
      testbed.sim().schedule_at(i * 10'000'000, [&module, frame]() {
        module.inject(sfp::FlexSfpModule::edge_port,
                      net::make_packet(*frame));
      });
    }
    const auto result = testbed.run();
    // The edge sink sees data-plane packets AND management responses; split
    // them out by the control plane's own transmit counter.
    const std::uint64_t responses = module.control_plane().responses_sent();
    const std::uint64_t edge_rx = testbed.edge_sink().received().packets();
    const std::uint64_t data_rx = edge_rx - responses;
    const double duration_s = 1e-3;
    const double data_gbps =
        double(data_rx) * (512 + 24) * 8 / duration_s * 1e-9;
    const double mgmt_gbps =
        double(responses) * (60 + 24) * 8 / duration_s * 1e-9;
    std::printf("data-plane egress: %.3f Gb/s, mgmt responses: %.6f Gb/s "
                "(%.4f%% of egress)\n",
                data_gbps, mgmt_gbps, 100.0 * mgmt_gbps / data_gbps);
    const double loss =
        1.0 - double(data_rx) / double(result.optical_to_edge.sent_packets);
    std::printf("data-plane loss with control traffic merged: %.4f%%\n",
                loss * 100.0);
    bench::note(
        "the aggregation step does not become a bottleneck: control traffic "
        "is orders of magnitude below line rate, confirming the Figure 1a "
        "assumption.");
  }
  return 0;
}
