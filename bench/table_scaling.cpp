// Ablation for §5.1's closing remark — the 32,768-flow NAT table "still
// showing promising potential for larger tables": sweep the table size and
// report LSRAM consumption, fit, and the largest table each PolarFire part
// can host alongside the fixed blocks.
#include <cstdio>

#include "apps/nat.hpp"
#include "bench_util.hpp"
#include "hw/device.hpp"
#include "hw/resource_model.hpp"

int main() {
  using namespace flexsfp;

  bench::title("NAT table scaling on the MPF200T (paper build: 32,768 flows)");

  const auto device = hw::FpgaDevice::mpf200t();
  const auto fixed = hw::ResourceModel::miv_rv32() +
                     hw::ResourceModel::ethernet_iface_electrical() +
                     hw::ResourceModel::ethernet_iface_optical();
  const hw::DatapathConfig dp{};

  std::printf("%-12s %10s %12s %12s %8s\n", "flows", "LSRAM", "LSRAM util",
              "total LUT", "fits?");
  bench::rule(60);
  for (const std::uint32_t flows :
       {4096u, 16384u, 32768u, 65536u, 98304u, 131072u}) {
    apps::NatConfig config;
    config.table_capacity = flows;
    const apps::StaticNat nat(config);
    const auto usage = nat.resource_usage(dp);
    const auto total = usage + fixed;
    const auto util = device.utilization(total);
    std::printf("%-12u %10llu %11.1f%% %12llu %8s\n", flows,
                static_cast<unsigned long long>(usage.lsram_blocks),
                util.lsram_pct,
                static_cast<unsigned long long>(total.luts),
                device.fits(total) ? "yes" : "NO");
  }
  bench::rule(60);

  bench::title("Largest NAT table per PolarFire part (with fixed blocks)");
  std::printf("%-10s %14s %14s\n", "device", "max flows", "LSRAM util");
  bench::rule(42);
  for (const auto& part : hw::FpgaDevice::polarfire_family()) {
    // Binary-search the largest power-of-two-ish table that fits.
    std::uint32_t best = 0;
    for (std::uint32_t flows = 4096; flows <= 1u << 21; flows += 4096) {
      apps::NatConfig config;
      config.table_capacity = flows;
      const apps::StaticNat nat(config);
      if (part.fits(nat.resource_usage(dp) + fixed)) best = flows;
    }
    apps::NatConfig config;
    config.table_capacity = best;
    const apps::StaticNat nat(config);
    const auto util = part.utilization(nat.resource_usage(dp) + fixed);
    std::printf("%-10s %14u %13.1f%%\n", part.name().c_str(), best,
                util.lsram_pct);
  }
  bench::rule(42);
  bench::note(
      "LSRAM is the binding constraint (100 bits/flow); the MPF200T hosts "
      "~2.8x the paper's table before exhausting its 616 blocks, and the "
      "MPF500T reaches several hundred thousand flows — the 'promising "
      "potential for larger tables' quantified.");
  return 0;
}
