// Mechanism bench for §4.2's over-the-network reprogramming: transfer an
// authenticated bitstream in-band while traffic flows, measure the transfer
// time, flash-programming time and the datapath outage window.
#include <cstdio>

#include "apps/acl.hpp"
#include "apps/nat.hpp"
#include "bench_util.hpp"
#include "fabric/testbed.hpp"
#include "hw/spi_flash.hpp"
#include "sfp/mgmt_protocol.hpp"

int main() {
  using namespace flexsfp;
  using namespace flexsfp::sim;

  bench::title("Section 4.2 — in-band reconfiguration under traffic");

  // Build the replacement bitstream (ACL app) up front so the traffic
  // window can be positioned around the computed outage.
  const auto key = sfp::FlexSfpConfig{}.auth_key;
  apps::AclConfig acl_config;
  const auto bitstream =
      hw::Bitstream::create("acl", acl_config.serialize(), key);
  const auto image = bitstream.serialize();
  const auto flash_time =
      hw::SpiFlash::program_time(bitstream.flash_size_bytes());

  fabric::TestbedConfig config;
  config.module.shell.module_mac = net::MacAddress::from_u64(0xee);
  fabric::TrafficSpec spec;
  spec.rate = DataRate::gbps(5);
  spec.fixed_size = 512;
  // Straddle the expected dark window: flash programming overlaps with
  // forwarding, so traffic only needs to cover the FPGA reload.
  spec.start = flash_time - 75'000'000'000;  // 75 ms before the reboot
  spec.duration = 300'000'000'000;           // 300 ms window
  config.edge_traffic = spec;

  fabric::ModuleTestbed testbed(std::move(config),
                                std::make_unique<apps::StaticNat>());
  auto& module = testbed.module();

  // Drive the chunked transfer over the management protocol.
  const std::size_t chunk_size = 64;
  const std::size_t chunks = (image.size() + chunk_size - 1) / chunk_size;
  std::uint32_t seq = 0;
  TimePs when = 1'000'000;  // start 1 us in
  auto send = [&](sfp::MgmtRequest request) {
    request.seq = seq++;
    auto frame = net::make_packet(sfp::make_mgmt_frame(
        net::MacAddress::from_u64(0xee), net::MacAddress::from_u64(0x11),
        request.serialize(key)));
    testbed.sim().schedule_at(when, [&module, frame]() {
      module.inject(sfp::FlexSfpModule::edge_port,
                    net::make_packet(*frame));
    });
    when += 5'000'000;  // 5 us between requests
  };

  sfp::MgmtRequest begin;
  begin.op = sfp::MgmtOp::reconfig_begin;
  begin.payload.resize(2);
  net::write_be16(begin.payload, 0, static_cast<std::uint16_t>(chunks));
  send(begin);
  for (std::size_t i = 0; i < chunks; ++i) {
    sfp::MgmtRequest chunk;
    chunk.op = sfp::MgmtOp::reconfig_chunk;
    chunk.payload.resize(2);
    net::write_be16(chunk.payload, 0, static_cast<std::uint16_t>(i));
    const std::size_t offset = i * chunk_size;
    const std::size_t len = std::min(chunk_size, image.size() - offset);
    chunk.payload.insert(chunk.payload.end(), image.begin() + offset,
                         image.begin() + offset + len);
    send(chunk);
  }
  sfp::MgmtRequest commit;
  commit.op = sfp::MgmtOp::reconfig_commit;
  send(commit);

  const auto result = testbed.run();

  std::printf("bitstream container size:        %zu bytes (%zu chunks of "
              "%zu B)\n",
              image.size(), chunks, chunk_size);
  std::printf("flash image size (shell + app):  %zu bytes\n",
              bitstream.flash_size_bytes());
  std::printf("in-band transfer time:           %s\n",
              format_time(static_cast<TimePs>(chunks + 2) * 5'000'000)
                  .c_str());
  std::printf("flash erase+program time:        %s (old app keeps "
              "forwarding)\n",
              format_time(flash_time).c_str());
  std::printf("FPGA reload (datapath outage):   %s\n",
              format_time(module.last_outage_ps()).c_str());
  std::printf("running app after reconfig:      %s\n",
              module.app().name().c_str());
  std::printf("reconfigurations completed:      %llu\n",
              static_cast<unsigned long long>(module.reconfigurations()));
  std::printf("packets lost while dark:         %llu of %llu (%.3f%%)\n",
              static_cast<unsigned long long>(module.packets_lost_while_dark()),
              static_cast<unsigned long long>(
                  result.edge_to_optical.sent_packets),
              100.0 * double(module.packets_lost_while_dark()) /
                  double(result.edge_to_optical.sent_packets));
  bench::note(
      "the outage is bounded by the FPGA configuration reload, not by the "
      "transfer or flash programming (both overlap with forwarding). The "
      "in-band transfer carries the signed application image; the shell "
      "bitstream is already resident in another flash slot — the modular, "
      "drop-in upgrade path of Section 2.1.");
  return 0;
}
