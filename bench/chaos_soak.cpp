// Chaos soak bench: drive a FlexSFP module through escalating fault
// profiles — random loss, BER corruption, duplication, reorder, link flaps,
// and a mid-run PPE fault with golden-image reboot — and audit the
// zero-black-hole invariant after each: every offered packet is delivered
// or sits in a named counter. Emits BENCH_chaos.json for CI.
//
// usage: chaos_soak [duration_us]   (default 1000)
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "apps/rate_limiter.hpp"
#include "apps/register.hpp"
#include "bench_util.hpp"
#include "fabric/testbed.hpp"
#include "sim/fault_injector.hpp"

namespace {

using namespace flexsfp;

struct Scenario {
  const char* name;
  sim::FaultSpec faults;
  bool degrade_mid_run = false;  // PPE fault at 20%, golden reboot at 60%
};

}  // namespace

int main(int argc, char** argv) {
  using namespace flexsfp::sim;

  std::uint64_t duration_us = 1000;
  if (argc > 1) duration_us = std::strtoull(argv[1], nullptr, 10);
  if (duration_us == 0) duration_us = 1000;
  const auto duration = static_cast<TimePs>(duration_us) * 1'000'000;

  apps::register_builtin_apps();
  bench::title("Chaos soak — zero-black-hole audit under injected faults");
  std::printf("per-scenario traffic: 2 Gb/s CBR for %llu us\n\n",
              static_cast<unsigned long long>(duration_us));

  std::vector<Scenario> scenarios;
  {
    Scenario calm{"calm", {}, false};
    scenarios.push_back(calm);

    Scenario lossy{"lossy", {}, false};
    lossy.faults.drop_prob = 0.05;
    lossy.faults.ber = 1e-6;
    lossy.faults.seed = 7;
    scenarios.push_back(lossy);

    Scenario flappy{"flappy", {}, false};
    flappy.faults.drop_prob = 0.01;
    flappy.faults.duplicate_prob = 0.02;
    flappy.faults.reorder_prob = 0.01;
    flappy.faults.flaps.push_back({duration / 5, duration / 10});
    flappy.faults.flaps.push_back({duration / 2, duration / 10});
    flappy.faults.seed = 13;
    scenarios.push_back(flappy);

    Scenario hostile{"hostile", {}, true};
    hostile.faults.drop_prob = 0.05;
    hostile.faults.ber = 1e-6;
    hostile.faults.duplicate_prob = 0.02;
    hostile.faults.reorder_prob = 0.02;
    hostile.faults.flaps.push_back({duration / 4, duration / 8});
    hostile.faults.seed = 99;
    scenarios.push_back(hostile);
  }

  std::printf("%-9s %9s %9s %8s %8s %8s %8s %8s %10s %6s\n", "scenario",
              "sent", "recvd", "dropped", "flapped", "corrupt", "dup",
              "dark", "unaccount", "ok?");
  bench::rule(92);

  bool all_balanced = true;
  bench::Figures figures;
  obs::MetricSnapshot last_snapshot;
  for (const Scenario& scenario : scenarios) {
    fabric::TestbedConfig config;
    fabric::TrafficSpec traffic;
    traffic.rate = DataRate::gbps(2);
    traffic.duration = duration;
    traffic.flow_count = 64;
    config.edge_traffic = traffic;
    const bool has_injector =
        scenario.faults.any_random_fault() || !scenario.faults.flaps.empty();
    if (has_injector) config.edge_faults = scenario.faults;

    // A default RateLimiter polices nothing (all loss in this soak is
    // injected, never policy) and is registry-backed, so the golden image
    // can re-instantiate it on reboot.
    fabric::ModuleTestbed testbed(std::move(config),
                                  std::make_unique<apps::RateLimiter>());
    bool reboot_ok = !scenario.degrade_mid_run;
    if (scenario.degrade_mid_run) {
      testbed.sim().schedule_at(duration / 5,
                                [&testbed]() { testbed.module().fault_ppe(); });
      testbed.sim().schedule_at(duration * 3 / 5, [&testbed, &reboot_ok]() {
        reboot_ok = testbed.module().reboot_from_golden();
      });
    }
    const auto result = testbed.run();
    const auto& tally = result.edge_fault_tally;

    // The black-hole audit, both ledgers:
    //   injector:  delivered + total_dropped == sent + duplicated
    //   module:    received == delivered - queue drops - app drops - dark
    const std::uint64_t sent = result.edge_to_optical.sent_packets;
    const std::uint64_t received = result.edge_to_optical.received_packets;
    const std::uint64_t delivered = has_injector ? tally.delivered : sent;
    const std::uint64_t dark = testbed.module().packets_lost_while_dark();
    const bool injector_balanced =
        !has_injector ||
        tally.delivered + tally.total_dropped() == sent + tally.duplicated;
    const std::uint64_t accounted =
        delivered - result.ppe_queue_drops - result.app_drops - dark;
    const std::uint64_t unaccounted =
        accounted >= received ? accounted - received : received - accounted;
    const bool recovered =
        !scenario.degrade_mid_run ||
        (reboot_ok && testbed.module().state() == sfp::ModuleState::running);
    const bool balanced = injector_balanced && unaccounted == 0 && recovered;
    all_balanced = all_balanced && balanced;

    std::printf("%-9s %9llu %9llu %8llu %8llu %8llu %8llu %8llu %10llu %6s\n",
                scenario.name, static_cast<unsigned long long>(sent),
                static_cast<unsigned long long>(received),
                static_cast<unsigned long long>(tally.total_dropped()),
                static_cast<unsigned long long>(tally.flap_dropped),
                static_cast<unsigned long long>(tally.corrupted),
                static_cast<unsigned long long>(tally.duplicated),
                static_cast<unsigned long long>(dark),
                static_cast<unsigned long long>(unaccounted),
                balanced ? "yes" : "NO");

    const std::string prefix = std::string(scenario.name) + "_";
    figures.emplace_back(prefix + "sent", double(sent));
    figures.emplace_back(prefix + "received", double(received));
    figures.emplace_back(prefix + "injected_drops",
                         double(tally.total_dropped()));
    figures.emplace_back(prefix + "unaccounted", double(unaccounted));
    if (scenario.degrade_mid_run) {
      figures.emplace_back(prefix + "degraded_forwards",
                           double(testbed.module().shell().degraded_forwards()));
    }
    last_snapshot = result.metrics;
  }

  std::printf("\n");
  if (all_balanced) {
    bench::note(
        "zero black holes: every scenario's packet ledger balances — "
        "delivered + named drops == offered + duplicates, end to end.");
  } else {
    bench::note("LEDGER IMBALANCE: at least one packet vanished without a "
                "counter. This is the §3 failure mode the design forbids.");
  }
  figures.emplace_back("all_balanced", all_balanced ? 1.0 : 0.0);
  const bool wrote = bench::write_bench_json("chaos", last_snapshot, figures);
  return all_balanced && wrote ? 0 : 1;
}
