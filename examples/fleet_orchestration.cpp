// Centralized orchestration across a fleet of FlexSFPs (§4.1: the control
// interface "is essential for centralized orchestration across a fleet of
// FlexSFPs, while preserving the independence of per-port behavior").
//
// A 4-port legacy switch carries a FlexSFP in every cage; one controller
// behind port 3 health-checks the fleet, pushes per-port policy, deploys a
// new application to every module over the wire, and reads back counters.
#include <cstdio>

#include "apps/bpf_filter.hpp"
#include "apps/nat.hpp"
#include "fabric/legacy_switch.hpp"
#include "fabric/orchestrator.hpp"

int main() {
  using namespace flexsfp;
  using namespace flexsfp::sim;

  Simulation sim;
  fabric::LegacySwitch sw(sim, 4);

  // Three FlexSFP-equipped subscriber ports. Management frames arrive on
  // the fiber side, so each module polices optical->edge and punts mgmt.
  fabric::FleetOrchestrator orchestrator(
      sim, fabric::OrchestratorConfig{.key = sfp::FlexSfpConfig{}.auth_key});

  std::vector<std::shared_ptr<sfp::FlexSfpModule>> fleet;
  for (std::size_t port = 0; port < 3; ++port) {
    sfp::FlexSfpConfig config;
    config.boot_at_start = false;
    config.shell.module_mac = net::MacAddress::from_u64(0x02ee00 + port);
    auto module = std::make_shared<sfp::FlexSfpModule>(
        sim, std::make_unique<apps::StaticNat>(), config);
    sw.plug_flexsfp(port, module);
    sw.set_fiber_tx(port, [](net::PacketPtr) {});
    const std::string name = "port-" + std::to_string(port);
    auto* raw = module.get();
    orchestrator.add_module(name, config.shell.module_mac,
                            [raw](net::PacketPtr p) {
                              raw->inject(sfp::FlexSfpModule::edge_port,
                                          std::move(p));
                            });
    // Responses leave on the module's edge (toward the ASIC); intercept
    // them before the switch floods them by feeding the orchestrator first.
    module->set_egress_handler(
        sfp::FlexSfpModule::edge_port,
        [&orchestrator](net::PacketPtr p) { orchestrator.deliver(*p); });
    fleet.push_back(std::move(module));
  }
  sw.plug_standard(3, std::make_shared<sfp::StandardSfp>(sim));
  sw.set_fiber_tx(3, [](net::PacketPtr) {});

  // 1. Health-check the fleet.
  int alive = 0;
  for (int i = 0; i < 3; ++i) {
    orchestrator.ping("port-" + std::to_string(i), 0xbeef,
                      [&alive](std::optional<sfp::MgmtResponse> r) {
                        if (r && r->status == sfp::MgmtStatus::ok) ++alive;
                      });
  }
  sim.run();
  std::printf("fleet health check: %d/3 modules answered\n", alive);

  // 2. Per-port policy: different NAT mappings on each module.
  int installs = 0;
  for (std::uint32_t i = 0; i < 3; ++i) {
    orchestrator.table_insert(
        "port-" + std::to_string(i), "nat", 0x0a000000u + i,
        0x63000000u + i, [&installs](std::optional<sfp::MgmtResponse> r) {
          if (r && r->status == sfp::MgmtStatus::ok) ++installs;
        });
  }
  sim.run();
  std::printf("per-port NAT entries installed: %d/3\n", installs);

  // 3. Fleet-wide application rollout: deploy a telnet-blocking BPF filter
  //    to every port, over the wire, with the full chunked protocol. The
  //    compact program matters: the orchestrator statically verifies every
  //    bitstream before pushing it, and the general (IHL-parsing) variant
  //    needs more cycles per 64 B packet than 10 Gb/s line rate allows, so
  //    the gate would refuse it (rule FSL002).
  const auto bitstream = hw::Bitstream::create(
      "bpf", apps::bpf_programs::drop_tcp_dport_compact(23).serialize(),
      sfp::FlexSfpConfig{}.auth_key, /*version=*/2);
  int deployed = 0;
  for (int i = 0; i < 3; ++i) {
    orchestrator.deploy_bitstream(
        "port-" + std::to_string(i), bitstream,
        [&deployed](std::optional<sfp::MgmtResponse> r) {
          if (r && r->status == sfp::MgmtStatus::ok) ++deployed;
        },
        /*chunk_size=*/32);
  }
  sim.run();
  std::printf("bitstream rollouts committed: %d/3\n", deployed);
  std::printf("fleet state after reboot:    ");
  for (const auto& module : fleet) {
    std::printf("%s(%s) ", module->app().name().c_str(),
                sfp::to_string(module->state()).c_str());
  }
  std::printf("\n");

  std::printf("orchestrator wire stats: %llu requests, %llu retransmits, "
              "%llu timeouts\n",
              static_cast<unsigned long long>(orchestrator.requests_sent()),
              static_cast<unsigned long long>(
                  orchestrator.retransmissions()),
              static_cast<unsigned long long>(orchestrator.timeouts()));
  std::printf("\nevery port now runs the new filter; per-port behavior "
              "stayed independent throughout (no switch involvement).\n");
  return 0;
}
