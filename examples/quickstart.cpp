// Quickstart: build a FlexSFP module running the NAT case study, push a
// packet through it, and inspect what the module reports about itself —
// resources, fit, and power. Start here.
#include <cstdio>

#include "apps/nat.hpp"
#include "fabric/traffic_gen.hpp"
#include "sfp/flexsfp.hpp"

int main() {
  using namespace flexsfp;

  // 1. A simulation world and a FlexSFP module. The default configuration
  //    is the paper's prototype: One-Way-Filter shell, 64-bit datapath at
  //    156.25 MHz on an MPF200T, 10G interfaces.
  sim::Simulation sim;
  sfp::FlexSfpConfig config;
  config.boot_at_start = false;  // skip the 8 ms boot for the demo

  auto nat = std::make_unique<apps::StaticNat>();
  nat->add_mapping(*net::Ipv4Address::parse("10.0.0.5"),
                   *net::Ipv4Address::parse("203.0.113.5"));
  sfp::FlexSfpModule module(sim, std::move(nat), config);

  // 2. Catch whatever leaves on the optical side.
  net::PacketPtr egressed;
  module.set_egress_handler(sfp::FlexSfpModule::optical_port,
                            [&egressed](net::PacketPtr packet) {
                              egressed = std::move(packet);
                            });

  // 3. Build a frame and inject it on the edge (host) side.
  auto frame = net::make_packet(
      net::PacketBuilder()
          .ethernet(net::MacAddress::from_u64(0x0200deadbeef),
                    net::MacAddress::from_u64(0x0200cafef00d))
          .ipv4(*net::Ipv4Address::parse("10.0.0.5"),
                *net::Ipv4Address::parse("8.8.8.8"), net::IpProto::udp)
          .udp(5353, 53)
          .payload_size(32)
          .build_packet());

  std::printf("before: %s\n",
              net::parse_packet(*frame).five_tuple()->to_string().c_str());
  module.inject(sfp::FlexSfpModule::edge_port, std::move(frame));
  sim.run();

  // 4. The NAT rewrote the source address at "line rate", patching the
  //    IPv4 and UDP checksums incrementally.
  if (!egressed) {
    std::printf("nothing egressed?!\n");
    return 1;
  }
  const auto parsed = net::parse_packet(*egressed);
  std::printf("after:  %s\n", parsed.five_tuple()->to_string().c_str());
  std::printf("checksums valid: %s\n",
              net::validate_packet(parsed, egressed->data()).empty() ? "yes"
                                                                     : "no");
  std::printf("module latency:  %s\n",
              sim::format_time(sim.now() -
                               egressed->created_time_ps())
                  .c_str());

  // 5. What the module says about itself.
  std::printf("\nresource report (the paper's Table 1 layout):\n");
  const auto report = module.resource_report();
  for (const auto& component : report.components()) {
    std::printf("  %-12s %s\n", component.name.c_str(),
                component.usage.to_string().c_str());
  }
  std::printf("  fits on %s: %s\n", module.device().name().c_str(),
              module.design_fits() ? "yes" : "no");
  const auto power = module.power(sim.now());
  std::printf("module power: %.2f W (optics %.2f, FPGA static %.2f, "
              "FPGA dynamic %.2f)\n",
              power.total(), power.optics_w, power.fpga_static_w,
              power.fpga_dynamic_w);
  return 0;
}
