// The §2.1 telecom-edge scenario end to end: per-subscriber policy (DoH
// blocking, rate limiting, service VLAN tagging) enforced at the port of a
// legacy aggregation switch, with the policy updated AT RUNTIME through the
// in-band management protocol — no reboot, no switch involvement.
#include <cstdio>

#include "apps/chain.hpp"
#include "apps/rate_limiter.hpp"
#include "apps/sanitizer.hpp"
#include "apps/vlan.hpp"
#include "fabric/traffic_gen.hpp"
#include "sfp/flexsfp.hpp"
#include "sfp/mgmt_protocol.hpp"

int main() {
  using namespace flexsfp;
  using namespace flexsfp::sim;

  Simulation sim;

  // Policy chain: sanitize -> DoH block -> per-subscriber rate limit ->
  // service VLAN tag. Bidirectional shell so the same module could police
  // both directions.
  auto chain = std::make_unique<apps::AppChain>();
  apps::SanitizerConfig sanitizer_config;
  sanitizer_config.block_doh = true;
  auto sanitizer = std::make_unique<apps::Sanitizer>(sanitizer_config);
  sanitizer->add_doh_resolver(*net::Ipv4Address::parse("1.1.1.1"));
  sanitizer->add_doh_resolver(*net::Ipv4Address::parse("8.8.8.8"));
  chain->append(std::move(sanitizer));

  auto limiter = std::make_unique<apps::RateLimiter>();
  // Subscriber 10.7.0.0/24: 50 Mb/s plan.
  limiter->add_subscriber(*net::Ipv4Prefix::parse("10.7.0.0/24"),
                          {50'000'000, 16'384});
  auto* limiter_raw = limiter.get();
  chain->append(std::move(limiter));

  apps::VlanConfig vlan_config;
  vlan_config.mode = apps::VlanMode::push;
  vlan_config.vid = 201;  // service VLAN for this OLT port
  chain->append(std::make_unique<apps::VlanTagger>(vlan_config));

  sfp::FlexSfpConfig config;
  config.boot_at_start = false;
  config.shell.kind = sfp::ShellKind::two_way_core;
  config.shell.datapath.clock = hw::ClockDomain::mhz(312.5);
  config.shell.module_mac = net::MacAddress::from_u64(0x02ee);
  sfp::FlexSfpModule module(sim, std::move(chain), config);

  fabric::Sink upstream(sim, /*retain_last=*/65536);
  module.set_egress_handler(sfp::FlexSfpModule::optical_port,
                            [&upstream](net::PacketPtr p) {
                              upstream.handle_packet(std::move(p));
                            });
  std::vector<sfp::MgmtResponse> mgmt_responses;
  module.set_egress_handler(
      sfp::FlexSfpModule::edge_port, [&mgmt_responses](net::PacketPtr p) {
        if (const auto body = sfp::mgmt_body(*p)) {
          if (const auto response = sfp::MgmtResponse::parse(*body)) {
            mgmt_responses.push_back(*response);
          }
        }
      });

  // Subscriber traffic: 200 Mb/s offered from 10.7.0.0/24 (4x the plan),
  // including some DoH attempts.
  sim::LambdaHandler into_module([&module](net::PacketPtr p) {
    module.inject(sfp::FlexSfpModule::edge_port, std::move(p));
  });
  fabric::TrafficSpec spec;
  spec.rate = DataRate::mbps(200);
  spec.fixed_size = 600;
  spec.duration = 20'000'000'000;  // 20 ms
  spec.src_base = *net::Ipv4Address::parse("10.7.0.0");
  spec.flow_count = 64;
  fabric::TrafficGen gen(sim, spec, into_module);
  gen.start();

  // DoH attempts sprinkled in.
  int doh_sent = 0;
  for (int i = 0; i < 20; ++i) {
    sim.schedule_at(static_cast<TimePs>(i) * 1'000'000'000,
                    [&module, &doh_sent, i]() {
      auto packet = net::make_packet(
          net::PacketBuilder()
              .ethernet(net::MacAddress::from_u64(2),
                        net::MacAddress::from_u64(1))
              .ipv4(*net::Ipv4Address::parse("10.7.0.42"),
                    *net::Ipv4Address::parse("1.1.1.1"), net::IpProto::tcp)
              .tcp(static_cast<std::uint16_t>(40000 + i), 443)
              .payload_size(80)
              .build_packet());
      module.inject(sfp::FlexSfpModule::edge_port, std::move(packet));
      ++doh_sent;
    });
  }

  // At t = 10 ms the operator pushes a runtime policy update in band:
  // block a newly-flagged DoH resolver (9.9.9.9) — a table write, applied
  // atomically while traffic flows.
  sim.schedule_at(10'000'000'000, [&module, &config]() {
    sfp::MgmtRequest request;
    request.seq = 1;
    request.op = sfp::MgmtOp::table_insert;
    request.table = "sanitizer.doh_resolvers";
    request.key = net::Ipv4Address::parse("9.9.9.9")->value();
    request.value = 1;
    auto frame = net::make_packet(sfp::make_mgmt_frame(
        net::MacAddress::from_u64(0x02ee), net::MacAddress::from_u64(0x11),
        request.serialize(config.auth_key)));
    module.inject(sfp::FlexSfpModule::edge_port, std::move(frame));
  });

  sim.run();

  const double delivered_mbps =
      upstream.received().bits_per_second(spec.duration) * 1e-6;
  std::printf("offered:   200 Mb/s from subscriber 10.7.0.0/24 "
              "(plan: 50 Mb/s)\n");
  std::printf("delivered: %.1f Mb/s upstream (policed: %llu packets)\n",
              delivered_mbps,
              static_cast<unsigned long long>(limiter_raw->policed()));
  std::printf("DoH attempts sent: %d; upstream saw port-443-to-resolver "
              "frames: ", doh_sent);
  int doh_leaked = 0;
  const auto resolver = *net::Ipv4Address::parse("1.1.1.1");
  for (const auto& packet : upstream.retained()) {
    const auto parsed = net::parse_packet(packet->data());
    const auto tuple = parsed.five_tuple();
    if (tuple && tuple->dst_port == 443 && tuple->dst == resolver) {
      ++doh_leaked;
    }
  }
  std::printf("%d\n", doh_leaked);

  // Everything that made it upstream wears the service VLAN.
  std::printf("runtime policy update acknowledged: %s (status %s)\n",
              mgmt_responses.empty() ? "NO" : "yes",
              mgmt_responses.empty()
                  ? "-"
                  : to_string(mgmt_responses.front().status).c_str());
  std::printf("\nupstream rate stayed at the subscriber's plan while the "
              "module enforced DoH policy and tagged VLAN %d — all inside "
              "the transceiver.\n", 201);
  return 0;
}
