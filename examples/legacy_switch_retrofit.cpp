// The §2.1 scenario: a fixed-function L2 aggregation switch gains per-port
// firewalling and flow telemetry by swapping two of its transceivers for
// FlexSFPs — no change to the switch, its OS, or its other ports.
//
// Topology: subscribers A and B reach ports 0 and 1 through FlexSFPs
// (sanitizer + ACL + flowstats each); the uplink keeps a plain SFP on
// port 2. The switch itself is untouched.
#include <cstdio>

#include "apps/acl.hpp"
#include "apps/chain.hpp"
#include "apps/sanitizer.hpp"
#include "apps/telemetry.hpp"
#include "fabric/legacy_switch.hpp"
#include "fabric/traffic_gen.hpp"
#include "net/pcap.hpp"

namespace {

using namespace flexsfp;

std::unique_ptr<apps::AppChain> make_port_policy(apps::FlowStats** stats_out) {
  auto chain = std::make_unique<apps::AppChain>();

  // Screen malformed/martian traffic before anything else sees it.
  apps::SanitizerConfig sanitizer_config;
  sanitizer_config.drop_mask = apps::strict_issue_mask();
  chain->append(std::make_unique<apps::Sanitizer>(sanitizer_config));

  // Block subscriber-to-subscriber SMB and telnet at the port.
  auto acl = std::make_unique<apps::AclFirewall>();
  for (const std::uint16_t port : {445, 139, 23}) {
    apps::AclRuleSpec rule;
    rule.dst_port_range = {{port, port}};
    rule.action = apps::AclAction::deny;
    rule.priority = 10;
    acl->add_rule(rule);
  }
  chain->append(std::move(acl));

  // NetFlow-like per-flow accounting, exported by the operator later.
  auto stats = std::make_unique<apps::FlowStats>();
  *stats_out = stats.get();
  chain->append(std::move(stats));
  return chain;
}

}  // namespace

int main() {
  sim::Simulation sim;
  fabric::LegacySwitch sw(sim, /*port_count=*/3);

  // Ports 0 and 1: FlexSFPs policing traffic that arrives from the fiber.
  apps::FlowStats* stats_a = nullptr;
  apps::FlowStats* stats_b = nullptr;
  sfp::FlexSfpConfig module_config;
  module_config.boot_at_start = false;
  module_config.shell.direction = sfp::PpeDirection::optical_to_edge;

  auto module_a = std::make_shared<sfp::FlexSfpModule>(
      sim, make_port_policy(&stats_a), module_config);
  auto module_b = std::make_shared<sfp::FlexSfpModule>(
      sim, make_port_policy(&stats_b), module_config);
  sw.plug_flexsfp(0, module_a);
  sw.plug_flexsfp(1, module_b);
  // Port 2 keeps its plain transceiver.
  sw.plug_standard(2, std::make_shared<sfp::StandardSfp>(sim));

  // Capture what reaches the uplink fiber, and keep a pcap for inspection.
  net::PcapWriter pcap("/tmp/flexsfp_retrofit_uplink.pcap");
  std::uint64_t uplink_frames = 0;
  sw.set_fiber_tx(2, [&](net::PacketPtr packet) {
    ++uplink_frames;
    pcap.write(packet->data(), sim::to_micros(sim.now()));
  });
  sw.set_fiber_tx(0, [](net::PacketPtr) {});
  sw.set_fiber_tx(1, [](net::PacketPtr) {});

  // Subscriber A sends a mix of legitimate web traffic and SMB probes
  // toward the uplink gateway's MAC.
  const auto gw_mac = net::MacAddress::from_u64(0x0200000000fe);
  const auto a_mac = net::MacAddress::from_u64(0x02000000000a);
  // Teach the switch where the gateway lives (gratuitous frame from uplink).
  sw.fiber_rx(2, net::make_packet(
                     net::PacketBuilder()
                         .ethernet(net::MacAddress::broadcast(), gw_mac)
                         .ipv4(*net::Ipv4Address::parse("100.64.0.1"),
                               *net::Ipv4Address::parse("100.64.0.2"),
                               net::IpProto::udp)
                         .udp(67, 68)
                         .build_packet()));
  sim.run();

  int sent_web = 0;
  int sent_smb = 0;
  int sent_martian = 0;
  for (int i = 0; i < 300; ++i) {
    net::PacketBuilder builder;
    builder.ethernet(gw_mac, a_mac);
    if (i % 5 == 4) {
      // SMB probe: should die at the port.
      builder.ipv4(*net::Ipv4Address::parse("10.1.0.2"),
                   *net::Ipv4Address::parse("10.2.0.99"), net::IpProto::tcp);
      builder.tcp(50000 + i, 445);
      ++sent_smb;
    } else if (i % 11 == 10) {
      // Martian source: sanitizer food.
      builder.ipv4(*net::Ipv4Address::parse("127.0.0.1"),
                   *net::Ipv4Address::parse("100.64.0.1"), net::IpProto::udp);
      builder.udp(1, 2);
      ++sent_martian;
    } else {
      builder.ipv4(*net::Ipv4Address::parse("10.1.0.2"),
                   *net::Ipv4Address::parse("100.64.0.1"), net::IpProto::tcp);
      builder.tcp(49152 + i % 100, 443);
      ++sent_web;
    }
    builder.payload_size(200);
    auto packet = net::make_packet(builder.build_packet());
    packet->set_created_time_ps(sim.now());
    sw.fiber_rx(0, std::move(packet));
    sim.run();
  }

  std::printf("subscriber A sent: %d web, %d SMB probes, %d martians\n",
              sent_web, sent_smb, sent_martian);
  std::printf("frames that reached the uplink fiber: %llu\n",
              static_cast<unsigned long long>(uplink_frames));
  std::printf("dropped at port 0 by the FlexSFP:     %llu\n",
              static_cast<unsigned long long>(
                  module_a->shell().engine().dropped_by_app()));
  std::printf("(switch itself forwarded %llu, flooded %llu — unmodified)\n",
              static_cast<unsigned long long>(sw.forwarded()),
              static_cast<unsigned long long>(sw.flooded()));

  // The operator reads flow telemetry the legacy switch never had.
  std::printf("\nper-port flow telemetry (port 0):\n");
  const auto records = stats_a->export_all();
  std::size_t shown = 0;
  for (const auto& record : records) {
    if (++shown > 5) break;
    std::printf("  %-46s %6llu pkts %8llu bytes\n",
                record.tuple.to_string().c_str(),
                static_cast<unsigned long long>(record.packets),
                static_cast<unsigned long long>(record.bytes));
  }
  std::printf("  ... %zu flows total; pcap of the uplink written to "
              "/tmp/flexsfp_retrofit_uplink.pcap (%llu records)\n",
              records.size(),
              static_cast<unsigned long long>(pcap.records_written()));
  return 0;
}
