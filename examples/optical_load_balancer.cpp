// §3 "Load balancing is another natural fit ... similar to Katran, but
// executed directly at the optical boundary": a FlexSFP distributes flows
// across uplink next-hops with Maglev consistent hashing; a backend fails
// mid-run and only its flows move.
#include <cstdio>

#include <map>

#include "apps/load_balancer.hpp"
#include "fabric/traffic_gen.hpp"
#include "sfp/flexsfp.hpp"

int main() {
  using namespace flexsfp;
  using namespace flexsfp::sim;

  Simulation sim;

  auto lb = std::make_unique<apps::LoadBalancer>();
  const std::uint32_t backend_count = 4;
  for (std::uint32_t i = 0; i < backend_count; ++i) {
    lb->add_backend(apps::Backend{
        i, net::MacAddress::from_u64(0x020000000100ull + i), true});
  }
  auto* lb_raw = lb.get();

  sfp::FlexSfpConfig config;
  config.boot_at_start = false;
  sfp::FlexSfpModule module(sim, std::move(lb), config);

  // Count egress frames per chosen next-hop MAC, in two phases.
  std::map<std::uint64_t, int> phase1;
  std::map<std::uint64_t, int> phase2;
  // Track each flow's backend before/after the failure for stickiness.
  std::map<std::string, std::uint64_t> flow_backend_before;
  int moved = 0;
  int stayed = 0;
  bool failed_phase = false;

  module.set_egress_handler(
      sfp::FlexSfpModule::optical_port, [&](net::PacketPtr packet) {
        const auto parsed = net::parse_packet(packet->data());
        const std::uint64_t mac = parsed.eth.dst.to_u64();
        const auto tuple = parsed.five_tuple();
        if (!tuple) return;
        const std::string key = tuple->to_string();
        if (!failed_phase) {
          ++phase1[mac];
          flow_backend_before[key] = mac;
        } else {
          ++phase2[mac];
          const auto it = flow_backend_before.find(key);
          if (it != flow_backend_before.end()) {
            if (it->second == mac) {
              ++stayed;
            } else {
              ++moved;
            }
          }
        }
      });

  sim::LambdaHandler into_module([&module](net::PacketPtr p) {
    module.inject(sfp::FlexSfpModule::edge_port, std::move(p));
  });

  // Phase 1: 2 ms of traffic across 256 flows, all backends healthy.
  fabric::TrafficSpec spec;
  spec.rate = DataRate::gbps(5);
  spec.fixed_size = 512;
  spec.duration = 2'000'000'000;
  spec.flow_count = 256;
  spec.zipf_skew = 0.0;
  fabric::TrafficGen gen1(sim, spec, into_module);
  gen1.start();
  sim.run();

  std::printf("phase 1 — %u healthy backends, 256 flows:\n", backend_count);
  for (const auto& [mac, count] : phase1) {
    std::printf("  next-hop %012llx: %5d frames\n",
                static_cast<unsigned long long>(mac), count);
  }

  // Backend 2's health check fails; the control plane rebuilds the Maglev
  // table (one atomic swap for the datapath).
  failed_phase = true;
  lb_raw->set_backend_health(2, false);
  std::printf("\nbackend 2 marked unhealthy — Maglev table rebuilt\n\n");

  // Phase 2: the same 256 flows again (same seed -> same tuples).
  fabric::TrafficSpec spec2 = spec;
  spec2.start = sim.now() + 1'000'000;
  fabric::TrafficGen gen2(sim, spec2, into_module);
  gen2.start();
  sim.run();

  std::printf("phase 2 — backend 2 out:\n");
  for (const auto& [mac, count] : phase2) {
    std::printf("  next-hop %012llx: %5d frames\n",
                static_cast<unsigned long long>(mac), count);
  }
  std::printf("\nflow stickiness through the failure:\n");
  std::printf("  flows that kept their backend: %d\n", stayed);
  std::printf("  flows remapped:                %d\n", moved);
  std::printf("  (consistent hashing: only flows owned by the failed "
              "backend move, ~1/%u of traffic)\n", backend_count);

  const auto usage = module.resource_report().total();
  std::printf("\nwhole design: %s — fits the MPF200T: %s\n",
              usage.to_string().c_str(),
              module.design_fits() ? "yes" : "no");
  return 0;
}
