// Cross-module integration: full frames, full modules, full topologies.
#include <gtest/gtest.h>

#include "apps/chain.hpp"
#include "apps/nat.hpp"
#include "apps/rate_limiter.hpp"
#include "apps/sanitizer.hpp"
#include "apps/telemetry.hpp"
#include "apps/vlan.hpp"
#include "fabric/legacy_switch.hpp"
#include "fabric/testbed.hpp"

namespace flexsfp {
namespace {

using namespace sim;  // time literals

TEST(EndToEnd, NatTranslatesLiveTrafficThroughTheModule) {
  fabric::TestbedConfig config;
  fabric::TrafficSpec spec;
  spec.rate = sim::DataRate::gbps(2);
  spec.duration = 100_us;
  spec.flow_count = 8;
  config.edge_traffic = spec;

  auto nat = std::make_unique<apps::StaticNat>();
  auto* nat_raw = nat.get();
  fabric::ModuleTestbed testbed(std::move(config), std::move(nat));

  // Map every generated source to a translated address.
  fabric::TrafficGen probe(testbed.sim(), spec,
                           testbed.edge_sink());  // only for flow_tuple()
  for (std::size_t rank = 1; rank <= spec.flow_count; ++rank) {
    const auto tuple = probe.flow_tuple(rank);
    ASSERT_TRUE(nat_raw->add_mapping(
        tuple.src, net::Ipv4Address{0x63000000u + std::uint32_t(rank)}));
  }

  const auto result = testbed.run();
  EXPECT_EQ(result.edge_to_optical.loss_rate, 0.0);
  // Spot-check: every source the generator uses is in the NAT table, so
  // the "translated" counter equals the packet count.
  const auto counters = nat_raw->counters();
  EXPECT_EQ(counters[0].packets, result.edge_to_optical.sent_packets);
  EXPECT_EQ(counters[1].packets, 0u);  // no misses
}

TEST(EndToEnd, TelecomEdgeChainEnforcesPolicyPerSubscriber) {
  // §2.1 scenario as a chain: sanitizer (DoH block) -> rate limiter ->
  // VLAN tag, running bidirectionally on a Two-Way-Core shell.
  auto chain = std::make_unique<apps::AppChain>();

  apps::SanitizerConfig sanitizer_config;
  sanitizer_config.block_doh = true;
  auto sanitizer = std::make_unique<apps::Sanitizer>(sanitizer_config);
  sanitizer->add_doh_resolver(net::Ipv4Address::from_octets(1, 1, 1, 1));

  apps::RateLimiterConfig limiter_config;
  auto limiter = std::make_unique<apps::RateLimiter>(limiter_config);
  ASSERT_TRUE(limiter->add_subscriber(*net::Ipv4Prefix::parse("10.0.0.0/16"),
                                      {100'000'000, 8'192}));

  apps::VlanConfig vlan_config;
  vlan_config.mode = apps::VlanMode::push;
  vlan_config.vid = 7;

  auto* limiter_raw = limiter.get();
  chain->append(std::move(sanitizer));
  chain->append(std::move(limiter));
  chain->append(std::make_unique<apps::VlanTagger>(vlan_config));

  fabric::TestbedConfig config;
  config.module.shell.kind = sfp::ShellKind::two_way_core;
  fabric::TrafficSpec spec;
  spec.rate = sim::DataRate::gbps(1);  // over the 100 Mb/s subscriber limit
  spec.duration = 1_ms;
  spec.src_base = net::Ipv4Address::from_octets(10, 0, 0, 0);
  config.edge_traffic = spec;

  fabric::ModuleTestbed testbed(std::move(config), std::move(chain));
  const auto result = testbed.run();

  // The limiter policed the subscriber down to ~100 Mb/s.
  EXPECT_GT(result.app_drops, 0u);
  EXPECT_LT(result.edge_to_optical.delivered_gbps, 0.2);
  EXPECT_GT(limiter_raw->policed(), 0u);
  // What survived is VLAN-tagged.
  EXPECT_GT(testbed.optical_sink().received().packets(), 0u);
}

TEST(EndToEnd, IntPathMeasurementAcrossTwoModules) {
  // Source module stamps at one end of the fiber, sink module strips and
  // measures at the other — in-band telemetry over legacy infrastructure.
  sim::Simulation sim;

  apps::IntStamperConfig source_config;
  source_config.role = apps::StamperRole::source;
  source_config.device_id = 1;
  sfp::FlexSfpConfig module_config;
  module_config.boot_at_start = false;
  sfp::FlexSfpModule source(sim, std::make_unique<apps::IntStamper>(source_config),
                            module_config);

  apps::IntStamperConfig sink_config;
  sink_config.role = apps::StamperRole::sink;
  auto sink_app = std::make_unique<apps::IntStamper>(sink_config);
  auto* sink_raw = sink_app.get();
  sfp::FlexSfpConfig sink_module_config;
  sink_module_config.boot_at_start = false;
  sink_module_config.shell.direction = sfp::PpeDirection::optical_to_edge;
  sfp::FlexSfpModule sink_module(sim, std::move(sink_app), sink_module_config);

  // Fiber between the two optical ports: 2 km of glass ~ 10 us.
  fabric::Sink end_host(sim);
  source.set_egress_handler(
      sfp::FlexSfpModule::optical_port, [&](net::PacketPtr p) {
        sim.schedule_in(10_us, [&sink_module, p = std::move(p)]() mutable {
          sink_module.inject(sfp::FlexSfpModule::optical_port, std::move(p));
        });
      });
  sink_module.set_egress_handler(sfp::FlexSfpModule::edge_port,
                                 [&](net::PacketPtr p) {
                                   end_host.handle_packet(std::move(p));
                                 });

  sim::LambdaHandler into_source([&source](net::PacketPtr p) {
    source.inject(sfp::FlexSfpModule::edge_port, std::move(p));
  });
  fabric::TrafficSpec spec;
  spec.rate = sim::DataRate::gbps(1);
  spec.duration = 100_us;
  fabric::TrafficGen gen(sim, spec, into_source);
  gen.start();
  sim.run();

  EXPECT_GT(sink_raw->sink_samples(), 0u);
  // Measured one-way latency must be >= the 10 us fiber delay.
  EXPECT_GT(sink_raw->mean_path_latency_ns(), 10'000.0);
  EXPECT_LT(sink_raw->mean_path_latency_ns(), 20'000.0);
  // Telemetry shims never escape to the end host.
  EXPECT_GT(end_host.received().packets(), 0u);
  for (const auto& packet : end_host.retained()) {
    EXPECT_FALSE(sfp::is_mgmt_frame(*packet));
  }
}

TEST(EndToEnd, FlowStatsExportMatchesGeneratedTraffic) {
  fabric::TestbedConfig config;
  fabric::TrafficSpec spec;
  spec.rate = sim::DataRate::gbps(2);
  spec.duration = 200_us;
  spec.flow_count = 32;
  spec.zipf_skew = 0.0;
  config.edge_traffic = spec;

  auto stats = std::make_unique<apps::FlowStats>();
  auto* stats_raw = stats.get();
  fabric::ModuleTestbed testbed(std::move(config), std::move(stats));
  const auto result = testbed.run();

  const auto records = stats_raw->export_all();
  std::uint64_t total_packets = 0;
  for (const auto& record : records) total_packets += record.packets;
  EXPECT_EQ(total_packets, result.edge_to_optical.sent_packets);
  EXPECT_LE(records.size(), 32u);
  EXPECT_GT(records.size(), 10u);
}

}  // namespace
}  // namespace flexsfp
