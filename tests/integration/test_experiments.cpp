// Guard rails over the paper-facing experiment results: these assertions
// encode the *shape* each bench must reproduce (who wins, where the
// crossovers fall), so a regression in any model breaks a test before it
// breaks EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "apps/nat.hpp"
#include "fabric/baselines.hpp"
#include "fabric/testbed.hpp"
#include "hw/cost_model.hpp"
#include "hw/design_catalog.hpp"

namespace flexsfp {
namespace {

using namespace sim;  // time literals

TEST(Experiments, LineRateHoldsAcrossFrameSizes) {
  // §5.1: the NAT sustains 10G line rate regardless of frame size.
  for (const std::size_t frame : {64, 128, 512, 1024, 1518}) {
    fabric::TestbedConfig config;
    fabric::TrafficSpec spec;
    spec.rate = DataRate::gbps(10);
    spec.fixed_size = frame;
    spec.duration = 100_us;
    config.edge_traffic = spec;
    fabric::ModuleTestbed testbed(std::move(config),
                                  std::make_unique<apps::StaticNat>());
    const auto result = testbed.run();
    EXPECT_DOUBLE_EQ(result.edge_to_optical.loss_rate, 0.0)
        << "frame " << frame;
  }
}

TEST(Experiments, Figure1CrossoverAtDoubledClock) {
  // Sweep the PPE clock under bidirectional min-frame load: the loss->zero
  // crossover must land at ~2x the base 156.25 MHz clock.
  auto loss_at = [](double mhz) {
    fabric::TestbedConfig config;
    config.module.shell.kind = sfp::ShellKind::two_way_core;
    config.module.shell.datapath.clock = hw::ClockDomain::mhz(mhz);
    fabric::TrafficSpec spec;
    spec.rate = DataRate::gbps(10);
    spec.fixed_size = 64;
    spec.duration = 100_us;
    config.edge_traffic = spec;
    fabric::TrafficSpec rx = spec;
    rx.seed = 2;
    config.optical_traffic = rx;
    fabric::ModuleTestbed testbed(std::move(config),
                                  std::make_unique<apps::StaticNat>());
    const auto result = testbed.run();
    return (result.edge_to_optical.loss_rate +
            result.optical_to_edge.loss_rate) /
           2.0;
  };
  EXPECT_GT(loss_at(156.25), 0.2);   // heavy loss at base clock
  EXPECT_GT(loss_at(200.0), 0.01);   // still lossy below the crossover
  EXPECT_LT(loss_at(320.0), 0.001);  // clean at ~2x
}

TEST(Experiments, CheapPathLatencyOrdering) {
  // §2: FlexSFP must beat the SmartNIC, which must beat the CPU path.
  // FlexSFP in-module latency:
  fabric::TestbedConfig config;
  fabric::TrafficSpec spec;
  spec.rate = DataRate::gbps(5);
  spec.fixed_size = 256;
  spec.duration = 100_us;
  config.edge_traffic = spec;
  fabric::ModuleTestbed testbed(std::move(config),
                                std::make_unique<apps::StaticNat>());
  const double flexsfp_p50_ns = testbed.run().edge_to_optical.latency_p50_ns;

  Simulation sim;
  fabric::SmartNic nic(sim);
  fabric::CpuPath cpu(sim);
  fabric::Sink nic_sink(sim);
  fabric::Sink cpu_sink(sim);
  nic.set_output([&](net::PacketPtr p) { nic_sink.handle_packet(std::move(p)); });
  cpu.set_output([&](net::PacketPtr p) { cpu_sink.handle_packet(std::move(p)); });
  for (int i = 0; i < 200; ++i) {
    auto a = net::make_packet(net::Bytes(256, 0));
    a->set_created_time_ps(0);
    nic.handle_packet(std::move(a));
    auto b = net::make_packet(net::Bytes(256, 0));
    b->set_created_time_ps(0);
    cpu.handle_packet(std::move(b));
  }
  sim.run();
  const double nic_p50_ns = to_nanos(nic_sink.latency().percentile(50));
  const double cpu_p50_ns = to_nanos(cpu_sink.latency().percentile(50));

  EXPECT_LT(flexsfp_p50_ns, nic_p50_ns);
  EXPECT_LT(nic_p50_ns, cpu_p50_ns);
}

TEST(Experiments, Table2OnlyHxdpFits) {
  const auto device = hw::FpgaDevice::mpf200t();
  int fits = 0;
  std::string fitting;
  for (const auto& design : hw::table2_designs()) {
    if (hw::check_fit(design, device).fits()) {
      ++fits;
      fitting = design.name;
    }
  }
  EXPECT_EQ(fits, 1);
  EXPECT_NE(fitting.find("hXDP"), std::string::npos);
}

TEST(Experiments, Table3FlexSfpIsTheCheapPath) {
  const auto rows = hw::table3_platforms();
  const auto& flexsfp = rows.back();
  // Cheapest absolute cost and lowest power of every platform.
  for (std::size_t i = 0; i + 1 < rows.size(); ++i) {
    EXPECT_GT(rows[i].raw_cost.lo, flexsfp.raw_cost.hi) << rows[i].name;
    EXPECT_GT(rows[i].raw_power_lo_w, flexsfp.raw_power_hi_w) << rows[i].name;
  }
}

TEST(Experiments, ScalabilityNeedsBiggerDeviceAt100G) {
  // §5.3: the 100G design point (512-bit datapath) must outgrow the
  // MPF200T's comfortable margins relative to the 64-bit build.
  const apps::StaticNat nat;
  const auto at64 = nat.resource_usage({64, hw::clock_156_25_mhz});
  const auto at512 = nat.resource_usage({512, hw::ClockDomain::mhz(200)});
  EXPECT_GT(at512.luts, 2 * at64.luts);
}

}  // namespace
}  // namespace flexsfp
