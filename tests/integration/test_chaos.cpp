// Chaos soak: subject a full module (and the sharded testbed) to the fault
// processes of sim::FaultInjector and prove the zero-black-hole invariant —
// every packet the experiment offered is either delivered or sits in a
// named counter. Also exercises the graceful-degradation path end to end:
// PPE fault -> dumb-cable passthrough -> golden reboot -> full recovery.
#include <gtest/gtest.h>

#include "apps/rate_limiter.hpp"
#include "apps/register.hpp"
#include "fabric/orchestrator.hpp"
#include "fabric/parallel_testbed.hpp"
#include "fabric/testbed.hpp"
#include "sim/fault_injector.hpp"

namespace flexsfp {
namespace {

using namespace sim;  // time literals

// Forward-everything app: any loss in these tests is injected, never
// application policy.
class PassApp final : public ppe::PpeApp {
 public:
  std::string name() const override { return "pass"; }
  ppe::Verdict process(ppe::PacketContext&) override {
    return ppe::Verdict::forward;
  }
  hw::ResourceUsage resource_usage(const hw::DatapathConfig&) const override {
    return {};
  }
};

TEST(ChaosSoak, NoPacketIsEverBlackHoled) {
  fabric::TestbedConfig config;
  fabric::TrafficSpec traffic;
  traffic.rate = DataRate::gbps(2);
  traffic.duration = 500_us;
  traffic.flow_count = 16;
  config.edge_traffic = traffic;

  FaultSpec faults;
  faults.drop_prob = 0.05;
  faults.ber = 1e-6;
  faults.duplicate_prob = 0.02;
  faults.reorder_prob = 0.01;
  faults.flaps.push_back(FlapWindow{100_us, 50_us});
  faults.seed = 99;
  config.edge_faults = faults;

  fabric::ModuleTestbed testbed(std::move(config),
                                std::make_unique<PassApp>());
  const auto result = testbed.run();
  const auto& tally = result.edge_fault_tally;

  ASSERT_GT(result.edge_to_optical.sent_packets, 0u);
  // The injector's ledger balances: everything offered is delivered,
  // dropped-with-counter, or a duplicate it created itself.
  EXPECT_EQ(tally.delivered + tally.total_dropped(),
            result.edge_to_optical.sent_packets + tally.duplicated);
  EXPECT_GT(tally.dropped, 0u);
  EXPECT_GT(tally.flap_dropped, 0u);  // the 50 us outage really bit

  // Downstream of the injector the module keeps its own ledger; the sink
  // receives exactly what survived every *named* loss mechanism.
  EXPECT_EQ(result.edge_to_optical.received_packets,
            tally.delivered - result.ppe_queue_drops - result.app_drops -
                testbed.module().packets_lost_while_dark());

  // And the same story is visible through the obs:: registry.
  EXPECT_EQ(result.metrics.value("fault.dropped{injector=fault.edge}"),
            tally.dropped);
  EXPECT_EQ(result.metrics.value("fault.delivered{injector=fault.edge}"),
            tally.delivered);
}

TEST(ChaosSoak, ModuleDegradesAndRecoversWithoutBlackHoling) {
  fabric::TestbedConfig config;
  fabric::TrafficSpec traffic;
  traffic.rate = DataRate::gbps(2);
  traffic.duration = 1_ms;
  config.edge_traffic = traffic;

  // The golden image re-instantiates the app through the registry, so this
  // scenario needs a *registered* pass-through app: a default RateLimiter
  // has no subscribers and polices nothing.
  apps::register_builtin_apps();
  fabric::ModuleTestbed testbed(std::move(config),
                                std::make_unique<apps::RateLimiter>());
  // Mid-run the PPE faults; later the module reboots from its golden image.
  testbed.sim().schedule_at(200_us, [&testbed]() {
    testbed.module().fault_ppe();
  });
  testbed.sim().schedule_at(600_us, [&testbed]() {
    ASSERT_TRUE(testbed.module().reboot_from_golden());
  });

  const auto result = testbed.run();
  EXPECT_EQ(testbed.module().degradations(), 1u);
  EXPECT_EQ(testbed.module().state(), sfp::ModuleState::running);
  EXPECT_FALSE(testbed.module().shell().degraded());
  // The degraded window forwarded as a dumb cable (no PPE, no loss); only
  // the golden reboot's dark window lost packets — and counted every one.
  EXPECT_GT(testbed.module().shell().degraded_forwards(), 0u);
  EXPECT_EQ(result.edge_to_optical.received_packets,
            result.edge_to_optical.sent_packets - result.ppe_queue_drops -
                result.app_drops - testbed.module().packets_lost_while_dark());
}

TEST(ChaosSoak, MgmtPlaneSurvivesTargetedLossThroughRetries) {
  // Orchestrator -> module path through an injector that eats 30% of the
  // management frames: the retry machinery still lands every operation.
  Simulation sim;
  sfp::FlexSfpConfig module_config;
  module_config.boot_at_start = false;
  module_config.shell.module_mac = net::MacAddress::from_u64(0x02ee00);
  sfp::FlexSfpModule module(sim, std::make_unique<PassApp>(), module_config);
  module.set_egress_handler(sfp::FlexSfpModule::optical_port,
                            [](net::PacketPtr) {});

  fabric::OrchestratorConfig orch_config;
  orch_config.key = sfp::FlexSfpConfig{}.auth_key;
  orch_config.timeout_ps = 1'000'000'000;  // 1 ms
  orch_config.max_retries = 6;
  fabric::FleetOrchestrator orchestrator(sim, orch_config);
  module.set_egress_handler(
      sfp::FlexSfpModule::edge_port,
      [&orchestrator](net::PacketPtr p) { orchestrator.deliver(*p); });

  LambdaHandler into_module([&module](net::PacketPtr p) {
    module.inject(sfp::FlexSfpModule::edge_port, std::move(p));
  });
  FaultSpec faults;
  faults.target_drop_prob = 0.3;
  faults.seed = 5;
  FaultInjector injector(sim, faults, into_module, "mgmt.chaos");
  injector.set_target_filter(sfp::is_mgmt_frame);
  orchestrator.add_module("module-0", module_config.shell.module_mac,
                          [&injector](net::PacketPtr p) {
                            injector.handle_packet(std::move(p));
                          });

  int answered = 0;
  for (int i = 0; i < 20; ++i) {
    orchestrator.ping("module-0", std::uint64_t(i),
                      [&answered, i](std::optional<sfp::MgmtResponse> r) {
                        ASSERT_TRUE(r.has_value());
                        EXPECT_EQ(r->value, std::uint64_t(i));
                        ++answered;
                      });
  }
  sim.run();
  EXPECT_EQ(answered, 20);
  EXPECT_GT(injector.tally().target_dropped, 0u);
  EXPECT_GT(orchestrator.retransmissions(), 0u);
  EXPECT_EQ(orchestrator.timeouts(), 0u);
}

TEST(ChaosSoak, ParallelShardsStayBitIdenticalWithInjectionEnabled) {
  fabric::ParallelTestbedConfig config;
  config.shards = 4;
  config.workers = 4;
  config.base_seed = 17;
  fabric::TrafficSpec traffic;
  traffic.rate = DataRate::gbps(4);
  traffic.arrivals = fabric::ArrivalProcess::poisson;
  traffic.duration = 100_us;
  config.prototype.edge_traffic = traffic;
  FaultSpec faults;
  faults.drop_prob = 0.05;
  faults.duplicate_prob = 0.02;
  faults.ber = 1e-6;
  config.prototype.edge_faults = faults;

  fabric::ParallelTestbed bed(config, [] {
    return std::make_unique<PassApp>();
  });
  const auto parallel = bed.run();
  const auto sequential = bed.run_sequential();

  ASSERT_GT(parallel.combined.sent.packets(), 0u);
  // The whole registry — fault.* series included — obeys the oracle.
  EXPECT_EQ(parallel.combined_metrics, sequential.combined_metrics);
  EXPECT_GT(parallel.combined_metrics.sum("fault.dropped"), 0u);
  ASSERT_EQ(parallel.shards.size(), sequential.shards.size());
  for (std::size_t i = 0; i < parallel.shards.size(); ++i) {
    const auto& p = parallel.shards[i].result.edge_fault_tally;
    const auto& s = sequential.shards[i].result.edge_fault_tally;
    EXPECT_EQ(p.delivered, s.delivered) << "shard " << i;
    EXPECT_EQ(p.dropped, s.dropped) << "shard " << i;
    EXPECT_EQ(p.corrupted, s.corrupted) << "shard " << i;
    EXPECT_EQ(p.duplicated, s.duplicated) << "shard " << i;
  }

  // Distinct shards run distinct fault streams, and a fault stream never
  // collides with the traffic stream derived from the same base seed.
  const auto f0 = fabric::ParallelTestbed::shard_fault_spec(faults, 17, 0, 0);
  const auto f1 = fabric::ParallelTestbed::shard_fault_spec(faults, 17, 1, 0);
  const auto t0 = fabric::ParallelTestbed::shard_spec(traffic, 17, 0, 0);
  EXPECT_NE(f0.seed, f1.seed);
  EXPECT_NE(f0.seed, t0.seed);
}

}  // namespace
}  // namespace flexsfp
