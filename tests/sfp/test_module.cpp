#include "sfp/flexsfp.hpp"

#include <gtest/gtest.h>

#include "apps/nat.hpp"
#include "net/builder.hpp"

namespace flexsfp::sfp {
namespace {

using namespace sim;  // time literals

net::PacketPtr data_packet() {
  return net::make_packet(
      net::PacketBuilder()
          .ethernet(net::MacAddress::from_u64(0xbb),
                    net::MacAddress::from_u64(0xaa))
          .ipv4(net::Ipv4Address::from_octets(10, 0, 0, 1),
                net::Ipv4Address::from_octets(10, 0, 0, 2), net::IpProto::udp)
          .udp(1, 2)
          .payload_size(40)
          .build_packet());
}

FlexSfpConfig instant_config() {
  FlexSfpConfig config;
  config.boot_at_start = false;
  return config;
}

TEST(FlexSfpModule, ForwardsThroughPpeWhenRunning) {
  Simulation sim;
  FlexSfpModule module(sim, std::make_unique<apps::StaticNat>(),
                       instant_config());
  int out = 0;
  module.set_egress_handler(FlexSfpModule::optical_port,
                            [&out](net::PacketPtr) { ++out; });
  module.inject(FlexSfpModule::edge_port, data_packet());
  sim.run();
  EXPECT_EQ(out, 1);
  EXPECT_EQ(module.state(), ModuleState::running);
}

TEST(FlexSfpModule, BootSequenceDarkensDatapath) {
  Simulation sim;
  FlexSfpConfig config;  // boots at start
  FlexSfpModule module(sim, std::make_unique<apps::StaticNat>(), config);
  EXPECT_EQ(module.state(), ModuleState::booting);
  int out = 0;
  module.set_egress_handler(FlexSfpModule::optical_port,
                            [&out](net::PacketPtr) { ++out; });
  module.inject(FlexSfpModule::edge_port, data_packet());  // lost: booting
  sim.run_until(boot_duration(default_boot_sequence()) + 1_us);
  EXPECT_EQ(module.state(), ModuleState::running);
  EXPECT_EQ(module.packets_lost_while_dark(), 1u);
  module.inject(FlexSfpModule::edge_port, data_packet());
  sim.run();
  EXPECT_EQ(out, 1);
}

TEST(FlexSfpModule, ResourceReportIsTable1Shaped) {
  Simulation sim;
  FlexSfpModule module(sim, std::make_unique<apps::StaticNat>(),
                       instant_config());
  const auto report = module.resource_report();
  ASSERT_EQ(report.components().size(), 4u);
  EXPECT_EQ(report.components()[0].name, "Mi-V");
  EXPECT_EQ(report.components()[1].name, "Elec. I/F");
  EXPECT_EQ(report.components()[2].name, "Opt. I/F");
  EXPECT_EQ(report.components()[3].name, "nat app");
  const auto total = report.total();
  EXPECT_EQ(total.usram_blocks, 278u);  // paper "Used" row
  EXPECT_EQ(total.lsram_blocks, 164u);
  EXPECT_NEAR(double(total.luts), 31455, 40);
  EXPECT_NEAR(double(total.ffs), 25518, 40);
  EXPECT_TRUE(module.design_fits());
}

TEST(FlexSfpModule, GoldenImageSeededInFlashSlot0) {
  Simulation sim;
  FlexSfpModule module(sim, std::make_unique<apps::StaticNat>(),
                       instant_config());
  const auto golden = module.flash().read(0);
  ASSERT_TRUE(golden);
  EXPECT_EQ(golden->app_name(), "nat");
  EXPECT_TRUE(golden->verify(instant_config().auth_key));
}

TEST(FlexSfpModule, PowerWithinTransceiverEnvelope) {
  Simulation sim;
  FlexSfpModule module(sim, std::make_unique<apps::StaticNat>(),
                       instant_config());
  module.set_egress_handler(FlexSfpModule::optical_port,
                            [](net::PacketPtr) {});
  for (int i = 0; i < 100; ++i) {
    module.inject(FlexSfpModule::edge_port, data_packet());
  }
  sim.run();
  const auto power = module.power(sim.now());
  EXPECT_GT(power.total(), 0.7);
  EXPECT_LT(power.total(), 3.0);  // §2 envelope
}

TEST(FlexSfpModule, LaserWearoutFailsModule) {
  Simulation sim;
  FlexSfpModule module(sim, std::make_unique<apps::StaticNat>(),
                       instant_config());
  const double ttf = module.vcsel().time_to_failure_hours();
  EXPECT_EQ(module.check_laser(ttf * 0.5), LaserHealth::nominal);
  EXPECT_EQ(module.state(), ModuleState::running);
  EXPECT_EQ(module.check_laser(ttf + 1), LaserHealth::failed);
  EXPECT_EQ(module.state(), ModuleState::failed);
  // A failed module drops traffic.
  module.inject(FlexSfpModule::edge_port, data_packet());
  EXPECT_EQ(module.packets_lost_while_dark(), 1u);
}

TEST(FlexSfpModule, MgmtFrameReachesControlPlaneAndAnswers) {
  Simulation sim;
  FlexSfpConfig config = instant_config();
  config.shell.module_mac = net::MacAddress::from_u64(0xee);
  FlexSfpModule module(sim, std::make_unique<apps::StaticNat>(), config);

  std::vector<net::PacketPtr> edge_out;
  module.set_egress_handler(FlexSfpModule::edge_port,
                            [&edge_out](net::PacketPtr p) {
                              edge_out.push_back(std::move(p));
                            });

  MgmtRequest request;
  request.seq = 9;
  request.op = MgmtOp::table_insert;
  request.table = "nat";
  request.key = 0x0a000001;
  request.value = 0x01010101;
  auto frame = net::make_packet(make_mgmt_frame(
      config.shell.module_mac, net::MacAddress::from_u64(0x11),
      request.serialize(config.auth_key)));
  module.inject(FlexSfpModule::edge_port, std::move(frame));
  sim.run();

  ASSERT_EQ(edge_out.size(), 1u);
  const auto body = mgmt_body(*edge_out[0]);
  ASSERT_TRUE(body);
  const auto response = MgmtResponse::parse(*body);
  ASSERT_TRUE(response);
  EXPECT_EQ(response->seq, 9u);
  EXPECT_EQ(response->status, MgmtStatus::ok);
  // And the table really changed.
  auto* nat = dynamic_cast<apps::StaticNat*>(&module.app());
  ASSERT_NE(nat, nullptr);
  EXPECT_TRUE(nat->translation_for(net::Ipv4Address{0x0a000001}).has_value());
}

TEST(FlexSfpModule, PpeFaultDegradesToPassthroughInsteadOfBlackHoling) {
  Simulation sim;
  FlexSfpModule module(sim, std::make_unique<apps::StaticNat>(),
                       instant_config());
  int out = 0;
  module.set_egress_handler(FlexSfpModule::optical_port,
                            [&out](net::PacketPtr) { ++out; });
  module.fault_ppe();
  EXPECT_EQ(module.state(), ModuleState::degraded);
  EXPECT_TRUE(module.is_degraded());
  EXPECT_EQ(module.degradations(), 1u);
  module.inject(FlexSfpModule::edge_port, data_packet());
  sim.run();
  // Degrade to dumb cable, never black-hole: the packet crossed.
  EXPECT_EQ(out, 1);
  EXPECT_EQ(module.packets_lost_while_dark(), 0u);
  EXPECT_EQ(module.shell().degraded_forwards(), 1u);
}

TEST(FlexSfpModule, DegradeIsIdempotent) {
  Simulation sim;
  FlexSfpModule module(sim, std::make_unique<apps::StaticNat>(),
                       instant_config());
  module.fault_ppe();
  module.fault_ppe();
  EXPECT_EQ(module.degradations(), 1u);
}

TEST(FlexSfpModule, RebootFromGoldenRecoversDegradedModule) {
  Simulation sim;
  FlexSfpModule module(sim, std::make_unique<apps::StaticNat>(),
                       instant_config());
  int out = 0;
  module.set_egress_handler(FlexSfpModule::optical_port,
                            [&out](net::PacketPtr) { ++out; });
  module.fault_ppe();
  ASSERT_TRUE(module.reboot_from_golden());
  sim.run();
  EXPECT_EQ(module.state(), ModuleState::running);
  EXPECT_FALSE(module.shell().degraded());
  module.inject(FlexSfpModule::edge_port, data_packet());
  sim.run();
  EXPECT_EQ(out, 1);  // back through the PPE datapath
  const auto snap = sim.metrics().snapshot();
  EXPECT_EQ(snap.value("module.degraded{module=module}"), 0u);
}

TEST(FlexSfpModule, DegradedMgmtPathStaysAlive) {
  Simulation sim;
  FlexSfpConfig config = instant_config();
  config.shell.module_mac = net::MacAddress::from_u64(0xee);
  FlexSfpModule module(sim, std::make_unique<apps::StaticNat>(), config);
  module.fault_ppe();

  std::vector<net::PacketPtr> edge_out;
  module.set_egress_handler(FlexSfpModule::edge_port,
                            [&edge_out](net::PacketPtr p) {
                              edge_out.push_back(std::move(p));
                            });
  MgmtRequest request;
  request.seq = 4;
  request.op = MgmtOp::ping;
  request.value = 77;
  auto frame = net::make_packet(make_mgmt_frame(
      config.shell.module_mac, net::MacAddress::from_u64(0x11),
      request.serialize(config.auth_key)));
  module.inject(FlexSfpModule::edge_port, std::move(frame));
  sim.run();
  ASSERT_EQ(edge_out.size(), 1u);
  const auto body = mgmt_body(*edge_out[0]);
  ASSERT_TRUE(body);
  const auto response = MgmtResponse::parse(*body);
  ASSERT_TRUE(response);
  EXPECT_EQ(response->status, MgmtStatus::ok);
  EXPECT_EQ(response->value, 77u);
}

TEST(ModuleStateStrings, Names) {
  EXPECT_EQ(to_string(ModuleState::running), "running");
  EXPECT_EQ(to_string(ModuleState::rebooting), "rebooting");
  EXPECT_EQ(to_string(ModuleState::degraded), "degraded");
}

}  // namespace
}  // namespace flexsfp::sfp
