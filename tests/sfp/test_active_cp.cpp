// Active-CP services: ICMP termination and control-plane-originated flow
// export — §4.1's third architecture, where the SFP becomes "an active
// network component capable of generating traffic".
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/telemetry.hpp"
#include "fabric/traffic_gen.hpp"
#include "net/builder.hpp"
#include "net/checksum.hpp"
#include "sfp/exporter.hpp"
#include "sfp/flexsfp.hpp"

namespace flexsfp::sfp {
namespace {

using namespace sim;  // time literals

FlexSfpConfig active_config() {
  FlexSfpConfig config;
  config.boot_at_start = false;
  config.shell.kind = ShellKind::active_cp;
  config.shell.module_mac = net::MacAddress::from_u64(0x02ee);
  config.cp_ip = net::Ipv4Address::parse("192.0.2.10");
  return config;
}

net::PacketPtr echo_request(net::Ipv4Address target,
                            std::uint16_t id = 7, std::uint16_t seq = 1) {
  return net::make_packet(
      net::PacketBuilder()
          .ethernet(net::MacAddress::from_u64(0x02ee),
                    net::MacAddress::from_u64(0x11))
          .ipv4(*net::Ipv4Address::parse("192.0.2.1"), target,
                net::IpProto::icmp)
          .icmp_echo(id, seq)
          .payload_size(32)
          .build_packet());
}

TEST(ActiveCp, AnswersIcmpEchoToItsOwnIp) {
  Simulation sim;
  const auto config = active_config();
  FlexSfpModule module(sim, std::make_unique<apps::FlowStats>(), config);

  std::vector<net::PacketPtr> edge_out;
  module.set_egress_handler(FlexSfpModule::edge_port,
                            [&edge_out](net::PacketPtr p) {
                              edge_out.push_back(std::move(p));
                            });

  module.inject(FlexSfpModule::edge_port, echo_request(*config.cp_ip));
  sim.run();

  ASSERT_EQ(edge_out.size(), 1u);
  const auto parsed = net::parse_packet(edge_out[0]->data());
  ASSERT_TRUE(parsed.outer.icmp);
  EXPECT_EQ(parsed.outer.icmp->type, 0);  // echo reply
  EXPECT_EQ(parsed.outer.ipv4->src, *config.cp_ip);
  EXPECT_EQ(parsed.outer.ipv4->dst, *net::Ipv4Address::parse("192.0.2.1"));
  EXPECT_EQ(parsed.eth.src, net::MacAddress::from_u64(0x02ee));
  // ICMP checksum remains valid after the incremental type patch.
  const std::size_t l4 = parsed.outer.l4_offset;
  const net::BytesView covered{edge_out[0]->data().data() + l4,
                               edge_out[0]->data().size() - l4};
  EXPECT_EQ(net::internet_checksum(covered), 0);
  EXPECT_EQ(module.control_plane().pings_answered(), 1u);
}

TEST(ActiveCp, IgnoresEchoToOtherAddresses) {
  Simulation sim;
  const auto config = active_config();
  FlexSfpModule module(sim, std::make_unique<apps::FlowStats>(), config);
  int replies = 0;
  module.set_egress_handler(FlexSfpModule::edge_port,
                            [&replies](net::PacketPtr) { ++replies; });
  // Addressed to the module MAC but a different IP: terminated, no answer.
  module.inject(FlexSfpModule::edge_port,
                echo_request(*net::Ipv4Address::parse("192.0.2.99")));
  sim.run();
  EXPECT_EQ(replies, 0);
  EXPECT_EQ(module.control_plane().pings_answered(), 0u);
}

TEST(ActiveCp, NonActiveShellsDoNotTerminateIcmp) {
  Simulation sim;
  auto config = active_config();
  config.shell.kind = ShellKind::one_way_filter;
  FlexSfpModule module(sim, std::make_unique<apps::FlowStats>(), config);
  int optical_out = 0;
  module.set_egress_handler(FlexSfpModule::optical_port,
                            [&optical_out](net::PacketPtr) { ++optical_out; });
  module.inject(FlexSfpModule::edge_port, echo_request(*config.cp_ip));
  sim.run();
  EXPECT_EQ(optical_out, 1);  // forwarded like any other frame
}

TEST(ExportRecord, SerializeParseRoundTrip) {
  apps::FlowRecord flow;
  flow.tuple = {net::Ipv4Address{0x0a000001}, net::Ipv4Address{0xc0a80001},
                1234, 443, 6};
  flow.packets = 99;
  flow.bytes = 123456;
  flow.first_seen_ps = 5'000'000'000;  // 5 ms
  flow.last_seen_ps = 9'000'000'000;
  flow.tcp_flags_seen = 0x12;

  const auto record = ExportRecord::from_flow(flow);
  net::Bytes buffer(ExportRecord::size());
  record.serialize_to(buffer, 0);
  const auto parsed = ExportRecord::parse(buffer, 0);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->tuple, flow.tuple);
  EXPECT_EQ(parsed->packets, 99u);
  EXPECT_EQ(parsed->bytes, 123456u);
  EXPECT_EQ(parsed->first_seen_us, 5000u);
  EXPECT_EQ(parsed->last_seen_us, 9000u);
  EXPECT_EQ(parsed->tcp_flags, 0x12);
}

TEST(FlowExporter, ExportsSweptFlowsAsUdpDatagrams) {
  Simulation sim;
  auto config = active_config();
  config.shell.kind = ShellKind::one_way_filter;

  apps::FlowStatsConfig stats_config;
  stats_config.idle_timeout_ps = 500'000'000;  // 0.5 ms idle -> export fast
  FlexSfpModule module(
      sim, std::make_unique<apps::FlowStats>(stats_config), config);

  // Collector behind the edge port.
  std::vector<ExportRecord> collected;
  module.set_egress_handler(
      FlexSfpModule::edge_port, [&collected](net::PacketPtr packet) {
        if (const auto records = FlowExporter::decode(*packet)) {
          collected.insert(collected.end(), records->begin(), records->end());
        }
      });
  module.set_egress_handler(FlexSfpModule::optical_port,
                            [](net::PacketPtr) {});

  FlowExporterConfig exporter_config;
  exporter_config.interval_ps = 2'000'000'000;  // sweep every 2 ms
  exporter_config.collector_mac = net::MacAddress::from_u64(0xc0);
  exporter_config.collector_ip = *net::Ipv4Address::parse("198.51.100.9");
  exporter_config.exporter_ip = *config.cp_ip;
  FlowExporter exporter(sim, module, exporter_config);
  exporter.start();

  // A burst of traffic across 20 flows, then silence.
  sim::LambdaHandler into([&module](net::PacketPtr p) {
    module.inject(FlexSfpModule::edge_port, std::move(p));
  });
  fabric::TrafficSpec spec;
  spec.rate = DataRate::gbps(1);
  spec.duration = 1'000'000'000;  // 1 ms
  spec.flow_count = 20;
  spec.zipf_skew = 0.0;
  fabric::TrafficGen gen(sim, spec, into);
  gen.start();

  sim.run_until(10'000'000'000);  // 10 ms: several sweeps

  EXPECT_GT(exporter.datagrams_sent(), 0u);
  EXPECT_GT(exporter.records_exported(), 0u);
  EXPECT_EQ(collected.size(), exporter.records_exported());
  // Accounting conservation: exported packet counts equal generated.
  std::uint64_t exported_packets = 0;
  for (const auto& record : collected) exported_packets += record.packets;
  EXPECT_EQ(exported_packets, gen.emitted().packets());
}

TEST(FlowExporter, SplitsLargeSweepsAcrossDatagrams) {
  Simulation sim;
  auto config = active_config();
  config.shell.kind = ShellKind::one_way_filter;
  apps::FlowStatsConfig stats_config;
  stats_config.idle_timeout_ps = 1;  // everything is idle at sweep time
  FlexSfpModule module(
      sim, std::make_unique<apps::FlowStats>(stats_config), config);

  int datagrams = 0;
  module.set_egress_handler(FlexSfpModule::edge_port,
                            [&datagrams](net::PacketPtr packet) {
                              if (FlowExporter::decode(*packet)) ++datagrams;
                            });
  module.set_egress_handler(FlexSfpModule::optical_port,
                            [](net::PacketPtr) {});

  FlowExporterConfig exporter_config;
  exporter_config.interval_ps = 5'000'000'000;
  exporter_config.max_records_per_packet = 8;
  FlowExporter exporter(sim, module, exporter_config);
  exporter.start();

  sim::LambdaHandler into([&module](net::PacketPtr p) {
    module.inject(FlexSfpModule::edge_port, std::move(p));
  });
  fabric::TrafficSpec spec;
  spec.rate = DataRate::gbps(1);
  spec.duration = 1'000'000'000;
  spec.flow_count = 40;
  spec.zipf_skew = 0.0;
  fabric::TrafficGen gen(sim, spec, into);
  gen.start();
  sim.run_until(6'000'000'000);

  EXPECT_GT(datagrams, 1);  // > 8 flows -> several datagrams
}

TEST(FlowExporter, ClampsRecordCountToTheWireFormatLimit) {
  // Regression: the wire format's count field is one byte. A configuration
  // above 255 used to emit `count mod 256` while serializing every record,
  // silently desynchronizing collectors. The constructor now clamps.
  Simulation sim;
  auto config = active_config();
  config.shell.kind = ShellKind::one_way_filter;
  apps::FlowStatsConfig stats_config;
  stats_config.idle_timeout_ps = 1;  // everything is idle at sweep time
  FlexSfpModule module(
      sim, std::make_unique<apps::FlowStats>(stats_config), config);

  std::vector<std::size_t> datagram_sizes;
  std::size_t collected = 0;
  module.set_egress_handler(
      FlexSfpModule::edge_port,
      [&datagram_sizes, &collected](net::PacketPtr packet) {
        const auto records = FlowExporter::decode(*packet);
        ASSERT_TRUE(records.has_value());
        datagram_sizes.push_back(records->size());
        collected += records->size();
      });
  module.set_egress_handler(FlexSfpModule::optical_port,
                            [](net::PacketPtr) {});

  FlowExporterConfig exporter_config;
  exporter_config.interval_ps = 5'000'000'000;
  exporter_config.max_records_per_packet = 1000;  // beyond the u8 field
  FlowExporter exporter(sim, module, exporter_config);
  exporter.start();

  sim::LambdaHandler into([&module](net::PacketPtr p) {
    module.inject(FlexSfpModule::edge_port, std::move(p));
  });
  fabric::TrafficSpec spec;
  spec.rate = DataRate::gbps(1);
  spec.duration = 1'000'000'000;
  spec.flow_count = 300;  // more flows than one datagram can carry
  spec.zipf_skew = 0.0;
  fabric::TrafficGen gen(sim, spec, into);
  gen.start();
  sim.run_until(6'000'000'000);

  ASSERT_GT(collected, 255u);
  EXPECT_EQ(collected, exporter.records_exported());
  // The overflow split at exactly the wire-format boundary.
  EXPECT_EQ(*std::max_element(datagram_sizes.begin(), datagram_sizes.end()),
            255u);
  EXPECT_GE(datagram_sizes.size(), 2u);
}

TEST(FlowExporter, DecodeRejectsCountBeyondTheDatagram) {
  // Regression: decode() used to bound the record count only by the buffer
  // size, so an Ethernet-padded (or trailer-bearing) frame with a corrupted
  // count decoded "records" out of bytes past the UDP datagram's end.
  net::Bytes payload(8);
  net::write_be16(payload, 0, 0x4658);  // magic
  payload[2] = 1;                       // version
  payload[3] = 2;                       // claims 2 records it does not carry
  net::write_be32(payload, 4, 0);       // sequence
  const auto frame =
      net::PacketBuilder()
          .ethernet(net::MacAddress::from_u64(0xc0),
                    net::MacAddress::from_u64(0x02ee))
          .ipv4(*net::Ipv4Address::parse("192.0.2.10"),
                *net::Ipv4Address::parse("198.51.100.9"), net::IpProto::udp)
          .udp(2055, 2055)
          .payload(payload)
          .build_packet();
  // Append two records' worth of trailer bytes after the datagram — the
  // bytes the old decoder would have misread as flow records.
  net::Bytes bytes = frame.data();
  bytes.insert(bytes.end(), 2 * ExportRecord::size(), 0xee);
  const net::Packet padded{bytes};
  EXPECT_FALSE(FlowExporter::decode(padded).has_value());

  // Positive control: the same datagram honestly claiming zero records
  // decodes fine, trailer and all.
  net::Bytes honest = bytes;
  const std::size_t payload_offset =
      net::parse_packet(honest).outer.payload_offset;
  honest[payload_offset + 3] = 0;
  const auto records = FlowExporter::decode(net::Packet{honest});
  ASSERT_TRUE(records.has_value());
  EXPECT_TRUE(records->empty());
}

TEST(FlowExporter, DecodeRejectsTruncatedUdpLength) {
  net::Bytes payload(8);
  net::write_be16(payload, 0, 0x4658);
  payload[2] = 1;
  payload[3] = 0;
  net::write_be32(payload, 4, 0);
  const auto frame =
      net::PacketBuilder()
          .ethernet(net::MacAddress::from_u64(0xc0),
                    net::MacAddress::from_u64(0x02ee))
          .ipv4(*net::Ipv4Address::parse("192.0.2.10"),
                *net::Ipv4Address::parse("198.51.100.9"), net::IpProto::udp)
          .udp(2055, 2055)
          .payload(payload)
          .build_packet();
  // Corrupt the UDP length field so it cannot even cover the export header.
  net::Bytes bytes = frame.data();
  const std::size_t udp_offset = 14 + 20;  // eth + ipv4 (no options)
  net::write_be16(bytes, udp_offset + 4, 9);
  EXPECT_FALSE(FlowExporter::decode(net::Packet{bytes}).has_value());
}

TEST(FlowExporter, NoFlowStatsStageMeansNoExports) {
  Simulation sim;
  auto config = active_config();
  config.shell.kind = ShellKind::one_way_filter;
  FlexSfpModule module(sim, std::make_unique<apps::Sampler>(), config);
  FlowExporter exporter(sim, module, FlowExporterConfig{});
  exporter.start();
  sim.run_until(3'000'000'000'000);
  EXPECT_EQ(exporter.datagrams_sent(), 0u);
}

}  // namespace
}  // namespace flexsfp::sfp
