#include "sfp/vcsel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace flexsfp::sfp {
namespace {

VcselModel make(std::uint64_t seed = 1) {
  sim::Rng rng(seed);
  return VcselModel(VcselParams{}, rng);
}

TEST(Vcsel, NewLaserIsNominalAtFullPower) {
  const auto laser = make();
  EXPECT_EQ(laser.health(0), LaserHealth::nominal);
  EXPECT_DOUBLE_EQ(laser.power_mw(0), 1.0);
}

TEST(Vcsel, PowerDeclinesMonotonically) {
  const auto laser = make();
  const double ttf = laser.time_to_failure_hours();
  double previous = laser.power_mw(0);
  for (int i = 1; i <= 10; ++i) {
    const double power = laser.power_mw(ttf / 10 * i);
    EXPECT_LE(power, previous);
    previous = power;
  }
}

TEST(Vcsel, FailsExactlyAtWearOutLife) {
  const auto laser = make();
  const double ttf = laser.time_to_failure_hours();
  EXPECT_NE(laser.health(ttf / 2), LaserHealth::failed);
  EXPECT_EQ(laser.health(ttf), LaserHealth::failed);
  EXPECT_DOUBLE_EQ(laser.power_mw(ttf), 0.0);
}

TEST(Vcsel, DegradingStateBeforeFailure) {
  const auto laser = make();
  const double ttf = laser.time_to_failure_hours();
  // Power hits the 0.8 warning threshold at x where 1 - 0.5 x^2 = 0.8
  // -> x ~ 0.632 of life.
  EXPECT_EQ(laser.health(ttf * 0.7), LaserHealth::degrading);
  EXPECT_EQ(laser.health(ttf * 0.5), LaserHealth::nominal);
}

TEST(Vcsel, TtfIsLognormalAcrossPopulation) {
  // Median over many sampled lasers should be near e^mu hours.
  std::vector<double> ttf_hours;
  for (std::uint64_t seed = 0; seed < 501; ++seed) {
    sim::Rng rng(seed);
    const VcselModel laser(VcselParams{}, rng);
    ttf_hours.push_back(laser.time_to_failure_hours());
  }
  std::nth_element(ttf_hours.begin(), ttf_hours.begin() + 250,
                   ttf_hours.end());
  const double expected_median = std::exp(11.68);
  EXPECT_NEAR(ttf_hours[250], expected_median, expected_median * 0.15);
}

TEST(Vcsel, LifetimesAreYearsNotDays) {
  // Sanity on the scale the paper's reliability argument assumes.
  const auto laser = make();
  EXPECT_GT(laser.time_to_failure_hours(), 365.0 * 24.0);  // > 1 year
}

TEST(Vcsel, DiagnosisDistinguishesLaserFromDriver) {
  auto healthy = make();
  EXPECT_EQ(healthy.diagnose(0), OpticalFault::none);

  // Aged laser -> laser degradation.
  const double ttf = healthy.time_to_failure_hours();
  EXPECT_EQ(healthy.diagnose(ttf * 0.9), OpticalFault::laser_degradation);

  // Driver fault dominates the diagnosis even on a young laser.
  auto faulty = make(2);
  faulty.inject_driver_fault();
  EXPECT_EQ(faulty.diagnose(0), OpticalFault::driver_fault);
}

TEST(Vcsel, DifferentSeedsGiveDifferentLifetimes) {
  EXPECT_NE(make(1).time_to_failure_hours(), make(99).time_to_failure_hours());
}

}  // namespace
}  // namespace flexsfp::sfp
