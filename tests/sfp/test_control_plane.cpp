#include "sfp/control_plane.hpp"

#include <gtest/gtest.h>

#include "apps/nat.hpp"

namespace flexsfp::sfp {
namespace {

const hw::AuthKey key{0xabcdef0123456789};

struct CpFixture {
  CpFixture() : cp(sim, ControlPlaneConfig{.key = key,
                               .mac = net::MacAddress::from_u64(0xee),
                               .ip = std::nullopt}) {
    cp.set_app_provider([this]() -> ppe::PpeApp* { return &nat; });
    cp.set_transmit([this](net::PacketPtr packet) {
      const auto body = mgmt_body(*packet);
      ASSERT_TRUE(body);
      const auto response = MgmtResponse::parse(*body);
      ASSERT_TRUE(response);
      responses.push_back(*response);
    });
  }

  /// Send a request and return the response.
  MgmtResponse roundtrip(const MgmtRequest& request, bool sign = true) {
    const auto body = sign ? request.serialize(key)
                           : request.serialize(hw::AuthKey{0xbad});
    auto frame = net::make_packet(make_mgmt_frame(
        net::MacAddress::from_u64(0xee), net::MacAddress::from_u64(0x11),
        body));
    cp.handle_packet(std::move(frame));
    sim.run();
    EXPECT_FALSE(responses.empty());
    const auto response = responses.back();
    return response;
  }

  sim::Simulation sim;
  apps::StaticNat nat;
  ControlPlane cp;
  std::vector<MgmtResponse> responses;
};

TEST(ControlPlane, PingEchoes) {
  CpFixture fx;
  MgmtRequest request;
  request.seq = 5;
  request.op = MgmtOp::ping;
  request.value = 0x1234;
  const auto response = fx.roundtrip(request);
  EXPECT_EQ(response.seq, 5u);
  EXPECT_EQ(response.status, MgmtStatus::ok);
  EXPECT_EQ(response.value, 0x1234u);
}

TEST(ControlPlane, BadSignatureRejected) {
  CpFixture fx;
  MgmtRequest request;
  request.op = MgmtOp::ping;
  const auto response = fx.roundtrip(request, /*sign=*/false);
  EXPECT_EQ(response.status, MgmtStatus::auth_failed);
  EXPECT_EQ(fx.cp.auth_failures(), 1u);
}

TEST(ControlPlane, TableInsertLookupEraseCycle) {
  CpFixture fx;
  MgmtRequest insert;
  insert.op = MgmtOp::table_insert;
  insert.table = "nat";
  insert.key = 0x0a000001;
  insert.value = 0x63000001;
  EXPECT_EQ(fx.roundtrip(insert).status, MgmtStatus::ok);
  // The datapath sees the new entry immediately (runtime update).
  EXPECT_EQ(fx.nat.translation_for(net::Ipv4Address{0x0a000001}),
            net::Ipv4Address{0x63000001});

  MgmtRequest lookup;
  lookup.op = MgmtOp::table_lookup;
  lookup.table = "nat";
  lookup.key = 0x0a000001;
  const auto found = fx.roundtrip(lookup);
  EXPECT_EQ(found.status, MgmtStatus::ok);
  EXPECT_EQ(found.value, 0x63000001u);

  MgmtRequest erase;
  erase.op = MgmtOp::table_erase;
  erase.table = "nat";
  erase.key = 0x0a000001;
  EXPECT_EQ(fx.roundtrip(erase).status, MgmtStatus::ok);
  EXPECT_EQ(fx.roundtrip(lookup).status, MgmtStatus::not_found);
}

TEST(ControlPlane, UnknownTableReported) {
  CpFixture fx;
  MgmtRequest request;
  request.op = MgmtOp::table_insert;
  request.table = "wrong";
  EXPECT_EQ(fx.roundtrip(request).status, MgmtStatus::unknown_table);
}

TEST(ControlPlane, CounterReadReturnsPacketsAndBytes) {
  CpFixture fx;
  MgmtRequest request;
  request.op = MgmtOp::counter_read;
  request.key = 0;  // first counter snapshot
  const auto response = fx.roundtrip(request);
  EXPECT_EQ(response.status, MgmtStatus::ok);
  ASSERT_EQ(response.payload.size(), 16u);

  MgmtRequest out_of_range;
  out_of_range.op = MgmtOp::counter_read;
  out_of_range.key = 999;
  EXPECT_EQ(fx.roundtrip(out_of_range).status, MgmtStatus::not_found);
}

TEST(ControlPlane, OpLatencyIsModeled) {
  CpFixture fx;
  MgmtRequest request;
  request.op = MgmtOp::ping;
  const auto body = request.serialize(key);
  auto frame = net::make_packet(make_mgmt_frame(
      net::MacAddress::from_u64(0xee), net::MacAddress::from_u64(0x11),
      body));
  fx.cp.handle_packet(std::move(frame));
  EXPECT_TRUE(fx.responses.empty());  // nothing until the softcore runs
  fx.sim.run();
  EXPECT_EQ(fx.responses.size(), 1u);
  EXPECT_GE(fx.sim.now(), 2'000'000);  // >= 2 us op latency
}

TEST(ControlPlane, MalformedBodyAnswersMalformed) {
  CpFixture fx;
  auto frame = net::make_packet(make_mgmt_frame(
      net::MacAddress::from_u64(0xee), net::MacAddress::from_u64(0x11),
      net::Bytes{0xde, 0xad}));
  fx.cp.handle_packet(std::move(frame));
  fx.sim.run();
  ASSERT_EQ(fx.responses.size(), 1u);
  EXPECT_EQ(fx.responses[0].status, MgmtStatus::malformed);
}

TEST(ControlPlane, NonMgmtFrameIgnored) {
  CpFixture fx;
  net::Bytes raw(60, 0);
  net::EthernetHeader eth;
  eth.ether_type = static_cast<std::uint16_t>(net::EtherType::ipv4);
  eth.serialize_to(raw, 0);
  fx.cp.handle_packet(net::make_packet(net::Packet{raw}));
  fx.sim.run();
  EXPECT_TRUE(fx.responses.empty());
}

TEST(BootSequence, CoversPaperStartupTasks) {
  const auto steps = default_boot_sequence();
  ASSERT_GE(steps.size(), 4u);
  bool transceiver = false;
  bool laser = false;
  bool amplifier = false;
  bool tables = false;
  for (const auto& step : steps) {
    transceiver |= step.name.find("transceiver") != std::string::npos;
    laser |= step.name.find("laser") != std::string::npos;
    amplifier |= step.name.find("amplifier") != std::string::npos;
    tables |= step.name.find("table") != std::string::npos;
  }
  EXPECT_TRUE(transceiver && laser && amplifier && tables);
  EXPECT_GT(boot_duration(steps), 0);
}

}  // namespace
}  // namespace flexsfp::sfp
