#include "sfp/mgmt_protocol.hpp"

#include <gtest/gtest.h>

#include "net/headers.hpp"

namespace flexsfp::sfp {
namespace {

const hw::AuthKey key{0xfeedfacecafebeef};

MgmtRequest sample_request() {
  MgmtRequest request;
  request.seq = 42;
  request.op = MgmtOp::table_insert;
  request.table = "nat";
  request.key = 0x0a000001;
  request.value = 0x01020304;
  request.payload = {1, 2, 3};
  return request;
}

TEST(MgmtRequest, SerializeParseRoundTrip) {
  const auto wire = sample_request().serialize(key);
  const auto parsed = MgmtRequest::parse(wire);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->seq, 42u);
  EXPECT_EQ(parsed->op, MgmtOp::table_insert);
  EXPECT_EQ(parsed->table, "nat");
  EXPECT_EQ(parsed->key, 0x0a000001u);
  EXPECT_EQ(parsed->value, 0x01020304u);
  EXPECT_EQ(parsed->payload, (net::Bytes{1, 2, 3}));
  EXPECT_TRUE(parsed->verify(key));
}

TEST(MgmtRequest, WrongKeyFailsVerification) {
  const auto wire = sample_request().serialize(key);
  const auto parsed = MgmtRequest::parse(wire);
  ASSERT_TRUE(parsed);
  EXPECT_FALSE(parsed->verify(hw::AuthKey{0x1111}));
}

TEST(MgmtRequest, TamperedFieldFailsVerification) {
  auto wire = sample_request().serialize(key);
  wire[10] ^= 0x01;  // flip a bit inside the signed region
  const auto parsed = MgmtRequest::parse(wire);
  if (parsed) {  // may also fail parsing, both are acceptable rejections
    EXPECT_FALSE(parsed->verify(key));
  }
}

TEST(MgmtRequest, ParseRejectsTruncatedAndGarbage) {
  EXPECT_FALSE(MgmtRequest::parse(net::Bytes{}).has_value());
  EXPECT_FALSE(MgmtRequest::parse(net::Bytes(8, 0)).has_value());
  auto wire = sample_request().serialize(key);
  wire.resize(wire.size() - 10);
  EXPECT_FALSE(MgmtRequest::parse(wire).has_value());
  wire = sample_request().serialize(key);
  wire[5] = 0x7f;  // invalid op
  EXPECT_FALSE(MgmtRequest::parse(wire).has_value());
}

TEST(MgmtResponse, SerializeParseRoundTrip) {
  MgmtResponse response;
  response.seq = 7;
  response.status = MgmtStatus::table_full;
  response.value = 0xdeadbeef;
  response.payload = {9, 8, 7};
  const auto parsed = MgmtResponse::parse(response.serialize());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->seq, 7u);
  EXPECT_EQ(parsed->status, MgmtStatus::table_full);
  EXPECT_EQ(parsed->value, 0xdeadbeefu);
  EXPECT_EQ(parsed->payload, (net::Bytes{9, 8, 7}));
}

TEST(MgmtResponse, ParseRejectsRequestMarker) {
  const auto wire = sample_request().serialize(key);
  EXPECT_FALSE(MgmtResponse::parse(wire).has_value());
}

TEST(MgmtFrame, RoundTripThroughEthernet) {
  const auto body = sample_request().serialize(key);
  const auto frame = make_mgmt_frame(net::MacAddress::from_u64(0xaa),
                                     net::MacAddress::from_u64(0xbb), body);
  EXPECT_TRUE(is_mgmt_frame(frame));
  const auto extracted = mgmt_body(frame);
  ASSERT_TRUE(extracted);
  // Frames are padded to 60 B; the body is a prefix.
  ASSERT_GE(extracted->size(), body.size());
  EXPECT_TRUE(std::equal(body.begin(), body.end(), extracted->begin()));
  const auto reparsed = MgmtRequest::parse(*extracted);
  ASSERT_TRUE(reparsed);
  EXPECT_TRUE(reparsed->verify(key));
}

TEST(MgmtFrame, NonMgmtFrameRejected) {
  net::Bytes raw(60, 0);
  net::EthernetHeader eth;
  eth.ether_type = static_cast<std::uint16_t>(net::EtherType::ipv4);
  eth.serialize_to(raw, 0);
  const net::Packet packet{raw};
  EXPECT_FALSE(is_mgmt_frame(packet));
  EXPECT_FALSE(mgmt_body(packet).has_value());
}

TEST(MgmtStrings, Coverage) {
  EXPECT_EQ(to_string(MgmtOp::reconfig_commit), "reconfig-commit");
  EXPECT_EQ(to_string(MgmtStatus::verify_failed), "verify-failed");
}

}  // namespace
}  // namespace flexsfp::sfp
