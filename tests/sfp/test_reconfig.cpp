// End-to-end tests of §4.2's over-the-network reprogramming: authenticated
// reconfiguration packets carry a new bitstream; an FSM stages it to SPI
// flash and reboots the module into the new application.
#include <gtest/gtest.h>

#include "apps/acl.hpp"
#include "apps/nat.hpp"
#include "sfp/flexsfp.hpp"

namespace flexsfp::sfp {
namespace {

using namespace sim;  // time literals

struct ReconfigFixture {
  ReconfigFixture() {
    config.boot_at_start = false;
    config.shell.module_mac = net::MacAddress::from_u64(0xee);
    module = std::make_unique<FlexSfpModule>(
        sim, std::make_unique<apps::StaticNat>(), config);
    module->set_egress_handler(FlexSfpModule::edge_port,
                               [this](net::PacketPtr p) {
                                 auto body = mgmt_body(*p);
                                 if (!body) return;
                                 auto response = MgmtResponse::parse(*body);
                                 if (response) responses.push_back(*response);
                               });
    module->set_egress_handler(FlexSfpModule::optical_port,
                               [](net::PacketPtr) {});
  }

  void send(const MgmtRequest& request, hw::AuthKey sign_key) {
    auto frame = net::make_packet(
        make_mgmt_frame(config.shell.module_mac,
                        net::MacAddress::from_u64(0x11),
                        request.serialize(sign_key)));
    module->inject(FlexSfpModule::edge_port, std::move(frame));
    sim.run();
  }

  /// Split `image` into chunks and drive the full transfer.
  std::vector<MgmtStatus> transfer(const net::Bytes& image,
                                   std::size_t chunk_size,
                                   hw::AuthKey sign_key) {
    std::vector<MgmtStatus> statuses;
    const std::size_t chunk_count =
        (image.size() + chunk_size - 1) / chunk_size;

    MgmtRequest begin;
    begin.seq = 1;
    begin.op = MgmtOp::reconfig_begin;
    begin.payload.resize(2);
    net::write_be16(begin.payload, 0,
                    static_cast<std::uint16_t>(chunk_count));
    send(begin, sign_key);
    statuses.push_back(responses.back().status);

    for (std::size_t i = 0; i < chunk_count; ++i) {
      MgmtRequest chunk;
      chunk.seq = static_cast<std::uint32_t>(2 + i);
      chunk.op = MgmtOp::reconfig_chunk;
      chunk.payload.resize(2);
      net::write_be16(chunk.payload, 0, static_cast<std::uint16_t>(i));
      const std::size_t offset = i * chunk_size;
      const std::size_t len = std::min(chunk_size, image.size() - offset);
      chunk.payload.insert(chunk.payload.end(), image.begin() + offset,
                           image.begin() + offset + len);
      send(chunk, sign_key);
      statuses.push_back(responses.back().status);
    }

    MgmtRequest commit;
    commit.seq = 1000;
    commit.op = MgmtOp::reconfig_commit;
    send(commit, sign_key);
    statuses.push_back(responses.back().status);
    return statuses;
  }

  Simulation sim;
  FlexSfpConfig config;
  std::unique_ptr<FlexSfpModule> module;
  std::vector<MgmtResponse> responses;
};

TEST(Reconfig, InBandBitstreamSwapsApplication) {
  ReconfigFixture fx;
  EXPECT_EQ(fx.module->app().name(), "nat");

  apps::AclConfig acl_config;
  acl_config.default_action = apps::AclAction::deny;
  const auto bitstream = hw::Bitstream::create(
      "acl", acl_config.serialize(), fx.config.auth_key);
  const auto statuses =
      fx.transfer(bitstream.serialize(), 64, fx.config.auth_key);
  for (const auto status : statuses) {
    EXPECT_EQ(status, MgmtStatus::ok);
  }

  // Flash + reboot happen on simulated time; run to completion.
  fx.sim.run();
  EXPECT_EQ(fx.module->state(), ModuleState::running);
  EXPECT_EQ(fx.module->app().name(), "acl");
  EXPECT_EQ(fx.module->reconfigurations(), 1u);
  // The new image landed in the staging slot.
  const auto staged = fx.module->flash().read(fx.config.staging_slot);
  ASSERT_TRUE(staged);
  EXPECT_EQ(staged->app_name(), "acl");
}

TEST(Reconfig, WrongKeyRejectedBeforeFlashing) {
  ReconfigFixture fx;
  const auto bitstream =
      hw::Bitstream::create("acl", apps::AclConfig{}.serialize(),
                            hw::AuthKey{0xbadbadbad});  // wrong signer
  const auto statuses =
      fx.transfer(bitstream.serialize(), 64, fx.config.auth_key);
  EXPECT_EQ(statuses.back(), MgmtStatus::verify_failed);
  fx.sim.run();
  EXPECT_EQ(fx.module->app().name(), "nat");  // unchanged
  EXPECT_EQ(fx.module->reconfigurations(), 0u);
  EXPECT_FALSE(fx.module->flash().read(fx.config.staging_slot).has_value());
}

TEST(Reconfig, CorruptedChunkFailsCommit) {
  ReconfigFixture fx;
  auto image = hw::Bitstream::create("acl", apps::AclConfig{}.serialize(),
                                     fx.config.auth_key)
                   .serialize();
  image[image.size() / 2] ^= 0xff;  // corrupt mid-transfer
  const auto statuses = fx.transfer(image, 64, fx.config.auth_key);
  EXPECT_EQ(statuses.back(), MgmtStatus::verify_failed);
  EXPECT_EQ(fx.module->app().name(), "nat");
}

TEST(Reconfig, ChunkWithoutBeginIsBadState) {
  ReconfigFixture fx;
  MgmtRequest chunk;
  chunk.op = MgmtOp::reconfig_chunk;
  chunk.payload = {0, 0, 1, 2, 3};
  fx.send(chunk, fx.config.auth_key);
  EXPECT_EQ(fx.responses.back().status, MgmtStatus::bad_state);
}

TEST(Reconfig, CommitWithMissingChunksIsBadState) {
  ReconfigFixture fx;
  MgmtRequest begin;
  begin.op = MgmtOp::reconfig_begin;
  begin.payload.resize(2);
  net::write_be16(begin.payload, 0, 3);  // declare 3 chunks, send none
  fx.send(begin, fx.config.auth_key);
  MgmtRequest commit;
  commit.op = MgmtOp::reconfig_commit;
  fx.send(commit, fx.config.auth_key);
  EXPECT_EQ(fx.responses.back().status, MgmtStatus::bad_state);
}

TEST(Reconfig, AbortResetsFsm) {
  ReconfigFixture fx;
  MgmtRequest begin;
  begin.op = MgmtOp::reconfig_begin;
  begin.payload.resize(2);
  net::write_be16(begin.payload, 0, 2);
  fx.send(begin, fx.config.auth_key);
  EXPECT_EQ(fx.module->control_plane().reconfig_state(),
            ReconfigState::receiving);
  MgmtRequest abort;
  abort.op = MgmtOp::reconfig_abort;
  fx.send(abort, fx.config.auth_key);
  EXPECT_EQ(fx.module->control_plane().reconfig_state(), ReconfigState::idle);
  // A fresh begin now succeeds.
  fx.send(begin, fx.config.auth_key);
  EXPECT_EQ(fx.responses.back().status, MgmtStatus::ok);
}

TEST(Reconfig, RetransmittedChunkIsIdempotent) {
  ReconfigFixture fx;
  const auto image = hw::Bitstream::create(
                         "acl", apps::AclConfig{}.serialize(),
                         fx.config.auth_key)
                         .serialize();
  MgmtRequest begin;
  begin.op = MgmtOp::reconfig_begin;
  begin.payload.resize(2);
  net::write_be16(begin.payload, 0, 1);
  fx.send(begin, fx.config.auth_key);

  MgmtRequest chunk;
  chunk.op = MgmtOp::reconfig_chunk;
  chunk.payload.resize(2);
  net::write_be16(chunk.payload, 0, 0);
  chunk.payload.insert(chunk.payload.end(), image.begin(), image.end());
  fx.send(chunk, fx.config.auth_key);
  fx.send(chunk, fx.config.auth_key);  // retransmit

  MgmtRequest commit;
  commit.op = MgmtOp::reconfig_commit;
  fx.send(commit, fx.config.auth_key);
  EXPECT_EQ(fx.responses.back().status, MgmtStatus::ok);
  fx.sim.run();
  EXPECT_EQ(fx.module->app().name(), "acl");
}

TEST(Reconfig, DatapathDarkDuringReboot) {
  ReconfigFixture fx;
  const auto bitstream = hw::Bitstream::create(
      "acl", apps::AclConfig{}.serialize(), fx.config.auth_key);
  ASSERT_TRUE(fx.module->reconfigure(bitstream));
  // Run until mid-reboot: flash programming finishes first, then the FPGA
  // reload darkens the module.
  const auto flash_time =
      hw::SpiFlash::program_time(bitstream.flash_size_bytes());
  fx.sim.run_until(flash_time + fx.config.fpga_reload_ps / 2);
  EXPECT_EQ(fx.module->state(), ModuleState::rebooting);
  fx.module->inject(FlexSfpModule::edge_port,
                    net::make_packet(net::Bytes(64, 0)));
  EXPECT_EQ(fx.module->packets_lost_while_dark(), 1u);
  fx.sim.run();
  EXPECT_EQ(fx.module->state(), ModuleState::running);
  EXPECT_GT(fx.module->last_outage_ps(), 0);
}

TEST(Reconfig, DirectReconfigureRejectsUnknownApp) {
  ReconfigFixture fx;
  const auto bitstream =
      hw::Bitstream::create("unknown-app", {}, fx.config.auth_key);
  EXPECT_FALSE(fx.module->reconfigure(bitstream));
}

}  // namespace
}  // namespace flexsfp::sfp
