#include "sfp/shell.hpp"

#include <gtest/gtest.h>

#include "apps/nat.hpp"
#include "net/builder.hpp"

namespace flexsfp::sfp {
namespace {

using namespace sim;  // time literals

// Forward-everything stub.
class PassApp final : public ppe::PpeApp {
 public:
  std::string name() const override { return "pass"; }
  ppe::Verdict process(ppe::PacketContext&) override {
    ++processed;
    return ppe::Verdict::forward;
  }
  hw::ResourceUsage resource_usage(const hw::DatapathConfig&) const override {
    return {};
  }
  int processed = 0;
};

net::PacketPtr data_packet() {
  return net::make_packet(
      net::PacketBuilder()
          .ethernet(net::MacAddress::from_u64(0xbb),
                    net::MacAddress::from_u64(0xaa))
          .ipv4(net::Ipv4Address::from_octets(10, 0, 0, 1),
                net::Ipv4Address::from_octets(10, 0, 0, 2), net::IpProto::udp)
          .udp(1, 2)
          .payload_size(30)
          .build_packet());
}

net::PacketPtr mgmt_packet() {
  MgmtRequest request;
  request.op = MgmtOp::ping;
  return net::make_packet(
      make_mgmt_frame(net::MacAddress::from_u64(0xcc),
                      net::MacAddress::from_u64(0xdd),
                      request.serialize(hw::AuthKey{1})));
}

struct ShellFixture {
  explicit ShellFixture(ShellKind kind,
                        PpeDirection direction = PpeDirection::edge_to_optical) {
    ShellConfig config;
    config.kind = kind;
    config.direction = direction;
    config.module_mac = net::MacAddress::from_u64(0xee);
    auto app = std::make_unique<PassApp>();
    app_ = app.get();
    shell = std::make_unique<ArchitectureShell>(sim, std::move(app), config);
    shell->set_egress_handler(ArchitectureShell::edge_port,
                              [this](net::PacketPtr) { ++edge_out; });
    shell->set_egress_handler(ArchitectureShell::optical_port,
                              [this](net::PacketPtr) { ++optical_out; });
    shell->set_control_rx([this](net::PacketPtr) { ++control_rx; });
  }

  Simulation sim;
  std::unique_ptr<ArchitectureShell> shell;
  PassApp* app_ = nullptr;
  int edge_out = 0;
  int optical_out = 0;
  int control_rx = 0;
};

TEST(OneWayFilter, ForwardDirectionGoesThroughPpe) {
  ShellFixture fx(ShellKind::one_way_filter);
  fx.shell->inject(ArchitectureShell::edge_port, data_packet());
  fx.sim.run();
  EXPECT_EQ(fx.app_->processed, 1);
  EXPECT_EQ(fx.optical_out, 1);
  EXPECT_EQ(fx.edge_out, 0);
}

TEST(OneWayFilter, ReverseDirectionBypassesPpe) {
  ShellFixture fx(ShellKind::one_way_filter);
  fx.shell->inject(ArchitectureShell::optical_port, data_packet());
  fx.sim.run();
  EXPECT_EQ(fx.app_->processed, 0);  // figure 1a: reverse path is a wire
  EXPECT_EQ(fx.edge_out, 1);
}

TEST(OneWayFilter, DirectionConfigurable) {
  ShellFixture fx(ShellKind::one_way_filter, PpeDirection::optical_to_edge);
  fx.shell->inject(ArchitectureShell::optical_port, data_packet());
  fx.shell->inject(ArchitectureShell::edge_port, data_packet());
  fx.sim.run();
  EXPECT_EQ(fx.app_->processed, 1);  // only the optical->edge packet
  EXPECT_EQ(fx.edge_out, 1);
  EXPECT_EQ(fx.optical_out, 1);
}

TEST(TwoWayCore, BothDirectionsShareThePpe) {
  ShellFixture fx(ShellKind::two_way_core);
  fx.shell->inject(ArchitectureShell::edge_port, data_packet());
  fx.shell->inject(ArchitectureShell::optical_port, data_packet());
  fx.sim.run();
  EXPECT_EQ(fx.app_->processed, 2);
  EXPECT_EQ(fx.edge_out, 1);
  EXPECT_EQ(fx.optical_out, 1);
}

TEST(Shell, MgmtFramesPuntToControlPlane) {
  ShellFixture fx(ShellKind::one_way_filter);
  fx.shell->inject(ArchitectureShell::edge_port, mgmt_packet());
  fx.sim.run();
  EXPECT_EQ(fx.control_rx, 1);
  EXPECT_EQ(fx.app_->processed, 0);
  EXPECT_EQ(fx.shell->control_punts(), 1u);
}

TEST(ActiveCp, FramesToModuleMacTerminateLocally) {
  ShellFixture fx(ShellKind::active_cp);
  auto packet = net::make_packet(
      net::PacketBuilder()
          .ethernet(net::MacAddress::from_u64(0xee),  // the module's MAC
                    net::MacAddress::from_u64(0xaa))
          .ipv4(net::Ipv4Address::from_octets(10, 0, 0, 1),
                net::Ipv4Address::from_octets(10, 0, 0, 2), net::IpProto::udp)
          .udp(1, 2)
          .build_packet());
  fx.shell->inject(ArchitectureShell::edge_port, std::move(packet));
  fx.sim.run();
  EXPECT_EQ(fx.control_rx, 1);
  EXPECT_EQ(fx.optical_out, 0);
}

TEST(TwoWayCore, FramesToOtherMacsPassThrough) {
  ShellFixture fx(ShellKind::two_way_core);
  fx.shell->inject(ArchitectureShell::edge_port, data_packet());
  fx.sim.run();
  EXPECT_EQ(fx.control_rx, 0);
  EXPECT_EQ(fx.optical_out, 1);
}

TEST(Shell, ControlPlaneTrafficMergesAtEgress) {
  ShellFixture fx(ShellKind::one_way_filter);
  fx.shell->send_from_control(ArchitectureShell::edge_port, data_packet());
  fx.sim.run();
  EXPECT_EQ(fx.edge_out, 1);
}

TEST(Shell, IngressMetersPerPort) {
  ShellFixture fx(ShellKind::two_way_core);
  fx.shell->inject(ArchitectureShell::edge_port, data_packet());
  fx.shell->inject(ArchitectureShell::edge_port, data_packet());
  fx.shell->inject(ArchitectureShell::optical_port, data_packet());
  fx.sim.run();
  EXPECT_EQ(fx.shell->ingress_meter(ArchitectureShell::edge_port).packets(),
            2u);
  EXPECT_EQ(fx.shell->ingress_meter(ArchitectureShell::optical_port).packets(),
            1u);
}

TEST(Shell, InterfaceLatencyAppliedBothWays) {
  ShellFixture fx(ShellKind::one_way_filter);
  TimePs delivered_at = -1;
  fx.shell->set_egress_handler(ArchitectureShell::optical_port,
                               [&](net::PacketPtr) {
                                 delivered_at = fx.sim.now();
                               });
  fx.shell->inject(ArchitectureShell::edge_port, data_packet());
  fx.sim.run();
  // 2 x 100 ns interface latency + PPE + arbiter serialization > 200 ns.
  EXPECT_GE(delivered_at, 200'000);
}

TEST(Shell, TwoWayCoreHasMoreGlueThanOneWay) {
  ShellFixture one(ShellKind::one_way_filter);
  ShellFixture two(ShellKind::two_way_core);
  const auto one_glue = one.shell->shell_overhead_resources();
  const auto two_glue = two.shell->shell_overhead_resources();
  EXPECT_GT(two_glue.luts, one_glue.luts);
  // But far from double: the shared-PPE argument of §4.1.
  EXPECT_LT(two_glue.luts, 2 * one_glue.luts);
}

TEST(Shell, DegradedModeBypassesPpeBothDirections) {
  ShellFixture fx(ShellKind::two_way_core);
  fx.shell->set_degraded(true);
  EXPECT_TRUE(fx.shell->degraded());
  fx.shell->inject(ArchitectureShell::edge_port, data_packet());
  fx.shell->inject(ArchitectureShell::optical_port, data_packet());
  fx.sim.run();
  // Dumb-cable cut-through: packets cross, the PPE never sees them.
  EXPECT_EQ(fx.app_->processed, 0);
  EXPECT_EQ(fx.optical_out, 1);
  EXPECT_EQ(fx.edge_out, 1);
  EXPECT_EQ(fx.shell->degraded_forwards(), 2u);
}

TEST(Shell, DegradedModeStillPuntsMgmtFrames) {
  ShellFixture fx(ShellKind::one_way_filter);
  fx.shell->set_degraded(true);
  fx.shell->inject(ArchitectureShell::edge_port, mgmt_packet());
  fx.sim.run();
  // The Mi-V stays reachable so the module can be recovered in-band.
  EXPECT_EQ(fx.control_rx, 1);
  EXPECT_EQ(fx.shell->degraded_forwards(), 0u);
}

TEST(Shell, DegradedGaugeAndRecovery) {
  ShellFixture fx(ShellKind::two_way_core);
  fx.shell->set_degraded(true);
  fx.shell->inject(ArchitectureShell::edge_port, data_packet());
  fx.sim.run();
  auto snap = fx.sim.metrics().snapshot();
  EXPECT_EQ(snap.value("shell.degraded{shell=shell}"), 1u);
  EXPECT_EQ(snap.value("shell.degraded_forwards{shell=shell}"), 1u);
  fx.shell->set_degraded(false);
  fx.shell->inject(ArchitectureShell::edge_port, data_packet());
  fx.sim.run();
  snap = fx.sim.metrics().snapshot();
  EXPECT_EQ(snap.value("shell.degraded{shell=shell}"), 0u);
  EXPECT_EQ(fx.app_->processed, 1);  // back through the PPE
}

TEST(ShellKindStrings, Names) {
  EXPECT_EQ(to_string(ShellKind::one_way_filter), "One-Way-Filter");
  EXPECT_EQ(to_string(ShellKind::two_way_core), "Two-Way-Core");
  EXPECT_EQ(to_string(ShellKind::active_cp), "Active-CP");
}

TEST(EgressHint, RoundTripsThroughTheMetadataWord) {
  auto p = data_packet();
  EXPECT_EQ(egress_hint(*p), std::nullopt);  // untagged word = no hint
  set_egress_hint(*p, ArchitectureShell::edge_port);
  EXPECT_EQ(egress_hint(*p), ArchitectureShell::edge_port);
  set_egress_hint(*p, ArchitectureShell::optical_port);
  EXPECT_EQ(egress_hint(*p), ArchitectureShell::optical_port);
  clear_egress_hint(*p);
  EXPECT_EQ(egress_hint(*p), std::nullopt);
}

TEST(EgressHint, ArbitraryMetadataIsNotMistakenForAHint) {
  auto p = data_packet();
  // Only the 0xE6 tag byte marks a hint; app metadata stays app metadata.
  p->set_user_metadata(ArchitectureShell::edge_port);
  EXPECT_EQ(egress_hint(*p), std::nullopt);
  p->set_user_metadata(0xDEADBEEFull);
  EXPECT_EQ(egress_hint(*p), std::nullopt);
}

TEST(EgressHint, HintedFramesSteerTheForwardPathAndAreCounted) {
  // The PPE's direction rule would send edge→optical, but a fabric hint
  // pins the frame back to the edge interface — this is how crossbar
  // downlink glue hands frames to a module's server-facing side.
  ShellFixture fx(ShellKind::two_way_core);
  auto p = data_packet();
  set_egress_hint(*p, ArchitectureShell::edge_port);
  fx.shell->inject(ArchitectureShell::edge_port, std::move(p));
  fx.sim.run();
  EXPECT_EQ(fx.app_->processed, 1);  // still goes through the PPE
  EXPECT_EQ(fx.edge_out, 1);
  EXPECT_EQ(fx.optical_out, 0);
  EXPECT_EQ(fx.shell->egress_hints_honored(), 1u);
}

TEST(EgressHint, InvalidPortFallsBackToTheDirectionRule) {
  ShellFixture fx(ShellKind::two_way_core);
  auto p = data_packet();
  set_egress_hint(*p, 7);  // not a shell port
  fx.shell->inject(ArchitectureShell::edge_port, std::move(p));
  fx.sim.run();
  EXPECT_EQ(fx.optical_out, 1);
  EXPECT_EQ(fx.shell->egress_hints_honored(), 0u);
}

TEST(EgressHint, HonoredInDegradedPassthroughToo) {
  ShellFixture fx(ShellKind::two_way_core);
  fx.shell->set_degraded(true);
  auto p = data_packet();
  set_egress_hint(*p, ArchitectureShell::edge_port);
  fx.shell->inject(ArchitectureShell::edge_port, std::move(p));  // hairpin
  fx.sim.run();
  EXPECT_EQ(fx.edge_out, 1);
  EXPECT_EQ(fx.optical_out, 0);
  EXPECT_EQ(fx.shell->egress_hints_honored(), 1u);
}

}  // namespace
}  // namespace flexsfp::sfp
