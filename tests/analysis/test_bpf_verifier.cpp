// Unit and golden-diagnostics tests for the BPF abstract interpreter:
// tnum/interval algebra, load-bounds classification against the frame
// envelope, reachability and decided branches, the worst-case terminating
// path, and the FSL009–FSL014 diagnostics it renders.
#include "analysis/bpf_verifier.hpp"

#include <gtest/gtest.h>

#include "analysis/catalog.hpp"
#include "analysis/verifier.hpp"

namespace flexsfp::analysis {
namespace {

using apps::BpfInsn;
using apps::BpfOp;
using apps::BpfProgram;

// --- tnum algebra ------------------------------------------------------------

TEST(Tnum, ConstantsAreExactThroughArithmetic) {
  const Tnum a = Tnum::constant(40);
  const Tnum b = Tnum::constant(2);
  EXPECT_EQ(tnum_add(a, b), Tnum::constant(42));
  EXPECT_EQ(tnum_sub(a, b), Tnum::constant(38));
  EXPECT_EQ(tnum_and(a, b), Tnum::constant(40 & 2));
  EXPECT_EQ(tnum_or(a, b), Tnum::constant(40 | 2));
  EXPECT_EQ(tnum_lshift(b, 3), Tnum::constant(16));
  EXPECT_EQ(tnum_rshift(a, 2), Tnum::constant(10));
}

TEST(Tnum, JoinMakesDisagreeingBitsUnknown) {
  const Tnum joined = tnum_join(Tnum::constant(0b1010), Tnum::constant(0b1001));
  EXPECT_TRUE(joined.contains(0b1010));
  EXPECT_TRUE(joined.contains(0b1001));
  EXPECT_EQ(joined.value, 0b1000u);  // the agreed bit stays known
  EXPECT_EQ(joined.mask, 0b0011u);
  EXPECT_FALSE(joined.contains(0b0101));
}

TEST(Tnum, RangeKeepsCommonLeadingBits) {
  const Tnum range = tnum_range(0x80, 0x9f);
  EXPECT_EQ(range.value, 0x80u);
  EXPECT_EQ(range.mask, 0x1fu);
  for (std::uint32_t v = 0x80; v <= 0x9f; ++v) EXPECT_TRUE(range.contains(v));
  EXPECT_FALSE(range.contains(0xa0));
}

TEST(Tnum, AddPropagatesCarryUncertainty) {
  // [0, 1] + [0, 1]: result in [0, 2] — bit 1 is corruptible by the carry.
  const Tnum sum = tnum_add({0, 1}, {0, 1});
  EXPECT_TRUE(sum.contains(0));
  EXPECT_TRUE(sum.contains(1));
  EXPECT_TRUE(sum.contains(2));
}

TEST(AbstractValueDomain, RangeAndNormalizeTighten) {
  const AbstractValue v = AbstractValue::range(100, 100);
  EXPECT_TRUE(v.is_constant());
  EXPECT_EQ(v.bits, Tnum::constant(100));

  AbstractValue masked = AbstractValue::top();
  masked.bits = {0, 0xff};  // known: high 24 bits are zero
  ASSERT_TRUE(masked.normalize());
  EXPECT_EQ(masked.lo, 0u);
  EXPECT_EQ(masked.hi, 0xffu);
}

TEST(AbstractValueDomain, JoinCoversBothSides) {
  const AbstractValue joined =
      join(AbstractValue::constant(4), AbstractValue::constant(6));
  EXPECT_LE(joined.lo, 4u);
  EXPECT_GE(joined.hi, 6u);
  EXPECT_TRUE(joined.bits.contains(4));
  EXPECT_TRUE(joined.bits.contains(6));
}

// --- load bounds -------------------------------------------------------------

TEST(BpfVerifierLoads, ShallowLoadsAreSafeAtTheMinimumFrame) {
  const auto analysis = BpfVerifier{}.analyze(
      apps::bpf_programs::drop_tcp_dport_compact(23));
  ASSERT_TRUE(analysis.valid_structure);
  ASSERT_EQ(analysis.loads.size(), 3u);
  for (const LoadFact& load : analysis.loads) {
    EXPECT_EQ(load.safety, LoadSafety::safe) << "pc " << load.pc;
  }
  EXPECT_FALSE(analysis.has_load(LoadSafety::may_abort));
}

TEST(BpfVerifierLoads, DeepLoadMayAbortUntilMinFrameCovers) {
  const auto program = *BpfProgram::assemble({
      {BpfOp::ld_abs_u8, 99, 0, 0},  // reads byte 99: end offset 100
      {BpfOp::ret_accept, 0, 0, 0},
  });
  const auto at64 = BpfVerifier{{.min_frame_bytes = 64}}.analyze(program);
  ASSERT_EQ(at64.loads.size(), 1u);
  EXPECT_EQ(at64.loads[0].safety, LoadSafety::may_abort);
  EXPECT_EQ(at64.loads[0].end_hi, 100u);
  EXPECT_TRUE(at64.can_drop);  // the abort path drops

  const auto at128 = BpfVerifier{{.min_frame_bytes = 128}}.analyze(program);
  EXPECT_EQ(at128.loads[0].safety, LoadSafety::safe);
  EXPECT_FALSE(at128.can_drop);
}

TEST(BpfVerifierLoads, LdLenGuardProvesTheExactBoundary) {
  const auto guarded = [](std::uint32_t guard) {
    return *BpfProgram::assemble({
        {BpfOp::ld_len, 0, 0, 0},          // 0: A = frame length
        {BpfOp::jge, guard, 0, 2},         // 1: if A < guard goto 4
        {BpfOp::ld_abs_u32, 100, 0, 0},    // 2: end offset 104
        {BpfOp::ret_drop, 0, 0, 0},        // 3
        {BpfOp::ret_accept, 0, 0, 0},      // 4
    });
  };
  // Guard >= the load's end offset: provably safe on the guarded path.
  const auto safe = BpfVerifier{}.analyze(guarded(104));
  ASSERT_EQ(safe.loads.size(), 1u);
  EXPECT_EQ(safe.loads[0].safety, LoadSafety::safe);
  // One byte short: a 103-byte frame passes the guard and still aborts.
  const auto short_guard = BpfVerifier{}.analyze(guarded(103));
  ASSERT_EQ(short_guard.loads.size(), 1u);
  EXPECT_EQ(short_guard.loads[0].safety, LoadSafety::may_abort);
}

TEST(BpfVerifierLoads, SurvivingALoadRefinesTheFrameEnvelope) {
  // Executing past pkt[99] proves the frame holds >= 100 bytes, so the
  // second, shallower load is safe even though 100 > the 64 B minimum.
  const auto analysis = BpfVerifier{}.analyze(*BpfProgram::assemble({
      {BpfOp::ld_abs_u8, 99, 0, 0},
      {BpfOp::ld_abs_u8, 80, 0, 0},
      {BpfOp::ret_accept, 0, 0, 0},
  }));
  ASSERT_EQ(analysis.loads.size(), 2u);
  EXPECT_EQ(analysis.loads[0].safety, LoadSafety::may_abort);
  EXPECT_EQ(analysis.loads[1].safety, LoadSafety::safe);
}

TEST(BpfVerifierLoads, IndexedLoadUsesTheAbstractIndex) {
  // X = (pkt[14] & 0xf) << 2 is in [0, 60]; pkt[X + 50] ends at <= 111,
  // past the 64 B minimum (may abort) but well under the jumbo maximum.
  const auto analysis = BpfVerifier{}.analyze(*BpfProgram::assemble({
      {BpfOp::ld_abs_u8, 14, 0, 0},
      {BpfOp::alu_and, 0x0f, 0, 0},
      {BpfOp::alu_lsh, 2, 0, 0},
      {BpfOp::tax, 0, 0, 0},
      {BpfOp::ld_ind_u8, 50, 0, 0},
      {BpfOp::ret_accept, 0, 0, 0},
  }));
  ASSERT_EQ(analysis.loads.size(), 2u);
  EXPECT_EQ(analysis.loads[1].safety, LoadSafety::may_abort);
  EXPECT_EQ(analysis.loads[1].end_lo, 51u);
  EXPECT_EQ(analysis.loads[1].end_hi, 111u);
}

TEST(BpfVerifierLoads, LoadBeyondJumboAlwaysAborts) {
  const auto analysis = BpfVerifier{}.analyze(*BpfProgram::assemble({
      {BpfOp::ld_abs_u32, 20000, 0, 0},
      {BpfOp::ret_accept, 0, 0, 0},
  }));
  ASSERT_EQ(analysis.loads.size(), 1u);
  EXPECT_EQ(analysis.loads[0].safety, LoadSafety::always_aborts);
  // The accept is unreachable: the load kills every packet at cycle 1.
  EXPECT_EQ(analysis.dead_pcs, std::vector<std::size_t>{1});
  EXPECT_FALSE(analysis.can_accept);
  ASSERT_TRUE(analysis.constant_verdict.has_value());
  EXPECT_EQ(*analysis.constant_verdict, ppe::Verdict::drop);
  EXPECT_EQ(analysis.worst_case_path_cycles, 1u);
}

// --- reachability, decided branches, constant verdicts ----------------------

TEST(BpfVerifierReachability, JumpedOverInstructionIsDead) {
  const auto analysis = BpfVerifier{}.analyze(*BpfProgram::assemble({
      {BpfOp::ja, 1, 0, 0},           // 0: skips pc 1
      {BpfOp::ret_drop, 0, 0, 0},     // 1: dead
      {BpfOp::ret_accept, 0, 0, 0},   // 2
  }));
  EXPECT_EQ(analysis.dead_pcs, std::vector<std::size_t>{1});
  EXPECT_TRUE(analysis.can_accept);
  EXPECT_FALSE(analysis.can_drop);
}

TEST(BpfVerifierReachability, ConstantComparisonDecidesTheBranch) {
  const auto analysis = BpfVerifier{}.analyze(*BpfProgram::assemble({
      {BpfOp::ld_imm, 10, 0, 0},
      {BpfOp::jgt, 3, 0, 1},          // 10 > 3: always taken
      {BpfOp::ret_accept, 0, 0, 0},
      {BpfOp::ret_drop, 0, 0, 0},     // 3: infeasible edge's target
  }));
  ASSERT_EQ(analysis.decided_branches.size(), 1u);
  EXPECT_EQ(analysis.decided_branches[0].pc, 1u);
  EXPECT_TRUE(analysis.decided_branches[0].always_taken);
  EXPECT_EQ(analysis.dead_pcs, std::vector<std::size_t>{3});
}

TEST(BpfVerifierReachability, JsetOnPossiblyZeroValueKeepsBothEdges) {
  const auto analysis =
      BpfVerifier{}.analyze(apps::bpf_programs::punt_fragments());
  EXPECT_TRUE(analysis.decided_branches.empty());
  EXPECT_TRUE(analysis.dead_pcs.empty());
  EXPECT_TRUE(analysis.can_accept);
  EXPECT_TRUE(analysis.can_punt);
  EXPECT_FALSE(analysis.constant_verdict.has_value());
}

TEST(BpfVerifierReachability, PathSensitiveConstantVerdict) {
  // Inspects the packet, branches — and drops on both edges.
  const auto analysis = BpfVerifier{}.analyze(*BpfProgram::assemble({
      {BpfOp::ld_abs_u8, 0, 0, 0},
      {BpfOp::jeq, 5, 0, 1},
      {BpfOp::ret_drop, 0, 0, 0},
      {BpfOp::ret_drop, 0, 0, 0},
  }));
  EXPECT_TRUE(analysis.decided_branches.empty());
  ASSERT_TRUE(analysis.constant_verdict.has_value());
  EXPECT_EQ(*analysis.constant_verdict, ppe::Verdict::drop);
  EXPECT_FALSE(analysis.first_insn_terminal);
}

TEST(BpfVerifierReachability, FirstInstructionTerminalIsFlaggedDegenerate) {
  const auto analysis =
      BpfVerifier{}.analyze(apps::bpf_programs::accept_all());
  EXPECT_TRUE(analysis.first_insn_terminal);
  ASSERT_TRUE(analysis.constant_verdict.has_value());
  EXPECT_EQ(*analysis.constant_verdict, ppe::Verdict::forward);
}

// --- worst-case terminating path --------------------------------------------

TEST(BpfVerifierWorstPath, GeneralDportProgramBeatsItsInstructionCount) {
  const auto program = apps::bpf_programs::drop_tcp_dport(23);
  const auto analysis = BpfVerifier{}.analyze(program);
  EXPECT_EQ(program.size(), 13u);
  EXPECT_EQ(analysis.worst_case_path_cycles, 12u);
}

TEST(BpfVerifierWorstPath, CompactDportProgramWorstPathIsTheDropPath) {
  const auto analysis = BpfVerifier{}.analyze(
      apps::bpf_programs::drop_tcp_dport_compact(23));
  EXPECT_EQ(analysis.worst_case_path_cycles, 7u);
}

TEST(BpfVerifierWorstPath, StraightLineProgramCostsItsLength) {
  std::vector<BpfInsn> code;
  for (int i = 0; i < 47; ++i) code.push_back({BpfOp::alu_add, 1, 0, 0});
  code.push_back({BpfOp::ret_accept, 0, 0, 0});
  const auto analysis =
      BpfVerifier{}.analyze(*BpfProgram::assemble(std::move(code)));
  EXPECT_EQ(analysis.worst_case_path_cycles, 48u);
}

TEST(BpfVerifierWorstPath, InfeasibleEdgesDoNotInflateTheWorstCase) {
  // The never-taken edge would detour through 3 extra ALU ops; the honest
  // worst case ignores it.
  const auto analysis = BpfVerifier{}.analyze(*BpfProgram::assemble({
      {BpfOp::ld_imm, 1, 0, 0},        // 0
      {BpfOp::jeq, 1, 0, 1},           // 1: always true -> 2
      {BpfOp::ret_accept, 0, 0, 0},    // 2
      {BpfOp::alu_add, 1, 0, 0},       // 3: infeasible detour
      {BpfOp::alu_add, 1, 0, 0},       // 4
      {BpfOp::alu_add, 1, 0, 0},       // 5
      {BpfOp::ret_drop, 0, 0, 0},      // 6
  }));
  EXPECT_EQ(analysis.worst_case_path_cycles, 3u);
}

// --- raw bytecode / structure -------------------------------------------------

TEST(BpfVerifierStructure, InvalidBytecodeCarriesNoFacts) {
  // Falls off the end: structurally invalid.
  const std::vector<BpfInsn> code{{BpfOp::alu_add, 1, 0, 0}};
  const auto analysis = BpfVerifier{}.analyze(code);
  EXPECT_FALSE(analysis.valid_structure);
  EXPECT_TRUE(analysis.reachable.empty());
  EXPECT_EQ(analysis.worst_case_path_cycles, 0u);
}

TEST(BpfVerifierStructure, MaskedShiftInRawBytecodeIsFlagged) {
  // assemble() refuses shift counts >= 32, so such programs only arrive as
  // raw bytecode (e.g. a hostile bitstream) — the analyzer still flags them.
  const std::vector<BpfInsn> code{
      {BpfOp::ld_imm, 1, 0, 0},
      {BpfOp::alu_lsh, 33, 0, 0},
      {BpfOp::ret_accept, 0, 0, 0},
  };
  const auto analysis = BpfVerifier{}.analyze(code);
  EXPECT_TRUE(analysis.valid_structure);  // structure rules alone pass
  ASSERT_EQ(analysis.masked_shifts.size(), 1u);
  EXPECT_EQ(analysis.masked_shifts[0].pc, 1u);
  EXPECT_EQ(analysis.masked_shifts[0].count, 33u);

  DiagnosticReport report;
  BpfVerifier{}.add_diagnostics(analysis, "bpf", report);
  const auto errors = report.by_rule("FSL013");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].severity, Severity::error);
  EXPECT_NE(errors[0].message.find("'& 31'"), std::string::npos);
}

// --- golden diagnostics through the pipeline verifier ------------------------

TEST(VerifierFSL009, AlwaysOutOfBoundsLoadErrors) {
  const auto* design = find_design("bpf-oob-load");
  ASSERT_NE(design, nullptr);
  const auto report = PipelineVerifier{}.verify(*design->build());
  const auto errors = report.by_rule("FSL009");
  ASSERT_EQ(errors.size(), 1u) << report.to_text();
  EXPECT_EQ(errors[0].severity, Severity::error);
  EXPECT_EQ(errors[0].component, "bpf");
  EXPECT_NE(errors[0].message.find("pc 0"), std::string::npos);
  EXPECT_NE(errors[0].message.find("every packet"), std::string::npos);
  EXPECT_TRUE(report.has_errors());
}

TEST(VerifierFSL010, UnguardedDeepLoadWarns) {
  const apps::BpfFilter filter(*BpfProgram::assemble({
      {BpfOp::ld_abs_u8, 99, 0, 0},
      {BpfOp::ret_accept, 0, 0, 0},
  }));
  const auto report = PipelineVerifier{}.verify(filter);
  const auto warnings = report.by_rule("FSL010");
  ASSERT_EQ(warnings.size(), 1u) << report.to_text();
  EXPECT_EQ(warnings[0].severity, Severity::warning);
  EXPECT_NE(warnings[0].message.find("64 B"), std::string::npos);
  EXPECT_FALSE(report.has_errors());
}

TEST(VerifierFSL010, LdLenGuardedDesignIsWarningFree) {
  const auto* design = find_design("bpf-guarded-deep-load");
  ASSERT_NE(design, nullptr);
  const auto report = PipelineVerifier{}.verify(*design->build());
  EXPECT_FALSE(report.has_errors()) << report.to_text();
  EXPECT_FALSE(report.has_warnings()) << report.to_text();
}

TEST(VerifierFSL010, RaisedMinFrameSilencesTheWarning) {
  const apps::BpfFilter filter(*BpfProgram::assemble({
      {BpfOp::ld_abs_u8, 99, 0, 0},
      {BpfOp::ret_accept, 0, 0, 0},
  }));
  VerifierOptions options;
  options.bpf_min_frame_bytes = 128;
  const auto report = PipelineVerifier{options}.verify(filter);
  EXPECT_TRUE(report.by_rule("FSL010").empty()) << report.to_text();
}

TEST(VerifierFSL011, DeadInstructionsWarnWithTheirPcs) {
  const apps::BpfFilter filter(*BpfProgram::assemble({
      {BpfOp::ja, 1, 0, 0},
      {BpfOp::ret_drop, 0, 0, 0},
      {BpfOp::ret_accept, 0, 0, 0},
  }));
  const auto report = PipelineVerifier{}.verify(filter);
  const auto warnings = report.by_rule("FSL011");
  ASSERT_EQ(warnings.size(), 1u) << report.to_text();
  EXPECT_NE(warnings[0].message.find("pc 1"), std::string::npos);
}

TEST(VerifierFSL012, StaticallyDecidedBranchWarns) {
  const apps::BpfFilter filter(*BpfProgram::assemble({
      {BpfOp::ld_imm, 10, 0, 0},
      {BpfOp::jgt, 3, 0, 1},
      {BpfOp::ret_accept, 0, 0, 0},
      {BpfOp::ret_drop, 0, 0, 0},
  }));
  const auto report = PipelineVerifier{}.verify(filter);
  const auto warnings = report.by_rule("FSL012");
  ASSERT_EQ(warnings.size(), 1u) << report.to_text();
  EXPECT_NE(warnings[0].message.find("always"), std::string::npos);
  EXPECT_NE(warnings[0].message.find("pc 1"), std::string::npos);
}

TEST(VerifierFSL013, MaskedShiftSurfacesThroughABitstream) {
  // assemble() refuses the program, so craft the config bytes by hand:
  // count=3, then (op, be32 k, jt, jf) per instruction.
  const net::Bytes config{
      0x00, 0x03,
      static_cast<std::uint8_t>(BpfOp::ld_imm), 0, 0, 0, 1, 0, 0,
      static_cast<std::uint8_t>(BpfOp::alu_lsh), 0, 0, 0, 33, 0, 0,
      static_cast<std::uint8_t>(BpfOp::ret_accept), 0, 0, 0, 0, 0, 0,
  };
  // The strict parser refuses it before the factory ever builds the app.
  EXPECT_FALSE(BpfProgram::parse(config).has_value());
  // The analyzer diagnoses the raw bytecode directly (lint-style use).
  std::vector<BpfInsn> code{
      {BpfOp::ld_imm, 1, 0, 0},
      {BpfOp::alu_lsh, 33, 0, 0},
      {BpfOp::ret_accept, 0, 0, 0},
  };
  const BpfVerifier verifier;
  DiagnosticReport report;
  verifier.add_diagnostics(verifier.analyze(code), "bpf", report);
  EXPECT_EQ(report.by_rule("FSL013").size(), 1u);
}

TEST(VerifierFSL014, ConstantFilterDespiteInspectionWarns) {
  const apps::BpfFilter filter(*BpfProgram::assemble({
      {BpfOp::ld_abs_u8, 0, 0, 0},
      {BpfOp::jeq, 5, 0, 1},
      {BpfOp::ret_drop, 0, 0, 0},
      {BpfOp::ret_drop, 0, 0, 0},
  }));
  const auto report = PipelineVerifier{}.verify(filter);
  const auto warnings = report.by_rule("FSL014");
  ASSERT_EQ(warnings.size(), 1u) << report.to_text();
  EXPECT_NE(warnings[0].message.find("drop"), std::string::npos);
}

TEST(VerifierFSL014, DegenerateConstantProgramStaysWithFSL007) {
  const apps::BpfFilter filter;  // accept_all: first instruction terminal
  const auto report = PipelineVerifier{}.verify(filter);
  EXPECT_TRUE(report.by_rule("FSL014").empty()) << report.to_text();
  EXPECT_EQ(report.by_rule("FSL007").size(), 1u);
}

}  // namespace
}  // namespace flexsfp::analysis
