// Golden-diagnostics tests: one suite per rule id. Feasible reference
// designs verify clean; each deliberately broken design produces exactly
// the diagnostic its rule promises.
#include "analysis/verifier.hpp"

#include <gtest/gtest.h>

#include "analysis/catalog.hpp"
#include "apps/acl.hpp"
#include "apps/bpf_filter.hpp"
#include "apps/chain.hpp"
#include "apps/nat.hpp"
#include "apps/register.hpp"
#include "apps/telemetry.hpp"
#include "hw/bitstream.hpp"

namespace flexsfp::analysis {
namespace {

/// Minimal app whose StageProfile is injected verbatim — lets each rule be
/// driven with exactly the profile shape it checks.
class StubApp final : public ppe::PpeApp {
 public:
  explicit StubApp(ppe::StageProfile profile) : profile_(std::move(profile)) {}

  [[nodiscard]] std::string name() const override { return profile_.stage; }
  [[nodiscard]] ppe::Verdict process(ppe::PacketContext&) override {
    return ppe::Verdict::forward;
  }
  [[nodiscard]] hw::ResourceUsage resource_usage(
      const hw::DatapathConfig&) const override {
    return {};
  }
  [[nodiscard]] ppe::StageProfile profile() const override { return profile_; }

 private:
  ppe::StageProfile profile_;
};

/// Errors and warnings only — notes (e.g. the always-present utilization
/// note) don't count against cleanliness.
bool clean(const DiagnosticReport& report) {
  return !report.has_errors() && !report.has_warnings();
}

TEST(VerifierFSL000, UnknownAppInBitstream) {
  apps::register_builtin_apps();
  const auto bitstream =
      hw::Bitstream::create("no-such-app", {}, hw::AuthKey{1});
  const auto report = PipelineVerifier{}.verify_bitstream(bitstream);
  ASSERT_EQ(report.by_rule("FSL000").size(), 1u);
  EXPECT_EQ(report.by_rule("FSL000")[0].severity, Severity::error);
  EXPECT_TRUE(report.has_errors());
}

TEST(VerifierFSL000, RejectedConfigInBitstream) {
  apps::register_builtin_apps();
  // A truncated NAT config the factory's parse() refuses.
  const auto bitstream =
      hw::Bitstream::create("nat", net::Bytes{0x01}, hw::AuthKey{1});
  const auto report = PipelineVerifier{}.verify_bitstream(bitstream);
  ASSERT_EQ(report.by_rule("FSL000").size(), 1u);
  EXPECT_EQ(report.by_rule("FSL000")[0].severity, Severity::error);
}

TEST(VerifierFSL001, PaperNatFitsWithUtilizationNote) {
  const apps::StaticNat nat;
  const auto report = PipelineVerifier{}.verify(nat);
  EXPECT_TRUE(clean(report)) << report.to_text();
  // The paper's verdict, statically: the design fits the MPF200T and the
  // report says by how much.
  const auto notes = report.by_rule("FSL001");
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_EQ(notes[0].severity, Severity::note);
  EXPECT_NE(notes[0].message.find("MPF200T"), std::string::npos);
  EXPECT_NE(notes[0].message.find('%'), std::string::npos);
}

TEST(VerifierFSL001, OversizedNatRejected) {
  const apps::StaticNat nat(apps::NatConfig{.table_capacity = 524288});
  const auto report = PipelineVerifier{}.verify(nat);
  EXPECT_TRUE(report.has_errors());
  bool lsram_error = false;
  for (const auto& diagnostic : report.by_rule("FSL001")) {
    if (diagnostic.severity == Severity::error &&
        diagnostic.message.find("LSRAM") != std::string::npos) {
      lsram_error = true;
    }
  }
  EXPECT_TRUE(lsram_error) << report.to_text();
}

TEST(VerifierFSL001, SmallerDeviceChangesTheVerdict) {
  // The same NAT that fits the MPF200T must overflow a device with no
  // LSRAM headroom at all: verify against the smallest family member with
  // the shell included and a table far beyond its SRAM.
  VerifierOptions options;
  options.device = *hw::FpgaDevice::by_name("MPF100T");
  const apps::StaticNat oversized(apps::NatConfig{.table_capacity = 131072});
  const auto report = PipelineVerifier{options}.verify(oversized);
  EXPECT_TRUE(report.has_errors()) << report.to_text();
}

TEST(VerifierFSL002, SequentialProgramOverBudgetIsBottleneck) {
  std::vector<apps::BpfInsn> code;
  for (int i = 0; i < 47; ++i) code.push_back({apps::BpfOp::alu_add, 1, 0, 0});
  code.push_back({apps::BpfOp::ret_accept, 0, 0, 0});
  const apps::BpfFilter filter(*apps::BpfProgram::assemble(std::move(code)));

  const auto report = PipelineVerifier{}.verify(filter);
  const auto errors = report.by_rule("FSL002");
  ASSERT_EQ(errors.size(), 1u) << report.to_text();
  EXPECT_EQ(errors[0].severity, Severity::error);
  EXPECT_EQ(errors[0].component, "bpf");
  EXPECT_NE(errors[0].message.find("48 cycles"), std::string::npos);
  EXPECT_NE(errors[0].message.find("bottleneck"), std::string::npos);
}

TEST(VerifierFSL002, CompactProgramFitsTheBudget) {
  const apps::BpfFilter filter(apps::bpf_programs::drop_tcp_dport_compact(23));
  const auto report = PipelineVerifier{}.verify(filter);
  EXPECT_TRUE(report.by_rule("FSL002").empty()) << report.to_text();
  EXPECT_TRUE(clean(report));
}

TEST(VerifierFSL002, GeneralTcpDportProgramIsOverBudget) {
  // The IHL-parsing variant is exactly why the compact program exists: its
  // sequential worst case exceeds the 64 B cycle budget.
  const apps::BpfFilter filter(apps::bpf_programs::drop_tcp_dport(23));
  const auto report = PipelineVerifier{}.verify(filter);
  const auto errors = report.by_rule("FSL002");
  ASSERT_EQ(errors.size(), 1u) << report.to_text();
  // The cost charged is the abstract interpreter's longest terminating
  // path (12 instructions), not the program size (13): the honest budget
  // is still one over the 11-cycle line.
  EXPECT_NE(errors[0].message.find("12 cycles"), std::string::npos)
      << errors[0].message;
}

TEST(VerifierFSL003, KeyWiderThanSourceFields) {
  ppe::StageProfile profile;
  profile.stage = "stub";
  profile.reads = ppe::header_bit(ppe::HeaderKind::ipv4);
  profile.tables.push_back({.name = "flows",
                            .kind = ppe::TableKind::exact_match,
                            .capacity = 16,
                            .key_bits = 200,  // > the 160 ipv4 field bits
                            .value_bits = 32,
                            .key_sources =
                                ppe::header_bit(ppe::HeaderKind::ipv4)});
  const StubApp app(profile);
  const auto report = PipelineVerifier{}.verify(app);
  const auto errors = report.by_rule("FSL003");
  ASSERT_EQ(errors.size(), 1u) << report.to_text();
  EXPECT_EQ(errors[0].severity, Severity::error);
  EXPECT_EQ(errors[0].component, "stub/table:flows");
  EXPECT_NE(errors[0].message.find("200 bits"), std::string::npos);
}

TEST(VerifierFSL004, SingleTableBeyondDeviceSram) {
  const apps::StaticNat nat(apps::NatConfig{.table_capacity = 524288});
  const auto report = PipelineVerifier{}.verify(nat);
  const auto errors = report.by_rule("FSL004");
  ASSERT_EQ(errors.size(), 1u) << report.to_text();
  EXPECT_EQ(errors[0].severity, Severity::error);
  EXPECT_EQ(errors[0].component, "nat/table:nat");
}

TEST(VerifierFSL004, HugeTcamEmulationWarns) {
  ppe::StageProfile profile;
  profile.stage = "stub";
  profile.tables.push_back({.name = "rules",
                            .kind = ppe::TableKind::ternary,
                            .capacity = 2048,
                            .key_bits = 40,
                            .value_bits = 8});
  const StubApp app(profile);
  const auto report = PipelineVerifier{}.verify(app);
  const auto findings = report.by_rule("FSL004");
  ASSERT_EQ(findings.size(), 1u) << report.to_text();
  // 2048 rules x 40 key bits x 2 FFs fits the MPF200T's FF budget, so the
  // design is deployable — but the emulation cost deserves a warning.
  EXPECT_EQ(findings[0].severity, Severity::warning);
}

TEST(VerifierFSL005, ShadowedAclRuleWarns) {
  apps::AclFirewall acl;
  // Broad rule first (all TCP), then a more specific one at lower priority
  // that the broad rule fully covers: it can never match.
  apps::AclRuleSpec broad;
  broad.protocol = 6;
  broad.action = apps::AclAction::deny;
  broad.priority = 100;
  ASSERT_GT(acl.add_rule(broad), 0u);
  apps::AclRuleSpec specific;
  specific.protocol = 6;
  specific.dst_port_range = {{23, 23}};
  specific.action = apps::AclAction::permit;
  specific.priority = 10;
  ASSERT_GT(acl.add_rule(specific), 0u);

  const auto report = PipelineVerifier{}.verify(acl);
  const auto warnings = report.by_rule("FSL005");
  ASSERT_EQ(warnings.size(), 1u) << report.to_text();
  EXPECT_EQ(warnings[0].severity, Severity::warning);
  EXPECT_EQ(warnings[0].component, "acl/table:acl");
  EXPECT_NE(warnings[0].message.find("shadowed"), std::string::npos);
}

TEST(VerifierFSL005, CleanAclRulesDoNotWarn) {
  const auto* design = find_design("acl-edge");
  ASSERT_NE(design, nullptr);
  const auto report = PipelineVerifier{}.verify(*design->build());
  EXPECT_TRUE(report.by_rule("FSL005").empty()) << report.to_text();
}

TEST(VerifierFSL006, IntSinkAloneWarnsAboutUnproducedShim) {
  const apps::IntStamper sink(
      apps::IntStamperConfig{.role = apps::StamperRole::sink});
  const auto report = PipelineVerifier{}.verify(sink);
  const auto warnings = report.by_rule("FSL006");
  ASSERT_EQ(warnings.size(), 1u) << report.to_text();
  EXPECT_EQ(warnings[0].severity, Severity::warning);
  EXPECT_NE(warnings[0].message.find("telemetry-shim"), std::string::npos);
  // Warning severity: deployable (another module may insert the shim).
  EXPECT_FALSE(report.has_errors());
}

TEST(VerifierFSL006, SourceBeforeSinkIsClean) {
  apps::AppChain chain;
  chain.append(std::make_unique<apps::IntStamper>(
      apps::IntStamperConfig{.role = apps::StamperRole::source}));
  chain.append(std::make_unique<apps::IntStamper>(
      apps::IntStamperConfig{.role = apps::StamperRole::sink}));
  const auto report = PipelineVerifier{}.verify(chain);
  EXPECT_TRUE(report.by_rule("FSL006").empty()) << report.to_text();
}

TEST(VerifierFSL007, StagesBehindConstantDropAreUnreachable) {
  apps::AppChain chain;
  chain.append(std::make_unique<apps::BpfFilter>(
      *apps::BpfProgram::assemble({{apps::BpfOp::ret_drop, 0, 0, 0}})));
  chain.append(std::make_unique<apps::AclFirewall>());
  const auto report = PipelineVerifier{}.verify(chain);
  const auto errors = report.by_rule("FSL007");
  ASSERT_EQ(errors.size(), 1u) << report.to_text();
  EXPECT_EQ(errors[0].severity, Severity::error);
  EXPECT_EQ(errors[0].component, "bpf");
  EXPECT_NE(errors[0].message.find("unreachable"), std::string::npos);
}

TEST(VerifierFSL007, ConstantForwardIsJustANote) {
  const apps::BpfFilter filter;  // accept_all
  const auto report = PipelineVerifier{}.verify(filter);
  const auto findings = report.by_rule("FSL007");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::note);
  EXPECT_FALSE(report.has_errors());
}

TEST(VerifierFSL008, CounterIndexBeyondBankErrors) {
  ppe::StageProfile profile;
  profile.stage = "stub";
  profile.counter_banks.push_back({"stats", 4, 4});  // index 4 of 4 slots
  const StubApp app(profile);
  const auto report = PipelineVerifier{}.verify(app);
  const auto errors = report.by_rule("FSL008");
  ASSERT_EQ(errors.size(), 1u) << report.to_text();
  EXPECT_EQ(errors[0].severity, Severity::error);
  EXPECT_EQ(errors[0].component, "stub/counters:stats");
}

// --- golden diagnostics for the softwire catalog entries --------------------

TEST(VerifierSoftwire, EdgeDesignProvablyFitsTheDevice) {
  const DeployableDesign* design = find_design("softwire-edge");
  ASSERT_NE(design, nullptr);
  const auto report = PipelineVerifier{}.verify(*design->build());
  EXPECT_TRUE(clean(report)) << report.to_text();
  // The paper's feasibility question answered statically: the 32768-lease
  // AFTR fits the MPF200T, and the note quantifies the headroom.
  const auto notes = report.by_rule("FSL001");
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_EQ(notes[0].severity, Severity::note);
  EXPECT_NE(notes[0].message.find("MPF200T"), std::string::npos);
}

TEST(VerifierSoftwire, OversizedBindingTableRejectedWithNamedTables) {
  const DeployableDesign* design = find_design("softwire-oversized");
  ASSERT_NE(design, nullptr);
  ASSERT_FALSE(design->expect_feasible);
  const auto report = PipelineVerifier{}.verify(*design->build());
  EXPECT_TRUE(report.has_errors()) << report.to_text();
  // FSL001: the aggregate exceeds device LSRAM.
  bool lsram_error = false;
  for (const auto& diagnostic : report.by_rule("FSL001")) {
    if (diagnostic.severity == Severity::error &&
        diagnostic.message.find("LSRAM") != std::string::npos) {
      lsram_error = true;
    }
  }
  EXPECT_TRUE(lsram_error) << report.to_text();
  // FSL004 names the offending table: the million-lease binding store.
  bool binding_named = false;
  for (const auto& diagnostic : report.by_rule("FSL004")) {
    if (diagnostic.severity == Severity::error &&
        diagnostic.component == "lwaftr/table:binding") {
      binding_named = true;
    }
  }
  EXPECT_TRUE(binding_named) << report.to_text();
}

TEST(VerifierCatalog, EveryDesignMatchesItsExpectedVerdict) {
  const PipelineVerifier verifier;
  for (const auto& design : deployable_designs()) {
    const auto report = verifier.verify(*design.build());
    EXPECT_EQ(!report.has_errors(), design.expect_feasible)
        << design.name << ":\n"
        << report.to_text();
  }
}

TEST(VerifierCatalog, FeasibleDesignsRaiseNoSpuriousWarningsExceptIntSink) {
  const PipelineVerifier verifier;
  for (const auto& design : deployable_designs()) {
    if (!design.expect_feasible) continue;
    const auto report = verifier.verify(*design.build());
    if (design.name == "int-sink-edge") {
      EXPECT_TRUE(report.has_warnings());  // the documented FSL006 warning
    } else {
      EXPECT_TRUE(clean(report)) << design.name << ":\n" << report.to_text();
    }
  }
}

TEST(RuleCatalog, CoversEveryRuleIdInOrder) {
  const auto& catalog = rule_catalog();
  ASSERT_EQ(catalog.size(), 15u);
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const std::string expected =
        (i < 10 ? "FSL00" : "FSL0") + std::to_string(i);
    EXPECT_EQ(catalog[i].id, expected);
    EXPECT_FALSE(catalog[i].summary.empty());
  }
  // Maximum severities match the header's rule table.
  EXPECT_EQ(catalog[5].max_severity, Severity::warning);   // FSL005
  EXPECT_EQ(catalog[6].max_severity, Severity::warning);   // FSL006
  EXPECT_EQ(catalog[7].max_severity, Severity::error);     // FSL007
  EXPECT_EQ(catalog[9].max_severity, Severity::error);     // FSL009
  EXPECT_EQ(catalog[10].max_severity, Severity::warning);  // FSL010
  EXPECT_EQ(catalog[11].max_severity, Severity::warning);  // FSL011
  EXPECT_EQ(catalog[12].max_severity, Severity::warning);  // FSL012
  EXPECT_EQ(catalog[13].max_severity, Severity::error);    // FSL013
  EXPECT_EQ(catalog[14].max_severity, Severity::warning);  // FSL014
}

}  // namespace
}  // namespace flexsfp::analysis
