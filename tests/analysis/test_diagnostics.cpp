#include "analysis/diagnostics.hpp"

#include <gtest/gtest.h>

namespace flexsfp::analysis {
namespace {

TEST(Diagnostics, CountsBySeverity) {
  DiagnosticReport report;
  EXPECT_TRUE(report.empty());
  EXPECT_FALSE(report.has_errors());

  report.note("FSL001", "device", "utilization 5%");
  report.warning("FSL005", "acl/table:acl", "1 shadowed entry");
  report.error("FSL002", "bpf", "over budget");
  report.error("FSL004", "nat/table:nat", "too big");

  EXPECT_EQ(report.count(Severity::note), 1u);
  EXPECT_EQ(report.count(Severity::warning), 1u);
  EXPECT_EQ(report.count(Severity::error), 2u);
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(report.has_warnings());
}

TEST(Diagnostics, ByRuleFilters) {
  DiagnosticReport report;
  report.error("FSL001", "device", "LUTs over");
  report.error("FSL001", "device", "FFs over");
  report.warning("FSL006", "int", "unparsed header");

  EXPECT_EQ(report.by_rule("FSL001").size(), 2u);
  EXPECT_EQ(report.by_rule("FSL006").size(), 1u);
  EXPECT_TRUE(report.by_rule("FSL000").empty());
}

TEST(Diagnostics, TextRenderingIsCompilerStyle) {
  DiagnosticReport report;
  report.error("FSL002", "bpf", "needs 48 cycles", "shorten the program");
  const std::string text = report.to_text();
  EXPECT_NE(text.find("error[FSL002] bpf: needs 48 cycles"),
            std::string::npos);
  EXPECT_NE(text.find("hint: shorten the program"), std::string::npos);
}

TEST(Diagnostics, JsonRenderingEscapesAndCounts) {
  DiagnosticReport report;
  report.warning("FSL005", "acl", "entry \"a\"\nshadowed");
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"rule\":\"FSL005\""), std::string::npos);
  EXPECT_NE(json.find("\\\"a\\\"\\n"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\":1"), std::string::npos);
  EXPECT_NE(json.find("\"errors\":0"), std::string::npos);
}

TEST(Diagnostics, MergePrefixesComponents) {
  DiagnosticReport inner;
  inner.error("FSL001", "device", "over");
  DiagnosticReport outer;
  outer.merge("nat-oversized", inner);
  ASSERT_EQ(outer.diagnostics().size(), 1u);
  EXPECT_EQ(outer.diagnostics()[0].component, "nat-oversized/device");
}

}  // namespace
}  // namespace flexsfp::analysis
