// PacketPool lifecycle: refcount round-trips, exhaustion fallback, packets
// outliving their pool, clone independence, and a dup/reorder chaos soak
// that exercises pooled refcounts under fault injection.
#include "net/packet_pool.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "fabric/traffic_gen.hpp"
#include "sim/fault_injector.hpp"
#include "sim/simulation.hpp"

namespace flexsfp::net {
namespace {

TEST(PacketPool, RefcountRoundTripRecycles) {
  PacketPool pool(8);
  {
    PacketPtr a = pool.make();
    a->data() = {1, 2, 3};
    PacketPtr b = a;  // second reference to the same pooled packet
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(pool.stats().in_use, 1u);
    a.reset();
    EXPECT_EQ(pool.stats().in_use, 1u) << "b still holds the packet";
    EXPECT_EQ(b->data().size(), 3u);
  }
  EXPECT_EQ(pool.stats().in_use, 0u);
  EXPECT_EQ(pool.stats().free_count, 1u);

  // The next make() must reuse the recycled buffer, with cleared bytes and
  // metadata.
  PacketPtr again = pool.make();
  EXPECT_EQ(pool.stats().reused, 1u);
  EXPECT_TRUE(again->data().empty());
  EXPECT_EQ(again->id(), 0u);
}

TEST(PacketPool, MoveAssignKeepsAccountingExact) {
  PacketPool pool(8);
  PacketPtr a = pool.make();
  PacketPtr b = pool.make();
  EXPECT_EQ(pool.stats().in_use, 2u);
  b = std::move(a);  // drops b's packet, transfers a's reference
  EXPECT_EQ(pool.stats().in_use, 1u);
  b.reset();
  EXPECT_EQ(pool.stats().in_use, 0u);
  EXPECT_EQ(pool.stats().free_count, 2u);
}

TEST(PacketPool, ExhaustionFallsBackToHeap) {
  PacketPool pool(4);
  std::vector<PacketPtr> held;
  for (int i = 0; i < 10; ++i) held.push_back(pool.make());
  const auto stats = pool.stats();
  EXPECT_EQ(stats.made, 10u);
  EXPECT_EQ(stats.heap_fallbacks, 6u);
  EXPECT_EQ(stats.in_use, 4u) << "only pooled packets count as in_use";
  EXPECT_EQ(stats.high_watermark, 4u);
  // Heap-fallback packets are fully functional and die quietly.
  held[9]->data() = {9, 9, 9};
  EXPECT_EQ(held[9]->data().size(), 3u);
  held.clear();
  EXPECT_EQ(pool.stats().in_use, 0u);
  EXPECT_EQ(pool.stats().free_count, 4u);
}

TEST(PacketPool, PacketsOutliveTheirPool) {
  PacketPtr survivor;
  {
    PacketPool pool(4);
    survivor = pool.make();
    survivor->data() = {42};
    PacketPtr dropped = pool.make();  // recycled before the pool dies
    dropped.reset();
  }  // pool destroyed with `survivor` still referenced
  ASSERT_TRUE(survivor != nullptr);
  EXPECT_EQ(survivor->data()[0], 42);
  survivor.reset();  // last release after the pool is gone must not crash
}

TEST(PacketPool, CloneIsIndependentAndCopiesMetadata) {
  PacketPool pool(8);
  PacketPtr original = pool.make();
  original->data() = {1, 2, 3, 4};
  original->set_id(77);
  PacketPtr copy = pool.clone(*original);
  EXPECT_NE(original.get(), copy.get());
  EXPECT_EQ(copy->data(), original->data());
  EXPECT_EQ(copy->id(), 77u);
  original->data()[0] = 99;
  EXPECT_EQ(copy->data()[0], 1) << "clone must not alias the source bytes";
}

TEST(PacketPool, MakeFromMovesValueBuiltFrame) {
  PacketPool pool(8);
  Packet frame{Bytes{5, 6, 7}};
  frame.set_id(123);
  PacketPtr pooled = pool.make_from(std::move(frame));
  EXPECT_EQ(pooled->data(), (Bytes{5, 6, 7}));
  EXPECT_EQ(pooled->id(), 123u);
}

TEST(PacketPool, BareMakePacketUsesThreadLocalPool) {
  PacketPtr a = make_packet();
  PacketPtr b = make_packet(Bytes{1});
  EXPECT_TRUE(a->data().empty());
  EXPECT_EQ(b->data().size(), 1u);
}

TEST(PacketPool, DupReorderChaosSoakConservesPackets) {
  // Duplication creates second references/clones and reorder holds packets
  // across time — the refcount paths a use-after-recycle bug would corrupt.
  // ASan/UBSan CI runs this too.
  sim::Simulation sim;
  fabric::TrafficSpec spec;
  spec.rate = sim::DataRate::gbps(10);
  spec.fixed_size = 128;
  spec.duration = sim::TimePs{200'000'000};  // 200 us
  fabric::Sink sink(sim, /*retain_last=*/4);
  sim::FaultSpec faults;
  faults.duplicate_prob = 0.2;
  faults.reorder_prob = 0.2;
  faults.drop_prob = 0.05;
  faults.seed = 99;
  sim::FaultInjector chaos(sim, faults, sink);
  fabric::TrafficGen gen(sim, spec, chaos);
  gen.start();
  sim.run();

  const auto emitted = gen.emitted().packets();
  ASSERT_GT(emitted, 1000u);
  const auto& tally = chaos.tally();
  EXPECT_EQ(tally.delivered + tally.dropped, emitted + tally.duplicated)
      << "fault injection must not create or lose packets silently";
  EXPECT_GT(tally.duplicated, 0u);
  EXPECT_GT(tally.reordered, 0u);

  // Everything not retained by the sink must have returned to the pool.
  const auto stats = sim.packet_pool().stats();
  EXPECT_EQ(stats.in_use, sink.retained().size());
  EXPECT_EQ(stats.heap_fallbacks, 0u)
      << "steady-state soak should never exhaust the default pool";
  EXPECT_GT(stats.reused, 0u);
}

}  // namespace
}  // namespace flexsfp::net
