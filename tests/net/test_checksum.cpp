#include "net/checksum.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"

namespace flexsfp::net {
namespace {

// RFC 1071 worked example: the checksum of this sequence is well known.
TEST(Checksum, Rfc1071Example) {
  const Bytes data{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  // Sum = 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0 -> fold = 0xddf2
  EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0xddf2));
}

TEST(Checksum, OddLengthPadsWithZero) {
  const Bytes data{0x12, 0x34, 0x56};
  // Words: 0x1234, 0x5600.
  EXPECT_EQ(internet_checksum(data),
            static_cast<std::uint16_t>(~((0x1234 + 0x5600) & 0xffff)));
}

TEST(Checksum, VerificationPropertyZeroSum) {
  // Appending the checksum makes the one's-complement sum all-ones.
  Bytes data{0x45, 0x00, 0x00, 0x28, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06};
  const std::uint16_t checksum = internet_checksum(data);
  data.push_back(static_cast<std::uint8_t>(checksum >> 8));
  data.push_back(static_cast<std::uint8_t>(checksum & 0xff));
  EXPECT_EQ(internet_checksum(data), 0);
}

TEST(Checksum, IncrementalUpdateMatchesRecompute) {
  sim::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes data(40);
    for (auto& byte : data) {
      byte = static_cast<std::uint8_t>(rng.uniform(0, 255));
    }
    const std::uint16_t before = internet_checksum(data);

    const std::size_t word_index = rng.uniform(0, data.size() / 2 - 1) * 2;
    const std::uint16_t old_word = read_be16(data, word_index);
    const auto new_word = static_cast<std::uint16_t>(rng.uniform(0, 0xffff));
    write_be16(data, word_index, new_word);

    const std::uint16_t incremental =
        checksum_incremental_update(before, old_word, new_word);
    EXPECT_EQ(incremental, internet_checksum(data))
        << "trial " << trial << " word@" << word_index;
  }
}

TEST(Checksum, Incremental32MatchesRecompute) {
  sim::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes data(20);
    for (auto& byte : data) {
      byte = static_cast<std::uint8_t>(rng.uniform(0, 255));
    }
    const std::uint16_t before = internet_checksum(data);
    const std::uint32_t old_value = read_be32(data, 12);
    const auto new_value = static_cast<std::uint32_t>(rng.next_u64());
    write_be32(data, 12, new_value);
    EXPECT_EQ(checksum_incremental_update32(before, old_value, new_value),
              internet_checksum(data));
  }
}

TEST(Checksum, IncrementalNoopWhenValueUnchanged) {
  EXPECT_EQ(checksum_incremental_update(0x1234, 0xabcd, 0xabcd), 0x1234);
}

TEST(Crc32, KnownVector) {
  // CRC32("123456789") = 0xcbf43926 (the standard check value).
  Bytes data;
  for (char c : std::string("123456789")) {
    data.push_back(static_cast<std::uint8_t>(c));
  }
  EXPECT_EQ(crc32(data), 0xcbf43926u);
}

TEST(Crc32, EmptyInput) { EXPECT_EQ(crc32({}), 0x00000000u); }

TEST(Crc32, DetectsSingleBitFlip) {
  Bytes data(64, 0xa5);
  const std::uint32_t before = crc32(data);
  data[17] ^= 0x04;
  EXPECT_NE(crc32(data), before);
}

TEST(ChecksumPartial, AccumulatesAcrossRegions) {
  const Bytes a{0x12, 0x34};
  const Bytes b{0x56, 0x78};
  Bytes joined{0x12, 0x34, 0x56, 0x78};
  const std::uint32_t partial = checksum_partial(b, checksum_partial(a));
  EXPECT_EQ(checksum_finish(partial), internet_checksum(joined));
}

}  // namespace
}  // namespace flexsfp::net
