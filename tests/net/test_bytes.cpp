#include "net/bytes.hpp"

#include <gtest/gtest.h>

namespace flexsfp::net {
namespace {

TEST(Bytes, ReadWriteRoundTripBe16) {
  Bytes buffer(4, 0);
  write_be16(buffer, 1, 0xabcd);
  EXPECT_EQ(read_be16(buffer, 1), 0xabcd);
  EXPECT_EQ(buffer[1], 0xab);
  EXPECT_EQ(buffer[2], 0xcd);
}

TEST(Bytes, ReadWriteRoundTripBe32) {
  Bytes buffer(8, 0);
  write_be32(buffer, 2, 0xdeadbeef);
  EXPECT_EQ(read_be32(buffer, 2), 0xdeadbeefu);
  EXPECT_EQ(buffer[2], 0xde);
  EXPECT_EQ(buffer[5], 0xef);
}

TEST(Bytes, ReadWriteRoundTripBe64) {
  Bytes buffer(8, 0);
  write_be64(buffer, 0, 0x0123456789abcdefull);
  EXPECT_EQ(read_be64(buffer, 0), 0x0123456789abcdefull);
  EXPECT_EQ(buffer[0], 0x01);
  EXPECT_EQ(buffer[7], 0xef);
}

TEST(Bytes, ReadPastEndThrows) {
  Bytes buffer(4, 0);
  EXPECT_THROW((void)read_be32(buffer, 1), std::out_of_range);
  EXPECT_THROW((void)read_be16(buffer, 3), std::out_of_range);
  EXPECT_THROW((void)read_u8(buffer, 4), std::out_of_range);
}

TEST(Bytes, WritePastEndThrows) {
  Bytes buffer(4, 0);
  EXPECT_THROW(write_be64(buffer, 0, 1), std::out_of_range);
  EXPECT_THROW(write_be16(buffer, 3, 1), std::out_of_range);
}

TEST(Bytes, ReadAtExactBoundaryWorks) {
  Bytes buffer(4, 0);
  write_be32(buffer, 0, 42);
  EXPECT_EQ(read_be32(buffer, 0), 42u);
}

TEST(Bytes, ToHexFormatsWithSeparator) {
  const Bytes data{0x00, 0xff, 0x1a};
  EXPECT_EQ(to_hex(data), "00:ff:1a");
  EXPECT_EQ(to_hex(data, '-'), "00-ff-1a");
}

TEST(Bytes, HexDumpContainsAsciiGutter) {
  Bytes data;
  for (char c : std::string("Hello, FlexSFP!!")) {
    data.push_back(static_cast<std::uint8_t>(c));
  }
  const std::string dump = hex_dump(data);
  EXPECT_NE(dump.find("|Hello, FlexSFP!!|"), std::string::npos);
  EXPECT_NE(dump.find("48 65 6c 6c 6f"), std::string::npos);
}

TEST(Bytes, HexDumpHandlesPartialLastLine) {
  const Bytes data{0x41, 0x42, 0x43};
  const std::string dump = hex_dump(data);
  EXPECT_NE(dump.find("|ABC|"), std::string::npos);
}

TEST(Bytes, EmptyHexDumpIsEmpty) { EXPECT_TRUE(hex_dump({}).empty()); }

}  // namespace
}  // namespace flexsfp::net
