#include "net/parser.hpp"

#include <gtest/gtest.h>

#include "net/builder.hpp"

namespace flexsfp::net {
namespace {

MacAddress mac(std::uint64_t v) { return MacAddress::from_u64(v); }

Bytes udp_frame() {
  return PacketBuilder()
      .ethernet(mac(2), mac(1))
      .ipv4(Ipv4Address::from_octets(10, 0, 0, 1),
            Ipv4Address::from_octets(10, 0, 0, 2), IpProto::udp)
      .udp(1111, 2222)
      .payload_size(20)
      .build();
}

TEST(Parser, ExtractsFiveTuple) {
  const auto parsed = parse_packet(udp_frame());
  ASSERT_TRUE(parsed.ok());
  const auto tuple = parsed.five_tuple();
  ASSERT_TRUE(tuple);
  EXPECT_EQ(tuple->src, Ipv4Address::from_octets(10, 0, 0, 1));
  EXPECT_EQ(tuple->dst, Ipv4Address::from_octets(10, 0, 0, 2));
  EXPECT_EQ(tuple->src_port, 1111);
  EXPECT_EQ(tuple->dst_port, 2222);
  EXPECT_EQ(tuple->protocol, static_cast<std::uint8_t>(IpProto::udp));
}

TEST(Parser, OffsetsPointIntoBuffer) {
  const Bytes frame = udp_frame();
  const auto parsed = parse_packet(frame);
  EXPECT_EQ(parsed.outer.l3_offset, EthernetHeader::size());
  EXPECT_EQ(parsed.outer.l4_offset, EthernetHeader::size() + 20);
  EXPECT_EQ(parsed.outer.payload_offset, EthernetHeader::size() + 20 + 8);
  // The bytes at l4_offset really are the UDP source port.
  EXPECT_EQ(read_be16(frame, parsed.outer.l4_offset), 1111);
}

TEST(Parser, NonIpFramesParseWithoutIpLayer) {
  Bytes frame(60, 0);
  EthernetHeader eth;
  eth.dst = mac(2);
  eth.src = mac(1);
  eth.ether_type = static_cast<std::uint16_t>(EtherType::arp);
  eth.serialize_to(frame, 0);
  const auto parsed = parse_packet(frame);
  EXPECT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.outer.has_ip());
  EXPECT_FALSE(parsed.five_tuple().has_value());
}

TEST(Parser, TruncatedEthernetReported) {
  const auto parsed = parse_packet(Bytes(10, 0));
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error, ParseError::truncated_ethernet);
}

TEST(Parser, TruncatedIpv4Reported) {
  Bytes frame(20, 0);
  EthernetHeader eth;
  eth.ether_type = static_cast<std::uint16_t>(EtherType::ipv4);
  eth.serialize_to(frame, 0);
  frame[14] = 0x45;
  const auto parsed = parse_packet(frame);
  EXPECT_EQ(parsed.error, ParseError::truncated_ipv4);
}

TEST(Parser, TruncatedL4Reported) {
  // IPv4 header claims TCP but the frame ends after the IP header.
  Bytes frame = PacketBuilder()
                    .ethernet(mac(2), mac(1))
                    .ipv4(Ipv4Address::from_octets(1, 1, 1, 1),
                          Ipv4Address::from_octets(2, 2, 2, 2), IpProto::tcp)
                    .tcp(1, 2)
                    .build();
  frame.resize(EthernetHeader::size() + 20 + 10);  // cut into the TCP header
  const auto parsed = parse_packet(frame);
  EXPECT_EQ(parsed.error, ParseError::truncated_l4);
}

TEST(Parser, VlanStackLimitEnforced) {
  Bytes frame = PacketBuilder()
                    .ethernet(mac(2), mac(1))
                    .ipv4(Ipv4Address::from_octets(1, 1, 1, 1),
                          Ipv4Address::from_octets(2, 2, 2, 2), IpProto::udp)
                    .udp(1, 2)
                    .build();
  ASSERT_TRUE(push_vlan(frame, 1));
  ASSERT_TRUE(push_vlan(frame, 2));
  ASSERT_TRUE(push_vlan(frame, 3));
  const auto parsed = parse_packet(frame);  // default max is 2
  EXPECT_EQ(parsed.error, ParseError::too_many_vlan_tags);
  const auto relaxed = parse_packet(frame, {.max_vlan_tags = 4});
  EXPECT_TRUE(relaxed.ok());
  EXPECT_EQ(relaxed.vlan_tags.size(), 3u);
}

TEST(Parser, FragmentsSkipL4) {
  Ipv4Header ip;
  ip.src = Ipv4Address::from_octets(1, 1, 1, 1);
  ip.dst = Ipv4Address::from_octets(2, 2, 2, 2);
  ip.protocol = static_cast<std::uint8_t>(IpProto::udp);
  ip.fragment_offset = 100;  // non-first fragment
  ip.total_length = 60;

  Bytes frame(80, 0);
  EthernetHeader eth;
  eth.ether_type = static_cast<std::uint16_t>(EtherType::ipv4);
  eth.serialize_to(frame, 0);
  ip.serialize_to(frame, EthernetHeader::size());

  const auto parsed = parse_packet(frame);
  EXPECT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.outer.udp.has_value());
  EXPECT_EQ(parsed.outer.payload_offset, parsed.outer.l4_offset);
}

TEST(Parser, TunnelParsingCanBeDisabled) {
  Bytes frame = udp_frame();
  ASSERT_TRUE(encapsulate_gre(frame, Ipv4Address::from_octets(9, 0, 0, 1),
                              Ipv4Address::from_octets(9, 0, 0, 2)));
  const auto with = parse_packet(frame);
  EXPECT_TRUE(with.gre.has_value());
  const auto without = parse_packet(frame, {.parse_tunnels = false});
  EXPECT_FALSE(without.gre.has_value());
  EXPECT_TRUE(without.ok());
}

TEST(Validate, CleanPacketHasNoIssues) {
  const Bytes frame = udp_frame();
  EXPECT_TRUE(validate_packet(parse_packet(frame), frame).empty());
}

TEST(Validate, DetectsBadChecksum) {
  Bytes frame = udp_frame();
  frame[EthernetHeader::size() + 10] ^= 0xff;  // corrupt IP checksum
  const auto issues = validate_packet(parse_packet(frame), frame);
  EXPECT_NE(std::find(issues.begin(), issues.end(),
                      ValidationIssue::ipv4_bad_checksum),
            issues.end());
}

TEST(Validate, DetectsTtlZero) {
  const Bytes frame = PacketBuilder()
                          .ethernet(mac(2), mac(1))
                          .ipv4(Ipv4Address::from_octets(1, 1, 1, 1),
                                Ipv4Address::from_octets(2, 2, 2, 2),
                                IpProto::udp, /*ttl=*/0)
                          .udp(1, 2)
                          .build();
  const auto issues = validate_packet(parse_packet(frame), frame);
  EXPECT_NE(std::find(issues.begin(), issues.end(),
                      ValidationIssue::ipv4_ttl_zero),
            issues.end());
}

TEST(Validate, DetectsMartianSource) {
  const Bytes frame = PacketBuilder()
                          .ethernet(mac(2), mac(1))
                          .ipv4(Ipv4Address::from_octets(127, 0, 0, 1),
                                Ipv4Address::from_octets(2, 2, 2, 2),
                                IpProto::udp)
                          .udp(1, 2)
                          .build();
  const auto issues = validate_packet(parse_packet(frame), frame);
  EXPECT_NE(std::find(issues.begin(), issues.end(),
                      ValidationIssue::ipv4_martian_source),
            issues.end());
}

TEST(Validate, DetectsSynFinCombination) {
  const Bytes frame =
      PacketBuilder()
          .ethernet(mac(2), mac(1))
          .ipv4(Ipv4Address::from_octets(1, 1, 1, 1),
                Ipv4Address::from_octets(2, 2, 2, 2), IpProto::tcp)
          .tcp(80, 80, TcpHeader::flag_syn | TcpHeader::flag_fin)
          .build();
  const auto issues = validate_packet(parse_packet(frame), frame);
  EXPECT_NE(std::find(issues.begin(), issues.end(),
                      ValidationIssue::tcp_bad_flags),
            issues.end());
}

TEST(Validate, DetectsTotalLengthOverrun) {
  Bytes frame = udp_frame();
  // Claim more IP payload than the frame holds (and fix the checksum so
  // only the length check fires).
  auto parsed = parse_packet(frame);
  Ipv4Header ip = *parsed.outer.ipv4;
  ip.total_length = static_cast<std::uint16_t>(frame.size());  // too large
  ip.checksum = 0;
  ip.checksum = ip.compute_checksum();
  ip.serialize_to(frame, parsed.outer.l3_offset);
  write_be16(frame, parsed.outer.l3_offset + 10, ip.checksum);
  const auto issues = validate_packet(parse_packet(frame), frame);
  EXPECT_NE(std::find(issues.begin(), issues.end(),
                      ValidationIssue::ipv4_total_length_mismatch),
            issues.end());
}

TEST(Validate, UndersizedFrameFlagged) {
  Bytes frame = udp_frame();
  frame.resize(59);
  frame.resize(59);
  const auto parsed = parse_packet(frame);
  const auto issues = validate_packet(parsed, frame);
  EXPECT_NE(std::find(issues.begin(), issues.end(),
                      ValidationIssue::frame_undersized),
            issues.end());
}

TEST(Validate, PaddedEthernetFrameIsNotALengthMismatch) {
  // A 60-byte frame carrying a small IP packet has padding; that must not
  // trigger the total-length check.
  const Bytes frame = PacketBuilder()
                          .ethernet(mac(2), mac(1))
                          .ipv4(Ipv4Address::from_octets(1, 1, 1, 1),
                                Ipv4Address::from_octets(2, 2, 2, 2),
                                IpProto::udp)
                          .udp(1, 2)
                          .build();
  const auto issues = validate_packet(parse_packet(frame), frame);
  EXPECT_EQ(std::find(issues.begin(), issues.end(),
                      ValidationIssue::ipv4_total_length_mismatch),
            issues.end());
}

TEST(ParseErrorStrings, AllDistinct) {
  EXPECT_EQ(to_string(ParseError::none), "none");
  EXPECT_NE(to_string(ParseError::truncated_ipv4),
            to_string(ParseError::truncated_ipv6));
}

}  // namespace
}  // namespace flexsfp::net
