#include "net/builder.hpp"

#include <gtest/gtest.h>

#include "net/checksum.hpp"

namespace flexsfp::net {
namespace {

MacAddress mac(std::uint64_t v) { return MacAddress::from_u64(v); }

TEST(PacketBuilder, UdpFrameHasValidLengthsAndChecksums) {
  const Bytes frame = PacketBuilder()
                          .ethernet(mac(2), mac(1))
                          .ipv4(Ipv4Address::from_octets(10, 0, 0, 1),
                                Ipv4Address::from_octets(10, 0, 0, 2),
                                IpProto::udp)
                          .udp(5000, 5001)
                          .payload_size(100)
                          .build();
  const auto parsed = parse_packet(frame);
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed.outer.ipv4);
  ASSERT_TRUE(parsed.outer.udp);
  EXPECT_EQ(parsed.outer.ipv4->total_length, 20 + 8 + 100);
  EXPECT_EQ(parsed.outer.udp->length, 8 + 100);
  // IPv4 header checksum verifies.
  EXPECT_EQ(parsed.outer.ipv4->compute_checksum(), parsed.outer.ipv4->checksum);
  // No validation issues at all.
  EXPECT_TRUE(validate_packet(parsed, frame).empty());
}

TEST(PacketBuilder, TcpChecksumCoversPseudoHeaderAndPayload) {
  const Bytes frame = PacketBuilder()
                          .ethernet(mac(2), mac(1))
                          .ipv4(Ipv4Address::from_octets(1, 1, 1, 1),
                                Ipv4Address::from_octets(2, 2, 2, 2),
                                IpProto::tcp)
                          .tcp(80, 12345)
                          .payload_size(64)
                          .build();
  const auto parsed = parse_packet(frame);
  ASSERT_TRUE(parsed.outer.tcp);
  // Verify by recomputing over pseudo-header + segment.
  const auto& ip = *parsed.outer.ipv4;
  Bytes pseudo(12);
  write_be32(pseudo, 0, ip.src.value());
  write_be32(pseudo, 4, ip.dst.value());
  pseudo[9] = ip.protocol;
  const std::size_t seg_len = ip.total_length - ip.size();
  write_be16(pseudo, 10, static_cast<std::uint16_t>(seg_len));
  std::uint32_t sum = checksum_partial(pseudo);
  sum = checksum_partial(
      BytesView{frame.data() + parsed.outer.l4_offset, seg_len}, sum);
  EXPECT_EQ(checksum_finish(sum), 0);  // checksum field included -> zero
}

TEST(PacketBuilder, MinimumFrameSizeApplied) {
  const Bytes frame = PacketBuilder()
                          .ethernet(mac(2), mac(1))
                          .ipv4(Ipv4Address::from_octets(1, 0, 0, 1),
                                Ipv4Address::from_octets(1, 0, 0, 2),
                                IpProto::udp)
                          .udp(1, 2)
                          .build();
  EXPECT_EQ(frame.size(), 60u);
}

TEST(PacketBuilder, VlanStackChainsEtherTypes) {
  const Bytes frame = PacketBuilder()
                          .ethernet(mac(2), mac(1))
                          .vlan(100, 3)
                          .ipv4(Ipv4Address::from_octets(1, 0, 0, 1),
                                Ipv4Address::from_octets(1, 0, 0, 2),
                                IpProto::udp)
                          .udp(1, 2)
                          .build();
  const auto parsed = parse_packet(frame);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.vlan_tags.size(), 1u);
  EXPECT_EQ(parsed.vlan_tags[0].vid, 100);
  EXPECT_EQ(parsed.vlan_tags[0].pcp, 3);
  EXPECT_TRUE(parsed.outer.ipv4.has_value());
}

TEST(PacketBuilder, QinqProducesTwoTags) {
  const Bytes frame = PacketBuilder()
                          .ethernet(mac(2), mac(1))
                          .qinq(200, 42)
                          .ipv4(Ipv4Address::from_octets(1, 0, 0, 1),
                                Ipv4Address::from_octets(1, 0, 0, 2),
                                IpProto::udp)
                          .udp(1, 2)
                          .build();
  const auto parsed = parse_packet(frame);
  ASSERT_EQ(parsed.vlan_tags.size(), 2u);
  EXPECT_EQ(parsed.eth.ether_type,
            static_cast<std::uint16_t>(EtherType::qinq));
  EXPECT_EQ(parsed.vlan_tags[0].vid, 200);
  EXPECT_EQ(parsed.vlan_tags[1].vid, 42);
}

TEST(PacketBuilder, RequiresEthernetLayer) {
  EXPECT_THROW((void)PacketBuilder().build(), std::logic_error);
}

TEST(Transform, GreEncapDecapRoundTrip) {
  Bytes frame = PacketBuilder()
                    .ethernet(mac(2), mac(1))
                    .ipv4(Ipv4Address::from_octets(10, 0, 0, 1),
                          Ipv4Address::from_octets(10, 0, 0, 2), IpProto::udp)
                    .udp(1000, 2000)
                    .payload_size(32)
                    .build();
  const Bytes original = frame;

  ASSERT_TRUE(encapsulate_gre(frame, Ipv4Address::from_octets(172, 16, 0, 1),
                              Ipv4Address::from_octets(172, 16, 0, 2)));
  const auto outer = parse_packet(frame);
  ASSERT_TRUE(outer.gre.has_value());
  ASSERT_TRUE(outer.inner.has_value());
  EXPECT_EQ(outer.outer.ipv4->protocol,
            static_cast<std::uint8_t>(IpProto::gre));
  EXPECT_EQ(outer.outer.ipv4->compute_checksum(), outer.outer.ipv4->checksum);
  EXPECT_EQ(outer.inner->ipv4->src, Ipv4Address::from_octets(10, 0, 0, 1));

  ASSERT_TRUE(decapsulate(frame));
  EXPECT_EQ(frame, original);
}

TEST(Transform, VxlanEncapDecapRoundTrip) {
  Bytes frame = PacketBuilder()
                    .ethernet(mac(2), mac(1))
                    .ipv4(Ipv4Address::from_octets(10, 0, 0, 1),
                          Ipv4Address::from_octets(10, 0, 0, 2), IpProto::tcp)
                    .tcp(80, 8080)
                    .payload_size(200)
                    .build();
  const Bytes original = frame;

  ASSERT_TRUE(encapsulate_vxlan(frame, mac(0xa), mac(0xb),
                                Ipv4Address::from_octets(172, 16, 1, 1),
                                Ipv4Address::from_octets(172, 16, 1, 2),
                                /*vni=*/777));
  const auto outer = parse_packet(frame);
  ASSERT_TRUE(outer.vxlan.has_value());
  EXPECT_EQ(outer.vxlan->vni, 777u);
  ASSERT_TRUE(outer.inner_eth.has_value());
  ASSERT_TRUE(outer.inner.has_value());
  EXPECT_EQ(outer.outer.udp->dst_port, VxlanHeader::udp_port);

  ASSERT_TRUE(decapsulate(frame));
  EXPECT_EQ(frame, original);
}

TEST(Transform, IpipEncapDecapRoundTrip) {
  Bytes frame = PacketBuilder()
                    .ethernet(mac(2), mac(1))
                    .ipv4(Ipv4Address::from_octets(10, 0, 0, 1),
                          Ipv4Address::from_octets(10, 0, 0, 2), IpProto::udp)
                    .udp(53, 53)
                    .payload_size(48)
                    .build();
  const Bytes original = frame;
  ASSERT_TRUE(encapsulate_ipip(frame, Ipv4Address::from_octets(9, 9, 9, 1),
                               Ipv4Address::from_octets(9, 9, 9, 2)));
  const auto outer = parse_packet(frame);
  EXPECT_EQ(outer.outer.ipv4->protocol,
            static_cast<std::uint8_t>(IpProto::ipv4_encap));
  ASSERT_TRUE(decapsulate(frame));
  EXPECT_EQ(frame, original);
}

TEST(Transform, DecapsulateRejectsPlainTraffic) {
  Bytes frame = PacketBuilder()
                    .ethernet(mac(2), mac(1))
                    .ipv4(Ipv4Address::from_octets(10, 0, 0, 1),
                          Ipv4Address::from_octets(10, 0, 0, 2), IpProto::udp)
                    .udp(1, 2)
                    .build();
  EXPECT_FALSE(decapsulate(frame));
}

TEST(Transform, PushPopVlanRoundTrip) {
  Bytes frame = PacketBuilder()
                    .ethernet(mac(2), mac(1))
                    .ipv4(Ipv4Address::from_octets(10, 0, 0, 1),
                          Ipv4Address::from_octets(10, 0, 0, 2), IpProto::udp)
                    .udp(1, 2)
                    .build();
  const Bytes original = frame;
  ASSERT_TRUE(push_vlan(frame, 512, 6));
  const auto tagged = parse_packet(frame);
  ASSERT_EQ(tagged.vlan_tags.size(), 1u);
  EXPECT_EQ(tagged.vlan_tags[0].vid, 512);
  ASSERT_TRUE(pop_vlan(frame));
  EXPECT_EQ(frame, original);
}

TEST(Transform, PopVlanOnUntaggedFails) {
  Bytes frame = PacketBuilder()
                    .ethernet(mac(2), mac(1))
                    .ipv4(Ipv4Address::from_octets(10, 0, 0, 1),
                          Ipv4Address::from_octets(10, 0, 0, 2), IpProto::udp)
                    .udp(1, 2)
                    .build();
  EXPECT_FALSE(pop_vlan(frame));
}

TEST(Transform, RewriteSrcPreservesChecksumValidity) {
  Bytes frame = PacketBuilder()
                    .ethernet(mac(2), mac(1))
                    .ipv4(Ipv4Address::from_octets(10, 0, 0, 1),
                          Ipv4Address::from_octets(10, 0, 0, 2), IpProto::tcp)
                    .tcp(80, 8080)
                    .payload_size(40)
                    .build();
  auto parsed = parse_packet(frame);
  ASSERT_TRUE(
      rewrite_ipv4_src(frame, parsed, Ipv4Address::from_octets(5, 6, 7, 8)));
  parsed = parse_packet(frame);
  EXPECT_EQ(parsed.outer.ipv4->src, Ipv4Address::from_octets(5, 6, 7, 8));
  // Header checksum still verifies, and no structural issues appear.
  EXPECT_EQ(parsed.outer.ipv4->compute_checksum(), parsed.outer.ipv4->checksum);
  EXPECT_TRUE(validate_packet(parsed, frame).empty());
}

TEST(Transform, RewriteDstUpdatesUdpChecksum) {
  Bytes frame = PacketBuilder()
                    .ethernet(mac(2), mac(1))
                    .ipv4(Ipv4Address::from_octets(10, 0, 0, 1),
                          Ipv4Address::from_octets(10, 0, 0, 2), IpProto::udp)
                    .udp(53, 53)
                    .payload_size(64)
                    .build();
  auto parsed = parse_packet(frame);
  const std::uint16_t before = parsed.outer.udp->checksum;
  ASSERT_TRUE(
      rewrite_ipv4_dst(frame, parsed, Ipv4Address::from_octets(8, 8, 8, 8)));
  parsed = parse_packet(frame);
  EXPECT_EQ(parsed.outer.ipv4->dst, Ipv4Address::from_octets(8, 8, 8, 8));
  EXPECT_NE(parsed.outer.udp->checksum, before);
}

TEST(Transform, DecrementTtlKeepsChecksumValid) {
  Bytes frame = PacketBuilder()
                    .ethernet(mac(2), mac(1))
                    .ipv4(Ipv4Address::from_octets(10, 0, 0, 1),
                          Ipv4Address::from_octets(10, 0, 0, 2), IpProto::udp,
                          /*ttl=*/64)
                    .udp(1, 2)
                    .build();
  auto parsed = parse_packet(frame);
  ASSERT_TRUE(decrement_ttl(frame, parsed));
  parsed = parse_packet(frame);
  EXPECT_EQ(parsed.outer.ipv4->ttl, 63);
  EXPECT_EQ(parsed.outer.ipv4->compute_checksum(), parsed.outer.ipv4->checksum);
}

}  // namespace
}  // namespace flexsfp::net
