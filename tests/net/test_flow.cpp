#include "net/flow.hpp"

#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <set>

#include "sim/random.hpp"

namespace flexsfp::net {
namespace {

FiveTuple tuple(std::uint32_t src, std::uint32_t dst, std::uint16_t sport,
                std::uint16_t dport, std::uint8_t proto = 6) {
  return FiveTuple{Ipv4Address{src}, Ipv4Address{dst}, sport, dport, proto};
}

TEST(FiveTuple, ReversedSwapsEndpoints) {
  const auto t = tuple(1, 2, 10, 20);
  const auto r = t.reversed();
  EXPECT_EQ(r.src.value(), 2u);
  EXPECT_EQ(r.dst.value(), 1u);
  EXPECT_EQ(r.src_port, 20);
  EXPECT_EQ(r.dst_port, 10);
  EXPECT_EQ(r.reversed(), t);
}

TEST(FiveTuple, CanonicalSameForBothDirections) {
  const auto t = tuple(99, 3, 4000, 80);
  EXPECT_EQ(t.canonical(), t.reversed().canonical());
}

TEST(Fnv1a, StableAndSensitive) {
  const Bytes a{1, 2, 3};
  const Bytes b{1, 2, 4};
  EXPECT_EQ(fnv1a(a), fnv1a(a));
  EXPECT_NE(fnv1a(a), fnv1a(b));
}

TEST(Murmur3, SeedChangesHash) {
  const Bytes data{1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_NE(murmur3_64(data, 0), murmur3_64(data, 1));
}

TEST(Murmur3, U64SpecializationMatchesGenericEightByteHash) {
  // murmur3_u64 is the table-probe hot path; it must compute exactly
  // murmur3_64 over the key's 8 little-endian bytes for every (value, seed).
  sim::Rng rng(2026);
  const auto check = [](std::uint64_t value, std::uint64_t seed) {
    Bytes bytes(8);
    for (int j = 0; j < 8; ++j) {
      bytes[j] = static_cast<std::uint8_t>(value >> (8 * j));
    }
    EXPECT_EQ(murmur3_u64(value, seed), murmur3_64(bytes, seed))
        << "value " << value << " seed " << seed;
  };
  for (const std::uint64_t value :
       {std::uint64_t{0}, std::uint64_t{1}, ~std::uint64_t{0},
        std::uint64_t{0x8000000000000000ull}, std::uint64_t{0x0102030405060708ull}}) {
    check(value, 0);
    check(value, 0x9e3779b97f4a7c15ull);
  }
  for (int i = 0; i < 1000; ++i) check(rng.next_u64(), rng.next_u64());
}

TEST(Murmur3, AvalancheOnSingleBitFlip) {
  // Flipping one input bit should flip roughly half the output bits.
  sim::Rng rng(5);
  int total_flips = 0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    Bytes data(13);
    for (auto& byte : data) {
      byte = static_cast<std::uint8_t>(rng.uniform(0, 255));
    }
    const std::uint64_t before = murmur3_64(data);
    data[t % data.size()] ^= 1 << (t % 8);
    const std::uint64_t after = murmur3_64(data);
    total_flips += std::popcount(before ^ after);
  }
  const double mean_flips = double(total_flips) / trials;
  EXPECT_GT(mean_flips, 24.0);  // ideal is 32
  EXPECT_LT(mean_flips, 40.0);
}

TEST(Murmur3, HashTupleDistributesAcrossBuckets) {
  // 10k flows into 64 buckets: no bucket should be grossly over-loaded.
  std::array<int, 64> buckets{};
  for (std::uint32_t i = 0; i < 10000; ++i) {
    const auto h = hash_tuple(tuple(i, ~i, static_cast<std::uint16_t>(i),
                                    static_cast<std::uint16_t>(i * 7)));
    ++buckets[h % 64];
  }
  const double expected = 10000.0 / 64.0;
  for (const int count : buckets) {
    EXPECT_GT(count, expected * 0.5);
    EXPECT_LT(count, expected * 1.5);
  }
}

TEST(Toeplitz, SymmetricKeyGivesSymmetricHash) {
  const auto hash = ToeplitzHash::symmetric();
  for (std::uint32_t i = 1; i < 50; ++i) {
    const auto t = tuple(i * 1000, i * 7777, static_cast<std::uint16_t>(i),
                         static_cast<std::uint16_t>(i + 1));
    EXPECT_EQ(hash.hash_tuple(t), hash.hash_tuple(t.reversed()))
        << "flow " << i;
  }
}

TEST(Toeplitz, DifferentFlowsGetDifferentHashes) {
  const auto hash = ToeplitzHash::symmetric();
  std::set<std::uint32_t> values;
  for (std::uint32_t i = 0; i < 200; ++i) {
    values.insert(hash.hash_tuple(
        tuple(0x0a000001 + i, 0xc0a80001, 1024, 80)));
  }
  // Collisions are possible but should be rare.
  EXPECT_GT(values.size(), 195u);
}

TEST(Toeplitz, DeterministicAcrossInstances) {
  const auto a = ToeplitzHash::symmetric();
  const auto b = ToeplitzHash::symmetric();
  const auto t = tuple(123456, 654321, 11, 22);
  EXPECT_EQ(a.hash_tuple(t), b.hash_tuple(t));
}

TEST(FiveTupleToString, ContainsFields) {
  const auto s = tuple(0x0a000001, 0x0a000002, 1234, 80).to_string();
  EXPECT_NE(s.find("10.0.0.1"), std::string::npos);
  EXPECT_NE(s.find("1234"), std::string::npos);
}

}  // namespace
}  // namespace flexsfp::net
