#include "net/headers.hpp"

#include <gtest/gtest.h>

namespace flexsfp::net {
namespace {

TEST(EthernetHeader, SerializeParseRoundTrip) {
  EthernetHeader h;
  h.dst = *MacAddress::parse("ff:ff:ff:ff:ff:ff");
  h.src = *MacAddress::parse("02:00:00:00:00:01");
  h.ether_type = static_cast<std::uint16_t>(EtherType::ipv4);

  Bytes buffer(EthernetHeader::size());
  h.serialize_to(buffer, 0);
  const auto parsed = EthernetHeader::parse(buffer, 0);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->dst, h.dst);
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->ether_type, h.ether_type);
}

TEST(EthernetHeader, ParseRejectsTruncated) {
  Bytes buffer(13);
  EXPECT_FALSE(EthernetHeader::parse(buffer, 0).has_value());
  EXPECT_FALSE(EthernetHeader::parse(Bytes(20), 10).has_value());
}

TEST(VlanTag, FieldPacking) {
  VlanTag tag;
  tag.pcp = 5;
  tag.dei = true;
  tag.vid = 0xabc;
  tag.ether_type = 0x0800;

  Bytes buffer(VlanTag::size());
  tag.serialize_to(buffer, 0);
  EXPECT_EQ(buffer[0], 0xba);  // pcp=101, dei=1, vid[11:8]=1010
  const auto parsed = VlanTag::parse(buffer, 0);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->pcp, 5);
  EXPECT_TRUE(parsed->dei);
  EXPECT_EQ(parsed->vid, 0xabc);
  EXPECT_EQ(parsed->ether_type, 0x0800);
}

TEST(Ipv4Header, SerializeParseRoundTrip) {
  Ipv4Header h;
  h.dscp = 10;
  h.ecn = 1;
  h.total_length = 1500;
  h.identification = 0x4242;
  h.dont_fragment = true;
  h.ttl = 17;
  h.protocol = 6;
  h.src = Ipv4Address::from_octets(10, 0, 0, 1);
  h.dst = Ipv4Address::from_octets(10, 0, 0, 2);
  h.checksum = h.compute_checksum();

  Bytes buffer(h.size());
  h.serialize_to(buffer, 0);
  const auto parsed = Ipv4Header::parse(buffer, 0);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->dscp, 10);
  EXPECT_EQ(parsed->ecn, 1);
  EXPECT_EQ(parsed->total_length, 1500);
  EXPECT_TRUE(parsed->dont_fragment);
  EXPECT_FALSE(parsed->more_fragments);
  EXPECT_EQ(parsed->ttl, 17);
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->dst, h.dst);
  EXPECT_EQ(parsed->checksum, h.checksum);
  EXPECT_EQ(parsed->compute_checksum(), parsed->checksum);
}

TEST(Ipv4Header, ParseRejectsWrongVersion) {
  Bytes buffer(20, 0);
  buffer[0] = 0x65;  // version 6
  EXPECT_FALSE(Ipv4Header::parse(buffer, 0).has_value());
}

TEST(Ipv4Header, ParseRejectsBadIhl) {
  Bytes buffer(20, 0);
  buffer[0] = 0x44;  // version 4, ihl 4 (invalid, < 5)
  EXPECT_FALSE(Ipv4Header::parse(buffer, 0).has_value());
  buffer[0] = 0x4f;  // ihl 15 = 60 bytes but buffer is only 20
  EXPECT_FALSE(Ipv4Header::parse(buffer, 0).has_value());
}

TEST(Ipv4Header, OptionsRoundTrip) {
  Ipv4Header h;
  h.ihl = 7;  // 8 bytes of options
  h.src = Ipv4Address::from_octets(1, 2, 3, 4);
  EXPECT_EQ(h.size(), 28u);
  Bytes buffer(h.size());
  h.serialize_to(buffer, 0);
  const auto parsed = Ipv4Header::parse(buffer, 0);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->ihl, 7);
}

TEST(Ipv6Header, SerializeParseRoundTrip) {
  Ipv6Header h;
  h.traffic_class = 0x2e;
  h.flow_label = 0xabcde;
  h.payload_length = 512;
  h.next_header = 17;
  h.hop_limit = 3;
  h.src = *Ipv6Address::parse("2001:db8::1");
  h.dst = *Ipv6Address::parse("2001:db8::2");

  Bytes buffer(Ipv6Header::size());
  h.serialize_to(buffer, 0);
  const auto parsed = Ipv6Header::parse(buffer, 0);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->traffic_class, 0x2e);
  EXPECT_EQ(parsed->flow_label, 0xabcdeu);
  EXPECT_EQ(parsed->payload_length, 512);
  EXPECT_EQ(parsed->next_header, 17);
  EXPECT_EQ(parsed->hop_limit, 3);
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->dst, h.dst);
}

TEST(Ipv6Header, ParseRejectsWrongVersion) {
  Bytes buffer(40, 0);
  buffer[0] = 0x45;
  EXPECT_FALSE(Ipv6Header::parse(buffer, 0).has_value());
}

TEST(UdpHeader, SerializeParseRoundTrip) {
  UdpHeader h{.src_port = 1234, .dst_port = 4789, .length = 100,
              .checksum = 0xbeef};
  Bytes buffer(UdpHeader::size());
  h.serialize_to(buffer, 0);
  const auto parsed = UdpHeader::parse(buffer, 0);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->src_port, 1234);
  EXPECT_EQ(parsed->dst_port, 4789);
  EXPECT_EQ(parsed->length, 100);
  EXPECT_EQ(parsed->checksum, 0xbeef);
}

TEST(TcpHeader, SerializeParseRoundTrip) {
  TcpHeader h;
  h.src_port = 443;
  h.dst_port = 51515;
  h.seq = 0x12345678;
  h.ack = 0x9abcdef0;
  h.flags = TcpHeader::flag_syn | TcpHeader::flag_ack;
  h.window = 0x7fff;
  Bytes buffer(h.size());
  h.serialize_to(buffer, 0);
  const auto parsed = TcpHeader::parse(buffer, 0);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->src_port, 443);
  EXPECT_EQ(parsed->seq, 0x12345678u);
  EXPECT_EQ(parsed->ack, 0x9abcdef0u);
  EXPECT_EQ(parsed->flags, TcpHeader::flag_syn | TcpHeader::flag_ack);
  EXPECT_EQ(parsed->data_offset, 5);
}

TEST(TcpHeader, ParseRejectsBadDataOffset) {
  Bytes buffer(20, 0);
  buffer[12] = 0x40;  // data_offset 4 < 5
  EXPECT_FALSE(TcpHeader::parse(buffer, 0).has_value());
}

TEST(GreHeader, RoundTripAndFlagsRejection) {
  GreHeader h;
  h.protocol = static_cast<std::uint16_t>(EtherType::ipv4);
  Bytes buffer(GreHeader::size());
  h.serialize_to(buffer, 0);
  ASSERT_TRUE(GreHeader::parse(buffer, 0).has_value());
  EXPECT_EQ(GreHeader::parse(buffer, 0)->protocol, 0x0800);

  buffer[0] = 0x80;  // checksum-present flag: not base RFC 2784
  EXPECT_FALSE(GreHeader::parse(buffer, 0).has_value());
}

TEST(VxlanHeader, RoundTripAndIFlag) {
  VxlanHeader h;
  h.vni = 0xabcdef;
  Bytes buffer(VxlanHeader::size());
  h.serialize_to(buffer, 0);
  const auto parsed = VxlanHeader::parse(buffer, 0);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->vni, 0xabcdefu);

  buffer[0] = 0;  // clear the I flag
  EXPECT_FALSE(VxlanHeader::parse(buffer, 0).has_value());
}

TEST(IcmpHeader, RoundTrip) {
  IcmpHeader h{.type = 8, .code = 0, .checksum = 0x1234, .rest = 0xdeadbeef};
  Bytes buffer(IcmpHeader::size());
  h.serialize_to(buffer, 0);
  const auto parsed = IcmpHeader::parse(buffer, 0);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->type, 8);
  EXPECT_EQ(parsed->rest, 0xdeadbeefu);
}

TEST(EnumToString, CoversKnownValues) {
  EXPECT_EQ(to_string(EtherType::ipv4), "IPv4");
  EXPECT_EQ(to_string(EtherType::flexsfp_mgmt), "FlexSFP-Mgmt");
  EXPECT_EQ(to_string(IpProto::tcp), "TCP");
  EXPECT_EQ(to_string(IpProto::gre), "GRE");
}

}  // namespace
}  // namespace flexsfp::net
