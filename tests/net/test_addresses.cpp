#include "net/addresses.hpp"

#include <gtest/gtest.h>

namespace flexsfp::net {
namespace {

TEST(MacAddress, ParseAndFormatRoundTrip) {
  const auto mac = MacAddress::parse("02:1a:ff:00:9c:7e");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->to_string(), "02:1a:ff:00:9c:7e");
}

TEST(MacAddress, ParseRejectsMalformed) {
  EXPECT_FALSE(MacAddress::parse("02:1a:ff:00:9c").has_value());
  EXPECT_FALSE(MacAddress::parse("02:1a:ff:00:9c:7e:aa").has_value());
  EXPECT_FALSE(MacAddress::parse("0g:00:00:00:00:00").has_value());
  EXPECT_FALSE(MacAddress::parse("").has_value());
}

TEST(MacAddress, U64RoundTrip) {
  const auto mac = MacAddress::from_u64(0x0000020304050607ull & 0xffffffffffff);
  EXPECT_EQ(MacAddress::from_u64(mac.to_u64()), mac);
}

TEST(MacAddress, BroadcastAndMulticastBits) {
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddress::broadcast().is_multicast());
  const auto unicast = MacAddress::parse("02:00:00:00:00:01");
  ASSERT_TRUE(unicast);
  EXPECT_FALSE(unicast->is_multicast());
  const auto multicast = MacAddress::parse("01:00:5e:00:00:01");
  ASSERT_TRUE(multicast);
  EXPECT_TRUE(multicast->is_multicast());
}

TEST(Ipv4Address, ParseAndFormatRoundTrip) {
  const auto addr = Ipv4Address::parse("192.168.1.200");
  ASSERT_TRUE(addr);
  EXPECT_EQ(addr->to_string(), "192.168.1.200");
  EXPECT_EQ(addr->value(), 0xc0a801c8u);
}

TEST(Ipv4Address, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::parse("192.168.1").has_value());
  EXPECT_FALSE(Ipv4Address::parse("192.168.1.256").has_value());
  EXPECT_FALSE(Ipv4Address::parse("192.168.1.1.1").has_value());
  EXPECT_FALSE(Ipv4Address::parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Address::parse("192.168.1.2 ").has_value());
}

TEST(Ipv4Address, Classification) {
  EXPECT_TRUE(Ipv4Address::from_octets(127, 0, 0, 1).is_loopback());
  EXPECT_TRUE(Ipv4Address::from_octets(224, 0, 0, 5).is_multicast());
  EXPECT_FALSE(Ipv4Address::from_octets(10, 0, 0, 1).is_multicast());
  EXPECT_FALSE(Ipv4Address::from_octets(10, 0, 0, 1).is_loopback());
}

TEST(Ipv6Address, ParseFullForm) {
  const auto addr =
      Ipv6Address::parse("2001:0db8:0000:0000:0000:0000:0000:0001");
  ASSERT_TRUE(addr);
  EXPECT_EQ(addr->to_string(), "2001:0db8:0000:0000:0000:0000:0000:0001");
}

TEST(Ipv6Address, ParseCompressedForm) {
  const auto addr = Ipv6Address::parse("2001:db8::1");
  ASSERT_TRUE(addr);
  const auto [hi, lo] = addr->to_u64_pair();
  EXPECT_EQ(hi, 0x20010db800000000ull);
  EXPECT_EQ(lo, 1ull);
}

TEST(Ipv6Address, ParseLoopbackAndAllZero) {
  const auto loopback = Ipv6Address::parse("::1");
  ASSERT_TRUE(loopback);
  EXPECT_EQ(loopback->to_u64_pair().second, 1ull);
  const auto zero = Ipv6Address::parse("::");
  ASSERT_TRUE(zero);
  EXPECT_EQ(zero->to_u64_pair().first, 0ull);
  EXPECT_EQ(zero->to_u64_pair().second, 0ull);
}

TEST(Ipv6Address, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv6Address::parse("2001:db8").has_value());
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4:5:6:7:8:9").has_value());
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4::5:6:7:8").has_value());
  EXPECT_FALSE(Ipv6Address::parse("xyz::1").has_value());
}

TEST(Ipv6Address, MulticastDetection) {
  EXPECT_TRUE(Ipv6Address::parse("ff02::1")->is_multicast());
  EXPECT_FALSE(Ipv6Address::parse("2001:db8::1")->is_multicast());
}

TEST(Ipv4Prefix, CanonicalizesHostBits) {
  const Ipv4Prefix prefix{Ipv4Address::from_octets(10, 1, 2, 3), 16};
  EXPECT_EQ(prefix.address().to_string(), "10.1.0.0");
  EXPECT_EQ(prefix.to_string(), "10.1.0.0/16");
}

TEST(Ipv4Prefix, Containment) {
  const auto prefix = Ipv4Prefix::parse("192.168.0.0/24");
  ASSERT_TRUE(prefix);
  EXPECT_TRUE(prefix->contains(Ipv4Address::from_octets(192, 168, 0, 200)));
  EXPECT_FALSE(prefix->contains(Ipv4Address::from_octets(192, 168, 1, 1)));
}

TEST(Ipv4Prefix, ZeroLengthMatchesEverything) {
  const auto any = Ipv4Prefix::parse("0.0.0.0/0");
  ASSERT_TRUE(any);
  EXPECT_TRUE(any->contains(Ipv4Address::from_octets(8, 8, 8, 8)));
}

TEST(Ipv4Prefix, SlashThirtyTwoMatchesExactly) {
  const auto host = Ipv4Prefix::parse("10.0.0.1/32");
  ASSERT_TRUE(host);
  EXPECT_TRUE(host->contains(Ipv4Address::from_octets(10, 0, 0, 1)));
  EXPECT_FALSE(host->contains(Ipv4Address::from_octets(10, 0, 0, 2)));
}

TEST(Ipv4Prefix, ParseRejectsBadLength) {
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0/8").has_value());
}

}  // namespace
}  // namespace flexsfp::net
