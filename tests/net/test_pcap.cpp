#include "net/pcap.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "net/builder.hpp"

namespace flexsfp::net {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Pcap, WriteReadRoundTrip) {
  const std::string path = temp_path("flexsfp_test_roundtrip.pcap");
  const Bytes frame = PacketBuilder()
                          .ethernet(MacAddress::from_u64(2),
                                    MacAddress::from_u64(1))
                          .ipv4(Ipv4Address::from_octets(10, 0, 0, 1),
                                Ipv4Address::from_octets(10, 0, 0, 2),
                                IpProto::udp)
                          .udp(1, 2)
                          .payload_size(11)
                          .build();
  {
    PcapWriter writer(path);
    writer.write(frame, 1'000'123);
    writer.write(frame, 2'500'000);
    EXPECT_EQ(writer.records_written(), 2u);
  }
  const auto records = read_pcap(path);
  ASSERT_TRUE(records);
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].timestamp_us, 1'000'123);
  EXPECT_EQ((*records)[1].timestamp_us, 2'500'000);
  EXPECT_EQ((*records)[0].data, frame);
  std::remove(path.c_str());
}

TEST(Pcap, ReadMissingFileReturnsNullopt) {
  EXPECT_FALSE(read_pcap("/nonexistent/definitely_missing.pcap").has_value());
}

TEST(Pcap, ReadRejectsBadMagic) {
  const std::string path = temp_path("flexsfp_test_badmagic.pcap");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a pcap file at all, not even close";
  }
  EXPECT_FALSE(read_pcap(path).has_value());
  std::remove(path.c_str());
}

TEST(Pcap, EmptyCaptureReadsBack) {
  const std::string path = temp_path("flexsfp_test_empty.pcap");
  { PcapWriter writer(path); }
  const auto records = read_pcap(path);
  ASSERT_TRUE(records);
  EXPECT_TRUE(records->empty());
  std::remove(path.c_str());
}

TEST(Pcap, WriterThrowsOnBadPath) {
  EXPECT_THROW(PcapWriter("/nonexistent_dir/x/y.pcap"), std::runtime_error);
}

}  // namespace
}  // namespace flexsfp::net
