#include "apps/chain.hpp"

#include <gtest/gtest.h>

#include "app_test_util.hpp"
#include "apps/acl.hpp"
#include "apps/nat.hpp"
#include "apps/telemetry.hpp"
#include "apps/vlan.hpp"
#include "hw/device.hpp"
#include "hw/resource_model.hpp"

namespace flexsfp::apps {
namespace {

using testing::ip;
using testing::run;
using testing::udp_packet;

std::unique_ptr<AppChain> nat_then_vlan() {
  auto nat = std::make_unique<StaticNat>();
  nat->add_mapping(ip(10, 0, 0, 1), ip(99, 0, 0, 1));
  VlanConfig vlan_config;
  vlan_config.mode = VlanMode::push;
  vlan_config.vid = 100;
  auto chain = std::make_unique<AppChain>();
  chain->append(std::move(nat));
  chain->append(std::make_unique<VlanTagger>(vlan_config));
  return chain;
}

TEST(AppChain, StagesApplyInOrder) {
  auto chain_owner = nat_then_vlan();
  AppChain& chain = *chain_owner;
  auto packet = udp_packet(ip(10, 0, 0, 1), ip(8, 8, 8, 8), 1, 2);
  EXPECT_EQ(run(chain, packet), ppe::Verdict::forward);
  const auto parsed = net::parse_packet(packet.data());
  ASSERT_EQ(parsed.vlan_tags.size(), 1u);
  EXPECT_EQ(parsed.vlan_tags[0].vid, 100);
  EXPECT_EQ(parsed.outer.ipv4->src, ip(99, 0, 0, 1));  // NAT ran first
}

TEST(AppChain, DropShortCircuitsLaterStages) {
  AclConfig deny_config;
  deny_config.default_action = AclAction::deny;
  VlanConfig vlan_config;
  vlan_config.mode = VlanMode::push;
  AppChain chain;
  chain.append(std::make_unique<AclFirewall>(deny_config));
  chain.append(std::make_unique<VlanTagger>(vlan_config));

  auto packet = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2);
  const std::size_t before = packet.size();
  EXPECT_EQ(run(chain, packet), ppe::Verdict::drop);
  EXPECT_EQ(packet.size(), before);  // VLAN stage never ran
}

TEST(AppChain, NameListsStages) {
  auto chain_owner = nat_then_vlan();
  AppChain& chain = *chain_owner;
  EXPECT_EQ(chain.name(), "chain(nat,vlan)");
}

TEST(AppChain, ResourceUsageSumsStagesPlusGlue) {
  auto chain_owner = nat_then_vlan();
  AppChain& chain = *chain_owner;
  const hw::DatapathConfig dp{};
  const auto total = chain.resource_usage(dp);
  const auto nat_only = StaticNat().resource_usage(dp);
  const auto vlan_only = VlanTagger().resource_usage(dp);
  EXPECT_GT(total.luts, nat_only.luts + vlan_only.luts);  // + glue FIFO
  EXPECT_GE(total.usram_blocks,
            nat_only.usram_blocks + vlan_only.usram_blocks);
}

TEST(AppChain, PipelineLatencyAddsUp) {
  auto chain_owner = nat_then_vlan();
  AppChain& chain = *chain_owner;
  EXPECT_EQ(chain.pipeline_latency_cycles(),
            StaticNat().pipeline_latency_cycles() +
                VlanTagger().pipeline_latency_cycles());
}

TEST(AppChain, QualifiedTableNamesRoute) {
  auto chain_owner = nat_then_vlan();
  AppChain& chain = *chain_owner;
  const auto names = chain.table_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "nat.nat");
  EXPECT_EQ(names[1], "vlan.vid_translation");

  EXPECT_TRUE(chain.table_insert("nat.nat", 42, 43));
  EXPECT_EQ(chain.table_lookup("nat.nat", 42), 43u);
  EXPECT_TRUE(chain.table_insert("vlan.vid_translation", 1, 2));
  EXPECT_FALSE(chain.table_insert("bogus.table", 1, 2));
}

TEST(AppChain, BareTableNameFindsOwningStage) {
  auto chain_owner = nat_then_vlan();
  AppChain& chain = *chain_owner;
  EXPECT_TRUE(chain.table_insert("vid_translation", 7, 8));
  EXPECT_EQ(chain.table_lookup("vid_translation", 7), 8u);
  EXPECT_TRUE(chain.table_erase("vid_translation", 7));
}

TEST(AppChain, CountersAggregateAllStages) {
  auto chain_owner = nat_then_vlan();
  AppChain& chain = *chain_owner;
  auto packet = udp_packet(ip(10, 0, 0, 1), ip(8, 8, 8, 8), 1, 2);
  (void)run(chain, packet);
  const auto counters = chain.counters();
  // NAT exposes 3 counters, VLAN 3.
  EXPECT_EQ(counters.size(), 6u);
}

TEST(AppChain, MirrorRequestPropagates) {
  SamplerConfig sampler_config;
  sampler_config.rate = 1;
  AppChain chain;
  chain.append(std::make_unique<Sampler>(sampler_config));
  auto packet = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2);
  ppe::PacketContext ctx(packet);
  EXPECT_EQ(chain.process(ctx), ppe::Verdict::forward);
  EXPECT_TRUE(ctx.mirror_requested());
}

TEST(AppChain, EmptyChainForwards) {
  AppChain chain;
  auto packet = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2);
  EXPECT_EQ(run(chain, packet), ppe::Verdict::forward);
  EXPECT_EQ(chain.pipeline_latency_cycles(), 1u);
}

TEST(AppChain, FindStageLocatesMembers) {
  auto chain_owner = nat_then_vlan();
  AppChain& chain = *chain_owner;
  ASSERT_NE(chain.find_stage("nat"), nullptr);
  EXPECT_EQ(chain.find_stage("nat")->name(), "nat");
  ASSERT_NE(chain.find_stage("vlan"), nullptr);
  EXPECT_EQ(chain.find_stage("missing"), nullptr);
  // A simple app finds only itself.
  StaticNat nat;
  EXPECT_EQ(nat.find_stage("nat"), &nat);
  EXPECT_EQ(nat.find_stage("vlan"), nullptr);
}

TEST(AppChain, FourStageCompactChainStaysModest) {
  // §5.3: chains of 3-4 stages are the design point; the composed logic
  // must still fit comfortably alongside the fixed blocks on the MPF200T.
  AppChain chain;
  chain.append(std::make_unique<StaticNat>());
  chain.append(std::make_unique<AclFirewall>());
  chain.append(std::make_unique<VlanTagger>());
  chain.append(std::make_unique<IntStamper>());
  const auto usage = chain.resource_usage(hw::DatapathConfig{});
  const auto device = hw::FpgaDevice::mpf200t();
  const auto fixed = hw::ResourceModel::miv_rv32() +
                     hw::ResourceModel::ethernet_iface_electrical() +
                     hw::ResourceModel::ethernet_iface_optical();
  EXPECT_TRUE(device.fits(usage + fixed));
}

}  // namespace
}  // namespace flexsfp::apps
