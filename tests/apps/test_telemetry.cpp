#include "apps/telemetry.hpp"

#include <gtest/gtest.h>

#include "app_test_util.hpp"

namespace flexsfp::apps {
namespace {

using testing::ip;
using testing::run;
using testing::udp_packet;

TEST(TelemetryShim, SerializeParseRoundTrip) {
  TelemetryShim shim;
  shim.device_id = 0x1234;
  shim.ingress_port = 1;
  shim.queue_depth = 7;
  shim.timestamp_ns = 0x123456789abull & 0xffffffffffff;
  shim.inner_ether_type = 0x0800;
  net::Bytes buffer(TelemetryShim::size());
  shim.serialize_to(buffer, 0);
  const auto parsed = TelemetryShim::parse(buffer, 0);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->device_id, 0x1234);
  EXPECT_EQ(parsed->ingress_port, 1);
  EXPECT_EQ(parsed->queue_depth, 7);
  EXPECT_EQ(parsed->timestamp_ns, shim.timestamp_ns);
  EXPECT_EQ(parsed->inner_ether_type, 0x0800);
}

TEST(TelemetryShim, PushPopRestoresFrame) {
  auto packet = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2);
  const net::Bytes original = packet.data();
  TelemetryShim shim;
  shim.device_id = 9;
  ASSERT_TRUE(push_telemetry_shim(packet.data(), shim));
  EXPECT_EQ(packet.data().size(), original.size() + TelemetryShim::size());
  const auto eth = net::EthernetHeader::parse(packet.data(), 0);
  EXPECT_EQ(eth->ether_type, telemetry_ether_type);
  const auto popped = pop_telemetry_shim(packet.data());
  ASSERT_TRUE(popped);
  EXPECT_EQ(popped->device_id, 9);
  EXPECT_EQ(packet.data(), original);
}

TEST(TelemetryShim, PopWithoutShimFails) {
  auto packet = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2);
  EXPECT_FALSE(pop_telemetry_shim(packet.data()).has_value());
}

TEST(IntStamper, SourceInsertsTimestampAndDevice) {
  IntStamperConfig config;
  config.role = StamperRole::source;
  config.device_id = 77;
  IntStamper stamper(config);

  auto packet = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2);
  packet.set_ingress_time_ps(5'000'000);  // 5 us
  packet.set_ingress_port(1);
  EXPECT_EQ(run(stamper, packet), ppe::Verdict::forward);
  const auto shim = TelemetryShim::parse(packet.data(),
                                         net::EthernetHeader::size());
  ASSERT_TRUE(shim);
  EXPECT_EQ(shim->device_id, 77);
  EXPECT_EQ(shim->ingress_port, 1);
  EXPECT_EQ(shim->timestamp_ns, 5000u);
  EXPECT_EQ(stamper.stamped(), 1u);
}

TEST(IntStamper, SinkMeasuresPathLatency) {
  IntStamperConfig source_config;
  source_config.role = StamperRole::source;
  IntStamper source(source_config);
  IntStamperConfig sink_config;
  sink_config.role = StamperRole::sink;
  IntStamper sink(sink_config);

  auto packet = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2);
  packet.set_ingress_time_ps(1'000'000);  // stamped at 1 us
  (void)run(source, packet);
  packet.set_ingress_time_ps(4'000'000);  // arrives at sink at 4 us
  (void)run(sink, packet);
  EXPECT_EQ(sink.sink_samples(), 1u);
  EXPECT_NEAR(sink.mean_path_latency_ns(), 3000.0, 1.0);
  // The shim is stripped at the sink.
  EXPECT_FALSE(TelemetryShim::parse(packet.data(),
                                    net::EthernetHeader::size())
                   .has_value() &&
               net::EthernetHeader::parse(packet.data(), 0)->ether_type ==
                   telemetry_ether_type);
}

TEST(FlowStats, TracksPerFlowCounters) {
  FlowStats stats;
  for (int i = 0; i < 3; ++i) {
    auto packet = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 10, 20, 100);
    packet.set_ingress_time_ps(i * 1'000'000);
    (void)run(stats, packet);
  }
  auto other = udp_packet(ip(3, 3, 3, 3), ip(2, 2, 2, 2), 10, 20);
  (void)run(stats, other);

  EXPECT_EQ(stats.active_flows(), 2u);
  auto records = stats.export_all();
  ASSERT_EQ(records.size(), 2u);
  const auto& big = records[0].packets >= records[1].packets ? records[0]
                                                             : records[1];
  EXPECT_EQ(big.packets, 3u);
  EXPECT_EQ(big.first_seen_ps, 0);
  EXPECT_EQ(big.last_seen_ps, 2'000'000);
  EXPECT_EQ(stats.active_flows(), 0u);
}

TEST(FlowStats, SweepExportsIdleFlowsOnly) {
  FlowStatsConfig config;
  config.idle_timeout_ps = 1'000'000'000;    // 1 ms
  config.active_timeout_ps = 1'000'000'000'000;  // effectively off
  FlowStats stats(config);

  auto old_flow = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2);
  old_flow.set_ingress_time_ps(0);
  (void)run(stats, old_flow);
  auto fresh_flow = udp_packet(ip(9, 9, 9, 9), ip(2, 2, 2, 2), 1, 2);
  fresh_flow.set_ingress_time_ps(1'900'000'000);
  (void)run(stats, fresh_flow);

  const auto exported = stats.sweep(2'000'000'000);
  ASSERT_EQ(exported.size(), 1u);
  EXPECT_EQ(exported[0].tuple.src, ip(1, 1, 1, 1));
  EXPECT_EQ(stats.active_flows(), 1u);
}

TEST(FlowStats, ActiveTimeoutExportsLongLivedFlows) {
  FlowStatsConfig config;
  config.idle_timeout_ps = 1'000'000'000'000;
  config.active_timeout_ps = 5'000'000;  // 5 us
  FlowStats stats(config);
  auto packet = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2);
  packet.set_ingress_time_ps(0);
  (void)run(stats, packet);
  auto again = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2);
  again.set_ingress_time_ps(6'000'000);  // still active
  (void)run(stats, again);
  EXPECT_EQ(stats.sweep(7'000'000).size(), 1u);
}

TEST(FlowStats, CacheFullRejectionsCounted) {
  FlowStatsConfig config;
  config.cache_capacity = 4;
  FlowStats stats(config);
  for (std::uint32_t i = 0; i < 20; ++i) {
    auto packet = udp_packet(net::Ipv4Address{0x01000000u + i},
                             ip(2, 2, 2, 2), 1, 2);
    (void)run(stats, packet);
  }
  EXPECT_LE(stats.active_flows(), 4u);
  EXPECT_GT(stats.cache_rejections(), 0u);
}

TEST(FlowStats, TcpFlagsAccumulate) {
  FlowStats stats;
  auto syn = testing::tcp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2,
                                 net::TcpHeader::flag_syn);
  auto fin = testing::tcp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2,
                                 net::TcpHeader::flag_fin |
                                     net::TcpHeader::flag_ack);
  (void)run(stats, syn);
  (void)run(stats, fin);
  const auto records = stats.export_all();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].tcp_flags_seen,
            net::TcpHeader::flag_syn | net::TcpHeader::flag_fin |
                net::TcpHeader::flag_ack);
}

TEST(Sampler, MirrorsEveryNth) {
  SamplerConfig config;
  config.rate = 10;
  Sampler sampler(config);
  int mirrors = 0;
  for (int i = 0; i < 100; ++i) {
    auto packet = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2);
    ppe::PacketContext ctx(packet);
    EXPECT_EQ(sampler.process(ctx), ppe::Verdict::forward);
    if (ctx.mirror_requested()) ++mirrors;
  }
  EXPECT_EQ(mirrors, 10);
  EXPECT_EQ(sampler.sampled(), 10u);
}

TEST(Sampler, RateOneMirrorsEverything) {
  SamplerConfig config;
  config.rate = 1;
  Sampler sampler(config);
  auto packet = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2);
  ppe::PacketContext ctx(packet);
  (void)sampler.process(ctx);
  EXPECT_TRUE(ctx.mirror_requested());
}

TEST(TelemetryConfigs, SerializeParseRoundTrips) {
  IntStamperConfig int_config;
  int_config.role = StamperRole::sink;
  int_config.device_id = 3;
  const auto int_parsed = IntStamperConfig::parse(int_config.serialize());
  ASSERT_TRUE(int_parsed);
  EXPECT_EQ(int_parsed->role, StamperRole::sink);
  EXPECT_EQ(int_parsed->device_id, 3);

  FlowStatsConfig flow_config;
  flow_config.cache_capacity = 99;
  flow_config.idle_timeout_ps = 123;
  const auto flow_parsed = FlowStatsConfig::parse(flow_config.serialize());
  ASSERT_TRUE(flow_parsed);
  EXPECT_EQ(flow_parsed->cache_capacity, 99u);
  EXPECT_EQ(flow_parsed->idle_timeout_ps, 123);

  SamplerConfig sampler_config;
  sampler_config.rate = 256;
  const auto sampler_parsed = SamplerConfig::parse(sampler_config.serialize());
  ASSERT_TRUE(sampler_parsed);
  EXPECT_EQ(sampler_parsed->rate, 256u);
}

}  // namespace
}  // namespace flexsfp::apps
