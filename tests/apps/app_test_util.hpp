// Shared helpers for app-level tests: frame factories and a one-shot app
// driver that runs process() outside the simulator.
#pragma once

#include "net/builder.hpp"
#include "ppe/app.hpp"

namespace flexsfp::apps::testing {

inline net::MacAddress mac(std::uint64_t v) {
  return net::MacAddress::from_u64(v);
}

inline net::Ipv4Address ip(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                           std::uint8_t d) {
  return net::Ipv4Address::from_octets(a, b, c, d);
}

/// UDP frame src:sport -> dst:dport with `payload` bytes.
inline net::Packet udp_packet(net::Ipv4Address src, net::Ipv4Address dst,
                              std::uint16_t sport, std::uint16_t dport,
                              std::size_t payload = 32) {
  return net::PacketBuilder()
      .ethernet(mac(2), mac(1))
      .ipv4(src, dst, net::IpProto::udp)
      .udp(sport, dport)
      .payload_size(payload)
      .build_packet();
}

inline net::Packet tcp_packet(net::Ipv4Address src, net::Ipv4Address dst,
                              std::uint16_t sport, std::uint16_t dport,
                              std::uint8_t flags = net::TcpHeader::flag_ack,
                              std::size_t payload = 32) {
  return net::PacketBuilder()
      .ethernet(mac(2), mac(1))
      .ipv4(src, dst, net::IpProto::tcp)
      .tcp(sport, dport, flags)
      .payload_size(payload)
      .build_packet();
}

/// Run one packet through an app and return the verdict (packet is
/// modified in place).
inline ppe::Verdict run(ppe::PpeApp& app, net::Packet& packet) {
  ppe::PacketContext ctx(packet);
  return app.process(ctx);
}

}  // namespace flexsfp::apps::testing
