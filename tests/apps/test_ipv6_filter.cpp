#include "apps/ipv6_filter.hpp"

#include <gtest/gtest.h>

#include "app_test_util.hpp"
#include "hw/device.hpp"

namespace flexsfp::apps {
namespace {

using testing::run;

net::Packet ipv6_packet(const std::string& src, const std::string& dst) {
  return net::PacketBuilder()
      .ethernet(net::MacAddress::from_u64(2), net::MacAddress::from_u64(1))
      .ipv6(*net::Ipv6Address::parse(src), *net::Ipv6Address::parse(dst),
            net::IpProto::udp)
      .udp(1000, 2000)
      .payload_size(32)
      .build_packet();
}

TEST(Ipv6Prefix, ParseContainsAndCanonicalize) {
  const auto prefix = net::Ipv6Prefix::parse("2001:db8:abcd::/48");
  ASSERT_TRUE(prefix);
  EXPECT_TRUE(prefix->contains(*net::Ipv6Address::parse("2001:db8:abcd::1")));
  EXPECT_TRUE(
      prefix->contains(*net::Ipv6Address::parse("2001:db8:abcd:ffff::9")));
  EXPECT_FALSE(prefix->contains(*net::Ipv6Address::parse("2001:db8:abce::1")));
  // Host bits canonicalized away.
  const net::Ipv6Prefix sloppy{*net::Ipv6Address::parse("2001:db8:abcd::42"),
                               48};
  EXPECT_EQ(sloppy, *prefix);
}

TEST(Ipv6Prefix, MasksSpanningTheU64Boundary) {
  const net::Ipv6Prefix p72{*net::Ipv6Address::parse("2001:db8::"), 72};
  EXPECT_TRUE(p72.contains(*net::Ipv6Address::parse("2001:db8::ff:1:2:3")));
  EXPECT_FALSE(
      p72.contains(*net::Ipv6Address::parse("2001:db8:0:0:0100::1")));
  const net::Ipv6Prefix p0{*net::Ipv6Address::parse("::"), 0};
  EXPECT_TRUE(p0.contains(*net::Ipv6Address::parse("ffff::1")));
  const net::Ipv6Prefix p128{*net::Ipv6Address::parse("::1"), 128};
  EXPECT_TRUE(p128.contains(*net::Ipv6Address::parse("::1")));
  EXPECT_FALSE(p128.contains(*net::Ipv6Address::parse("::2")));
}

TEST(Ipv6Prefix, ParseRejectsBadInput) {
  EXPECT_FALSE(net::Ipv6Prefix::parse("2001:db8::").has_value());
  EXPECT_FALSE(net::Ipv6Prefix::parse("2001:db8::/129").has_value());
  EXPECT_FALSE(net::Ipv6Prefix::parse("nope/64").has_value());
}

TEST(Ipv6Filter, DenyByDefaultMeansNoUnprovisionedIpv6) {
  Ipv6Filter filter;  // default: deny
  auto packet = ipv6_packet("2001:db8::1", "2620:fe::fe");
  EXPECT_EQ(run(filter, packet), ppe::Verdict::drop);
  EXPECT_EQ(filter.denied(), 1u);
}

TEST(Ipv6Filter, ProvisionedPrefixPermits) {
  Ipv6Filter filter;
  ASSERT_TRUE(filter.add_rule(*net::Ipv6Prefix::parse("2001:db8:7::/48"),
                              Ipv6Action::permit));
  auto provisioned = ipv6_packet("2001:db8:7::42", "2620:fe::fe");
  auto other = ipv6_packet("2001:db8:8::42", "2620:fe::fe");
  EXPECT_EQ(run(filter, provisioned), ppe::Verdict::forward);
  EXPECT_EQ(run(filter, other), ppe::Verdict::drop);
  EXPECT_EQ(filter.permitted(), 1u);
  EXPECT_EQ(filter.denied(), 1u);
}

TEST(Ipv6Filter, LongestPrefixWins) {
  Ipv6FilterConfig config;
  config.default_action = Ipv6Action::permit;
  Ipv6Filter filter(config);
  // Deny the /32, carve out a permitted /48 inside it.
  ASSERT_TRUE(filter.add_rule(*net::Ipv6Prefix::parse("2001:db8::/32"),
                              Ipv6Action::deny));
  ASSERT_TRUE(filter.add_rule(*net::Ipv6Prefix::parse("2001:db8:7::/48"),
                              Ipv6Action::permit));
  auto carved = ipv6_packet("2001:db8:7::1", "::1");
  auto denied = ipv6_packet("2001:db8:9::1", "::1");
  auto outside = ipv6_packet("2001:db9::1", "::1");
  EXPECT_EQ(run(filter, carved), ppe::Verdict::forward);
  EXPECT_EQ(run(filter, denied), ppe::Verdict::drop);
  EXPECT_EQ(run(filter, outside), ppe::Verdict::forward);
}

TEST(Ipv6Filter, DestinationModeFiltersDownlink) {
  Ipv6FilterConfig config;
  config.field = Ipv6MatchField::destination;
  Ipv6Filter filter(config);
  ASSERT_TRUE(filter.add_rule(*net::Ipv6Prefix::parse("2001:db8:7::/48"),
                              Ipv6Action::permit));
  auto to_subscriber = ipv6_packet("2620:fe::fe", "2001:db8:7::42");
  auto to_other = ipv6_packet("2620:fe::fe", "2001:db8:8::42");
  EXPECT_EQ(run(filter, to_subscriber), ppe::Verdict::forward);
  EXPECT_EQ(run(filter, to_other), ppe::Verdict::drop);
}

TEST(Ipv6Filter, Ipv4TrafficBypasses) {
  Ipv6Filter filter;  // deny-by-default for IPv6
  auto v4 = testing::udp_packet(testing::ip(1, 1, 1, 1),
                                testing::ip(2, 2, 2, 2), 1, 2);
  EXPECT_EQ(run(filter, v4), ppe::Verdict::forward);
  EXPECT_EQ(filter.bypassed(), 1u);
}

TEST(Ipv6Filter, RuleCapacityAndRemoval) {
  Ipv6FilterConfig config;
  config.rule_capacity = 1;
  Ipv6Filter filter(config);
  const auto a = *net::Ipv6Prefix::parse("2001:db8::/32");
  const auto b = *net::Ipv6Prefix::parse("2001:db9::/32");
  EXPECT_TRUE(filter.add_rule(a, Ipv6Action::permit));
  EXPECT_FALSE(filter.add_rule(b, Ipv6Action::permit));
  EXPECT_TRUE(filter.remove_rule(a));
  EXPECT_FALSE(filter.remove_rule(a));
  EXPECT_TRUE(filter.add_rule(b, Ipv6Action::permit));
}

TEST(Ipv6FilterConfig, SerializeParseRoundTrip) {
  Ipv6FilterConfig config;
  config.field = Ipv6MatchField::destination;
  config.default_action = Ipv6Action::permit;
  config.rule_capacity = 99;
  const auto parsed = Ipv6FilterConfig::parse(config.serialize());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->field, Ipv6MatchField::destination);
  EXPECT_EQ(parsed->default_action, Ipv6Action::permit);
  EXPECT_EQ(parsed->rule_capacity, 99u);
  EXPECT_FALSE(Ipv6FilterConfig::parse(net::Bytes{2, 0, 0, 0, 0, 1}).has_value());
}

TEST(Ipv6Filter, WideKeyCostsMoreThanIpv4Acl) {
  // The 128-bit ternary key is pricier fabric than the IPv4 5-tuple TCAM.
  Ipv6Filter v6;
  const auto usage = v6.resource_usage(hw::DatapathConfig{});
  EXPECT_GT(usage.luts, 0u);
  EXPECT_TRUE(hw::FpgaDevice::mpf200t().fits(usage));
}

}  // namespace
}  // namespace flexsfp::apps
