#include "apps/tunnel.hpp"

#include <gtest/gtest.h>

#include "app_test_util.hpp"

namespace flexsfp::apps {
namespace {

using testing::ip;
using testing::mac;
using testing::run;
using testing::udp_packet;

TunnelConfig gre_encap_config() {
  TunnelConfig config;
  config.type = TunnelType::gre;
  config.role = TunnelRole::encap;
  config.local = ip(172, 16, 0, 1);
  config.remote = ip(172, 16, 0, 2);
  return config;
}

TEST(TunnelApp, GreEncapThenDecapRestoresOriginal) {
  TunnelApp encap(gre_encap_config());
  TunnelConfig decap_config = gre_encap_config();
  decap_config.role = TunnelRole::decap;
  TunnelApp decap(decap_config);

  auto packet = udp_packet(ip(10, 0, 0, 1), ip(10, 0, 0, 2), 1000, 2000);
  const net::Bytes original = packet.data();

  EXPECT_EQ(run(encap, packet), ppe::Verdict::forward);
  const auto outer = net::parse_packet(packet.data());
  ASSERT_TRUE(outer.gre.has_value());
  EXPECT_EQ(outer.outer.ipv4->src, ip(172, 16, 0, 1));
  EXPECT_EQ(outer.outer.ipv4->dst, ip(172, 16, 0, 2));

  EXPECT_EQ(run(decap, packet), ppe::Verdict::forward);
  EXPECT_EQ(packet.data(), original);
  EXPECT_EQ(encap.transformed(), 1u);
  EXPECT_EQ(decap.transformed(), 1u);
}

TEST(TunnelApp, VxlanEncapCarriesVni) {
  TunnelConfig config;
  config.type = TunnelType::vxlan;
  config.role = TunnelRole::encap;
  config.local = ip(172, 16, 1, 1);
  config.remote = ip(172, 16, 1, 2);
  config.vni = 4242;
  config.outer_dst = mac(0xaa);
  config.outer_src = mac(0xbb);
  TunnelApp encap(config);

  auto packet = udp_packet(ip(10, 0, 0, 1), ip(10, 0, 0, 2), 1, 2);
  EXPECT_EQ(run(encap, packet), ppe::Verdict::forward);
  const auto parsed = net::parse_packet(packet.data());
  ASSERT_TRUE(parsed.vxlan.has_value());
  EXPECT_EQ(parsed.vxlan->vni, 4242u);
  EXPECT_EQ(parsed.eth.dst, mac(0xaa));
  ASSERT_TRUE(parsed.inner.has_value());
  EXPECT_EQ(parsed.inner->ipv4->src, ip(10, 0, 0, 1));
}

TEST(TunnelApp, IpipRoundTrip) {
  TunnelConfig config;
  config.type = TunnelType::ipip;
  config.role = TunnelRole::encap;
  config.local = ip(9, 0, 0, 1);
  config.remote = ip(9, 0, 0, 2);
  TunnelApp encap(config);
  config.role = TunnelRole::decap;
  TunnelApp decap(config);

  auto packet = udp_packet(ip(10, 0, 0, 1), ip(10, 0, 0, 2), 5, 6);
  const net::Bytes original = packet.data();
  (void)run(encap, packet);
  EXPECT_EQ(net::parse_packet(packet.data()).outer.ipv4->protocol,
            static_cast<std::uint8_t>(net::IpProto::ipv4_encap));
  (void)run(decap, packet);
  EXPECT_EQ(packet.data(), original);
}

TEST(TunnelApp, DecapPassesNonTunneledTraffic) {
  TunnelConfig config;
  config.role = TunnelRole::decap;
  TunnelApp decap(config);
  auto packet = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2);
  const net::Bytes original = packet.data();
  EXPECT_EQ(run(decap, packet), ppe::Verdict::forward);
  EXPECT_EQ(packet.data(), original);
  EXPECT_EQ(decap.passed(), 1u);
}

TEST(TunnelApp, EncapPassesNonIpTraffic) {
  TunnelApp encap(gre_encap_config());
  net::Bytes frame(64, 0);
  net::EthernetHeader eth;
  eth.ether_type = static_cast<std::uint16_t>(net::EtherType::arp);
  eth.serialize_to(frame, 0);
  net::Packet packet{frame};
  EXPECT_EQ(run(encap, packet), ppe::Verdict::forward);
  EXPECT_EQ(packet.data(), frame);
  EXPECT_EQ(encap.passed(), 1u);
}

TEST(TunnelApp, VxlanNeedsLargerShifterThanGre) {
  TunnelConfig vxlan;
  vxlan.type = TunnelType::vxlan;
  TunnelConfig gre;
  gre.type = TunnelType::gre;
  const hw::DatapathConfig dp{};
  EXPECT_GT(TunnelApp(vxlan).resource_usage(dp).luts,
            TunnelApp(gre).resource_usage(dp).luts);
}

TEST(TunnelConfig, SerializeParseRoundTrip) {
  TunnelConfig config;
  config.type = TunnelType::vxlan;
  config.role = TunnelRole::decap;
  config.local = ip(1, 2, 3, 4);
  config.remote = ip(5, 6, 7, 8);
  config.vni = 0xabcdef;
  config.outer_dst = mac(0x112233445566);
  config.outer_src = mac(0x665544332211);
  const auto parsed = TunnelConfig::parse(config.serialize());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->type, TunnelType::vxlan);
  EXPECT_EQ(parsed->role, TunnelRole::decap);
  EXPECT_EQ(parsed->local, config.local);
  EXPECT_EQ(parsed->remote, config.remote);
  EXPECT_EQ(parsed->vni, config.vni);
  EXPECT_EQ(parsed->outer_dst, config.outer_dst);
  EXPECT_FALSE(TunnelConfig::parse(net::Bytes{1, 2, 3}).has_value());
}

}  // namespace
}  // namespace flexsfp::apps
