#include "apps/softwire.hpp"

#include <gtest/gtest.h>

#include "app_test_util.hpp"
#include "net/builder.hpp"
#include "net/checksum.hpp"
#include "net/parser.hpp"

namespace flexsfp::apps {
namespace {

using testing::ip;
using testing::mac;
using testing::run;
using testing::tcp_packet;
using testing::udp_packet;

// RFC 7597's running example: a = 6, k = 8, m = 2.
constexpr PsidParams kRfcParams{8, 6};
// Test default: 64 subscribers per address, 1008 ports each.
constexpr PsidParams kParams{6, 6};

net::Ipv6Address aftr() { return *net::Ipv6Address::parse("2001:db8:ffff::1"); }
net::Ipv6Address b4(std::uint64_t low) {
  return net::Ipv6Address::from_u64_pair(0x20010db8'00000000ull, low);
}

LwAftrConfig aftr_config() {
  LwAftrConfig config;
  config.aftr_addr = aftr();
  config.icmp_src = ip(192, 0, 2, 1);
  config.binding_capacity = 1024;
  return config;
}

/// Provision subscriber (198.51.100.1, psid) -> b4(1 + psid) for psid in
/// {0, 1}. (Apps are pinned types — no copies/moves — so tests provision in
/// place instead of receiving one from a factory.)
void provision(LwAftr& app) {
  EXPECT_TRUE(app.add_binding(ip(198, 51, 100, 1), 0, kParams, b4(1)));
  EXPECT_TRUE(app.add_binding(ip(198, 51, 100, 1), 1, kParams, b4(2)));
}

// --- PSID arithmetic -------------------------------------------------------

TEST(PsidMath, RfcExampleLayout) {
  // a=6, k=8, m=2: PSID 0x34 owns 4-port runs; port 0x0d34 has a-bits
  // 000011, psid bits 0x4d... decode per the RFC field order.
  EXPECT_TRUE(psid_params_valid(kRfcParams));
  EXPECT_EQ(psid_m_bits(kRfcParams), 2u);
  EXPECT_EQ(port_set_size(kRfcParams), 63u * 4u);
  // psid_of_port inverts port_for_index across the whole set.
  for (std::uint32_t i = 0; i < port_set_size(kRfcParams); ++i) {
    const std::uint16_t port = port_for_index(kRfcParams, 0x34, i);
    EXPECT_EQ(psid_of_port(kRfcParams, port), 0x34);
    EXPECT_FALSE(port_excluded(kRfcParams, port));
    EXPECT_TRUE(port_in_set(kRfcParams, 0x34, port));
  }
}

TEST(PsidMath, SystemPortsExcludedWhenOffsetNonzero) {
  // a=6 excludes ports 0..1023 (top six bits zero).
  EXPECT_TRUE(port_excluded(kParams, 0));
  EXPECT_TRUE(port_excluded(kParams, 1023));
  EXPECT_FALSE(port_excluded(kParams, 1024));
  // a=0: nothing excluded, the whole 16-bit space is partitioned.
  constexpr PsidParams flat{6, 0};
  EXPECT_FALSE(port_excluded(flat, 0));
  EXPECT_EQ(port_set_size(flat), 1024u);
}

TEST(PsidMath, DegenerateLayouts) {
  // k=0: one subscriber owns every non-excluded port.
  constexpr PsidParams no_psid{0, 6};
  EXPECT_EQ(port_set_size(no_psid), 63u * 1024u);
  EXPECT_TRUE(port_in_set(no_psid, 0, 3000));
  // a+k=16: one port per block.
  constexpr PsidParams tight{10, 6};
  EXPECT_TRUE(psid_params_valid(tight));
  EXPECT_EQ(psid_m_bits(tight), 0u);
  EXPECT_EQ(port_set_size(tight), 63u);
  // a+k>16 is invalid.
  EXPECT_FALSE(psid_params_valid(PsidParams{11, 6}));
}

// --- encap / decap ---------------------------------------------------------

TEST(LwAftrApp, EncapsulatesMappedDownstreamTraffic) {
  LwAftr app(aftr_config());
  provision(app);
  // Internet -> subscriber: dst port 1024 is index 0 of PSID 0.
  auto packet = udp_packet(ip(192, 0, 2, 50), ip(198, 51, 100, 1), 9999,
                           port_for_index(kParams, 0, 0));
  EXPECT_EQ(run(app, packet), ppe::Verdict::forward);
  const auto parsed = net::parse_packet(packet.data());
  ASSERT_TRUE(parsed.outer.ipv6.has_value());
  EXPECT_EQ(parsed.outer.ipv6->src, aftr());
  EXPECT_EQ(parsed.outer.ipv6->dst, b4(1));
  EXPECT_EQ(parsed.outer.ipv6->next_header,
            std::uint8_t(net::IpProto::ipv4_encap));
  EXPECT_EQ(app.stat_packets(LwAftr::stat_encapsulated), 1u);
}

TEST(LwAftrApp, DecapRestoresOriginalFrameAndChecksAntiSpoof) {
  LwAftr app(aftr_config());
  provision(app);
  const std::uint16_t port = port_for_index(kParams, 1, 7);
  // Subscriber -> internet, pre-encapsulated by the correct B4.
  auto packet = udp_packet(ip(198, 51, 100, 1), ip(192, 0, 2, 50), port, 443);
  const net::Bytes inner = packet.data();
  ASSERT_TRUE(net::encapsulate_ipv4_in_ipv6(packet.data(), b4(2), aftr()));

  EXPECT_EQ(run(app, packet), ppe::Verdict::forward);
  EXPECT_EQ(packet.data(), inner);  // byte-exact restore
  EXPECT_EQ(app.stat_packets(LwAftr::stat_decapsulated), 1u);
}

TEST(LwAftrApp, AntiSpoofDropsWrongB4Source) {
  LwAftr app(aftr_config());
  provision(app);
  const std::uint16_t port = port_for_index(kParams, 1, 0);
  auto packet = udp_packet(ip(198, 51, 100, 1), ip(192, 0, 2, 50), port, 443);
  // b4(1) holds PSID 0, not PSID 1: the inner source port lies.
  ASSERT_TRUE(net::encapsulate_ipv4_in_ipv6(packet.data(), b4(1), aftr()));
  EXPECT_EQ(run(app, packet), ppe::Verdict::drop);
  EXPECT_EQ(app.stat_packets(LwAftr::stat_antispoof_dropped), 1u);
}

TEST(LwAftrApp, AntiSpoofDropsUnknownSubscriberSource) {
  LwAftr app(aftr_config());
  provision(app);
  auto packet = udp_packet(ip(203, 0, 113, 9), ip(192, 0, 2, 50), 5000, 443);
  ASSERT_TRUE(net::encapsulate_ipv4_in_ipv6(packet.data(), b4(1), aftr()));
  EXPECT_EQ(run(app, packet), ppe::Verdict::drop);
  EXPECT_EQ(app.stat_packets(LwAftr::stat_antispoof_dropped), 1u);
}

TEST(LwAftrApp, ForeignIpv6PassesThrough) {
  LwAftr app(aftr_config());
  provision(app);
  auto packet = net::PacketBuilder()
                    .ethernet(mac(2), mac(1), net::EtherType::ipv6)
                    .ipv6(b4(9), *net::Ipv6Address::parse("2001:db8::99"),
                          net::IpProto::udp)
                    .udp(1, 2)
                    .payload_size(16)
                    .build_packet();
  EXPECT_EQ(run(app, packet), ppe::Verdict::forward);
  EXPECT_EQ(app.stat_packets(LwAftr::stat_passthrough), 1u);
}

// --- hairpinning -----------------------------------------------------------

TEST(LwAftrApp, HairpinsSubscriberToSubscriber) {
  LwAftr app(aftr_config());
  provision(app);
  const std::uint16_t src_port = port_for_index(kParams, 0, 3);
  const std::uint16_t dst_port = port_for_index(kParams, 1, 5);
  // PSID-0 subscriber talks to PSID-1 subscriber on the same shared IPv4.
  auto packet = udp_packet(ip(198, 51, 100, 1), ip(198, 51, 100, 1), src_port,
                           dst_port);
  ASSERT_TRUE(net::encapsulate_ipv4_in_ipv6(packet.data(), b4(1), aftr()));

  EXPECT_EQ(run(app, packet), ppe::Verdict::forward);
  const auto parsed = net::parse_packet(packet.data());
  ASSERT_TRUE(parsed.outer.ipv6.has_value());  // still a tunnel frame
  EXPECT_EQ(parsed.outer.ipv6->src, aftr());
  EXPECT_EQ(parsed.outer.ipv6->dst, b4(2));  // re-aimed at the peer's B4
  EXPECT_EQ(app.stat_packets(LwAftr::stat_hairpinned), 1u);
  EXPECT_EQ(app.stat_packets(LwAftr::stat_decapsulated), 0u);
}

TEST(LwAftrApp, HairpinDisabledDecapsulatesInstead) {
  LwAftrConfig config = aftr_config();
  config.hairpin = false;
  LwAftr app(config);
  provision(app);
  auto packet =
      udp_packet(ip(198, 51, 100, 1), ip(198, 51, 100, 1),
                 port_for_index(kParams, 0, 3), port_for_index(kParams, 1, 5));
  ASSERT_TRUE(net::encapsulate_ipv4_in_ipv6(packet.data(), b4(1), aftr()));
  EXPECT_EQ(run(app, packet), ppe::Verdict::forward);
  EXPECT_TRUE(net::parse_packet(packet.data()).outer.ipv4.has_value());
  EXPECT_EQ(app.stat_packets(LwAftr::stat_decapsulated), 1u);
}

// --- miss handling ---------------------------------------------------------

TEST(LwAftrApp, UnmappableBecomesIcmpUnreachable) {
  LwAftr app(aftr_config());  // miss_action defaults to icmp_reject
  provision(app);
  // Port 1024 of PSID 2 — no such lease.
  auto packet = udp_packet(ip(192, 0, 2, 50), ip(198, 51, 100, 1), 9999,
                           port_for_index(kParams, 2, 0));
  const auto before = net::parse_packet(packet.data());
  const net::Ipv4Address orig_src = before.outer.ipv4->src;

  EXPECT_EQ(run(app, packet), ppe::Verdict::forward);
  const auto parsed = net::parse_packet(packet.data());
  ASSERT_TRUE(parsed.outer.ipv4.has_value());
  ASSERT_TRUE(parsed.outer.icmp.has_value());
  EXPECT_EQ(parsed.outer.ipv4->src, ip(192, 0, 2, 1));
  EXPECT_EQ(parsed.outer.ipv4->dst, orig_src);  // back to the sender
  EXPECT_EQ(parsed.outer.icmp->type, 3u);  // destination unreachable
  EXPECT_EQ(parsed.outer.icmp->code, 1u);  // host unreachable
  // Both checksums must survive independent verification.
  EXPECT_EQ(parsed.outer.ipv4->compute_checksum(), parsed.outer.ipv4->checksum);
  const std::size_t l3 = parsed.outer.l3_offset;
  EXPECT_EQ(net::internet_checksum(net::BytesView{
                packet.data().data() + l3 + 20, packet.data().size() - l3 - 20}),
            0u);
  EXPECT_EQ(app.stat_packets(LwAftr::stat_unmappable_v4), 1u);
  EXPECT_EQ(app.stat_packets(LwAftr::stat_icmp_rejected), 1u);
}

TEST(LwAftrApp, MissActionDropAndPunt) {
  LwAftrConfig config = aftr_config();
  config.miss_action = SoftwireMissAction::drop;
  LwAftr dropper(config);
  auto packet = udp_packet(ip(192, 0, 2, 50), ip(198, 51, 100, 1), 9999, 2000);
  EXPECT_EQ(run(dropper, packet), ppe::Verdict::drop);
  EXPECT_EQ(dropper.stat_packets(LwAftr::stat_unmappable_v4), 1u);

  config.miss_action = SoftwireMissAction::punt;
  LwAftr punter(config);
  auto packet2 = udp_packet(ip(192, 0, 2, 50), ip(198, 51, 100, 1), 9999, 2000);
  EXPECT_EQ(run(punter, packet2), ppe::Verdict::to_control_plane);
  EXPECT_EQ(punter.stat_packets(LwAftr::stat_punted), 1u);
}

TEST(LwAftrApp, ExcludedSystemPortIsUnmappable) {
  LwAftrConfig config = aftr_config();
  config.miss_action = SoftwireMissAction::drop;
  LwAftr app(config);
  provision(app);
  // Port 80 has its top a=6 bits zero: no subscriber may own it even though
  // psid_of_port() would decode PSID 0.
  auto packet = udp_packet(ip(192, 0, 2, 50), ip(198, 51, 100, 1), 9999, 80);
  EXPECT_EQ(run(app, packet), ppe::Verdict::drop);
  EXPECT_EQ(app.stat_packets(LwAftr::stat_unmappable_v4), 1u);
}

TEST(LwAftrApp, FragmentsRejectedBothDirections) {
  LwAftr app(aftr_config());
  provision(app);
  net::Ipv4Header frag;
  frag.src = ip(192, 0, 2, 50);
  frag.dst = ip(198, 51, 100, 1);
  frag.protocol = std::uint8_t(net::IpProto::udp);
  frag.more_fragments = true;
  auto packet = net::PacketBuilder()
                    .ethernet(mac(2), mac(1))
                    .ipv4_header(frag)
                    .udp(9999, port_for_index(kParams, 0, 0))
                    .payload_size(16)
                    .build_packet();
  EXPECT_EQ(run(app, packet), ppe::Verdict::drop);

  // Inner fragment arriving through the tunnel.
  net::Ipv4Header inner_frag = frag;
  inner_frag.src = ip(198, 51, 100, 1);
  inner_frag.dst = ip(192, 0, 2, 50);
  auto tunneled = net::PacketBuilder()
                      .ethernet(mac(2), mac(1))
                      .ipv4_header(inner_frag)
                      .udp(port_for_index(kParams, 0, 0), 443)
                      .payload_size(16)
                      .build_packet();
  ASSERT_TRUE(net::encapsulate_ipv4_in_ipv6(tunneled.data(), b4(1), aftr()));
  EXPECT_EQ(run(app, tunneled), ppe::Verdict::drop);
  EXPECT_EQ(app.stat_packets(LwAftr::stat_fragments_rejected), 2u);
}

// --- provisioning ----------------------------------------------------------

TEST(LwAftrApp, BindingLifecycle) {
  LwAftr app(aftr_config());
  EXPECT_TRUE(app.add_binding(ip(198, 51, 100, 1), 3, kParams, b4(10)));
  EXPECT_EQ(app.binding_count(), 1u);
  EXPECT_EQ(app.b4_for(ip(198, 51, 100, 1), 3), b4(10));
  EXPECT_EQ(app.params_for(ip(198, 51, 100, 1)), kParams);

  // Re-adding the same lease refreshes the B4 without growing the table.
  EXPECT_TRUE(app.add_binding(ip(198, 51, 100, 1), 3, kParams, b4(11)));
  EXPECT_EQ(app.binding_count(), 1u);
  EXPECT_EQ(app.b4_for(ip(198, 51, 100, 1), 3), b4(11));

  // A second lease on the address must agree on the PSID arithmetic.
  EXPECT_FALSE(app.add_binding(ip(198, 51, 100, 1), 4, PsidParams{8, 4},
                               b4(12)));
  // PSID must fit in k bits.
  EXPECT_FALSE(app.add_binding(ip(198, 51, 100, 2), 64, kParams, b4(13)));
  // Invalid arithmetic rejected outright.
  EXPECT_FALSE(
      app.add_binding(ip(198, 51, 100, 2), 0, PsidParams{12, 8}, b4(14)));

  EXPECT_TRUE(app.remove_binding(ip(198, 51, 100, 1), 3));
  EXPECT_FALSE(app.remove_binding(ip(198, 51, 100, 1), 3));
  EXPECT_EQ(app.binding_count(), 0u);
  EXPECT_EQ(app.b4_for(ip(198, 51, 100, 1), 3), std::nullopt);
  // The last lease gone, the address forgets its arithmetic: a new layout
  // is now admissible.
  EXPECT_TRUE(
      app.add_binding(ip(198, 51, 100, 1), 4, PsidParams{8, 4}, b4(12)));
}

TEST(LwAftrApp, CapacityEnforced) {
  LwAftrConfig config = aftr_config();
  config.binding_capacity = 2;
  LwAftr app(config);
  EXPECT_TRUE(app.add_binding(ip(10, 0, 0, 1), 0, kParams, b4(1)));
  EXPECT_TRUE(app.add_binding(ip(10, 0, 0, 2), 0, kParams, b4(2)));
  EXPECT_FALSE(app.add_binding(ip(10, 0, 0, 3), 0, kParams, b4(3)));
  // Freeing a slot re-opens the door.
  EXPECT_TRUE(app.remove_binding(ip(10, 0, 0, 1), 0));
  EXPECT_TRUE(app.add_binding(ip(10, 0, 0, 3), 0, kParams, b4(3)));
}

TEST(LwAftrApp, GenericTableSurfaceMirrorsTypedApi) {
  LwAftr app(aftr_config());
  const std::uint64_t addr = ip(198, 51, 100, 7).value();
  // psid_map first: value = offset << 8 | psid_len.
  EXPECT_TRUE(app.table_insert("psid_map", addr, (6u << 8) | 6u));
  // binding insert composes the B4 from config.b4_prefix_hi + value.
  const std::uint64_t key = (addr << 16) | 5u;
  EXPECT_TRUE(app.table_insert("binding", key, 42));
  EXPECT_EQ(app.b4_for(ip(198, 51, 100, 7), 5), b4(42));
  EXPECT_EQ(app.table_lookup("binding", key), 42u);
  EXPECT_EQ(app.table_lookup("psid_map", addr).value_or(0) & 0xffffu,
            (6u << 8) | 6u);
  // binding without a psid_map entry is rejected (no arithmetic to run).
  EXPECT_FALSE(app.table_insert("binding",
                                (std::uint64_t{ip(10, 9, 8, 7).value()} << 16),
                                1));
  EXPECT_TRUE(app.table_erase("binding", key));
  EXPECT_EQ(app.table_lookup("binding", key), std::nullopt);
  EXPECT_FALSE(app.table_insert("no_such_table", 1, 2));
}

// --- config & introspection ------------------------------------------------

TEST(LwAftrApp, ConfigRoundTripsThroughSerialization) {
  LwAftrConfig config = aftr_config();
  config.miss_action = SoftwireMissAction::punt;
  config.hairpin = false;
  config.tunnel_hop_limit = 33;
  config.b4_prefix_hi = 0xfd00'1234'5678'9abcull;
  const auto parsed = LwAftrConfig::parse(LwAftr(config).serialize_config());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->aftr_addr, config.aftr_addr);
  EXPECT_EQ(parsed->icmp_src, config.icmp_src);
  EXPECT_EQ(parsed->binding_capacity, config.binding_capacity);
  EXPECT_EQ(parsed->miss_action, config.miss_action);
  EXPECT_EQ(parsed->hairpin, config.hairpin);
  EXPECT_EQ(parsed->tunnel_hop_limit, config.tunnel_hop_limit);
  EXPECT_EQ(parsed->b4_prefix_hi, config.b4_prefix_hi);
  EXPECT_EQ(LwAftrConfig::parse(net::Bytes{1, 2, 3}), std::nullopt);
}

TEST(LwAftrApp, ProfileDeclaresTablesAndCounters) {
  LwAftr app(aftr_config());
  const ppe::StageProfile profile = app.profile();
  ASSERT_EQ(profile.tables.size(), 2u);
  EXPECT_EQ(profile.tables[0].name, "psid_map");
  EXPECT_EQ(profile.tables[1].name, "binding");
  EXPECT_EQ(profile.tables[1].capacity, 1024u);
  EXPECT_EQ(profile.tables[1].value_bits, 128u);
  ASSERT_EQ(profile.counter_banks.size(), 1u);
  EXPECT_EQ(profile.counter_banks[0].name, "lwaftr_stats");

  const auto counters = app.counters();
  ASSERT_EQ(counters.size(), std::size_t{LwAftr::stat_count});
  EXPECT_EQ(counters[0].bank, "lwaftr_stats");
}

// --- LwB4 ------------------------------------------------------------------

LwB4Config b4_config() {
  LwB4Config config;
  config.ipv4 = ip(198, 51, 100, 1);
  config.psid = 1;
  config.params = kParams;
  config.b4_addr = b4(2);
  config.aftr_addr = aftr();
  return config;
}

TEST(LwB4App, EncapsulatesInSetUpstreamTraffic) {
  LwB4 app(b4_config());
  const std::uint16_t port = port_for_index(kParams, 1, 12);
  auto packet = udp_packet(ip(198, 51, 100, 1), ip(192, 0, 2, 50), port, 443);
  EXPECT_EQ(run(app, packet), ppe::Verdict::forward);
  const auto parsed = net::parse_packet(packet.data());
  ASSERT_TRUE(parsed.outer.ipv6.has_value());
  EXPECT_EQ(parsed.outer.ipv6->src, b4(2));
  EXPECT_EQ(parsed.outer.ipv6->dst, aftr());
  EXPECT_EQ(app.stat_packets(LwB4::stat_encapsulated), 1u);
}

TEST(LwB4App, DropsOutOfSetSourcePort) {
  LwB4 app(b4_config());
  // PSID 0's port, not ours — the NAPT44 in front leaked.
  auto packet = udp_packet(ip(198, 51, 100, 1), ip(192, 0, 2, 50),
                           port_for_index(kParams, 0, 0), 443);
  EXPECT_EQ(run(app, packet), ppe::Verdict::drop);
  EXPECT_EQ(app.stat_packets(LwB4::stat_port_out_of_set), 1u);
}

TEST(LwB4App, DecapsulatesAndValidatesDownstreamPort) {
  LwB4 app(b4_config());
  const std::uint16_t port = port_for_index(kParams, 1, 3);
  auto packet = udp_packet(ip(192, 0, 2, 50), ip(198, 51, 100, 1), 443, port);
  const net::Bytes inner = packet.data();
  ASSERT_TRUE(net::encapsulate_ipv4_in_ipv6(packet.data(), aftr(), b4(2)));
  EXPECT_EQ(run(app, packet), ppe::Verdict::forward);
  EXPECT_EQ(packet.data(), inner);
  EXPECT_EQ(app.stat_packets(LwB4::stat_decapsulated), 1u);

  // A tunneled packet for someone else's port set is dropped (RFC 7596 §6).
  auto foreign = udp_packet(ip(192, 0, 2, 50), ip(198, 51, 100, 1), 443,
                            port_for_index(kParams, 0, 3));
  ASSERT_TRUE(net::encapsulate_ipv4_in_ipv6(foreign.data(), aftr(), b4(2)));
  EXPECT_EQ(run(app, foreign), ppe::Verdict::drop);
  EXPECT_EQ(app.stat_packets(LwB4::stat_port_out_of_set), 1u);
}

TEST(LwB4App, ForeignIpv4PassesThrough) {
  LwB4 app(b4_config());
  auto packet = tcp_packet(ip(10, 0, 0, 5), ip(192, 0, 2, 50), 5555, 80);
  EXPECT_EQ(run(app, packet), ppe::Verdict::forward);
  EXPECT_EQ(app.stat_packets(LwB4::stat_passthrough), 1u);
}

TEST(LwB4App, ConfigRoundTripsThroughSerialization) {
  LwB4Config config = b4_config();
  config.tunnel_hop_limit = 9;
  const auto parsed = LwB4Config::parse(LwB4(config).serialize_config());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ipv4, config.ipv4);
  EXPECT_EQ(parsed->psid, config.psid);
  EXPECT_EQ(parsed->params, config.params);
  EXPECT_EQ(parsed->b4_addr, config.b4_addr);
  EXPECT_EQ(parsed->aftr_addr, config.aftr_addr);
  EXPECT_EQ(parsed->tunnel_hop_limit, config.tunnel_hop_limit);
  EXPECT_EQ(LwB4Config::parse(net::Bytes{}), std::nullopt);
}

}  // namespace
}  // namespace flexsfp::apps
