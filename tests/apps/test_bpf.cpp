#include "apps/bpf_filter.hpp"

#include <gtest/gtest.h>

#include "app_test_util.hpp"
#include "apps/register.hpp"
#include "ppe/registry.hpp"

namespace flexsfp::apps {
namespace {

using testing::ip;
using testing::run;
using testing::tcp_packet;
using testing::udp_packet;

// --- loader/validator ---------------------------------------------------------

TEST(BpfProgram, AssembleRejectsEmptyAndOversized) {
  EXPECT_FALSE(BpfProgram::assemble({}).has_value());
  std::vector<BpfInsn> huge(BpfProgram::max_instructions + 1,
                            {BpfOp::ret_accept, 0, 0, 0});
  EXPECT_FALSE(BpfProgram::assemble(std::move(huge)).has_value());
}

TEST(BpfProgram, AssembleRejectsFallThroughEnd) {
  // Last instruction is a plain load: execution would fall off the end.
  EXPECT_FALSE(BpfProgram::assemble({{BpfOp::ld_imm, 1, 0, 0}}).has_value());
  EXPECT_FALSE(BpfProgram::assemble({{BpfOp::ld_imm, 1, 0, 0},
                                     {BpfOp::ld_imm, 2, 0, 0}})
                   .has_value());
}

TEST(BpfProgram, AssembleRejectsOutOfRangeJumps) {
  // jeq at 0 with jt=5 jumps past the 2-instruction program.
  EXPECT_FALSE(BpfProgram::assemble({{BpfOp::jeq, 0, 5, 0},
                                     {BpfOp::ret_accept, 0, 0, 0}})
                   .has_value());
  EXPECT_FALSE(BpfProgram::assemble({{BpfOp::ja, 9, 0, 0},
                                     {BpfOp::ret_accept, 0, 0, 0}})
                   .has_value());
}

TEST(BpfProgram, AssembleRejectsUnknownOpcode) {
  EXPECT_FALSE(BpfProgram::assemble({{static_cast<BpfOp>(99), 0, 0, 0}})
                   .has_value());
}

TEST(BpfProgram, AssembleRejectsMaskedShiftCounts) {
  // The interpreter masks shift counts with '& 31'; a count >= 32 always
  // means the author expected different semantics, so it is rejected.
  EXPECT_FALSE(BpfProgram::assemble({{BpfOp::alu_lsh, 32, 0, 0},
                                     {BpfOp::ret_accept, 0, 0, 0}})
                   .has_value());
  EXPECT_FALSE(BpfProgram::assemble({{BpfOp::alu_rsh, 40, 0, 0},
                                     {BpfOp::ret_accept, 0, 0, 0}})
                   .has_value());
  // 31 is the largest meaningful count and stays accepted.
  EXPECT_TRUE(BpfProgram::assemble({{BpfOp::alu_lsh, 31, 0, 0},
                                    {BpfOp::ret_accept, 0, 0, 0}})
                  .has_value());
  // validate_structure() alone (the analyzer's entry bar) still admits the
  // masked shift: the analyzer diagnoses it rather than refusing to look.
  EXPECT_TRUE(BpfProgram::validate_structure({{BpfOp::alu_lsh, 32, 0, 0},
                                              {BpfOp::ret_accept, 0, 0, 0}}));
}

TEST(BpfProgram, SerializeParseRoundTrip) {
  const auto original = bpf_programs::drop_tcp_dport(23);
  const auto reparsed = BpfProgram::parse(original.serialize());
  ASSERT_TRUE(reparsed);
  ASSERT_EQ(reparsed->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reparsed->code()[i].op, original.code()[i].op) << i;
    EXPECT_EQ(reparsed->code()[i].k, original.code()[i].k) << i;
  }
}

TEST(BpfProgram, ParseRejectsInvalidBytecode) {
  EXPECT_FALSE(BpfProgram::parse(net::Bytes{}).has_value());
  // Valid framing, invalid program (fall-through end).
  net::Bytes bad(2 + 7, 0);
  net::write_be16(bad, 0, 1);
  bad[2] = static_cast<std::uint8_t>(BpfOp::ld_imm);
  EXPECT_FALSE(BpfProgram::parse(bad).has_value());
}

TEST(BpfProgram, ParseRangeChecksTheOpcodeByte) {
  // An opcode byte past ret_punt must be refused before the enum cast, not
  // smuggled through as an out-of-range BpfOp value.
  net::Bytes config(2 + 7, 0);
  net::write_be16(config, 0, 1);
  config[2] = static_cast<std::uint8_t>(BpfOp::ret_punt) + 1;
  EXPECT_FALSE(BpfProgram::parse(config).has_value());
  config[2] = 0xff;
  EXPECT_FALSE(BpfProgram::parse(config).has_value());
}

TEST(BpfProgram, ParseRejectsTrailingOrTruncatedBytes) {
  net::Bytes config = bpf_programs::accept_all().serialize();
  ASSERT_TRUE(BpfProgram::parse(config).has_value());
  // One stray byte after the declared instruction count: refused.
  net::Bytes trailing = config;
  trailing.push_back(0x00);
  EXPECT_FALSE(BpfProgram::parse(trailing).has_value());
  // Truncated mid-instruction: refused.
  net::Bytes truncated = config;
  truncated.pop_back();
  EXPECT_FALSE(BpfProgram::parse(truncated).has_value());
}

// --- interpreter ---------------------------------------------------------------

TEST(BpfProgram, LoadsAluAndRegisters) {
  // A = len; X = A; A = 0; A += X; accept iff A == len (always true).
  const auto program = *BpfProgram::assemble({
      {BpfOp::ld_len, 0, 0, 0},
      {BpfOp::tax, 0, 0, 0},
      {BpfOp::ld_imm, 0, 0, 0},
      {BpfOp::alu_add_x, 0, 0, 0},
      {BpfOp::txa, 0, 0, 0},
      {BpfOp::jge, 60, 0, 1},
      {BpfOp::ret_accept, 0, 0, 0},
      {BpfOp::ret_drop, 0, 0, 0},
  });
  const auto packet = testing::udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2);
  EXPECT_EQ(program.run(packet.data()), ppe::Verdict::forward);
}

TEST(BpfProgram, OutOfBoundsLoadAborts) {
  const auto program = *BpfProgram::assemble({
      {BpfOp::ld_abs_u32, 5000, 0, 0},  // way past any frame
      {BpfOp::ret_accept, 0, 0, 0},
  });
  const auto packet = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2);
  EXPECT_EQ(program.run(packet.data()), ppe::Verdict::drop);
}

TEST(BpfPrograms, DropTcpDportMatchesOnlyThatPort) {
  BpfFilter filter(bpf_programs::drop_tcp_dport(23));
  auto telnet = tcp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 5000, 23);
  auto ssh = tcp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 5000, 22);
  auto udp23 = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 5000, 23);
  EXPECT_EQ(run(filter, telnet), ppe::Verdict::drop);
  EXPECT_EQ(run(filter, ssh), ppe::Verdict::forward);
  EXPECT_EQ(run(filter, udp23), ppe::Verdict::forward);
  EXPECT_EQ(filter.counters()[1].packets, 1u);  // one drop counted
}

TEST(BpfPrograms, DropTcpDportHandlesIpOptions) {
  // The program computes the L4 offset from IHL, so options don't fool it.
  net::Ipv4Header ip_header;
  ip_header.ihl = 7;  // 8 bytes of options
  ip_header.src = ip(1, 1, 1, 1);
  ip_header.dst = ip(2, 2, 2, 2);
  ip_header.protocol = 6;
  ip_header.total_length = 28 + 8 + 20;
  net::Bytes frame(net::EthernetHeader::size() + ip_header.total_length, 0);
  net::EthernetHeader eth;
  eth.ether_type = 0x0800;
  eth.serialize_to(frame, 0);
  ip_header.serialize_to(frame, 14);
  net::TcpHeader tcp;
  tcp.src_port = 1;
  tcp.dst_port = 23;
  tcp.serialize_to(frame, 14 + 28);

  BpfFilter filter(bpf_programs::drop_tcp_dport(23));
  net::Packet packet{frame};
  EXPECT_EQ(run(filter, packet), ppe::Verdict::drop);
}

TEST(BpfPrograms, AllowSrcNetPermitsOnlyThePrefix) {
  BpfFilter filter(bpf_programs::allow_src_net(
      ip(10, 7, 0, 0).value(), 0xffff0000));
  auto inside = udp_packet(ip(10, 7, 3, 4), ip(2, 2, 2, 2), 1, 2);
  auto outside = udp_packet(ip(10, 8, 0, 1), ip(2, 2, 2, 2), 1, 2);
  EXPECT_EQ(run(filter, inside), ppe::Verdict::forward);
  EXPECT_EQ(run(filter, outside), ppe::Verdict::drop);
}

TEST(BpfPrograms, PuntFragmentsToControlPlane) {
  BpfFilter filter(bpf_programs::punt_fragments());
  auto normal = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2);
  EXPECT_EQ(run(filter, normal), ppe::Verdict::forward);

  // Build a fragment (MF set).
  net::Bytes frame = normal.data();
  const std::uint16_t flags = net::read_be16(frame, 14 + 6);
  net::write_be16(frame, 14 + 6, flags | 0x2000);
  net::Packet fragment{frame};
  EXPECT_EQ(run(filter, fragment), ppe::Verdict::to_control_plane);
}

TEST(BpfFilter, PipelineLatencyTracksProgramLength) {
  BpfFilter small(bpf_programs::accept_all());
  BpfFilter large(bpf_programs::drop_tcp_dport(80));
  EXPECT_LT(small.pipeline_latency_cycles(), large.pipeline_latency_cycles());
  EXPECT_EQ(large.pipeline_latency_cycles(), large.program().size());
}

TEST(BpfFilter, ResourceUsageGrowsWithProgramSize) {
  // Instruction memory scales with the loaded program.
  std::vector<BpfInsn> long_code(200, {BpfOp::ld_imm, 0, 0, 0});
  long_code.push_back({BpfOp::ret_accept, 0, 0, 0});
  BpfFilter small(bpf_programs::accept_all());
  BpfFilter large(*BpfProgram::assemble(std::move(long_code)));
  const hw::DatapathConfig dp{};
  EXPECT_GT(large.resource_usage(dp).usram_blocks,
            small.resource_usage(dp).usram_blocks);
}

TEST(BpfFilter, HotSwapProgramAtRuntime) {
  BpfFilter filter(bpf_programs::accept_all());
  auto telnet = tcp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 23);
  EXPECT_EQ(run(filter, telnet), ppe::Verdict::forward);
  filter.load(bpf_programs::drop_tcp_dport(23));
  auto telnet2 = tcp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 23);
  EXPECT_EQ(run(filter, telnet2), ppe::Verdict::drop);
}

TEST(BpfFilter, DeployableAsBitstreamConfig) {
  apps::register_builtin_apps();
  const auto program = bpf_programs::drop_tcp_dport(445);
  const auto app =
      ppe::AppRegistry::instance().create("bpf", program.serialize());
  ASSERT_NE(app, nullptr);
  auto smb = tcp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 5000, 445);
  ppe::PacketContext ctx(smb);
  EXPECT_EQ(app->process(ctx), ppe::Verdict::drop);
}

}  // namespace
}  // namespace flexsfp::apps
