// Differential suite for the lw4o6 datapath.
//
// Two oracles keep LwAftr/LwB4 honest:
//   * a naive byte-level reference that assembles the expected tunnel frame
//     from scratch (no shared code with the in-place edit primitives), and
//   * the AFTR<->B4 round trip: encap at one end, decap at the other must be
//     a byte-exact identity for every tunnel-eligible shape.
// A third section replays the same shape zoo through process_batch at
// widths {1, 8, 16} and demands verdict/byte/counter equality with scalar
// process() — batching is a dispatch window, never a semantics change.
#include <map>

#include <gtest/gtest.h>

#include "app_test_util.hpp"
#include "apps/softwire.hpp"
#include "net/builder.hpp"
#include "net/parser.hpp"

namespace flexsfp::apps {
namespace {

using testing::ip;
using testing::mac;
using testing::run;
using testing::tcp_packet;
using testing::udp_packet;

constexpr PsidParams kParams{6, 6};

net::Ipv6Address aftr() { return *net::Ipv6Address::parse("2001:db8:ffff::1"); }
net::Ipv6Address b4(std::uint64_t low) {
  return net::Ipv6Address::from_u64_pair(0x20010db8'00000000ull, low);
}
net::Ipv4Address shared_v4() { return ip(198, 51, 100, 1); }

LwAftrConfig aftr_config(SoftwireMissAction miss = SoftwireMissAction::drop) {
  LwAftrConfig config;
  config.aftr_addr = aftr();
  config.icmp_src = ip(192, 0, 2, 1);
  config.binding_capacity = 256;
  config.miss_action = miss;
  return config;
}

void provision(LwAftr& app) {
  EXPECT_TRUE(app.add_binding(shared_v4(), 0, kParams, b4(1)));
  EXPECT_TRUE(app.add_binding(shared_v4(), 1, kParams, b4(2)));
}

LwB4Config b4_config(std::uint16_t psid) {
  LwB4Config config;
  config.ipv4 = shared_v4();
  config.psid = psid;
  config.params = kParams;
  config.b4_addr = b4(1 + psid);
  config.aftr_addr = aftr();
  return config;
}

// --- naive reference -------------------------------------------------------

/// Assemble the expected tunnel frame by hand: copy L2 as-is, write a fresh
/// IPv6 header field by field, append the original IP packet. Shares no
/// code with net::encapsulate_ipv4_in_ipv6 (which edits in place).
net::Bytes naive_encap(const net::Bytes& frame, const net::Ipv6Address& src,
                       const net::Ipv6Address& dst) {
  const auto parsed = net::parse_packet(frame);
  const std::size_t l3 = parsed.outer.l3_offset;
  net::Bytes out(frame.begin(), frame.begin() + std::ptrdiff_t(l3));
  out[l3 - 2] = 0x86;  // EtherType -> IPv6
  out[l3 - 1] = 0xdd;
  net::Bytes v6(net::Ipv6Header::size(), 0);
  v6[0] = 0x60;  // version
  v6[4] = std::uint8_t((frame.size() - l3) >> 8);  // payload length
  v6[5] = std::uint8_t((frame.size() - l3) & 0xff);
  v6[6] = 4;   // next-header: IPv4
  v6[7] = 64;  // hop limit
  const auto src_o = src.octets();
  const auto dst_o = dst.octets();
  std::copy(src_o.begin(), src_o.end(), v6.begin() + 8);
  std::copy(dst_o.begin(), dst_o.end(), v6.begin() + 24);
  out.insert(out.end(), v6.begin(), v6.end());
  out.insert(out.end(), frame.begin() + std::ptrdiff_t(l3), frame.end());
  return out;
}

/// Tunnel-eligible downstream shapes: internet -> subscriber (psid 0 unless
/// noted), each must encap at the AFTR and decap back to the identical
/// frame at the B4.
std::vector<std::pair<std::string, net::Packet>> downstream_shapes() {
  const std::uint16_t p0 = port_for_index(kParams, 0, 0);
  std::vector<std::pair<std::string, net::Packet>> shapes;
  shapes.emplace_back(
      "udp", udp_packet(ip(192, 0, 2, 50), shared_v4(), 9999, p0));
  shapes.emplace_back(
      "tcp", tcp_packet(ip(192, 0, 2, 50), shared_v4(), 443, p0));
  shapes.emplace_back("tcp-syn",
                      tcp_packet(ip(192, 0, 2, 50), shared_v4(), 443, p0,
                                 net::TcpHeader::flag_syn));
  shapes.emplace_back("udp-big", udp_packet(ip(192, 0, 2, 50), shared_v4(),
                                            9999, p0, 900));
  shapes.emplace_back("udp-runt-payload",
                      udp_packet(ip(192, 0, 2, 50), shared_v4(), 9999, p0, 0));
  shapes.emplace_back(
      "icmp-echo",
      net::PacketBuilder()
          .ethernet(mac(2), mac(1))
          .ipv4(ip(192, 0, 2, 50), shared_v4(), net::IpProto::icmp)
          .icmp_echo(p0, 7)  // identifier carries the A+P port
          .payload_size(24)
          .build_packet());
  shapes.emplace_back(
      "vlan",
      net::PacketBuilder()
          .ethernet(mac(2), mac(1))
          .vlan(42)
          .ipv4(ip(192, 0, 2, 50), shared_v4(), net::IpProto::udp)
          .udp(9999, p0)
          .payload_size(32)
          .build_packet());
  {
    net::Ipv4Header with_options;
    with_options.ihl = 6;  // 4 option bytes (zero-filled)
    with_options.src = ip(192, 0, 2, 50);
    with_options.dst = shared_v4();
    with_options.protocol = std::uint8_t(net::IpProto::udp);
    shapes.emplace_back("ipv4-options",
                        net::PacketBuilder()
                            .ethernet(mac(2), mac(1))
                            .ipv4_header(with_options)
                            .udp(9999, p0)
                            .payload_size(32)
                            .build_packet());
  }
  shapes.emplace_back("psid1", udp_packet(ip(192, 0, 2, 50), shared_v4(), 9999,
                                          port_for_index(kParams, 1, 17)));
  shapes.emplace_back("dscp", [&] {
    net::Ipv4Header marked;
    marked.dscp = 46;
    marked.ttl = 3;
    marked.src = ip(192, 0, 2, 50);
    marked.dst = shared_v4();
    marked.protocol = std::uint8_t(net::IpProto::udp);
    return net::PacketBuilder()
        .ethernet(mac(2), mac(1))
        .ipv4_header(marked)
        .udp(9999, p0)
        .payload_size(32)
        .build_packet();
  }());
  return shapes;
}

TEST(SoftwireDiff, EncapMatchesNaiveReference) {
  for (auto& [label, original] : downstream_shapes()) {
    LwAftr app(aftr_config());
    provision(app);
    const std::uint16_t psid = label == "psid1" ? 1 : 0;
    const net::Bytes expected =
        naive_encap(original.data(), aftr(), b4(1 + psid));
    net::Packet packet = original;
    EXPECT_EQ(run(app, packet), ppe::Verdict::forward) << label;
    EXPECT_EQ(packet.data(), expected) << label;
  }
}

TEST(SoftwireDiff, AftrEncapThenB4DecapIsIdentity) {
  for (auto& [label, original] : downstream_shapes()) {
    LwAftr aftr_app(aftr_config());
    provision(aftr_app);
    LwB4 b4_app(b4_config(label == "psid1" ? 1 : 0));
    net::Packet packet = original;
    ASSERT_EQ(run(aftr_app, packet), ppe::Verdict::forward) << label;
    ASSERT_EQ(run(b4_app, packet), ppe::Verdict::forward) << label;
    EXPECT_EQ(packet.data(), original.data()) << label;
  }
}

TEST(SoftwireDiff, B4EncapThenAftrDecapIsIdentity) {
  // Upstream mirror: subscriber -> internet through the B4, decapped at the
  // AFTR. Source ports are the subscriber's; reuse the downstream shape zoo
  // with src/dst roles swapped where the shape allows it.
  const std::uint16_t p0 = port_for_index(kParams, 0, 0);
  std::vector<std::pair<std::string, net::Packet>> shapes;
  shapes.emplace_back(
      "udp", udp_packet(shared_v4(), ip(192, 0, 2, 50), p0, 9999));
  shapes.emplace_back("tcp",
                      tcp_packet(shared_v4(), ip(192, 0, 2, 50), p0, 443));
  shapes.emplace_back(
      "icmp-echo", net::PacketBuilder()
                       .ethernet(mac(2), mac(1))
                       .ipv4(shared_v4(), ip(192, 0, 2, 50), net::IpProto::icmp)
                       .icmp_echo(p0, 3)
                       .payload_size(24)
                       .build_packet());
  shapes.emplace_back("udp-big", udp_packet(shared_v4(), ip(192, 0, 2, 50), p0,
                                            9999, 900));
  for (auto& [label, original] : shapes) {
    LwB4 b4_app(b4_config(0));
    LwAftr aftr_app(aftr_config());
    provision(aftr_app);
    net::Packet packet = original;
    ASSERT_EQ(run(b4_app, packet), ppe::Verdict::forward) << label;
    // The B4 tunnels toward the AFTR with its own source — exactly what the
    // AFTR's anti-spoof check admits.
    ASSERT_EQ(run(aftr_app, packet), ppe::Verdict::forward) << label;
    EXPECT_EQ(packet.data(), original.data()) << label;
    EXPECT_EQ(aftr_app.stat_packets(LwAftr::stat_decapsulated), 1u) << label;
  }
}

// --- batch-vs-scalar equivalence -------------------------------------------

/// The full shape zoo, including non-tunnel shapes the app must pass
/// through, reject or answer — batch dispatch must agree on all of them.
std::vector<net::Packet> batch_shapes() {
  std::vector<net::Packet> shapes;
  for (auto& [label, packet] : downstream_shapes()) {
    shapes.push_back(std::move(packet));
  }
  // Valid upstream tunnel frame (decap path).
  {
    auto up = udp_packet(shared_v4(), ip(192, 0, 2, 50),
                         port_for_index(kParams, 0, 4), 443);
    EXPECT_TRUE(net::encapsulate_ipv4_in_ipv6(up.data(), b4(1), aftr()));
    shapes.push_back(std::move(up));
  }
  // Spoofed tunnel frame (wrong B4 for the inner source).
  {
    auto spoof = udp_packet(shared_v4(), ip(192, 0, 2, 50),
                            port_for_index(kParams, 1, 4), 443);
    EXPECT_TRUE(net::encapsulate_ipv4_in_ipv6(spoof.data(), b4(1), aftr()));
    shapes.push_back(std::move(spoof));
  }
  // Hairpin: subscriber-to-subscriber through the tunnel.
  {
    auto hairpin =
        udp_packet(shared_v4(), shared_v4(), port_for_index(kParams, 0, 9),
                   port_for_index(kParams, 1, 9));
    EXPECT_TRUE(net::encapsulate_ipv4_in_ipv6(hairpin.data(), b4(1), aftr()));
    shapes.push_back(std::move(hairpin));
  }
  // Unmappable downstream (no such PSID lease).
  shapes.push_back(udp_packet(ip(192, 0, 2, 50), shared_v4(), 9999,
                              port_for_index(kParams, 9, 0)));
  // Excluded system port.
  shapes.push_back(udp_packet(ip(192, 0, 2, 50), shared_v4(), 9999, 80));
  // IPv4 fragment.
  {
    auto frag = udp_packet(ip(192, 0, 2, 50), shared_v4(), 9999,
                           port_for_index(kParams, 0, 0));
    frag.data()[20] |= 0x20;  // more-fragments
    shapes.push_back(std::move(frag));
  }
  // Foreign IPv6 (not for the AFTR).
  shapes.push_back(net::PacketBuilder()
                       .ethernet(mac(2), mac(1), net::EtherType::ipv6)
                       .ipv6(b4(7), *net::Ipv6Address::parse("2001:db8::9"),
                             net::IpProto::udp)
                       .udp(1, 2)
                       .payload_size(16)
                       .build_packet());
  // Non-IP.
  {
    net::Bytes frame(64, 0);
    net::EthernetHeader eth;
    eth.ether_type = std::uint16_t(net::EtherType::arp);
    eth.serialize_to(frame, 0);
    shapes.emplace_back(frame);
  }
  // Truncated runt.
  {
    auto runt = udp_packet(ip(192, 0, 2, 50), shared_v4(), 9999, 2000);
    runt.data().resize(18);
    shapes.push_back(std::move(runt));
  }
  return shapes;
}

void expect_batch_equals_scalar(SoftwireMissAction miss) {
  for (const std::size_t n : {std::size_t{1}, std::size_t{8}, std::size_t{16}}) {
    LwAftr batched(aftr_config(miss));
    provision(batched);
    LwAftr scalar(aftr_config(miss));
    provision(scalar);

    const auto shapes = batch_shapes();
    std::vector<net::Packet> batch_pkts, scalar_pkts;
    for (std::size_t i = 0; i < std::max(n, shapes.size()); ++i) {
      batch_pkts.push_back(shapes[i % shapes.size()]);
      scalar_pkts.push_back(shapes[i % shapes.size()]);
    }
    const std::size_t total = batch_pkts.size();

    std::vector<ppe::PacketContext> ctxs;
    ctxs.reserve(total);
    std::vector<ppe::PacketContext*> ctx_ptrs;
    for (auto& packet : batch_pkts) {
      ctxs.emplace_back(packet);
      ctx_ptrs.push_back(&ctxs.back());
    }
    std::vector<ppe::Verdict> verdicts(total, ppe::Verdict::drop);
    // Feed the zoo through in bursts of n, like the engine would.
    for (std::size_t at = 0; at < total; at += n) {
      batched.process_batch(ctx_ptrs.data() + at, verdicts.data() + at,
                            std::min(n, total - at));
    }

    for (std::size_t i = 0; i < total; ++i) {
      EXPECT_EQ(verdicts[i], run(scalar, scalar_pkts[i]))
          << "packet " << i << " width " << n;
      EXPECT_EQ(batch_pkts[i].data(), scalar_pkts[i].data())
          << "packet " << i << " width " << n;
    }
    const auto a = batched.counters();
    const auto b = scalar.counters();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].packets, b[i].packets) << "counter " << i << " width " << n;
      EXPECT_EQ(a[i].bytes, b[i].bytes) << "counter " << i << " width " << n;
    }
  }
}

TEST(SoftwireBatch, MatchesScalarAcrossShapesDropMiss) {
  expect_batch_equals_scalar(SoftwireMissAction::drop);
}

TEST(SoftwireBatch, MatchesScalarAcrossShapesIcmpMiss) {
  expect_batch_equals_scalar(SoftwireMissAction::icmp_reject);
}

TEST(SoftwireBatch, MatchesScalarAcrossShapesPuntMiss) {
  expect_batch_equals_scalar(SoftwireMissAction::punt);
}

}  // namespace
}  // namespace flexsfp::apps
