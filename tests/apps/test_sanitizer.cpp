#include "apps/sanitizer.hpp"

#include <gtest/gtest.h>

#include "app_test_util.hpp"

namespace flexsfp::apps {
namespace {

using testing::ip;
using testing::run;
using testing::tcp_packet;
using testing::udp_packet;

TEST(Sanitizer, ObserveOnlyForwardsEverything) {
  Sanitizer sanitizer;  // drop_mask = 0
  auto bad = udp_packet(ip(127, 0, 0, 1), ip(2, 2, 2, 2), 1, 2);  // martian
  EXPECT_EQ(run(sanitizer, bad), ppe::Verdict::forward);
  EXPECT_GT(sanitizer.issue_count(net::ValidationIssue::ipv4_martian_source),
            0u);
}

TEST(Sanitizer, StrictMaskDropsMartians) {
  SanitizerConfig config;
  config.drop_mask = strict_issue_mask();
  Sanitizer sanitizer(config);
  auto martian = udp_packet(ip(127, 0, 0, 1), ip(2, 2, 2, 2), 1, 2);
  EXPECT_EQ(run(sanitizer, martian), ppe::Verdict::drop);
  EXPECT_EQ(sanitizer.dropped(), 1u);
  auto clean = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2);
  EXPECT_EQ(run(sanitizer, clean), ppe::Verdict::forward);
}

TEST(Sanitizer, StrictMaskDropsCorruptedChecksum) {
  SanitizerConfig config;
  config.drop_mask = strict_issue_mask();
  Sanitizer sanitizer(config);
  auto packet = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2);
  packet.data()[net::EthernetHeader::size() + 10] ^= 0xff;
  EXPECT_EQ(run(sanitizer, packet), ppe::Verdict::drop);
}

TEST(Sanitizer, StrictMaskDropsSynFin) {
  SanitizerConfig config;
  config.drop_mask = strict_issue_mask();
  Sanitizer sanitizer(config);
  auto packet = tcp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2,
                           net::TcpHeader::flag_syn |
                               net::TcpHeader::flag_fin);
  EXPECT_EQ(run(sanitizer, packet), ppe::Verdict::drop);
}

TEST(Sanitizer, UnparseableDroppedWhenConfigured) {
  Sanitizer sanitizer;  // drop_unparseable defaults true
  net::Packet truncated{net::Bytes(10, 0)};
  EXPECT_EQ(run(sanitizer, truncated), ppe::Verdict::drop);

  SanitizerConfig lenient;
  lenient.drop_unparseable = false;
  Sanitizer pass(lenient);
  net::Packet truncated2{net::Bytes(10, 0)};
  EXPECT_EQ(run(pass, truncated2), ppe::Verdict::forward);
}

TEST(Sanitizer, StripsIpv4OptionsAndRepairsHeader) {
  SanitizerConfig config;
  config.strip_ipv4_options = true;
  Sanitizer sanitizer(config);

  // Build a frame whose IPv4 header carries 8 bytes of options.
  net::Ipv4Header ip_header;
  ip_header.ihl = 7;
  ip_header.src = ip(1, 1, 1, 1);
  ip_header.dst = ip(2, 2, 2, 2);
  ip_header.protocol = static_cast<std::uint8_t>(net::IpProto::udp);
  ip_header.total_length = 28 + 8 + 20;
  net::Bytes frame(net::EthernetHeader::size() + ip_header.total_length, 0);
  net::EthernetHeader eth;
  eth.ether_type = static_cast<std::uint16_t>(net::EtherType::ipv4);
  eth.serialize_to(frame, 0);
  ip_header.serialize_to(frame, net::EthernetHeader::size());
  net::write_be16(frame, net::EthernetHeader::size() + 10,
                  ip_header.compute_checksum());
  net::UdpHeader udp;
  udp.src_port = 1;
  udp.dst_port = 2;
  udp.length = 28;
  udp.serialize_to(frame, net::EthernetHeader::size() + 28);

  net::Packet packet{frame};
  EXPECT_EQ(run(sanitizer, packet), ppe::Verdict::forward);
  EXPECT_EQ(sanitizer.repaired(), 1u);
  const auto parsed = net::parse_packet(packet.data());
  ASSERT_TRUE(parsed.outer.ipv4);
  EXPECT_EQ(parsed.outer.ipv4->ihl, 5);
  EXPECT_EQ(parsed.outer.ipv4->compute_checksum(),
            parsed.outer.ipv4->checksum);
  // The UDP header moved up and still parses.
  ASSERT_TRUE(parsed.outer.udp);
  EXPECT_EQ(parsed.outer.udp->dst_port, 2);
}

TEST(Sanitizer, DohBlockingDropsResolverTraffic) {
  SanitizerConfig config;
  config.block_doh = true;
  Sanitizer sanitizer(config);
  ASSERT_TRUE(sanitizer.add_doh_resolver(ip(1, 1, 1, 1)));

  auto doh = tcp_packet(ip(10, 0, 0, 1), ip(1, 1, 1, 1), 5000, 443);
  EXPECT_EQ(run(sanitizer, doh), ppe::Verdict::drop);
  // Same resolver, different port (plain DNS) passes.
  auto dns = udp_packet(ip(10, 0, 0, 1), ip(1, 1, 1, 1), 5000, 53);
  EXPECT_EQ(run(sanitizer, dns), ppe::Verdict::forward);
  // Port 443 to a non-resolver passes.
  auto https = tcp_packet(ip(10, 0, 0, 1), ip(93, 184, 216, 34), 5000, 443);
  EXPECT_EQ(run(sanitizer, https), ppe::Verdict::forward);
}

TEST(Sanitizer, DohBlockingDisabledByDefault) {
  Sanitizer sanitizer;
  ASSERT_TRUE(sanitizer.add_doh_resolver(ip(1, 1, 1, 1)));
  auto doh = tcp_packet(ip(10, 0, 0, 1), ip(1, 1, 1, 1), 5000, 443);
  EXPECT_EQ(run(sanitizer, doh), ppe::Verdict::forward);
}

TEST(Sanitizer, ResolverTableControlSurface) {
  Sanitizer sanitizer;
  EXPECT_TRUE(sanitizer.table_insert("doh_resolvers",
                                     ip(8, 8, 8, 8).value(), 1));
  EXPECT_TRUE(
      sanitizer.table_lookup("doh_resolvers", ip(8, 8, 8, 8).value()));
  EXPECT_TRUE(
      sanitizer.table_erase("doh_resolvers", ip(8, 8, 8, 8).value()));
  EXPECT_FALSE(sanitizer.table_insert("other", 1, 1));
}

TEST(Sanitizer, IssueMaskIsSelective) {
  // Only drop TTL-zero; martians pass.
  SanitizerConfig config;
  config.drop_mask = issue_bit(net::ValidationIssue::ipv4_ttl_zero);
  Sanitizer sanitizer(config);
  auto martian = udp_packet(ip(127, 0, 0, 1), ip(2, 2, 2, 2), 1, 2);
  EXPECT_EQ(run(sanitizer, martian), ppe::Verdict::forward);
  auto expired = net::PacketBuilder()
                     .ethernet(testing::mac(2), testing::mac(1))
                     .ipv4(ip(1, 1, 1, 1), ip(2, 2, 2, 2), net::IpProto::udp,
                           /*ttl=*/0)
                     .udp(1, 2)
                     .build_packet();
  EXPECT_EQ(run(sanitizer, expired), ppe::Verdict::drop);
}

TEST(SanitizerConfig, SerializeParseRoundTrip) {
  SanitizerConfig config;
  config.drop_mask = 0xabc;
  config.strip_ipv4_options = true;
  config.drop_unparseable = false;
  config.block_doh = true;
  const auto parsed = SanitizerConfig::parse(config.serialize());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->drop_mask, 0xabcu);
  EXPECT_TRUE(parsed->strip_ipv4_options);
  EXPECT_FALSE(parsed->drop_unparseable);
  EXPECT_TRUE(parsed->block_doh);
}

}  // namespace
}  // namespace flexsfp::apps
