// Binding-table churn at scale, two angles:
//
//   * a million control-plane operations against one LwAftr — insert,
//     expire, re-add over a 1M-entry table geometry, with spot-check reads
//     and exact occupancy accounting after every phase, and
//   * lease churn riding on live faulted traffic through a ModuleTestbed:
//     the zero-black-hole ledger must close (every emitted packet delivered
//     or attributed to a named drop point) and the PacketPool must stop
//     allocating once warm — the steady state reuses pooled buffers only.
#include <gtest/gtest.h>

#include "app_test_util.hpp"
#include "apps/softwire.hpp"
#include "fabric/testbed.hpp"
#include "net/builder.hpp"
#include "sim/random.hpp"

namespace flexsfp::apps {
namespace {

using testing::ip;
using testing::mac;

constexpr PsidParams kParams{6, 6};
constexpr std::uint16_t kPsidsPerAddr = 64;

net::Ipv6Address aftr() { return *net::Ipv6Address::parse("2001:db8:ffff::1"); }
net::Ipv6Address b4(std::uint64_t low) {
  return net::Ipv6Address::from_u64_pair(0x20010db8'00000000ull, low);
}
net::Ipv4Address lease_v4(std::uint32_t i) {
  return net::Ipv4Address{ip(100, 64, 0, 0).value() + i / kPsidsPerAddr};
}
std::uint16_t lease_psid(std::uint32_t i) { return i % kPsidsPerAddr; }

TEST(SoftwireChurn, MillionOperationInsertExpireReaddCycles) {
  LwAftrConfig config;
  config.aftr_addr = aftr();
  config.icmp_src = ip(192, 0, 2, 1);
  config.binding_capacity = 1u << 20;  // the million-lease geometry
  LwAftr app(config);

  constexpr std::uint32_t kLeases = 1u << 18;  // 262144 live per cycle
  std::uint64_t operations = 0;
  sim::Rng rng(7);

  // Phase 0: cold fill.
  for (std::uint32_t i = 0; i < kLeases; ++i) {
    ASSERT_TRUE(app.add_binding(lease_v4(i), lease_psid(i), kParams, b4(i)))
        << "lease " << i;
  }
  operations += kLeases;
  ASSERT_EQ(app.binding_count(), kLeases);

  // Cycles of expire-one-in-four / re-add until a million operations have
  // hit the table. Slot recycling means occupancy returns to exactly
  // kLeases after every cycle — no leak, no stuck tombstones.
  while (operations < 1'000'000) {
    for (std::uint32_t i = 0; i < kLeases; i += 4) {
      ASSERT_TRUE(app.remove_binding(lease_v4(i), lease_psid(i)));
    }
    ASSERT_EQ(app.binding_count(), kLeases - kLeases / 4);
    for (std::uint32_t i = 0; i < kLeases; i += 4) {
      // Re-add with a rotated B4: the refreshed lease must win.
      ASSERT_TRUE(
          app.add_binding(lease_v4(i), lease_psid(i), kParams, b4(i + 1)));
    }
    operations += 2 * (kLeases / 4);
    ASSERT_EQ(app.binding_count(), kLeases);
  }

  // Spot-check reads against the expected generation: multiples of 4 were
  // rotated to b4(i + 1) by the last cycle, everything else is original.
  for (int check = 0; check < 1000; ++check) {
    const auto i = std::uint32_t(rng.uniform(0, kLeases - 1));
    const auto expect = i % 4 == 0 ? b4(i + 1) : b4(i);
    ASSERT_EQ(app.b4_for(lease_v4(i), lease_psid(i)), expect) << "lease " << i;
  }

  // The datapath still works at full occupancy: the highest lease encaps.
  auto packet = testing::udp_packet(
      ip(192, 0, 2, 50), lease_v4(kLeases - 1), 9999,
      port_for_index(kParams, lease_psid(kLeases - 1), 0));
  EXPECT_EQ(testing::run(app, packet), ppe::Verdict::forward);
  EXPECT_EQ(app.stat_packets(LwAftr::stat_encapsulated), 1u);
}

TEST(SoftwireChurn, PsidMapRefcountSurvivesInterleavedChurn) {
  LwAftrConfig config;
  config.aftr_addr = aftr();
  config.binding_capacity = 4096;
  LwAftr app(config);

  // 64 leases sharing one address: the psid_map entry must persist until
  // the very last lease leaves, then vanish so a new layout is admissible.
  for (std::uint16_t psid = 0; psid < 64; ++psid) {
    ASSERT_TRUE(app.add_binding(ip(100, 64, 9, 9), psid, kParams, b4(psid)));
  }
  for (std::uint16_t psid = 0; psid < 63; ++psid) {
    ASSERT_TRUE(app.remove_binding(ip(100, 64, 9, 9), psid));
    ASSERT_EQ(app.params_for(ip(100, 64, 9, 9)), kParams) << "psid " << psid;
  }
  ASSERT_TRUE(app.remove_binding(ip(100, 64, 9, 9), 63));
  EXPECT_EQ(app.params_for(ip(100, 64, 9, 9)), std::nullopt);
  EXPECT_TRUE(
      app.add_binding(ip(100, 64, 9, 9), 0, PsidParams{4, 0}, b4(500)));
}

// --- churn under live faulted traffic --------------------------------------

TEST(SoftwireChurn, LedgerClosesAndPoolStaysFlatUnderFaultedChurn) {
  constexpr std::uint32_t kSubscribers = 256;
  constexpr sim::TimePs kDuration = 60'000'000;  // 60 us

  fabric::TestbedConfig config;
  sim::FaultSpec faults;
  faults.drop_prob = 0.02;
  faults.duplicate_prob = 0.005;
  faults.reorder_prob = 0.03;
  faults.seed = 77;
  config.edge_faults = faults;

  LwAftrConfig aftr_config;
  aftr_config.aftr_addr = aftr();
  aftr_config.icmp_src = ip(192, 0, 2, 1);
  aftr_config.binding_capacity = kSubscribers * 2;
  aftr_config.miss_action = SoftwireMissAction::drop;
  auto app_owner = std::make_unique<LwAftr>(aftr_config);
  LwAftr* app = app_owner.get();
  for (std::uint32_t i = 0; i < kSubscribers; ++i) {
    ASSERT_TRUE(app->add_binding(lease_v4(i), lease_psid(i), kParams, b4(i)));
  }
  fabric::ModuleTestbed tb(std::move(config), std::move(app_owner));

  // One downstream template per subscriber; ports patched per emission.
  std::vector<net::Bytes> frames(kSubscribers);
  for (std::uint32_t i = 0; i < kSubscribers; ++i) {
    frames[i] = net::PacketBuilder()
                    .ethernet(mac(0xaa), mac(0xbb))
                    .ipv4(ip(192, 0, 2, 50), lease_v4(i), net::IpProto::udp)
                    .udp(9999, port_for_index(kParams, lease_psid(i), 0))
                    .payload_size(32)
                    .build();
    net::write_be16(frames[i], 14 + 20 + 6, 0);  // UDP checksum off
  }

  // CBR emitter at ~2 Gb/s through the fault injector.
  struct {
    sim::Simulation* sim = nullptr;
    sim::PacketHandler* out = nullptr;
    std::vector<net::Bytes>* frames = nullptr;
    sim::Rng rng{3};
    sim::TimePs gap = 0;
    std::uint64_t sent = 0;
    void emit() {
      if (sim->now() >= kDuration) return;
      const auto i = std::uint32_t(rng.uniform(0, kSubscribers - 1));
      auto packet = sim->packet_pool().make();
      packet->data() = (*frames)[i];
      const auto port = port_for_index(
          kParams, lease_psid(i),
          std::uint32_t(rng.uniform(0, port_set_size(kParams) - 1)));
      net::write_be16(packet->data(), 14 + 20 + 2, port);
      packet->set_id(sim->next_packet_id());
      packet->set_created_time_ps(sim->now());
      ++sent;
      out->handle_packet(std::move(packet));
      sim->schedule_in(gap, [this] { emit(); });
    }
  } gen;
  gen.sim = &tb.sim();
  gen.out = tb.edge_faults();
  ASSERT_NE(gen.out, nullptr);
  gen.frames = &frames;
  gen.gap = sim::DataRate::gbps(2.0).serialization_time(frames[0].size() + 24);

  // Lease churn while the traffic flows: every 10 us one in five leases
  // expires; 5 us later it is re-provisioned.
  for (int tick = 0; tick < 6; ++tick) {
    tb.sim().schedule_at(tick * 10'000'000, [app, tick] {
      for (std::uint32_t i = std::uint32_t(tick) % 5; i < kSubscribers; i += 5) {
        ASSERT_TRUE(app->remove_binding(lease_v4(i), lease_psid(i)));
      }
    });
    tb.sim().schedule_at(tick * 10'000'000 + 5'000'000, [app, tick] {
      for (std::uint32_t i = std::uint32_t(tick) % 5; i < kSubscribers; i += 5) {
        ASSERT_TRUE(app->add_binding(lease_v4(i), lease_psid(i), kParams,
                                     b4(i)));
      }
    });
  }

  tb.sim().schedule_at(0, [&gen] { gen.emit(); });
  const fabric::TestbedResult result = tb.run();

  // Zero-black-hole ledger: emitted (+ injector-minted duplicates) equals
  // delivered + every named drop point. Nothing vanishes unexplained.
  const std::uint64_t delivered = tb.optical_sink().received().packets();
  const std::uint64_t injector_drops = result.edge_fault_tally.total_dropped();
  const std::uint64_t duplicated = result.edge_fault_tally.duplicated;
  EXPECT_EQ(gen.sent + duplicated, delivered + injector_drops +
                                       result.ppe_queue_drops +
                                       result.app_drops)
      << "sent " << gen.sent << " dup " << duplicated << " delivered "
      << delivered << " injector " << injector_drops << " queue "
      << result.ppe_queue_drops << " app " << result.app_drops;
  // Expired leases really did blackhole-with-receipt: some packets hit the
  // unmappable counter while their lease was down.
  EXPECT_GT(app->stat_packets(LwAftr::stat_unmappable_v4), 0u);
  EXPECT_EQ(app->stat_packets(LwAftr::stat_unmappable_v4) +
                app->stat_packets(LwAftr::stat_malformed),
            result.app_drops);

  // Pool discipline: the warm steady state allocates nothing. Every make()
  // beyond the first in-flight high-water mark is a reuse, and the pool
  // never spilled to the heap.
  const net::PacketPool::Stats pool = tb.sim().packet_pool().stats();
  EXPECT_EQ(pool.heap_fallbacks, 0u);
  EXPECT_EQ(pool.fresh, pool.high_watermark);  // growth == warmup only
  EXPECT_EQ(pool.made, pool.reused + pool.fresh);
  EXPECT_GT(pool.reused, pool.fresh);  // steady state dominated by reuse
}

}  // namespace
}  // namespace flexsfp::apps
