#include "apps/nat.hpp"

#include <gtest/gtest.h>

#include "app_test_util.hpp"
#include "sim/random.hpp"

namespace flexsfp::apps {
namespace {

using testing::ip;
using testing::run;
using testing::udp_packet;

TEST(StaticNat, TranslatesMappedSourceAddress) {
  StaticNat nat;
  ASSERT_TRUE(nat.add_mapping(ip(10, 0, 0, 5), ip(203, 0, 113, 5)));

  auto packet = udp_packet(ip(10, 0, 0, 5), ip(8, 8, 8, 8), 1234, 53);
  EXPECT_EQ(run(nat, packet), ppe::Verdict::forward);

  const auto parsed = net::parse_packet(packet);
  EXPECT_EQ(parsed.outer.ipv4->src, ip(203, 0, 113, 5));
  EXPECT_EQ(parsed.outer.ipv4->dst, ip(8, 8, 8, 8));
  // Checksums remain valid after the rewrite (line-rate O(1) patching).
  EXPECT_TRUE(net::validate_packet(parsed, packet.data()).empty());
}

TEST(StaticNat, MissForwardsUntranslatedByDefault) {
  StaticNat nat;
  auto packet = udp_packet(ip(10, 0, 0, 99), ip(8, 8, 8, 8), 1, 2);
  EXPECT_EQ(run(nat, packet), ppe::Verdict::forward);
  EXPECT_EQ(net::parse_packet(packet).outer.ipv4->src, ip(10, 0, 0, 99));
}

TEST(StaticNat, MissActionDrop) {
  NatConfig config;
  config.miss_action = NatMissAction::drop;
  StaticNat nat(config);
  auto packet = udp_packet(ip(10, 0, 0, 99), ip(8, 8, 8, 8), 1, 2);
  EXPECT_EQ(run(nat, packet), ppe::Verdict::drop);
}

TEST(StaticNat, MissActionPunt) {
  NatConfig config;
  config.miss_action = NatMissAction::punt;
  StaticNat nat(config);
  auto packet = udp_packet(ip(10, 0, 0, 99), ip(8, 8, 8, 8), 1, 2);
  EXPECT_EQ(run(nat, packet), ppe::Verdict::to_control_plane);
}

TEST(StaticNat, DestinationModeRewritesReturnPath) {
  NatConfig config;
  config.direction = NatDirection::destination;
  StaticNat nat(config);
  ASSERT_TRUE(nat.add_mapping(ip(203, 0, 113, 5), ip(10, 0, 0, 5)));
  auto packet = udp_packet(ip(8, 8, 8, 8), ip(203, 0, 113, 5), 53, 1234);
  EXPECT_EQ(run(nat, packet), ppe::Verdict::forward);
  const auto parsed = net::parse_packet(packet);
  EXPECT_EQ(parsed.outer.ipv4->dst, ip(10, 0, 0, 5));
  EXPECT_TRUE(net::validate_packet(parsed, packet.data()).empty());
}

TEST(StaticNat, NonIpv4PassesThrough) {
  StaticNat nat;
  net::Bytes frame(64, 0);
  net::EthernetHeader eth;
  eth.ether_type = static_cast<std::uint16_t>(net::EtherType::arp);
  eth.serialize_to(frame, 0);
  net::Packet packet{frame};
  EXPECT_EQ(run(nat, packet), ppe::Verdict::forward);
  EXPECT_EQ(packet.data(), frame);
}

TEST(StaticNat, TcpChecksumPatchedToo) {
  StaticNat nat;
  ASSERT_TRUE(nat.add_mapping(ip(10, 0, 0, 1), ip(1, 2, 3, 4)));
  auto packet =
      testing::tcp_packet(ip(10, 0, 0, 1), ip(5, 6, 7, 8), 5555, 80);
  EXPECT_EQ(run(nat, packet), ppe::Verdict::forward);
  const auto parsed = net::parse_packet(packet);
  EXPECT_TRUE(net::validate_packet(parsed, packet.data()).empty());
}

TEST(StaticNat, PaperTableGeometryHolds32kFlows) {
  StaticNat nat;  // default 32,768 capacity
  sim::Rng rng(4);
  std::size_t added = 0;
  for (std::uint32_t i = 0; i < 30000; ++i) {
    if (nat.add_mapping(net::Ipv4Address{0x0a000000u + i},
                        net::Ipv4Address{0xcb007100u + i})) {
      ++added;
    }
  }
  EXPECT_GT(double(added) / 30000.0, 0.999);  // cuckoo relocation keeps it full
  EXPECT_EQ(nat.table().capacity(), 32768u);
}

TEST(StaticNat, CountersTrackOutcomes) {
  StaticNat nat;
  nat.add_mapping(ip(10, 0, 0, 1), ip(1, 1, 1, 1));
  auto hit = udp_packet(ip(10, 0, 0, 1), ip(9, 9, 9, 9), 1, 2);
  auto miss = udp_packet(ip(10, 0, 0, 2), ip(9, 9, 9, 9), 1, 2);
  (void)run(nat, hit);
  (void)run(nat, miss);
  const auto counters = nat.counters();
  ASSERT_EQ(counters.size(), 3u);
  EXPECT_EQ(counters[0].packets, 1u);  // translated
  EXPECT_EQ(counters[1].packets, 1u);  // missed
}

TEST(StaticNat, ControlPlaneTableOps) {
  StaticNat nat;
  EXPECT_EQ(nat.table_names(), std::vector<std::string>{"nat"});
  EXPECT_TRUE(nat.table_insert("nat", ip(10, 0, 0, 7).value(),
                               ip(7, 7, 7, 7).value()));
  EXPECT_EQ(nat.table_lookup("nat", ip(10, 0, 0, 7).value()),
            ip(7, 7, 7, 7).value());
  EXPECT_TRUE(nat.table_erase("nat", ip(10, 0, 0, 7).value()));
  EXPECT_FALSE(nat.table_lookup("nat", ip(10, 0, 0, 7).value()).has_value());
  EXPECT_FALSE(nat.table_insert("bogus", 1, 2));
  EXPECT_FALSE(nat.table_lookup("bogus", 1).has_value());
}

TEST(StaticNat, RemoveMappingStopsTranslation) {
  StaticNat nat;
  nat.add_mapping(ip(10, 0, 0, 1), ip(1, 1, 1, 1));
  ASSERT_TRUE(nat.remove_mapping(ip(10, 0, 0, 1)));
  auto packet = udp_packet(ip(10, 0, 0, 1), ip(9, 9, 9, 9), 1, 2);
  (void)run(nat, packet);
  EXPECT_EQ(net::parse_packet(packet).outer.ipv4->src, ip(10, 0, 0, 1));
}

// --- batched dispatch equivalence -------------------------------------------
// process_batch takes a byte-peek fast path for plain untagged IPv4 TCP/UDP
// and falls back to the full parser for everything else. Whatever the route,
// the outcome must be indistinguishable from scalar process() — verdicts,
// rewritten bytes and counters alike.

std::vector<net::Packet> batch_shapes() {
  using testing::ip;
  std::vector<net::Packet> shapes;
  // Fast-path candidates: plain untagged IPv4.
  shapes.push_back(
      testing::tcp_packet(ip(10, 0, 0, 1), ip(8, 8, 8, 8), 1111, 80));
  shapes.push_back(udp_packet(ip(10, 0, 0, 2), ip(8, 8, 4, 4), 2222, 53));
  shapes.push_back(udp_packet(ip(10, 9, 9, 9), ip(8, 8, 8, 8), 7, 7));  // miss
  shapes.push_back(
      udp_packet(ip(10, 0, 0, 3), ip(9, 9, 9, 9), 3333, 53));  // identity map
  // Slow-path shapes the byte peek must reject:
  shapes.push_back(net::PacketBuilder()  // 802.1Q tag shifts the IP header
                       .ethernet(testing::mac(2), testing::mac(1))
                       .vlan(42)
                       .ipv4(ip(10, 0, 0, 1), ip(8, 8, 8, 8), net::IpProto::udp)
                       .udp(4444, 53)
                       .payload_size(16)
                       .build_packet());
  shapes.push_back(udp_packet(ip(10, 0, 0, 1), ip(8, 8, 8, 8), 5555,
                              net::VxlanHeader::udp_port));  // tunnel port
  {  // IPv4 fragment: L4 fields are payload, not a UDP header
    auto frag = udp_packet(ip(10, 0, 0, 1), ip(8, 8, 8, 8), 6666, 53);
    frag.data()[20] |= 0x20;  // more-fragments flag (both paths see it)
    shapes.push_back(std::move(frag));
  }
  {  // non-IPv4 ethertype
    net::Bytes frame(64, 0);
    net::EthernetHeader eth;
    eth.ether_type = static_cast<std::uint16_t>(net::EtherType::arp);
    eth.serialize_to(frame, 0);
    shapes.emplace_back(frame);
  }
  {  // IPv4 header with options (ihl = 6)
    auto opts = udp_packet(ip(10, 0, 0, 1), ip(8, 8, 8, 8), 8888, 53);
    opts.data()[14] = 0x46;
    shapes.push_back(std::move(opts));
  }
  {  // truncated mid-IPv4-header
    auto runt = udp_packet(ip(10, 0, 0, 1), ip(8, 8, 8, 8), 9999, 53);
    runt.data().resize(20);
    shapes.push_back(std::move(runt));
  }
  return shapes;
}

void install_batch_mappings(StaticNat& nat) {
  using testing::ip;
  ASSERT_TRUE(nat.add_mapping(ip(10, 0, 0, 1), ip(203, 0, 113, 1)));
  ASSERT_TRUE(nat.add_mapping(ip(10, 0, 0, 2), ip(203, 0, 113, 2)));
  ASSERT_TRUE(nat.add_mapping(ip(10, 0, 0, 3), ip(10, 0, 0, 3)));  // identity
}

void expect_batch_equals_scalar(NatMissAction miss_action) {
  for (const std::size_t n : {std::size_t{8}, std::size_t{16}}) {
    NatConfig config;
    config.miss_action = miss_action;
    StaticNat batched(config);
    StaticNat scalar(config);
    install_batch_mappings(batched);
    install_batch_mappings(scalar);

    const auto shapes = batch_shapes();
    std::vector<net::Packet> batch_pkts;
    std::vector<net::Packet> scalar_pkts;
    for (std::size_t i = 0; i < n; ++i) {
      batch_pkts.push_back(shapes[i % shapes.size()]);
      scalar_pkts.push_back(shapes[i % shapes.size()]);
    }

    std::vector<ppe::PacketContext> ctxs;
    ctxs.reserve(n);
    std::vector<ppe::PacketContext*> ctx_ptrs;
    for (auto& packet : batch_pkts) {
      ctxs.emplace_back(packet);
      ctx_ptrs.push_back(&ctxs.back());
    }
    std::vector<ppe::Verdict> verdicts(n, ppe::Verdict::drop);
    batched.process_batch(ctx_ptrs.data(), verdicts.data(), n);

    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(verdicts[i], run(scalar, scalar_pkts[i]))
          << "packet " << i << " n " << n;
      EXPECT_EQ(batch_pkts[i].data(), scalar_pkts[i].data())
          << "packet " << i << " n " << n;
    }
    const auto a = batched.counters();
    const auto b = scalar.counters();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].packets, b[i].packets) << "counter " << i;
      EXPECT_EQ(a[i].bytes, b[i].bytes) << "counter " << i;
    }
  }
}

TEST(StaticNatBatch, MatchesScalarAcrossShapesForwardMiss) {
  expect_batch_equals_scalar(NatMissAction::forward);
}

TEST(StaticNatBatch, MatchesScalarAcrossShapesDropMiss) {
  expect_batch_equals_scalar(NatMissAction::drop);
}

TEST(StaticNatBatch, MatchesScalarAcrossShapesPuntMiss) {
  expect_batch_equals_scalar(NatMissAction::punt);
}

TEST(StaticNatBatch, DestinationModeMatchesScalar) {
  using testing::ip;
  NatConfig config;
  config.direction = NatDirection::destination;
  StaticNat batched(config);
  StaticNat scalar(config);
  ASSERT_TRUE(batched.add_mapping(ip(203, 0, 113, 5), ip(10, 0, 0, 5)));
  ASSERT_TRUE(scalar.add_mapping(ip(203, 0, 113, 5), ip(10, 0, 0, 5)));

  std::vector<net::Packet> batch_pkts;
  std::vector<net::Packet> scalar_pkts;
  for (int i = 0; i < 8; ++i) {
    auto packet = testing::tcp_packet(ip(8, 8, 8, 8),
                                      i % 2 == 0 ? ip(203, 0, 113, 5)
                                                 : ip(203, 0, 113, 6),
                                      53, 1000 + i);
    batch_pkts.push_back(packet);
    scalar_pkts.push_back(packet);
  }
  std::vector<ppe::PacketContext> ctxs;
  ctxs.reserve(batch_pkts.size());
  std::vector<ppe::PacketContext*> ctx_ptrs;
  for (auto& packet : batch_pkts) {
    ctxs.emplace_back(packet);
    ctx_ptrs.push_back(&ctxs.back());
  }
  std::vector<ppe::Verdict> verdicts(batch_pkts.size(), ppe::Verdict::drop);
  batched.process_batch(ctx_ptrs.data(), verdicts.data(), batch_pkts.size());
  for (std::size_t i = 0; i < batch_pkts.size(); ++i) {
    EXPECT_EQ(verdicts[i], run(scalar, scalar_pkts[i])) << "packet " << i;
    EXPECT_EQ(batch_pkts[i].data(), scalar_pkts[i].data()) << "packet " << i;
    // Rewritten packets still carry valid checksums.
    const auto parsed = net::parse_packet(batch_pkts[i]);
    EXPECT_TRUE(net::validate_packet(parsed, batch_pkts[i].data()).empty());
  }
}

TEST(NatConfig, SerializeParseRoundTrip) {
  NatConfig config;
  config.direction = NatDirection::destination;
  config.miss_action = NatMissAction::punt;
  config.table_capacity = 4096;
  const auto parsed = NatConfig::parse(config.serialize());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->direction, NatDirection::destination);
  EXPECT_EQ(parsed->miss_action, NatMissAction::punt);
  EXPECT_EQ(parsed->table_capacity, 4096u);
}

TEST(NatConfig, ParseRejectsGarbage) {
  EXPECT_FALSE(NatConfig::parse(net::Bytes{1}).has_value());
  EXPECT_FALSE(NatConfig::parse(net::Bytes{9, 0, 0, 0, 0, 1}).has_value());
  // Zero capacity rejected.
  EXPECT_FALSE(NatConfig::parse(net::Bytes{0, 0, 0, 0, 0, 0}).has_value());
}

TEST(StaticNat, TranslationForQueriesTable) {
  StaticNat nat;
  nat.add_mapping(ip(10, 1, 1, 1), ip(2, 2, 2, 2));
  EXPECT_EQ(nat.translation_for(ip(10, 1, 1, 1)), ip(2, 2, 2, 2));
  EXPECT_FALSE(nat.translation_for(ip(10, 1, 1, 2)).has_value());
}

}  // namespace
}  // namespace flexsfp::apps
