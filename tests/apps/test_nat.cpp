#include "apps/nat.hpp"

#include <gtest/gtest.h>

#include "app_test_util.hpp"
#include "sim/random.hpp"

namespace flexsfp::apps {
namespace {

using testing::ip;
using testing::run;
using testing::udp_packet;

TEST(StaticNat, TranslatesMappedSourceAddress) {
  StaticNat nat;
  ASSERT_TRUE(nat.add_mapping(ip(10, 0, 0, 5), ip(203, 0, 113, 5)));

  auto packet = udp_packet(ip(10, 0, 0, 5), ip(8, 8, 8, 8), 1234, 53);
  EXPECT_EQ(run(nat, packet), ppe::Verdict::forward);

  const auto parsed = net::parse_packet(packet);
  EXPECT_EQ(parsed.outer.ipv4->src, ip(203, 0, 113, 5));
  EXPECT_EQ(parsed.outer.ipv4->dst, ip(8, 8, 8, 8));
  // Checksums remain valid after the rewrite (line-rate O(1) patching).
  EXPECT_TRUE(net::validate_packet(parsed, packet.data()).empty());
}

TEST(StaticNat, MissForwardsUntranslatedByDefault) {
  StaticNat nat;
  auto packet = udp_packet(ip(10, 0, 0, 99), ip(8, 8, 8, 8), 1, 2);
  EXPECT_EQ(run(nat, packet), ppe::Verdict::forward);
  EXPECT_EQ(net::parse_packet(packet).outer.ipv4->src, ip(10, 0, 0, 99));
}

TEST(StaticNat, MissActionDrop) {
  NatConfig config;
  config.miss_action = NatMissAction::drop;
  StaticNat nat(config);
  auto packet = udp_packet(ip(10, 0, 0, 99), ip(8, 8, 8, 8), 1, 2);
  EXPECT_EQ(run(nat, packet), ppe::Verdict::drop);
}

TEST(StaticNat, MissActionPunt) {
  NatConfig config;
  config.miss_action = NatMissAction::punt;
  StaticNat nat(config);
  auto packet = udp_packet(ip(10, 0, 0, 99), ip(8, 8, 8, 8), 1, 2);
  EXPECT_EQ(run(nat, packet), ppe::Verdict::to_control_plane);
}

TEST(StaticNat, DestinationModeRewritesReturnPath) {
  NatConfig config;
  config.direction = NatDirection::destination;
  StaticNat nat(config);
  ASSERT_TRUE(nat.add_mapping(ip(203, 0, 113, 5), ip(10, 0, 0, 5)));
  auto packet = udp_packet(ip(8, 8, 8, 8), ip(203, 0, 113, 5), 53, 1234);
  EXPECT_EQ(run(nat, packet), ppe::Verdict::forward);
  const auto parsed = net::parse_packet(packet);
  EXPECT_EQ(parsed.outer.ipv4->dst, ip(10, 0, 0, 5));
  EXPECT_TRUE(net::validate_packet(parsed, packet.data()).empty());
}

TEST(StaticNat, NonIpv4PassesThrough) {
  StaticNat nat;
  net::Bytes frame(64, 0);
  net::EthernetHeader eth;
  eth.ether_type = static_cast<std::uint16_t>(net::EtherType::arp);
  eth.serialize_to(frame, 0);
  net::Packet packet{frame};
  EXPECT_EQ(run(nat, packet), ppe::Verdict::forward);
  EXPECT_EQ(packet.data(), frame);
}

TEST(StaticNat, TcpChecksumPatchedToo) {
  StaticNat nat;
  ASSERT_TRUE(nat.add_mapping(ip(10, 0, 0, 1), ip(1, 2, 3, 4)));
  auto packet =
      testing::tcp_packet(ip(10, 0, 0, 1), ip(5, 6, 7, 8), 5555, 80);
  EXPECT_EQ(run(nat, packet), ppe::Verdict::forward);
  const auto parsed = net::parse_packet(packet);
  EXPECT_TRUE(net::validate_packet(parsed, packet.data()).empty());
}

TEST(StaticNat, PaperTableGeometryHolds32kFlows) {
  StaticNat nat;  // default 32,768 capacity
  sim::Rng rng(4);
  std::size_t added = 0;
  for (std::uint32_t i = 0; i < 30000; ++i) {
    if (nat.add_mapping(net::Ipv4Address{0x0a000000u + i},
                        net::Ipv4Address{0xcb007100u + i})) {
      ++added;
    }
  }
  EXPECT_GT(double(added) / 30000.0, 0.999);  // cuckoo relocation keeps it full
  EXPECT_EQ(nat.table().capacity(), 32768u);
}

TEST(StaticNat, CountersTrackOutcomes) {
  StaticNat nat;
  nat.add_mapping(ip(10, 0, 0, 1), ip(1, 1, 1, 1));
  auto hit = udp_packet(ip(10, 0, 0, 1), ip(9, 9, 9, 9), 1, 2);
  auto miss = udp_packet(ip(10, 0, 0, 2), ip(9, 9, 9, 9), 1, 2);
  (void)run(nat, hit);
  (void)run(nat, miss);
  const auto counters = nat.counters();
  ASSERT_EQ(counters.size(), 3u);
  EXPECT_EQ(counters[0].packets, 1u);  // translated
  EXPECT_EQ(counters[1].packets, 1u);  // missed
}

TEST(StaticNat, ControlPlaneTableOps) {
  StaticNat nat;
  EXPECT_EQ(nat.table_names(), std::vector<std::string>{"nat"});
  EXPECT_TRUE(nat.table_insert("nat", ip(10, 0, 0, 7).value(),
                               ip(7, 7, 7, 7).value()));
  EXPECT_EQ(nat.table_lookup("nat", ip(10, 0, 0, 7).value()),
            ip(7, 7, 7, 7).value());
  EXPECT_TRUE(nat.table_erase("nat", ip(10, 0, 0, 7).value()));
  EXPECT_FALSE(nat.table_lookup("nat", ip(10, 0, 0, 7).value()).has_value());
  EXPECT_FALSE(nat.table_insert("bogus", 1, 2));
  EXPECT_FALSE(nat.table_lookup("bogus", 1).has_value());
}

TEST(StaticNat, RemoveMappingStopsTranslation) {
  StaticNat nat;
  nat.add_mapping(ip(10, 0, 0, 1), ip(1, 1, 1, 1));
  ASSERT_TRUE(nat.remove_mapping(ip(10, 0, 0, 1)));
  auto packet = udp_packet(ip(10, 0, 0, 1), ip(9, 9, 9, 9), 1, 2);
  (void)run(nat, packet);
  EXPECT_EQ(net::parse_packet(packet).outer.ipv4->src, ip(10, 0, 0, 1));
}

TEST(NatConfig, SerializeParseRoundTrip) {
  NatConfig config;
  config.direction = NatDirection::destination;
  config.miss_action = NatMissAction::punt;
  config.table_capacity = 4096;
  const auto parsed = NatConfig::parse(config.serialize());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->direction, NatDirection::destination);
  EXPECT_EQ(parsed->miss_action, NatMissAction::punt);
  EXPECT_EQ(parsed->table_capacity, 4096u);
}

TEST(NatConfig, ParseRejectsGarbage) {
  EXPECT_FALSE(NatConfig::parse(net::Bytes{1}).has_value());
  EXPECT_FALSE(NatConfig::parse(net::Bytes{9, 0, 0, 0, 0, 1}).has_value());
  // Zero capacity rejected.
  EXPECT_FALSE(NatConfig::parse(net::Bytes{0, 0, 0, 0, 0, 0}).has_value());
}

TEST(StaticNat, TranslationForQueriesTable) {
  StaticNat nat;
  nat.add_mapping(ip(10, 1, 1, 1), ip(2, 2, 2, 2));
  EXPECT_EQ(nat.translation_for(ip(10, 1, 1, 1)), ip(2, 2, 2, 2));
  EXPECT_FALSE(nat.translation_for(ip(10, 1, 1, 2)).has_value());
}

}  // namespace
}  // namespace flexsfp::apps
