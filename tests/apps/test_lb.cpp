#include "apps/load_balancer.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "app_test_util.hpp"

namespace flexsfp::apps {
namespace {

using testing::ip;
using testing::mac;
using testing::run;
using testing::udp_packet;

net::FiveTuple flow(std::uint32_t i) {
  return net::FiveTuple{net::Ipv4Address{0x0a000000u + i},
                        net::Ipv4Address{0xc0a80001u},
                        static_cast<std::uint16_t>(1024 + i % 50000), 80,
                        static_cast<std::uint8_t>(net::IpProto::tcp)};
}

std::unique_ptr<LoadBalancer> make_lb(int backends) {
  auto lb = std::make_unique<LoadBalancer>();
  for (int i = 0; i < backends; ++i) {
    lb->add_backend(Backend{static_cast<std::uint32_t>(i),
                            mac(0x100 + static_cast<std::uint64_t>(i)), true});
  }
  return lb;
}

TEST(LoadBalancer, RewritesDestinationMacToChosenBackend) {
  auto lb_owner = make_lb(4);
  LoadBalancer& lb = *lb_owner;
  auto packet = udp_packet(ip(10, 0, 0, 1), ip(192, 168, 0, 1), 1234, 80);
  EXPECT_EQ(run(lb, packet), ppe::Verdict::forward);
  const auto parsed = net::parse_packet(packet.data());
  const auto chosen = lb.backend_for(*parsed.five_tuple());
  ASSERT_TRUE(chosen);
  EXPECT_EQ(parsed.eth.dst, chosen->next_hop);
}

TEST(LoadBalancer, MappingIsFlowStable) {
  auto lb_owner = make_lb(8);
  LoadBalancer& lb = *lb_owner;
  for (std::uint32_t i = 0; i < 100; ++i) {
    const auto first = lb.backend_for(flow(i));
    const auto second = lb.backend_for(flow(i));
    ASSERT_TRUE(first && second);
    EXPECT_EQ(first->id, second->id);
  }
}

TEST(LoadBalancer, SymmetricForBothDirections) {
  auto lb_owner = make_lb(8);
  LoadBalancer& lb = *lb_owner;
  for (std::uint32_t i = 0; i < 100; ++i) {
    const auto fwd = lb.backend_for(flow(i));
    const auto rev = lb.backend_for(flow(i).reversed());
    ASSERT_TRUE(fwd && rev);
    EXPECT_EQ(fwd->id, rev->id) << "flow " << i;
  }
}

TEST(LoadBalancer, TableSlotsNearlyBalanced) {
  // Maglev property: slot counts differ by at most ~1% of table size.
  auto lb_owner = make_lb(5);
  LoadBalancer& lb = *lb_owner;
  std::map<std::int32_t, int> slots;
  for (const auto index : lb.lookup_table()) {
    ASSERT_GE(index, 0);
    ++slots[index];
  }
  ASSERT_EQ(slots.size(), 5u);
  const double expected = double(lb.lookup_table().size()) / 5.0;
  for (const auto& [index, count] : slots) {
    EXPECT_NEAR(count, expected, expected * 0.02) << "backend " << index;
  }
}

TEST(LoadBalancer, RemovalDisturbsOnlyOwnShareOfFlows) {
  // The consistent-hashing property the paper's use case needs: removing
  // one of N backends must remap only ~1/N of flows.
  auto lb_owner = make_lb(10);
  LoadBalancer& lb = *lb_owner;
  std::map<std::uint32_t, std::uint32_t> before;
  for (std::uint32_t i = 0; i < 2000; ++i) {
    before[i] = lb.backend_for(flow(i))->id;
  }
  ASSERT_TRUE(lb.remove_backend(7));
  int moved_unnecessarily = 0;
  for (std::uint32_t i = 0; i < 2000; ++i) {
    const auto now = lb.backend_for(flow(i))->id;
    if (before[i] != 7 && now != before[i]) ++moved_unnecessarily;
  }
  // Maglev is not perfectly minimal; allow a small disruption margin.
  EXPECT_LT(moved_unnecessarily, 2000 / 10);
}

TEST(LoadBalancer, UnhealthyBackendReceivesNothing) {
  auto lb_owner = make_lb(4);
  LoadBalancer& lb = *lb_owner;
  ASSERT_TRUE(lb.set_backend_health(2, false));
  for (std::uint32_t i = 0; i < 500; ++i) {
    const auto chosen = lb.backend_for(flow(i));
    ASSERT_TRUE(chosen);
    EXPECT_NE(chosen->id, 2u);
  }
  // Recovery restores it.
  ASSERT_TRUE(lb.set_backend_health(2, true));
  bool seen = false;
  for (std::uint32_t i = 0; i < 500 && !seen; ++i) {
    seen = lb.backend_for(flow(i))->id == 2;
  }
  EXPECT_TRUE(seen);
}

TEST(LoadBalancer, NoBackendsPassesTrafficThrough) {
  LoadBalancer lb;
  auto packet = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 80);
  const net::Bytes original = packet.data();
  EXPECT_EQ(run(lb, packet), ppe::Verdict::forward);
  EXPECT_EQ(packet.data(), original);
}

TEST(LoadBalancer, NonIpPassesThrough) {
  auto lb_owner = make_lb(2);
  LoadBalancer& lb = *lb_owner;
  net::Bytes frame(64, 0);
  net::EthernetHeader eth;
  eth.ether_type = static_cast<std::uint16_t>(net::EtherType::arp);
  eth.serialize_to(frame, 0);
  net::Packet packet{frame};
  EXPECT_EQ(run(lb, packet), ppe::Verdict::forward);
}

TEST(LoadBalancer, PacketCountersPerBackend) {
  auto lb_owner = make_lb(2);
  LoadBalancer& lb = *lb_owner;
  std::uint64_t before = lb.packets_to(0) + lb.packets_to(1);
  EXPECT_EQ(before, 0u);
  for (std::uint32_t i = 0; i < 20; ++i) {
    auto packet = udp_packet(net::Ipv4Address{0x0a000000u + i},
                             ip(192, 168, 0, 1), 1000, 80);
    (void)run(lb, packet);
  }
  EXPECT_EQ(lb.packets_to(0) + lb.packets_to(1), 20u);
}

TEST(LoadBalancer, RemoveUnknownBackendFails) {
  auto lb_owner = make_lb(2);
  LoadBalancer& lb = *lb_owner;
  EXPECT_FALSE(lb.remove_backend(99));
  EXPECT_FALSE(lb.set_backend_health(99, false));
}

TEST(LoadBalancerConfig, SerializeParseRoundTrip) {
  LoadBalancerConfig config;
  config.table_size = 127;
  const auto parsed = LoadBalancerConfig::parse(config.serialize());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->table_size, 127u);
  EXPECT_FALSE(LoadBalancerConfig::parse(net::Bytes{0, 0, 0, 1}).has_value());
}

}  // namespace
}  // namespace flexsfp::apps
