#include "apps/vlan.hpp"

#include <gtest/gtest.h>

#include "app_test_util.hpp"

namespace flexsfp::apps {
namespace {

using testing::ip;
using testing::run;
using testing::udp_packet;

TEST(VlanTagger, PushAddsConfiguredTag) {
  VlanConfig config;
  config.mode = VlanMode::push;
  config.vid = 42;
  config.pcp = 5;
  VlanTagger tagger(config);

  auto packet = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2);
  const std::size_t before = packet.size();
  EXPECT_EQ(run(tagger, packet), ppe::Verdict::forward);
  EXPECT_EQ(packet.size(), before + 4);
  const auto parsed = net::parse_packet(packet.data());
  ASSERT_EQ(parsed.vlan_tags.size(), 1u);
  EXPECT_EQ(parsed.vlan_tags[0].vid, 42);
  EXPECT_EQ(parsed.vlan_tags[0].pcp, 5);
  // Inner IP layer still parses.
  EXPECT_TRUE(parsed.outer.ipv4.has_value());
}

TEST(VlanTagger, PopRemovesOuterTag) {
  VlanConfig config;
  config.mode = VlanMode::pop;
  VlanTagger tagger(config);
  auto packet = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2);
  net::push_vlan(packet.data(), 77);
  EXPECT_EQ(run(tagger, packet), ppe::Verdict::forward);
  EXPECT_TRUE(net::parse_packet(packet.data()).vlan_tags.empty());
}

TEST(VlanTagger, PopUntaggedPassesUnlessStrict) {
  VlanConfig config;
  config.mode = VlanMode::pop;
  VlanTagger lenient(config);
  auto packet = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2);
  EXPECT_EQ(run(lenient, packet), ppe::Verdict::forward);

  config.strict = true;
  VlanTagger strict(config);
  EXPECT_EQ(run(strict, packet), ppe::Verdict::drop);
}

TEST(VlanTagger, RewriteUsesTranslationTable) {
  VlanConfig config;
  config.mode = VlanMode::rewrite;
  config.vid = 999;  // fallback
  VlanTagger tagger(config);
  ASSERT_TRUE(tagger.add_translation(100, 200));

  auto mapped = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2);
  net::push_vlan(mapped.data(), 100);
  (void)run(tagger, mapped);
  EXPECT_EQ(net::parse_packet(mapped.data()).vlan_tags[0].vid, 200);

  auto unmapped = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2);
  net::push_vlan(unmapped.data(), 55);
  (void)run(tagger, unmapped);
  EXPECT_EQ(net::parse_packet(unmapped.data()).vlan_tags[0].vid, 999);
}

TEST(VlanTagger, QinqPushUsesServiceTpid) {
  VlanConfig config;
  config.mode = VlanMode::qinq_push;
  config.vid = 300;
  VlanTagger tagger(config);
  auto packet = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2);
  net::push_vlan(packet.data(), 100);  // existing customer tag
  (void)run(tagger, packet);
  const auto parsed = net::parse_packet(packet.data());
  ASSERT_EQ(parsed.vlan_tags.size(), 2u);
  EXPECT_EQ(parsed.eth.ether_type,
            static_cast<std::uint16_t>(net::EtherType::qinq));
  EXPECT_EQ(parsed.vlan_tags[0].vid, 300);
  EXPECT_EQ(parsed.vlan_tags[1].vid, 100);
}

TEST(VlanTagger, TableOpsThroughControlSurface) {
  VlanTagger tagger;
  EXPECT_EQ(tagger.table_names(),
            std::vector<std::string>{"vid_translation"});
  EXPECT_TRUE(tagger.table_insert("vid_translation", 10, 20));
  EXPECT_EQ(tagger.table_lookup("vid_translation", 10), 20u);
  EXPECT_TRUE(tagger.table_erase("vid_translation", 10));
  EXPECT_FALSE(tagger.table_insert("nope", 1, 2));
}

TEST(VlanTagger, CountersSplitEditedVsPassed) {
  VlanConfig config;
  config.mode = VlanMode::pop;
  VlanTagger tagger(config);
  auto tagged = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2);
  net::push_vlan(tagged.data(), 5);
  auto untagged = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2);
  (void)run(tagger, tagged);
  (void)run(tagger, untagged);
  const auto counters = tagger.counters();
  EXPECT_EQ(counters[0].packets, 1u);  // edited
  EXPECT_EQ(counters[1].packets, 1u);  // passed
}

TEST(VlanConfig, SerializeParseRoundTrip) {
  VlanConfig config;
  config.mode = VlanMode::rewrite;
  config.vid = 1234 & 0x0fff;
  config.pcp = 6;
  config.strict = true;
  const auto parsed = VlanConfig::parse(config.serialize());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->mode, VlanMode::rewrite);
  EXPECT_EQ(parsed->vid, config.vid);
  EXPECT_EQ(parsed->pcp, 6);
  EXPECT_TRUE(parsed->strict);
  EXPECT_FALSE(VlanConfig::parse(net::Bytes{9, 0, 0, 0, 0}).has_value());
}

}  // namespace
}  // namespace flexsfp::apps
