#include "apps/acl.hpp"

#include <gtest/gtest.h>

#include "app_test_util.hpp"

namespace flexsfp::apps {
namespace {

using testing::ip;
using testing::run;
using testing::tcp_packet;
using testing::udp_packet;

TEST(AclFirewall, DefaultActionAppliesWithNoRules) {
  AclFirewall permit_all;  // default permit
  auto packet = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2);
  EXPECT_EQ(run(permit_all, packet), ppe::Verdict::forward);

  AclConfig deny_config;
  deny_config.default_action = AclAction::deny;
  AclFirewall deny_all(deny_config);
  EXPECT_EQ(run(deny_all, packet), ppe::Verdict::drop);
}

TEST(AclFirewall, DenyBySourcePrefix) {
  AclFirewall acl;
  AclRuleSpec rule;
  rule.src = net::Ipv4Prefix::parse("10.0.0.0/8");
  rule.action = AclAction::deny;
  rule.priority = 10;
  ASSERT_GT(acl.add_rule(rule), 0u);

  auto inside = udp_packet(ip(10, 5, 5, 5), ip(2, 2, 2, 2), 1, 2);
  auto outside = udp_packet(ip(11, 5, 5, 5), ip(2, 2, 2, 2), 1, 2);
  EXPECT_EQ(run(acl, inside), ppe::Verdict::drop);
  EXPECT_EQ(run(acl, outside), ppe::Verdict::forward);
  EXPECT_EQ(acl.denied(), 1u);
}

TEST(AclFirewall, ProtocolAndDstPortMatch) {
  AclFirewall acl;
  AclRuleSpec rule;
  rule.protocol = static_cast<std::uint8_t>(net::IpProto::tcp);
  rule.dst_port_range = {{443, 443}};
  rule.action = AclAction::deny;
  ASSERT_GT(acl.add_rule(rule), 0u);

  auto https = tcp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 5000, 443);
  auto http = tcp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 5000, 80);
  auto udp443 = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 5000, 443);
  EXPECT_EQ(run(acl, https), ppe::Verdict::drop);
  EXPECT_EQ(run(acl, http), ppe::Verdict::forward);
  EXPECT_EQ(run(acl, udp443), ppe::Verdict::forward);  // protocol mismatch
}

TEST(AclFirewall, PortRangeExpansionMatchesWholeRange) {
  AclFirewall acl;
  AclRuleSpec rule;
  rule.dst_port_range = {{1000, 1999}};
  rule.action = AclAction::deny;
  const auto expanded = acl.add_rule(rule);
  ASSERT_GT(expanded, 1u);  // non-aligned range expands to several entries

  for (std::uint16_t port : {1000, 1500, 1999}) {
    auto hit = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, port);
    EXPECT_EQ(run(acl, hit), ppe::Verdict::drop) << port;
  }
  for (std::uint16_t port : {999, 2000}) {
    auto miss = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, port);
    EXPECT_EQ(run(acl, miss), ppe::Verdict::forward) << port;
  }
}

TEST(AclFirewall, HigherPriorityOverridesCatchAll) {
  AclConfig config;
  config.default_action = AclAction::permit;
  AclFirewall acl(config);

  AclRuleSpec deny_subnet;
  deny_subnet.src = net::Ipv4Prefix::parse("10.0.0.0/8");
  deny_subnet.action = AclAction::deny;
  deny_subnet.priority = 1;
  ASSERT_GT(acl.add_rule(deny_subnet), 0u);

  AclRuleSpec allow_host;
  allow_host.src = net::Ipv4Prefix::parse("10.0.0.53/32");
  allow_host.action = AclAction::permit;
  allow_host.priority = 10;
  ASSERT_GT(acl.add_rule(allow_host), 0u);

  auto blocked = udp_packet(ip(10, 0, 0, 1), ip(2, 2, 2, 2), 1, 2);
  auto allowed = udp_packet(ip(10, 0, 0, 53), ip(2, 2, 2, 2), 1, 2);
  EXPECT_EQ(run(acl, blocked), ppe::Verdict::drop);
  EXPECT_EQ(run(acl, allowed), ppe::Verdict::forward);
}

TEST(AclFirewall, PuntActionReachesControlPlane) {
  AclFirewall acl;
  AclRuleSpec rule;
  rule.dst = net::Ipv4Prefix::parse("192.0.2.1/32");
  rule.action = AclAction::punt;
  ASSERT_GT(acl.add_rule(rule), 0u);
  auto packet = udp_packet(ip(1, 1, 1, 1), ip(192, 0, 2, 1), 1, 2);
  EXPECT_EQ(run(acl, packet), ppe::Verdict::to_control_plane);
}

TEST(AclFirewall, ExpansionIsAllOrNothingAtCapacity) {
  AclConfig config;
  config.rule_capacity = 4;
  AclFirewall acl(config);
  AclRuleSpec wide;
  wide.dst_port_range = {{1000, 1999}};  // expands to > 4 entries
  wide.action = AclAction::deny;
  EXPECT_EQ(acl.add_rule(wide), 0u);
  EXPECT_EQ(acl.rules().size(), 0u);  // nothing partially installed
}

TEST(AclFirewall, NonIpTrafficGetsDefaultAction) {
  AclConfig config;
  config.default_action = AclAction::deny;
  AclFirewall acl(config);
  net::Bytes frame(64, 0);
  net::EthernetHeader eth;
  eth.ether_type = static_cast<std::uint16_t>(net::EtherType::arp);
  eth.serialize_to(frame, 0);
  net::Packet packet{frame};
  EXPECT_EQ(run(acl, packet), ppe::Verdict::drop);
}

TEST(AclFirewall, ClearRulesRestoresDefaultOnly) {
  AclFirewall acl;
  AclRuleSpec rule;
  rule.src = net::Ipv4Prefix::parse("10.0.0.0/8");
  rule.action = AclAction::deny;
  acl.add_rule(rule);
  acl.clear_rules();
  auto packet = udp_packet(ip(10, 1, 1, 1), ip(2, 2, 2, 2), 1, 2);
  EXPECT_EQ(run(acl, packet), ppe::Verdict::forward);
}

TEST(AclFirewall, PackKeyLayout) {
  const net::FiveTuple t{ip(1, 2, 3, 4), ip(5, 6, 7, 8), 0x1111, 0x2222, 17};
  const auto key = AclFirewall::pack_key(t);
  EXPECT_EQ(key.hi, 0x0102030405060708ull);
  EXPECT_EQ(key.lo, (0x1111ull << 24) | (0x2222ull << 8) | 17);
}

TEST(AclFirewall, SrcPortRangeMatches) {
  AclFirewall acl;
  AclRuleSpec rule;
  rule.src_port_range = {{0, 1023}};  // privileged source ports
  rule.action = AclAction::deny;
  ASSERT_GT(acl.add_rule(rule), 0u);
  auto privileged = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 512, 9999);
  auto ephemeral = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 50000, 9999);
  EXPECT_EQ(run(acl, privileged), ppe::Verdict::drop);
  EXPECT_EQ(run(acl, ephemeral), ppe::Verdict::forward);
}

TEST(AclConfig, SerializeParseRoundTrip) {
  AclConfig config;
  config.default_action = AclAction::deny;
  config.rule_capacity = 77;
  const auto parsed = AclConfig::parse(config.serialize());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->default_action, AclAction::deny);
  EXPECT_EQ(parsed->rule_capacity, 77u);
  EXPECT_FALSE(AclConfig::parse(net::Bytes{5, 0, 0, 0, 1}).has_value());
}

}  // namespace
}  // namespace flexsfp::apps
