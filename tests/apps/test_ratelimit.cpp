#include "apps/rate_limiter.hpp"

#include <gtest/gtest.h>

#include "app_test_util.hpp"

namespace flexsfp::apps {
namespace {

using testing::ip;
using testing::udp_packet;

// Run a packet with an explicit arrival time.
ppe::Verdict run_at(RateLimiter& limiter, net::Packet& packet,
                    std::int64_t now_ps) {
  packet.set_ingress_time_ps(now_ps);
  ppe::PacketContext ctx(packet);
  return limiter.process(ctx);
}

TEST(RateLimiter, UnmatchedTrafficUnlimitedByDefault) {
  RateLimiter limiter;
  for (int i = 0; i < 100; ++i) {
    auto packet = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2, 1000);
    EXPECT_EQ(run_at(limiter, packet, i), ppe::Verdict::forward);
  }
  EXPECT_EQ(limiter.policed(), 0u);
}

TEST(RateLimiter, BurstThenPolice) {
  RateLimiter limiter;
  // Subscriber with 8 Mb/s and a 2,000-byte burst.
  ASSERT_TRUE(limiter.add_subscriber(*net::Ipv4Prefix::parse("10.0.0.0/24"),
                                     {8'000'000, 2000}));
  int forwarded = 0;
  int dropped = 0;
  for (int i = 0; i < 10; ++i) {
    auto packet = udp_packet(ip(10, 0, 0, 5), ip(2, 2, 2, 2), 1, 2, 400);
    // All at t=0: only the burst allowance passes.
    if (run_at(limiter, packet, 0) == ppe::Verdict::forward) {
      ++forwarded;
    } else {
      ++dropped;
    }
  }
  // ~2000 bytes of burst at ~458-byte frames -> 4 packets pass.
  EXPECT_EQ(forwarded, 4);
  EXPECT_EQ(dropped, 6);
  EXPECT_EQ(limiter.policed(), 6u);
}

TEST(RateLimiter, TokensRefillOverTime) {
  RateLimiter limiter;
  ASSERT_TRUE(limiter.add_subscriber(*net::Ipv4Prefix::parse("10.0.0.0/24"),
                                     {8'000'000, 500}));
  auto first = udp_packet(ip(10, 0, 0, 1), ip(2, 2, 2, 2), 1, 2, 400);
  EXPECT_EQ(run_at(limiter, first, 0), ppe::Verdict::forward);
  auto second = udp_packet(ip(10, 0, 0, 1), ip(2, 2, 2, 2), 1, 2, 400);
  EXPECT_EQ(run_at(limiter, second, 1), ppe::Verdict::drop);  // bucket empty
  // 8 Mb/s = 1 MB/s = 1 byte/us: after 500 us the bucket holds 500 bytes.
  auto third = udp_packet(ip(10, 0, 0, 1), ip(2, 2, 2, 2), 1, 2, 400);
  EXPECT_EQ(run_at(limiter, third, 500'000'000), ppe::Verdict::forward);
}

TEST(RateLimiter, LongRunRateConvergesToConfigured) {
  RateLimiter limiter;
  const std::uint64_t rate_bps = 80'000'000;  // 10 MB/s
  ASSERT_TRUE(limiter.add_subscriber(*net::Ipv4Prefix::parse("10.0.0.0/24"),
                                     {rate_bps, 10'000}));
  // Offer 2x the rate for 100 ms; measure what conforms.
  std::uint64_t conformed_bytes = 0;
  const std::size_t frame = 1000;
  const std::int64_t gap_ps = 50'000'000 / 1250;  // 2x offered load...
  std::int64_t now = 0;
  const std::int64_t end = 100'000'000'000;  // 100 ms
  while (now < end) {
    auto packet = udp_packet(ip(10, 0, 0, 9), ip(2, 2, 2, 2), 1, 2,
                             frame - 42);
    if (run_at(limiter, packet, now) == ppe::Verdict::forward) {
      conformed_bytes += packet.size();
    }
    now += gap_ps * 1000;
  }
  const double measured_bps = double(conformed_bytes) * 8.0 / 0.1;
  EXPECT_NEAR(measured_bps, double(rate_bps), double(rate_bps) * 0.1);
}

TEST(RateLimiter, PerSubscriberIsolation) {
  RateLimiter limiter;
  ASSERT_TRUE(limiter.add_subscriber(*net::Ipv4Prefix::parse("10.0.1.0/24"),
                                     {8'000'000, 1000}));
  ASSERT_TRUE(limiter.add_subscriber(*net::Ipv4Prefix::parse("10.0.2.0/24"),
                                     {8'000'000, 1000}));
  // Exhaust subscriber 1's bucket.
  for (int i = 0; i < 5; ++i) {
    auto p = udp_packet(ip(10, 0, 1, 1), ip(2, 2, 2, 2), 1, 2, 400);
    (void)run_at(limiter, p, 0);
  }
  // Subscriber 2 is unaffected.
  auto p2 = udp_packet(ip(10, 0, 2, 1), ip(2, 2, 2, 2), 1, 2, 400);
  EXPECT_EQ(run_at(limiter, p2, 0), ppe::Verdict::forward);
}

TEST(RateLimiter, DefaultBucketPolicesUnmatchedWhenConfigured) {
  RateLimiterConfig config;
  config.default_spec = {8'000'000, 500};
  RateLimiter limiter(config);
  auto first = udp_packet(ip(99, 0, 0, 1), ip(2, 2, 2, 2), 1, 2, 400);
  EXPECT_EQ(run_at(limiter, first, 0), ppe::Verdict::forward);
  auto second = udp_packet(ip(99, 0, 0, 2), ip(2, 2, 2, 2), 1, 2, 400);
  EXPECT_EQ(run_at(limiter, second, 0), ppe::Verdict::drop);
}

TEST(RateLimiter, RemoveSubscriberFreesSlot) {
  RateLimiterConfig config;
  config.max_subscribers = 1;
  RateLimiter limiter(config);
  const auto p1 = *net::Ipv4Prefix::parse("10.0.1.0/24");
  const auto p2 = *net::Ipv4Prefix::parse("10.0.2.0/24");
  ASSERT_TRUE(limiter.add_subscriber(p1, {1000, 100}));
  EXPECT_FALSE(limiter.add_subscriber(p2, {1000, 100}));
  ASSERT_TRUE(limiter.remove_subscriber(p1));
  EXPECT_TRUE(limiter.add_subscriber(p2, {1000, 100}));
}

TEST(RateLimiter, RemoveOuterPrefixLeavesNestedSubscriberIntact) {
  // Regression: remove_subscriber() used to resolve the prefix with an LPM
  // walk on its base address, so removing 10.0.0.0/8 while 10.0.0.0/24 was
  // also subscribed found the /24's slot — wiping the wrong subscriber.
  RateLimiter limiter;
  ASSERT_TRUE(limiter.add_subscriber(*net::Ipv4Prefix::parse("10.0.0.0/8"),
                                     {8'000'000, 100'000}));
  ASSERT_TRUE(limiter.add_subscriber(*net::Ipv4Prefix::parse("10.0.0.0/24"),
                                     {8'000'000, 1000}));
  // Exhaust the /24 bucket.
  for (int i = 0; i < 5; ++i) {
    auto p = udp_packet(ip(10, 0, 0, 1), ip(2, 2, 2, 2), 1, 2, 400);
    (void)run_at(limiter, p, 0);
  }
  auto drained = udp_packet(ip(10, 0, 0, 1), ip(2, 2, 2, 2), 1, 2, 400);
  ASSERT_EQ(run_at(limiter, drained, 0), ppe::Verdict::drop);

  ASSERT_TRUE(
      limiter.remove_subscriber(*net::Ipv4Prefix::parse("10.0.0.0/8")));
  // The /24 is untouched: same slot, same drained bucket.
  auto still_drained = udp_packet(ip(10, 0, 0, 1), ip(2, 2, 2, 2), 1, 2, 400);
  EXPECT_EQ(run_at(limiter, still_drained, 0), ppe::Verdict::drop);
  // Traffic the /8 used to cover is now unmatched (unlimited by default).
  auto outside = udp_packet(ip(10, 99, 0, 1), ip(2, 2, 2, 2), 1, 2, 400);
  EXPECT_EQ(run_at(limiter, outside, 0), ppe::Verdict::forward);
}

TEST(RateLimiter, RemoveMissingOuterPrefixFailsWithoutTouchingNested) {
  // Regression: the LPM walk also made removal of a *never-added* /8 hit
  // the nested /24 and report success.
  RateLimiter limiter;
  ASSERT_TRUE(limiter.add_subscriber(*net::Ipv4Prefix::parse("10.0.0.0/24"),
                                     {8'000'000, 1000}));
  EXPECT_FALSE(
      limiter.remove_subscriber(*net::Ipv4Prefix::parse("10.0.0.0/8")));
  // The /24 still polices.
  for (int i = 0; i < 5; ++i) {
    auto p = udp_packet(ip(10, 0, 0, 1), ip(2, 2, 2, 2), 1, 2, 400);
    (void)run_at(limiter, p, 0);
  }
  EXPECT_GT(limiter.policed(), 0u);
}

TEST(RateLimiter, ReusedSlotStartsWithAFreshBucket) {
  RateLimiterConfig config;
  config.max_subscribers = 1;
  RateLimiter limiter(config);
  ASSERT_TRUE(limiter.add_subscriber(*net::Ipv4Prefix::parse("10.0.1.0/24"),
                                     {8'000'000, 1000}));
  // Drain the only slot's bucket, then recycle the slot.
  for (int i = 0; i < 5; ++i) {
    auto p = udp_packet(ip(10, 0, 1, 1), ip(2, 2, 2, 2), 1, 2, 400);
    (void)run_at(limiter, p, 0);
  }
  ASSERT_TRUE(
      limiter.remove_subscriber(*net::Ipv4Prefix::parse("10.0.1.0/24")));
  ASSERT_TRUE(limiter.add_subscriber(*net::Ipv4Prefix::parse("10.0.2.0/24"),
                                     {8'000'000, 1000}));
  // The new subscriber gets its full burst, not the drained bucket.
  auto p = udp_packet(ip(10, 0, 2, 1), ip(2, 2, 2, 2), 1, 2, 400);
  EXPECT_EQ(run_at(limiter, p, 0), ppe::Verdict::forward);
}

TEST(RateLimiter, NonIpv4Forwarded) {
  RateLimiter limiter;
  net::Bytes frame(64, 0);
  net::EthernetHeader eth;
  eth.ether_type = static_cast<std::uint16_t>(net::EtherType::arp);
  eth.serialize_to(frame, 0);
  net::Packet packet{frame};
  ppe::PacketContext ctx(packet);
  EXPECT_EQ(limiter.process(ctx), ppe::Verdict::forward);
}

TEST(RateLimiterConfig, SerializeParseRoundTrip) {
  RateLimiterConfig config;
  config.max_subscribers = 33;
  config.default_spec = {123456, 789};
  const auto parsed = RateLimiterConfig::parse(config.serialize());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->max_subscribers, 33u);
  EXPECT_EQ(parsed->default_spec.rate_bps, 123456u);
  EXPECT_EQ(parsed->default_spec.burst_bytes, 789u);
}

}  // namespace
}  // namespace flexsfp::apps
