#include "apps/fault_monitor.hpp"

#include <gtest/gtest.h>

#include "app_test_util.hpp"

namespace flexsfp::apps {
namespace {

using testing::ip;
using testing::udp_packet;

ppe::Verdict run_at(FaultMonitor& monitor, std::int64_t now_ps,
                    std::size_t payload = 1400) {
  auto packet = udp_packet(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2, payload);
  packet.set_ingress_time_ps(now_ps);
  ppe::PacketContext ctx(packet);
  return monitor.process(ctx);
}

TEST(FaultMonitor, AlwaysForwards) {
  FaultMonitor monitor;
  EXPECT_EQ(run_at(monitor, 0), ppe::Verdict::forward);
}

TEST(FaultMonitor, DetectsMicroburst) {
  FaultMonitorConfig config;
  config.burst_window_ps = 100'000'000;         // 100 us windows
  config.burst_threshold_bps = 8'000'000'000;   // 80% of 10G
  FaultMonitor monitor(config);

  // Saturate one window: 1442+24 wire bytes every ~1.2 us ~ 9.9 Gb/s.
  std::int64_t now = 0;
  while (now < 150'000'000) {  // run past the window boundary
    (void)run_at(monitor, now);
    now += 1'200'000;
  }
  EXPECT_GE(monitor.microbursts_detected(), 1u);
  EXPECT_GT(monitor.peak_window_bps(), 8e9);
}

TEST(FaultMonitor, LowRateTrafficIsNotABurst) {
  FaultMonitor monitor;
  // One packet per ms: ~12 Mb/s.
  for (int i = 0; i < 50; ++i) {
    (void)run_at(monitor, std::int64_t(i) * 1'000'000'000);
  }
  EXPECT_EQ(monitor.microbursts_detected(), 0u);
}

TEST(FaultMonitor, DetectsSilenceGap) {
  FaultMonitorConfig config;
  config.silence_threshold_ps = 10'000'000'000;  // 10 ms
  FaultMonitor monitor(config);
  (void)run_at(monitor, 0);
  (void)run_at(monitor, 1'000'000);          // 1 us later: fine
  (void)run_at(monitor, 50'000'000'000);     // 50 ms gap: silence event
  EXPECT_EQ(monitor.silence_events(), 1u);
}

TEST(FaultMonitor, FirstPacketIsNotASilenceEvent) {
  FaultMonitor monitor;
  (void)run_at(monitor, 99'000'000'000'000);  // very late first packet
  EXPECT_EQ(monitor.silence_events(), 0u);
}

TEST(FaultMonitor, CountersExposeEvents) {
  FaultMonitorConfig config;
  config.silence_threshold_ps = 1'000'000;
  FaultMonitor monitor(config);
  (void)run_at(monitor, 0);
  (void)run_at(monitor, 10'000'000);
  const auto counters = monitor.counters();
  ASSERT_EQ(counters.size(), 3u);
  EXPECT_EQ(counters[0].packets, 2u);  // observed
  EXPECT_EQ(counters[2].packets, 1u);  // silences
}

TEST(FaultMonitorConfig, SerializeParseRoundTrip) {
  FaultMonitorConfig config;
  config.burst_window_ps = 123;
  config.burst_threshold_bps = 456;
  config.silence_threshold_ps = 789;
  const auto parsed = FaultMonitorConfig::parse(config.serialize());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->burst_window_ps, 123);
  EXPECT_EQ(parsed->burst_threshold_bps, 456u);
  EXPECT_EQ(parsed->silence_threshold_ps, 789);
  EXPECT_FALSE(FaultMonitorConfig::parse(net::Bytes(4, 0)).has_value());
}

}  // namespace
}  // namespace flexsfp::apps
