#include "hw/resources.hpp"

#include <gtest/gtest.h>

#include "apps/nat.hpp"
#include "hw/device.hpp"
#include "hw/resource_model.hpp"

namespace flexsfp::hw {
namespace {

TEST(ResourceUsage, AdditionComposes) {
  const ResourceUsage a{100, 200, 3, 4};
  const ResourceUsage b{10, 20, 1, 2};
  const ResourceUsage sum = a + b;
  EXPECT_EQ(sum.luts, 110u);
  EXPECT_EQ(sum.ffs, 220u);
  EXPECT_EQ(sum.usram_blocks, 4u);
  EXPECT_EQ(sum.lsram_blocks, 6u);
}

TEST(ResourceUsage, ScaledRoundsUp) {
  const ResourceUsage u{10, 10, 1, 1};
  const ResourceUsage scaled = u.scaled(1.25);
  EXPECT_EQ(scaled.luts, 13u);
  EXPECT_EQ(scaled.usram_blocks, 2u);
}

TEST(ResourceUsage, MemoryBitsArithmetic) {
  const ResourceUsage u{0, 0, 2, 3};
  EXPECT_EQ(u.usram_bits(), 2u * 64 * 12);
  EXPECT_EQ(u.lsram_bits(), 3u * 20 * 1024);
  EXPECT_EQ(u.total_memory_bits(), u.usram_bits() + u.lsram_bits());
}

TEST(MemoryMapping, BlockCeilings) {
  EXPECT_EQ(lsram_blocks_for_bits(1), 1u);
  EXPECT_EQ(lsram_blocks_for_bits(20 * 1024), 1u);
  EXPECT_EQ(lsram_blocks_for_bits(20 * 1024 + 1), 2u);
  EXPECT_EQ(usram_blocks_for_bits(768), 1u);
  EXPECT_EQ(usram_blocks_for_bits(769), 2u);
}

TEST(ResourceBreakdown, TotalsAndMerge) {
  ResourceBreakdown a;
  a.add("x", {1, 2, 3, 4});
  a.add("y", {10, 20, 30, 40});
  EXPECT_EQ(a.total().luts, 11u);

  ResourceBreakdown b;
  b.add("z", {100, 0, 0, 0});
  b.merge("a/", a);
  EXPECT_EQ(b.components().size(), 3u);
  EXPECT_EQ(b.components()[1].name, "a/x");
  EXPECT_EQ(b.total().luts, 111u);
}

// --- Table 1 calibration ----------------------------------------------------

TEST(Table1Calibration, FixedBlocksMatchPaperExactly) {
  EXPECT_EQ(ResourceModel::miv_rv32(), (ResourceUsage{8696, 376, 6, 4}));
  EXPECT_EQ(ResourceModel::ethernet_iface_electrical(),
            (ResourceUsage{6824, 6924, 118, 0}));
  EXPECT_EQ(ResourceModel::ethernet_iface_optical(),
            (ResourceUsage{6813, 6924, 118, 0}));
}

TEST(Table1Calibration, NatMemoryBlocksMatchPaperExactly) {
  const apps::StaticNat nat;
  const auto usage = nat.resource_usage(DatapathConfig{});
  // 32,768 entries x 100 bits -> exactly 160 LSRAM blocks (paper value);
  // three 128x72 stream FIFOs -> exactly 36 uSRAM blocks (paper value).
  EXPECT_EQ(usage.lsram_blocks, 160u);
  EXPECT_EQ(usage.usram_blocks, 36u);
}

TEST(Table1Calibration, NatLogicWithinOnePercentOfPaper) {
  const apps::StaticNat nat;
  const auto usage = nat.resource_usage(DatapathConfig{});
  EXPECT_NEAR(double(usage.luts), 9122.0, 9122.0 * 0.01);
  EXPECT_NEAR(double(usage.ffs), 11294.0, 11294.0 * 0.01);
}

TEST(Table1Calibration, FullDesignUtilizationMatchesPaperPercentages) {
  const apps::StaticNat nat;
  const auto total = ResourceModel::miv_rv32() +
                     ResourceModel::ethernet_iface_electrical() +
                     ResourceModel::ethernet_iface_optical() +
                     nat.resource_usage(DatapathConfig{});
  const auto device = FpgaDevice::mpf200t();
  const auto util = device.utilization(total);
  // Paper: 16% LUT, 13% FF, 15% uSRAM, 26% LSRAM.
  EXPECT_NEAR(util.luts_pct, 16.0, 1.0);
  EXPECT_NEAR(util.ffs_pct, 13.0, 1.0);
  EXPECT_NEAR(util.usram_pct, 15.0, 1.0);
  EXPECT_NEAR(util.lsram_pct, 26.0, 1.0);
  EXPECT_TRUE(device.fits(total));
}

TEST(ResourceModel, TableMemoryScalesWithEntries) {
  const auto small = ResourceModel::exact_match_table(1024, 32, 64);
  const auto large = ResourceModel::exact_match_table(65536, 32, 64);
  EXPECT_LT(small.lsram_blocks, large.lsram_blocks);
  EXPECT_EQ(large.lsram_blocks, lsram_blocks_for_bits(65536ull * 100));
  // Control logic does not scale with entry count (only entry width).
  EXPECT_EQ(small.luts, large.luts);
}

TEST(ResourceModel, TernaryScalesWithRules) {
  const auto r64 = ResourceModel::ternary_table(64, 104);
  const auto r256 = ResourceModel::ternary_table(256, 104);
  EXPECT_GT(r256.luts, 3 * r64.luts / 1);
  EXPECT_GT(r256.ffs, r64.ffs);
  EXPECT_EQ(r64.lsram_blocks, 0u);  // TCAM emulation lives in fabric
}

TEST(ResourceModel, ScaledInterfaceGrowsSubLinearlyInLogic) {
  const auto base = ResourceModel::ethernet_iface_scaled(10);
  const auto at100 = ResourceModel::ethernet_iface_scaled(100);
  EXPECT_EQ(base, ResourceModel::ethernet_iface_electrical());
  // Logic grows sub-linearly (10x rate -> ~7x logic), memory with the
  // bandwidth-delay product.
  EXPECT_GT(at100.luts, 5 * base.luts);
  EXPECT_LT(at100.luts, 10 * base.luts);
  EXPECT_GT(at100.usram_blocks, base.usram_blocks);
}

TEST(ResourceModel, WiderDatapathCostsMoreLogic) {
  const auto narrow = ResourceModel::deparser(64);
  const auto wide = ResourceModel::deparser(512);
  EXPECT_EQ(wide.luts, 8 * narrow.luts);
}

}  // namespace
}  // namespace flexsfp::hw
