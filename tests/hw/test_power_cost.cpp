#include <gtest/gtest.h>

#include "apps/nat.hpp"
#include "hw/cost_model.hpp"
#include "hw/power_model.hpp"
#include "hw/resource_model.hpp"

namespace flexsfp::hw {
namespace {

ResourceUsage nat_design_total() {
  const apps::StaticNat nat;
  return ResourceModel::miv_rv32() + ResourceModel::ethernet_iface_electrical() +
         ResourceModel::ethernet_iface_optical() +
         nat.resource_usage(DatapathConfig{});
}

TEST(PowerModel, NicBaselineMatchesPaper) {
  EXPECT_DOUBLE_EQ(PowerModel::nic_base_watts(), 3.800);
}

TEST(PowerModel, StandardSfpAtLineRateMatchesPaper) {
  // Paper: 4.693 W - 3.800 W = 0.893 W at line-rate stress.
  const auto breakdown = PowerModel::standard_sfp(1.0);
  EXPECT_NEAR(breakdown.total(), 0.893, 0.01);
  EXPECT_DOUBLE_EQ(breakdown.fpga_static_w, 0.0);
}

TEST(PowerModel, FlexSfpAtLineRateMatchesPaper) {
  // Paper: 5.320 W - 3.800 W ~ 1.52 W with the NAT design at line rate.
  const auto breakdown = PowerModel::flexsfp(
      FpgaDevice::mpf200t(), nat_design_total(), clock_156_25_mhz, 1.0);
  EXPECT_NEAR(breakdown.total(), 1.52, 0.05);
  // And the FPGA delta alone is ~0.63 W (paper: ~0.627 W).
  EXPECT_NEAR(breakdown.fpga_static_w + breakdown.fpga_dynamic_w, 0.627, 0.05);
}

TEST(PowerModel, StaysWithinSfpEnvelope) {
  // §2: FlexSFP is designed to stay within the 1-3 W transceiver envelope.
  const auto breakdown = PowerModel::flexsfp(
      FpgaDevice::mpf200t(), nat_design_total(), clock_156_25_mhz, 1.0);
  EXPECT_GT(breakdown.total(), 1.0);
  EXPECT_LT(breakdown.total(), 3.0);
}

TEST(PowerModel, IdleDrawsLessThanLineRate) {
  const auto idle = PowerModel::flexsfp(FpgaDevice::mpf200t(),
                                        nat_design_total(),
                                        clock_156_25_mhz, 0.0);
  const auto busy = PowerModel::flexsfp(FpgaDevice::mpf200t(),
                                        nat_design_total(),
                                        clock_156_25_mhz, 1.0);
  EXPECT_LT(idle.total(), busy.total());
}

TEST(PowerModel, DynamicPowerScalesWithClock) {
  const auto usage = nat_design_total();
  const double base =
      PowerModel::fpga_dynamic_watts(usage, clock_156_25_mhz);
  const double doubled =
      PowerModel::fpga_dynamic_watts(usage, ClockDomain::mhz(312.5));
  EXPECT_NEAR(doubled, 2.0 * base, 1e-9);
}

TEST(PowerModel, StaticScalesWithDeviceSize) {
  EXPECT_LT(PowerModel::fpga_static_watts(FpgaDevice::mpf100t()),
            PowerModel::fpga_static_watts(FpgaDevice::mpf500t()));
}

// --- Table 3 -----------------------------------------------------------------

TEST(CostModel, BomSumsToPaperBand) {
  // "direct production cost around $300 per unit, with potential
  // reductions toward $250".
  const auto cost = flexsfp_unit_cost();
  EXPECT_GE(cost.lo, 250.0);
  EXPECT_LE(cost.hi, 320.0);
}

TEST(CostModel, BomDominatedByFpga) {
  const auto bom = flexsfp_bom();
  double max_item = 0;
  std::string max_name;
  for (const auto& item : bom) {
    if (item.unit_cost.hi > max_item) {
      max_item = item.unit_cost.hi;
      max_name = item.name;
    }
  }
  EXPECT_NE(max_name.find("FPGA"), std::string::npos);
}

TEST(Table3, RowsMatchPaperValues) {
  const auto rows = table3_platforms();
  ASSERT_EQ(rows.size(), 4u);

  // DPU (BF-2): 300-400 $/10G, 15 W/10G.
  EXPECT_NEAR(rows[0].cost_per_10g().lo, 300, 1);
  EXPECT_NEAR(rows[0].cost_per_10g().hi, 400, 1);
  EXPECT_NEAR(rows[0].power_per_10g_hi(), 15, 0.1);

  // Many-core: 100-150 $/10G, 5 W/10G.
  EXPECT_NEAR(rows[1].cost_per_10g().lo, 100, 1);
  EXPECT_NEAR(rows[1].cost_per_10g().hi, 150, 1);
  EXPECT_NEAR(rows[1].power_per_10g_hi(), 5, 0.1);

  // FPGA NIC: 200-400 $/10G, 7-10 W/10G (approximately).
  EXPECT_NEAR(rows[2].cost_per_10g().lo, 200, 1);
  EXPECT_NEAR(rows[2].cost_per_10g().hi, 400, 1);
  EXPECT_GE(rows[2].power_per_10g_lo(), 6.0);
  EXPECT_LE(rows[2].power_per_10g_hi(), 11.0);

  // FlexSFP: 250-300 $/10G, 1.5 W/10G.
  EXPECT_NEAR(rows[3].cost_per_10g().lo, 250, 1);
  EXPECT_NEAR(rows[3].cost_per_10g().hi, 300, 1);
  EXPECT_NEAR(rows[3].power_per_10g_hi(), 1.5, 0.01);
}

TEST(Table3, FlexSfpWinsPowerByAnOrderOfMagnitude) {
  // The paper's headline: "an order-of-magnitude power reduction".
  const auto rows = table3_platforms();
  const double flexsfp_w = rows[3].power_per_10g_hi();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(rows[i].power_per_10g_lo() / flexsfp_w, 3.0) << rows[i].name;
  }
  EXPECT_GE(rows[0].power_per_10g_hi() / flexsfp_w, 10.0);
}

TEST(UsdRange, FormattingAndArithmetic) {
  UsdRange r{100, 200};
  r += UsdRange{10, 20};
  EXPECT_DOUBLE_EQ(r.lo, 110);
  EXPECT_DOUBLE_EQ(r.hi, 220);
  EXPECT_EQ(r.scaled(0.5).to_string(), "$55-110");
  EXPECT_EQ((UsdRange{42, 42}).to_string(), "$42");
}

}  // namespace
}  // namespace flexsfp::hw
