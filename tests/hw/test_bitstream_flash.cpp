#include <gtest/gtest.h>

#include "hw/bitstream.hpp"
#include "hw/spi_flash.hpp"

namespace flexsfp::hw {
namespace {

const AuthKey key{0x1234567890abcdef};

TEST(Bitstream, SerializeParseRoundTrip) {
  const auto original =
      Bitstream::create("nat", net::Bytes{1, 2, 3, 4}, key, /*version=*/7);
  const auto wire = original.serialize();
  const auto parsed = Bitstream::parse(wire);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->app_name(), "nat");
  EXPECT_EQ(parsed->config(), (net::Bytes{1, 2, 3, 4}));
  EXPECT_EQ(parsed->version(), 7u);
  EXPECT_EQ(parsed->auth_tag(), original.auth_tag());
}

TEST(Bitstream, VerifyAcceptsCorrectKeyOnly) {
  const auto bitstream = Bitstream::create("acl", {9, 9}, key);
  EXPECT_TRUE(bitstream.verify(key));
  EXPECT_FALSE(bitstream.verify(AuthKey{0xdeadbeef}));
}

TEST(Bitstream, CorruptionDetectedByCrc) {
  auto wire = Bitstream::create("nat", net::Bytes(100, 0x5a), key).serialize();
  wire[20] ^= 0x01;
  EXPECT_FALSE(Bitstream::parse(wire).has_value());
}

TEST(Bitstream, TamperedConfigFailsAuthentication) {
  // Rebuild a *valid* container (correct CRC) around altered config: CRC
  // passes, the keyed tag must not.
  const auto original = Bitstream::create("nat", {1, 2, 3}, key);
  auto forged = Bitstream::create("nat", {1, 2, 4}, AuthKey{0});  // wrong key
  const auto reparsed = Bitstream::parse(forged.serialize());
  ASSERT_TRUE(reparsed);
  EXPECT_FALSE(reparsed->verify(key));
  (void)original;
}

TEST(Bitstream, ParseRejectsTruncatedAndGarbage) {
  EXPECT_FALSE(Bitstream::parse(net::Bytes{}).has_value());
  EXPECT_FALSE(Bitstream::parse(net::Bytes(10, 0)).has_value());
  EXPECT_FALSE(Bitstream::parse(net::Bytes(64, 0xff)).has_value());
}

TEST(Bitstream, FlashSizeIncludesShellImage) {
  const auto bitstream = Bitstream::create("nat", net::Bytes(100, 0), key);
  EXPECT_GT(bitstream.flash_size_bytes(), 2u * 1024 * 1024);
}

TEST(SpiFlash, SlotGeometry128Mb) {
  SpiFlash flash(4);
  EXPECT_EQ(flash.slot_count(), 4u);
  EXPECT_EQ(flash.slot_capacity_bytes(), 128ull * 1024 * 1024 / 8 / 4);
}

TEST(SpiFlash, WriteReadBack) {
  SpiFlash flash;
  const auto image = Bitstream::create("vlan", {1}, key);
  const auto duration = flash.write(2, image);
  ASSERT_TRUE(duration);
  EXPECT_GT(*duration, 0);
  const auto readback = flash.read(2);
  ASSERT_TRUE(readback);
  EXPECT_EQ(readback->app_name(), "vlan");
  EXPECT_TRUE(readback->verify(key));
}

TEST(SpiFlash, InvalidSlotRejected) {
  SpiFlash flash(2);
  const auto image = Bitstream::create("nat", {}, key);
  EXPECT_FALSE(flash.write(2, image).has_value());
  EXPECT_FALSE(flash.read(5).has_value());
}

TEST(SpiFlash, EraseCyclesTracked) {
  SpiFlash flash;
  const auto image = Bitstream::create("nat", {}, key);
  EXPECT_EQ(flash.erase_cycles(1), 0u);
  (void)flash.write(1, image);
  (void)flash.write(1, image);
  EXPECT_EQ(flash.erase_cycles(1), 2u);
}

TEST(SpiFlash, ProgramTimeScalesWithSize) {
  const auto small = SpiFlash::program_time(4096);
  const auto large = SpiFlash::program_time(2 * 1024 * 1024);
  EXPECT_GT(large, 100 * small / 2);
  // A ~2 MiB image takes 10s of seconds of erase+program, not microseconds.
  EXPECT_GT(large, 1'000'000'000'000ll / 100);  // > 10 ms
}

TEST(KeyedTag, SensitiveToKeyAndPayload) {
  const net::Bytes payload{1, 2, 3};
  EXPECT_NE(keyed_tag(AuthKey{1}, payload), keyed_tag(AuthKey{2}, payload));
  EXPECT_NE(keyed_tag(AuthKey{1}, payload),
            keyed_tag(AuthKey{1}, net::Bytes{1, 2, 4}));
  EXPECT_EQ(keyed_tag(AuthKey{1}, payload), keyed_tag(AuthKey{1}, payload));
}

}  // namespace
}  // namespace flexsfp::hw
