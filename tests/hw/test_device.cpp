#include "hw/device.hpp"

#include <gtest/gtest.h>

#include "hw/design_catalog.hpp"

namespace flexsfp::hw {
namespace {

TEST(FpgaDevice, Mpf200tMatchesPaperAvailRow) {
  const auto device = FpgaDevice::mpf200t();
  EXPECT_EQ(device.capacity().luts, 192408u);
  EXPECT_EQ(device.capacity().ffs, 192408u);
  EXPECT_EQ(device.capacity().usram_blocks, 1764u);
  EXPECT_EQ(device.capacity().lsram_blocks, 616u);
  // "includes 13.3Mb of on-chip SRAM" — within a few percent.
  EXPECT_NEAR(double(device.capacity().total_sram_kbits()), 13300.0, 500.0);
}

TEST(FpgaDevice, FamilyOrderedBySize) {
  const auto family = FpgaDevice::polarfire_family();
  ASSERT_EQ(family.size(), 4u);
  for (std::size_t i = 1; i < family.size(); ++i) {
    EXPECT_GT(family[i].capacity().luts, family[i - 1].capacity().luts);
  }
}

TEST(FpgaDevice, ByNameLookup) {
  EXPECT_TRUE(FpgaDevice::by_name("MPF300T").has_value());
  EXPECT_FALSE(FpgaDevice::by_name("XCVU9P").has_value());
}

TEST(FpgaDevice, FitsChecksEveryDimension) {
  const auto device = FpgaDevice::mpf200t();
  EXPECT_TRUE(device.fits({192408, 192408, 1764, 616}));
  EXPECT_FALSE(device.fits({192409, 0, 0, 0}));
  EXPECT_FALSE(device.fits({0, 192409, 0, 0}));
  EXPECT_FALSE(device.fits({0, 0, 1765, 0}));
  EXPECT_FALSE(device.fits({0, 0, 0, 617}));
}

TEST(UtilizationReport, WorstPicksMax) {
  const auto device = FpgaDevice::mpf200t();
  const auto util = device.utilization({19240, 19240, 176, 308});
  EXPECT_NEAR(util.worst(), 50.0, 0.5);  // LSRAM dominates
}

// --- Table 2 ---------------------------------------------------------------

TEST(Table2, NormalizedLeEquivalentsMatchPaper) {
  const auto designs = table2_designs();
  ASSERT_EQ(designs.size(), 4u);
  // FlowBlaze: 71,712 LUT6 x 1.6 ~ 115k LE.
  EXPECT_NEAR(double(designs[0].logic_le_equivalent()), 115e3, 1.5e3);
  // Pigasus: 207,960 ALM x 2 ~ 416k LE.
  EXPECT_NEAR(double(designs[1].logic_le_equivalent()), 416e3, 1e3);
  // hXDP: 68,689 LUT6 x 1.6 ~ 109-110k LE.
  EXPECT_NEAR(double(designs[2].logic_le_equivalent()), 109.9e3, 1.5e3);
  // ClickNP IPSec: 242,592 LUT6 x 1.6 ~ 388k LE.
  EXPECT_NEAR(double(designs[3].logic_le_equivalent()), 388e3, 1.5e3);
}

TEST(Table2, FitVerdictsAgainstMpf200t) {
  const auto device = FpgaDevice::mpf200t();
  const auto designs = table2_designs();
  // FlowBlaze single stage: logic fits (115k < 192k) but its 14.1 Mb BRAM
  // exceeds the 13.3 Mb on chip.
  const auto flowblaze = check_fit(designs[0], device);
  EXPECT_TRUE(flowblaze.logic_fits);
  EXPECT_FALSE(flowblaze.bram_fits);
  // Pigasus: nowhere close.
  const auto pigasus = check_fit(designs[1], device);
  EXPECT_FALSE(pigasus.logic_fits);
  EXPECT_FALSE(pigasus.bram_fits);
  // hXDP single core: fits on both axes.
  const auto hxdp = check_fit(designs[2], device);
  EXPECT_TRUE(hxdp.fits());
  // ClickNP IPSec gateway: logic does not fit.
  const auto clicknp = check_fit(designs[3], device);
  EXPECT_FALSE(clicknp.logic_fits);
}

TEST(Table2, LeUnitPassesThrough) {
  const LiteratureDesign native{"native", 1000, LogicUnit::le, 0};
  EXPECT_EQ(native.logic_le_equivalent(), 1000u);
}

}  // namespace
}  // namespace flexsfp::hw
