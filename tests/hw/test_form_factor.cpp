#include "hw/form_factor.hpp"

#include <gtest/gtest.h>

namespace flexsfp::hw {
namespace {

TEST(FormFactor, LadderOrderedByCapability) {
  const auto ladder = form_factor_ladder();
  ASSERT_GE(ladder.size(), 4u);
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_GE(ladder[i].max_power_w, ladder[i - 1].max_power_w);
    EXPECT_GE(ladder[i].max_line_gbps, ladder[i - 1].max_line_gbps);
  }
  EXPECT_EQ(ladder.front().name, "SFP+");
  EXPECT_EQ(ladder.back().name, "OSFP");
}

TEST(FormFactor, FlexSfpPrototypeFitsSfpPlus) {
  // The paper's design point: ~1.5 W at 10G lives in a standard SFP+ cage.
  const auto form = smallest_form_factor(1.5, 10);
  ASSERT_TRUE(form);
  EXPECT_EQ(form->name, "SFP+");
}

TEST(FormFactor, HundredGigNeedsQsfp28) {
  // §5.3: "Higher-speed interconnects rely on larger form factors".
  const auto form = smallest_form_factor(4.0, 100);
  ASSERT_TRUE(form);
  EXPECT_EQ(form->name, "QSFP28");
}

TEST(FormFactor, PowerCanForceABiggerCageThanRate) {
  // 10G but 3 W of FPGA: too hot for SFP+/SFP28 despite the low rate.
  const auto form = smallest_form_factor(3.0, 10);
  ASSERT_TRUE(form);
  EXPECT_EQ(form->name, "QSFP+");
}

TEST(FormFactor, BeyondOsfpIsNotAccommodated) {
  EXPECT_FALSE(smallest_form_factor(40.0, 100).has_value());
  EXPECT_FALSE(smallest_form_factor(5.0, 1600).has_value());
}

TEST(FormFactor, AccommodatesIsConjunction) {
  const FormFactor qsfp28{"QSFP28", 5.0, 100, 4};
  EXPECT_TRUE(qsfp28.accommodates(5.0, 100));
  EXPECT_FALSE(qsfp28.accommodates(5.1, 100));
  EXPECT_FALSE(qsfp28.accommodates(5.0, 101));
}

}  // namespace
}  // namespace flexsfp::hw
