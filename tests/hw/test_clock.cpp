#include "hw/clock.hpp"

#include <gtest/gtest.h>

namespace flexsfp::hw {
namespace {

TEST(ClockDomain, CycleTimeOf156MHz) {
  EXPECT_EQ(clock_156_25_mhz.cycle_time(), 6400);  // ps
  EXPECT_EQ(clock_156_25_mhz.cycles_to_time(100), 640'000);
}

TEST(ClockDomain, MhzHelper) {
  EXPECT_EQ(ClockDomain::mhz(312.5).hz(), 312'500'000u);
  EXPECT_DOUBLE_EQ(ClockDomain::mhz(100).mhz_value(), 100.0);
}

TEST(DatapathConfig, PaperGeometryBandwidth) {
  // The paper's build: 64 bit x 156.25 MHz = 10 Gb/s exactly.
  const DatapathConfig dp{};
  EXPECT_EQ(dp.bandwidth_bps(), 10'000'000'000ull);
}

TEST(DatapathConfig, BeatsCeilDivision) {
  const DatapathConfig dp{};
  EXPECT_EQ(dp.beats_for(64), 8u);
  EXPECT_EQ(dp.beats_for(65), 9u);
  EXPECT_EQ(dp.beats_for(1), 1u);
  EXPECT_EQ(dp.beats_for(1518), 190u);
}

TEST(DatapathConfig, PaperGeometrySustains10GLineRate) {
  // 64 B min packets: wire time 70.4 ns = 11 cycles at 156.25 MHz; the
  // packet needs 8 beats. Line rate holds — the §5.1 result.
  const DatapathConfig dp{};
  EXPECT_TRUE(dp.sustains_line_rate(10'000'000'000ull, 64));
  // With 3 spare cycles, a 3-cycle per-packet overhead still fits...
  EXPECT_TRUE(dp.sustains_line_rate(10'000'000'000ull, 64, 3));
  // ...but a 4-cycle overhead does not.
  EXPECT_FALSE(dp.sustains_line_rate(10'000'000'000ull, 64, 4));
}

TEST(DatapathConfig, SameGeometryCannotAbsorbDoubledRate) {
  // The Two-Way-Core aggregates both directions: 20 Gb/s offered into a
  // 10 Gb/s pipe fails...
  const DatapathConfig dp{};
  EXPECT_FALSE(dp.sustains_line_rate(20'000'000'000ull, 64));
  // ...and doubling the clock restores line rate (§4.1's remedy).
  const DatapathConfig doubled{64, ClockDomain::mhz(312.5)};
  EXPECT_TRUE(doubled.sustains_line_rate(20'000'000'000ull, 64));
}

TEST(DatapathConfig, WideningReaches100G) {
  // §5.3: 100G needs a 512-bit datapath and/or higher clock.
  const DatapathConfig narrow{64, clock_156_25_mhz};
  EXPECT_FALSE(narrow.sustains_line_rate(100'000'000'000ull, 64));
  const DatapathConfig wide{512, ClockDomain::mhz(200)};
  EXPECT_TRUE(wide.sustains_line_rate(100'000'000'000ull, 64));
}

}  // namespace
}  // namespace flexsfp::hw
