// Frame round-trip properties: everything the builder produces must parse
// back cleanly, survive edit-and-restore unchanged, and keep its checksums
// valid through every in-place datapath transformation — across protocols,
// sizes and VLAN stacking.
#include <gtest/gtest.h>

#include "net/builder.hpp"

namespace flexsfp::net {
namespace {

struct RoundTripCase {
  IpProto proto;
  std::size_t payload;
  int vlan_tags;  // 0, 1 or 2 (QinQ)
};

class FrameRoundTrip : public ::testing::TestWithParam<RoundTripCase> {
 protected:
  [[nodiscard]] Bytes build() const {
    const auto& param = GetParam();
    PacketBuilder builder;
    builder.ethernet(MacAddress::from_u64(0x20), MacAddress::from_u64(0x10));
    if (param.vlan_tags == 1) {
      builder.vlan(100, 3);
    } else if (param.vlan_tags == 2) {
      builder.qinq(200, 100);
    }
    builder.ipv4(Ipv4Address::from_octets(10, 1, 2, 3),
                 Ipv4Address::from_octets(172, 16, 9, 8), param.proto);
    switch (param.proto) {
      case IpProto::tcp: builder.tcp(4000, 443); break;
      case IpProto::udp: builder.udp(4000, 53); break;
      case IpProto::icmp: builder.icmp_echo(1, 2); break;
      default: break;
    }
    builder.payload_size(param.payload);
    return builder.build();
  }
};

TEST_P(FrameRoundTrip, ParsesCleanWithNoValidationIssues) {
  const Bytes frame = build();
  const auto parsed = parse_packet(frame);
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed.outer.ipv4);
  EXPECT_EQ(parsed.vlan_tags.size(),
            static_cast<std::size_t>(GetParam().vlan_tags));
  EXPECT_TRUE(validate_packet(parsed, frame).empty());
}

TEST_P(FrameRoundTrip, SrcRewriteThereAndBackIsIdentity) {
  Bytes frame = build();
  const Bytes original = frame;
  auto parsed = parse_packet(frame);
  const Ipv4Address original_src = parsed.outer.ipv4->src;
  ASSERT_TRUE(rewrite_ipv4_src(frame, parsed,
                               Ipv4Address::from_octets(99, 98, 97, 96)));
  // Still valid mid-flight...
  parsed = parse_packet(frame);
  EXPECT_TRUE(validate_packet(parsed, frame).empty());
  // ...and restoring gives back the exact original bytes.
  ASSERT_TRUE(rewrite_ipv4_src(frame, parsed, original_src));
  EXPECT_EQ(frame, original);
}

TEST_P(FrameRoundTrip, VlanPushPopIsIdentity) {
  Bytes frame = build();
  const Bytes original = frame;
  ASSERT_TRUE(push_vlan(frame, 0x5a5 & 0xfff, 2));
  // Up to 3 stacked tags now; lift the parser's stacking limit to look in.
  const auto tagged = parse_packet(frame, {.max_vlan_tags = 4});
  ASSERT_TRUE(tagged.outer.ipv4);  // inner layers still reachable
  ASSERT_TRUE(pop_vlan(frame));
  EXPECT_EQ(frame, original);
}

TEST_P(FrameRoundTrip, GreEncapDecapIsIdentity) {
  Bytes frame = build();
  const Bytes original = frame;
  ASSERT_TRUE(encapsulate_gre(frame, Ipv4Address::from_octets(1, 0, 0, 1),
                              Ipv4Address::from_octets(1, 0, 0, 2)));
  EXPECT_GT(frame.size(), original.size());
  const auto outer = parse_packet(frame);
  EXPECT_TRUE(outer.gre.has_value());
  ASSERT_TRUE(decapsulate(frame));
  EXPECT_EQ(frame, original);
}

TEST_P(FrameRoundTrip, VxlanEncapDecapIsIdentity) {
  Bytes frame = build();
  const Bytes original = frame;
  ASSERT_TRUE(encapsulate_vxlan(frame, MacAddress::from_u64(0xa),
                                MacAddress::from_u64(0xb),
                                Ipv4Address::from_octets(2, 0, 0, 1),
                                Ipv4Address::from_octets(2, 0, 0, 2), 1234));
  ASSERT_TRUE(decapsulate(frame));
  EXPECT_EQ(frame, original);
}

TEST_P(FrameRoundTrip, TtlDecrementKeepsHeaderValid) {
  Bytes frame = build();
  auto parsed = parse_packet(frame);
  const std::uint8_t ttl = parsed.outer.ipv4->ttl;
  ASSERT_TRUE(decrement_ttl(frame, parsed));
  parsed = parse_packet(frame);
  EXPECT_EQ(parsed.outer.ipv4->ttl, ttl - 1);
  EXPECT_EQ(parsed.outer.ipv4->compute_checksum(),
            parsed.outer.ipv4->checksum);
}

INSTANTIATE_TEST_SUITE_P(
    ProtocolsSizesTags, FrameRoundTrip,
    ::testing::Values(RoundTripCase{IpProto::udp, 0, 0},
                      RoundTripCase{IpProto::udp, 26, 1},
                      RoundTripCase{IpProto::udp, 1000, 2},
                      RoundTripCase{IpProto::tcp, 0, 0},
                      RoundTripCase{IpProto::tcp, 512, 1},
                      RoundTripCase{IpProto::tcp, 1400, 0},
                      RoundTripCase{IpProto::icmp, 56, 0},
                      RoundTripCase{IpProto::icmp, 8, 2}),
    [](const ::testing::TestParamInfo<RoundTripCase>& info) {
      return to_string(info.param.proto) + "_" +
             std::to_string(info.param.payload) + "B_" +
             std::to_string(info.param.vlan_tags) + "tags";
    });

}  // namespace
}  // namespace flexsfp::net
