// Application-level property sweeps: tunnel identity across types and
// sizes, Maglev balance across pool sizes, rate-limiter conformance across
// configured rates, NAT translate-reverse identity.
#include <gtest/gtest.h>

#include <map>

#include "apps/load_balancer.hpp"
#include "apps/nat.hpp"
#include "apps/rate_limiter.hpp"
#include "apps/tunnel.hpp"
#include "net/builder.hpp"

namespace flexsfp::apps {
namespace {

net::Packet udp_frame(std::size_t payload) {
  return net::PacketBuilder()
      .ethernet(net::MacAddress::from_u64(2), net::MacAddress::from_u64(1))
      .ipv4(net::Ipv4Address::from_octets(10, 0, 0, 1),
            net::Ipv4Address::from_octets(10, 0, 0, 2), net::IpProto::udp)
      .udp(1111, 2222)
      .payload_size(payload)
      .build_packet();
}

ppe::Verdict run_app(ppe::PpeApp& app, net::Packet& packet) {
  ppe::PacketContext ctx(packet);
  return app.process(ctx);
}

// --- tunnels -----------------------------------------------------------------

class TunnelProperty
    : public ::testing::TestWithParam<std::tuple<TunnelType, std::size_t>> {};

TEST_P(TunnelProperty, EncapDecapIsIdentityAndValidMidFlight) {
  const auto [type, payload] = GetParam();
  TunnelConfig config;
  config.type = type;
  config.role = TunnelRole::encap;
  config.local = net::Ipv4Address::from_octets(172, 16, 0, 1);
  config.remote = net::Ipv4Address::from_octets(172, 16, 0, 2);
  config.vni = 77;
  config.outer_dst = net::MacAddress::from_u64(0xaa);
  config.outer_src = net::MacAddress::from_u64(0xbb);
  TunnelApp encap(config);
  config.role = TunnelRole::decap;
  TunnelApp decap(config);

  auto packet = udp_frame(payload);
  const net::Bytes original = packet.data();
  EXPECT_EQ(run_app(encap, packet), ppe::Verdict::forward);
  EXPECT_GT(packet.size(), original.size());
  // Mid-flight frame is structurally valid.
  const auto parsed = net::parse_packet(packet.data());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(net::validate_packet(parsed, packet.data()).empty());
  EXPECT_EQ(run_app(decap, packet), ppe::Verdict::forward);
  EXPECT_EQ(packet.data(), original);
}

INSTANTIATE_TEST_SUITE_P(
    TypesAndSizes, TunnelProperty,
    ::testing::Combine(::testing::Values(TunnelType::gre, TunnelType::vxlan,
                                         TunnelType::ipip),
                       ::testing::Values<std::size_t>(0, 64, 512, 1400)));

// --- Maglev balance ----------------------------------------------------------

class MaglevProperty : public ::testing::TestWithParam<int> {};

TEST_P(MaglevProperty, TableBalancedWithinTwoPercent) {
  const int backends = GetParam();
  LoadBalancer lb;
  for (int i = 0; i < backends; ++i) {
    lb.add_backend(Backend{static_cast<std::uint32_t>(i),
                           net::MacAddress::from_u64(0x100 + i), true});
  }
  std::map<std::int32_t, int> slots;
  for (const auto index : lb.lookup_table()) ++slots[index];
  ASSERT_EQ(slots.size(), static_cast<std::size_t>(backends));
  const double expected = double(lb.lookup_table().size()) / backends;
  for (const auto& [index, count] : slots) {
    EXPECT_NEAR(count, expected, std::max(expected * 0.02, 2.0))
        << "backend " << index << " of " << backends;
  }
}

TEST_P(MaglevProperty, RemovalDisruptionBoundedByOwnShare) {
  const int backends = GetParam();
  if (backends < 2) return;
  LoadBalancer lb;
  for (int i = 0; i < backends; ++i) {
    lb.add_backend(Backend{static_cast<std::uint32_t>(i),
                           net::MacAddress::from_u64(0x100 + i), true});
  }
  std::map<std::uint32_t, std::uint32_t> before;
  for (std::uint32_t i = 0; i < 1500; ++i) {
    const net::FiveTuple tuple{net::Ipv4Address{0x0a000000 + i},
                               net::Ipv4Address{0xc0a80001}, 1000, 80, 6};
    before[i] = lb.backend_for(tuple)->id;
  }
  const std::uint32_t victim = static_cast<std::uint32_t>(backends / 2);
  ASSERT_TRUE(lb.remove_backend(victim));
  int gratuitous = 0;
  for (std::uint32_t i = 0; i < 1500; ++i) {
    const net::FiveTuple tuple{net::Ipv4Address{0x0a000000 + i},
                               net::Ipv4Address{0xc0a80001}, 1000, 80, 6};
    const auto now = lb.backend_for(tuple)->id;
    if (before[i] != victim && now != before[i]) ++gratuitous;
  }
  // Maglev's disruption beyond the victim's own share stays small.
  EXPECT_LT(gratuitous, 1500 / backends);
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, MaglevProperty,
                         ::testing::Values(2, 3, 5, 8, 16, 32));

// --- rate limiter conformance --------------------------------------------------

class RateLimiterProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RateLimiterProperty, LongRunConformanceWithinTenPercent) {
  const std::uint64_t rate_bps = GetParam();
  RateLimiter limiter;
  ASSERT_TRUE(limiter.add_subscriber(*net::Ipv4Prefix::parse("10.0.0.0/8"),
                                     {rate_bps, rate_bps / 100}));
  // Offer ~3x the configured rate for 200 ms of simulated time.
  const std::size_t frame_payload = 958;  // 1000 B frames
  const double offered_bps = 3.0 * double(rate_bps);
  const auto gap_ps =
      static_cast<std::int64_t>(1000.0 * 8.0 / offered_bps * 1e12);
  std::uint64_t conformed_bytes = 0;
  std::int64_t now = 0;
  const std::int64_t end = 200'000'000'000;
  while (now < end) {
    auto packet = net::PacketBuilder()
                      .ethernet(net::MacAddress::from_u64(2),
                                net::MacAddress::from_u64(1))
                      .ipv4(net::Ipv4Address::from_octets(10, 1, 1, 1),
                            net::Ipv4Address::from_octets(9, 9, 9, 9),
                            net::IpProto::udp)
                      .udp(1, 2)
                      .payload_size(frame_payload)
                      .build_packet();
    packet.set_ingress_time_ps(now);
    if (run_app(limiter, packet) == ppe::Verdict::forward) {
      conformed_bytes += packet.size();
    }
    now += gap_ps;
  }
  // Over a finite horizon the bucket's initial burst rides on top of the
  // sustained rate: expected = rate + burst_bytes*8/T.
  const double burst_bits = double(rate_bps / 100) * 8.0;
  const double expected = double(rate_bps) + burst_bits / 0.2;
  const double measured = double(conformed_bytes) * 8.0 / 0.2;
  EXPECT_NEAR(measured, expected, expected * 0.1)
      << "configured " << rate_bps;
}

INSTANTIATE_TEST_SUITE_P(Rates, RateLimiterProperty,
                         ::testing::Values(1'000'000, 10'000'000,
                                           50'000'000, 100'000'000,
                                           500'000'000));

// --- NAT bidirectional identity -------------------------------------------------

class NatProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NatProperty, SourceThenReverseDestinationIsIdentity) {
  StaticNat outbound;  // source NAT
  NatConfig reverse_config;
  reverse_config.direction = NatDirection::destination;
  StaticNat inbound(reverse_config);  // destination NAT (return path)

  const auto private_ip = net::Ipv4Address::from_octets(10, 0, 0, 1);
  const auto public_ip = net::Ipv4Address::from_octets(203, 0, 113, 1);
  ASSERT_TRUE(outbound.add_mapping(private_ip, public_ip));
  ASSERT_TRUE(inbound.add_mapping(public_ip, private_ip));

  auto packet = udp_frame(GetParam());
  const net::Bytes original = packet.data();
  EXPECT_EQ(run_app(outbound, packet), ppe::Verdict::forward);
  EXPECT_EQ(net::parse_packet(packet.data()).outer.ipv4->src, public_ip);

  // The "return" of the same bytes: swap perspective by applying the
  // destination NAT to the translated address.
  auto parsed = net::parse_packet(packet.data());
  net::Bytes swapped = packet.data();
  net::rewrite_ipv4_dst(swapped, parsed, public_ip);
  net::rewrite_ipv4_src(swapped, net::parse_packet(swapped), private_ip);
  net::Packet returning{swapped};
  EXPECT_EQ(run_app(inbound, returning), ppe::Verdict::forward);
  EXPECT_EQ(net::parse_packet(returning.data()).outer.ipv4->dst, private_ip);
  EXPECT_TRUE(net::validate_packet(net::parse_packet(returning.data()),
                                   returning.data())
                  .empty());
  (void)original;
}

INSTANTIATE_TEST_SUITE_P(PayloadSizes, NatProperty,
                         ::testing::Values<std::size_t>(0, 18, 64, 512,
                                                        1472));

}  // namespace
}  // namespace flexsfp::apps
