// Property sweeps over the A+P port-restricted mapping arithmetic
// (RFC 7597 §5.1): random (psid_len, psid_offset) layouts checked against a
// brute-force oracle that enumerates all 65536 ports. The constant-time
// bit arithmetic the datapath runs per packet must agree with the
// definitionally-correct enumeration on every port.
#include <array>
#include <vector>

#include <gtest/gtest.h>

#include "apps/softwire.hpp"
#include "sim/random.hpp"

namespace flexsfp::apps {
namespace {

/// Every valid layout drawn from a seeded sweep, plus the boundary cases.
std::vector<PsidParams> layouts_under_test(std::uint64_t seed) {
  std::vector<PsidParams> layouts = {
      {0, 0},  {16, 0}, {0, 16}, {6, 6},  {8, 6},
      {10, 6}, {6, 0},  {1, 15}, {15, 1}, {4, 4},
  };
  sim::Rng rng(seed);
  while (layouts.size() < 24) {
    const auto a = std::uint8_t(rng.uniform(0, 16));
    const auto k = std::uint8_t(rng.uniform(0, 16 - a));
    layouts.push_back(PsidParams{k, a});
  }
  return layouts;
}

class PsidProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PsidProperty, EveryPortBelongsToExactlyOnePsidOrTheSystemRange) {
  for (const PsidParams p : layouts_under_test(GetParam())) {
    ASSERT_TRUE(psid_params_valid(p));
    const std::uint32_t psid_count = 1u << p.psid_len;
    // Oracle pass: walk all 65536 ports, tally each into the one bucket the
    // membership predicate admits it to.
    std::vector<std::uint32_t> owned(psid_count, 0);
    std::uint32_t excluded = 0;
    for (std::uint32_t port = 0; port <= 0xffff; ++port) {
      const auto p16 = std::uint16_t(port);
      if (port_excluded(p, p16)) {
        ++excluded;
        // The exclusion predicate must match its definition exactly: top
        // `a` bits all zero.
        ASSERT_EQ(p.psid_offset > 0 && (port >> (16 - p.psid_offset)) == 0,
                  true)
            << "port " << port;
        continue;
      }
      // Exactly one owner: the decoded PSID admits the port, its neighbors
      // (and wraparound extremes) reject it. The per-PSID count below then
      // proves the partition exact without an O(psids * ports) sweep.
      const std::uint16_t owner = psid_of_port(p, p16);
      ASSERT_TRUE(port_in_set(p, owner, p16)) << "port " << port;
      for (const std::uint32_t other :
           {owner + 1u, owner + psid_count - 1u, owner + psid_count / 2u}) {
        const auto candidate = std::uint16_t(other % psid_count);
        if (candidate == owner) continue;
        ASSERT_FALSE(port_in_set(p, candidate, p16))
            << "port " << port << " psid " << candidate;
      }
      ++owned[owner];
    }
    // Every PSID owns exactly port_set_size ports, and the partition is
    // exhaustive: excluded + sum(owned) covers the 16-bit space.
    std::uint64_t total = excluded;
    for (std::uint32_t psid = 0; psid < psid_count; ++psid) {
      ASSERT_EQ(owned[psid], port_set_size(p)) << "psid " << psid;
      total += owned[psid];
    }
    ASSERT_EQ(total, 65536u);
  }
}

TEST_P(PsidProperty, PortForIndexEnumeratesTheExactOracleSet) {
  sim::Rng rng(GetParam() ^ 0x50f7);
  for (const PsidParams p : layouts_under_test(GetParam())) {
    // A few random PSIDs per layout (all of them when the space is small).
    const std::uint32_t psid_count = 1u << p.psid_len;
    std::vector<std::uint16_t> psids;
    if (psid_count <= 8) {
      for (std::uint32_t s = 0; s < psid_count; ++s) {
        psids.push_back(std::uint16_t(s));
      }
    } else {
      for (int draw = 0; draw < 8; ++draw) {
        psids.push_back(std::uint16_t(rng.uniform(0, psid_count - 1)));
      }
    }
    for (const std::uint16_t psid : psids) {
      // Oracle: brute-force enumerate the PSID's ports in ascending order.
      std::vector<std::uint16_t> oracle;
      for (std::uint32_t port = 0; port <= 0xffff; ++port) {
        if (port_in_set(p, psid, std::uint16_t(port))) {
          oracle.push_back(std::uint16_t(port));
        }
      }
      ASSERT_EQ(oracle.size(), port_set_size(p));
      // port_for_index must reproduce it element for element, and
      // round-trip through psid_of_port.
      for (std::uint32_t index = 0; index < oracle.size(); ++index) {
        const std::uint16_t port = port_for_index(p, psid, index);
        ASSERT_EQ(port, oracle[index])
            << "index " << index << " psid " << psid << " a "
            << int(p.psid_offset) << " k " << int(p.psid_len);
        ASSERT_TRUE(port_in_set(p, psid, port));
      }
    }
  }
}

TEST_P(PsidProperty, DisjointPsidsNeverShareAPort) {
  sim::Rng rng(GetParam() ^ 0xd15);
  for (const PsidParams p : layouts_under_test(GetParam())) {
    const std::uint32_t psid_count = 1u << p.psid_len;
    if (psid_count < 2) continue;
    for (int draw = 0; draw < 256; ++draw) {
      const auto a = std::uint16_t(rng.uniform(0, psid_count - 1));
      auto b = std::uint16_t(rng.uniform(0, psid_count - 1));
      if (a == b) b = std::uint16_t((b + 1) % psid_count);
      const auto index =
          std::uint32_t(rng.uniform(0, port_set_size(p) - 1));
      const std::uint16_t port_of_a = port_for_index(p, a, index);
      EXPECT_FALSE(port_in_set(p, b, port_of_a))
          << "psids " << a << "/" << b << " port " << port_of_a;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PsidProperty,
                         ::testing::Values(0x1ull, 0x2a2aull, 0xfeedull));

}  // namespace
}  // namespace flexsfp::apps
