// Property sweeps over the checksum primitives: the invariants a hardware
// checksum-patch unit relies on, across buffer sizes and random contents.
#include <gtest/gtest.h>

#include "net/checksum.hpp"
#include "sim/random.hpp"

namespace flexsfp::net {
namespace {

class ChecksumProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
 protected:
  [[nodiscard]] Bytes random_buffer() {
    const auto [size, seed] = GetParam();
    sim::Rng rng(seed);
    Bytes data(size);
    for (auto& byte : data) {
      byte = static_cast<std::uint8_t>(rng.uniform(0, 255));
    }
    return data;
  }
};

TEST_P(ChecksumProperty, AppendingChecksumZeroesTheSum) {
  Bytes data = random_buffer();
  if (data.size() % 2 != 0) data.push_back(0);  // align to 16-bit words
  const std::uint16_t checksum = internet_checksum(data);
  data.push_back(static_cast<std::uint8_t>(checksum >> 8));
  data.push_back(static_cast<std::uint8_t>(checksum & 0xff));
  EXPECT_EQ(internet_checksum(data), 0);
}

TEST_P(ChecksumProperty, IncrementalEqualsRecomputeForEveryWord) {
  Bytes data = random_buffer();
  if (data.size() < 2) return;
  const auto [size, seed] = GetParam();
  sim::Rng rng(seed ^ 0xabcdef);
  const std::uint16_t original = internet_checksum(data);
  for (std::size_t word = 0; word + 1 < data.size(); word += 2) {
    const std::uint16_t old_word = read_be16(data, word);
    const auto new_word = static_cast<std::uint16_t>(rng.uniform(0, 0xffff));
    write_be16(data, word, new_word);
    const std::uint16_t expected = internet_checksum(data);
    EXPECT_EQ(checksum_incremental_update(original, old_word, new_word),
              expected)
        << "word offset " << word;
    write_be16(data, word, old_word);  // restore for the next iteration
  }
}

TEST_P(ChecksumProperty, PartialSumsComposeAtAnyEvenSplit) {
  const Bytes data = random_buffer();
  const std::uint16_t whole = internet_checksum(data);
  for (std::size_t split = 0; split <= data.size(); split += 2) {
    const BytesView head{data.data(), split};
    const BytesView tail{data.data() + split, data.size() - split};
    const std::uint32_t composed =
        checksum_partial(tail, checksum_partial(head));
    EXPECT_EQ(checksum_finish(composed), whole) << "split " << split;
  }
}

TEST_P(ChecksumProperty, Crc32DetectsEveryTestedBitFlip) {
  Bytes data = random_buffer();
  if (data.empty()) return;
  const std::uint32_t original = crc32(data);
  // Flip one bit in each byte-position class (bounded sweep).
  for (std::size_t i = 0; i < data.size(); i += std::max<std::size_t>(1, data.size() / 16)) {
    data[i] ^= 0x10;
    EXPECT_NE(crc32(data), original) << "flip at " << i;
    data[i] ^= 0x10;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, ChecksumProperty,
    ::testing::Combine(::testing::Values<std::size_t>(2, 20, 40, 64, 128,
                                                      1460),
                       ::testing::Values<std::uint64_t>(1, 42, 991)));

}  // namespace
}  // namespace flexsfp::net
