// Property sweeps over the checksum primitives: the invariants a hardware
// checksum-patch unit relies on, across buffer sizes and random contents.
#include <gtest/gtest.h>

#include "net/checksum.hpp"
#include "sim/random.hpp"

namespace flexsfp::net {
namespace {

class ChecksumProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
 protected:
  [[nodiscard]] Bytes random_buffer() {
    const auto [size, seed] = GetParam();
    sim::Rng rng(seed);
    Bytes data(size);
    for (auto& byte : data) {
      byte = static_cast<std::uint8_t>(rng.uniform(0, 255));
    }
    return data;
  }
};

TEST_P(ChecksumProperty, AppendingChecksumZeroesTheSum) {
  Bytes data = random_buffer();
  if (data.size() % 2 != 0) data.push_back(0);  // align to 16-bit words
  const std::uint16_t checksum = internet_checksum(data);
  data.push_back(static_cast<std::uint8_t>(checksum >> 8));
  data.push_back(static_cast<std::uint8_t>(checksum & 0xff));
  EXPECT_EQ(internet_checksum(data), 0);
}

TEST_P(ChecksumProperty, IncrementalEqualsRecomputeForEveryWord) {
  Bytes data = random_buffer();
  if (data.size() < 2) return;
  const auto [size, seed] = GetParam();
  sim::Rng rng(seed ^ 0xabcdef);
  const std::uint16_t original = internet_checksum(data);
  for (std::size_t word = 0; word + 1 < data.size(); word += 2) {
    const std::uint16_t old_word = read_be16(data, word);
    const auto new_word = static_cast<std::uint16_t>(rng.uniform(0, 0xffff));
    write_be16(data, word, new_word);
    const std::uint16_t expected = internet_checksum(data);
    EXPECT_EQ(checksum_incremental_update(original, old_word, new_word),
              expected)
        << "word offset " << word;
    write_be16(data, word, old_word);  // restore for the next iteration
  }
}

TEST_P(ChecksumProperty, PartialSumsComposeAtAnyEvenSplit) {
  const Bytes data = random_buffer();
  const std::uint16_t whole = internet_checksum(data);
  for (std::size_t split = 0; split <= data.size(); split += 2) {
    const BytesView head{data.data(), split};
    const BytesView tail{data.data() + split, data.size() - split};
    const std::uint32_t composed =
        checksum_partial(tail, checksum_partial(head));
    EXPECT_EQ(checksum_finish(composed), whole) << "split " << split;
  }
}

TEST_P(ChecksumProperty, Crc32DetectsEveryTestedBitFlip) {
  Bytes data = random_buffer();
  if (data.empty()) return;
  const std::uint32_t original = crc32(data);
  // Flip one bit in each byte-position class (bounded sweep).
  for (std::size_t i = 0; i < data.size(); i += std::max<std::size_t>(1, data.size() / 16)) {
    data[i] ^= 0x10;
    EXPECT_NE(crc32(data), original) << "flip at " << i;
    data[i] ^= 0x10;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, ChecksumProperty,
    ::testing::Combine(::testing::Values<std::size_t>(2, 20, 40, 64, 128,
                                                      1460),
                       ::testing::Values<std::uint64_t>(1, 42, 991)));

// RFC 1624 negative-zero edges. One's-complement arithmetic has two
// representations of zero (0x0000 and 0xffff); eqn. 2 of RFC 1141 got stuck
// on them, which is why RFC 1624 eqn. 3 exists. These directed cases drive
// the checksum field through both representations and require the
// incremental patch to agree with a full recompute — the invariant the NAT
// datapath's O(1) checksum unit depends on.

TEST(ChecksumRfc1624Edges, UpdateLandingOnZeroChecksumMatchesRecompute) {
  // 0x1234 + 0xedcb = 0xffff: after the update the folded sum is negative
  // zero and the checksum field reads 0x0000.
  Bytes data = {0x12, 0x34, 0xaa, 0xaa};
  const std::uint16_t before = internet_checksum(data);
  write_be16(data, 2, 0xedcb);
  ASSERT_EQ(internet_checksum(data), 0x0000);
  EXPECT_EQ(checksum_incremental_update(before, 0xaaaa, 0xedcb), 0x0000);
}

TEST(ChecksumRfc1624Edges, UpdateLeavingZeroChecksumMatchesRecompute) {
  // HC == 0x0000 going in: the case where the RFC 1141 formula produced a
  // wrong checksum and RFC 1624 section 3 was written.
  Bytes data = {0x12, 0x34, 0xed, 0xcb};
  ASSERT_EQ(internet_checksum(data), 0x0000);
  write_be16(data, 0, 0x5678);
  EXPECT_EQ(checksum_incremental_update(0x0000, 0x1234, 0x5678),
            internet_checksum(data));
}

TEST(ChecksumRfc1624Edges, EdgeWordSweepMatchesRecompute) {
  const std::uint16_t edges[] = {0x0000, 0x0001, 0x7fff,
                                 0x8000, 0xfffe, 0xffff};
  for (const std::uint16_t sibling : edges) {
    for (const std::uint16_t old_word : edges) {
      for (const std::uint16_t new_word : edges) {
        // A buffer that becomes all-zero is the one spot where the two
        // zero representations genuinely diverge (recompute says 0xffff,
        // the patch says 0x0000); real IP headers are never all-zero.
        if (sibling == 0 && new_word == 0) continue;
        Bytes data(4);
        write_be16(data, 0, old_word);
        write_be16(data, 2, sibling);
        const std::uint16_t before = internet_checksum(data);
        write_be16(data, 0, new_word);
        EXPECT_EQ(checksum_incremental_update(before, old_word, new_word),
                  internet_checksum(data))
            << std::hex << "sibling=" << sibling << " old=" << old_word
            << " new=" << new_word;
      }
    }
  }
}

TEST(ChecksumRfc1624Edges, AddressRewriteAcrossExtremesMatchesRecompute) {
  // The NAT case: rewrite a 32-bit address field between the all-ones and
  // near-zero extremes inside an IPv4-header-shaped buffer, patching with
  // checksum_incremental_update32.
  const std::uint32_t extremes[] = {0x00000001u, 0x0000ffffu, 0xffff0000u,
                                    0xfffffffeu, 0xffffffffu};
  for (const std::uint32_t old_addr : extremes) {
    for (const std::uint32_t new_addr : extremes) {
      Bytes header(20, 0);
      header[0] = 0x45;  // version/IHL: a realistic, never-zero header
      header[8] = 64;    // TTL
      write_be32(header, 12, old_addr);  // source address
      write_be32(header, 16, 0x0a000002u);
      const std::uint16_t before = internet_checksum(header);
      write_be32(header, 12, new_addr);
      EXPECT_EQ(checksum_incremental_update32(before, old_addr, new_addr),
                internet_checksum(header))
          << std::hex << old_addr << " -> " << new_addr;
    }
  }
}

}  // namespace
}  // namespace flexsfp::net
