// Soundness sweep for the BPF abstract interpreter: generate random valid
// programs, run the analyzer, then execute each program concretely over
// randomized and boundary frame sizes with an instrumented mirror of
// BpfProgram::run — every static claim must hold on every execution:
//   * the mirror and run() agree on the verdict (mirror fidelity),
//   * executed pcs are a subset of the claimed reachable set,
//   * the verdict is one the analysis says the program can produce, and
//     equals constant_verdict when that is set,
//   * instructions executed <= worst_case_path_cycles,
//   * loads classified `safe` never abort, `always_aborts` always do,
//   * a statically decided branch never takes its infeasible edge.
// All claims are relative to frames >= the declared minimum (64 B here).
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "analysis/bpf_verifier.hpp"
#include "apps/bpf_filter.hpp"

namespace flexsfp::analysis {
namespace {

using apps::BpfInsn;
using apps::BpfOp;
using apps::BpfProgram;

constexpr std::size_t kMinFrame = 64;

/// One concrete execution, instrumented: mirrors BpfProgram::run exactly
/// (uint32 ALU, `& 31` shift masking, uint32-wrapping indexed offsets,
/// abort-to-drop on OOB loads) while recording the trace.
struct Trace {
  ppe::Verdict verdict = ppe::Verdict::drop;
  std::vector<std::size_t> visited;
  std::uint64_t steps = 0;
  /// pc -> did the load at pc abort on this run (only load pcs appear).
  std::vector<std::pair<std::size_t, bool>> load_aborts;
  /// pc -> branch outcome taken on this run (only conditional-jump pcs).
  std::vector<std::pair<std::size_t, bool>> branch_taken;
};

Trace execute(const std::vector<BpfInsn>& code, net::BytesView packet) {
  Trace trace;
  std::uint32_t a = 0;
  std::uint32_t x = 0;
  std::size_t pc = 0;
  for (std::size_t steps = 0; steps <= code.size(); ++steps) {
    const BpfInsn& insn = code[pc];
    trace.visited.push_back(pc);
    ++trace.steps;
    std::size_t next = pc + 1;
    const auto load = [&](std::uint32_t offset, std::size_t width,
                          std::uint32_t indexed) -> bool {
      const std::size_t at = offset + indexed;  // uint32 wrap, like run()
      if (at + width > packet.size()) {
        trace.load_aborts.emplace_back(pc, true);
        trace.verdict = ppe::Verdict::drop;
        return false;
      }
      trace.load_aborts.emplace_back(pc, false);
      a = 0;
      for (std::size_t i = 0; i < width; ++i) a = (a << 8) | packet[at + i];
      return true;
    };
    switch (insn.op) {
      case BpfOp::ld_imm: a = insn.k; break;
      case BpfOp::ld_len: a = static_cast<std::uint32_t>(packet.size()); break;
      case BpfOp::ld_abs_u8:
        if (!load(insn.k, 1, 0)) return trace;
        break;
      case BpfOp::ld_abs_u16:
        if (!load(insn.k, 2, 0)) return trace;
        break;
      case BpfOp::ld_abs_u32:
        if (!load(insn.k, 4, 0)) return trace;
        break;
      case BpfOp::ld_ind_u8:
        if (!load(insn.k, 1, x)) return trace;
        break;
      case BpfOp::ld_ind_u16:
        if (!load(insn.k, 2, x)) return trace;
        break;
      case BpfOp::ld_ind_u32:
        if (!load(insn.k, 4, x)) return trace;
        break;
      case BpfOp::ldx_imm: x = insn.k; break;
      case BpfOp::tax: x = a; break;
      case BpfOp::txa: a = x; break;
      case BpfOp::alu_add: a += insn.k; break;
      case BpfOp::alu_sub: a -= insn.k; break;
      case BpfOp::alu_and: a &= insn.k; break;
      case BpfOp::alu_or: a |= insn.k; break;
      case BpfOp::alu_lsh: a <<= (insn.k & 31); break;
      case BpfOp::alu_rsh: a >>= (insn.k & 31); break;
      case BpfOp::alu_add_x: a += x; break;
      case BpfOp::jeq:
      case BpfOp::jgt:
      case BpfOp::jge:
      case BpfOp::jset: {
        bool taken = false;
        if (insn.op == BpfOp::jeq) taken = a == insn.k;
        if (insn.op == BpfOp::jgt) taken = a > insn.k;
        if (insn.op == BpfOp::jge) taken = a >= insn.k;
        if (insn.op == BpfOp::jset) taken = (a & insn.k) != 0;
        trace.branch_taken.emplace_back(pc, taken);
        next += taken ? insn.jt : insn.jf;
        break;
      }
      case BpfOp::ja: next += insn.k; break;
      case BpfOp::ret_accept:
        trace.verdict = ppe::Verdict::forward;
        return trace;
      case BpfOp::ret_drop:
        trace.verdict = ppe::Verdict::drop;
        return trace;
      case BpfOp::ret_punt:
        trace.verdict = ppe::Verdict::to_control_plane;
        return trace;
    }
    pc = next;
  }
  ADD_FAILURE() << "validated program did not terminate";
  return trace;
}

/// Random structurally valid program: jump offsets stay in range by
/// construction and the last instruction is a terminal, so assemble()
/// always accepts (shift counts are drawn from [0, 31]).
BpfProgram random_program(std::mt19937& rng) {
  const auto u32 = [&rng](std::uint32_t bound) {
    return static_cast<std::uint32_t>(rng() % bound);
  };
  const std::size_t n = 2 + u32(23);
  std::vector<BpfInsn> code(n);
  const auto rand_offset = [&]() -> std::uint32_t {
    switch (u32(8)) {
      case 0: return u32(2000);               // mid-frame / jumbo
      case 1: return 9200 + u32(200);         // straddles max_frame
      case 2: return 0xfffffff0u + u32(16);   // wraps when indexed
      default: return u32(128);               // around min_frame
    }
  };
  for (std::size_t pc = 0; pc + 1 < n; ++pc) {
    const std::uint32_t reach =
        static_cast<std::uint32_t>(n - 2 - pc);  // max extra jump distance
    switch (u32(14)) {
      case 0: code[pc] = {BpfOp::ld_imm, u32(0x10000), 0, 0}; break;
      case 1: code[pc] = {BpfOp::ld_len, 0, 0, 0}; break;
      case 2:
        code[pc] = {static_cast<BpfOp>(
                        static_cast<int>(BpfOp::ld_abs_u8) + u32(6)),
                    rand_offset(), 0, 0};
        break;
      case 3:
        code[pc] = {BpfOp::ldx_imm,
                    u32(4) == 0 ? 0xffffff00u + u32(256) : u32(64), 0, 0};
        break;
      case 4: code[pc] = {u32(2) ? BpfOp::tax : BpfOp::txa, 0, 0, 0}; break;
      case 5:
        code[pc] = {static_cast<BpfOp>(static_cast<int>(BpfOp::alu_add) +
                                       u32(4)),
                    u32(0x10000), 0, 0};
        break;
      case 6:
        code[pc] = {u32(2) ? BpfOp::alu_lsh : BpfOp::alu_rsh, u32(32), 0, 0};
        break;
      case 7: code[pc] = {BpfOp::alu_add_x, 0, 0, 0}; break;
      case 8:
      case 9:
      case 10: {
        const auto op =
            static_cast<BpfOp>(static_cast<int>(BpfOp::jeq) + u32(4));
        // Comparison constants biased toward plausible frame values so
        // decided branches and dead code actually occur.
        const std::uint32_t k = u32(3) == 0 ? u32(128) : u32(0x10000);
        code[pc] = {op, k, static_cast<std::uint8_t>(u32(reach + 1)),
                    static_cast<std::uint8_t>(u32(reach + 1))};
        break;
      }
      case 11:
        code[pc] = {BpfOp::ja, u32(reach + 1), 0, 0};
        break;
      default:
        code[pc] = {static_cast<BpfOp>(static_cast<int>(BpfOp::ret_accept) +
                                       u32(3)),
                    0, 0, 0};
        break;
    }
  }
  code[n - 1] = {static_cast<BpfOp>(static_cast<int>(BpfOp::ret_accept) +
                                    u32(3)),
                 0, 0, 0};
  auto program = BpfProgram::assemble(std::move(code));
  EXPECT_TRUE(program.has_value());
  return *program;
}

void check_trace_against_analysis(const BpfProgram& program,
                                  const BpfAnalysis& analysis,
                                  net::BytesView frame) {
  const Trace trace = execute(program.code(), frame);
  // Mirror fidelity: the instrumented executor is only trustworthy if it
  // agrees with the production interpreter.
  ASSERT_EQ(trace.verdict, program.run(frame));

  for (const std::size_t pc : trace.visited) {
    EXPECT_TRUE(analysis.reachable[pc])
        << "executed pc " << pc << " claimed unreachable";
  }
  const bool verdict_allowed =
      (trace.verdict == ppe::Verdict::forward && analysis.can_accept) ||
      (trace.verdict == ppe::Verdict::drop && analysis.can_drop) ||
      (trace.verdict == ppe::Verdict::to_control_plane && analysis.can_punt);
  EXPECT_TRUE(verdict_allowed) << "verdict not in the claimed set";
  if (analysis.constant_verdict.has_value()) {
    EXPECT_EQ(trace.verdict, *analysis.constant_verdict);
  }
  EXPECT_LE(trace.steps, analysis.worst_case_path_cycles);

  for (const auto& [pc, aborted] : trace.load_aborts) {
    const auto fact =
        std::find_if(analysis.loads.begin(), analysis.loads.end(),
                     [pc = pc](const LoadFact& f) { return f.pc == pc; });
    ASSERT_NE(fact, analysis.loads.end()) << "executed load not analyzed";
    if (fact->safety == LoadSafety::safe) {
      EXPECT_FALSE(aborted) << "safe load aborted at pc " << pc << " on a "
                            << frame.size() << " B frame";
    }
    if (fact->safety == LoadSafety::always_aborts) {
      EXPECT_TRUE(aborted) << "always-aborts load survived at pc " << pc;
    }
  }
  for (const auto& [pc, taken] : trace.branch_taken) {
    for (const DecidedBranch& decided : analysis.decided_branches) {
      if (decided.pc == pc) {
        EXPECT_EQ(taken, decided.always_taken)
            << "decided branch at pc " << pc << " took its infeasible edge";
      }
    }
  }
}

TEST(BpfVerifierSoundness, RandomProgramsUnderRandomAndBoundaryFrames) {
  std::mt19937 rng(0xf1e25f01u);
  const BpfVerifier verifier(
      {.min_frame_bytes = kMinFrame, .max_frame_bytes = 9216});

  for (int iteration = 0; iteration < 300; ++iteration) {
    const BpfProgram program = random_program(rng);
    const BpfAnalysis analysis = verifier.analyze(program);
    ASSERT_TRUE(analysis.valid_structure);
    ASSERT_EQ(analysis.reachable.size(), program.size());
    EXPECT_GE(analysis.worst_case_path_cycles, 1u);
    EXPECT_LE(analysis.worst_case_path_cycles, program.size());

    // Boundary sizes bracket the envelope edges and every load's end
    // offset; random sizes cover the middle.
    std::vector<std::size_t> sizes{kMinFrame, kMinFrame + 1, 1518};
    for (const LoadFact& load : analysis.loads) {
      for (const std::uint64_t end : {load.end_lo, load.end_hi}) {
        if (end >= kMinFrame && end <= 9216) {
          sizes.push_back(static_cast<std::size_t>(end));
          if (end > kMinFrame) {
            sizes.push_back(static_cast<std::size_t>(end) - 1);
          }
        }
      }
    }
    for (int i = 0; i < 4; ++i) sizes.push_back(kMinFrame + rng() % 1537);

    for (const std::size_t size : sizes) {
      net::Bytes frame(size);
      for (auto& byte : frame) byte = static_cast<std::uint8_t>(rng());
      check_trace_against_analysis(program, analysis, frame);
    }
  }
}

TEST(BpfVerifierSoundness, LibraryProgramsAgreeWithTheirAnalyses) {
  std::mt19937 rng(0x5eed5eedu);
  const BpfVerifier verifier;
  const BpfProgram library[] = {
      apps::bpf_programs::accept_all(),
      apps::bpf_programs::drop_tcp_dport(23),
      apps::bpf_programs::drop_tcp_dport_compact(23),
      apps::bpf_programs::allow_src_net(0x0a070000, 0xffff0000),
      apps::bpf_programs::punt_fragments(),
  };
  for (const BpfProgram& program : library) {
    const BpfAnalysis analysis = verifier.analyze(program);
    ASSERT_TRUE(analysis.valid_structure);
    for (const std::size_t size : {64u, 65u, 100u, 256u, 1518u}) {
      for (int i = 0; i < 8; ++i) {
        net::Bytes frame(size);
        for (auto& byte : frame) byte = static_cast<std::uint8_t>(rng());
        check_trace_against_analysis(program, analysis, frame);
      }
    }
  }
}

}  // namespace
}  // namespace flexsfp::analysis
