// Table invariants swept across geometries: an exact-match table must be a
// faithful map under any mix of inserts/updates/erases it accepts, and the
// TCAM range expansion must cover exactly the requested interval.
#include <gtest/gtest.h>

#include <map>

#include "ppe/tables.hpp"
#include "sim/random.hpp"

namespace flexsfp::ppe {
namespace {

class ExactMatchProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 std::uint64_t>> {};

TEST_P(ExactMatchProperty, BehavesLikeAMapUnderRandomOps) {
  const auto [capacity, ways, seed] = GetParam();
  ExactMatchTable table("t", capacity, 32, 64, ways);
  std::map<std::uint64_t, std::uint64_t> model;
  sim::Rng rng(seed);

  for (int op = 0; op < 4000; ++op) {
    const std::uint64_t key = rng.uniform(0, capacity * 2);  // collisions
    const int action = static_cast<int>(rng.uniform(0, 9));
    if (action < 5) {
      const std::uint64_t value = rng.next_u64();
      if (table.insert(key, value)) {
        model[key] = value;
      } else {
        // Rejection is only legal when the key is absent (an update of a
        // resident key must always succeed).
        EXPECT_FALSE(model.contains(key)) << "rejected update of " << key;
      }
    } else if (action < 8) {
      const auto hit = table.lookup(key);
      const auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_FALSE(hit.has_value()) << key;
      } else {
        ASSERT_TRUE(hit.has_value()) << key;
        EXPECT_EQ(*hit, it->second) << key;
      }
    } else {
      EXPECT_EQ(table.erase(key), model.erase(key) > 0) << key;
    }
    ASSERT_EQ(table.size(), model.size());
  }

  // Final sweep: every model entry is present and correct.
  for (const auto& [key, value] : model) {
    const auto hit = table.lookup(key);
    ASSERT_TRUE(hit.has_value()) << key;
    EXPECT_EQ(*hit, value) << key;
  }
  // And for_each visits exactly the model.
  std::size_t visited = 0;
  table.for_each([&](std::uint64_t key, std::uint64_t value) {
    ++visited;
    const auto it = model.find(key);
    ASSERT_NE(it, model.end()) << key;
    EXPECT_EQ(it->second, value);
  });
  EXPECT_EQ(visited, model.size());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ExactMatchProperty,
    ::testing::Combine(::testing::Values<std::size_t>(16, 256, 1024),
                       ::testing::Values<std::size_t>(1, 2, 4),
                       ::testing::Values<std::uint64_t>(3, 17)));

class RangeExpansionProperty
    : public ::testing::TestWithParam<std::pair<std::uint16_t, std::uint16_t>> {
};

TEST_P(RangeExpansionProperty, CoversExactlyTheInterval) {
  const auto [lo, hi] = GetParam();
  const auto pairs = expand_port_range(lo, hi);
  ASSERT_FALSE(pairs.empty());
  EXPECT_LE(pairs.size(), 30u);  // the classic 2*16-2 worst-case bound
  for (std::uint32_t port = 0; port <= 0xffff; ++port) {
    int matches = 0;
    for (const auto& [value, mask] : pairs) {
      if ((port & mask) == (value & mask)) ++matches;
    }
    const bool inside = port >= lo && port <= hi;
    ASSERT_EQ(matches, inside ? 1 : 0) << "port " << port;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, RangeExpansionProperty,
    ::testing::Values(std::pair<std::uint16_t, std::uint16_t>{0, 0},
                      std::pair<std::uint16_t, std::uint16_t>{65535, 65535},
                      std::pair<std::uint16_t, std::uint16_t>{0, 1023},
                      std::pair<std::uint16_t, std::uint16_t>{1, 65534},
                      std::pair<std::uint16_t, std::uint16_t>{1024, 49151},
                      std::pair<std::uint16_t, std::uint16_t>{33, 8191},
                      std::pair<std::uint16_t, std::uint16_t>{443, 444},
                      std::pair<std::uint16_t, std::uint16_t>{9999, 10001}));

class LpmProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpmProperty, AgreesWithLinearLongestMatch) {
  sim::Rng rng(GetParam());
  LpmTable table("t", 64);
  std::vector<std::pair<net::Ipv4Prefix, std::uint64_t>> reference;
  for (int i = 0; i < 40; ++i) {
    const auto length = static_cast<std::uint8_t>(rng.uniform(0, 32));
    const net::Ipv4Prefix prefix{
        net::Ipv4Address{static_cast<std::uint32_t>(rng.next_u64())}, length};
    const std::uint64_t value = rng.uniform(1, 1000);
    if (table.insert(prefix, value)) {
      // Mirror update-or-insert semantics in the reference list.
      bool updated = false;
      for (auto& [existing, existing_value] : reference) {
        if (existing == prefix) {
          existing_value = value;
          updated = true;
        }
      }
      if (!updated) reference.emplace_back(prefix, value);
    }
  }
  for (int probe = 0; probe < 500; ++probe) {
    const net::Ipv4Address addr{static_cast<std::uint32_t>(rng.next_u64())};
    std::optional<std::uint64_t> expected;
    int best_length = -1;
    for (const auto& [prefix, value] : reference) {
      if (prefix.contains(addr) && int(prefix.length()) > best_length) {
        best_length = prefix.length();
        expected = value;
      }
    }
    EXPECT_EQ(table.lookup(addr), expected) << addr.to_string();
  }
}

TEST_P(LpmProperty, LookupExactIsAFaithfulMapOverPrefixes) {
  // lookup_exact() must behave like map<prefix, value> even when prefixes
  // nest — the aliasing that LPM lookup() deliberately has and exact-entry
  // bookkeeping (e.g. the rate limiter's slot table) must not inherit.
  sim::Rng rng(GetParam() ^ 0x4c504d);
  LpmTable table("t", 128);
  std::vector<std::pair<net::Ipv4Prefix, std::uint64_t>> model;
  const auto model_find = [&model](net::Ipv4Prefix prefix) {
    for (auto it = model.begin(); it != model.end(); ++it) {
      if (it->first == prefix) return it;
    }
    return model.end();
  };
  for (int op = 0; op < 600; ++op) {
    // A small base pool forces heavy nesting: the same address under many
    // lengths.
    const auto base = static_cast<std::uint32_t>(rng.uniform(0, 3)) << 24;
    const auto length = static_cast<std::uint8_t>(rng.uniform(0, 32));
    const net::Ipv4Prefix prefix{net::Ipv4Address{base}, length};
    const int action = static_cast<int>(rng.uniform(0, 9));
    if (action < 5) {
      const std::uint64_t value = rng.uniform(1, 1000);
      if (table.insert(prefix, value)) {
        const auto it = model_find(prefix);
        if (it == model.end()) {
          model.emplace_back(prefix, value);
        } else {
          it->second = value;
        }
      }
    } else if (action < 8) {
      const auto hit = table.lookup_exact(prefix);
      const auto it = model_find(prefix);
      if (it == model.end()) {
        EXPECT_FALSE(hit.has_value()) << prefix.to_string();
      } else {
        ASSERT_TRUE(hit.has_value()) << prefix.to_string();
        EXPECT_EQ(*hit, it->second) << prefix.to_string();
      }
    } else {
      const auto it = model_find(prefix);
      EXPECT_EQ(table.erase(prefix), it != model.end()) << prefix.to_string();
      if (it != model.end()) model.erase(it);
    }
    ASSERT_EQ(table.size(), model.size());
  }
  for (const auto& [prefix, value] : model) {
    EXPECT_EQ(table.lookup_exact(prefix), value) << prefix.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpmProperty,
                         ::testing::Values(1, 7, 23, 99, 1234));

}  // namespace
}  // namespace flexsfp::ppe
