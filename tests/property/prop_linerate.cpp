// The central line-rate property behind §5.1 and Figure 1: for ANY datapath
// geometry, the measured loss through the module is zero exactly when the
// analytic capacity inequality says the bus can absorb the offered packet
// rate — the simulator and the arithmetic must agree.
#include <gtest/gtest.h>

#include "apps/nat.hpp"
#include "fabric/testbed.hpp"

namespace flexsfp {
namespace {

using namespace sim;  // time literals

struct LineRateCase {
  std::uint32_t width_bits;
  double clock_mhz;
  std::size_t frame_size;
  double offered_gbps;
  bool bidirectional;
};

class LineRateProperty : public ::testing::TestWithParam<LineRateCase> {};

TEST_P(LineRateProperty, LossMatchesCapacityArithmetic) {
  const auto& param = GetParam();

  fabric::TestbedConfig config;
  config.module.shell.kind = param.bidirectional
                                 ? sfp::ShellKind::two_way_core
                                 : sfp::ShellKind::one_way_filter;
  config.module.shell.datapath =
      hw::DatapathConfig{param.width_bits, hw::ClockDomain::mhz(param.clock_mhz)};
  fabric::TrafficSpec spec;
  spec.rate = DataRate::gbps(param.offered_gbps);
  spec.fixed_size = param.frame_size;
  spec.duration = 1_ms;
  config.edge_traffic = spec;
  if (param.bidirectional) {
    fabric::TrafficSpec rx = spec;
    rx.seed = 99;
    // Independent links are never phase-locked: offset the reverse
    // direction by half an inter-arrival so synchronized-arrival tie
    // breaking does not starve one port at the shared drop-tail FIFO.
    rx.start = spec.rate.serialization_time(param.frame_size + 24) / 2;
    config.optical_traffic = rx;
  }

  fabric::ModuleTestbed testbed(std::move(config),
                                std::make_unique<apps::StaticNat>());
  const auto result = testbed.run();
  const double loss = param.bidirectional
                          ? (result.edge_to_optical.loss_rate +
                             result.optical_to_edge.loss_rate) /
                                2.0
                          : result.edge_to_optical.loss_rate;

  // The analytic predicate: the aggregated offered rate fits when the
  // per-packet beat budget fits into the per-packet wire time.
  const double directions = param.bidirectional ? 2.0 : 1.0;
  const hw::DatapathConfig dp = {param.width_bits,
                                 hw::ClockDomain::mhz(param.clock_mhz)};
  const double wire_time_s =
      double(param.frame_size + 24) * 8.0 / (param.offered_gbps * 1e9);
  const double pps = directions / wire_time_s;
  const double cycles_per_s =
      pps * double(dp.beats_for(param.frame_size));
  const bool fits = cycles_per_s <= double(dp.clock.hz()) * 1.0001;

  if (fits) {
    EXPECT_EQ(result.ppe_queue_drops, 0u)
        << "width " << param.width_bits << " clock " << param.clock_mhz;
    EXPECT_LT(loss, 1e-9);
  } else {
    EXPECT_GT(loss, 0.005)
        << "width " << param.width_bits << " clock " << param.clock_mhz;
    // And the measured loss approximates the capacity deficit. The engine
    // FIFO fills at start and drains after the run, so up to one queue's
    // worth of packets per run escapes the deficit accounting.
    const double deficit = 1.0 - double(dp.clock.hz()) / cycles_per_s;
    const double sent = pps * 1e-3;  // packets over the 1 ms run
    const double queue_slack = 2.0 * 64.0 / sent;
    EXPECT_NEAR(loss, deficit, 0.05 + queue_slack);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, LineRateProperty,
    ::testing::Values(
        // The paper's design point, uni- and bidirectional.
        LineRateCase{64, 156.25, 64, 10, false},
        LineRateCase{64, 156.25, 1518, 10, false},
        LineRateCase{64, 156.25, 64, 10, true},    // overload (Figure 1b)
        LineRateCase{64, 312.5, 64, 10, true},     // the 2x remedy
        LineRateCase{64, 156.25, 1518, 10, true},  // large frames overload too
        LineRateCase{64, 322.27, 1518, 10, true},
        // Narrow clocking: underprovisioned even unidirectionally.
        LineRateCase{64, 100.0, 64, 10, false},
        LineRateCase{64, 100.0, 512, 10, false},
        // Wider buses at lower clocks.
        LineRateCase{128, 100.0, 64, 10, false},
        LineRateCase{256, 50.0, 64, 10, false},
        LineRateCase{512, 25.0, 1518, 10, false},
        // Partial offered load on a slow engine.
        LineRateCase{64, 100.0, 64, 5, false},
        LineRateCase{64, 78.125, 64, 5, true}),
    [](const ::testing::TestParamInfo<LineRateCase>& info) {
      char name[80];
      std::snprintf(name, sizeof name, "w%u_c%d_f%zu_r%d_%s",
                    info.param.width_bits, int(info.param.clock_mhz),
                    info.param.frame_size, int(info.param.offered_gbps),
                    info.param.bidirectional ? "bidir" : "uni");
      return std::string(name);
    });

}  // namespace
}  // namespace flexsfp
