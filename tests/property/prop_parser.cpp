// Malformed-frame properties of the header-stack parser: one deliberately
// truncated or corrupted frame per ParseError value, asserting the parser
// never crashes and reports exactly the promised error code — the reject
// path a hardware parse graph must take deterministically. Plus exhaustive
// truncation and single-byte-corruption sweeps over a known-good frame.
#include <gtest/gtest.h>

#include "net/builder.hpp"
#include "net/parser.hpp"

namespace flexsfp::net {
namespace {

Bytes ipv4_tcp_frame() {
  PacketBuilder builder;
  builder.ethernet(MacAddress::from_u64(0x20), MacAddress::from_u64(0x10));
  builder.ipv4(Ipv4Address::from_octets(10, 0, 0, 1),
               Ipv4Address::from_octets(192, 168, 0, 1), IpProto::tcp);
  builder.tcp(4000, 443);
  builder.payload_size(32);
  return builder.build();
}

TEST(ParserMalformed, CleanFrameReportsNone) {
  const auto parsed = parse_packet(ipv4_tcp_frame());
  EXPECT_EQ(parsed.error, ParseError::none);
  EXPECT_TRUE(parsed.ok());
}

TEST(ParserMalformed, TruncatedEthernet) {
  Bytes frame = ipv4_tcp_frame();
  frame.resize(EthernetHeader::size() - 1);
  const auto parsed = parse_packet(frame);
  EXPECT_EQ(parsed.error, ParseError::truncated_ethernet);
}

TEST(ParserMalformed, TruncatedVlan) {
  PacketBuilder builder;
  builder.ethernet(MacAddress::from_u64(0x20), MacAddress::from_u64(0x10));
  builder.vlan(100, 3);
  builder.ipv4(Ipv4Address::from_octets(10, 0, 0, 1),
               Ipv4Address::from_octets(192, 168, 0, 1), IpProto::udp);
  builder.udp(4000, 53);
  Bytes frame = builder.build();
  frame.resize(EthernetHeader::size() + VlanTag::size() - 2);
  const auto parsed = parse_packet(frame);
  EXPECT_EQ(parsed.error, ParseError::truncated_vlan);
}

TEST(ParserMalformed, TooManyVlanTags) {
  // Three stacked tags by hand; the default ParserOptions accept two.
  Bytes frame(EthernetHeader::size() + 3 * VlanTag::size() + 64, 0);
  EthernetHeader eth;
  eth.dst = MacAddress::from_u64(0x20);
  eth.src = MacAddress::from_u64(0x10);
  eth.ether_type = static_cast<std::uint16_t>(EtherType::vlan);
  eth.serialize_to(frame, 0);
  std::size_t offset = EthernetHeader::size();
  for (int i = 0; i < 3; ++i) {
    VlanTag tag;
    tag.vid = static_cast<std::uint16_t>(100 + i);
    tag.ether_type = i < 2 ? static_cast<std::uint16_t>(EtherType::vlan)
                           : static_cast<std::uint16_t>(EtherType::ipv4);
    tag.serialize_to(frame, offset);
    offset += VlanTag::size();
  }
  const auto parsed = parse_packet(frame);
  EXPECT_EQ(parsed.error, ParseError::too_many_vlan_tags);
  EXPECT_EQ(parsed.vlan_tags.size(), 2u);  // what parsed before the reject
}

TEST(ParserMalformed, BadIpVersion) {
  // EtherType says IPv4 but the version nibble says 6: the encapsulation
  // lies about its payload, which must not be mistaken for truncation.
  Bytes frame = ipv4_tcp_frame();
  frame[EthernetHeader::size()] =
      static_cast<std::uint8_t>(0x60 | (frame[EthernetHeader::size()] & 0x0f));
  const auto parsed = parse_packet(frame);
  EXPECT_EQ(parsed.error, ParseError::bad_ip_version);
  EXPECT_FALSE(parsed.outer.has_ip());
}

TEST(ParserMalformed, TruncatedIpv4) {
  Bytes frame = ipv4_tcp_frame();
  frame.resize(EthernetHeader::size() + Ipv4Header::min_size() - 4);
  const auto parsed = parse_packet(frame);
  EXPECT_EQ(parsed.error, ParseError::truncated_ipv4);
}

TEST(ParserMalformed, TruncatedIpv6) {
  PacketBuilder builder;
  builder.ethernet(MacAddress::from_u64(0x20), MacAddress::from_u64(0x10));
  builder.ipv6(Ipv6Address{}, Ipv6Address{}, IpProto::udp);
  builder.udp(4000, 53);
  Bytes frame = builder.build();
  frame.resize(EthernetHeader::size() + Ipv6Header::size() - 8);
  const auto parsed = parse_packet(frame);
  EXPECT_EQ(parsed.error, ParseError::truncated_ipv6);
}

TEST(ParserMalformed, TruncatedL4) {
  Bytes frame = ipv4_tcp_frame();
  const auto good = parse_packet(frame);
  ASSERT_TRUE(good.ok());
  frame.resize(good.outer.l4_offset + TcpHeader::min_size() - 6);
  const auto parsed = parse_packet(frame);
  EXPECT_EQ(parsed.error, ParseError::truncated_l4);
  EXPECT_TRUE(parsed.outer.ipv4.has_value());  // IP survived the reject
}

TEST(ParserMalformed, BadGre) {
  PacketBuilder builder;
  builder.ethernet(MacAddress::from_u64(0x20), MacAddress::from_u64(0x10));
  builder.ipv4(Ipv4Address::from_octets(10, 0, 0, 1),
               Ipv4Address::from_octets(192, 168, 0, 1), IpProto::gre);
  Bytes frame = builder.build();
  const auto good = parse_packet(frame);
  frame.resize(good.outer.l4_offset + 2);  // GRE needs 4 bytes
  const auto parsed = parse_packet(frame);
  EXPECT_EQ(parsed.error, ParseError::bad_gre);
}

TEST(ParserMalformed, BadVxlan) {
  Bytes frame = ipv4_tcp_frame();
  ASSERT_TRUE(encapsulate_vxlan(frame, MacAddress::from_u64(0x40),
                                MacAddress::from_u64(0x30),
                                Ipv4Address::from_octets(10, 9, 9, 1),
                                Ipv4Address::from_octets(10, 9, 9, 2), 7));
  const auto good = parse_packet(frame);
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(good.vxlan.has_value());
  frame.resize(good.outer.payload_offset + VxlanHeader::size() - 5);
  const auto parsed = parse_packet(frame);
  EXPECT_EQ(parsed.error, ParseError::bad_vxlan);
}

// Property: truncating a good frame at *every* possible length never
// crashes, and the result is either a clean parse (padding-only cut) or a
// truncation-family error — never a stale success with missing headers.
TEST(ParserMalformed, EveryTruncationIsHandled) {
  const Bytes full = ipv4_tcp_frame();
  for (std::size_t len = 0; len < full.size(); ++len) {
    const auto parsed =
        parse_packet(BytesView(full.data(), len));
    if (parsed.ok()) {
      // Only the payload may be missing; every claimed header must fit.
      EXPECT_GE(len, parsed.outer.payload_offset) << "len " << len;
    }
  }
}

// Property: flipping any single byte never crashes the parser; when the
// parse still succeeds the header offsets stay inside the frame.
TEST(ParserMalformed, SingleByteCorruptionNeverCrashes) {
  const Bytes full = ipv4_tcp_frame();
  for (std::size_t i = 0; i < full.size(); ++i) {
    Bytes frame = full;
    frame[i] = static_cast<std::uint8_t>(~frame[i]);
    const auto parsed = parse_packet(frame);
    if (parsed.ok() && parsed.outer.has_ip()) {
      EXPECT_LE(parsed.outer.payload_offset, frame.size()) << "byte " << i;
    }
  }
}

}  // namespace
}  // namespace flexsfp::net
