#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

namespace flexsfp::obs {
namespace {

FlightRecorderConfig record_all(std::size_t capacity = 8) {
  return FlightRecorderConfig{.capacity = capacity, .sample_every = 1};
}

TEST(FlightRecorder, StageInterningDedupes) {
  FlightRecorder recorder;
  const auto a = recorder.register_stage("ppe");
  const auto b = recorder.register_stage("arbiter");
  const auto a2 = recorder.register_stage("ppe");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(recorder.stage_name(a), "ppe");
  EXPECT_EQ(recorder.stage_count(), 2u);
}

TEST(FlightRecorder, SamplingIsDeterministicAndRoughlyOneInN) {
  FlightRecorder recorder{{.capacity = 16, .sample_every = 64}};
  std::size_t hits = 0;
  for (std::uint64_t id = 1; id <= 64 * 1000; ++id) {
    if (recorder.sampled(id)) ++hits;
    EXPECT_EQ(recorder.sampled(id), recorder.sampled(id));
  }
  // Hashed 1-in-64: expect ~1000 within a generous tolerance.
  EXPECT_GT(hits, 700u);
  EXPECT_LT(hits, 1300u);
}

TEST(FlightRecorder, SampleEveryOneTakesAll) {
  FlightRecorder recorder{record_all()};
  for (std::uint64_t id = 1; id <= 100; ++id) EXPECT_TRUE(recorder.sampled(id));
}

TEST(FlightRecorder, DisabledRecorderSamplesNothingAndRecordsNothing) {
  FlightRecorder recorder{{.capacity = 8, .sample_every = 0}};
  EXPECT_FALSE(recorder.enabled());
  EXPECT_FALSE(recorder.sampled(1));
  recorder.record(1, 0, HopKind::emit, 0);
  EXPECT_EQ(recorder.recorded(), 0u);
}

TEST(FlightRecorder, RingRetainsNewestOldestFirst) {
  FlightRecorder recorder{record_all(4)};
  const auto stage = recorder.register_stage("s");
  for (std::uint64_t id = 1; id <= 6; ++id) {
    recorder.record(id, stage, HopKind::deliver, std::int64_t(id) * 10);
  }
  EXPECT_EQ(recorder.recorded(), 6u);
  EXPECT_EQ(recorder.overwritten(), 2u);
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().packet, 3u);  // 1 and 2 were overwritten
  EXPECT_EQ(events.back().packet, 6u);
  EXPECT_EQ(events.back().time_ps, 60);
}

TEST(FlightRecorder, TraceFiltersOnePacket) {
  FlightRecorder recorder{record_all(16)};
  const auto gen = recorder.register_stage("gen");
  const auto ppe = recorder.register_stage("ppe");
  recorder.record(7, gen, HopKind::emit, 100);
  recorder.record(8, gen, HopKind::emit, 110);
  recorder.record(7, ppe, HopKind::serve, 200, /*queue_depth=*/3);
  recorder.record(7, ppe, HopKind::forward, 250, 0, /*aux=*/50);
  const auto trace = recorder.trace(7);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].kind, HopKind::emit);
  EXPECT_EQ(trace[1].queue_depth, 3u);
  EXPECT_EQ(trace[2].aux, 50u);
}

TEST(FlightRecorder, JsonAndCsvRender) {
  FlightRecorder recorder{record_all(4)};
  const auto stage = recorder.register_stage("sink");
  recorder.record(5, stage, HopKind::deliver, 42, 1, 2);
  const auto json = recorder.to_json();
  EXPECT_NE(json.find("\"stages\":[\"sink\"]"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"deliver\""), std::string::npos);
  EXPECT_NE(json.find("\"packet\":5"), std::string::npos);
  EXPECT_EQ(recorder.to_csv(),
            "packet,time_ps,stage,kind,queue_depth,aux\n"
            "5,42,sink,deliver,1,2\n");
}

TEST(FlightRecorder, ClearEmptiesTheRingKeepsStages) {
  FlightRecorder recorder{record_all(4)};
  const auto stage = recorder.register_stage("s");
  recorder.record(1, stage, HopKind::emit, 1);
  recorder.clear();
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_TRUE(recorder.events().empty());
  EXPECT_EQ(recorder.stage_count(), 1u);
}

TEST(HopKindToString, Names) {
  EXPECT_EQ(to_string(HopKind::queue_drop), "queue-drop");
  EXPECT_EQ(to_string(HopKind::dark_drop), "dark-drop");
  EXPECT_EQ(to_string(HopKind::deliver), "deliver");
}

}  // namespace
}  // namespace flexsfp::obs
