#include "obs/metrics.hpp"

#include <gtest/gtest.h>

namespace flexsfp::obs {
namespace {

TEST(MetricRegistry, HandleAddAndRead) {
  MetricRegistry registry;
  const auto fwd = registry.counter("engine.forwarded", {{"app", "nat"}});
  registry.add(fwd);
  registry.add(fwd, 41);
  EXPECT_EQ(registry.value(fwd), 42u);
  EXPECT_EQ(registry.value("engine.forwarded{app=nat}"), 42u);
  EXPECT_EQ(registry.value("engine.forwarded{app=acl}"), 0u);
}

TEST(MetricRegistry, SameNameAndLabelsIsTheSameSeries) {
  MetricRegistry registry;
  const auto a = registry.counter("x", {{"a", "1"}, {"b", "2"}});
  // Label order does not matter: labels are sorted on intern.
  const auto b = registry.counter("x", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a.index, b.index);
  registry.add(a);
  registry.add(b);
  EXPECT_EQ(registry.value(a), 2u);
}

TEST(MetricRegistry, KindMismatchThrows) {
  MetricRegistry registry;
  (void)registry.counter("x");
  EXPECT_THROW((void)registry.gauge("x"), std::invalid_argument);
}

TEST(MetricRegistry, InvalidIdIsANoOp) {
  MetricRegistry registry;
  MetricId none;
  registry.add(none);
  registry.set(none, 9);
  EXPECT_EQ(registry.value(none), 0u);
}

TEST(MetricRegistry, GaugeSetAndSetMax) {
  MetricRegistry registry;
  const auto depth = registry.gauge("queue.high_watermark");
  registry.set_max(depth, 3);
  registry.set_max(depth, 7);
  registry.set_max(depth, 5);
  EXPECT_EQ(registry.value(depth), 7u);
  registry.set(depth, 1);
  EXPECT_EQ(registry.value(depth), 1u);
}

TEST(MetricRegistry, UniqueNamesAreDeterministic) {
  MetricRegistry registry;
  EXPECT_EQ(registry.unique_name("ppe"), "ppe");
  EXPECT_EQ(registry.unique_name("ppe"), "ppe1");
  EXPECT_EQ(registry.unique_name("ppe"), "ppe2");
  EXPECT_EQ(registry.unique_name("sink"), "sink");
}

TEST(MetricRegistry, SnapshotIsKeySorted) {
  MetricRegistry registry;
  registry.add(registry.counter("z.last"), 1);
  registry.add(registry.counter("a.first"), 2);
  registry.add(registry.counter("m.mid", {{"port", "0"}}), 3);
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap.samples()[0].key(), "a.first");
  EXPECT_EQ(snap.samples()[1].key(), "m.mid{port=0}");
  EXPECT_EQ(snap.samples()[2].key(), "z.last");
}

TEST(MetricRegistry, CollectorsContributeAndUnregister) {
  MetricRegistry registry;
  const auto token = registry.register_collector([](MetricSnapshot& snap) {
    snap.add_sample(
        {"app.nat_stats.packets", {{"index", "0"}}, MetricKind::counter, 5});
  });
  EXPECT_EQ(registry.snapshot().value("app.nat_stats.packets{index=0}"), 5u);
  registry.unregister_collector(token);
  EXPECT_FALSE(
      registry.snapshot().contains("app.nat_stats.packets{index=0}"));
}

TEST(MetricSnapshot, MergeSumsCountersAndMaxesGauges) {
  MetricSnapshot a;
  a.add_sample({"pkts", {}, MetricKind::counter, 10});
  a.add_sample({"depth", {}, MetricKind::gauge, 4});
  MetricSnapshot b;
  b.add_sample({"pkts", {}, MetricKind::counter, 32});
  b.add_sample({"depth", {}, MetricKind::gauge, 2});
  b.add_sample({"new", {}, MetricKind::counter, 1});
  a.merge(b);
  EXPECT_EQ(a.value("pkts"), 42u);
  EXPECT_EQ(a.value("depth"), 4u);
  EXPECT_EQ(a.value("new"), 1u);
}

TEST(MetricSnapshot, MergeIsOrderIndependentForEquality) {
  MetricSnapshot a, b;
  a.add_sample({"x", {{"p", "0"}}, MetricKind::counter, 1});
  b.add_sample({"x", {{"p", "1"}}, MetricKind::counter, 2});
  MetricSnapshot ab = a, ba = b;
  ab.merge(b);
  ba.merge(a);
  EXPECT_EQ(ab, ba);  // key-sorted storage: same content, same layout
}

TEST(MetricSnapshot, DiffSubtractsCountersKeepsGauges) {
  MetricSnapshot before, after;
  before.add_sample({"pkts", {}, MetricKind::counter, 10});
  before.add_sample({"depth", {}, MetricKind::gauge, 9});
  after.add_sample({"pkts", {}, MetricKind::counter, 25});
  after.add_sample({"depth", {}, MetricKind::gauge, 3});
  const auto delta = after.diff(before);
  EXPECT_EQ(delta.value("pkts"), 15u);
  EXPECT_EQ(delta.value("depth"), 3u);
}

TEST(MetricSnapshot, WithLabelTagsEverySeries) {
  MetricSnapshot snap;
  snap.add_sample({"pkts", {}, MetricKind::counter, 1});
  snap.add_sample({"pkts", {{"port", "x"}}, MetricKind::counter, 2});
  const auto tagged = snap.with_label("port", "3");
  EXPECT_EQ(tagged.value("pkts{port=3}"), 3u);  // both series land on port=3
}

TEST(MetricSnapshot, SumAcrossLabels) {
  MetricSnapshot snap;
  snap.add_sample({"pkts", {{"p", "0"}}, MetricKind::counter, 1});
  snap.add_sample({"pkts", {{"p", "1"}}, MetricKind::counter, 2});
  snap.add_sample({"pkts2", {}, MetricKind::counter, 100});  // prefix decoy
  EXPECT_EQ(snap.sum("pkts"), 3u);
}

TEST(MetricSnapshot, JsonAndCsvRender) {
  MetricSnapshot snap;
  snap.add_sample({"pkts", {{"app", "nat"}}, MetricKind::counter, 7});
  const auto json = snap.to_json();
  EXPECT_NE(json.find("\"key\":\"pkts{app=nat}\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":7"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"counter\""), std::string::npos);
  const auto csv = snap.to_csv();
  EXPECT_EQ(csv, "key,kind,value\n\"pkts{app=nat}\",counter,7\n");
}

TEST(MetricRegistry, ResetValuesKeepsRegistrations) {
  MetricRegistry registry;
  const auto id = registry.counter("x");
  registry.add(id, 5);
  registry.reset_values();
  EXPECT_EQ(registry.value(id), 0u);
  EXPECT_EQ(registry.counter("x").index, id.index);
}

}  // namespace
}  // namespace flexsfp::obs
