#include "sim/link.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace flexsfp::sim {
namespace {

net::PacketPtr packet_of(std::size_t size) {
  return net::make_packet(net::Bytes(size, 0));
}

class Collector final : public PacketHandler {
 public:
  explicit Collector(Simulation& sim) : sim_(sim) {}
  void handle_packet(net::PacketPtr packet) override {
    arrivals.emplace_back(sim_.now(), std::move(packet));
  }
  std::vector<std::pair<TimePs, net::PacketPtr>> arrivals;

 private:
  Simulation& sim_;
};

TEST(Link, SerializationPlusPropagation) {
  Simulation sim;
  Collector sink(sim);
  Link link(sim, line_rate_10g, 5_ns, sink);
  link.handle_packet(packet_of(64));  // wire 88 B -> 70.4 ns
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_EQ(sink.arrivals[0].first, 70'400_ps + 5_ns);
}

TEST(Link, BackToBackPacketsQueueBehindTransmitter) {
  Simulation sim;
  Collector sink(sim);
  Link link(sim, line_rate_10g, 0, sink);
  link.handle_packet(packet_of(64));
  link.handle_packet(packet_of(64));
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(sink.arrivals[0].first, 70'400_ps);
  EXPECT_EQ(sink.arrivals[1].first, 140'800_ps);
}

TEST(Link, UtilizationAccountsBusyTime) {
  Simulation sim;
  Collector sink(sim);
  Link link(sim, line_rate_10g, 0, sink);
  link.handle_packet(packet_of(64));
  sim.run();
  EXPECT_EQ(link.busy_time(), 70'400_ps);
  EXPECT_NEAR(link.utilization(140'800_ps), 0.5, 1e-9);
  EXPECT_EQ(link.meter().packets(), 1u);
  EXPECT_EQ(link.meter().bytes(), 64u);
  // The wire meter counts the bytes busy_ps is computed from (frame +
  // preamble/IFG), so occupancy math never mixes units with goodput.
  EXPECT_EQ(link.wire_meter().packets(), 1u);
  EXPECT_EQ(link.wire_meter().bytes(), 88u);
}

TEST(BoundedQueue, DropsWhenFull) {
  BoundedQueue queue(2);
  EXPECT_TRUE(queue.push(packet_of(1)));
  EXPECT_TRUE(queue.push(packet_of(2)));
  EXPECT_FALSE(queue.push(packet_of(3)));
  EXPECT_EQ(queue.drops(), 1u);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue queue(4);
  auto a = packet_of(1);
  auto b = packet_of(2);
  queue.push(a);
  queue.push(b);
  EXPECT_EQ(queue.pop(), a);
  EXPECT_EQ(queue.pop(), b);
  EXPECT_EQ(queue.pop(), nullptr);
}

// A server taking a fixed 100 ns per packet.
class FixedServer final : public QueuedServer {
 public:
  FixedServer(Simulation& sim, std::size_t capacity, Collector& out)
      : QueuedServer(sim, capacity), out_(out) {}

 protected:
  TimePs service_time(const net::Packet&) override { return 100_ns; }
  void finish(net::PacketPtr packet) override {
    out_.handle_packet(std::move(packet));
  }

 private:
  Collector& out_;
};

TEST(QueuedServer, ServesSequentially) {
  Simulation sim;
  Collector sink(sim);
  FixedServer server(sim, 16, sink);
  for (int i = 0; i < 3; ++i) server.handle_packet(packet_of(64));
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 3u);
  EXPECT_EQ(sink.arrivals[0].first, 100_ns);
  EXPECT_EQ(sink.arrivals[1].first, 200_ns);
  EXPECT_EQ(sink.arrivals[2].first, 300_ns);
  EXPECT_EQ(server.busy_time(), 300_ns);
}

TEST(QueuedServer, OverflowCountsDrops) {
  Simulation sim;
  Collector sink(sim);
  FixedServer server(sim, 2, sink);
  // One in service + 2 queued fit; the 4th (while the 1st is in service)
  // overflows.
  for (int i = 0; i < 4; ++i) server.handle_packet(packet_of(64));
  sim.run();
  EXPECT_EQ(server.drops(), 1u);
  EXPECT_EQ(sink.arrivals.size(), 3u);
}

TEST(Link, ReportsThroughMetricRegistry) {
  Simulation sim;
  Collector sink(sim);
  Link link(sim, line_rate_10g, 0, sink, "uplink");
  Link twin(sim, line_rate_10g, 0, sink, "uplink");  // name uniquified
  EXPECT_EQ(link.name(), "uplink");
  EXPECT_EQ(twin.name(), "uplink1");
  link.handle_packet(packet_of(64));
  sim.run();
  const auto snap = sim.metrics().snapshot();
  EXPECT_EQ(snap.value("link.traffic.packets{link=uplink}"), 1u);
  EXPECT_EQ(snap.value("link.traffic.bytes{link=uplink}"), 64u);
  EXPECT_EQ(snap.value("link.busy_ps{link=uplink}"), 70'400u);
  EXPECT_EQ(snap.value("link.traffic.packets{link=uplink1}"), 0u);
}

TEST(Link, RecordsTransitHopsForSampledPackets) {
  Simulation sim;
  sim.flight().configure({.capacity = 8, .sample_every = 1});
  Collector sink(sim);
  Link link(sim, line_rate_10g, 5_ns, sink, "wire");
  auto packet = packet_of(64);
  packet->set_id(sim.next_packet_id());
  link.handle_packet(std::move(packet));
  sim.run();
  const auto trace = sim.flight().trace(1);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].kind, obs::HopKind::transit);
  EXPECT_EQ(sim.flight().stage_name(trace[0].stage), "wire");
  EXPECT_EQ(trace[0].aux, 70'400u);  // serialization time rides in aux
}

TEST(QueuedServer, ReportsThroughMetricRegistry) {
  Simulation sim;
  sim.flight().configure({.capacity = 16, .sample_every = 1});
  Collector sink(sim);
  FixedServer server(sim, 2, sink);
  EXPECT_EQ(server.stage_name(), "server");
  for (int i = 0; i < 4; ++i) {
    auto packet = packet_of(64);
    packet->set_id(sim.next_packet_id());
    server.handle_packet(std::move(packet));
  }
  sim.run();
  const auto snap = sim.metrics().snapshot();
  EXPECT_EQ(snap.value("server.queue_drops{stage=server}"), 1u);
  EXPECT_EQ(snap.value("server.served.packets{stage=server}"), 3u);
  EXPECT_EQ(snap.value("server.queue_high_watermark{stage=server}"), 2u);
  EXPECT_EQ(snap.value("server.busy_ps{stage=server}"),
            std::uint64_t(300_ns));
  // The overflowed packet (id 4) recorded a queue-drop hop.
  const auto trace = sim.flight().trace(4);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].kind, obs::HopKind::queue_drop);
  // Served packets each recorded a serve hop with the service time in aux.
  const auto served = sim.flight().trace(1);
  ASSERT_EQ(served.size(), 1u);
  EXPECT_EQ(served[0].kind, obs::HopKind::serve);
  EXPECT_EQ(served[0].aux, std::uint64_t(100_ns));
}

// Regression for the scheduled-lambda `this` captures: Link::handle_packet
// and QueuedServer::start_service both schedule events that dereference the
// component. Destroying the component while those events are in flight must
// be safe — the lifetime token turns the stale event into a no-op. Without
// the token these tests are a use-after-free the ASan CI build catches.
TEST(Link, DestroyedWhilePacketInFlightIsSafe) {
  Simulation sim;
  Collector sink(sim);
  auto link = std::make_unique<Link>(sim, line_rate_10g, 5_ns, sink);
  link->handle_packet(packet_of(64));  // arrival event now holds `this`
  link.reset();                        // torn down before the event fires
  sim.run();
  EXPECT_TRUE(sink.arrivals.empty());  // the in-flight packet died with it
}

TEST(QueuedServer, DestroyedMidServiceIsSafe) {
  Simulation sim;
  Collector sink(sim);
  auto server = std::make_unique<FixedServer>(sim, 16, sink);
  server->handle_packet(packet_of(64));  // finish event scheduled at +100ns
  server->handle_packet(packet_of(64));  // queued behind it
  server.reset();
  sim.run();
  EXPECT_TRUE(sink.arrivals.empty());
}

TEST(QueuedServer, ResumesAfterIdle) {
  Simulation sim;
  Collector sink(sim);
  FixedServer server(sim, 16, sink);
  server.handle_packet(packet_of(64));
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  server.handle_packet(packet_of(64));
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(sink.arrivals[1].first, sink.arrivals[0].first + 100_ns);
}

}  // namespace
}  // namespace flexsfp::sim
