#include "sim/link.hpp"

#include <gtest/gtest.h>

namespace flexsfp::sim {
namespace {

net::PacketPtr packet_of(std::size_t size) {
  return net::make_packet(net::Bytes(size, 0));
}

class Collector final : public PacketHandler {
 public:
  explicit Collector(Simulation& sim) : sim_(sim) {}
  void handle_packet(net::PacketPtr packet) override {
    arrivals.emplace_back(sim_.now(), std::move(packet));
  }
  std::vector<std::pair<TimePs, net::PacketPtr>> arrivals;

 private:
  Simulation& sim_;
};

TEST(Link, SerializationPlusPropagation) {
  Simulation sim;
  Collector sink(sim);
  Link link(sim, line_rate_10g, 5_ns, sink);
  link.handle_packet(packet_of(64));  // wire 88 B -> 70.4 ns
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_EQ(sink.arrivals[0].first, 70'400_ps + 5_ns);
}

TEST(Link, BackToBackPacketsQueueBehindTransmitter) {
  Simulation sim;
  Collector sink(sim);
  Link link(sim, line_rate_10g, 0, sink);
  link.handle_packet(packet_of(64));
  link.handle_packet(packet_of(64));
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(sink.arrivals[0].first, 70'400_ps);
  EXPECT_EQ(sink.arrivals[1].first, 140'800_ps);
}

TEST(Link, UtilizationAccountsBusyTime) {
  Simulation sim;
  Collector sink(sim);
  Link link(sim, line_rate_10g, 0, sink);
  link.handle_packet(packet_of(64));
  sim.run();
  EXPECT_EQ(link.busy_time(), 70'400_ps);
  EXPECT_NEAR(link.utilization(140'800_ps), 0.5, 1e-9);
  EXPECT_EQ(link.meter().packets(), 1u);
  EXPECT_EQ(link.meter().bytes(), 64u);
}

TEST(BoundedQueue, DropsWhenFull) {
  BoundedQueue queue(2);
  EXPECT_TRUE(queue.push(packet_of(1)));
  EXPECT_TRUE(queue.push(packet_of(2)));
  EXPECT_FALSE(queue.push(packet_of(3)));
  EXPECT_EQ(queue.drops(), 1u);
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.high_watermark(), 2u);
}

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue queue(4);
  auto a = packet_of(1);
  auto b = packet_of(2);
  queue.push(a);
  queue.push(b);
  EXPECT_EQ(queue.pop(), a);
  EXPECT_EQ(queue.pop(), b);
  EXPECT_EQ(queue.pop(), nullptr);
}

// A server taking a fixed 100 ns per packet.
class FixedServer final : public QueuedServer {
 public:
  FixedServer(Simulation& sim, std::size_t capacity, Collector& out)
      : QueuedServer(sim, capacity), out_(out) {}

 protected:
  TimePs service_time(const net::Packet&) override { return 100_ns; }
  void finish(net::PacketPtr packet) override {
    out_.handle_packet(std::move(packet));
  }

 private:
  Collector& out_;
};

TEST(QueuedServer, ServesSequentially) {
  Simulation sim;
  Collector sink(sim);
  FixedServer server(sim, 16, sink);
  for (int i = 0; i < 3; ++i) server.handle_packet(packet_of(64));
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 3u);
  EXPECT_EQ(sink.arrivals[0].first, 100_ns);
  EXPECT_EQ(sink.arrivals[1].first, 200_ns);
  EXPECT_EQ(sink.arrivals[2].first, 300_ns);
  EXPECT_EQ(server.busy_time(), 300_ns);
}

TEST(QueuedServer, OverflowCountsDrops) {
  Simulation sim;
  Collector sink(sim);
  FixedServer server(sim, 2, sink);
  // One in service + 2 queued fit; the 4th (while the 1st is in service)
  // overflows.
  for (int i = 0; i < 4; ++i) server.handle_packet(packet_of(64));
  sim.run();
  EXPECT_EQ(server.drops(), 1u);
  EXPECT_EQ(sink.arrivals.size(), 3u);
}

TEST(QueuedServer, ResumesAfterIdle) {
  Simulation sim;
  Collector sink(sim);
  FixedServer server(sim, 16, sink);
  server.handle_packet(packet_of(64));
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  server.handle_packet(packet_of(64));
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(sink.arrivals[1].first, sink.arrivals[0].first + 100_ns);
}

}  // namespace
}  // namespace flexsfp::sim
