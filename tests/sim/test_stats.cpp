#include "sim/stats.hpp"

#include <gtest/gtest.h>

namespace flexsfp::sim {
namespace {

TEST(TrafficMeter, RatesFromSpan) {
  TrafficMeter meter;
  meter.record(1000);
  meter.record(1000);
  // 2000 bytes over 1 ms -> 16 Mb/s, 2000 pps.
  EXPECT_DOUBLE_EQ(meter.bits_per_second(1_ms), 16e6);
  EXPECT_DOUBLE_EQ(meter.packets_per_second(1_ms), 2000.0);
  EXPECT_EQ(meter.packets(), 2u);
  meter.reset();
  EXPECT_EQ(meter.bytes(), 0u);
}

TEST(TrafficMeter, ZeroSpanGivesZeroRate) {
  TrafficMeter meter;
  meter.record(100);
  EXPECT_DOUBLE_EQ(meter.bits_per_second(0), 0.0);
}

TEST(LatencyHistogram, BasicStats) {
  LatencyHistogram hist;
  hist.record(100_ns);
  hist.record(200_ns);
  hist.record(300_ns);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_EQ(hist.min(), 100_ns);
  EXPECT_EQ(hist.max(), 300_ns);
  EXPECT_NEAR(hist.mean_ns(), 200.0, 1.0);
}

TEST(LatencyHistogram, PercentilesWithinBucketResolution) {
  LatencyHistogram hist;
  for (int i = 1; i <= 1000; ++i) {
    hist.record(TimePs(i) * 1_us / 1000);  // 1 ns .. 1 us uniformly
  }
  // ~4% geometric bucket resolution.
  EXPECT_NEAR(to_nanos(hist.percentile(50)), 500.0, 35.0);
  EXPECT_NEAR(to_nanos(hist.percentile(99)), 990.0, 60.0);
  EXPECT_LE(hist.percentile(0), hist.percentile(50));
  EXPECT_LE(hist.percentile(50), hist.percentile(100));
}

TEST(LatencyHistogram, EmptyIsSafe) {
  const LatencyHistogram hist;
  EXPECT_EQ(hist.percentile(50), 0);
  EXPECT_EQ(hist.min(), 0);
  EXPECT_EQ(hist.max(), 0);
  EXPECT_DOUBLE_EQ(hist.mean_ns(), 0.0);
}

TEST(LatencyHistogram, SubNanosecondClampsToFirstBucket) {
  LatencyHistogram hist;
  hist.record(100_ps);
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_GT(hist.percentile(50), 0);
}

TEST(LatencyHistogram, SummaryMentionsPercentiles) {
  LatencyHistogram hist;
  hist.record(1_us);
  const auto s = hist.summary();
  EXPECT_NE(s.find("p99"), std::string::npos);
  EXPECT_NE(s.find("n=1"), std::string::npos);
}

TEST(LatencyHistogram, ResetClears) {
  LatencyHistogram hist;
  hist.record(1_us);
  hist.reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.max(), 0);
}

TEST(WindowedRate, ReportsCompletedWindows) {
  WindowedRate rate(1_ms);
  // 125 kB in the first window = 1 Gb/s.
  rate.record(0, 125'000);
  EXPECT_DOUBLE_EQ(rate.last_window_bps(), 0.0);  // window not complete
  rate.record(1_ms + 1, 1);                       // rolls the window
  EXPECT_NEAR(rate.last_window_bps(), 1e9, 1e3);
  EXPECT_NEAR(rate.peak_bps(), 1e9, 1e3);
}

TEST(WindowedRate, QuietWindowsDropRateToZero) {
  WindowedRate rate(1_ms);
  rate.record(0, 125'000);
  rate.record(10_ms, 1);  // several empty windows in between
  EXPECT_DOUBLE_EQ(rate.last_window_bps(), 0.0);
  EXPECT_NEAR(rate.peak_bps(), 1e9, 1e3);  // peak remembers the burst
}

}  // namespace
}  // namespace flexsfp::sim
