#include "sim/stats.hpp"

#include <gtest/gtest.h>

namespace flexsfp::sim {
namespace {

TEST(TrafficMeter, RatesFromSpan) {
  TrafficMeter meter;
  meter.record(1000);
  meter.record(1000);
  // 2000 bytes over 1 ms -> 16 Mb/s, 2000 pps.
  EXPECT_DOUBLE_EQ(meter.bits_per_second(1_ms), 16e6);
  EXPECT_DOUBLE_EQ(meter.packets_per_second(1_ms), 2000.0);
  EXPECT_EQ(meter.packets(), 2u);
  meter.reset();
  EXPECT_EQ(meter.bytes(), 0u);
}

TEST(TrafficMeter, ZeroSpanGivesZeroRate) {
  TrafficMeter meter;
  meter.record(100);
  EXPECT_DOUBLE_EQ(meter.bits_per_second(0), 0.0);
}

TEST(LatencyHistogram, BasicStats) {
  LatencyHistogram hist;
  hist.record(100_ns);
  hist.record(200_ns);
  hist.record(300_ns);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_EQ(hist.min(), 100_ns);
  EXPECT_EQ(hist.max(), 300_ns);
  EXPECT_NEAR(hist.mean_ns(), 200.0, 1.0);
}

TEST(LatencyHistogram, PercentilesWithinBucketResolution) {
  LatencyHistogram hist;
  for (int i = 1; i <= 1000; ++i) {
    hist.record(TimePs(i) * 1_us / 1000);  // 1 ns .. 1 us uniformly
  }
  // ~4% geometric bucket resolution.
  EXPECT_NEAR(to_nanos(hist.percentile(50)), 500.0, 35.0);
  EXPECT_NEAR(to_nanos(hist.percentile(99)), 990.0, 60.0);
  EXPECT_LE(hist.percentile(0), hist.percentile(50));
  EXPECT_LE(hist.percentile(50), hist.percentile(100));
}

TEST(LatencyHistogram, EmptyIsSafe) {
  const LatencyHistogram hist;
  EXPECT_EQ(hist.percentile(50), 0);
  EXPECT_EQ(hist.min(), 0);
  EXPECT_EQ(hist.max(), 0);
  EXPECT_DOUBLE_EQ(hist.mean_ns(), 0.0);
}

TEST(LatencyHistogram, SubNanosecondClampsToFirstBucket) {
  LatencyHistogram hist;
  hist.record(100_ps);
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_GT(hist.percentile(50), 0);
}

TEST(LatencyHistogram, SummaryMentionsPercentiles) {
  LatencyHistogram hist;
  hist.record(1_us);
  const auto s = hist.summary();
  EXPECT_NE(s.find("p99"), std::string::npos);
  EXPECT_NE(s.find("n=1"), std::string::npos);
}

TEST(LatencyHistogram, ResetClears) {
  LatencyHistogram hist;
  hist.record(1_us);
  hist.reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.max(), 0);
}

TEST(TrafficMeter, MergeAddsCounts) {
  TrafficMeter a, b;
  a.record(100);
  b.record(200);
  b.record(300);
  a.merge(b);
  EXPECT_EQ(a.packets(), 3u);
  EXPECT_EQ(a.bytes(), 600u);
  EXPECT_EQ(b.packets(), 2u);  // the source is untouched
}

TEST(LatencyHistogram, MergeEqualsUnionOfSamples) {
  // Record the same samples split across two histograms and all in one;
  // the merge must be indistinguishable from the union.
  LatencyHistogram left, right, whole;
  for (int i = 1; i <= 500; ++i) {
    const TimePs sample = TimePs(i) * 2_ns;
    (i % 2 == 0 ? left : right).record(sample);
    whole.record(sample);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
  EXPECT_EQ(left.percentile(50), whole.percentile(50));
  EXPECT_EQ(left.percentile(99), whole.percentile(99));
  EXPECT_NEAR(left.mean_ns(), whole.mean_ns(), 1e-9);
}

TEST(LatencyHistogram, MergeWithEmptyIsIdentity) {
  LatencyHistogram hist, empty;
  hist.record(1_us);
  hist.merge(empty);
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_EQ(hist.min(), 1_us);

  empty.merge(hist);  // empty picks up the other side's min/max
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.min(), 1_us);
  EXPECT_EQ(empty.max(), 1_us);
}

TEST(Stats, MergeFoldsEveryField) {
  Stats a, b;
  a.sent.record(64);
  a.received.record(64);
  a.latency.record(100_ns);
  a.queue_drops = 1;
  a.app_drops = 2;
  a.dark_drops = 3;
  a.events = 10;

  b.sent.record(1518);
  b.sent.record(1518);
  b.latency.record(900_ns);
  b.queue_drops = 10;
  b.app_drops = 20;
  b.dark_drops = 30;
  b.events = 100;

  a.merge(b);
  EXPECT_EQ(a.sent.packets(), 3u);
  EXPECT_EQ(a.sent.bytes(), 64u + 2 * 1518u);
  EXPECT_EQ(a.received.packets(), 1u);
  EXPECT_EQ(a.latency.count(), 2u);
  EXPECT_EQ(a.latency.min(), 100_ns);
  EXPECT_EQ(a.latency.max(), 900_ns);
  EXPECT_EQ(a.queue_drops, 11u);
  EXPECT_EQ(a.app_drops, 22u);
  EXPECT_EQ(a.dark_drops, 33u);
  EXPECT_EQ(a.events, 110u);
  EXPECT_EQ(a.total_drops(), 66u);
}

TEST(Stats, MergeIsAssociativeOnCounters) {
  Stats shard[3];
  for (int i = 0; i < 3; ++i) {
    for (int p = 0; p <= i; ++p) shard[i].sent.record(64);
    shard[i].queue_drops = std::uint64_t(i);
  }
  Stats left_fold;  // (s0 + s1) + s2
  left_fold.merge(shard[0]);
  left_fold.merge(shard[1]);
  left_fold.merge(shard[2]);

  Stats pair;  // s0 + (s1 + s2)
  pair.merge(shard[1]);
  pair.merge(shard[2]);
  Stats right_fold;
  right_fold.merge(shard[0]);
  right_fold.merge(pair);

  EXPECT_EQ(left_fold.sent.packets(), right_fold.sent.packets());
  EXPECT_EQ(left_fold.queue_drops, right_fold.queue_drops);
}

TEST(Stats, LossRateFromMeters) {
  Stats stats;
  EXPECT_DOUBLE_EQ(stats.loss_rate(), 0.0);  // nothing sent
  for (int i = 0; i < 4; ++i) stats.sent.record(64);
  for (int i = 0; i < 3; ++i) stats.received.record(64);
  EXPECT_DOUBLE_EQ(stats.loss_rate(), 0.25);
}

TEST(WindowedRate, ReportsCompletedWindows) {
  WindowedRate rate(1_ms);
  // 125 kB in the first window = 1 Gb/s.
  rate.record(0, 125'000);
  EXPECT_DOUBLE_EQ(rate.last_window_bps(), 0.0);  // window not complete
  rate.record(1_ms + 1, 1);                       // rolls the window
  EXPECT_NEAR(rate.last_window_bps(), 1e9, 1e3);
  EXPECT_NEAR(rate.peak_bps(), 1e9, 1e3);
}

TEST(WindowedRate, QuietWindowsDropRateToZero) {
  WindowedRate rate(1_ms);
  rate.record(0, 125'000);
  rate.record(10_ms, 1);  // several empty windows in between
  EXPECT_DOUBLE_EQ(rate.last_window_bps(), 0.0);
  EXPECT_NEAR(rate.peak_bps(), 1e9, 1e3);  // peak remembers the burst
}

}  // namespace
}  // namespace flexsfp::sim
