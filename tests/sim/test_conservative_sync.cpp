// The conservative-sync primitives: bounded windows on one Simulation
// (run_before / next_event_time) and the lockstep round engine that drives
// many of them from a persistent worker pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/parallel.hpp"
#include "sim/simulation.hpp"

namespace flexsfp::sim {
namespace {

TEST(RunBefore, ExecutesStrictlyBeforeTheHorizonThenAdvancesNow) {
  Simulation sim;
  std::vector<int> fired;
  sim.schedule_at(10, [&] { fired.push_back(10); });
  sim.schedule_at(99, [&] { fired.push_back(99); });
  sim.schedule_at(100, [&] { fired.push_back(100); });
  sim.schedule_at(150, [&] { fired.push_back(150); });

  EXPECT_EQ(sim.run_before(100), 2u);  // 10 and 99; 100 is NOT < 100
  EXPECT_EQ(sim.now(), 100);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[1], 99);
  EXPECT_EQ(sim.next_event_time(), 100);

  EXPECT_EQ(sim.run_before(200), 2u);
  EXPECT_EQ(sim.now(), 200);
  EXPECT_EQ(fired.size(), 4u);
}

TEST(RunBefore, AdvancesNowEvenWhenTheQueueIsEmpty) {
  Simulation sim;
  EXPECT_EQ(sim.run_before(5'000), 0u);
  EXPECT_EQ(sim.now(), 5'000);
  // A shard that reached T can never travel back before T.
  EXPECT_EQ(sim.run_before(1'000), 0u);
  EXPECT_EQ(sim.now(), 5'000);
}

TEST(RunBefore, EventsScheduledInsideTheWindowStillRun) {
  Simulation sim;
  int cascades = 0;
  sim.schedule_at(10, [&] {
    sim.schedule_in(5, [&] { ++cascades; });   // t = 15, inside
    sim.schedule_in(200, [&] { ++cascades; });  // t = 210, outside
  });
  EXPECT_EQ(sim.run_before(100), 2u);
  EXPECT_EQ(cascades, 1);
  EXPECT_EQ(sim.next_event_time(), 210);
}

TEST(NextEventTime, ReportsTheHorizonSentinelWhenEmpty) {
  Simulation sim;
  EXPECT_EQ(sim.next_event_time(), time_horizon);
  sim.schedule_at(42, [] {});
  EXPECT_EQ(sim.next_event_time(), 42);
}

TEST(ResolveThreads, NeverExceedsHardwareOrJobCount) {
  const unsigned hardware =
      std::max(1u, std::thread::hardware_concurrency());
  EXPECT_LE(resolve_threads(64, 0), hardware);
  EXPECT_LE(resolve_threads(64, 4 * hardware), hardware);
  EXPECT_EQ(resolve_threads(2, 16), std::min(2u, hardware));
  EXPECT_GE(resolve_threads(8, 1), 1u);
  // Planning semantics are unchanged: requests cap at the job count only.
  EXPECT_EQ(resolve_workers(2, 16), 2u);
}

TEST(RunLockstepRounds, RunsEveryJobOncePerRoundUntilExchangeStops) {
  constexpr std::size_t jobs = 5;
  constexpr int rounds = 7;
  std::vector<std::atomic<int>> hits(jobs);
  int exchanges = 0;
  run_lockstep_rounds(
      jobs, 4, [&](std::size_t i) { hits[i].fetch_add(1); },
      [&] { return ++exchanges < rounds; });
  EXPECT_EQ(exchanges, rounds);
  for (const auto& h : hits) EXPECT_EQ(h.load(), rounds);
}

TEST(RunLockstepRounds, ExchangeSeesEveryAdvanceOfItsRound) {
  // The barrier must order all advance bodies before the exchange step:
  // every round checks that exactly `jobs` new increments landed.
  constexpr std::size_t jobs = 8;
  std::vector<std::atomic<int>> hits(jobs);
  int round = 0;
  bool ordered = true;
  run_lockstep_rounds(
      jobs, 3, [&](std::size_t i) { hits[i].fetch_add(1); },
      [&] {
        ++round;
        for (const auto& h : hits) ordered = ordered && h.load() == round;
        return round < 5;
      });
  EXPECT_TRUE(ordered);
}

TEST(RunLockstepRounds, SequentialPathAdvancesInIndexOrder) {
  std::vector<std::size_t> order;
  run_lockstep_rounds(
      4, 1, [&](std::size_t i) { order.push_back(i); },
      [&] { return order.size() < 8; });
  ASSERT_EQ(order.size(), 8u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i % 4);
  }
}

TEST(RunLockstepRounds, PropagatesTheLowestIndexedAdvanceError) {
  for (const unsigned workers : {1u, 4u}) {
    int exchanges = 0;
    try {
      run_lockstep_rounds(
          8, workers,
          [](std::size_t i) {
            if (i >= 3) throw std::runtime_error("job " + std::to_string(i));
          },
          [&] {
            ++exchanges;
            return false;
          });
      FAIL() << "expected an exception (workers=" << workers << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "job 3");
    }
    // A failed round must never run its exchange step.
    EXPECT_EQ(exchanges, 0);
  }
}

TEST(RunLockstepRounds, PropagatesExchangeErrors) {
  EXPECT_THROW(run_lockstep_rounds(
                   4, 2, [](std::size_t) {},
                   []() -> bool { throw std::logic_error("exchange"); }),
               std::logic_error);
}

TEST(RunLockstepRounds, DrivesSimulationsToASharedHorizonDeterministically) {
  // Miniature conservative sync: three sims ping events forward in windows;
  // the merged executed-event counts must not depend on the worker count.
  const auto run = [](unsigned workers) {
    std::vector<std::unique_ptr<Simulation>> sims;
    for (int s = 0; s < 3; ++s) {
      sims.push_back(std::make_unique<Simulation>());
      auto* sim = sims.back().get();
      for (TimePs t = 10; t <= 1'000; t += 10 * (s + 1)) {
        sim->schedule_at(t, [] {});
      }
    }
    constexpr TimePs lookahead = 100;
    const auto horizon_of = [&]() {
      TimePs min_next = time_horizon;
      for (auto& sim : sims) {
        min_next = std::min(min_next, sim->next_event_time());
      }
      return min_next == time_horizon ? time_horizon
                                      : saturating_add(min_next, lookahead);
    };
    TimePs horizon = horizon_of();
    std::vector<std::uint64_t> executed;
    run_lockstep_rounds(
        sims.size(), workers,
        [&](std::size_t i) { (void)sims[i]->run_before(horizon); },
        [&] {
          horizon = horizon_of();
          return horizon != time_horizon;
        });
    for (auto& sim : sims) executed.push_back(sim->executed_events());
    return executed;
  };
  const auto sequential = run(1);
  EXPECT_EQ(run(2), sequential);
  EXPECT_EQ(run(4), sequential);
}

}  // namespace
}  // namespace flexsfp::sim
