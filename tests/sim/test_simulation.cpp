#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include "sim/time.hpp"

namespace flexsfp::sim {
namespace {

TEST(Time, LiteralsAndConversions) {
  EXPECT_EQ(1_ns, 1000_ps);
  EXPECT_EQ(1_us, 1000_ns);
  EXPECT_EQ(1_ms, 1000_us);
  EXPECT_EQ(1_s, 1000_ms);
  EXPECT_DOUBLE_EQ(to_seconds(1_s), 1.0);
  EXPECT_DOUBLE_EQ(to_nanos(2500_ps), 2.5);
  EXPECT_EQ(from_seconds(0.5), 500_ms);
}

TEST(Time, FormatPicksUnit) {
  EXPECT_EQ(format_time(500_ps), "500 ps");
  EXPECT_EQ(format_time(1500_ps), "1.500 ns");
  EXPECT_EQ(format_time(2_us), "2.000 us");
  EXPECT_EQ(format_time(3_ms), "3.000 ms");
  EXPECT_EQ(format_time(4_s), "4.000 s");
}

TEST(DataRate, SerializationTime) {
  // 64+24 wire bytes at 10G: 88 * 8 / 1e10 s = 70.4 ns.
  EXPECT_EQ(line_rate_10g.serialization_time(88), 70'400_ps);
  // 1 byte at 1 Gb/s = 8 ns.
  EXPECT_EQ(DataRate::gbps(1).serialization_time(1), 8_ns);
}

TEST(Simulation, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(30, [&order]() { order.push_back(3); });
  sim.schedule_at(10, [&order]() { order.push_back(1); });
  sim.schedule_at(20, [&order]() { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulation, TiesBreakByInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(100, [&order, i]() { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulation, EventsCanScheduleMoreEvents) {
  Simulation sim;
  int count = 0;
  std::function<void()> chain = [&]() {
    if (++count < 5) sim.schedule_in(10, chain);
  };
  sim.schedule_at(0, chain);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), 40);
}

TEST(Simulation, PastEventsClampToNow) {
  Simulation sim;
  sim.schedule_at(100, []() {});
  sim.run();
  TimePs fired_at = -1;
  sim.schedule_at(50, [&]() { fired_at = sim.now(); });  // in the past
  sim.run();
  EXPECT_EQ(fired_at, 100);
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(10, [&fired]() { ++fired; });
  sim.schedule_at(20, [&fired]() { ++fired; });
  sim.schedule_at(30, [&fired]() { ++fired; });
  EXPECT_EQ(sim.run_until(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulation, RunUntilAdvancesTimeEvenWithoutEvents) {
  Simulation sim;
  sim.run_until(12345);
  EXPECT_EQ(sim.now(), 12345);
}

TEST(Simulation, StepReturnsFalseWhenEmpty) {
  Simulation sim;
  EXPECT_FALSE(sim.step());
  EXPECT_TRUE(sim.empty());
}

TEST(Simulation, PacketIdsAreUnique) {
  Simulation sim;
  const auto a = sim.next_packet_id();
  const auto b = sim.next_packet_id();
  EXPECT_NE(a, b);
}

TEST(LambdaHandler, ForwardsPackets) {
  int count = 0;
  LambdaHandler handler([&count](net::PacketPtr) { ++count; });
  handler.handle_packet(net::make_packet());
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace flexsfp::sim
