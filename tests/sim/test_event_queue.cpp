// Property tests for the slab calendar event queue against a naive
// sorted-vector oracle, plus the time-horizon saturation contract.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <random>
#include <vector>

#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace flexsfp::sim {
namespace {

/// The reference semantics: a stable-sorted list of (time, insertion-order)
/// entries. Everything the calendar structure does — ring rotation,
/// overflow spill/migration, bucket widening — must be invisible next to
/// this.
class OracleQueue {
 public:
  void push(TimePs at, int tag) { entries_.push_back({at, next_seq_++, tag}); }

  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Pop the earliest (time, seq) entry.
  [[nodiscard]] std::pair<TimePs, int> pop() {
    auto best = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->at < best->at || (it->at == best->at && it->seq < best->seq)) {
        best = it;
      }
    }
    const auto result = std::pair{best->at, best->tag};
    entries_.erase(best);
    return result;
  }

 private:
  struct Entry {
    TimePs at;
    std::uint64_t seq;
    int tag;
  };
  std::vector<Entry> entries_;
  std::uint64_t next_seq_ = 0;
};

TEST(EventQueueProperty, RandomSchedulesMatchOracle) {
  // Several seeds, each a random interleaving of pushes and pops with time
  // offsets spanning sub-bucket to far-beyond-the-ring-window, so the
  // current heap, the ring, the overflow list and its migration all engage.
  constexpr std::array<TimePs, 6> spans = {
      1,            // same-bucket ties
      10'000,       // within one 16.4 ns bucket
      1'000'000,    // a few buckets out
      100'000'000,  // well within the 256-bucket ring
      10'000'000'000,     // beyond the ring -> overflow list
      5'000'000'000'000,  // deep horizon -> widening territory
  };
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    EventQueue queue;
    OracleQueue oracle;
    std::mt19937_64 rng(seed);
    TimePs now = 0;  // mirror the Simulation clamp: never push before "now"
    int next_tag = 0;
    std::vector<int> queue_order;
    std::vector<int> oracle_order;

    for (int step = 0; step < 4000; ++step) {
      const bool push = queue.empty() || (rng() % 100) < 60;
      if (push) {
        const TimePs at =
            now + static_cast<TimePs>(rng() % std::uint64_t(
                                                  spans[rng() % spans.size()]));
        const int tag = next_tag++;
        queue.push(at, [tag, &queue_order]() { queue_order.push_back(tag); });
        oracle.push(at, tag);
      } else {
        auto popped = queue.pop();
        const auto [oracle_at, oracle_tag] = oracle.pop();
        ASSERT_EQ(popped.at(), oracle_at) << "seed " << seed;
        popped.invoke();
        oracle_order.push_back(oracle_tag);
        ASSERT_EQ(queue_order.back(), oracle_tag) << "seed " << seed;
        now = popped.at();
      }
    }
    while (!queue.empty()) {
      auto popped = queue.pop();
      const auto [oracle_at, oracle_tag] = oracle.pop();
      ASSERT_EQ(popped.at(), oracle_at) << "seed " << seed;
      popped.invoke();
      oracle_order.push_back(oracle_tag);
      ASSERT_EQ(queue_order.back(), oracle_tag) << "seed " << seed;
    }
    EXPECT_TRUE(oracle.empty());
    EXPECT_EQ(queue_order, oracle_order) << "seed " << seed;
  }
}

/// Re-entrant pusher for the drain_front property test: events spawn
/// children (same-time or later) mid-drain, mirroring how components
/// schedule follow-up work while a batch is being invoked. Every push goes
/// to the queue and the oracle at the same point in program order, so the
/// oracle's (time, push-order) ranking is exactly the queue's (time, seq)
/// contract.
struct Spawner {
  EventQueue& queue;
  OracleQueue& oracle;
  std::vector<int>& order;
  int& next_tag;

  void schedule(TimePs at, int tag, int depth) {
    queue.push(at, [this, at, tag, depth]() {
      order.push_back(tag);
      if (depth > 0) {
        const int child = next_tag++;
        // Odd children land on the batch's own timestamp (they must sort
        // after every event pre-popped into the current batch), even ones
        // strictly later.
        schedule(at + (child % 2), child, depth - 1);
      }
    });
    oracle.push(at, tag);
  }
};

TEST(EventQueueProperty, DrainFrontMatchesScalarOracle) {
  // drain_front(width) must be invisible next to scalar pops: it may only
  // take same-timestamp events, at most `width` of them, in seq order —
  // including events pushed *during* the batch by the invoked closures.
  for (const std::size_t width :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}, std::size_t{16},
        std::size_t{64}}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      EventQueue queue;
      OracleQueue oracle;
      std::vector<int> queue_order;
      std::vector<int> oracle_order;
      int next_tag = 0;
      Spawner spawner{queue, oracle, queue_order, next_tag};

      std::mt19937_64 rng(seed);
      for (int i = 0; i < 600; ++i) {
        // Heavy timestamp ties (64 distinct times) so real batches form,
        // plus a sprinkle far enough out to engage the overflow list.
        const TimePs at = (i % 50 == 0)
                              ? static_cast<TimePs>(10'000'000'000ull + i)
                              : static_cast<TimePs>((rng() % 64) * 10'000);
        spawner.schedule(at, next_tag++, static_cast<int>(rng() % 3));
      }

      while (!queue.empty()) {
        const TimePs at = queue.min_time();
        const std::size_t n = queue.drain_front(width);
        ASSERT_GE(n, 1u);
        ASSERT_LE(n, width);
        for (std::size_t k = 0; k < n; ++k) {
          const auto [oracle_at, oracle_tag] = oracle.pop();
          // Every event in the batch carries the frontier timestamp; a
          // later-time (or out-of-seq) event sneaking in fails here.
          ASSERT_EQ(oracle_at, at) << "width " << width << " seed " << seed;
          oracle_order.push_back(oracle_tag);
        }
      }
      EXPECT_TRUE(oracle.empty());
      EXPECT_EQ(queue_order, oracle_order)
          << "width " << width << " seed " << seed;
    }
  }
}

TEST(EventQueueProperty, SameTimestampPopsInInsertionOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    queue.push(42_ns, [i, &order]() { order.push_back(i); });
  }
  while (!queue.empty()) {
    auto popped = queue.pop();
    EXPECT_EQ(popped.at(), 42_ns);
    popped.invoke();
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueProperty, FarFutureEventSurvivesBusyForeground) {
  // Regression for the overflow-migration invariant: an event parked on the
  // overflow list must execute in order even while a continuously
  // rescheduling foreground stream keeps the ring window advancing past it
  // one bucket at a time (the fault-injector flap-end timer pattern).
  EventQueue queue;
  std::vector<int> order;
  const TimePs far = 200'000'000;  // ~12k buckets out: overflow for sure
  queue.push(far, [&order]() { order.push_back(-1); });
  EXPECT_EQ(queue.stats().overflow_spills, 1u);

  // A self-rescheduling stream with a period much smaller than a bucket
  // span keeps ring_count_ nonzero as the window slides over `far`.
  struct Stream {
    EventQueue& queue;
    std::vector<int>& order;
    TimePs period;
    TimePs until;
    void schedule(TimePs at) {
      queue.push(at, [this, at]() {
        order.push_back(1);
        if (at + period <= until) schedule(at + period);
      });
    }
  };
  Stream stream{queue, order, 100'000, 2 * far};
  stream.schedule(0);

  TimePs last = 0;
  std::vector<TimePs> pop_times;
  while (!queue.empty()) {
    auto popped = queue.pop();
    ASSERT_GE(popped.at(), last);
    last = popped.at();
    pop_times.push_back(popped.at());
    popped.invoke();
  }
  // The far event must have run at its own timestamp, i.e. interleaved at
  // the right position, not after the stream drained.
  const auto it = std::find(order.begin(), order.end(), -1);
  ASSERT_NE(it, order.end());
  const auto index = static_cast<std::size_t>(it - order.begin());
  EXPECT_EQ(pop_times[index], far);
  EXPECT_GT(order.size(), index + 10) << "far event ran last, not in order";
}

TEST(EventQueueProperty, SparseHorizonWidensBuckets) {
  EventQueue queue;
  const TimePs initial_width = queue.bucket_width();
  int fired = 0;
  // A handful of events spread across seconds: after draining the near
  // window the redistribution should widen buckets rather than scan
  // millions of empty slots.
  for (int i = 0; i < 8; ++i) {
    queue.push(TimePs{1} << (30 + 2 * i), [&fired]() { ++fired; });
  }
  TimePs last = 0;
  while (!queue.empty()) {
    auto popped = queue.pop();
    ASSERT_GE(popped.at(), last);
    last = popped.at();
    popped.invoke();
  }
  EXPECT_EQ(fired, 8);
  EXPECT_GT(queue.bucket_width(), initial_width);
  EXPECT_GT(queue.stats().window_rebuilds, 0u);
}

TEST(EventQueueProperty, OversizeClosureTakesBoxedPathAndStillRuns) {
  EventQueue queue;
  std::array<std::uint64_t, 16> big{};  // 128 bytes > kInlineClosure
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = i * 3 + 1;
  std::uint64_t sum = 0;
  queue.push(1_ns, [big, &sum]() {
    for (const auto v : big) sum += v;
  });
  queue.push(2_ns, [&sum]() { sum += 1000; });
  EXPECT_EQ(queue.stats().boxed_closures, 1u);
  EXPECT_EQ(queue.stats().inline_closures, 1u);
  while (!queue.empty()) {
    auto popped = queue.pop();
    popped.invoke();
  }
  EXPECT_EQ(sum, 3u * (15u * 16u / 2u) + 16u + 1000u);  // sum(3i+1) + 1000
}

TEST(EventQueueProperty, DroppedWithoutInvokeDestroysClosure) {
  // Popped without invoke() must still destroy the captured state (the
  // destructor path), and destroying a non-empty queue must destroy every
  // pending closure.
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  {
    EventQueue queue;
    queue.push(1_ns, [token]() {});
    token.reset();
    EXPECT_FALSE(watch.expired());
    { auto popped = queue.pop(); }  // dropped, never invoked
    EXPECT_TRUE(watch.expired());
  }
  auto token2 = std::make_shared<int>(8);
  std::weak_ptr<int> watch2 = token2;
  {
    EventQueue queue;
    queue.push(5_us, [token2]() {});
    token2.reset();
    EXPECT_FALSE(watch2.expired());
  }  // queue destroyed with the event still pending
  EXPECT_TRUE(watch2.expired());
}

TEST(SimulationClamp, PastEventsRunAtNow) {
  Simulation sim;
  std::vector<TimePs> at;
  sim.schedule_at(100_ns, [&]() {
    // Scheduled "in the past" from t = 100 ns: must run at now, not before.
    sim.schedule_at(10_ns, [&]() { at.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(at.size(), 1u);
  EXPECT_EQ(at[0], 100_ns);
}

TEST(SimulationClamp, RunUntilBoundaryIsInclusive) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(10_ns, [&fired]() { ++fired; });
  sim.schedule_at(20_ns, [&fired]() { ++fired; });
  sim.schedule_at(40_ns, [&fired]() { ++fired; });
  EXPECT_EQ(sim.run_until(20_ns), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20_ns);
  // An idle deadline still advances the clock.
  EXPECT_EQ(sim.run_until(30_ns), 0u);
  EXPECT_EQ(sim.now(), 30_ns);
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(fired, 3);
}

TEST(SimulationClamp, ScheduleInSaturatesAtHorizonInsteadOfWrapping) {
  // Regression: near the TimePs horizon, now + delay used to wrap negative
  // and the "practically forever" timer fired immediately (or crashed the
  // calendar index math). It must clamp to time_horizon and stay last.
  EXPECT_EQ(saturating_add(time_horizon, 1), time_horizon);
  EXPECT_EQ(saturating_add(time_horizon - 5, 10), time_horizon);
  EXPECT_EQ(saturating_add(1, time_horizon), time_horizon);
  EXPECT_EQ(saturating_add(0, 7), 7);

  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(1_ms, [&]() {
    sim.schedule_in(time_horizon, [&order]() { order.push_back(2); });
    sim.schedule_in(1_ms, [&order]() { order.push_back(1); });
  });
  sim.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);  // the finite timer fires first...
  EXPECT_EQ(order[1], 2);  // ...the saturated one fires at the horizon
  EXPECT_EQ(sim.now(), time_horizon);
}

TEST(SimulationClamp, RunUntilHorizonTerminates) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(time_horizon, [&fired]() { ++fired; });
  EXPECT_EQ(sim.run_until(time_horizon), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), time_horizon);
}

TEST(EventQueueStats, TalliesAreConsistent) {
  EventQueue queue;
  for (int i = 0; i < 300; ++i) {
    queue.push(TimePs{i} * 1_ns, []() {});
  }
  EXPECT_EQ(queue.stats().pushed, 300u);
  EXPECT_EQ(queue.stats().pending_high_watermark, 300u);
  EXPECT_EQ(queue.stats().inline_closures, 300u);
  EXPECT_GE(queue.stats().slabs_allocated, 1u);
  EXPECT_EQ(queue.size(), 300u);
  while (!queue.empty()) {
    auto popped = queue.pop();
    popped.invoke();
  }
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.stats().pending_high_watermark, 300u);
}

}  // namespace
}  // namespace flexsfp::sim
