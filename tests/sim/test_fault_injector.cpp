#include "sim/fault_injector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>

namespace flexsfp::sim {
namespace {

net::PacketPtr packet_of(std::size_t size, std::uint8_t fill = 0) {
  return net::make_packet(net::Bytes(size, fill));
}

class Collector final : public PacketHandler {
 public:
  explicit Collector(Simulation& sim) : sim_(sim) {}
  void handle_packet(net::PacketPtr packet) override {
    arrivals.emplace_back(sim_.now(), std::move(packet));
  }
  std::vector<std::pair<TimePs, net::PacketPtr>> arrivals;

 private:
  Simulation& sim_;
};

TEST(FaultInjector, NoFaultsIsTransparent) {
  Simulation sim;
  Collector sink(sim);
  FaultInjector injector(sim, FaultSpec{}, sink);
  for (int i = 0; i < 10; ++i) injector.handle_packet(packet_of(64));
  sim.run();
  EXPECT_EQ(sink.arrivals.size(), 10u);
  const auto tally = injector.tally();
  EXPECT_EQ(tally.delivered, 10u);
  EXPECT_EQ(tally.total_dropped(), 0u);
  EXPECT_EQ(tally.corrupted, 0u);
  EXPECT_EQ(tally.duplicated, 0u);
  EXPECT_EQ(tally.reordered, 0u);
}

TEST(FaultInjector, EveryLostPacketIsAccounted) {
  Simulation sim;
  Collector sink(sim);
  FaultSpec spec;
  spec.drop_prob = 0.5;
  spec.seed = 7;
  FaultInjector injector(sim, spec, sink);
  const std::uint64_t sent = 1000;
  for (std::uint64_t i = 0; i < sent; ++i) injector.handle_packet(packet_of(64));
  sim.run();
  const auto tally = injector.tally();
  // The zero-black-hole invariant: nothing vanishes without a counter.
  EXPECT_EQ(tally.delivered + tally.total_dropped(), sent);
  EXPECT_EQ(sink.arrivals.size(), tally.delivered);
  EXPECT_GT(tally.dropped, 300u);
  EXPECT_LT(tally.dropped, 700u);
}

TEST(FaultInjector, FlapWindowDropsArrivalsInsideOnly) {
  Simulation sim;
  Collector sink(sim);
  FaultSpec spec;
  spec.flaps.push_back(FlapWindow{100_ns, 100_ns});
  FaultInjector injector(sim, spec, sink);
  for (const TimePs at : {TimePs(50_ns), TimePs(150_ns), TimePs(250_ns)}) {
    sim.schedule_at(at, [&injector]() { injector.handle_packet(packet_of(64)); });
  }
  sim.run();
  EXPECT_EQ(sink.arrivals.size(), 2u);
  const auto tally = injector.tally();
  EXPECT_EQ(tally.flap_dropped, 1u);
  EXPECT_EQ(tally.delivered, 2u);
}

TEST(FaultInjector, FlapNowTakesTheLinkDownImmediately) {
  Simulation sim;
  Collector sink(sim);
  FaultInjector injector(sim, FaultSpec{}, sink);
  EXPECT_TRUE(injector.link_up());
  injector.flap_now(1_us);
  EXPECT_FALSE(injector.link_up());
  injector.handle_packet(packet_of(64));
  sim.schedule_at(2_us, [&injector]() { injector.handle_packet(packet_of(64)); });
  sim.run();
  EXPECT_TRUE(injector.link_up());
  EXPECT_EQ(injector.tally().flap_dropped, 1u);
  EXPECT_EQ(sink.arrivals.size(), 1u);
}

TEST(FaultInjector, TargetedLossOnlyHitsFilteredFrames) {
  Simulation sim;
  Collector sink(sim);
  FaultSpec spec;
  spec.target_drop_prob = 1.0;
  FaultInjector injector(sim, spec, sink);
  injector.set_target_filter(
      [](const net::Packet& packet) { return packet.data()[0] == 0xab; });
  for (int i = 0; i < 5; ++i) injector.handle_packet(packet_of(64, 0xab));
  for (int i = 0; i < 5; ++i) injector.handle_packet(packet_of(64, 0x00));
  sim.run();
  const auto tally = injector.tally();
  EXPECT_EQ(tally.target_dropped, 5u);
  EXPECT_EQ(tally.delivered, 5u);
  for (const auto& [at, packet] : sink.arrivals) {
    EXPECT_EQ(packet->data()[0], 0x00);
  }
}

TEST(FaultInjector, CorruptionFlipsExactlyOneBitAndStillDelivers) {
  Simulation sim;
  Collector sink(sim);
  FaultSpec spec;
  spec.ber = 0.01;  // 64-byte frame: P(hit) ~ 1 - 0.99^512 ~ 0.994
  spec.seed = 3;
  FaultInjector injector(sim, spec, sink);
  const std::uint64_t sent = 50;
  for (std::uint64_t i = 0; i < sent; ++i) {
    injector.handle_packet(packet_of(64, 0x00));
  }
  sim.run();
  const auto tally = injector.tally();
  EXPECT_EQ(tally.delivered, sent);  // corruption never drops
  EXPECT_GT(tally.corrupted, 0u);
  std::uint64_t corrupted_seen = 0;
  for (const auto& [at, packet] : sink.arrivals) {
    int set_bits = 0;
    for (const std::uint8_t byte : packet->data()) {
      set_bits += std::popcount(byte);
    }
    EXPECT_LE(set_bits, 1);  // exactly one bit flipped, or untouched
    corrupted_seen += set_bits > 0 ? 1 : 0;
  }
  EXPECT_EQ(corrupted_seen, tally.corrupted);
}

TEST(FaultInjector, DuplicationDeliversACopyWithAFreshId) {
  Simulation sim;
  Collector sink(sim);
  FaultSpec spec;
  spec.duplicate_prob = 1.0;
  FaultInjector injector(sim, spec, sink);
  auto packet = packet_of(64);
  packet->set_id(sim.next_packet_id());
  const net::PacketId original = packet->id();
  injector.handle_packet(std::move(packet));
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(injector.tally().duplicated, 1u);
  EXPECT_EQ(injector.tally().delivered, 2u);
  EXPECT_NE(sink.arrivals[0].second->id(), sink.arrivals[1].second->id());
  EXPECT_TRUE(sink.arrivals[0].second->id() == original ||
              sink.arrivals[1].second->id() == original);
}

TEST(FaultInjector, ReorderHoldsPacketsBackBoundedly) {
  Simulation sim;
  Collector sink(sim);
  FaultSpec spec;
  spec.reorder_prob = 0.3;
  spec.reorder_delay_ps = 1_us;
  spec.seed = 11;
  FaultInjector injector(sim, spec, sink);
  const std::size_t sent = 100;
  for (std::size_t i = 0; i < sent; ++i) {
    sim.schedule_at(TimePs(i) * 10_ns, [&injector, i]() {
      injector.handle_packet(packet_of(64, static_cast<std::uint8_t>(i)));
    });
  }
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), sent);
  EXPECT_GT(injector.tally().reordered, 0u);
  // Some packet overtook a held one...
  bool inverted = false;
  for (std::size_t i = 1; i < sink.arrivals.size(); ++i) {
    if (sink.arrivals[i].second->data()[0] <
        sink.arrivals[i - 1].second->data()[0]) {
      inverted = true;
      break;
    }
  }
  EXPECT_TRUE(inverted);
  // ...but nobody was starved: held for exactly one delay window.
  EXPECT_EQ(injector.tally().delivered, sent);
}

TEST(FaultInjector, SameSeedSameFaultSequence) {
  const auto run = [](std::uint64_t seed) {
    Simulation sim;
    Collector sink(sim);
    FaultSpec spec;
    spec.drop_prob = 0.2;
    spec.duplicate_prob = 0.1;
    spec.ber = 0.001;
    spec.seed = seed;
    FaultInjector injector(sim, spec, sink);
    for (int i = 0; i < 200; ++i) injector.handle_packet(packet_of(64));
    sim.run();
    return injector.tally();
  };
  const auto a = run(42);
  const auto b = run(42);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.corrupted, b.corrupted);
  EXPECT_EQ(a.duplicated, b.duplicated);
  const auto c = run(43);
  EXPECT_TRUE(a.dropped != c.dropped || a.corrupted != c.corrupted ||
              a.duplicated != c.duplicated);
}

TEST(FaultInjector, ReportsThroughRegistryAndFlightRecorder) {
  Simulation sim;
  sim.flight().configure({.capacity = 8, .sample_every = 1});
  Collector sink(sim);
  FaultSpec spec;
  spec.drop_prob = 1.0;
  FaultInjector injector(sim, spec, sink);
  auto packet = packet_of(64);
  packet->set_id(sim.next_packet_id());
  const net::PacketId id = packet->id();
  injector.handle_packet(std::move(packet));
  sim.run();
  const auto snap = sim.metrics().snapshot();
  EXPECT_EQ(snap.value("fault.dropped{injector=fault}"), 1u);
  EXPECT_EQ(snap.value("fault.delivered{injector=fault}"), 0u);
  const auto trace = sim.flight().trace(id);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].kind, obs::HopKind::fault_drop);
  EXPECT_EQ(sim.flight().stage_name(trace[0].stage), "fault");
}

TEST(FaultInjector, LinkUpGaugeTracksFlapState) {
  Simulation sim;
  Collector sink(sim);
  FaultSpec spec;
  spec.flaps.push_back(FlapWindow{0, 1_us});
  FaultInjector injector(sim, spec, sink, "wirefault");
  injector.handle_packet(packet_of(64));  // inside the window
  EXPECT_EQ(sim.metrics().snapshot().value("fault.link_up{injector=wirefault}"),
            0u);
  sim.schedule_at(2_us, [&injector]() { injector.handle_packet(packet_of(64)); });
  sim.run();
  EXPECT_EQ(sim.metrics().snapshot().value("fault.link_up{injector=wirefault}"),
            1u);
}

}  // namespace
}  // namespace flexsfp::sim
