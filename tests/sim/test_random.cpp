#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <numeric>
#include <vector>

namespace flexsfp::sim {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(42);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(100.0);
  EXPECT_NEAR(sum / n, 100.0, 3.0);
}

TEST(Rng, ParetoRespectsMinimum) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(1.5, 10.0), 10.0);
  }
}

TEST(Rng, LognormalMedianConverges) {
  Rng rng(11);
  std::vector<double> samples;
  for (int i = 0; i < 10001; ++i) samples.push_back(rng.lognormal(2.0, 0.5));
  std::nth_element(samples.begin(), samples.begin() + 5000, samples.end());
  // Median of lognormal(mu, sigma) = e^mu ~ 7.389.
  EXPECT_NEAR(samples[5000], std::exp(2.0), 0.35);
}

TEST(SplitMix64, MatchesReferenceVectors) {
  // Reference outputs of the canonical SplitMix64 finalizer; pins the
  // implementation so stream derivations stay stable across PRs.
  EXPECT_EQ(splitmix64(0), 0xe220a8397b1dcdafull);
  EXPECT_EQ(splitmix64(1), 0x910a2dec89025cc1ull);
  static_assert(splitmix64(0) != splitmix64(1));  // usable at compile time
}

TEST(StreamSeeds, NotDerivedByAddition) {
  // Regression: per-shard seeds were once base + shard_id, which hands
  // adjacent mt19937_64 engines correlated states. The derivation must be
  // a hash of (base, id), not an offset.
  const std::uint64_t base = 1234;
  for (std::uint64_t id = 0; id < 64; ++id) {
    EXPECT_NE(derive_stream_seed(base, id), base + id) << "id " << id;
  }
}

TEST(StreamSeeds, DistinctAcrossShardsAndBases) {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t base : {1ull, 2ull}) {
    for (std::uint64_t id = 0; id < 256; ++id) {
      seeds.push_back(derive_stream_seed(base, id));
    }
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

TEST(StreamSeeds, AdjacentStreamsAreUncorrelated) {
  // Adjacent shards must not echo each other: across the first 1024 draws,
  // no aligned collisions beyond chance, and a bitwise avalanche on seeds.
  Rng a = Rng::for_stream(99, 0);
  Rng b = Rng::for_stream(99, 1);
  int collisions = 0;
  for (int i = 0; i < 1024; ++i) {
    if (a.next_u64() == b.next_u64()) ++collisions;
  }
  EXPECT_EQ(collisions, 0);

  const auto diff =
      derive_stream_seed(99, 0) ^ derive_stream_seed(99, 1);
  const int flipped = std::popcount(diff);
  EXPECT_GT(flipped, 16);  // ~32 expected for independent 64-bit values
  EXPECT_LT(flipped, 48);
}

TEST(StreamSeeds, ForStreamIsReproducible) {
  Rng a = Rng::for_stream(7, 3);
  Rng b = Rng::for_stream(7, 3);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Zipf, SkewZeroIsUniform) {
  Rng rng(5);
  ZipfDistribution dist(10, 0.0);
  std::array<int, 11> counts{};
  for (int i = 0; i < 20000; ++i) ++counts[dist.sample(rng)];
  for (std::size_t rank = 1; rank <= 10; ++rank) {
    EXPECT_NEAR(counts[rank], 2000, 250) << "rank " << rank;
  }
}

TEST(Zipf, HighSkewConcentratesOnRankOne) {
  Rng rng(5);
  ZipfDistribution dist(1000, 1.2);
  int rank_one = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (dist.sample(rng) == 1) ++rank_one;
  }
  EXPECT_GT(rank_one, n / 10);  // far above the uniform 1/1000
}

TEST(Zipf, SamplesAlwaysInRange) {
  Rng rng(8);
  ZipfDistribution dist(50, 1.0);
  for (int i = 0; i < 5000; ++i) {
    const auto rank = dist.sample(rng);
    EXPECT_GE(rank, 1u);
    EXPECT_LE(rank, 50u);
  }
}

// --- slot-index fast-path property tests ------------------------------------
// ZipfDistribution::sample_u narrows the binary search to the span a
// 1024-slot first-level index says the draw lands in. The oracle below is
// the unaccelerated definition: lower_bound over the full CDF. The two must
// return the same rank for every u, in particular at the slot boundaries
// k/1024 where an off-by-one in slot_lo_ construction would surface.

std::vector<double> zipf_cdf_oracle(std::size_t n, double s) {
  // Recomputed exactly as the ZipfDistribution constructor does (same
  // operation order), so the doubles are bit-identical.
  std::vector<double> cdf(n);
  double total = 0.0;
  for (std::size_t rank = 1; rank <= n; ++rank) {
    total += 1.0 / std::pow(double(rank), s);
    cdf[rank - 1] = total;
  }
  for (auto& c : cdf) c /= total;
  return cdf;
}

std::size_t zipf_rank_oracle(const std::vector<double>& cdf, double u) {
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  return static_cast<std::size_t>(it - cdf.begin()) + 1;
}

TEST(ZipfProperty, SlotIndexAgreesWithFullBinarySearch) {
  constexpr std::size_t kSlots = 1024;  // mirrors ZipfDistribution::kSlots
  for (const double s : {0.5, 1.0, 1.2}) {
    for (const std::size_t n :
         {std::size_t{1}, std::size_t{2}, std::size_t{1024},
          std::size_t{1000000}}) {
      const ZipfDistribution dist(n, s);
      const std::vector<double> cdf = zipf_cdf_oracle(n, s);

      std::vector<double> draws;
      draws.reserve(3 * kSlots + 4100);
      // Every slot boundary and its immediate floating-point neighbors:
      // exactly where a wrong slot_lo_ span truncates the search.
      for (std::size_t k = 0; k < kSlots; ++k) {
        const double boundary = double(k) / double(kSlots);
        draws.push_back(boundary);
        draws.push_back(std::nextafter(boundary, 0.0));
        draws.push_back(std::nextafter(boundary, 1.0));
      }
      draws.push_back(0.0);
      draws.push_back(std::nextafter(1.0, 0.0));  // largest valid draw
      Rng rng(2026);
      for (int i = 0; i < 4096; ++i) draws.push_back(rng.uniform_real());

      for (const double u : draws) {
        if (u < 0.0 || u >= 1.0) continue;  // uniform_real() range is [0,1)
        const std::size_t rank = dist.sample_u(u);
        ASSERT_EQ(rank, zipf_rank_oracle(cdf, u))
            << "s=" << s << " n=" << n << " u=" << u;
        ASSERT_GE(rank, 1u) << "s=" << s << " n=" << n << " u=" << u;
        ASSERT_LE(rank, n) << "s=" << s << " n=" << n << " u=" << u;
      }
    }
  }
}

TEST(ZipfProperty, SingleRankAlwaysReturnsOne) {
  const ZipfDistribution dist(1, 1.0);
  EXPECT_EQ(dist.sample_u(0.0), 1u);
  EXPECT_EQ(dist.sample_u(0.5), 1u);
  EXPECT_EQ(dist.sample_u(std::nextafter(1.0, 0.0)), 1u);
}

TEST(ZipfProperty, SampleDrawsThroughSampleU) {
  // sample(rng) must be exactly sample_u over the engine's next
  // uniform_real draw — no second draw, no different conversion.
  const ZipfDistribution dist(1024, 1.0);
  Rng a(77);
  Rng b(77);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(dist.sample(a), dist.sample_u(b.uniform_real()));
  }
}

}  // namespace
}  // namespace flexsfp::sim
