#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <numeric>
#include <vector>

namespace flexsfp::sim {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(42);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(100.0);
  EXPECT_NEAR(sum / n, 100.0, 3.0);
}

TEST(Rng, ParetoRespectsMinimum) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(1.5, 10.0), 10.0);
  }
}

TEST(Rng, LognormalMedianConverges) {
  Rng rng(11);
  std::vector<double> samples;
  for (int i = 0; i < 10001; ++i) samples.push_back(rng.lognormal(2.0, 0.5));
  std::nth_element(samples.begin(), samples.begin() + 5000, samples.end());
  // Median of lognormal(mu, sigma) = e^mu ~ 7.389.
  EXPECT_NEAR(samples[5000], std::exp(2.0), 0.35);
}

TEST(SplitMix64, MatchesReferenceVectors) {
  // Reference outputs of the canonical SplitMix64 finalizer; pins the
  // implementation so stream derivations stay stable across PRs.
  EXPECT_EQ(splitmix64(0), 0xe220a8397b1dcdafull);
  EXPECT_EQ(splitmix64(1), 0x910a2dec89025cc1ull);
  static_assert(splitmix64(0) != splitmix64(1));  // usable at compile time
}

TEST(StreamSeeds, NotDerivedByAddition) {
  // Regression: per-shard seeds were once base + shard_id, which hands
  // adjacent mt19937_64 engines correlated states. The derivation must be
  // a hash of (base, id), not an offset.
  const std::uint64_t base = 1234;
  for (std::uint64_t id = 0; id < 64; ++id) {
    EXPECT_NE(derive_stream_seed(base, id), base + id) << "id " << id;
  }
}

TEST(StreamSeeds, DistinctAcrossShardsAndBases) {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t base : {1ull, 2ull}) {
    for (std::uint64_t id = 0; id < 256; ++id) {
      seeds.push_back(derive_stream_seed(base, id));
    }
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

TEST(StreamSeeds, AdjacentStreamsAreUncorrelated) {
  // Adjacent shards must not echo each other: across the first 1024 draws,
  // no aligned collisions beyond chance, and a bitwise avalanche on seeds.
  Rng a = Rng::for_stream(99, 0);
  Rng b = Rng::for_stream(99, 1);
  int collisions = 0;
  for (int i = 0; i < 1024; ++i) {
    if (a.next_u64() == b.next_u64()) ++collisions;
  }
  EXPECT_EQ(collisions, 0);

  const auto diff =
      derive_stream_seed(99, 0) ^ derive_stream_seed(99, 1);
  const int flipped = std::popcount(diff);
  EXPECT_GT(flipped, 16);  // ~32 expected for independent 64-bit values
  EXPECT_LT(flipped, 48);
}

TEST(StreamSeeds, ForStreamIsReproducible) {
  Rng a = Rng::for_stream(7, 3);
  Rng b = Rng::for_stream(7, 3);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Zipf, SkewZeroIsUniform) {
  Rng rng(5);
  ZipfDistribution dist(10, 0.0);
  std::array<int, 11> counts{};
  for (int i = 0; i < 20000; ++i) ++counts[dist.sample(rng)];
  for (std::size_t rank = 1; rank <= 10; ++rank) {
    EXPECT_NEAR(counts[rank], 2000, 250) << "rank " << rank;
  }
}

TEST(Zipf, HighSkewConcentratesOnRankOne) {
  Rng rng(5);
  ZipfDistribution dist(1000, 1.2);
  int rank_one = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (dist.sample(rng) == 1) ++rank_one;
  }
  EXPECT_GT(rank_one, n / 10);  // far above the uniform 1/1000
}

TEST(Zipf, SamplesAlwaysInRange) {
  Rng rng(8);
  ZipfDistribution dist(50, 1.0);
  for (int i = 0; i < 5000; ++i) {
    const auto rank = dist.sample(rng);
    EXPECT_GE(rank, 1u);
    EXPECT_LE(rank, 50u);
  }
}

}  // namespace
}  // namespace flexsfp::sim
