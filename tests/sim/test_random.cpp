#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <vector>

namespace flexsfp::sim {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(42);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(100.0);
  EXPECT_NEAR(sum / n, 100.0, 3.0);
}

TEST(Rng, ParetoRespectsMinimum) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(1.5, 10.0), 10.0);
  }
}

TEST(Rng, LognormalMedianConverges) {
  Rng rng(11);
  std::vector<double> samples;
  for (int i = 0; i < 10001; ++i) samples.push_back(rng.lognormal(2.0, 0.5));
  std::nth_element(samples.begin(), samples.begin() + 5000, samples.end());
  // Median of lognormal(mu, sigma) = e^mu ~ 7.389.
  EXPECT_NEAR(samples[5000], std::exp(2.0), 0.35);
}

TEST(Zipf, SkewZeroIsUniform) {
  Rng rng(5);
  ZipfDistribution dist(10, 0.0);
  std::array<int, 11> counts{};
  for (int i = 0; i < 20000; ++i) ++counts[dist.sample(rng)];
  for (std::size_t rank = 1; rank <= 10; ++rank) {
    EXPECT_NEAR(counts[rank], 2000, 250) << "rank " << rank;
  }
}

TEST(Zipf, HighSkewConcentratesOnRankOne) {
  Rng rng(5);
  ZipfDistribution dist(1000, 1.2);
  int rank_one = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (dist.sample(rng) == 1) ++rank_one;
  }
  EXPECT_GT(rank_one, n / 10);  // far above the uniform 1/1000
}

TEST(Zipf, SamplesAlwaysInRange) {
  Rng rng(8);
  ZipfDistribution dist(50, 1.0);
  for (int i = 0; i < 5000; ++i) {
    const auto rank = dist.sample(rng);
    EXPECT_GE(rank, 1u);
    EXPECT_LE(rank, 50u);
  }
}

}  // namespace
}  // namespace flexsfp::sim
