#include "fabric/baselines.hpp"

#include <gtest/gtest.h>

#include "fabric/traffic_gen.hpp"

namespace flexsfp::fabric {
namespace {

using namespace sim;  // time literals

TEST(CpuPath, AddsTensOfMicrosecondsLatency) {
  Simulation sim;
  CpuPath cpu(sim);
  Sink sink(sim);
  cpu.set_output([&sink](net::PacketPtr p) { sink.handle_packet(std::move(p)); });
  for (int i = 0; i < 50; ++i) {
    auto packet = net::make_packet(net::Bytes(64, 0));
    packet->set_created_time_ps(sim.now());
    cpu.handle_packet(std::move(packet));
  }
  sim.run();
  EXPECT_EQ(sink.received().packets(), 50u);
  // §2: the host path reintroduces latency — tens of microseconds.
  EXPECT_GT(to_nanos(sink.latency().percentile(50)), 25'000.0);
}

TEST(CpuPath, JitterSpreadsTheDistribution) {
  Simulation sim;
  CpuPath cpu(sim);
  Sink sink(sim);
  cpu.set_output([&sink](net::PacketPtr p) { sink.handle_packet(std::move(p)); });
  for (int i = 0; i < 500; ++i) {
    auto packet = net::make_packet(net::Bytes(64, 0));
    packet->set_created_time_ps(sim.now());
    cpu.handle_packet(std::move(packet));
  }
  sim.run();
  // p99 well above p50: software jitter.
  EXPECT_GT(double(sink.latency().percentile(99)),
            1.2 * double(sink.latency().percentile(50)));
}

TEST(CpuPath, ThroughputCapped) {
  Simulation sim;
  CpuPathConfig config;
  config.packets_per_second = 1'000'000;
  config.stall_probability = 0;
  CpuPath cpu(sim, config, /*queue_capacity=*/64);
  int delivered = 0;
  cpu.set_output([&delivered](net::PacketPtr) { ++delivered; });
  // Offer 10k packets instantaneously: the queue bounds what survives.
  for (int i = 0; i < 10'000; ++i) {
    cpu.handle_packet(net::make_packet(net::Bytes(64, 0)));
  }
  sim.run();
  EXPECT_GT(cpu.drops(), 9000u);
  EXPECT_LE(delivered, 65);
}

TEST(SmartNic, LowLatencyAndHighRate) {
  Simulation sim;
  SmartNic nic(sim);
  Sink sink(sim);
  nic.set_output([&sink](net::PacketPtr p) { sink.handle_packet(std::move(p)); });
  for (int i = 0; i < 100; ++i) {
    auto packet = net::make_packet(net::Bytes(64, 0));
    packet->set_created_time_ps(sim.now());
    nic.handle_packet(std::move(packet));
  }
  sim.run();
  EXPECT_EQ(sink.received().packets(), 100u);
  // Single-digit microseconds, far tighter than the CPU path.
  EXPECT_LT(to_nanos(sink.latency().percentile(99)), 10'000.0);
  EXPECT_GT(to_nanos(sink.latency().percentile(50)), 3'000.0);
}

TEST(Baselines, PowerAndCostEnvelopesMatchPaperClaims) {
  Simulation sim;
  CpuPath cpu(sim);
  SmartNic nic(sim);
  // §2: SmartNIC 25-75 W and $800-2000+; FlexSFP ~1.5 W (tested elsewhere).
  EXPECT_GE(nic.watts(), 25.0);
  EXPECT_GE(nic.cost_usd().lo, 800.0);
  EXPECT_GT(cpu.watts(), 0.0);
  EXPECT_DOUBLE_EQ(CpuPath::cost_usd().hi, 0.0);
}

TEST(SmartNic, LatencyTighterThanCpuPath) {
  Simulation sim;
  CpuPath cpu(sim);
  SmartNic nic(sim);
  Sink cpu_sink(sim);
  Sink nic_sink(sim);
  cpu.set_output([&](net::PacketPtr p) { cpu_sink.handle_packet(std::move(p)); });
  nic.set_output([&](net::PacketPtr p) { nic_sink.handle_packet(std::move(p)); });
  for (int i = 0; i < 200; ++i) {
    auto a = net::make_packet(net::Bytes(64, 0));
    a->set_created_time_ps(0);
    cpu.handle_packet(std::move(a));
    auto b = net::make_packet(net::Bytes(64, 0));
    b->set_created_time_ps(0);
    nic.handle_packet(std::move(b));
  }
  sim.run();
  EXPECT_LT(double(nic_sink.latency().percentile(99)),
            double(cpu_sink.latency().percentile(50)));
}

}  // namespace
}  // namespace flexsfp::fabric
