// The single-simulation fabric engine: cable → switch → cable topologies,
// the zero-black-hole ledger and the egress-hint side band end to end.
#include "fabric/fabric_testbed.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace flexsfp::fabric {
namespace {

using namespace sim;  // time literals

Topology small_ring(std::size_t modules = 3) {
  Topology topo;
  topo.modules = modules;
  topo.traffic_prototype.rate = DataRate::gbps(2);
  topo.traffic_prototype.fixed_size = 256;
  topo.traffic_prototype.duration = 50_us;
  return topo;
}

TEST(Topology, ValidatesItsDescription) {
  Topology topo;
  topo.modules = 1;
  EXPECT_THROW(topo.validate(), std::invalid_argument);
  topo = Topology{};
  topo.targets = {1, 0, 1};  // wrong arity for 3 modules is fine, but...
  topo.modules = 2;          // ...size must match the module count
  EXPECT_THROW(topo.validate(), std::invalid_argument);
  topo = Topology{};
  topo.targets = {1, 2, 5};  // out of range
  EXPECT_THROW(topo.validate(), std::invalid_argument);
  topo = Topology{};
  topo.link_delay_ps = 0;  // zero lookahead would deadlock the sync
  EXPECT_THROW(topo.validate(), std::invalid_argument);
  topo = Topology{};
  topo.crosspoint_capacity = 0;
  EXPECT_THROW(topo.validate(), std::invalid_argument);
  EXPECT_NO_THROW(Topology{}.validate());
}

TEST(Topology, RingIsTheDefaultTargetMap) {
  const Topology topo = small_ring(4);
  EXPECT_EQ(topo.target_of(0), 1u);
  EXPECT_EQ(topo.target_of(3), 0u);
  Topology pinned = small_ring(3);
  pinned.targets = {2, 2, 1};
  EXPECT_EQ(pinned.target_of(0), 2u);
  EXPECT_EQ(pinned.target_of(2), 1u);
}

TEST(Topology, TrafficDerivesPerModuleStreamsAimedAtTheTarget) {
  const Topology topo = small_ring(3);
  const auto t0 = topo.traffic_for(0);
  const auto t1 = topo.traffic_for(1);
  EXPECT_NE(t0.seed, t1.seed);
  EXPECT_NE(t0.seed, topo.traffic_prototype.seed);
  // Module 0 targets module 1: destinations live in slice 1.
  EXPECT_EQ(t0.dst_base.value(),
            topo.traffic_prototype.dst_base.value() + (1u << 16));
  // Source flow spaces stay disjoint per module.
  EXPECT_NE(t0.src_base.value(), t1.src_base.value());
}

TEST(Topology, RoutesByDestinationSlice) {
  const Topology topo = small_ring(3);
  // A generated frame from module 0 must route to module 1's slice.
  const auto spec = topo.traffic_for(0);
  sim::Simulation scratch;
  Sink sink(scratch, /*retain_last=*/4);
  TrafficGen gen(scratch, spec, sink);
  const auto tuple = gen.flow_tuple(1);
  EXPECT_EQ((tuple.dst.value() - topo.traffic_prototype.dst_base.value()) >>
                16,
            1u);
  gen.start();
  scratch.run();
  ASSERT_FALSE(sink.retained().empty());
  for (const auto& frame : sink.retained()) {
    EXPECT_EQ(topo.route(*frame), 1);
  }
  // Not parseable as IPv4 → unroutable, not UB.
  net::Packet garbage(net::Bytes(10, 0xFF));
  EXPECT_EQ(topo.route(garbage), -1);
}

TEST(FabricTestbed, RingDeliversEveryPacketAndBalancesTheLedger) {
  FabricTestbed bed(small_ring(3));
  const auto run = bed.run();

  ASSERT_EQ(run.modules.size(), 3u);
  std::uint64_t sent = 0, received = 0;
  for (const auto& m : run.modules) {
    EXPECT_GT(m.sent_packets, 0u);
    EXPECT_GT(m.latency_p50_ns, 0.0);
    sent += m.sent_packets;
    received += m.received_packets;
  }
  // 2 Gb/s through a 10 Gb/s fabric: nothing drops, everything crosses
  // cable → switch → cable.
  EXPECT_EQ(received, sent);
  EXPECT_EQ(run.ledger.sent, sent);
  EXPECT_EQ(run.ledger.delivered, sent);
  EXPECT_EQ(run.ledger.crosspoint_drops, 0u);
  EXPECT_EQ(run.ledger.unrouted, 0u);
  EXPECT_TRUE(run.ledger.balanced())
      << "injected " << run.ledger.injected() << " accounted "
      << run.ledger.accounted();
  // The crossbar saw every packet once.
  EXPECT_EQ(run.metrics.sum("fabric.xbar.enqueued"), sent);
  EXPECT_EQ(run.metrics.sum("fabric.xbar.forwarded.packets"), sent);
}

TEST(FabricTestbed, DownlinkFramesCarryHonoredEgressHints) {
  FabricTestbed bed(small_ring(3));
  const auto run = bed.run();
  // Every frame the fabric handed back to a module was pinned to the edge
  // interface; with zero loss the hint count equals the deliveries.
  EXPECT_EQ(run.metrics.sum("shell.egress_hints"), run.ledger.delivered);
}

TEST(FabricTestbed, IncastOverflowsCrosspointsButStaysAccounted) {
  Topology topo = small_ring(4);
  // All four modules blast module 0 at 6 Gb/s each: output 0 is 2.4x
  // oversubscribed, so crosspoints toward it must fill and drop.
  topo.targets = {0, 0, 0, 0};
  topo.traffic_prototype.rate = DataRate::gbps(6);
  topo.traffic_prototype.duration = 30_us;
  topo.crosspoint_capacity = 8;
  FabricTestbed bed(topo);
  const auto run = bed.run();
  EXPECT_GT(run.ledger.crosspoint_drops, 0u);
  EXPECT_GT(run.modules[0].received_packets, 0u);
  EXPECT_TRUE(run.ledger.balanced())
      << "injected " << run.ledger.injected() << " accounted "
      << run.ledger.accounted();
  // The congestion is attributable: per-crosspoint series toward output 0
  // carry the drops, other outputs are clean.
  EXPECT_EQ(run.metrics.sum("fabric.xbar.crosspoint_drops"),
            run.ledger.crosspoint_drops);
}

TEST(FabricTestbed, LinkFaultsAreLedgeredAcrossTheFabric) {
  Topology topo = small_ring(3);
  topo.traffic_prototype.arrivals = ArrivalProcess::poisson;
  sim::FaultSpec faults;
  faults.drop_prob = 0.05;
  faults.duplicate_prob = 0.03;
  faults.ber = 1e-6;
  faults.reorder_prob = 0.02;
  faults.flaps.push_back({10_us, 5_us});
  topo.link_faults = faults;
  FabricTestbed bed(topo);
  const auto run = bed.run();

  EXPECT_GT(run.ledger.fault_dropped, 0u);
  EXPECT_GT(run.ledger.duplicated, 0u);
  EXPECT_LT(run.ledger.delivered, run.ledger.injected());
  EXPECT_TRUE(run.ledger.balanced())
      << "injected " << run.ledger.injected() << " accounted "
      << run.ledger.accounted();
  // Each uplink got its own derived fault stream.
  EXPECT_NE(topo.link_fault_for(0).seed, topo.link_fault_for(1).seed);
  EXPECT_NE(topo.link_fault_for(0).seed, faults.seed);
}

TEST(FabricTestbed, RepeatedRunsAreBitIdentical) {
  const auto run_once = [] {
    FabricTestbed bed(small_ring(3));
    return bed.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.events, b.events);
}

}  // namespace
}  // namespace flexsfp::fabric
