// The crosspoint-queued crossbar: routing, round-robin arbitration,
// per-crosspoint backpressure and the fabric.xbar.* telemetry.
#include "fabric/crossbar.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hpp"

namespace flexsfp::fabric {
namespace {

net::PacketPtr frame_of(sim::Simulation& sim, std::size_t size,
                        std::uint64_t tag) {
  net::PacketPtr p = sim.packet_pool().make(net::Bytes(size, 0xAB));
  p->set_id(sim.next_packet_id());
  p->set_user_metadata(tag);
  return p;
}

struct Rig {
  explicit Rig(CrossbarConfig config,
               Crossbar::RouteFn route = [](const net::Packet& p) {
                 // Route on the low byte of the metadata word by default.
                 return static_cast<int>(p.user_metadata() & 0xFF);
               })
      : xbar(sim, config, std::move(route)) {
    delivered.resize(config.ports);
    for (std::size_t out = 0; out < config.ports; ++out) {
      xbar.set_output_handler(out, [this, out](net::PacketPtr p) {
        delivered[out].push_back(p->user_metadata());
      });
    }
  }

  sim::Simulation sim;
  Crossbar xbar;
  std::vector<std::vector<std::uint64_t>> delivered;
};

TEST(Crossbar, RejectsDegenerateConfigs) {
  sim::Simulation sim;
  auto route = [](const net::Packet&) { return 0; };
  CrossbarConfig zero_ports;
  zero_ports.ports = 0;
  EXPECT_THROW(Crossbar(sim, zero_ports, route), std::invalid_argument);
  CrossbarConfig zero_capacity;
  zero_capacity.crosspoint_capacity = 0;
  EXPECT_THROW(Crossbar(sim, zero_capacity, route), std::invalid_argument);
  EXPECT_THROW(Crossbar(sim, CrossbarConfig{}, nullptr),
               std::invalid_argument);
}

TEST(Crossbar, RoutesToTheOutputTheRouteFunctionPicks) {
  CrossbarConfig config;
  config.ports = 3;
  Rig rig(config);
  rig.xbar.ingress(0, frame_of(rig.sim, 64, 2));
  rig.xbar.ingress(1, frame_of(rig.sim, 64, 0));
  rig.sim.run();
  EXPECT_EQ(rig.delivered[2].size(), 1u);
  EXPECT_EQ(rig.delivered[0].size(), 1u);
  EXPECT_TRUE(rig.delivered[1].empty());
  EXPECT_EQ(rig.xbar.enqueued(), 2u);
  EXPECT_EQ(rig.xbar.forwarded_packets(2), 1u);
}

TEST(Crossbar, CountsUnroutableFramesInsteadOfBlackHoling) {
  CrossbarConfig config;
  config.ports = 2;
  Rig rig(config, [](const net::Packet&) { return -1; });
  rig.xbar.ingress(0, frame_of(rig.sim, 64, 0));
  rig.xbar.ingress(1, frame_of(rig.sim, 64, 0));
  rig.sim.run();
  EXPECT_EQ(rig.xbar.unrouted(), 2u);
  EXPECT_EQ(rig.xbar.enqueued(), 0u);
  EXPECT_TRUE(rig.delivered[0].empty());
  // Out-of-range is unroutable too, not UB.
  Rig big(config, [](const net::Packet&) { return 99; });
  big.xbar.ingress(0, frame_of(big.sim, 64, 0));
  big.sim.run();
  EXPECT_EQ(big.xbar.unrouted(), 1u);
}

TEST(Crossbar, OutputSerializesAtPortRate) {
  CrossbarConfig config;
  config.ports = 2;
  config.port_rate = sim::DataRate::gbps(10);
  Rig rig(config);
  // 64 B frame = 88 B on the wire = 70.4 ns at 10 Gb/s.
  const sim::TimePs wire_time = config.port_rate.serialization_time(64 + 24);
  rig.xbar.ingress(0, frame_of(rig.sim, 64, 1));
  rig.xbar.ingress(0, frame_of(rig.sim, 64, 1));
  rig.sim.run();
  EXPECT_EQ(rig.delivered[1].size(), 2u);
  // Two back-to-back frames: the second waits for the first transmitter.
  EXPECT_EQ(rig.sim.now(), 2 * wire_time);
  EXPECT_EQ(rig.xbar.forwarded_bytes(1), 128u);
}

TEST(Crossbar, RoundRobinSharesAnOutputAcrossBackloggedInputs) {
  CrossbarConfig config;
  config.ports = 3;
  Rig rig(config);
  // Three inputs, four frames each, all contending for output 0. Tag the
  // metadata with the input index (<< 8 keeps the route byte 0).
  for (int burst = 0; burst < 4; ++burst) {
    for (std::size_t in = 0; in < 3; ++in) {
      rig.xbar.ingress(in, frame_of(rig.sim, 64, std::uint64_t(in) << 8));
    }
  }
  rig.sim.run();
  ASSERT_EQ(rig.delivered[0].size(), 12u);
  // The first frame wins immediately (queue was empty); after that the
  // grant rotates: no input may be served twice before the others once.
  for (std::size_t i = 3; i + 2 < 12; i += 3) {
    const std::uint64_t a = rig.delivered[0][i];
    const std::uint64_t b = rig.delivered[0][i + 1];
    const std::uint64_t c = rig.delivered[0][i + 2];
    EXPECT_NE(a, b);
    EXPECT_NE(b, c);
    EXPECT_NE(a, c);
  }
}

TEST(Crossbar, CrosspointOverflowDropsAndCountsPerCrosspoint) {
  CrossbarConfig config;
  config.ports = 2;
  config.crosspoint_capacity = 4;
  Rig rig(config);
  // 10 frames into crosspoint (0,1): one goes straight to the transmitter,
  // 4 buffer, the rest exceed the crosspoint and must be counted there.
  for (int i = 0; i < 10; ++i) {
    rig.xbar.ingress(0, frame_of(rig.sim, 1518, 1));
  }
  EXPECT_EQ(rig.xbar.crosspoint_high_watermark(0, 1), 4u);
  EXPECT_EQ(rig.xbar.crosspoint_depth(0, 1), 4u);
  EXPECT_EQ(rig.xbar.crosspoint_drops(), 5u);
  // A different crosspoint of the same output is unaffected (no HOL
  // coupling between inputs).
  rig.xbar.ingress(1, frame_of(rig.sim, 64, 1));
  EXPECT_EQ(rig.xbar.crosspoint_depth(1, 1), 1u);
  rig.sim.run();
  EXPECT_EQ(rig.delivered[1].size(), 6u);
  // Ledger: enqueued = delivered, drops accounted per crosspoint.
  EXPECT_EQ(rig.xbar.enqueued(), 6u);
  const auto snapshot = rig.sim.metrics().snapshot();
  EXPECT_EQ(snapshot.sum("fabric.xbar.crosspoint_drops"), 5u);
  EXPECT_EQ(snapshot.sum("fabric.xbar.crosspoint_hwm"), 5u);  // 4 + 1
}

TEST(Crossbar, PerOutputByteAndPacketSeriesCarryLabels) {
  CrossbarConfig config;
  config.ports = 2;
  Rig rig(config);
  rig.xbar.ingress(0, frame_of(rig.sim, 100, 1));
  rig.sim.run();
  const auto snapshot = rig.sim.metrics().snapshot();
  const std::string name = rig.xbar.name();
  EXPECT_EQ(snapshot.value("fabric.xbar.forwarded.packets{out=1,xbar=" + name +
                           "}"),
            1u);
  EXPECT_EQ(
      snapshot.value("fabric.xbar.forwarded.bytes{out=1,xbar=" + name + "}"),
      100u);
  EXPECT_EQ(snapshot.sum("fabric.xbar.enqueued"), 1u);
}

TEST(Crossbar, InputHandlerFacadeFeedsTheSameIngress) {
  CrossbarConfig config;
  config.ports = 2;
  Rig rig(config);
  rig.xbar.input(0).handle_packet(frame_of(rig.sim, 64, 1));
  rig.sim.run();
  EXPECT_EQ(rig.delivered[1].size(), 1u);
}

}  // namespace
}  // namespace flexsfp::fabric
