// The conservatively synchronized fabric engine: bit-identical merged
// results for any worker count, determinism under fault injection, and
// agreement with the single-simulation reference.
#include "fabric/fabric_testbed.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "sim/random.hpp"

namespace flexsfp::fabric {
namespace {

using namespace sim;  // time literals

Topology base_topology(std::size_t modules, std::uint64_t seed) {
  Topology topo;
  topo.modules = modules;
  topo.base_seed = seed;
  topo.traffic_prototype.rate = DataRate::gbps(3);
  topo.traffic_prototype.arrivals = ArrivalProcess::poisson;
  topo.traffic_prototype.sizes = SizeDistribution::imix;
  topo.traffic_prototype.duration = 40_us;
  return topo;
}

TEST(FabricParallel, ThreeModuleRingIsBitIdenticalForAnyWorkerCount) {
  FabricParallelTestbed bed(base_topology(3, 1));
  const auto oracle = bed.run(1);
  ASSERT_GT(oracle.ledger.sent, 0u);
  ASSERT_GT(oracle.rounds, 0u);
  EXPECT_TRUE(oracle.ledger.balanced());

  for (const unsigned workers : {2u, 4u}) {
    const auto run = bed.run(workers);
    // The whole merged telemetry spine — every counter of every world —
    // must be the same object the sequential oracle produced.
    EXPECT_EQ(run.metrics, oracle.metrics) << "workers=" << workers;
    EXPECT_EQ(run.events, oracle.events) << "workers=" << workers;
    EXPECT_EQ(run.rounds, oracle.rounds) << "workers=" << workers;
    ASSERT_EQ(run.modules.size(), oracle.modules.size());
    for (std::size_t i = 0; i < run.modules.size(); ++i) {
      EXPECT_EQ(run.modules[i].sent_packets, oracle.modules[i].sent_packets);
      EXPECT_EQ(run.modules[i].received_packets,
                oracle.modules[i].received_packets);
      EXPECT_EQ(run.modules[i].latency_p99_ns,
                oracle.modules[i].latency_p99_ns);
    }
  }
}

TEST(FabricParallel, PropertySweepRandomTopologiesWorkersAndFaultSeeds) {
  // Random topologies (module count, target map, rate, crosspoint depth,
  // faulted or not) × workers {1, 2, 4}: merged snapshots must always equal
  // the sequential oracle's, and the loss ledger must always balance —
  // faults, incast overflow and shard boundaries included.
  Rng rng(20260808);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t modules = 2 + rng.uniform(0, 2);  // 2..4
    Topology topo = base_topology(modules, rng.next_u64());
    topo.traffic_prototype.rate =
        DataRate::gbps(static_cast<double>(2 + rng.uniform(0, 4)));
    topo.traffic_prototype.duration = 25_us;
    topo.crosspoint_capacity = std::size_t{4} << rng.uniform(0, 3);  // 4..32
    topo.targets.clear();
    for (std::size_t i = 0; i < modules; ++i) {
      topo.targets.push_back(rng.uniform(0, modules - 1));
    }
    if (trial % 2 == 0) {
      sim::FaultSpec faults;
      faults.drop_prob = 0.04;
      faults.duplicate_prob = 0.02;
      faults.reorder_prob = 0.02;
      faults.seed = rng.next_u64();
      topo.link_faults = faults;
    }

    FabricParallelTestbed bed(topo);
    const auto oracle = bed.run(1);
    ASSERT_GT(oracle.ledger.sent, 0u) << "trial " << trial;
    EXPECT_TRUE(oracle.ledger.balanced())
        << "trial " << trial << ": injected " << oracle.ledger.injected()
        << " accounted " << oracle.ledger.accounted();
    for (const unsigned workers : {2u, 4u}) {
      const auto run = bed.run(workers);
      EXPECT_EQ(run.metrics, oracle.metrics)
          << "trial " << trial << " workers " << workers;
      EXPECT_TRUE(run.ledger.balanced()) << "trial " << trial;
    }
  }
}

TEST(FabricParallel, RepeatedRunsAreDeterministic) {
  Topology topo = base_topology(3, 7);
  sim::FaultSpec faults;
  faults.drop_prob = 0.05;
  topo.link_faults = faults;
  FabricParallelTestbed bed(topo);
  const auto first = bed.run(2);
  const auto second = bed.run(2);
  EXPECT_EQ(first.metrics, second.metrics);
  EXPECT_EQ(first.rounds, second.rounds);
  EXPECT_EQ(first.events, second.events);
}

TEST(FabricParallel, AgreesWithTheSingleSimulationReference) {
  // Same Topology through both engines. Packet-id spaces and registry
  // structure differ (one sim vs a sim per world), so the comparison is at
  // the ledger level: identical traffic, identical fault decisions,
  // identical timing → identical counts everywhere.
  const Topology topo = base_topology(3, 42);
  FabricTestbed single(topo);
  const auto reference = single.run();
  FabricParallelTestbed windowed(topo);
  const auto run = windowed.run(1);

  EXPECT_EQ(run.ledger.sent, reference.ledger.sent);
  EXPECT_EQ(run.ledger.delivered, reference.ledger.delivered);
  EXPECT_EQ(run.ledger.crosspoint_drops, reference.ledger.crosspoint_drops);
  EXPECT_EQ(run.ledger.unrouted, reference.ledger.unrouted);
  ASSERT_EQ(run.modules.size(), reference.modules.size());
  for (std::size_t i = 0; i < run.modules.size(); ++i) {
    EXPECT_EQ(run.modules[i].sent_packets,
              reference.modules[i].sent_packets);
    EXPECT_EQ(run.modules[i].received_packets,
              reference.modules[i].received_packets);
    EXPECT_EQ(run.modules[i].latency_p50_ns,
              reference.modules[i].latency_p50_ns);
  }
}

TEST(FabricParallel, SnapshotsCarryWorldLabels) {
  FabricParallelTestbed bed(base_topology(3, 3));
  const auto run = bed.run(2);
  // Per-world registries merge under {shard=<module>} / {shard=xbar}.
  bool saw_module0 = false, saw_xbar = false;
  for (const auto& sample : run.metrics.samples()) {
    for (const auto& [key, value] : sample.labels) {
      if (key == "shard" && value == "0") saw_module0 = true;
      if (key == "shard" && value == "xbar") saw_xbar = true;
    }
  }
  EXPECT_TRUE(saw_module0);
  EXPECT_TRUE(saw_xbar);
  EXPECT_GT(run.metrics.sum("fabric.xbar.forwarded.packets"), 0u);
}

TEST(FabricParallel, WorkersUsedNeverOversubscribesTheHardware) {
  FabricParallelTestbed bed(base_topology(2, 5));
  const auto run = bed.run(64);
  EXPECT_LE(run.workers_used,
            std::max(1u, std::thread::hardware_concurrency()));
  EXPECT_TRUE(run.ledger.balanced());
}

}  // namespace
}  // namespace flexsfp::fabric
