#include "fabric/legacy_switch.hpp"

#include <gtest/gtest.h>

#include "apps/acl.hpp"
#include "net/builder.hpp"

namespace flexsfp::fabric {
namespace {

using namespace sim;  // time literals

net::PacketPtr frame(std::uint64_t src_mac, std::uint64_t dst_mac) {
  return net::make_packet(
      net::PacketBuilder()
          .ethernet(net::MacAddress::from_u64(dst_mac),
                    net::MacAddress::from_u64(src_mac))
          .ipv4(net::Ipv4Address::from_octets(10, 0, 0, 1),
                net::Ipv4Address::from_octets(10, 0, 0, 2), net::IpProto::udp)
          .udp(1, 2)
          .payload_size(20)
          .build_packet());
}

struct SwitchFixture {
  explicit SwitchFixture(std::size_t ports = 3) : sw(sim, ports) {
    for (std::size_t port = 0; port < ports; ++port) {
      auto sfp = std::make_shared<sfp::StandardSfp>(sim);
      sw.plug_standard(port, sfp);
      sw.set_fiber_tx(port, [this, port](net::PacketPtr packet) {
        fiber_out[port].push_back(std::move(packet));
      });
    }
  }

  Simulation sim;
  LegacySwitch sw;
  std::map<std::size_t, std::vector<net::PacketPtr>> fiber_out;
};

TEST(LegacySwitch, FloodsUnknownDestination) {
  SwitchFixture fx;
  fx.sw.fiber_rx(0, frame(0x1, 0x999));
  fx.sim.run();
  EXPECT_EQ(fx.fiber_out[0].size(), 0u);  // not back out the ingress
  EXPECT_EQ(fx.fiber_out[1].size(), 1u);
  EXPECT_EQ(fx.fiber_out[2].size(), 1u);
  EXPECT_EQ(fx.sw.flooded(), 1u);
}

TEST(LegacySwitch, LearnsAndForwardsUnicast) {
  SwitchFixture fx;
  // Host A (mac 0x1) behind port 0 talks; the switch learns it.
  fx.sw.fiber_rx(0, frame(0x1, 0x2));
  fx.sim.run();
  // Host B (mac 0x2) behind port 1 replies; now unicast to port 0 only.
  fx.sw.fiber_rx(1, frame(0x2, 0x1));
  fx.sim.run();
  EXPECT_EQ(fx.fiber_out[0].size(), 1u);
  EXPECT_EQ(fx.fiber_out[2].size(), 1u);  // only the first flood
  EXPECT_GE(fx.sw.forwarded(), 1u);
  EXPECT_EQ(fx.sw.mac_table().size(), 2u);
}

TEST(LegacySwitch, FiltersFramesToIngressPort) {
  SwitchFixture fx;
  fx.sw.fiber_rx(0, frame(0x1, 0x2));  // learn 0x1 @ 0
  fx.sim.run();
  const auto before = fx.fiber_out[1].size() + fx.fiber_out[2].size();
  fx.sw.fiber_rx(0, frame(0x3, 0x1));  // dst is behind the same port
  fx.sim.run();
  EXPECT_EQ(fx.fiber_out[1].size() + fx.fiber_out[2].size(), before);
}

TEST(LegacySwitch, BroadcastFloods) {
  SwitchFixture fx;
  fx.sw.fiber_rx(0, frame(0x1, 0xffffffffffff));
  fx.sim.run();
  EXPECT_EQ(fx.fiber_out[1].size(), 1u);
  EXPECT_EQ(fx.fiber_out[2].size(), 1u);
}

TEST(LegacySwitch, EmptyCageDropsFrames) {
  Simulation sim;
  LegacySwitch sw(sim, 2);  // nothing plugged
  sw.fiber_rx(0, frame(0x1, 0x2));
  sim.run();  // no crash, frame vanishes
  SUCCEED();
}

TEST(LegacySwitch, FlexSfpRetrofitFiltersAtThePort) {
  // §2.1's headline scenario: plug a FlexSFP running a deny-by-default ACL
  // into one cage of a dumb L2 switch; that port now enforces policy
  // without any switch modification.
  Simulation sim;
  LegacySwitch sw(sim, 2);

  apps::AclConfig deny;
  deny.default_action = apps::AclAction::deny;
  sfp::FlexSfpConfig module_config;
  module_config.boot_at_start = false;
  // Police traffic arriving from the fiber: PPE on the optical->edge path.
  module_config.shell.direction = sfp::PpeDirection::optical_to_edge;
  auto flexsfp = std::make_shared<sfp::FlexSfpModule>(
      sim, std::make_unique<apps::AclFirewall>(deny), module_config);
  sw.plug_flexsfp(0, flexsfp);
  auto plain = std::make_shared<sfp::StandardSfp>(sim);
  sw.plug_standard(1, plain);

  std::vector<net::PacketPtr> out1;
  sw.set_fiber_tx(1, [&out1](net::PacketPtr p) { out1.push_back(std::move(p)); });

  // Traffic entering through the FlexSFP port is dropped by the ACL before
  // it ever reaches the switching ASIC.
  sw.fiber_rx(0, frame(0x1, 0x2));
  sim.run();
  EXPECT_TRUE(out1.empty());
  EXPECT_EQ(flexsfp->shell().engine().dropped_by_app(), 1u);

  // Traffic through the plain port still floods normally.
  std::vector<net::PacketPtr> out0;
  sw.set_fiber_tx(0, [&out0](net::PacketPtr p) { out0.push_back(std::move(p)); });
  sw.fiber_rx(1, frame(0x3, 0x4));
  sim.run();
  EXPECT_EQ(out0.size(), 1u);
}

TEST(SwitchOutputPort, SerializesAtPortRate) {
  Simulation sim;
  SwitchOutputPort port(sim, line_rate_10g);
  std::vector<TimePs> times;
  port.set_output([&](net::PacketPtr) { times.push_back(sim.now()); });
  port.handle_packet(net::make_packet(net::Bytes(64, 0)));
  port.handle_packet(net::make_packet(net::Bytes(64, 0)));
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[1] - times[0], 70'400);  // back-to-back wire time
}

}  // namespace
}  // namespace flexsfp::fabric
