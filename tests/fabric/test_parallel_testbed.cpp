#include "fabric/parallel_testbed.hpp"

#include <gtest/gtest.h>

#include "apps/nat.hpp"
#include "sim/parallel.hpp"
#include "sim/random.hpp"

namespace flexsfp::fabric {
namespace {

using namespace sim;  // time literals

ParallelTestbedConfig two_way_config(std::uint64_t base_seed,
                                     std::size_t shards) {
  ParallelTestbedConfig config;
  config.shards = shards;
  config.base_seed = base_seed;
  TrafficSpec spec;
  spec.rate = DataRate::gbps(8);
  spec.arrivals = ArrivalProcess::poisson;
  spec.sizes = SizeDistribution::imix;
  spec.duration = 100_us;
  config.prototype.edge_traffic = spec;
  config.prototype.optical_traffic = spec;
  return config;
}

AppFactory nat_factory() {
  return [] { return std::make_unique<apps::StaticNat>(); };
}

void expect_stats_identical(const Stats& a, const Stats& b) {
  EXPECT_EQ(a.sent.packets(), b.sent.packets());
  EXPECT_EQ(a.sent.bytes(), b.sent.bytes());
  EXPECT_EQ(a.received.packets(), b.received.packets());
  EXPECT_EQ(a.received.bytes(), b.received.bytes());
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_EQ(a.latency.min(), b.latency.min());
  EXPECT_EQ(a.latency.max(), b.latency.max());
  EXPECT_EQ(a.latency.percentile(50), b.latency.percentile(50));
  EXPECT_EQ(a.latency.percentile(99), b.latency.percentile(99));
  // Exact double equality is intentional: shards merge in shard order in
  // both modes, so even floating-point sums must be bit-identical.
  EXPECT_EQ(a.latency.mean_ns(), b.latency.mean_ns());
  EXPECT_EQ(a.queue_drops, b.queue_drops);
  EXPECT_EQ(a.app_drops, b.app_drops);
  EXPECT_EQ(a.dark_drops, b.dark_drops);
  EXPECT_EQ(a.events, b.events);
}

TEST(ParallelTestbed, ParallelEqualsSequentialOracleAcrossSeeds) {
  for (const std::uint64_t seed : {1ull, 7ull, 20260806ull}) {
    auto config = two_way_config(seed, 4);
    config.workers = 4;
    ParallelTestbed parallel_bed(config, nat_factory());
    const auto parallel = parallel_bed.run();
    const auto sequential = parallel_bed.run_sequential();

    ASSERT_GT(parallel.combined.sent.packets(), 0u) << "seed " << seed;
    expect_stats_identical(parallel.combined, sequential.combined);
    EXPECT_EQ(parallel.combined_counters, sequential.combined_counters)
        << "seed " << seed;
    // The telemetry spine obeys the same oracle: merged registry snapshots
    // and sampled flight recordings are bit-identical.
    EXPECT_FALSE(parallel.combined_metrics.empty());
    EXPECT_EQ(parallel.combined_metrics, sequential.combined_metrics)
        << "seed " << seed;

    ASSERT_EQ(parallel.shards.size(), sequential.shards.size());
    for (std::size_t i = 0; i < parallel.shards.size(); ++i) {
      expect_stats_identical(parallel.shards[i].stats,
                             sequential.shards[i].stats);
      EXPECT_EQ(parallel.shards[i].result.edge_to_optical.latency_p99_ns,
                sequential.shards[i].result.edge_to_optical.latency_p99_ns);
      EXPECT_EQ(parallel.shards[i].app_counters,
                sequential.shards[i].app_counters);
      EXPECT_EQ(parallel.shards[i].metrics, sequential.shards[i].metrics);
      EXPECT_EQ(parallel.shards[i].flight, sequential.shards[i].flight);
    }
  }
}

TEST(ParallelTestbed, BatchWidthIsInvisibleAcrossWorkerCounts) {
  // The batched dispatcher drains only the same-timestamp frontier, so the
  // batch width must be observable solely as throughput: merged snapshots,
  // counters and stats are bit-identical for every (width, workers) pair.
  auto config = two_way_config(17, 4);
  config.batch_width = 1;
  config.workers = 1;
  ParallelTestbed oracle_bed(config, nat_factory());
  const auto oracle = oracle_bed.run();
  ASSERT_GT(oracle.combined.sent.packets(), 0u);
  ASSERT_FALSE(oracle.combined_metrics.empty());

  for (const std::size_t width : {std::size_t{8}, std::size_t{16}}) {
    for (const unsigned workers : {1u, 2u, 4u}) {
      auto variant = two_way_config(17, 4);
      variant.batch_width = width;
      variant.workers = workers;
      ParallelTestbed bed(variant, nat_factory());
      const auto run = bed.run();
      expect_stats_identical(run.combined, oracle.combined);
      EXPECT_EQ(run.combined_counters, oracle.combined_counters)
          << "width " << width << " workers " << workers;
      EXPECT_EQ(run.combined_metrics, oracle.combined_metrics)
          << "width " << width << " workers " << workers;
      ASSERT_EQ(run.shards.size(), oracle.shards.size());
      for (std::size_t i = 0; i < run.shards.size(); ++i) {
        EXPECT_EQ(run.shards[i].flight, oracle.shards[i].flight)
            << "width " << width << " workers " << workers << " shard " << i;
      }
    }
  }
}

TEST(ParallelTestbed, RepeatedParallelRunsAreDeterministic) {
  auto config = two_way_config(3, 3);
  config.workers = 3;
  ParallelTestbed bed(config, nat_factory());
  const auto first = bed.run();
  const auto second = bed.run();
  expect_stats_identical(first.combined, second.combined);
  EXPECT_EQ(first.combined_counters, second.combined_counters);
  EXPECT_EQ(first.combined_metrics, second.combined_metrics);
}

TEST(ParallelTestbed, MergedSnapshotCarriesShardLabeledSeries) {
  auto config = two_way_config(11, 2);
  config.workers = 2;
  ParallelTestbed bed(config, nat_factory());
  const auto run = bed.run();
  // Identical shard topologies stay distinct through the {shard=N} label,
  // and sum() folds the per-shard series back into the global count.
  EXPECT_EQ(run.combined_metrics.value("gen.emitted.packets{gen=gen,shard=0}"),
            run.shards[0].stats.sent.packets() -
                run.shards[0].result.optical_to_edge.sent_packets);
  EXPECT_EQ(run.combined_metrics.sum("gen.emitted.packets"),
            run.combined.sent.packets());
  EXPECT_EQ(run.combined_metrics.sum("sink.received.packets"),
            run.combined.received.packets());
  EXPECT_EQ(run.combined_metrics.sum("module.dark_drops"),
            run.combined.dark_drops);
  // Flight recording is on by default and sampled ~1-in-64.
  std::uint64_t hops = 0;
  for (const auto& shard : run.shards) hops += shard.flight.size();
  EXPECT_GT(hops, 0u);
}

TEST(ParallelTestbed, CombinedIsTheSumOfShards) {
  auto config = two_way_config(5, 4);
  config.workers = 2;
  ParallelTestbed bed(config, nat_factory());
  const auto run = bed.run();

  std::uint64_t sent = 0, received = 0, latency_count = 0, events = 0;
  for (const auto& shard : run.shards) {
    sent += shard.stats.sent.packets();
    received += shard.stats.received.packets();
    latency_count += shard.stats.latency.count();
    events += shard.stats.events;
  }
  EXPECT_EQ(run.combined.sent.packets(), sent);
  EXPECT_EQ(run.combined.received.packets(), received);
  EXPECT_EQ(run.combined.latency.count(), latency_count);
  EXPECT_EQ(run.combined.events, events);

  // Per-app counters accumulate too: the NAT's "missed" counter (index 1,
  // no mappings installed) must equal the packets every shard processed.
  std::uint64_t missed_total = 0;
  for (const auto& shard : run.shards) {
    for (const auto& snap : shard.app_counters) {
      if (snap.bank == "nat_stats" && snap.index == 1) {
        missed_total += snap.packets;
      }
    }
  }
  bool found = false;
  for (const auto& snap : run.combined_counters) {
    if (snap.bank == "nat_stats" && snap.index == 1) {
      EXPECT_EQ(snap.packets, missed_total);
      found = true;
    }
  }
  EXPECT_TRUE(found || missed_total == 0);
}

TEST(ParallelTestbed, ShardsUseHashedSeedStreamsAndDisjointFlowSpace) {
  TrafficSpec prototype;
  const std::uint64_t base = 9;
  const auto s0 = ParallelTestbed::shard_spec(prototype, base, 0, 0);
  const auto s1 = ParallelTestbed::shard_spec(prototype, base, 1, 0);
  const auto s1_opt = ParallelTestbed::shard_spec(prototype, base, 1, 1);

  // Regression for the correlated-seed bug: never base + shard.
  EXPECT_NE(s0.seed, base + 0);
  EXPECT_NE(s1.seed, base + 1);
  EXPECT_NE(s0.seed, s1.seed);
  EXPECT_NE(s1.seed, s1_opt.seed);  // directions are independent streams
  EXPECT_EQ(s0.seed, derive_stream_seed(base, 0));
  EXPECT_EQ(s1.seed, derive_stream_seed(base, 2));

  // Disjoint /16 flow-space slices, distinct MACs.
  EXPECT_EQ(s1.src_base.value(), s0.src_base.value() + (1u << 16));
  EXPECT_EQ(s1.dst_base.value(), s0.dst_base.value() + (1u << 16));
  EXPECT_NE(s0.src_mac, s1.src_mac);
}

TEST(ParallelTestbed, ShardPlanRoundRobinsAndCapsWorkers) {
  const auto plan = plan_shards(8, 3);
  EXPECT_EQ(plan.workers, 3u);
  ASSERT_EQ(plan.assignment.size(), 3u);
  EXPECT_EQ(plan.assignment[0].size(), 3u);
  EXPECT_EQ(plan.assignment[1].size(), 3u);
  EXPECT_EQ(plan.assignment[2].size(), 2u);
  EXPECT_EQ(plan.widest_worker(), 3u);

  // More workers than shards is capped; zero means "use the hardware".
  EXPECT_EQ(plan_shards(2, 16).workers, 2u);
  EXPECT_GE(plan_shards(64, 0).workers, 1u);
}

TEST(ParallelTestbed, RejectsDegenerateConfigs) {
  ParallelTestbedConfig config;
  config.shards = 0;
  EXPECT_THROW(ParallelTestbed(config, nat_factory()), std::invalid_argument);
  config.shards = 1;
  EXPECT_THROW(ParallelTestbed(config, nullptr), std::invalid_argument);
}

TEST(ParallelForEachShard, RunsEveryJobExactlyOnce) {
  std::vector<int> hits(64, 0);
  parallel_for_each_shard(hits.size(), 4,
                          [&](std::size_t i) { ++hits[i]; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForEachShard, PropagatesTheLowestIndexedError) {
  try {
    parallel_for_each_shard(8, 4, [](std::size_t i) {
      if (i >= 2) throw std::runtime_error("shard " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "shard 2");
  }
}

}  // namespace
}  // namespace flexsfp::fabric
