#include "fabric/traffic_gen.hpp"

#include <gtest/gtest.h>

#include <set>

namespace flexsfp::fabric {
namespace {

using namespace sim;  // time literals

TEST(TrafficGen, CbrHitsOfferedRate) {
  Simulation sim;
  Sink sink(sim);
  TrafficSpec spec;
  spec.rate = DataRate::gbps(10);
  spec.fixed_size = 1518;
  spec.duration = 1_ms;
  TrafficGen gen(sim, spec, sink);
  gen.start();
  sim.run();
  const double offered = gen.emitted().bits_per_second(spec.duration);
  // Payload rate = 10G x 1518/1542 (wire overhead) ~ 9.84 Gb/s.
  EXPECT_NEAR(offered, 10e9 * 1518.0 / 1542.0, 0.05e9);
  EXPECT_EQ(gen.emitted().packets(), sink.received().packets());
}

TEST(TrafficGen, StopsAtDuration) {
  Simulation sim;
  Sink sink(sim);
  TrafficSpec spec;
  spec.duration = 100_us;
  TrafficGen gen(sim, spec, sink);
  gen.start();
  sim.run();
  EXPECT_LE(sim.now(), 110_us);
  EXPECT_GT(sink.received().packets(), 0u);
}

TEST(TrafficGen, DeterministicForSeed) {
  auto run_once = [](std::uint64_t seed) {
    Simulation sim;
    Sink sink(sim, /*retain_last=*/16);
    TrafficSpec spec;
    spec.seed = seed;
    spec.sizes = SizeDistribution::uniform;
    spec.duration = 50_us;
    TrafficGen gen(sim, spec, sink);
    gen.start();
    sim.run();
    std::vector<net::Bytes> frames;
    for (const auto& packet : sink.retained()) {
      frames.push_back(packet->data());
    }
    return frames;
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

TEST(TrafficGen, ImixMixesThreeSizes) {
  Simulation sim;
  Sink sink(sim, 1024);
  TrafficSpec spec;
  spec.sizes = SizeDistribution::imix;
  spec.duration = 200_us;
  TrafficGen gen(sim, spec, sink);
  gen.start();
  sim.run();
  std::set<std::size_t> sizes;
  for (const auto& packet : sink.retained()) sizes.insert(packet->size());
  EXPECT_EQ(sizes, (std::set<std::size_t>{64, 594, 1518}));
}

TEST(TrafficGen, FramesAreWellFormed) {
  Simulation sim;
  Sink sink(sim, 256);
  TrafficSpec spec;
  spec.duration = 100_us;
  spec.sizes = SizeDistribution::imix;
  TrafficGen gen(sim, spec, sink);
  gen.start();
  sim.run();
  ASSERT_GT(sink.retained().size(), 0u);
  for (const auto& packet : sink.retained()) {
    const auto parsed = net::parse_packet(packet->data());
    ASSERT_TRUE(parsed.ok());
    ASSERT_TRUE(parsed.outer.ipv4.has_value());
    EXPECT_TRUE(net::validate_packet(parsed, packet->data()).empty());
  }
}

TEST(TrafficGen, ZipfSkewConcentratesFlows) {
  Simulation sim;
  Sink sink(sim, 4096);
  TrafficSpec spec;
  spec.flow_count = 1000;
  spec.zipf_skew = 1.2;
  spec.duration = 500_us;
  TrafficGen gen(sim, spec, sink);
  gen.start();
  sim.run();
  std::map<std::uint32_t, int> per_src;
  for (const auto& packet : sink.retained()) {
    const auto parsed = net::parse_packet(packet->data());
    ++per_src[parsed.outer.ipv4->src.value()];
  }
  int max_count = 0;
  for (const auto& [src, count] : per_src) max_count = std::max(max_count, count);
  const double total = double(sink.retained().size());
  EXPECT_GT(max_count / total, 0.05);  // the top flow dominates
}

TEST(TrafficGen, PoissonArrivalsHaveVariance) {
  Simulation sim;
  std::vector<TimePs> arrivals;
  LambdaHandler capture([&arrivals, &sim](net::PacketPtr) {
    arrivals.push_back(sim.now());
  });
  TrafficSpec spec;
  spec.arrivals = ArrivalProcess::poisson;
  spec.rate = DataRate::gbps(1);
  spec.duration = 1_ms;
  TrafficGen gen(sim, spec, capture);
  gen.start();
  sim.run();
  ASSERT_GT(arrivals.size(), 100u);
  std::set<TimePs> gaps;
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    gaps.insert(arrivals[i] - arrivals[i - 1]);
  }
  EXPECT_GT(gaps.size(), arrivals.size() / 2);  // not constant-gap
}

TEST(TrafficGen, FlowTupleStablePerRank) {
  Simulation sim;
  Sink sink(sim);
  TrafficSpec spec;
  TrafficGen gen(sim, spec, sink);
  EXPECT_EQ(gen.flow_tuple(5), gen.flow_tuple(5));
  EXPECT_NE(gen.flow_tuple(5), gen.flow_tuple(6));
}

TEST(Sink, MeasuresEndToEndLatency) {
  Simulation sim;
  Sink sink(sim);
  auto packet = net::make_packet(net::Bytes(64, 0));
  packet->set_created_time_ps(0);
  sim.schedule_at(500_ns, [&sink, packet]() mutable {
    sink.handle_packet(std::move(packet));
  });
  sim.run();
  EXPECT_EQ(sink.latency().count(), 1u);
  EXPECT_NEAR(to_nanos(sink.latency().max()), 500.0, 1.0);
}

}  // namespace
}  // namespace flexsfp::fabric
