#include "fabric/testbed.hpp"

#include <gtest/gtest.h>

namespace flexsfp::fabric {
namespace {

using namespace sim;  // time literals

TEST(ModuleTestbed, NatAtLineRateLosesNothing) {
  // The §5.1 experiment in miniature: 10G of minimum-size frames through
  // the One-Way-Filter NAT; line rate means zero loss.
  TestbedConfig config;
  TrafficSpec spec;
  spec.rate = DataRate::gbps(10);
  spec.fixed_size = 64;
  spec.duration = 200_us;
  config.edge_traffic = spec;

  ModuleTestbed testbed(std::move(config), std::make_unique<apps::StaticNat>());
  const auto result = testbed.run();
  EXPECT_GT(result.edge_to_optical.sent_packets, 2000u);
  EXPECT_DOUBLE_EQ(result.edge_to_optical.loss_rate, 0.0);
  EXPECT_EQ(result.ppe_queue_drops, 0u);
  EXPECT_NEAR(result.edge_to_optical.delivered_gbps,
              result.edge_to_optical.offered_gbps, 0.05);
}

TEST(ModuleTestbed, LatencyIsSubMicrosecond) {
  TestbedConfig config;
  TrafficSpec spec;
  spec.rate = DataRate::gbps(5);
  spec.fixed_size = 512;
  spec.duration = 100_us;
  config.edge_traffic = spec;
  ModuleTestbed testbed(std::move(config), std::make_unique<apps::StaticNat>());
  const auto result = testbed.run();
  EXPECT_LT(result.edge_to_optical.latency_p99_ns, 2000.0);
  EXPECT_GT(result.edge_to_optical.latency_p50_ns, 100.0);
}

TEST(ModuleTestbed, TwoWayCoreOverloadsAtBidirectionalMinFrames) {
  // Figure 1b consideration: both directions into one PPE doubles the
  // packet rate; at the base clock the engine saturates and drops.
  TestbedConfig config;
  config.module.shell.kind = sfp::ShellKind::two_way_core;
  TrafficSpec spec;
  spec.rate = DataRate::gbps(10);
  spec.fixed_size = 64;
  spec.duration = 200_us;
  config.edge_traffic = spec;
  TrafficSpec rx = spec;
  rx.seed = 2;
  config.optical_traffic = rx;

  ModuleTestbed testbed(std::move(config), std::make_unique<apps::StaticNat>());
  const auto result = testbed.run();
  EXPECT_GT(result.ppe_queue_drops, 0u);
  EXPECT_GT(result.edge_to_optical.loss_rate + result.optical_to_edge.loss_rate,
            0.1);
}

TEST(ModuleTestbed, TwoWayCoreAtDoubleClockSustainsBothDirections) {
  // ...and the paper's remedy: raise the PPE clock.
  TestbedConfig config;
  config.module.shell.kind = sfp::ShellKind::two_way_core;
  config.module.shell.datapath.clock = hw::ClockDomain::mhz(312.5);
  TrafficSpec spec;
  spec.rate = DataRate::gbps(10);
  spec.fixed_size = 64;
  spec.duration = 200_us;
  config.edge_traffic = spec;
  TrafficSpec rx = spec;
  rx.seed = 2;
  config.optical_traffic = rx;

  ModuleTestbed testbed(std::move(config), std::make_unique<apps::StaticNat>());
  const auto result = testbed.run();
  EXPECT_EQ(result.ppe_queue_drops, 0u);
  EXPECT_LT(result.edge_to_optical.loss_rate, 0.001);
  EXPECT_LT(result.optical_to_edge.loss_rate, 0.001);
}

TEST(PowerMeasurement, ReproducesPaperOperatingPoints) {
  const auto measurement = run_power_measurement(
      std::make_unique<apps::StaticNat>(), /*duration=*/1_ms);
  // Paper: 3.800 W / 4.693 W / 5.320 W.
  EXPECT_DOUBLE_EQ(measurement.nic_only_w, 3.800);
  EXPECT_NEAR(measurement.nic_plus_sfp_w, 4.693, 0.05);
  EXPECT_NEAR(measurement.nic_plus_flexsfp_w, 5.320, 0.08);
  EXPECT_NEAR(measurement.sfp_delta_w(), 0.9, 0.05);
  EXPECT_NEAR(measurement.flexsfp_delta_w(), 1.5, 0.1);
}

TEST(ModuleTestbed, PowerScalesWithLoad) {
  auto run_at = [](double gbps) {
    TestbedConfig config;
    TrafficSpec spec;
    spec.rate = DataRate::gbps(gbps);
    spec.fixed_size = 1518;
    spec.duration = 200_us;
    config.edge_traffic = spec;
    ModuleTestbed testbed(std::move(config),
                          std::make_unique<apps::StaticNat>());
    return testbed.run().power.total();
  };
  EXPECT_LT(run_at(1.0), run_at(9.5));
}

}  // namespace
}  // namespace flexsfp::fabric
