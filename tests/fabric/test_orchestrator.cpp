#include "fabric/orchestrator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "apps/acl.hpp"
#include "apps/bpf_filter.hpp"
#include "apps/nat.hpp"
#include "sfp/flexsfp.hpp"

namespace flexsfp::fabric {
namespace {

using namespace sim;  // time literals

OrchestratorConfig fleet_config(bool verify_before_deploy = true) {
  return OrchestratorConfig{.key = sfp::FlexSfpConfig{}.auth_key,
                            .timeout_ps = 1'000'000'000,  // 1 ms
                            .max_retries = 2,
                            .verify_before_deploy = verify_before_deploy};
}

// A small fleet: orchestrator wired straight to each module's edge port.
struct FleetFixture {
  explicit FleetFixture(std::size_t count = 2,
                        OrchestratorConfig config = fleet_config())
      : orchestrator(sim, std::move(config)) {
    for (std::size_t i = 0; i < count; ++i) {
      sfp::FlexSfpConfig config;
      config.boot_at_start = false;
      config.shell.module_mac =
          net::MacAddress::from_u64(0x02ee00 + i);
      auto module = std::make_shared<sfp::FlexSfpModule>(
          sim, std::make_unique<apps::StaticNat>(), config);
      module->set_egress_handler(
          sfp::FlexSfpModule::edge_port, [this](net::PacketPtr p) {
            orchestrator.deliver(*p);
          });
      module->set_egress_handler(sfp::FlexSfpModule::optical_port,
                                 [](net::PacketPtr) {});
      const std::string name = "module-" + std::to_string(i);
      auto* raw = module.get();
      orchestrator.add_module(name, config.shell.module_mac,
                              [this, raw, name](net::PacketPtr p) {
                                if (blackholed.count(name) > 0) return;
                                if (!drop_next_tx) {
                                  raw->inject(sfp::FlexSfpModule::edge_port,
                                              std::move(p));
                                } else {
                                  drop_next_tx = false;  // frame lost
                                }
                              });
      modules.push_back(std::move(module));
    }
  }

  Simulation sim;
  FleetOrchestrator orchestrator;
  std::vector<std::shared_ptr<sfp::FlexSfpModule>> modules;
  bool drop_next_tx = false;
  /// Module names whose orchestrator->module direction is dead (the
  /// response path stays up — a one-way fiber cut).
  std::set<std::string> blackholed;
};

TEST(Orchestrator, PingWholeFleet) {
  FleetFixture fx(3);
  int answered = 0;
  for (int i = 0; i < 3; ++i) {
    fx.orchestrator.ping("module-" + std::to_string(i), 42,
                         [&answered](std::optional<sfp::MgmtResponse> r) {
                           ASSERT_TRUE(r.has_value());
                           EXPECT_EQ(r->status, sfp::MgmtStatus::ok);
                           EXPECT_EQ(r->value, 42u);
                           ++answered;
                         });
  }
  fx.sim.run();
  EXPECT_EQ(answered, 3);
  EXPECT_EQ(fx.orchestrator.retransmissions(), 0u);
}

TEST(Orchestrator, TableOpsReachTheRightModule) {
  FleetFixture fx(2);
  bool inserted = false;
  fx.orchestrator.table_insert(
      "module-1", "nat", 0x0a000001, 0x63000001,
      [&inserted](std::optional<sfp::MgmtResponse> r) {
        ASSERT_TRUE(r);
        EXPECT_EQ(r->status, sfp::MgmtStatus::ok);
        inserted = true;
      });
  fx.sim.run();
  EXPECT_TRUE(inserted);
  // Module 1 has the entry; module 0 does not.
  auto* nat1 = dynamic_cast<apps::StaticNat*>(&fx.modules[1]->app());
  auto* nat0 = dynamic_cast<apps::StaticNat*>(&fx.modules[0]->app());
  EXPECT_TRUE(nat1->translation_for(net::Ipv4Address{0x0a000001}).has_value());
  EXPECT_FALSE(nat0->translation_for(net::Ipv4Address{0x0a000001}).has_value());
}

TEST(Orchestrator, LookupAndEraseRoundTrip) {
  FleetFixture fx(1);
  std::optional<std::uint64_t> looked_up;
  fx.orchestrator.table_insert("module-0", "nat", 5, 55,
                               [](std::optional<sfp::MgmtResponse>) {});
  fx.orchestrator.table_lookup(
      "module-0", "nat", 5, [&looked_up](std::optional<sfp::MgmtResponse> r) {
        ASSERT_TRUE(r);
        if (r->status == sfp::MgmtStatus::ok) looked_up = r->value;
      });
  fx.sim.run();
  EXPECT_EQ(looked_up, 55u);

  bool erased = false;
  fx.orchestrator.table_erase("module-0", "nat", 5,
                              [&erased](std::optional<sfp::MgmtResponse> r) {
                                erased = r && r->status == sfp::MgmtStatus::ok;
                              });
  fx.sim.run();
  EXPECT_TRUE(erased);
}

TEST(Orchestrator, RetransmitsAfterLoss) {
  FleetFixture fx(1);
  fx.drop_next_tx = true;  // eat the first frame on the wire
  bool answered = false;
  fx.orchestrator.ping("module-0", 7,
                       [&answered](std::optional<sfp::MgmtResponse> r) {
                         answered = r.has_value();
                       });
  fx.sim.run();
  EXPECT_TRUE(answered);
  EXPECT_EQ(fx.orchestrator.retransmissions(), 1u);
  EXPECT_EQ(fx.orchestrator.timeouts(), 0u);
}

TEST(Orchestrator, TimesOutWhenModuleUnreachable) {
  FleetFixture fx(1);
  // A module registered with a black-hole transmit.
  fx.orchestrator.add_module("dead", net::MacAddress::from_u64(0xdead),
                             [](net::PacketPtr) {});
  bool completed = false;
  bool got_response = true;
  fx.orchestrator.ping("dead", 1,
                       [&](std::optional<sfp::MgmtResponse> r) {
                         completed = true;
                         got_response = r.has_value();
                       });
  fx.sim.run();
  EXPECT_TRUE(completed);
  EXPECT_FALSE(got_response);
  EXPECT_EQ(fx.orchestrator.timeouts(), 1u);
  EXPECT_EQ(fx.orchestrator.retransmissions(), 2u);  // max_retries
}

TEST(Orchestrator, UnknownModuleFailsImmediately) {
  FleetFixture fx(1);
  bool completed = false;
  fx.orchestrator.ping("nope", 1, [&](std::optional<sfp::MgmtResponse> r) {
    completed = true;
    EXPECT_FALSE(r.has_value());
  });
  EXPECT_TRUE(completed);  // synchronous failure
}

TEST(Orchestrator, DeploysBitstreamEndToEnd) {
  FleetFixture fx(1);
  apps::AclConfig acl_config;
  const auto bitstream = hw::Bitstream::create(
      "acl", acl_config.serialize(), sfp::FlexSfpConfig{}.auth_key);

  bool committed = false;
  fx.orchestrator.deploy_bitstream(
      "module-0", bitstream,
      [&committed](std::optional<sfp::MgmtResponse> r) {
        ASSERT_TRUE(r);
        EXPECT_EQ(r->status, sfp::MgmtStatus::ok);
        committed = true;
      },
      /*chunk_size=*/16);
  fx.sim.run();
  EXPECT_TRUE(committed);
  EXPECT_EQ(fx.modules[0]->app().name(), "acl");
  EXPECT_EQ(fx.modules[0]->reconfigurations(), 1u);
}

TEST(Orchestrator, DeploySurvivesChunkLoss) {
  FleetFixture fx(1);
  const auto bitstream = hw::Bitstream::create(
      "acl", apps::AclConfig{}.serialize(), sfp::FlexSfpConfig{}.auth_key);
  bool committed = false;
  fx.orchestrator.deploy_bitstream(
      "module-0", bitstream,
      [&committed](std::optional<sfp::MgmtResponse> r) {
        committed = r && r->status == sfp::MgmtStatus::ok;
      },
      /*chunk_size=*/16);
  // Lose a frame mid-flight.
  fx.sim.run_until(500'000);
  fx.drop_next_tx = true;
  fx.sim.run();
  EXPECT_TRUE(committed);
  EXPECT_GE(fx.orchestrator.retransmissions(), 1u);
  EXPECT_EQ(fx.modules[0]->app().name(), "acl");
}

// The deploy-time gate: a design with error-severity diagnostics never
// reaches the wire, the module keeps its running app, and the verdict is
// inspectable via last_verification().
TEST(Orchestrator, RefusesInfeasibleBitstreamBeforeTouchingTheWire) {
  FleetFixture fx(1);
  const apps::NatConfig oversized{.table_capacity = 524288};
  const auto bitstream = hw::Bitstream::create(
      "nat", oversized.serialize(), sfp::FlexSfpConfig{}.auth_key);

  bool completed = false;
  bool got_response = true;
  fx.orchestrator.deploy_bitstream("module-0", bitstream,
                                   [&](std::optional<sfp::MgmtResponse> r) {
                                     completed = true;
                                     got_response = r.has_value();
                                   });
  // Rejection is synchronous: no mgmt exchange was even scheduled.
  EXPECT_TRUE(completed);
  EXPECT_FALSE(got_response);
  EXPECT_EQ(fx.orchestrator.rejected_deployments(), 1u);
  EXPECT_TRUE(fx.orchestrator.last_verification().has_errors());
  EXPECT_FALSE(
      fx.orchestrator.last_verification().by_rule("FSL001").empty());

  fx.sim.run();
  EXPECT_EQ(fx.modules[0]->app().name(), "nat");  // original app untouched
  EXPECT_EQ(fx.modules[0]->reconfigurations(), 0u);
}

// The BPF abstract interpreter runs inside the same gate: a structurally
// valid program (assemble and parse both accept it) whose only load is out
// of bounds on every admissible frame is refused with FSL009 before any
// mgmt traffic.
TEST(Orchestrator, RefusesBlackHolingBpfProgramAtTheGate) {
  FleetFixture fx(1);
  const auto program = *apps::BpfProgram::assemble({
      {apps::BpfOp::ld_abs_u32, 20000, 0, 0},
      {apps::BpfOp::ret_accept, 0, 0, 0},
  });
  const auto bitstream = hw::Bitstream::create(
      "bpf", program.serialize(), sfp::FlexSfpConfig{}.auth_key);

  bool completed = false;
  bool got_response = true;
  fx.orchestrator.deploy_bitstream("module-0", bitstream,
                                   [&](std::optional<sfp::MgmtResponse> r) {
                                     completed = true;
                                     got_response = r.has_value();
                                   });
  EXPECT_TRUE(completed);
  EXPECT_FALSE(got_response);
  EXPECT_EQ(fx.orchestrator.rejected_deployments(), 1u);
  EXPECT_TRUE(fx.orchestrator.last_verification().has_errors());
  EXPECT_FALSE(
      fx.orchestrator.last_verification().by_rule("FSL009").empty());

  fx.sim.run();
  EXPECT_EQ(fx.modules[0]->reconfigurations(), 0u);
}

TEST(Orchestrator, VerificationGateCanBeDisabled) {
  FleetFixture fx(1, fleet_config(/*verify_before_deploy=*/false));
  const apps::NatConfig oversized{.table_capacity = 524288};
  const auto bitstream = hw::Bitstream::create(
      "nat", oversized.serialize(), sfp::FlexSfpConfig{}.auth_key);

  bool committed = false;
  fx.orchestrator.deploy_bitstream(
      "module-0", bitstream,
      [&committed](std::optional<sfp::MgmtResponse> r) {
        committed = r && r->status == sfp::MgmtStatus::ok;
      },
      /*chunk_size=*/64);
  fx.sim.run();
  // With the gate off the rollout proceeds (bring-up escape hatch).
  EXPECT_TRUE(committed);
  EXPECT_EQ(fx.orchestrator.rejected_deployments(), 0u);
  EXPECT_EQ(fx.modules[0]->reconfigurations(), 1u);
}

TEST(Orchestrator, FeasibleDeployRecordsCleanVerification) {
  FleetFixture fx(1);
  const auto bitstream = hw::Bitstream::create(
      "acl", apps::AclConfig{}.serialize(), sfp::FlexSfpConfig{}.auth_key);
  bool committed = false;
  fx.orchestrator.deploy_bitstream(
      "module-0", bitstream,
      [&committed](std::optional<sfp::MgmtResponse> r) {
        committed = r && r->status == sfp::MgmtStatus::ok;
      },
      /*chunk_size=*/16);
  fx.sim.run();
  EXPECT_TRUE(committed);
  EXPECT_EQ(fx.orchestrator.rejected_deployments(), 0u);
  // The verification ran and is inspectable: utilization note, no errors.
  EXPECT_FALSE(fx.orchestrator.last_verification().has_errors());
  EXPECT_FALSE(
      fx.orchestrator.last_verification().by_rule("FSL001").empty());
}

TEST(Orchestrator, RetryTimeoutsBackOffExponentially) {
  FleetFixture fx(1);  // timeout 1 ms, max_retries 2
  fx.orchestrator.add_module("dead", net::MacAddress::from_u64(0xdead),
                             [](net::PacketPtr) {});
  TimePs failed_at = -1;
  fx.orchestrator.ping("dead", 1, [&](std::optional<sfp::MgmtResponse> r) {
    EXPECT_FALSE(r.has_value());
    failed_at = fx.sim.now();
  });
  fx.sim.run();
  // 1 ms + 2 ms + 4 ms, not 3 x 1 ms: the dark module is probed gently.
  EXPECT_EQ(failed_at, 7_ms);
}

TEST(Orchestrator, BackoffIsCappedAtMaxTimeout) {
  OrchestratorConfig config = fleet_config();
  config.max_timeout_ps = 2'000'000'000;  // cap at 2 ms
  config.max_retries = 3;
  FleetFixture fx(1, std::move(config));
  fx.orchestrator.add_module("dead", net::MacAddress::from_u64(0xdead),
                             [](net::PacketPtr) {});
  TimePs failed_at = -1;
  fx.orchestrator.ping("dead", 1, [&](std::optional<sfp::MgmtResponse> r) {
    EXPECT_FALSE(r.has_value());
    failed_at = fx.sim.now();
  });
  fx.sim.run();
  // 1 + 2 + 2 + 2 ms: attempts after the cap stop doubling.
  EXPECT_EQ(failed_at, 7_ms);
}

TEST(Orchestrator, HealthChecksQuarantineUnresponsiveModule) {
  OrchestratorConfig config = fleet_config();
  config.health_check_interval_ps = 2'000'000'000;  // 2 ms
  config.quarantine_after = 2;
  config.golden_redeploy = false;
  FleetFixture fx(2, std::move(config));
  fx.blackholed.insert("module-1");
  fx.orchestrator.start_health_checks();
  fx.sim.run_until(60_ms);
  fx.orchestrator.stop_health_checks();
  fx.sim.run();

  EXPECT_EQ(fx.orchestrator.health("module-0"), ModuleHealth::healthy);
  EXPECT_EQ(fx.orchestrator.health("module-1"), ModuleHealth::quarantined);
  EXPECT_EQ(fx.orchestrator.quarantined_count(), 1u);
  EXPECT_EQ(fx.orchestrator.quarantines(), 1u);
  EXPECT_GT(fx.orchestrator.health_failures(), 0u);
  EXPECT_GT(fx.orchestrator.health_checks_sent(), 0u);
  const auto snap = fx.sim.metrics().snapshot();
  EXPECT_EQ(snap.value("orch.quarantined{orch=orch}"), 1u);

  // Normal operations to a quarantined module are refused locally.
  bool completed = false;
  bool got_response = true;
  fx.orchestrator.table_insert("module-1", "nat", 1, 2,
                               [&](std::optional<sfp::MgmtResponse> r) {
                                 completed = true;
                                 got_response = r.has_value();
                               });
  EXPECT_TRUE(completed);  // synchronous refusal
  EXPECT_FALSE(got_response);
  EXPECT_EQ(fx.orchestrator.refused_operations(), 1u);
}

TEST(Orchestrator, QuarantinedModuleRecoversWhenItAnswersAgain) {
  OrchestratorConfig config = fleet_config();
  config.health_check_interval_ps = 2'000'000'000;
  config.quarantine_after = 2;
  config.golden_redeploy = false;
  FleetFixture fx(1, std::move(config));
  fx.blackholed.insert("module-0");
  fx.orchestrator.start_health_checks();
  fx.sim.run_until(60_ms);
  ASSERT_EQ(fx.orchestrator.health("module-0"), ModuleHealth::quarantined);

  // The link comes back: quarantined modules keep being pinged, and the
  // first answered probe lifts the quarantine.
  fx.blackholed.clear();
  fx.sim.run_until(120_ms);
  fx.orchestrator.stop_health_checks();
  fx.sim.run();
  EXPECT_EQ(fx.orchestrator.health("module-0"), ModuleHealth::healthy);
  EXPECT_GE(fx.orchestrator.recoveries(), 1u);
  EXPECT_EQ(fx.orchestrator.quarantined_count(), 0u);
}

TEST(Orchestrator, GoldenRedeployReimagesModule) {
  FleetFixture fx(1);
  // The fleet's golden image runs ACL; the module currently runs NAT.
  const auto golden = hw::Bitstream::create(
      "acl", apps::AclConfig{}.serialize(), sfp::FlexSfpConfig{}.auth_key);
  ASSERT_FALSE(fx.orchestrator.has_golden());
  ASSERT_TRUE(fx.orchestrator.stage_golden(golden));
  EXPECT_TRUE(fx.orchestrator.has_golden());

  bool committed = false;
  ASSERT_TRUE(fx.orchestrator.redeploy_golden(
      "module-0", [&committed](std::optional<sfp::MgmtResponse> r) {
        committed = r && r->status == sfp::MgmtStatus::ok;
      }));
  fx.sim.run();
  EXPECT_TRUE(committed);
  EXPECT_EQ(fx.orchestrator.golden_redeploys(), 1u);
  EXPECT_EQ(fx.modules[0]->app().name(), "acl");
}

TEST(Orchestrator, GoldenRedeployWithoutStagedImageFails) {
  FleetFixture fx(1);
  bool completed = false;
  bool got_response = true;
  EXPECT_FALSE(fx.orchestrator.redeploy_golden(
      "module-0", [&](std::optional<sfp::MgmtResponse> r) {
        completed = true;
        got_response = r.has_value();
      }));
  EXPECT_TRUE(completed);
  EXPECT_FALSE(got_response);
  EXPECT_EQ(fx.orchestrator.golden_redeploys(), 0u);
}

TEST(Orchestrator, QuarantineTriggersAutomaticGoldenRedeploy) {
  OrchestratorConfig config = fleet_config();
  config.health_check_interval_ps = 2'000'000'000;
  config.quarantine_after = 1;
  FleetFixture fx(1, std::move(config));
  const auto golden = hw::Bitstream::create(
      "acl", apps::AclConfig{}.serialize(), sfp::FlexSfpConfig{}.auth_key);
  ASSERT_TRUE(fx.orchestrator.stage_golden(golden));

  // One-way outage long enough to quarantine, then the path heals: the
  // automatic golden re-image retries its way through and lands.
  fx.blackholed.insert("module-0");
  fx.orchestrator.start_health_checks();
  fx.sim.run_until(9_ms);
  ASSERT_EQ(fx.orchestrator.health("module-0"), ModuleHealth::quarantined);
  EXPECT_EQ(fx.orchestrator.golden_redeploys(), 1u);
  fx.blackholed.clear();
  fx.sim.run_until(300_ms);
  fx.orchestrator.stop_health_checks();
  fx.sim.run();
  EXPECT_EQ(fx.modules[0]->app().name(), "acl");
  EXPECT_EQ(fx.orchestrator.health("module-0"), ModuleHealth::healthy);
}

TEST(ModuleHealthStrings, Names) {
  EXPECT_EQ(to_string(ModuleHealth::healthy), "healthy");
  EXPECT_EQ(to_string(ModuleHealth::suspect), "suspect");
  EXPECT_EQ(to_string(ModuleHealth::quarantined), "quarantined");
}

TEST(Orchestrator, CounterReadReturnsSnapshot) {
  FleetFixture fx(1);
  std::optional<std::uint64_t> packets;
  fx.orchestrator.counter_read(
      "module-0", 0, [&packets](std::optional<sfp::MgmtResponse> r) {
        ASSERT_TRUE(r);
        EXPECT_EQ(r->status, sfp::MgmtStatus::ok);
        packets = r->value;
      });
  fx.sim.run();
  EXPECT_EQ(packets, 0u);  // no traffic yet
}

}  // namespace
}  // namespace flexsfp::fabric
