#include "ppe/tables.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <vector>

#include "sim/random.hpp"

namespace flexsfp::ppe {
namespace {

TEST(ExactMatchTable, InsertLookupEraseCycle) {
  ExactMatchTable table("t", 1024, 32, 64);
  EXPECT_TRUE(table.insert(42, 100));
  EXPECT_EQ(table.lookup(42), 100u);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.erase(42));
  EXPECT_FALSE(table.lookup(42).has_value());
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.erase(42));
}

TEST(ExactMatchTable, UpdateInPlace) {
  ExactMatchTable table("t", 64, 32, 64);
  EXPECT_TRUE(table.insert(1, 10));
  EXPECT_TRUE(table.insert(1, 20));
  EXPECT_EQ(table.lookup(1), 20u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(ExactMatchTable, CapacityEnforced) {
  ExactMatchTable table("t", 8, 32, 64, /*ways=*/8);
  for (std::uint64_t k = 0; k < 8; ++k) {
    ASSERT_TRUE(table.insert(k, k)) << k;
  }
  EXPECT_FALSE(table.insert(99, 99));
  EXPECT_EQ(table.size(), 8u);
  // Updates of existing keys still succeed at capacity.
  EXPECT_TRUE(table.insert(3, 33));
}

TEST(ExactMatchTable, BucketOverflowIsPossibleAndCounted) {
  // 1-way table: any two keys hashing to the same bucket collide.
  ExactMatchTable table("t", 1024, 32, 64, /*ways=*/1);
  sim::Rng rng(1);
  bool saw_overflow = false;
  for (int i = 0; i < 2000 && !saw_overflow; ++i) {
    if (!table.insert(rng.next_u64(), 1)) saw_overflow = true;
  }
  EXPECT_TRUE(saw_overflow);
  EXPECT_GT(table.bucket_overflows(), 0u);
}

TEST(ExactMatchTable, LookupBatchMatchesScalarLookups) {
  // The SoA batched probe must be out[i] = lookup(keys[i]) verbatim — hits,
  // misses, duplicate keys and erased keys included — for every batch size
  // the dispatcher uses.
  ExactMatchTable table("t", 4096, 32, 64);
  sim::Rng rng(7);
  std::vector<std::uint64_t> inserted;
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t key = rng.next_u64();
    if (table.insert(key, key ^ 0xabcdefull)) inserted.push_back(key);
  }
  for (std::size_t i = 0; i < inserted.size(); i += 5) {
    ASSERT_TRUE(table.erase(inserted[i]));  // mix erased keys into the probes
  }

  for (const std::size_t n :
       {std::size_t{1}, std::size_t{8}, std::size_t{16}, std::size_t{64}}) {
    std::vector<std::uint64_t> keys(n);
    for (std::size_t i = 0; i < n; ++i) {
      switch (i % 3) {
        case 0: keys[i] = inserted[(i * 7) % inserted.size()]; break;
        case 1: keys[i] = rng.next_u64(); break;       // near-certain miss
        default: keys[i] = keys[i > 0 ? i - 1 : 0];    // duplicate of prior
      }
    }
    std::vector<std::optional<std::uint64_t>> out(n);
    table.lookup_batch(keys.data(), out.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], table.lookup(keys[i])) << "n " << n << " i " << i;
    }
  }
}

TEST(ExactMatchTable, FourWayAchievesHighLoadFactor) {
  // The NAT geometry should comfortably absorb ~75% load without failures.
  ExactMatchTable table("t", 32768, 32, 64, /*ways=*/4);
  sim::Rng rng(2);
  std::size_t inserted = 0;
  for (std::size_t i = 0; i < 24576; ++i) {
    if (table.insert(rng.next_u64(), i)) ++inserted;
  }
  EXPECT_GT(double(inserted) / 24576.0, 0.98);
}

TEST(ExactMatchTable, GenerationBumpsOnMutationOnly) {
  ExactMatchTable table("t", 64, 32, 64);
  const auto g0 = table.generation();
  (void)table.lookup(1);
  EXPECT_EQ(table.generation(), g0);
  table.insert(1, 1);
  EXPECT_GT(table.generation(), g0);
}

TEST(ExactMatchTable, ForEachVisitsAllEntries) {
  ExactMatchTable table("t", 64, 32, 64);
  for (std::uint64_t k = 0; k < 10; ++k) table.insert(k, k * 2);
  std::set<std::uint64_t> seen;
  table.for_each([&seen](std::uint64_t key, std::uint64_t value) {
    EXPECT_EQ(value, key * 2);
    seen.insert(key);
  });
  EXPECT_EQ(seen.size(), 10u);
}

TEST(ExactMatchTable, ClearEmptiesTable) {
  ExactMatchTable table("t", 64, 32, 64);
  table.insert(1, 1);
  table.insert(2, 2);
  table.clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.lookup(1).has_value());
}

TEST(ExactMatchTable, ResourceUsageMatchesGeometry) {
  ExactMatchTable table("t", 32768, 32, 64);
  EXPECT_EQ(table.resource_usage().lsram_blocks, 160u);
}

TEST(TernaryTable, PriorityOrderWins) {
  TernaryTable table("acl", 16, 104);
  // Low-priority catch-all, high-priority specific.
  ASSERT_TRUE(table.add_rule({{0, 0}, {0, 0}, /*prio=*/1, /*result=*/100}));
  ASSERT_TRUE(table.add_rule(
      {{0xabc, 0}, {0xfff, 0}, /*prio=*/10, /*result=*/200}));
  EXPECT_EQ(table.lookup({0xabc, 0}), 200u);
  EXPECT_EQ(table.lookup({0x123, 0}), 100u);
}

TEST(TernaryTable, EqualPriorityFirstAddedWins) {
  TernaryTable table("acl", 16, 104);
  ASSERT_TRUE(table.add_rule({{0, 0}, {0, 0}, 5, 1}));
  ASSERT_TRUE(table.add_rule({{0, 0}, {0, 0}, 5, 2}));
  EXPECT_EQ(table.lookup({7, 7}), 1u);
}

TEST(TernaryTable, MaskedBitsIgnored) {
  TernaryTable table("acl", 16, 104);
  // Match hi = 0xff00 with mask 0xff00: low byte is wildcard.
  ASSERT_TRUE(table.add_rule({{0xff00, 0}, {0xff00, 0}, 1, 7}));
  EXPECT_EQ(table.lookup({0xff42, 0x1234}), 7u);
  EXPECT_FALSE(table.lookup({0x0042, 0}).has_value());
}

TEST(TernaryTable, EraseByRuleId) {
  TernaryTable table("acl", 16, 104);
  const auto id = table.add_rule({{1, 0}, {0xff, 0}, 1, 1});
  ASSERT_TRUE(id);
  EXPECT_TRUE(table.erase_rule(*id));
  EXPECT_FALSE(table.erase_rule(*id));
  EXPECT_FALSE(table.lookup({1, 0}).has_value());
}

TEST(TernaryTable, CapacityEnforced) {
  TernaryTable table("acl", 2, 104);
  EXPECT_TRUE(table.add_rule({{1, 0}, {0xff, 0}, 1, 1}));
  EXPECT_TRUE(table.add_rule({{2, 0}, {0xff, 0}, 1, 2}));
  EXPECT_FALSE(table.add_rule({{3, 0}, {0xff, 0}, 1, 3}));
}

TEST(PortRangeExpansion, ExactPortIsOnePair) {
  const auto pairs = expand_port_range(80, 80);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first, 80);
  EXPECT_EQ(pairs[0].second, 0xffff);
}

TEST(PortRangeExpansion, AlignedPowerOfTwoIsOnePair) {
  const auto pairs = expand_port_range(1024, 2047);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first, 1024);
  EXPECT_EQ(pairs[0].second, 0xfc00);
}

TEST(PortRangeExpansion, FullRangeIsOneWildcard) {
  const auto pairs = expand_port_range(0, 65535);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].second, 0x0000);
}

TEST(PortRangeExpansion, CoversExactlyTheRange) {
  // Property: every port in [lo, hi] matches exactly one pair; ports
  // outside match none.
  const std::uint16_t lo = 1000;
  const std::uint16_t hi = 1999;
  const auto pairs = expand_port_range(lo, hi);
  EXPECT_LE(pairs.size(), 30u);
  for (std::uint32_t port = 0; port <= 65535; ++port) {
    int matches = 0;
    for (const auto& [value, mask] : pairs) {
      if ((port & mask) == (value & mask)) ++matches;
    }
    const bool inside = port >= lo && port <= hi;
    EXPECT_EQ(matches, inside ? 1 : 0) << "port " << port;
  }
}

TEST(PortRangeExpansion, EmptyWhenInverted) {
  EXPECT_TRUE(expand_port_range(100, 99).empty());
}

TEST(LpmTable, LongestPrefixWins) {
  LpmTable table("routes", 16);
  ASSERT_TRUE(table.insert(*net::Ipv4Prefix::parse("10.0.0.0/8"), 1));
  ASSERT_TRUE(table.insert(*net::Ipv4Prefix::parse("10.1.0.0/16"), 2));
  ASSERT_TRUE(table.insert(*net::Ipv4Prefix::parse("10.1.2.0/24"), 3));
  EXPECT_EQ(table.lookup(*net::Ipv4Address::parse("10.1.2.3")), 3u);
  EXPECT_EQ(table.lookup(*net::Ipv4Address::parse("10.1.9.9")), 2u);
  EXPECT_EQ(table.lookup(*net::Ipv4Address::parse("10.200.0.1")), 1u);
  EXPECT_FALSE(table.lookup(*net::Ipv4Address::parse("11.0.0.1")).has_value());
}

TEST(LpmTable, DefaultRouteMatchesEverything) {
  LpmTable table("routes", 4);
  ASSERT_TRUE(table.insert(*net::Ipv4Prefix::parse("0.0.0.0/0"), 99));
  EXPECT_EQ(table.lookup(*net::Ipv4Address::parse("8.8.8.8")), 99u);
}

TEST(LpmTable, UpdateAndEraseByPrefix) {
  LpmTable table("routes", 4);
  const auto prefix = *net::Ipv4Prefix::parse("192.168.0.0/16");
  ASSERT_TRUE(table.insert(prefix, 1));
  ASSERT_TRUE(table.insert(prefix, 2));  // update, not a second entry
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.lookup(*net::Ipv4Address::parse("192.168.1.1")), 2u);
  EXPECT_TRUE(table.erase(prefix));
  EXPECT_FALSE(table.lookup(*net::Ipv4Address::parse("192.168.1.1")).has_value());
}

TEST(LpmTable, CapacityEnforced) {
  LpmTable table("routes", 1);
  ASSERT_TRUE(table.insert(*net::Ipv4Prefix::parse("10.0.0.0/8"), 1));
  EXPECT_FALSE(table.insert(*net::Ipv4Prefix::parse("11.0.0.0/8"), 2));
}

TEST(LpmTable, LookupExactDistinguishesNestedPrefixes) {
  // 10.0.0.0/8 and 10.0.0.0/24 share an address but are distinct entries;
  // lookup() would return the /24 for 10.0.0.0, which is exactly why
  // control-plane code that means "this entry" must use lookup_exact().
  LpmTable table("routes", 16);
  ASSERT_TRUE(table.insert(*net::Ipv4Prefix::parse("10.0.0.0/8"), 1));
  ASSERT_TRUE(table.insert(*net::Ipv4Prefix::parse("10.0.0.0/24"), 2));
  EXPECT_EQ(table.lookup_exact(*net::Ipv4Prefix::parse("10.0.0.0/8")), 1u);
  EXPECT_EQ(table.lookup_exact(*net::Ipv4Prefix::parse("10.0.0.0/24")), 2u);
  EXPECT_FALSE(
      table.lookup_exact(*net::Ipv4Prefix::parse("10.0.0.0/16")).has_value());
  EXPECT_FALSE(
      table.lookup_exact(*net::Ipv4Prefix::parse("11.0.0.0/8")).has_value());
}

TEST(LpmTable, EraseOuterPrefixKeepsNestedInner) {
  LpmTable table("routes", 16);
  ASSERT_TRUE(table.insert(*net::Ipv4Prefix::parse("10.0.0.0/8"), 1));
  ASSERT_TRUE(table.insert(*net::Ipv4Prefix::parse("10.0.0.0/24"), 2));
  ASSERT_TRUE(table.erase(*net::Ipv4Prefix::parse("10.0.0.0/8")));
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.lookup(*net::Ipv4Address::parse("10.0.0.5")), 2u);
  EXPECT_FALSE(table.lookup(*net::Ipv4Address::parse("10.1.0.1")).has_value());
  EXPECT_EQ(table.lookup_exact(*net::Ipv4Prefix::parse("10.0.0.0/24")), 2u);
  EXPECT_FALSE(
      table.lookup_exact(*net::Ipv4Prefix::parse("10.0.0.0/8")).has_value());
}

}  // namespace
}  // namespace flexsfp::ppe
