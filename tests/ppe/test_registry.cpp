#include "ppe/registry.hpp"

#include <gtest/gtest.h>

#include "apps/nat.hpp"
#include "apps/register.hpp"

namespace flexsfp::ppe {
namespace {

TEST(AppRegistry, BuiltinAppsAllRegistered) {
  apps::register_builtin_apps();
  auto& registry = AppRegistry::instance();
  for (const char* name : {"nat", "acl", "vlan", "tunnel", "lb", "int",
                           "flowstats", "sampler", "ratelimit", "sanitizer",
                           "faultmon"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
  }
}

TEST(AppRegistry, CreateWithEmptyConfigUsesDefaults) {
  apps::register_builtin_apps();
  const auto app = AppRegistry::instance().create("nat", {});
  ASSERT_NE(app, nullptr);
  EXPECT_EQ(app->name(), "nat");
}

TEST(AppRegistry, CreateFromSerializedConfigRoundTrips) {
  apps::register_builtin_apps();
  apps::NatConfig config;
  config.direction = apps::NatDirection::destination;
  config.miss_action = apps::NatMissAction::drop;
  config.table_capacity = 1024;
  const auto bytes = config.serialize();
  const auto app = AppRegistry::instance().create("nat", bytes);
  ASSERT_NE(app, nullptr);
  auto* nat = dynamic_cast<apps::StaticNat*>(app.get());
  ASSERT_NE(nat, nullptr);
  EXPECT_EQ(nat->config().direction, apps::NatDirection::destination);
  EXPECT_EQ(nat->config().miss_action, apps::NatMissAction::drop);
  EXPECT_EQ(nat->config().table_capacity, 1024u);
}

TEST(AppRegistry, UnknownNameReturnsNull) {
  EXPECT_EQ(AppRegistry::instance().create("no-such-app", {}), nullptr);
}

TEST(AppRegistry, MalformedConfigReturnsNull) {
  apps::register_builtin_apps();
  const net::Bytes garbage{0xff, 0xff};  // direction byte 0xff is invalid
  EXPECT_EQ(AppRegistry::instance().create("nat", garbage), nullptr);
}

TEST(AppRegistry, NamesEnumerates) {
  apps::register_builtin_apps();
  const auto names = AppRegistry::instance().names();
  EXPECT_GE(names.size(), 11u);
}

TEST(AppRegistry, ReRegistrationReplaces) {
  auto& registry = AppRegistry::instance();
  registry.register_app("test-stub", [](net::BytesView) -> PpeAppPtr {
    return nullptr;
  });
  EXPECT_TRUE(registry.contains("test-stub"));
  int calls = 0;
  registry.register_app("test-stub",
                        [&calls](net::BytesView) -> PpeAppPtr {
                          ++calls;
                          return nullptr;
                        });
  (void)registry.create("test-stub", {});
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace flexsfp::ppe
