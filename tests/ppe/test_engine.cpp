#include "ppe/engine.hpp"

#include <gtest/gtest.h>

#include "net/builder.hpp"

namespace flexsfp::ppe {
namespace {

using namespace sim;  // time literals

// Configurable test app: returns a fixed verdict, optionally mirrors.
class StubApp final : public PpeApp {
 public:
  explicit StubApp(Verdict verdict, bool mirror = false,
                   std::string name = "stub")
      : verdict_(verdict), mirror_(mirror), name_(std::move(name)) {}

  std::string name() const override { return name_; }
  Verdict process(PacketContext& ctx) override {
    ++processed;
    if (mirror_) ctx.request_mirror();
    return verdict_;
  }
  hw::ResourceUsage resource_usage(const hw::DatapathConfig&) const override {
    return {};
  }
  std::uint64_t pipeline_latency_cycles() const override { return 4; }
  std::vector<CounterSnapshot> counters() const override {
    return {{"stats", 0, std::uint64_t(processed), 0}};
  }

  int processed = 0;

 private:
  Verdict verdict_;
  bool mirror_;
  std::string name_;
};

net::PacketPtr packet_of(std::size_t size, Simulation& sim) {
  auto p = net::make_packet(net::Bytes(size, 0));
  p->set_ingress_time_ps(sim.now());
  return p;
}

TEST(Engine, ServiceTimeIsBusBeats) {
  Simulation sim;
  Engine engine(sim, std::make_unique<StubApp>(Verdict::forward),
                hw::DatapathConfig{});
  std::vector<TimePs> arrivals;
  engine.set_forward_handler([&](net::PacketPtr) {
    arrivals.push_back(sim.now());
  });
  engine.handle_packet(packet_of(64, sim));
  sim.run();
  // 64 B = 8 beats x 6.4 ns = 51.2 ns occupancy + 4 cycles drain = 76.8 ns.
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], 8 * 6400 + 4 * 6400);
}

TEST(Engine, ThroughputBoundedByBusNotPipelineDepth) {
  Simulation sim;
  Engine engine(sim, std::make_unique<StubApp>(Verdict::forward),
                hw::DatapathConfig{});
  std::vector<TimePs> arrivals;
  engine.set_forward_handler([&](net::PacketPtr) {
    arrivals.push_back(sim.now());
  });
  engine.handle_packet(packet_of(64, sim));
  engine.handle_packet(packet_of(64, sim));
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Packets drain 8 beats apart (occupancy), not 12 cycles apart.
  EXPECT_EQ(arrivals[1] - arrivals[0], 8 * 6400);
}

TEST(Engine, DropVerdictCountsAndSwallows) {
  Simulation sim;
  Engine engine(sim, std::make_unique<StubApp>(Verdict::drop),
                hw::DatapathConfig{});
  int forwarded = 0;
  engine.set_forward_handler([&](net::PacketPtr) { ++forwarded; });
  engine.handle_packet(packet_of(64, sim));
  sim.run();
  EXPECT_EQ(forwarded, 0);
  EXPECT_EQ(engine.dropped_by_app(), 1u);
  EXPECT_EQ(engine.forwarded(), 0u);
}

TEST(Engine, PuntGoesToControlHandler) {
  Simulation sim;
  Engine engine(sim, std::make_unique<StubApp>(Verdict::to_control_plane),
                hw::DatapathConfig{});
  int punted = 0;
  engine.set_control_handler([&](net::PacketPtr) { ++punted; });
  engine.handle_packet(packet_of(64, sim));
  sim.run();
  EXPECT_EQ(punted, 1);
  EXPECT_EQ(engine.punted(), 1u);
}

TEST(Engine, MirrorSendsCopyToControlAndForwards) {
  Simulation sim;
  Engine engine(sim,
                std::make_unique<StubApp>(Verdict::forward, /*mirror=*/true),
                hw::DatapathConfig{});
  int forwarded = 0;
  int mirrored = 0;
  net::PacketPtr forwarded_pkt;
  net::PacketPtr mirrored_pkt;
  engine.set_forward_handler([&](net::PacketPtr p) {
    ++forwarded;
    forwarded_pkt = std::move(p);
  });
  engine.set_control_handler([&](net::PacketPtr p) {
    ++mirrored;
    mirrored_pkt = std::move(p);
  });
  engine.handle_packet(packet_of(64, sim));
  sim.run();
  EXPECT_EQ(forwarded, 1);
  EXPECT_EQ(mirrored, 1);
  EXPECT_NE(forwarded_pkt.get(), mirrored_pkt.get());  // distinct copies
}

TEST(Engine, QueueOverflowDropsAtIngress) {
  Simulation sim;
  Engine engine(sim, std::make_unique<StubApp>(Verdict::forward),
                hw::DatapathConfig{}, /*queue_capacity=*/2);
  int forwarded = 0;
  engine.set_forward_handler([&](net::PacketPtr) { ++forwarded; });
  for (int i = 0; i < 10; ++i) engine.handle_packet(packet_of(1518, sim));
  sim.run();
  EXPECT_GT(engine.drops(), 0u);
  EXPECT_EQ(forwarded + int(engine.drops()), 10);
}

TEST(Engine, ReplaceAppSwapsProcessing) {
  Simulation sim;
  auto first = std::make_unique<StubApp>(Verdict::drop);
  Engine engine(sim, std::move(first), hw::DatapathConfig{});
  int forwarded = 0;
  engine.set_forward_handler([&](net::PacketPtr) { ++forwarded; });
  engine.handle_packet(packet_of(64, sim));
  sim.run();
  EXPECT_EQ(forwarded, 0);
  engine.replace_app(std::make_unique<StubApp>(Verdict::forward));
  engine.handle_packet(packet_of(64, sim));
  sim.run();
  EXPECT_EQ(forwarded, 1);
}

TEST(Engine, RegistryAttributesVerdictsAndAppCounters) {
  Simulation sim;
  Engine engine(sim, std::make_unique<StubApp>(Verdict::forward),
                hw::DatapathConfig{});
  engine.set_forward_handler([](net::PacketPtr) {});
  engine.handle_packet(packet_of(64, sim));
  sim.run();
  const auto snap = sim.metrics().snapshot();
  EXPECT_EQ(snap.value("engine.forwarded{app=stub,stage=ppe}"), 1u);
  EXPECT_EQ(snap.value("engine.app_drops{app=stub,stage=ppe}"), 0u);
  EXPECT_EQ(snap.value("server.served.packets{stage=ppe}"), 1u);
  // The app's CounterBank is read through the registry collector, not
  // mirrored into a second tally.
  EXPECT_EQ(
      snap.value("app.counter.packets{app=stub,bank=stats,index=0,stage=ppe}"),
      1u);
}

TEST(Engine, ReplaceAppMidStreamProcessesQueuedWithNewApp) {
  Simulation sim;
  Engine engine(sim, std::make_unique<StubApp>(Verdict::drop, false, "first"),
                hw::DatapathConfig{});
  int forwarded = 0;
  engine.set_forward_handler([&](net::PacketPtr) { ++forwarded; });
  engine.handle_packet(packet_of(64, sim));
  sim.run();
  EXPECT_EQ(engine.dropped_by_app(), 1u);
  // Queue three packets, then swap mid-stream before any of them is
  // served: all three must be processed (and counted) by the new app.
  for (int i = 0; i < 3; ++i) engine.handle_packet(packet_of(64, sim));
  engine.replace_app(
      std::make_unique<StubApp>(Verdict::forward, false, "second"));
  sim.run();
  EXPECT_EQ(forwarded, 3);
  const auto snap = sim.metrics().snapshot();
  EXPECT_EQ(snap.value("engine.forwarded{app=second,stage=ppe}"), 3u);
  EXPECT_EQ(snap.value("engine.forwarded{app=first,stage=ppe}"), 0u);
  EXPECT_EQ(snap.value("engine.app_drops{app=first,stage=ppe}"), 1u);
  // Accessors sum across every app this engine has run.
  EXPECT_EQ(engine.forwarded(), 3u);
  EXPECT_EQ(engine.dropped_by_app(), 1u);
}

TEST(Engine, LatencyHistogramRecordsForwarded) {
  Simulation sim;
  Engine engine(sim, std::make_unique<StubApp>(Verdict::forward),
                hw::DatapathConfig{});
  engine.set_forward_handler([](net::PacketPtr) {});
  engine.handle_packet(packet_of(64, sim));
  sim.run();
  EXPECT_EQ(engine.latency().count(), 1u);
  EXPECT_EQ(engine.latency().max(), 12 * 6400);
}

TEST(PacketContext, ParseIsLazyAndInvalidatable) {
  net::Packet packet{net::PacketBuilder()
                         .ethernet(net::MacAddress::from_u64(2),
                                   net::MacAddress::from_u64(1))
                         .ipv4(net::Ipv4Address::from_octets(1, 1, 1, 1),
                               net::Ipv4Address::from_octets(2, 2, 2, 2),
                               net::IpProto::udp)
                         .udp(1, 2)
                         .build()};
  PacketContext ctx(packet);
  EXPECT_EQ(ctx.parsed().outer.ipv4->src,
            net::Ipv4Address::from_octets(1, 1, 1, 1));
  // Edit + invalidate -> fresh parse.
  auto parsed = ctx.parsed();
  net::rewrite_ipv4_src(ctx.bytes(), parsed,
                        net::Ipv4Address::from_octets(9, 9, 9, 9));
  ctx.invalidate_parse();
  EXPECT_EQ(ctx.parsed().outer.ipv4->src,
            net::Ipv4Address::from_octets(9, 9, 9, 9));
}

TEST(VerdictToString, Names) {
  EXPECT_EQ(to_string(Verdict::forward), "forward");
  EXPECT_EQ(to_string(Verdict::drop), "drop");
  EXPECT_EQ(to_string(Verdict::to_control_plane), "to-control-plane");
}

}  // namespace
}  // namespace flexsfp::ppe
