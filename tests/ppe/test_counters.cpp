#include "ppe/counters.hpp"

#include <gtest/gtest.h>

namespace flexsfp::ppe {
namespace {

TEST(CounterBank, AddAccumulatesPacketsAndBytes) {
  CounterBank bank("stats", 4);
  bank.add(0, 100);
  bank.add(0, 200);
  bank.add(3, 64);
  EXPECT_EQ(bank.packets(0), 2u);
  EXPECT_EQ(bank.bytes(0), 300u);
  EXPECT_EQ(bank.packets(3), 1u);
  EXPECT_EQ(bank.packets(1), 0u);
}

TEST(CounterBank, OutOfRangeAddThrows) {
  CounterBank bank("stats", 2);
  EXPECT_THROW(bank.add(2, 1), std::out_of_range);
}

TEST(CounterBank, OutOfRangeReadIsZero) {
  CounterBank bank("stats", 2);
  EXPECT_EQ(bank.packets(99), 0u);
  EXPECT_EQ(bank.bytes(99), 0u);
}

TEST(CounterBank, ClearResetsEverything) {
  CounterBank bank("stats", 2);
  bank.add(0, 10);
  bank.add(1, 20);
  bank.clear();
  EXPECT_EQ(bank.packets(0), 0u);
  EXPECT_EQ(bank.bytes(1), 0u);
}

TEST(CounterBank, ResourceUsageHasUsram) {
  CounterBank bank("stats", 64);
  EXPECT_GT(bank.resource_usage().usram_blocks, 0u);
}

TEST(CounterBank, AccumulateFoldsPrecountedContributions) {
  CounterBank bank("stats", 2);
  bank.accumulate(1, 10, 640);
  bank.add(1, 64);
  EXPECT_EQ(bank.packets(1), 11u);
  EXPECT_EQ(bank.bytes(1), 704u);
  EXPECT_THROW(bank.accumulate(2, 1, 1), std::out_of_range);
}

TEST(CounterBank, MergeAddsElementwise) {
  CounterBank total("stats", 3);
  CounterBank shard("stats", 3);
  total.add(0, 100);
  shard.add(0, 50);
  shard.accumulate(2, 4, 256);
  total.merge(shard);
  EXPECT_EQ(total.packets(0), 2u);
  EXPECT_EQ(total.bytes(0), 150u);
  EXPECT_EQ(total.packets(2), 4u);
  EXPECT_EQ(total.bytes(2), 256u);
  EXPECT_EQ(shard.packets(0), 1u);  // the source is untouched
}

TEST(CounterBank, MergeRejectsShapeMismatch) {
  CounterBank a("stats", 2);
  CounterBank renamed("other", 2);
  CounterBank resized("stats", 3);
  EXPECT_THROW(a.merge(renamed), std::invalid_argument);
  EXPECT_THROW(a.merge(resized), std::invalid_argument);
}

TEST(CounterSnapshots, MergeAccumulatesByBankAndIndex) {
  std::vector<CounterSnapshot> total = {{"nat_stats", 0, 5, 500}};
  const std::vector<CounterSnapshot> shard = {{"nat_stats", 0, 2, 200},
                                              {"nat_stats", 1, 1, 64}};
  merge_counter_snapshots(total, shard);
  ASSERT_EQ(total.size(), 2u);
  EXPECT_EQ(total[0].packets, 7u);
  EXPECT_EQ(total[0].bytes, 700u);
  EXPECT_EQ(total[1].packets, 1u);  // new entry appended in addend order

  // Merging shard snapshots in a fixed order is deterministic.
  std::vector<CounterSnapshot> again = {{"nat_stats", 0, 5, 500}};
  merge_counter_snapshots(again, shard);
  EXPECT_EQ(total, again);
}

}  // namespace
}  // namespace flexsfp::ppe
