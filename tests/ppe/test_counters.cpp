#include "ppe/counters.hpp"

#include <gtest/gtest.h>

namespace flexsfp::ppe {
namespace {

TEST(CounterBank, AddAccumulatesPacketsAndBytes) {
  CounterBank bank("stats", 4);
  bank.add(0, 100);
  bank.add(0, 200);
  bank.add(3, 64);
  EXPECT_EQ(bank.packets(0), 2u);
  EXPECT_EQ(bank.bytes(0), 300u);
  EXPECT_EQ(bank.packets(3), 1u);
  EXPECT_EQ(bank.packets(1), 0u);
}

TEST(CounterBank, OutOfRangeAddThrows) {
  CounterBank bank("stats", 2);
  EXPECT_THROW(bank.add(2, 1), std::out_of_range);
}

TEST(CounterBank, OutOfRangeReadIsZero) {
  CounterBank bank("stats", 2);
  EXPECT_EQ(bank.packets(99), 0u);
  EXPECT_EQ(bank.bytes(99), 0u);
}

TEST(CounterBank, ClearResetsEverything) {
  CounterBank bank("stats", 2);
  bank.add(0, 10);
  bank.add(1, 20);
  bank.clear();
  EXPECT_EQ(bank.packets(0), 0u);
  EXPECT_EQ(bank.bytes(1), 0u);
}

TEST(CounterBank, ResourceUsageHasUsram) {
  CounterBank bank("stats", 64);
  EXPECT_GT(bank.resource_usage().usram_blocks, 0u);
}

}  // namespace
}  // namespace flexsfp::ppe
