// Ready-made experiment harnesses.
//
// ModuleTestbed: traffic sources on both sides of a single FlexSFP module,
// sinks capturing throughput/latency/loss — the setup behind the line-rate
// NAT test (§5.1) and the Figure 1 architecture comparison.
//
// run_power_measurement(): the §5 power experiment — a Thunderbolt NIC's
// draw alone, with a standard SFP under line-rate stress, and with a
// FlexSFP running an application.
#pragma once

#include <memory>
#include <optional>

#include "apps/nat.hpp"
#include "fabric/traffic_gen.hpp"
#include "sfp/flexsfp.hpp"
#include "sfp/standard_sfp.hpp"
#include "sim/fault_injector.hpp"

namespace flexsfp::fabric {

struct TestbedConfig {
  sfp::FlexSfpConfig module{};
  std::optional<TrafficSpec> edge_traffic;     // injected at the edge port
  std::optional<TrafficSpec> optical_traffic;  // injected at the optical port
  /// Fault process applied to traffic arriving at each port (chaos
  /// experiments). When target_drop_prob is set the injector targets
  /// management frames. Seeds are re-derived per shard by ParallelTestbed.
  std::optional<sim::FaultSpec> edge_faults;
  std::optional<sim::FaultSpec> optical_faults;
  /// Per-packet flight-recorder setup for the testbed's simulation.
  obs::FlightRecorderConfig flight{};

  TestbedConfig() {
    module.boot_at_start = false;  // usable at t = 0 for experiments
  }
};

struct DirectionResult {
  std::uint64_t sent_packets = 0;
  std::uint64_t received_packets = 0;
  double offered_gbps = 0;
  double delivered_gbps = 0;
  double loss_rate = 0;
  double latency_p50_ns = 0;
  double latency_p99_ns = 0;
  double latency_max_ns = 0;
};

struct TestbedResult {
  DirectionResult edge_to_optical;
  DirectionResult optical_to_edge;
  std::uint64_t ppe_queue_drops = 0;
  std::uint64_t app_drops = 0;
  double ppe_utilization = 0;
  hw::PowerBreakdown power{};
  sim::TimePs duration = 0;
  /// Injected-fault accounting per port (zeroed when no injector was
  /// configured) — the chaos experiments' loss ledger.
  sim::FaultTally edge_fault_tally{};
  sim::FaultTally optical_fault_tally{};
  /// Every registry series of the run (components + app counters).
  obs::MetricSnapshot metrics;
};

/// One module, a source and sink per direction. Owns the simulation.
class ModuleTestbed {
 public:
  ModuleTestbed(TestbedConfig config, ppe::PpeAppPtr app);

  [[nodiscard]] sim::Simulation& sim() { return sim_; }
  [[nodiscard]] sfp::FlexSfpModule& module() { return *module_; }
  [[nodiscard]] Sink& edge_sink() { return *edge_sink_; }
  [[nodiscard]] Sink& optical_sink() { return *optical_sink_; }
  /// Configured generators; nullptr when the direction carries no traffic.
  [[nodiscard]] const TrafficGen* edge_gen() const { return edge_gen_.get(); }
  [[nodiscard]] const TrafficGen* optical_gen() const {
    return optical_gen_.get();
  }
  /// Configured fault injectors; nullptr when the port has none.
  [[nodiscard]] sim::FaultInjector* edge_faults() {
    return edge_faults_.get();
  }
  [[nodiscard]] sim::FaultInjector* optical_faults() {
    return optical_faults_.get();
  }

  /// Start the configured sources, run to quiescence, collect results.
  [[nodiscard]] TestbedResult run();

 private:
  TestbedConfig config_;
  sim::Simulation sim_;
  std::unique_ptr<sfp::FlexSfpModule> module_;
  std::unique_ptr<Sink> edge_sink_;     // receives optical -> edge traffic
  std::unique_ptr<Sink> optical_sink_;  // receives edge -> optical traffic
  std::unique_ptr<sim::LambdaHandler> edge_in_;
  std::unique_ptr<sim::LambdaHandler> optical_in_;
  std::unique_ptr<sim::FaultInjector> edge_faults_;
  std::unique_ptr<sim::FaultInjector> optical_faults_;
  std::unique_ptr<TrafficGen> edge_gen_;
  std::unique_ptr<TrafficGen> optical_gen_;
};

/// The §5 power experiment's three operating points, watts.
struct PowerMeasurement {
  double nic_only_w = 0;
  double nic_plus_sfp_w = 0;
  double nic_plus_flexsfp_w = 0;

  [[nodiscard]] double sfp_delta_w() const {
    return nic_plus_sfp_w - nic_only_w;
  }
  [[nodiscard]] double flexsfp_delta_w() const {
    return nic_plus_flexsfp_w - nic_only_w;
  }
};

/// Reproduce the paper's measurement: line-rate RX+TX stress through a
/// standard SFP, then through a FlexSFP running `app` (defaults to the NAT
/// case study on the One-Way-Filter shell).
[[nodiscard]] PowerMeasurement run_power_measurement(
    ppe::PpeAppPtr app = std::make_unique<apps::StaticNat>(),
    sim::TimePs duration = 10'000'000'000);  // 10 ms of stress

}  // namespace flexsfp::fabric
