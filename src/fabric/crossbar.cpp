#include "fabric/crossbar.hpp"

#include <stdexcept>
#include <utility>

namespace flexsfp::fabric {

Crossbar::Crossbar(sim::Simulation& sim, CrossbarConfig config, RouteFn route)
    : sim_(sim),
      config_(config),
      route_(std::move(route)),
      name_(sim.metrics().unique_name("xbar")),
      ser_(config.port_rate) {
  if (config_.ports == 0) {
    throw std::invalid_argument("Crossbar needs at least one port");
  }
  if (config_.crosspoint_capacity == 0) {
    throw std::invalid_argument("Crossbar crosspoints need capacity >= 1");
  }
  if (!route_) {
    throw std::invalid_argument("Crossbar needs a route function");
  }

  flight_stage_ = sim_.flight().register_stage(name_);
  enqueued_id_ =
      sim_.metrics().counter("fabric.xbar.enqueued", {{"xbar", name_}});
  unrouted_id_ =
      sim_.metrics().counter("fabric.xbar.unrouted", {{"xbar", name_}});

  const std::size_t n = config_.ports;
  xpoints_.reserve(n * n);
  for (std::size_t in = 0; in < n; ++in) {
    for (std::size_t out = 0; out < n; ++out) {
      const obs::Labels labels = {{"in", std::to_string(in)},
                                  {"out", std::to_string(out)},
                                  {"xbar", name_}};
      xpoints_.push_back(Crosspoint{
          sim::BoundedQueue(config_.crosspoint_capacity),
          sim_.metrics().counter("fabric.xbar.crosspoint_drops", labels),
          sim_.metrics().gauge("fabric.xbar.crosspoint_hwm", labels)});
    }
  }

  outputs_.resize(n);
  inputs_.reserve(n);
  for (std::size_t port = 0; port < n; ++port) {
    const obs::Labels labels = {{"out", std::to_string(port)},
                                {"xbar", name_}};
    outputs_[port].forwarded_packets_id =
        sim_.metrics().counter("fabric.xbar.forwarded.packets", labels);
    outputs_[port].forwarded_bytes_id =
        sim_.metrics().counter("fabric.xbar.forwarded.bytes", labels);
    inputs_.push_back(std::make_unique<sim::LambdaHandler>(
        [this, port](net::PacketPtr packet) {
          ingress(port, std::move(packet));
        }));
  }
}

void Crossbar::set_output_handler(
    std::size_t out, std::function<void(net::PacketPtr)> handler) {
  outputs_.at(out).deliver = std::move(handler);
}

void Crossbar::ingress(std::size_t in, net::PacketPtr packet) {
  const net::PacketId id = packet->id();
  const int routed = route_(*packet);
  if (routed < 0 || static_cast<std::size_t>(routed) >= config_.ports) {
    sim_.metrics().add(unrouted_id_);
    if (sim_.flight().sampled(id)) {
      sim_.flight().record(id, flight_stage_, obs::HopKind::queue_drop,
                           sim_.now(), 0, std::uint64_t(in));
    }
    return;  // counted as unrouted, packet recycles to its pool
  }
  const auto out = static_cast<std::size_t>(routed);
  Crosspoint& xp = at(in, out);
  if (sim_.flight().sampled(id)) {
    sim_.flight().record(id, flight_stage_, obs::HopKind::ingress, sim_.now(),
                         static_cast<std::uint32_t>(xp.queue.size()),
                         (std::uint64_t(in) << 32) | std::uint64_t(out));
  }
  if (!xp.queue.push(std::move(packet))) {
    sim_.metrics().add(xp.drops_id);
    if (sim_.flight().sampled(id)) {
      sim_.flight().record(id, flight_stage_, obs::HopKind::queue_drop,
                           sim_.now(),
                           static_cast<std::uint32_t>(xp.queue.size()),
                           (std::uint64_t(in) << 32) | std::uint64_t(out));
    }
    return;
  }
  sim_.metrics().add(enqueued_id_);
  sim_.metrics().set_max(xp.hwm_id, xp.queue.size());
  try_grant(out);
}

void Crossbar::try_grant(std::size_t out) {
  Output& output = outputs_[out];
  if (output.busy) return;
  const std::size_t n = config_.ports;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t in = (output.rr_next + k) % n;
    Crosspoint& xp = at(in, out);
    if (xp.queue.empty()) continue;

    net::PacketPtr packet = xp.queue.pop();
    output.rr_next = (in + 1) % n;
    output.busy = true;
    const sim::TimePs serialization = ser_(packet->wire_size());
    if (sim_.flight().sampled(packet->id())) {
      sim_.flight().record(packet->id(), flight_stage_, obs::HopKind::serve,
                           sim_.now(),
                           static_cast<std::uint32_t>(xp.queue.size()),
                           std::uint64_t(serialization));
    }
    sim_.schedule_in(
        serialization, [this, out, packet = std::move(packet)]() mutable {
          Output& o = outputs_[out];
          o.busy = false;
          sim_.metrics().add(o.forwarded_packets_id);
          sim_.metrics().add(o.forwarded_bytes_id, packet->size());
          if (sim_.flight().sampled(packet->id())) {
            sim_.flight().record(packet->id(), flight_stage_,
                                 obs::HopKind::egress, sim_.now(), 0,
                                 std::uint64_t(out));
          }
          if (o.deliver) o.deliver(std::move(packet));
          try_grant(out);
        });
    return;
  }
}

std::uint64_t Crossbar::crosspoint_drops() const {
  std::uint64_t total = 0;
  for (const Crosspoint& xp : xpoints_) {
    total += sim_.metrics().value(xp.drops_id);
  }
  return total;
}

std::uint64_t Crossbar::forwarded_packets(std::size_t out) const {
  return sim_.metrics().value(outputs_.at(out).forwarded_packets_id);
}

std::uint64_t Crossbar::forwarded_bytes(std::size_t out) const {
  return sim_.metrics().value(outputs_.at(out).forwarded_bytes_id);
}

std::size_t Crossbar::crosspoint_depth(std::size_t in, std::size_t out) const {
  return at(in, out).queue.size();
}

std::uint64_t Crossbar::crosspoint_high_watermark(std::size_t in,
                                                  std::size_t out) const {
  return sim_.metrics().value(at(in, out).hwm_id);
}

}  // namespace flexsfp::fabric
