#include "fabric/traffic_gen.hpp"

#include <algorithm>
#include <array>

#include "net/headers.hpp"

namespace flexsfp::fabric {

namespace {
// IMIX: 7 x 64 B, 4 x 594 B, 1 x 1518 B.
constexpr std::array<std::size_t, 12> imix_pattern = {
    64, 64, 64, 594, 64, 594, 64, 1518, 64, 594, 64, 594};
}  // namespace

TrafficGen::TrafficGen(sim::Simulation& sim, TrafficSpec spec,
                       sim::PacketHandler& output)
    : sim_(sim),
      spec_(spec),
      output_(output),
      rng_(spec.seed),
      flow_dist_(std::max<std::size_t>(spec.flow_count, 1), spec.zipf_skew),
      wire_time_(spec.rate) {
  const std::string name = sim_.metrics().unique_name("gen");
  meter_.bind(sim_.metrics(), "gen.emitted", {{"gen", name}});
  flight_stage_ = sim_.flight().register_stage(name);
  prebuild_templates();
}

void TrafficGen::prebuild_templates() {
  switch (spec_.sizes) {
    case SizeDistribution::fixed:
      template_sizes_ = {spec_.fixed_size};
      break;
    case SizeDistribution::imix:
      template_sizes_ = {64, 594, 1518};  // the distinct IMIX frame sizes
      break;
    case SizeDistribution::uniform:
      // A template per (flow, size) pair — far too many distinct frames.
      return;
  }
  std::size_t per_rank_bytes = 0;
  for (const std::size_t size : template_sizes_) {
    per_rank_bytes += std::max<std::size_t>(size, 60);
  }
  const std::size_t budget_ranks =
      per_rank_bytes > 0 ? template_budget_bytes / per_rank_bytes : 0;
  template_ranks_ = std::min(
      {std::max<std::size_t>(spec_.flow_count, 1), budget_ranks,
       kMaxTemplateRanks});
  templates_.resize(template_ranks_ * template_sizes_.size());
  for (std::size_t rank = 1; rank <= template_ranks_; ++rank) {
    const net::FiveTuple tuple = flow_tuple(rank);
    for (std::size_t si = 0; si < template_sizes_.size(); ++si) {
      build_frame(template_sizes_[si], tuple,
                  templates_[(rank - 1) * template_sizes_.size() + si]);
    }
  }
}

net::FiveTuple TrafficGen::flow_tuple(std::size_t rank) const {
  // Derive a stable pseudo-random 5-tuple from the flow rank.
  const std::uint64_t h = net::fnv1a_u64(rank * 2654435761ull + spec_.seed);
  net::FiveTuple tuple;
  tuple.src = net::Ipv4Address{
      spec_.src_base.value() + static_cast<std::uint32_t>(rank & 0xffff)};
  tuple.dst = net::Ipv4Address{
      spec_.dst_base.value() +
      static_cast<std::uint32_t>((h >> 16) & 0xff)};
  tuple.src_port = static_cast<std::uint16_t>(1024 + (h & 0x7fff));
  tuple.dst_port = static_cast<std::uint16_t>((h >> 32) % 2 == 0 ? 80 : 443);
  const bool tcp =
      (double((h >> 40) & 0xff) / 255.0) < spec_.tcp_fraction;
  tuple.protocol = static_cast<std::uint8_t>(tcp ? net::IpProto::tcp
                                                 : net::IpProto::udp);
  return tuple;
}

std::size_t TrafficGen::next_size() {
  switch (spec_.sizes) {
    case SizeDistribution::fixed:
      return spec_.fixed_size;
    case SizeDistribution::imix:
      return imix_pattern[imix_cursor_++ % imix_pattern.size()];
    case SizeDistribution::uniform:
      return static_cast<std::size_t>(
          rng_.uniform(spec_.min_size, spec_.max_size));
  }
  return spec_.fixed_size;
}

void TrafficGen::build_frame(std::size_t frame_size,
                             const net::FiveTuple& tuple, net::Bytes& out) {
  builder_.reset();
  builder_.ethernet(spec_.dst_mac, spec_.src_mac);
  const auto proto = static_cast<net::IpProto>(tuple.protocol);
  builder_.ipv4(tuple.src, tuple.dst, proto);
  if (proto == net::IpProto::tcp) {
    builder_.tcp(tuple.src_port, tuple.dst_port);
  } else {
    builder_.udp(tuple.src_port, tuple.dst_port);
  }
  // Fill to the chosen frame size (headers included).
  const std::size_t header_bytes =
      net::EthernetHeader::size() + net::Ipv4Header::min_size() +
      (proto == net::IpProto::tcp ? net::TcpHeader::min_size()
                                  : net::UdpHeader::size());
  builder_.payload_size(frame_size > header_bytes ? frame_size - header_bytes
                                                  : 0);
  builder_.min_frame_size(std::max<std::size_t>(frame_size, 60));
  builder_.build_into(out);
}

const net::Bytes* TrafficGen::frame_template(std::size_t rank,
                                             std::size_t frame_size) const {
  if (rank == 0 || rank > template_ranks_) return nullptr;  // incl. uniform
  for (std::size_t si = 0; si < template_sizes_.size(); ++si) {
    if (template_sizes_[si] == frame_size) {
      return &templates_[(rank - 1) * template_sizes_.size() + si];
    }
  }
  return nullptr;
}

sim::TimePs TrafficGen::gap_after(std::size_t frame_bytes) {
  const sim::TimePs wire_time = wire_time_(frame_bytes + 24);
  if (spec_.arrivals == ArrivalProcess::cbr) return wire_time;
  return static_cast<sim::TimePs>(rng_.exponential(double(wire_time)));
}

void TrafficGen::start() {
  sim_.schedule_at(spec_.start, [this]() { emit(); });
}

void TrafficGen::emit() {
  if (sim_.now() >= spec_.start + spec_.duration) return;

  const std::size_t frame_size = next_size();
  const std::size_t rank = flow_dist_.sample(rng_);

  net::PacketPtr packet = sim_.packet_pool().make();
  if (const net::Bytes* tmpl = frame_template(rank, frame_size)) {
    packet->data() = *tmpl;  // copy-assign reuses the pooled capacity
  } else {
    // Uncovered (uniform sizes or rank beyond the budget horizon): derive
    // the 5-tuple and assemble the frame the slow way.
    build_frame(frame_size, flow_tuple(rank), packet->data());
  }
  packet->set_id(sim_.next_packet_id());
  packet->set_created_time_ps(sim_.now());
  meter_.record(packet->size());
  if (sim_.flight().sampled(packet->id())) {
    sim_.flight().record(packet->id(), flight_stage_, obs::HopKind::emit,
                         sim_.now(), 0, packet->size());
  }
  output_.handle_packet(std::move(packet));

  sim_.schedule_in(gap_after(frame_size), [this]() { emit(); });
}

Sink::Sink(sim::Simulation& sim, std::size_t retain_last)
    : sim_(sim), retain_(retain_last) {
  const std::string name = sim_.metrics().unique_name("sink");
  meter_.bind(sim_.metrics(), "sink.received", {{"sink", name}});
  flight_stage_ = sim_.flight().register_stage(name);
}

void Sink::handle_packet(net::PacketPtr packet) {
  const sim::TimePs latency = sim_.now() - packet->created_time_ps();
  meter_.record(packet->size());
  latency_.record(latency);
  if (sim_.flight().sampled(packet->id())) {
    sim_.flight().record(packet->id(), flight_stage_, obs::HopKind::deliver,
                         sim_.now(), 0, std::uint64_t(latency));
  }
  if (retained_.size() < retain_) retained_.push_back(std::move(packet));
}

void Sink::reset() {
  meter_.reset();
  latency_.reset();
  retained_.clear();
}

}  // namespace flexsfp::fabric
