#include "fabric/fabric_testbed.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "apps/nat.hpp"
#include "sim/parallel.hpp"

namespace flexsfp::fabric {

namespace detail {

ModuleRig::ModuleRig(sim::Simulation& sim, const Topology& topo,
                     std::size_t module_index, ppe::PpeAppPtr app,
                     std::function<void(net::PacketPtr)> to_fabric)
    : index(module_index) {
  sfp::FlexSfpConfig module_config = topo.module_prototype;
  module_config.boot_at_start = false;
  module = std::make_unique<sfp::FlexSfpModule>(sim, std::move(app),
                                                module_config);
  edge_sink = std::make_unique<Sink>(sim);
  module->set_egress_handler(sfp::FlexSfpModule::edge_port,
                             [this](net::PacketPtr packet) {
                               edge_sink->handle_packet(std::move(packet));
                             });

  // Uplink toward the fabric: serialization only — the engine adds the
  // propagation delay when it moves the packet to the crossbar.
  uplink_capture = std::make_unique<sim::LambdaHandler>(std::move(to_fabric));
  uplink = std::make_unique<sim::Link>(sim, topo.link_rate,
                                       /*propagation_delay=*/0,
                                       *uplink_capture, "fabric_uplink");
  if (topo.link_faults) {
    link_faults = std::make_unique<sim::FaultInjector>(
        sim, topo.link_fault_for(index), *uplink, "fault.fabric_link");
  }
  sim::PacketHandler* uplink_entry =
      link_faults ? static_cast<sim::PacketHandler*>(link_faults.get())
                  : uplink.get();
  module->set_egress_handler(sfp::FlexSfpModule::optical_port,
                             [uplink_entry](net::PacketPtr packet) {
                               uplink_entry->handle_packet(std::move(packet));
                             });

  edge_in = std::make_unique<sim::LambdaHandler>([this](net::PacketPtr p) {
    module->inject(sfp::FlexSfpModule::edge_port, std::move(p));
  });
  gen = std::make_unique<TrafficGen>(sim, topo.traffic_for(index), *edge_in);
}

}  // namespace detail

namespace {

AppFactory default_factory(AppFactory factory) {
  if (factory) return factory;
  return [] { return std::make_unique<apps::StaticNat>(); };
}

FabricModuleResult module_result(const detail::ModuleRig& rig,
                                 sim::TimePs duration) {
  FabricModuleResult out;
  out.sent_packets = rig.gen->emitted().packets();
  out.received_packets = rig.edge_sink->received().packets();
  out.offered_gbps = rig.gen->emitted().bits_per_second(duration) * 1e-9;
  out.delivered_gbps =
      rig.edge_sink->received().bits_per_second(duration) * 1e-9;
  out.latency_p50_ns = sim::to_nanos(rig.edge_sink->latency().percentile(50));
  out.latency_p99_ns = sim::to_nanos(rig.edge_sink->latency().percentile(99));
  out.latency_max_ns = sim::to_nanos(rig.edge_sink->latency().max());
  return out;
}

}  // namespace

FabricLedger FabricLedger::from_snapshot(const obs::MetricSnapshot& snapshot) {
  FabricLedger ledger;
  ledger.sent = snapshot.sum("gen.emitted.packets");
  ledger.delivered = snapshot.sum("sink.received.packets");
  ledger.duplicated = snapshot.sum("fault.duplicated");
  ledger.fault_dropped = snapshot.sum("fault.dropped") +
                         snapshot.sum("fault.target_dropped") +
                         snapshot.sum("fault.flap_dropped");
  ledger.queue_drops = snapshot.sum("server.queue_drops");
  ledger.dark_drops = snapshot.sum("module.dark_drops");
  ledger.app_drops = snapshot.sum("engine.app_drops");
  ledger.control_punts = snapshot.sum("shell.control_punts");
  ledger.crosspoint_drops = snapshot.sum("fabric.xbar.crosspoint_drops");
  ledger.unrouted = snapshot.sum("fabric.xbar.unrouted");
  return ledger;
}

// --- sequential engine -------------------------------------------------------

FabricTestbed::FabricTestbed(Topology topology, AppFactory app_factory)
    : topo_(std::move(topology)) {
  topo_.validate();
  AppFactory factory = default_factory(std::move(app_factory));
  sim_.flight().configure(topo_.flight);

  CrossbarConfig xbar_config;
  xbar_config.ports = topo_.modules;
  xbar_config.crosspoint_capacity = topo_.crosspoint_capacity;
  xbar_config.port_rate = topo_.link_rate;
  xbar_ = std::make_unique<Crossbar>(
      sim_, xbar_config,
      [this](const net::Packet& packet) { return topo_.route(packet); });

  rigs_.reserve(topo_.modules);
  for (std::size_t i = 0; i < topo_.modules; ++i) {
    rigs_.push_back(std::make_unique<detail::ModuleRig>(
        sim_, topo_, i, factory(), [this, i](net::PacketPtr p) {
          sim_.schedule_in(topo_.link_delay_ps,
                           [this, i, p = std::move(p)]() mutable {
                             xbar_->ingress(i, std::move(p));
                           });
        }));
  }
  for (std::size_t j = 0; j < topo_.modules; ++j) {
    xbar_->set_output_handler(j, [this, j](net::PacketPtr p) {
      // Pin the far module's egress to its edge side: downlink frames must
      // exit toward the host even if a shell's opposite-side rule would
      // disagree (and the hint counter proves the fabric path was taken).
      sfp::set_egress_hint(*p, sfp::FlexSfpModule::edge_port);
      sim_.schedule_in(topo_.link_delay_ps,
                       [this, j, p = std::move(p)]() mutable {
                         rigs_[j]->module->inject(
                             sfp::FlexSfpModule::optical_port, std::move(p));
                       });
    });
  }
}

FabricRunResult FabricTestbed::run() {
  const auto start = std::chrono::steady_clock::now();
  for (auto& rig : rigs_) rig->gen->start();
  sim_.run();

  FabricRunResult out;
  out.duration =
      topo_.traffic_prototype.start + topo_.traffic_prototype.duration;
  for (const auto& rig : rigs_) {
    out.modules.push_back(module_result(*rig, out.duration));
  }
  out.metrics = sim_.metrics().snapshot();
  out.ledger = FabricLedger::from_snapshot(out.metrics);
  out.events = sim_.executed_events();
  out.workers_used = 1;
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

// --- conservatively synchronized engine --------------------------------------

namespace {

/// One packet crossing worlds: captured on the source world's thread as a
/// value frame, applied at the barrier. `arrival` already includes the link
/// propagation delay, which is what makes it ≥ every future window start.
struct Boundary {
  sim::TimePs arrival = 0;
  std::size_t dest_world = 0;
  int port = 0;  // module port, or crossbar input index
  net::Packet frame;
};

struct World {
  sim::Simulation sim;
  std::vector<Boundary> outbox;  // only this world's thread appends
  std::unique_ptr<detail::ModuleRig> rig;  // module worlds
  std::unique_ptr<Crossbar> xbar;          // the crossbar world
};

}  // namespace

FabricParallelTestbed::FabricParallelTestbed(Topology topology,
                                             AppFactory app_factory)
    : topo_(std::move(topology)),
      app_factory_(default_factory(std::move(app_factory))) {
  topo_.validate();
}

FabricRunResult FabricParallelTestbed::run(unsigned workers) {
  const std::size_t modules = topo_.modules;
  const std::size_t xbar_world = modules;
  const sim::TimePs delay = topo_.link_delay_ps;

  std::vector<std::unique_ptr<World>> worlds;
  worlds.reserve(modules + 1);
  for (std::size_t i = 0; i <= modules; ++i) {
    worlds.push_back(std::make_unique<World>());
    worlds.back()->sim.flight().configure(topo_.flight);
  }

  for (std::size_t i = 0; i < modules; ++i) {
    World& world = *worlds[i];
    world.rig = std::make_unique<detail::ModuleRig>(
        world.sim, topo_, i, app_factory_(),
        [&world, xbar_world, i, delay](net::PacketPtr p) {
          world.outbox.push_back(
              Boundary{sim::saturating_add(world.sim.now(), delay), xbar_world,
                       static_cast<int>(i), net::detach_frame(*p)});
        });
  }
  {
    World& world = *worlds[xbar_world];
    CrossbarConfig xbar_config;
    xbar_config.ports = modules;
    xbar_config.crosspoint_capacity = topo_.crosspoint_capacity;
    xbar_config.port_rate = topo_.link_rate;
    world.xbar = std::make_unique<Crossbar>(
        world.sim, xbar_config,
        [this](const net::Packet& packet) { return topo_.route(packet); });
    for (std::size_t j = 0; j < modules; ++j) {
      world.xbar->set_output_handler(j, [&world, j, delay](net::PacketPtr p) {
        sfp::set_egress_hint(*p, sfp::FlexSfpModule::edge_port);
        world.outbox.push_back(
            Boundary{sim::saturating_add(world.sim.now(), delay), j,
                     sfp::FlexSfpModule::optical_port, net::detach_frame(*p)});
      });
    }
  }

  for (std::size_t i = 0; i < modules; ++i) worlds[i]->rig->gen->start();

  // The conservative window bound: every world may run strictly past the
  // globally earliest pending event plus the link lookahead, because no
  // packet captured before the bound can arrive anywhere earlier than it.
  const auto compute_horizon = [&worlds, delay]() -> sim::TimePs {
    sim::TimePs min_next = sim::time_horizon;
    for (auto& world : worlds) {
      min_next = std::min(min_next, world->sim.next_event_time());
    }
    if (min_next == sim::time_horizon) return sim::time_horizon;
    return sim::saturating_add(min_next, delay);
  };

  const auto start = std::chrono::steady_clock::now();
  std::uint64_t rounds = 0;
  sim::TimePs horizon = compute_horizon();
  if (horizon != sim::time_horizon) {
    sim::run_lockstep_rounds(
        worlds.size(), workers,
        [&worlds, &horizon](std::size_t i) {
          (void)worlds[i]->sim.run_before(horizon);
        },
        [&]() -> bool {
          ++rounds;
          // Apply boundary batches in (arrival, source world, capture order):
          // outboxes are appended in capture order and drained in world
          // order, so a stable sort on arrival realizes exactly that key —
          // the tie-break that keeps every worker count bit-identical.
          for (std::size_t dest = 0; dest < worlds.size(); ++dest) {
            std::vector<Boundary> inbound;
            for (auto& src : worlds) {
              for (auto& boundary : src->outbox) {
                if (boundary.dest_world == dest) {
                  inbound.push_back(std::move(boundary));
                }
              }
            }
            std::stable_sort(inbound.begin(), inbound.end(),
                             [](const Boundary& a, const Boundary& b) {
                               return a.arrival < b.arrival;
                             });
            World& dw = *worlds[dest];
            for (Boundary& boundary : inbound) {
              if (boundary.arrival < dw.sim.now()) {
                throw std::logic_error(
                    "conservative-sync violation: boundary packet arrives "
                    "before the window start");
              }
              // Workers are parked at the barrier, so touching the
              // destination pool here is single-threaded.
              net::PacketPtr packet =
                  dw.sim.packet_pool().make_from(std::move(boundary.frame));
              if (dest == xbar_world) {
                dw.sim.schedule_at(
                    boundary.arrival,
                    [xbar = dw.xbar.get(), in = boundary.port,
                     packet = std::move(packet)]() mutable {
                      xbar->ingress(static_cast<std::size_t>(in),
                                    std::move(packet));
                    });
              } else {
                dw.sim.schedule_at(
                    boundary.arrival,
                    [module = dw.rig->module.get(), port = boundary.port,
                     packet = std::move(packet)]() mutable {
                      module->inject(port, std::move(packet));
                    });
              }
            }
          }
          for (auto& world : worlds) world->outbox.clear();
          horizon = compute_horizon();
          return horizon != sim::time_horizon;
        });
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  FabricRunResult out;
  out.duration =
      topo_.traffic_prototype.start + topo_.traffic_prototype.duration;
  for (std::size_t i = 0; i < modules; ++i) {
    out.modules.push_back(module_result(*worlds[i]->rig, out.duration));
    out.events += worlds[i]->sim.executed_events();
  }
  out.events += worlds[xbar_world]->sim.executed_events();
  // Merge per-world snapshots in world order with a disambiguating label —
  // the same discipline (and the same resulting object for workers = 1) as
  // every other worker count, which is the property the tests assert.
  for (std::size_t i = 0; i < modules; ++i) {
    out.metrics.merge(worlds[i]->sim.metrics().snapshot().with_label(
        "shard", std::to_string(i)));
  }
  out.metrics.merge(
      worlds[xbar_world]->sim.metrics().snapshot().with_label("shard", "xbar"));
  out.ledger = FabricLedger::from_snapshot(out.metrics);
  out.rounds = rounds;
  out.workers_used = sim::resolve_threads(worlds.size(), workers);
  out.wall_seconds = wall_seconds;
  return out;
}

}  // namespace flexsfp::fabric
