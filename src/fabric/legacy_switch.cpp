#include "fabric/legacy_switch.hpp"

#include "net/headers.hpp"

namespace flexsfp::fabric {

SwitchOutputPort::SwitchOutputPort(sim::Simulation& sim, sim::DataRate rate,
                                   std::size_t queue_capacity)
    : sim::QueuedServer(sim, queue_capacity, "switch-port"), rate_(rate) {}

sim::TimePs SwitchOutputPort::service_time(const net::Packet& packet) {
  return rate_(packet.wire_size());
}

void SwitchOutputPort::finish(net::PacketPtr packet) {
  if (output_) output_(std::move(packet));
}

LegacySwitch::LegacySwitch(sim::Simulation& sim, std::size_t port_count,
                           sim::DataRate port_rate,
                           sim::TimePs forwarding_latency_ps)
    : sim_(sim),
      port_rate_(port_rate),
      forwarding_latency_ps_(forwarding_latency_ps),
      cages_(port_count),
      mac_table_("mac_table", 4096, 48, 16) {
  for (std::size_t port = 0; port < port_count; ++port) {
    cages_[port].output = std::make_unique<SwitchOutputPort>(sim, port_rate);
    cages_[port].output->set_output([this, port](net::PacketPtr packet) {
      asic_tx(port, std::move(packet));
    });
  }
}

void LegacySwitch::plug_flexsfp(std::size_t port,
                                std::shared_ptr<sfp::FlexSfpModule> module) {
  Cage& cage = cages_.at(port);
  cage.flexsfp = std::move(module);
  cage.standard.reset();
  // Module edge egress -> switching ASIC; module optical egress -> fiber.
  cage.flexsfp->set_egress_handler(
      sfp::FlexSfpModule::edge_port, [this, port](net::PacketPtr packet) {
        asic_rx(port, std::move(packet));
      });
  cage.flexsfp->set_egress_handler(
      sfp::FlexSfpModule::optical_port, [this, port](net::PacketPtr packet) {
        module_fiber_out(port, std::move(packet));
      });
}

void LegacySwitch::plug_standard(std::size_t port,
                                 std::shared_ptr<sfp::StandardSfp> module) {
  Cage& cage = cages_.at(port);
  cage.standard = std::move(module);
  cage.flexsfp.reset();
  cage.standard->set_egress_handler(
      sfp::StandardSfp::edge_port, [this, port](net::PacketPtr packet) {
        asic_rx(port, std::move(packet));
      });
  cage.standard->set_egress_handler(
      sfp::StandardSfp::optical_port, [this, port](net::PacketPtr packet) {
        module_fiber_out(port, std::move(packet));
      });
}

void LegacySwitch::fiber_rx(std::size_t port, net::PacketPtr packet) {
  Cage& cage = cages_.at(port);
  if (cage.flexsfp) {
    cage.flexsfp->inject(sfp::FlexSfpModule::optical_port, std::move(packet));
  } else if (cage.standard) {
    cage.standard->inject(sfp::StandardSfp::optical_port, std::move(packet));
  }
  // Empty cage: no transceiver, no link — frame lost.
}

void LegacySwitch::set_fiber_tx(std::size_t port,
                                std::function<void(net::PacketPtr)> handler) {
  cages_.at(port).fiber_tx = std::move(handler);
}

void LegacySwitch::module_fiber_out(std::size_t port, net::PacketPtr packet) {
  auto& handler = cages_.at(port).fiber_tx;
  if (handler) handler(std::move(packet));
}

void LegacySwitch::asic_rx(std::size_t ingress_port, net::PacketPtr packet) {
  const auto eth = net::EthernetHeader::parse(packet->data(), 0);
  if (!eth) return;

  // Learn the source.
  if (!eth->src.is_multicast()) {
    mac_table_.insert(eth->src.to_u64(), ingress_port);
  }

  sim_.schedule_in(forwarding_latency_ps_, [this, ingress_port, eth = *eth,
                                            packet =
                                                std::move(packet)]() mutable {
    const auto known_port = eth.dst.is_multicast() || eth.dst.is_broadcast()
                                ? std::nullopt
                                : mac_table_.lookup(eth.dst.to_u64());
    if (known_port && *known_port != ingress_port) {
      ++forwarded_;
      cages_[static_cast<std::size_t>(*known_port)].output->handle_packet(
          std::move(packet));
      return;
    }
    if (known_port && *known_port == ingress_port) {
      return;  // destination lives behind the ingress port: filter
    }
    // Flood to every other occupied port.
    ++flooded_;
    for (std::size_t port = 0; port < cages_.size(); ++port) {
      if (port == ingress_port || !cages_[port].occupied()) continue;
      cages_[port].output->handle_packet(sim_.packet_pool().clone(*packet));
    }
  });
}

void LegacySwitch::asic_tx(std::size_t egress_port, net::PacketPtr packet) {
  Cage& cage = cages_[egress_port];
  if (cage.flexsfp) {
    cage.flexsfp->inject(sfp::FlexSfpModule::edge_port, std::move(packet));
  } else if (cage.standard) {
    cage.standard->inject(sfp::StandardSfp::edge_port, std::move(packet));
  }
}

}  // namespace flexsfp::fabric
