// A fixed-function L2 aggregation switch with SFP cages — the legacy device
// §2.1 retrofits: it learns MACs and floods unknowns, nothing more. All
// intelligence comes from whatever module is plugged into each cage.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "ppe/tables.hpp"
#include "sfp/flexsfp.hpp"
#include "sfp/standard_sfp.hpp"
#include "sim/link.hpp"

namespace flexsfp::fabric {

/// Store-and-forward output port at line rate.
class SwitchOutputPort final : public sim::QueuedServer {
 public:
  SwitchOutputPort(sim::Simulation& sim, sim::DataRate rate,
                   std::size_t queue_capacity = 128);
  void set_output(std::function<void(net::PacketPtr)> output) {
    output_ = std::move(output);
  }

 protected:
  [[nodiscard]] sim::TimePs service_time(const net::Packet& packet) override;
  void finish(net::PacketPtr packet) override;

 private:
  sim::SerializationTimer rate_;
  std::function<void(net::PacketPtr)> output_;
};

class LegacySwitch {
 public:
  LegacySwitch(sim::Simulation& sim, std::size_t port_count,
               sim::DataRate port_rate = sim::line_rate_10g,
               sim::TimePs forwarding_latency_ps = 1'000'000);  // 1 us

  [[nodiscard]] std::size_t port_count() const { return cages_.size(); }

  /// Plug a FlexSFP into cage `port`. The switch talks to the module's
  /// edge side; the fiber plant talks to its optical side.
  void plug_flexsfp(std::size_t port, std::shared_ptr<sfp::FlexSfpModule> module);
  /// Plug a plain transceiver.
  void plug_standard(std::size_t port, std::shared_ptr<sfp::StandardSfp> module);

  /// Frame arriving from the fiber plant at `port` (enters the module's
  /// optical side; an empty cage drops it).
  void fiber_rx(std::size_t port, net::PacketPtr packet);
  /// Where frames leaving toward the fiber at `port` go.
  void set_fiber_tx(std::size_t port,
                    std::function<void(net::PacketPtr)> handler);

  [[nodiscard]] const ppe::ExactMatchTable& mac_table() const {
    return mac_table_;
  }
  [[nodiscard]] std::uint64_t flooded() const { return flooded_; }
  [[nodiscard]] std::uint64_t forwarded() const { return forwarded_; }

 private:
  struct Cage {
    std::shared_ptr<sfp::FlexSfpModule> flexsfp;
    std::shared_ptr<sfp::StandardSfp> standard;
    std::function<void(net::PacketPtr)> fiber_tx;
    std::unique_ptr<SwitchOutputPort> output;  // ASIC -> module edge
    [[nodiscard]] bool occupied() const {
      return flexsfp != nullptr || standard != nullptr;
    }
  };

  /// Frame surfacing from a module's edge side into the switching ASIC.
  void asic_rx(std::size_t ingress_port, net::PacketPtr packet);
  void asic_tx(std::size_t egress_port, net::PacketPtr packet);
  void module_fiber_out(std::size_t port, net::PacketPtr packet);

  sim::Simulation& sim_;
  sim::DataRate port_rate_;
  sim::TimePs forwarding_latency_ps_;
  std::vector<Cage> cages_;
  ppe::ExactMatchTable mac_table_;  // mac -> port
  std::uint64_t flooded_ = 0;
  std::uint64_t forwarded_ = 0;
};

}  // namespace flexsfp::fabric
