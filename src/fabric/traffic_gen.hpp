// Synthetic workload generation: constant-bit-rate and Poisson arrivals,
// fixed/IMIX/uniform packet sizes, Zipf-skewed flow popularity — the
// standard substitutes for the production traces a hardware testbed would
// replay.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "net/builder.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"

namespace flexsfp::fabric {

enum class SizeDistribution : std::uint8_t {
  fixed,    // every packet `fixed_size`
  imix,     // the classic 7:4:1 mix of 64/594/1518-byte frames
  uniform,  // uniform in [min_size, max_size]
};

enum class ArrivalProcess : std::uint8_t {
  cbr,      // back-to-back pacing at the offered rate
  poisson,  // exponential inter-arrival at the offered rate
};

struct TrafficSpec {
  sim::DataRate rate = sim::DataRate::gbps(10);
  ArrivalProcess arrivals = ArrivalProcess::cbr;
  SizeDistribution sizes = SizeDistribution::fixed;
  std::size_t fixed_size = 64;   // frame size before FCS, >= 60
  std::size_t min_size = 64;
  std::size_t max_size = 1518;

  /// Flow population: 5-tuples are drawn from `flow_count` flows with
  /// Zipf(`zipf_skew`) popularity (skew 0 = uniform).
  std::size_t flow_count = 1024;
  double zipf_skew = 1.0;

  net::Ipv4Address src_base = net::Ipv4Address::from_octets(10, 0, 0, 0);
  net::Ipv4Address dst_base = net::Ipv4Address::from_octets(192, 168, 0, 0);
  net::MacAddress src_mac = net::MacAddress::from_u64(0x020000000001);
  net::MacAddress dst_mac = net::MacAddress::from_u64(0x020000000002);
  /// Fraction of flows that are TCP (the rest UDP).
  double tcp_fraction = 0.5;

  std::uint64_t seed = 1;
  sim::TimePs start = 0;
  sim::TimePs duration = 1'000'000'000;  // 1 ms
};

/// Emits frames into `output` per the spec. Deterministic for a fixed seed.
class TrafficGen {
 public:
  TrafficGen(sim::Simulation& sim, TrafficSpec spec,
             sim::PacketHandler& output);

  /// Schedule the stream; call once before running the simulation.
  void start();

  [[nodiscard]] const sim::TrafficMeter& emitted() const { return meter_; }
  [[nodiscard]] const TrafficSpec& spec() const { return spec_; }

  /// The 5-tuple of flow `rank` (1-based), for assertions in tests.
  [[nodiscard]] net::FiveTuple flow_tuple(std::size_t rank) const;

 private:
  void emit();
  [[nodiscard]] std::size_t next_size();
  [[nodiscard]] sim::TimePs gap_after(std::size_t frame_bytes);
  /// Assemble the frame for (`frame_size`, `tuple`) into `out`.
  void build_frame(std::size_t frame_size, const net::FiveTuple& tuple,
                   net::Bytes& out);
  /// Build the template table eagerly (constructor time — setup, not the
  /// hot path): fixed/IMIX streams draw from a known, tiny set of frame
  /// sizes, so every (rank, size) pair up to the budgeted rank horizon gets
  /// its frame assembled once and steady-state emits become one memcpy.
  void prebuild_templates();
  /// Prebuilt frame bytes for (`rank`, `frame_size`), or nullptr when the
  /// pair is outside the table (uniform sizes, rank beyond the budget
  /// horizon). Frame bytes are a pure function of rank and size, so
  /// replaying the template is bit-exact.
  [[nodiscard]] const net::Bytes* frame_template(std::size_t rank,
                                                 std::size_t frame_size) const;

  sim::Simulation& sim_;
  TrafficSpec spec_;
  sim::PacketHandler& output_;
  sim::Rng rng_;
  sim::ZipfDistribution flow_dist_;
  sim::SerializationTimer wire_time_{};
  sim::TrafficMeter meter_;
  /// Reused across emits so steady-state frame assembly into pooled
  /// packets allocates nothing.
  net::PacketBuilder builder_;
  /// The pktgen template trick, direct-indexed: templates_[(rank-1) *
  /// sizes + size_index] holds the prebuilt frame, so an emit is one
  /// bounds check + one tiny size scan + one memcpy — no hash map, no
  /// header serialization, no checksum math on the hot path. Built eagerly
  /// for ALL ranks up to the budget horizon (construction is setup, not the
  /// hot path), so Zipf-tail flows stop paying per-emit frame assembly.
  std::vector<net::Bytes> templates_;
  std::vector<std::size_t> template_sizes_;  // distinct frame sizes, <= 3
  std::size_t template_ranks_ = 0;           // ranks covered (1-based cap)
  static constexpr std::size_t template_budget_bytes = 8u << 20;
  /// Rank horizon independent of the byte budget: bounds constructor-time
  /// prebuild work for huge flow populations.
  static constexpr std::size_t kMaxTemplateRanks = 4096;
  std::uint16_t flight_stage_ = 0;
  std::size_t imix_cursor_ = 0;
};

/// Terminal endpoint: counts frames, measures end-to-end latency from each
/// packet's created_time, optionally retains the last frames for
/// inspection.
class Sink final : public sim::PacketHandler {
 public:
  explicit Sink(sim::Simulation& sim, std::size_t retain_last = 0);

  void handle_packet(net::PacketPtr packet) override;

  [[nodiscard]] const sim::TrafficMeter& received() const { return meter_; }
  [[nodiscard]] const sim::LatencyHistogram& latency() const {
    return latency_;
  }
  [[nodiscard]] const std::vector<net::PacketPtr>& retained() const {
    return retained_;
  }
  void reset();

 private:
  sim::Simulation& sim_;
  std::size_t retain_;
  sim::TrafficMeter meter_;
  sim::LatencyHistogram latency_;
  std::uint16_t flight_stage_ = 0;
  std::vector<net::PacketPtr> retained_;
};

}  // namespace flexsfp::fabric
