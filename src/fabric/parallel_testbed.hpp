// Flow-sharded parallel testbed execution.
//
// The paper's scaling argument (§4–5) is that FlexSFP modules are
// independent: one module per port, each processing its own slice of
// traffic with no shared state. This runner exploits exactly that — traffic
// is partitioned by module/port (the shard key), every shard gets its own
// Simulation, FlexSfpModule, TrafficGen and Rng stream, shards run on
// worker threads, and per-shard sim::Stats / ppe counters are merged at the
// join barrier *in shard order*. Results are therefore bit-identical to the
// sequential run (workers = 1), which tests use as the oracle.
#pragma once

#include <functional>
#include <vector>

#include "fabric/testbed.hpp"
#include "ppe/counters.hpp"
#include "sim/stats.hpp"

namespace flexsfp::fabric {

/// Builds the app a shard's module runs. Called once per shard, on the
/// caller thread (before fan-out), so it need not be thread-safe — but each
/// call must return an identically configured instance.
using AppFactory = std::function<ppe::PpeAppPtr()>;

/// Static shard -> worker assignment (round-robin). Scheduling is actually
/// dynamic (work stealing); the plan exists for capacity reasoning and
/// display.
struct ShardPlan {
  std::size_t shards = 0;
  unsigned workers = 0;
  std::vector<std::vector<std::size_t>> assignment;  // [worker] -> shard ids

  [[nodiscard]] std::size_t widest_worker() const;
};

[[nodiscard]] ShardPlan plan_shards(std::size_t shards,
                                    unsigned requested_workers);

struct ParallelTestbedConfig {
  /// One FlexSFP module (= one switch port) per shard.
  std::size_t shards = 8;
  /// Worker threads: 1 = sequential oracle, 0 = one per hardware thread.
  unsigned workers = 0;
  /// Every per-shard Rng stream derives from this via splitmix hashing —
  /// never seed + shard_id (adjacent mt19937_64 seeds correlate).
  std::uint64_t base_seed = 1;
  /// Cloned per shard. Traffic seeds, flow-space addresses and MACs are
  /// re-derived per shard so each module sees its own traffic slice.
  TestbedConfig prototype{};
  /// Event-dispatch batch width applied to every shard Simulation; 0 keeps
  /// the process default (FLEXSFP_BATCH_WIDTH or 16). Batching drains only
  /// the same-timestamp frontier, so any width yields bit-identical merged
  /// results — the batch-differential tests sweep this knob to prove it.
  std::size_t batch_width = 0;
};

/// Everything one shard measured.
struct ShardOutcome {
  std::size_t shard = 0;
  std::uint64_t edge_seed = 0;     // derived stream seed actually used
  std::uint64_t optical_seed = 0;  // 0 when the direction is absent
  TestbedResult result{};
  sim::Stats stats{};
  std::vector<ppe::CounterSnapshot> app_counters;
  /// The shard's registry snapshot re-labeled {shard=<id>}; shards build
  /// identical topologies, so the label is what keeps series distinct.
  obs::MetricSnapshot metrics;
  /// The shard's sampled stage-hop events. Sampling keys off packet ids
  /// only, so this is bit-identical for any worker count.
  std::vector<obs::HopEvent> flight;
};

struct ParallelRunResult {
  std::vector<ShardOutcome> shards;
  /// Merged in shard order after the barrier — identical for any worker
  /// count, including the sequential oracle.
  sim::Stats combined{};
  std::vector<ppe::CounterSnapshot> combined_counters;
  /// Key-wise merge of every shard's labeled snapshot, in shard order.
  obs::MetricSnapshot combined_metrics;
  unsigned workers_used = 1;
  double wall_seconds = 0;
};

class ParallelTestbed {
 public:
  ParallelTestbed(ParallelTestbedConfig config, AppFactory app_factory);

  /// Run all shards with the configured worker count and merge.
  [[nodiscard]] ParallelRunResult run();
  /// The oracle: same shards, one thread, same merge path.
  [[nodiscard]] ParallelRunResult run_sequential();

  /// The traffic spec shard `shard` runs for a direction: stream-derived
  /// seed plus a disjoint flow-space slice. `direction` disambiguates the
  /// edge (0) and optical (1) generators of one module.
  [[nodiscard]] static TrafficSpec shard_spec(const TrafficSpec& prototype,
                                              std::uint64_t base_seed,
                                              std::size_t shard,
                                              unsigned direction);

  /// The fault spec shard `shard` runs for a direction. Fault streams are
  /// salted so they never collide with the traffic streams derived from the
  /// same base seed — adding an injector must not perturb the traffic a
  /// shard generates.
  [[nodiscard]] static sim::FaultSpec shard_fault_spec(
      const sim::FaultSpec& prototype, std::uint64_t base_seed,
      std::size_t shard, unsigned direction);

 private:
  [[nodiscard]] ParallelRunResult run_with(unsigned workers);
  [[nodiscard]] ShardOutcome run_shard(std::size_t shard,
                                       ppe::PpeAppPtr app) const;

  ParallelTestbedConfig config_;
  AppFactory app_factory_;
};

}  // namespace flexsfp::fabric
