// Crosspoint-queued N×N crossbar — the switch in the middle of a
// cable → switch → cable topology.
//
// The FlexCross observation (PAPERS.md) is that a crosspoint-queued
// crossbar is the right interconnect for flexible per-port packet
// processing at line rate: every (input, output) pair owns its own small
// buffer, so a congested output never head-of-line blocks traffic crossing
// from the same input to a different output, and arbitration is a local
// per-output decision instead of a global schedule. This models exactly
// that: per-crosspoint bounded VOQ-style FIFOs (drops counted per
// crosspoint), one serializing transmitter per output at port rate, and
// round-robin grant rotation among the output's non-empty crosspoints so no
// input can starve another.
//
// Every tally is an obs:: registry series under fabric.xbar.*, labeled
// {xbar=<name>} plus {in=i,out=j} for per-crosspoint series — the feed for
// `flexsfp-stats --fabric` and the fabric benches' ledgers.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/link.hpp"
#include "sim/simulation.hpp"

namespace flexsfp::fabric {

struct CrossbarConfig {
  /// Port count (inputs == outputs == modules hanging off the fabric).
  std::size_t ports = 2;
  /// Packets one crosspoint buffer holds; arrivals beyond this are dropped
  /// and counted against that crosspoint.
  std::size_t crosspoint_capacity = 64;
  /// Serialization rate of each output transmitter.
  sim::DataRate port_rate = sim::line_rate_10g;
};

class Crossbar {
 public:
  /// Maps a packet to its output port. Return < 0 (or >= ports) to declare
  /// the packet unroutable; it is dropped and counted, never black-holed.
  using RouteFn = std::function<int(const net::Packet&)>;

  Crossbar(sim::Simulation& sim, CrossbarConfig config, RouteFn route);

  /// A packet arriving on input `in` (the far end of module `in`'s cable).
  void ingress(std::size_t in, net::PacketPtr packet);
  /// PacketHandler facade for input `in`, so a sim::Link or FaultInjector
  /// can terminate directly on the fabric.
  [[nodiscard]] sim::PacketHandler& input(std::size_t in) {
    return *inputs_.at(in);
  }
  /// Where packets leaving output `out` go (after serialization at port
  /// rate — downstream glue adds propagation delay only, never a second
  /// serialization).
  void set_output_handler(std::size_t out,
                          std::function<void(net::PacketPtr)> handler);

  [[nodiscard]] std::size_t ports() const { return config_.ports; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const CrossbarConfig& config() const { return config_; }

  // --- stats (registry-backed convenience reads) ----------------------------
  /// Packets accepted into some crosspoint buffer.
  [[nodiscard]] std::uint64_t enqueued() const {
    return sim_.metrics().value(enqueued_id_);
  }
  /// Packets dropped because their crosspoint buffer was full (all
  /// crosspoints; per-crosspoint series carry the {in,out} split).
  [[nodiscard]] std::uint64_t crosspoint_drops() const;
  /// Packets the route function refused.
  [[nodiscard]] std::uint64_t unrouted() const {
    return sim_.metrics().value(unrouted_id_);
  }
  /// Packets fully serialized out of output `out`.
  [[nodiscard]] std::uint64_t forwarded_packets(std::size_t out) const;
  [[nodiscard]] std::uint64_t forwarded_bytes(std::size_t out) const;
  /// Current depth / high watermark of crosspoint (in, out), for tests.
  [[nodiscard]] std::size_t crosspoint_depth(std::size_t in,
                                             std::size_t out) const;
  [[nodiscard]] std::uint64_t crosspoint_high_watermark(std::size_t in,
                                                        std::size_t out) const;

 private:
  struct Crosspoint {
    sim::BoundedQueue queue;
    obs::MetricId drops_id;
    obs::MetricId hwm_id;
  };
  struct Output {
    bool busy = false;
    /// First input polled at the next grant — advanced past the winner, so
    /// persistently backlogged inputs share the output round-robin.
    std::size_t rr_next = 0;
    std::function<void(net::PacketPtr)> deliver;
    obs::MetricId forwarded_packets_id;
    obs::MetricId forwarded_bytes_id;
  };

  [[nodiscard]] Crosspoint& at(std::size_t in, std::size_t out) {
    return xpoints_[in * config_.ports + out];
  }
  [[nodiscard]] const Crosspoint& at(std::size_t in, std::size_t out) const {
    return xpoints_[in * config_.ports + out];
  }
  /// Grant the output to its next non-empty crosspoint, if idle.
  void try_grant(std::size_t out);

  sim::Simulation& sim_;
  CrossbarConfig config_;
  RouteFn route_;
  std::string name_;
  sim::SerializationTimer ser_;
  std::vector<Crosspoint> xpoints_;  // [in * ports + out]
  std::vector<Output> outputs_;
  std::vector<std::unique_ptr<sim::LambdaHandler>> inputs_;
  obs::MetricId enqueued_id_;
  obs::MetricId unrouted_id_;
  std::uint16_t flight_stage_ = 0;
};

}  // namespace flexsfp::fabric
