#include "fabric/topology.hpp"

#include <stdexcept>

#include "fabric/parallel_testbed.hpp"
#include "net/headers.hpp"

namespace flexsfp::fabric {

void Topology::validate() const {
  if (modules < 2) {
    throw std::invalid_argument("Topology needs at least two modules");
  }
  if (!targets.empty()) {
    if (targets.size() != modules) {
      throw std::invalid_argument(
          "Topology targets must be empty (ring) or one per module");
    }
    for (std::size_t t : targets) {
      if (t >= modules) {
        throw std::invalid_argument("Topology target out of range");
      }
    }
  }
  if (link_delay_ps <= 0) {
    throw std::invalid_argument(
        "Topology link delay must be positive (it is the sync lookahead)");
  }
  if (crosspoint_capacity == 0) {
    throw std::invalid_argument("Topology crosspoint capacity must be >= 1");
  }
}

std::size_t Topology::target_of(std::size_t module) const {
  if (targets.empty()) return (module + 1) % modules;
  return targets.at(module);
}

net::Ipv4Address Topology::slice_base(std::size_t module) const {
  return net::Ipv4Address{traffic_prototype.dst_base.value() +
                          (static_cast<std::uint32_t>(module) << 16)};
}

TrafficSpec Topology::traffic_for(std::size_t module) const {
  // Same derivation discipline as the flow-sharded testbed: stream-hashed
  // seed, disjoint source-flow slice per module...
  TrafficSpec spec = ParallelTestbed::shard_spec(traffic_prototype, base_seed,
                                                 module, /*direction=*/0);
  // ...then point the destinations at the target module's /16 slice, which
  // is exactly what the crossbar routes on.
  spec.dst_base = slice_base(target_of(module));
  return spec;
}

sim::FaultSpec Topology::link_fault_for(std::size_t module) const {
  return ParallelTestbed::shard_fault_spec(*link_faults,
                                           base_seed ^ kFabricFaultSalt,
                                           module, /*direction=*/0);
}

int Topology::route(const net::Packet& packet) const {
  const auto eth = net::EthernetHeader::parse(packet.data(), 0);
  if (!eth) return -1;
  const auto ip =
      net::Ipv4Header::parse(packet.data(), net::EthernetHeader::size());
  if (!ip) return -1;
  const std::uint32_t dst = ip->dst.value();
  const std::uint32_t base = traffic_prototype.dst_base.value();
  if (dst < base) return -1;
  const std::uint32_t slice = (dst - base) >> 16;
  if (slice >= modules) return -1;
  return static_cast<int>(slice);
}

}  // namespace flexsfp::fabric
