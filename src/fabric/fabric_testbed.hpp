// Multi-module experiment harnesses over a Topology: N FlexSFP modules,
// one crosspoint-queued Crossbar, cable → switch → cable per flow.
//
// Two engines consume the same Topology:
//
//   * FabricTestbed — one Simulation owns everything; modules and the
//     crossbar exchange packets through ordinary scheduled events. The
//     single-clock reference for ledger cross-checks.
//   * FabricParallelTestbed — one Simulation ("world") per module plus one
//     for the crossbar, advanced in conservative-sync windows: the link
//     propagation delay is the lookahead, so every world can safely run to
//     (min next event across worlds) + delay, and the packets captured at
//     its uplink during the window are exchanged at the barrier with
//     timestamps that are provably ≥ the new window start. Cross-world
//     handoff detaches a value frame on the source world's thread and
//     re-pools it on the destination (see net::detach_frame); batches are
//     applied in (arrival, source world, capture seq) order, so results are
//     bit-identical for any worker count. DESIGN.md §11 has the proof
//     sketch.
//
// Either way the run ends with a loss ledger: every packet the generators
// (plus fault duplication) injected is delivered or sits in a named drop
// counter — the fabric never black-holes, even across shard boundaries.
#pragma once

#include <memory>
#include <vector>

#include "fabric/crossbar.hpp"
#include "fabric/parallel_testbed.hpp"
#include "fabric/topology.hpp"
#include "sim/link.hpp"

namespace flexsfp::fabric {

namespace detail {

/// One module with its edge-side endpoints and its uplink toward the
/// fabric, buildable inside any Simulation (the engines differ only in what
/// `to_fabric` does with a packet that finished the uplink). The packet
/// chain: edge gen → module (edge port) → PPE → optical egress →
/// [link fault injector] → uplink serialization at link rate → to_fabric.
/// Propagation delay is NOT applied here — the engine owns it, because for
/// the parallel engine it is exactly the piece that crosses worlds.
struct ModuleRig {
  ModuleRig(sim::Simulation& sim, const Topology& topo, std::size_t index,
            ppe::PpeAppPtr app, std::function<void(net::PacketPtr)> to_fabric);

  std::size_t index = 0;
  std::unique_ptr<sfp::FlexSfpModule> module;
  std::unique_ptr<Sink> edge_sink;
  std::unique_ptr<sim::LambdaHandler> edge_in;
  std::unique_ptr<sim::LambdaHandler> uplink_capture;
  std::unique_ptr<sim::Link> uplink;
  std::unique_ptr<sim::FaultInjector> link_faults;  // null when unfaulted
  std::unique_ptr<TrafficGen> gen;
};

}  // namespace detail

/// What one module's endpoints measured. Sent counts the module's own edge
/// generator; received/latency count what arrived at the module's edge sink
/// — traffic from whichever module targets it, so sent_i == received_i only
/// when the target map is a permutation and nothing dropped.
struct FabricModuleResult {
  std::uint64_t sent_packets = 0;
  std::uint64_t received_packets = 0;
  double offered_gbps = 0;
  double delivered_gbps = 0;
  double latency_p50_ns = 0;
  double latency_p99_ns = 0;
  double latency_max_ns = 0;
};

/// The zero-black-hole equation, read back from the merged registry
/// snapshot: everything injected equals everything delivered plus every
/// named drop counter along the path (fault injectors, PPE/arbiter queues,
/// dark modules, app verdicts, control punts, crossbar crosspoints and
/// unroutable frames).
struct FabricLedger {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t duplicated = 0;        // fault-injected extra packets
  std::uint64_t fault_dropped = 0;     // random + targeted + flap loss
  std::uint64_t queue_drops = 0;       // PPE ingress + egress arbiter FIFOs
  std::uint64_t dark_drops = 0;
  std::uint64_t app_drops = 0;
  std::uint64_t control_punts = 0;
  std::uint64_t crosspoint_drops = 0;
  std::uint64_t unrouted = 0;

  [[nodiscard]] std::uint64_t injected() const { return sent + duplicated; }
  [[nodiscard]] std::uint64_t accounted() const {
    return delivered + fault_dropped + queue_drops + dark_drops + app_drops +
           control_punts + crosspoint_drops + unrouted;
  }
  [[nodiscard]] bool balanced() const { return injected() == accounted(); }

  /// Read the equation's terms out of a (merged) snapshot.
  [[nodiscard]] static FabricLedger from_snapshot(
      const obs::MetricSnapshot& snapshot);
};

struct FabricRunResult {
  std::vector<FabricModuleResult> modules;
  /// Single-sim engine: the simulation's snapshot. Parallel engine: every
  /// world's snapshot labeled {shard=<module>} / {shard=xbar}, merged in
  /// world order — the object the bit-identical property tests compare.
  obs::MetricSnapshot metrics;
  FabricLedger ledger;
  sim::TimePs duration = 0;
  std::uint64_t events = 0;
  /// Conservative-sync windows executed (0 for the single-sim engine).
  std::uint64_t rounds = 0;
  unsigned workers_used = 1;
  double wall_seconds = 0;
};

/// The sequential reference engine: everything in one Simulation.
class FabricTestbed {
 public:
  /// `app_factory` defaults to the NAT case study (forward-on-miss).
  explicit FabricTestbed(Topology topology, AppFactory app_factory = {});

  [[nodiscard]] sim::Simulation& sim() { return sim_; }
  [[nodiscard]] Crossbar& crossbar() { return *xbar_; }
  [[nodiscard]] sfp::FlexSfpModule& module(std::size_t i) {
    return *rigs_.at(i)->module;
  }
  [[nodiscard]] detail::ModuleRig& rig(std::size_t i) { return *rigs_.at(i); }
  [[nodiscard]] const Topology& topology() const { return topo_; }

  /// Start every generator, run to quiescence, collect results.
  [[nodiscard]] FabricRunResult run();

 private:
  Topology topo_;
  sim::Simulation sim_;
  std::unique_ptr<Crossbar> xbar_;
  std::vector<std::unique_ptr<detail::ModuleRig>> rigs_;
};

/// The conservatively synchronized engine: one world per module plus a
/// crossbar world, lockstep windows, deterministic for any worker count.
class FabricParallelTestbed {
 public:
  explicit FabricParallelTestbed(Topology topology, AppFactory app_factory = {});

  /// Build fresh worlds and run with up to `workers` threads (0 = one per
  /// hardware thread, 1 = sequential oracle). Callable repeatedly; every
  /// call replays the identical experiment.
  [[nodiscard]] FabricRunResult run(unsigned workers);
  [[nodiscard]] FabricRunResult run_sequential() { return run(1); }

  [[nodiscard]] const Topology& topology() const { return topo_; }

 private:
  Topology topo_;
  AppFactory app_factory_;
};

}  // namespace flexsfp::fabric
