// The two tiers the paper positions FlexSFP against (§1/§2's "acceleration
// gap"): the host-CPU slow path (latency, jitter, contention) and the
// SmartNIC fast path (performance at a cost/power premium). Both are
// modeled as queued servers with the corresponding cost/power envelopes so
// the "cheap path" comparison can be run head-to-head.
#pragma once

#include <functional>
#include <string>

#include "hw/cost_model.hpp"
#include "sim/link.hpp"
#include "sim/random.hpp"

namespace flexsfp::fabric {

struct CpuPathConfig {
  /// Sustainable software forwarding rate (single core, XDP-less stack).
  double packets_per_second = 1'200'000;
  /// PCIe + interrupt + wakeup base latency and its jitter.
  sim::TimePs base_latency_ps = 30'000'000;   // 30 us
  sim::TimePs jitter_sigma_ps = 15'000'000;   // heavy scheduler noise
  /// Occasional scheduling stall (the "reintroduced jitter" of §2).
  double stall_probability = 0.001;
  sim::TimePs stall_ps = 2'000'000'000;  // 2 ms
  /// Power attributed to the core share doing packet work.
  double watts = 20.0;
  std::uint64_t seed = 7;
};

/// Host-CPU software path: every packet crosses PCIe, waits for a core and
/// pays scheduling jitter.
class CpuPath final : public sim::QueuedServer {
 public:
  CpuPath(sim::Simulation& sim, CpuPathConfig config = {},
          std::size_t queue_capacity = 1024);

  void set_output(std::function<void(net::PacketPtr)> output) {
    output_ = std::move(output);
  }
  [[nodiscard]] double watts() const { return config_.watts; }
  [[nodiscard]] static hw::UsdRange cost_usd() { return {0, 0}; }  // sunk

 protected:
  [[nodiscard]] sim::TimePs service_time(const net::Packet& packet) override;
  void finish(net::PacketPtr packet) override;

 private:
  CpuPathConfig config_;
  sim::Rng rng_;
  std::function<void(net::PacketPtr)> output_;
};

struct SmartNicConfig {
  /// Pipeline rate: SmartNICs forward small packets at tens of Mpps.
  double packets_per_second = 30'000'000;
  sim::TimePs base_latency_ps = 4'000'000;  // 4 us through the NIC complex
  sim::TimePs jitter_sigma_ps = 300'000;    // tight, hardware-paced
  double watts = 25.0;                      // §2: 25-75 W per port
  hw::UsdRange cost{800, 2000};
  std::uint64_t seed = 11;
};

/// SmartNIC/DPU offload path.
class SmartNic final : public sim::QueuedServer {
 public:
  SmartNic(sim::Simulation& sim, SmartNicConfig config = {},
           std::size_t queue_capacity = 1024);

  void set_output(std::function<void(net::PacketPtr)> output) {
    output_ = std::move(output);
  }
  [[nodiscard]] double watts() const { return config_.watts; }
  [[nodiscard]] hw::UsdRange cost_usd() const { return config_.cost; }

 protected:
  [[nodiscard]] sim::TimePs service_time(const net::Packet& packet) override;
  void finish(net::PacketPtr packet) override;

 private:
  SmartNicConfig config_;
  sim::Rng rng_;
  std::function<void(net::PacketPtr)> output_;
};

}  // namespace flexsfp::fabric
