// Fleet orchestrator: the central controller the paper's §4.1 envisions
// ("essential for centralized orchestration across a fleet of FlexSFPs").
// Speaks the management protocol to many modules, with sequence tracking,
// timeouts and retransmission — and drives complete bitstream deployments.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "analysis/verifier.hpp"
#include "hw/bitstream.hpp"
#include "sfp/mgmt_protocol.hpp"
#include "sim/simulation.hpp"

namespace flexsfp::fabric {

struct OrchestratorConfig {
  hw::AuthKey key;
  net::MacAddress mac = net::MacAddress::from_u64(0x020000000911);
  sim::TimePs timeout_ps = 10'000'000'000;  // 10 ms per request
  int max_retries = 3;
  /// Statically verify every bitstream before pushing it to a module;
  /// designs with error-severity diagnostics are refused without touching
  /// the wire. Opt out for bring-up experiments only.
  bool verify_before_deploy = true;
  /// Target device/datapath the verification runs against.
  analysis::VerifierOptions verifier{};
};

class FleetOrchestrator {
 public:
  /// Completion carries the response, or nullopt after retries exhausted.
  using Completion = std::function<void(std::optional<sfp::MgmtResponse>)>;

  FleetOrchestrator(sim::Simulation& sim, OrchestratorConfig config);

  /// Register a module: its MAC plus a transmit function that puts a frame
  /// on the wire toward it (directly or through a switch fabric).
  void add_module(const std::string& name, net::MacAddress module_mac,
                  std::function<void(net::PacketPtr)> transmit);
  [[nodiscard]] std::size_t fleet_size() const { return modules_.size(); }

  /// Feed frames arriving at the orchestrator NIC; management responses are
  /// consumed (true), everything else ignored (false).
  bool deliver(const net::Packet& packet);

  // --- operations ------------------------------------------------------------
  void ping(const std::string& module, std::uint64_t value,
            Completion done);
  void table_insert(const std::string& module, const std::string& table,
                    std::uint64_t key, std::uint64_t value, Completion done);
  void table_erase(const std::string& module, const std::string& table,
                   std::uint64_t key, Completion done);
  void table_lookup(const std::string& module, const std::string& table,
                    std::uint64_t key, Completion done);
  void counter_read(const std::string& module, std::uint64_t index,
                    Completion done);
  /// Full chunked deployment: begin -> every chunk -> commit, sequentially,
  /// each leg covered by the retry machinery. Completion fires with the
  /// commit response (or nullopt on any unrecoverable leg). When
  /// `verify_before_deploy` is set (the default), the design is statically
  /// verified first and an error-severity report fails the deployment
  /// synchronously — the infeasible bitstream never reaches the wire.
  void deploy_bitstream(const std::string& module,
                        const hw::Bitstream& bitstream, Completion done,
                        std::size_t chunk_size = 256);

  /// Diagnostics of the most recent deploy_bitstream verification (empty
  /// before the first verified deployment).
  [[nodiscard]] const analysis::DiagnosticReport& last_verification() const {
    return last_verification_;
  }

  // --- stats -----------------------------------------------------------------
  [[nodiscard]] std::uint64_t requests_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t retransmissions() const { return retries_; }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }
  /// Deployments refused by the static verification gate.
  [[nodiscard]] std::uint64_t rejected_deployments() const {
    return rejected_deployments_;
  }

 private:
  struct Module {
    net::MacAddress mac;
    std::function<void(net::PacketPtr)> transmit;
  };
  struct Outstanding {
    std::string module;
    sfp::MgmtRequest request;
    Completion done;
    int attempts = 0;
  };

  void submit(const std::string& module, sfp::MgmtRequest request,
              Completion done);
  void transmit(const Outstanding& entry);
  void arm_timeout(std::uint32_t seq, int attempt);

  sim::Simulation& sim_;
  OrchestratorConfig config_;
  std::map<std::string, Module> modules_;
  std::map<std::uint32_t, Outstanding> outstanding_;
  std::uint32_t next_seq_ = 1;
  std::uint64_t sent_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t rejected_deployments_ = 0;
  analysis::DiagnosticReport last_verification_;
};

}  // namespace flexsfp::fabric
