// Fleet orchestrator: the central controller the paper's §4.1 envisions
// ("essential for centralized orchestration across a fleet of FlexSFPs").
// Speaks the management protocol to many modules, with sequence tracking,
// timeouts and retransmission — and drives complete bitstream deployments.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "analysis/verifier.hpp"
#include "hw/bitstream.hpp"
#include "hw/spi_flash.hpp"
#include "sfp/mgmt_protocol.hpp"
#include "sim/simulation.hpp"

namespace flexsfp::fabric {

/// Orchestrator-side view of a module's liveness.
enum class ModuleHealth : std::uint8_t {
  healthy,
  suspect,      // missed at least one health ping
  quarantined,  // missed `quarantine_after` consecutive pings: isolated
};

[[nodiscard]] std::string to_string(ModuleHealth health);

struct OrchestratorConfig {
  hw::AuthKey key;
  net::MacAddress mac = net::MacAddress::from_u64(0x020000000911);
  sim::TimePs timeout_ps = 10'000'000'000;  // 10 ms per request
  int max_retries = 3;
  /// Retry timeouts back off exponentially: attempt n waits
  /// timeout_ps * 2^(n-1), capped here. A module that is dark for a long
  /// reboot is probed gently instead of being hammered at the base period.
  sim::TimePs max_timeout_ps = 80'000'000'000;  // 80 ms cap
  /// Period of the health-check ping loop (start_health_checks()).
  sim::TimePs health_check_interval_ps = 50'000'000'000;  // 50 ms
  /// Consecutive failed health pings before a module is quarantined.
  int quarantine_after = 2;
  /// Redeploy the staged golden image (stage_golden()) automatically when a
  /// module is quarantined.
  bool golden_redeploy = true;
  /// Statically verify every bitstream before pushing it to a module;
  /// designs with error-severity diagnostics are refused without touching
  /// the wire. Opt out for bring-up experiments only.
  bool verify_before_deploy = true;
  /// Target device/datapath the verification runs against.
  analysis::VerifierOptions verifier{};
};

class FleetOrchestrator {
 public:
  /// Completion carries the response, or nullopt after retries exhausted.
  using Completion = std::function<void(std::optional<sfp::MgmtResponse>)>;

  FleetOrchestrator(sim::Simulation& sim, OrchestratorConfig config);

  /// Register a module: its MAC plus a transmit function that puts a frame
  /// on the wire toward it (directly or through a switch fabric).
  void add_module(const std::string& name, net::MacAddress module_mac,
                  std::function<void(net::PacketPtr)> transmit);
  [[nodiscard]] std::size_t fleet_size() const { return modules_.size(); }

  /// Feed frames arriving at the orchestrator NIC; management responses are
  /// consumed (true), everything else ignored (false).
  bool deliver(const net::Packet& packet);

  // --- operations ------------------------------------------------------------
  void ping(const std::string& module, std::uint64_t value,
            Completion done);
  void table_insert(const std::string& module, const std::string& table,
                    std::uint64_t key, std::uint64_t value, Completion done);
  void table_erase(const std::string& module, const std::string& table,
                   std::uint64_t key, Completion done);
  void table_lookup(const std::string& module, const std::string& table,
                    std::uint64_t key, Completion done);
  void counter_read(const std::string& module, std::uint64_t index,
                    Completion done);
  /// Full chunked deployment: begin -> every chunk -> commit, sequentially,
  /// each leg covered by the retry machinery. Completion fires with the
  /// commit response (or nullopt on any unrecoverable leg). When
  /// `verify_before_deploy` is set (the default), the design is statically
  /// verified first and an error-severity report fails the deployment
  /// synchronously — the infeasible bitstream never reaches the wire.
  void deploy_bitstream(const std::string& module,
                        const hw::Bitstream& bitstream, Completion done,
                        std::size_t chunk_size = 256);

  /// Diagnostics of the most recent deploy_bitstream verification (empty
  /// before the first verified deployment).
  [[nodiscard]] const analysis::DiagnosticReport& last_verification() const {
    return last_verification_;
  }

  // --- health / recovery -----------------------------------------------------
  /// Stage the fleet-wide golden image into the orchestrator's local flash
  /// (slot 0). Quarantined modules are re-imaged from it. Returns false when
  /// the image does not fit the slot.
  bool stage_golden(const hw::Bitstream& image);
  [[nodiscard]] bool has_golden() const {
    return golden_store_.read(0).has_value();
  }

  /// Begin the periodic ping health-check loop (no-op when already running
  /// or the configured interval is zero). Modules that miss
  /// `quarantine_after` consecutive pings are quarantined: normal table /
  /// counter operations are refused locally, and — when `golden_redeploy`
  /// is set and a golden image is staged — a golden re-image is pushed.
  /// Quarantined modules keep being pinged; the first successful ping
  /// clears the quarantine (recovery is proven by responsiveness, not by a
  /// deploy completing).
  void start_health_checks();
  void stop_health_checks();
  [[nodiscard]] bool health_checks_running() const {
    return health_checks_running_;
  }

  [[nodiscard]] ModuleHealth health(const std::string& module) const;
  [[nodiscard]] std::uint64_t quarantined_count() const;

  /// Push the staged golden image to `module` (also fired automatically on
  /// quarantine). False (and completion with nullopt) when none is staged.
  bool redeploy_golden(const std::string& module, Completion done);

  // --- stats -----------------------------------------------------------------
  [[nodiscard]] std::uint64_t requests_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t retransmissions() const { return retries_; }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }
  /// Deployments refused by the static verification gate.
  [[nodiscard]] std::uint64_t rejected_deployments() const {
    return rejected_deployments_;
  }
  // Registry-backed (obs:: spine): orch.health_checks, orch.health_failures,
  // orch.quarantines, orch.recoveries, orch.golden_redeploys counters and
  // the orch.quarantined gauge, all labeled {orch=<name>}.
  [[nodiscard]] std::uint64_t health_checks_sent() const {
    return sim_.metrics().value(health_checks_id_);
  }
  [[nodiscard]] std::uint64_t health_failures() const {
    return sim_.metrics().value(health_failures_id_);
  }
  [[nodiscard]] std::uint64_t quarantines() const {
    return sim_.metrics().value(quarantines_id_);
  }
  [[nodiscard]] std::uint64_t recoveries() const {
    return sim_.metrics().value(recoveries_id_);
  }
  [[nodiscard]] std::uint64_t golden_redeploys() const {
    return sim_.metrics().value(golden_redeploys_id_);
  }
  /// Operations refused locally because the target was quarantined.
  [[nodiscard]] std::uint64_t refused_operations() const { return refused_; }

 private:
  struct Module {
    net::MacAddress mac;
    std::function<void(net::PacketPtr)> transmit;
    ModuleHealth health = ModuleHealth::healthy;
    int failed_pings = 0;
  };
  struct Outstanding {
    std::string module;
    sfp::MgmtRequest request;
    Completion done;
    int attempts = 0;
  };

  void submit(const std::string& module, sfp::MgmtRequest request,
              Completion done);
  void transmit(const Outstanding& entry);
  void arm_timeout(std::uint32_t seq, int attempt);
  /// Timeout for the given attempt number: timeout_ps * 2^(attempt-1),
  /// capped at max_timeout_ps.
  [[nodiscard]] sim::TimePs backoff_for(int attempt) const;
  /// True (and completes with nullopt) when `module` is quarantined: normal
  /// operations are refused locally while the module is isolated.
  bool refuse_if_quarantined(const std::string& module, Completion& done);
  void schedule_health_round();
  void run_health_round();
  void on_health_result(const std::string& module, bool ok);
  void quarantine(const std::string& module);
  void set_quarantined_gauge();

  sim::Simulation& sim_;
  OrchestratorConfig config_;
  std::string name_;
  std::map<std::string, Module> modules_;
  std::map<std::uint32_t, Outstanding> outstanding_;
  hw::SpiFlash golden_store_{/*slots=*/1};
  std::uint32_t next_seq_ = 1;
  std::uint64_t sent_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t rejected_deployments_ = 0;
  std::uint64_t refused_ = 0;
  std::uint64_t health_nonce_ = 0;
  bool health_checks_running_ = false;
  obs::MetricId health_checks_id_;
  obs::MetricId health_failures_id_;
  obs::MetricId quarantines_id_;
  obs::MetricId recoveries_id_;
  obs::MetricId golden_redeploys_id_;
  obs::MetricId quarantined_gauge_id_;
  analysis::DiagnosticReport last_verification_;
};

}  // namespace flexsfp::fabric
