// Multi-module topology description: N FlexSFP modules hanging off one
// crosspoint-queued crossbar, so a flow traverses cable → switch → cable.
//
// One Topology value is consumed by both execution engines — the
// single-simulation FabricTestbed and the conservatively synchronized
// FabricParallelTestbed — so an experiment describes its world once and the
// engines are interchangeable. Per-module traffic and fault streams derive
// from the prototypes with the same stream-seed discipline as
// ParallelTestbed::shard_spec, and routing is by IPv4 destination /16 slice
// relative to the traffic prototype's dst_base: module i's generator
// retargets its flows at its target module's slice, the crossbar routes on
// that slice. Anything that parses as IPv4 but lands outside every slice
// (e.g. a fault-corrupted destination) is counted as fabric.xbar.unrouted;
// frames with no IPv4 header at all punt to the target module's slice via
// route()'s fallback = -1 → unrouted as well, keeping the loss ledger exact.
#pragma once

#include <optional>
#include <vector>

#include "fabric/traffic_gen.hpp"
#include "obs/flight_recorder.hpp"
#include "sfp/flexsfp.hpp"
#include "sim/fault_injector.hpp"

namespace flexsfp::fabric {

/// Salt folded into the base seed for inter-module link fault streams, so
/// they never collide with the traffic streams (or the per-port fault
/// streams of the single-module testbeds) derived from the same base seed.
inline constexpr std::uint64_t kFabricFaultSalt = 0x7866'6162'5f6c'6e6bULL;

struct Topology {
  /// Modules hanging off the crossbar (one crossbar port each).
  std::size_t modules = 3;
  /// Cloned per module; boot_at_start is forced off so modules are usable
  /// at t = 0 (same rule as TestbedConfig).
  sfp::FlexSfpConfig module_prototype;
  /// Each module's edge-side generator derives from this: stream seed and
  /// source-flow slice via ParallelTestbed::shard_spec, destination slice
  /// retargeted at the module's crossbar target.
  TrafficSpec traffic_prototype;
  /// targets[i] = module whose edge side receives module i's traffic.
  /// Empty = ring: i → (i + 1) % modules.
  std::vector<std::size_t> targets;
  /// Fault process applied to each module → crossbar link (chaos across the
  /// fabric). Seeds re-derive per link with kFabricFaultSalt.
  std::optional<sim::FaultSpec> link_faults;
  /// Propagation delay of every module ↔ crossbar link. This is the
  /// conservative-sync lookahead: any packet captured at a window boundary
  /// arrives at least link_delay_ps later, so it must be > 0.
  sim::TimePs link_delay_ps = 500'000;  // 500 ns
  /// Rate of the module → crossbar links (crossbar outputs serialize at
  /// crossbar.port_rate; these links feed them).
  sim::DataRate link_rate = sim::line_rate_10g;
  /// Per-crosspoint buffer depth in the crossbar.
  std::size_t crosspoint_capacity = 64;
  std::uint64_t base_seed = 1;
  /// Flight-recorder setup, applied to every simulation the engines build.
  obs::FlightRecorderConfig flight;

  Topology() { module_prototype.boot_at_start = false; }

  /// Throws std::invalid_argument on an inconsistent description.
  void validate() const;

  /// The module that receives module i's traffic.
  [[nodiscard]] std::size_t target_of(std::size_t module) const;
  /// The traffic spec module i's edge generator runs: shard-derived seed and
  /// flow slice, destinations retargeted at target_of(i)'s /16 slice.
  [[nodiscard]] TrafficSpec traffic_for(std::size_t module) const;
  /// The fault spec for module i's uplink; call only when link_faults is set.
  [[nodiscard]] sim::FaultSpec link_fault_for(std::size_t module) const;
  /// Base address of module i's destination slice.
  [[nodiscard]] net::Ipv4Address slice_base(std::size_t module) const;
  /// Crossbar route function: IPv4 dst /16 slice → module, -1 when the
  /// frame doesn't parse as IPv4 or the slice is out of range.
  [[nodiscard]] int route(const net::Packet& packet) const;
};

}  // namespace flexsfp::fabric
