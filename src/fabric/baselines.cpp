#include "fabric/baselines.hpp"

#include <algorithm>
#include <cmath>

namespace flexsfp::fabric {

CpuPath::CpuPath(sim::Simulation& sim, CpuPathConfig config,
                 std::size_t queue_capacity)
    : sim::QueuedServer(sim, queue_capacity, "cpu"),
      config_(config),
      rng_(config.seed) {}

sim::TimePs CpuPath::service_time(const net::Packet&) {
  const sim::TimePs per_packet =
      static_cast<sim::TimePs>(1e12 / config_.packets_per_second);
  if (rng_.bernoulli(config_.stall_probability)) {
    return per_packet + config_.stall_ps;
  }
  return per_packet;
}

void CpuPath::finish(net::PacketPtr packet) {
  if (!output_) return;
  // Base latency + lognormal-ish positive jitter from scheduling noise.
  const double jitter =
      std::abs(rng_.lognormal(std::log(double(config_.jitter_sigma_ps)), 0.75));
  const sim::TimePs delay =
      config_.base_latency_ps + static_cast<sim::TimePs>(jitter);
  sim().schedule_in(delay, [this, packet = std::move(packet)]() mutable {
    output_(std::move(packet));
  });
}

SmartNic::SmartNic(sim::Simulation& sim, SmartNicConfig config,
                   std::size_t queue_capacity)
    : sim::QueuedServer(sim, queue_capacity, "smartnic"),
      config_(config),
      rng_(config.seed) {}

sim::TimePs SmartNic::service_time(const net::Packet&) {
  return static_cast<sim::TimePs>(1e12 / config_.packets_per_second);
}

void SmartNic::finish(net::PacketPtr packet) {
  if (!output_) return;
  const double jitter = rng_.exponential(double(config_.jitter_sigma_ps));
  const sim::TimePs delay =
      config_.base_latency_ps + static_cast<sim::TimePs>(jitter);
  sim().schedule_in(delay, [this, packet = std::move(packet)]() mutable {
    output_(std::move(packet));
  });
}

}  // namespace flexsfp::fabric
