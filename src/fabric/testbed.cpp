#include "fabric/testbed.hpp"

#include <algorithm>

namespace flexsfp::fabric {

ModuleTestbed::ModuleTestbed(TestbedConfig config, ppe::PpeAppPtr app)
    : config_(std::move(config)) {
  sim_.flight().configure(config_.flight);
  module_ = std::make_unique<sfp::FlexSfpModule>(sim_, std::move(app),
                                                 config_.module);
  edge_sink_ = std::make_unique<Sink>(sim_);
  optical_sink_ = std::make_unique<Sink>(sim_);

  module_->set_egress_handler(sfp::FlexSfpModule::edge_port,
                              [this](net::PacketPtr packet) {
                                edge_sink_->handle_packet(std::move(packet));
                              });
  module_->set_egress_handler(
      sfp::FlexSfpModule::optical_port, [this](net::PacketPtr packet) {
        optical_sink_->handle_packet(std::move(packet));
      });

  edge_in_ = std::make_unique<sim::LambdaHandler>([this](net::PacketPtr p) {
    module_->inject(sfp::FlexSfpModule::edge_port, std::move(p));
  });
  optical_in_ = std::make_unique<sim::LambdaHandler>([this](net::PacketPtr p) {
    module_->inject(sfp::FlexSfpModule::optical_port, std::move(p));
  });

  // Fault injectors sit between the generators and the module ports, so
  // what a chaos experiment perturbs is exactly what arrives on the wire.
  if (config_.edge_faults) {
    edge_faults_ = std::make_unique<sim::FaultInjector>(
        sim_, *config_.edge_faults, *edge_in_, "fault.edge");
    if (config_.edge_faults->target_drop_prob > 0) {
      edge_faults_->set_target_filter(sfp::is_mgmt_frame);
    }
  }
  if (config_.optical_faults) {
    optical_faults_ = std::make_unique<sim::FaultInjector>(
        sim_, *config_.optical_faults, *optical_in_, "fault.optical");
    if (config_.optical_faults->target_drop_prob > 0) {
      optical_faults_->set_target_filter(sfp::is_mgmt_frame);
    }
  }

  sim::PacketHandler& edge_entry =
      edge_faults_ ? static_cast<sim::PacketHandler&>(*edge_faults_)
                   : *edge_in_;
  sim::PacketHandler& optical_entry =
      optical_faults_ ? static_cast<sim::PacketHandler&>(*optical_faults_)
                      : *optical_in_;
  if (config_.edge_traffic) {
    edge_gen_ = std::make_unique<TrafficGen>(sim_, *config_.edge_traffic,
                                             edge_entry);
  }
  if (config_.optical_traffic) {
    optical_gen_ = std::make_unique<TrafficGen>(
        sim_, *config_.optical_traffic, optical_entry);
  }
}

namespace {

DirectionResult direction_result(const TrafficGen* gen, const Sink& sink,
                                 sim::TimePs duration) {
  DirectionResult out;
  if (gen == nullptr) return out;
  out.sent_packets = gen->emitted().packets();
  out.received_packets = sink.received().packets();
  out.offered_gbps = gen->emitted().bits_per_second(duration) * 1e-9;
  out.delivered_gbps = sink.received().bits_per_second(duration) * 1e-9;
  out.loss_rate =
      out.sent_packets > 0
          ? 1.0 - double(out.received_packets) / double(out.sent_packets)
          : 0.0;
  out.latency_p50_ns = sim::to_nanos(sink.latency().percentile(50));
  out.latency_p99_ns = sim::to_nanos(sink.latency().percentile(99));
  out.latency_max_ns = sim::to_nanos(sink.latency().max());
  return out;
}

}  // namespace

TestbedResult ModuleTestbed::run() {
  if (edge_gen_) edge_gen_->start();
  if (optical_gen_) optical_gen_->start();
  sim_.run();

  sim::TimePs duration = 0;
  if (config_.edge_traffic) {
    duration = std::max(duration, config_.edge_traffic->start +
                                      config_.edge_traffic->duration);
  }
  if (config_.optical_traffic) {
    duration = std::max(duration, config_.optical_traffic->start +
                                      config_.optical_traffic->duration);
  }
  if (duration == 0) duration = sim_.now();

  TestbedResult result;
  result.duration = duration;
  result.edge_to_optical =
      direction_result(edge_gen_.get(), *optical_sink_, duration);
  result.optical_to_edge =
      direction_result(optical_gen_.get(), *edge_sink_, duration);
  result.ppe_queue_drops = module_->shell().engine().drops();
  result.app_drops = module_->shell().engine().dropped_by_app();
  result.ppe_utilization =
      module_->shell().engine().utilization(duration);
  result.power = module_->power(duration);
  if (edge_faults_) result.edge_fault_tally = edge_faults_->tally();
  if (optical_faults_) result.optical_fault_tally = optical_faults_->tally();
  result.metrics = sim_.metrics().snapshot();
  return result;
}

PowerMeasurement run_power_measurement(ppe::PpeAppPtr app,
                                       sim::TimePs duration) {
  PowerMeasurement measurement;
  measurement.nic_only_w = hw::PowerModel::nic_base_watts();

  // Standard SFP: bidirectional line-rate stress ("receiving and
  // transmitting line-rate traffic").
  {
    sim::Simulation sim;
    sfp::StandardSfp sfp(sim);
    Sink edge_sink(sim);
    Sink optical_sink(sim);
    sfp.set_egress_handler(sfp::StandardSfp::edge_port,
                           [&edge_sink](net::PacketPtr p) {
                             edge_sink.handle_packet(std::move(p));
                           });
    sfp.set_egress_handler(sfp::StandardSfp::optical_port,
                           [&optical_sink](net::PacketPtr p) {
                             optical_sink.handle_packet(std::move(p));
                           });
    sim::LambdaHandler into_edge([&sfp](net::PacketPtr p) {
      sfp.inject(sfp::StandardSfp::edge_port, std::move(p));
    });
    sim::LambdaHandler into_optical([&sfp](net::PacketPtr p) {
      sfp.inject(sfp::StandardSfp::optical_port, std::move(p));
    });
    TrafficSpec spec;
    spec.fixed_size = 1518;
    spec.duration = duration;
    TrafficGen tx(sim, spec, into_edge);
    TrafficSpec rx_spec = spec;
    rx_spec.seed = 2;
    TrafficGen rx(sim, rx_spec, into_optical);
    tx.start();
    rx.start();
    sim.run();
    measurement.nic_plus_sfp_w =
        hw::PowerModel::nic_base_watts() +
        sfp.power(duration, sim::line_rate_10g).total();
  }

  // FlexSFP: same stress through the module running `app`.
  {
    TestbedConfig config;
    config.module.shell.kind = sfp::ShellKind::one_way_filter;
    TrafficSpec spec;
    spec.fixed_size = 1518;
    spec.duration = duration;
    config.edge_traffic = spec;
    TrafficSpec rx_spec = spec;
    rx_spec.seed = 2;
    config.optical_traffic = rx_spec;
    ModuleTestbed testbed(std::move(config), std::move(app));
    const auto result = testbed.run();
    measurement.nic_plus_flexsfp_w =
        hw::PowerModel::nic_base_watts() + result.power.total();
  }
  return measurement;
}

}  // namespace flexsfp::fabric
