#include "fabric/parallel_testbed.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "sim/parallel.hpp"
#include "sim/random.hpp"

namespace flexsfp::fabric {

std::size_t ShardPlan::widest_worker() const {
  std::size_t widest = 0;
  for (const auto& lane : assignment) widest = std::max(widest, lane.size());
  return widest;
}

ShardPlan plan_shards(std::size_t shards, unsigned requested_workers) {
  ShardPlan plan;
  plan.shards = shards;
  plan.workers = sim::resolve_workers(shards, requested_workers);
  plan.assignment.resize(plan.workers);
  for (std::size_t shard = 0; shard < shards; ++shard) {
    plan.assignment[shard % plan.workers].push_back(shard);
  }
  return plan;
}

ParallelTestbed::ParallelTestbed(ParallelTestbedConfig config,
                                 AppFactory app_factory)
    : config_(std::move(config)), app_factory_(std::move(app_factory)) {
  if (config_.shards == 0) {
    throw std::invalid_argument("ParallelTestbed needs at least one shard");
  }
  if (!app_factory_) {
    throw std::invalid_argument("ParallelTestbed needs an app factory");
  }
}

TrafficSpec ParallelTestbed::shard_spec(const TrafficSpec& prototype,
                                        std::uint64_t base_seed,
                                        std::size_t shard,
                                        unsigned direction) {
  TrafficSpec spec = prototype;
  // Two streams per shard (edge / optical) so the directions of one module
  // are as independent as two different modules.
  spec.seed = sim::derive_stream_seed(base_seed, shard * 2 + direction);
  // Disjoint flow-space slice: each shard's flows live in their own /16 so
  // no two modules ever see the same 5-tuple (ports stay per-flow).
  const auto offset = static_cast<std::uint32_t>(shard) << 16;
  spec.src_base = net::Ipv4Address(prototype.src_base.value() + offset);
  spec.dst_base = net::Ipv4Address(prototype.dst_base.value() + offset);
  spec.src_mac = net::MacAddress::from_u64(0x020000000000ull +
                                           (std::uint64_t(shard) << 8) + 1);
  spec.dst_mac = net::MacAddress::from_u64(0x020000000000ull +
                                           (std::uint64_t(shard) << 8) + 2);
  return spec;
}

sim::FaultSpec ParallelTestbed::shard_fault_spec(const sim::FaultSpec& prototype,
                                                 std::uint64_t base_seed,
                                                 std::size_t shard,
                                                 unsigned direction) {
  sim::FaultSpec spec = prototype;
  // Salted base so the fault streams are disjoint from the traffic streams
  // (which use derive_stream_seed(base_seed, shard*2+direction) directly).
  constexpr std::uint64_t fault_salt = 0x666c745f73616c74ull;  // "flt_salt"
  spec.seed =
      sim::derive_stream_seed(base_seed ^ fault_salt, shard * 2 + direction);
  return spec;
}

ShardOutcome ParallelTestbed::run_shard(std::size_t shard,
                                        ppe::PpeAppPtr app) const {
  ShardOutcome out;
  out.shard = shard;

  TestbedConfig config = config_.prototype;
  if (config.edge_traffic) {
    config.edge_traffic =
        shard_spec(*config.edge_traffic, config_.base_seed, shard, 0);
    out.edge_seed = config.edge_traffic->seed;
  }
  if (config.optical_traffic) {
    config.optical_traffic =
        shard_spec(*config.optical_traffic, config_.base_seed, shard, 1);
    out.optical_seed = config.optical_traffic->seed;
  }
  if (config.edge_faults) {
    config.edge_faults =
        shard_fault_spec(*config.edge_faults, config_.base_seed, shard, 0);
  }
  if (config.optical_faults) {
    config.optical_faults =
        shard_fault_spec(*config.optical_faults, config_.base_seed, shard, 1);
  }

  ModuleTestbed testbed(std::move(config), std::move(app));
  if (config_.batch_width != 0) {
    testbed.sim().set_batch_width(config_.batch_width);
  }
  out.result = testbed.run();
  out.metrics = out.result.metrics.with_label("shard", std::to_string(shard));
  out.flight = testbed.sim().flight().events();

  if (testbed.edge_gen() != nullptr) {
    out.stats.sent.merge(testbed.edge_gen()->emitted());
  }
  if (testbed.optical_gen() != nullptr) {
    out.stats.sent.merge(testbed.optical_gen()->emitted());
  }
  out.stats.received.merge(testbed.edge_sink().received());
  out.stats.received.merge(testbed.optical_sink().received());
  out.stats.latency.merge(testbed.edge_sink().latency());
  out.stats.latency.merge(testbed.optical_sink().latency());
  out.stats.queue_drops = out.result.ppe_queue_drops;
  out.stats.app_drops = out.result.app_drops;
  out.stats.dark_drops = testbed.module().packets_lost_while_dark();
  out.stats.events = testbed.sim().executed_events();
  out.app_counters = testbed.module().app().counters();
  return out;
}

ParallelRunResult ParallelTestbed::run() { return run_with(config_.workers); }

ParallelRunResult ParallelTestbed::run_sequential() { return run_with(1); }

ParallelRunResult ParallelTestbed::run_with(unsigned workers) {
  ParallelRunResult out;
  out.workers_used = sim::resolve_workers(config_.shards, workers);
  out.shards.resize(config_.shards);

  // Apps are built up front on the caller thread: the factory may touch
  // shared state, and PpeApp is move-only anyway.
  std::vector<ppe::PpeAppPtr> apps;
  apps.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    apps.push_back(app_factory_());
  }

  // Isolated shards are the degenerate lockstep case: one unbounded window,
  // nothing to exchange. Riding the same engine as the fabric testbeds keeps
  // one worker-pool discipline for both execution shapes.
  const auto start = std::chrono::steady_clock::now();
  sim::run_lockstep_rounds(
      config_.shards, workers,
      [&](std::size_t shard) {
        out.shards[shard] = run_shard(shard, std::move(apps[shard]));
      },
      [] { return false; });
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // Barrier merge in shard order: the only ordering the combined numbers
  // ever see, so thread scheduling cannot leak into results.
  for (const auto& shard : out.shards) {
    out.combined.merge(shard.stats);
    ppe::merge_counter_snapshots(out.combined_counters, shard.app_counters);
    out.combined_metrics.merge(shard.metrics);
  }
  return out;
}

}  // namespace flexsfp::fabric
