#include "fabric/orchestrator.hpp"

#include <algorithm>

#include "apps/register.hpp"
#include "ppe/registry.hpp"

namespace flexsfp::fabric {

std::string to_string(ModuleHealth health) {
  switch (health) {
    case ModuleHealth::healthy: return "healthy";
    case ModuleHealth::suspect: return "suspect";
    case ModuleHealth::quarantined: return "quarantined";
  }
  return "health(?)";
}

FleetOrchestrator::FleetOrchestrator(sim::Simulation& sim,
                                     OrchestratorConfig config)
    : sim_(sim), config_(config), name_(sim.metrics().unique_name("orch")) {
  health_checks_id_ =
      sim_.metrics().counter("orch.health_checks", {{"orch", name_}});
  health_failures_id_ =
      sim_.metrics().counter("orch.health_failures", {{"orch", name_}});
  quarantines_id_ =
      sim_.metrics().counter("orch.quarantines", {{"orch", name_}});
  recoveries_id_ =
      sim_.metrics().counter("orch.recoveries", {{"orch", name_}});
  golden_redeploys_id_ =
      sim_.metrics().counter("orch.golden_redeploys", {{"orch", name_}});
  quarantined_gauge_id_ =
      sim_.metrics().gauge("orch.quarantined", {{"orch", name_}});
}

void FleetOrchestrator::add_module(
    const std::string& name, net::MacAddress module_mac,
    std::function<void(net::PacketPtr)> transmit) {
  modules_[name] = Module{module_mac, std::move(transmit)};
}

bool FleetOrchestrator::deliver(const net::Packet& packet) {
  const auto body = sfp::mgmt_body(packet);
  if (!body) return false;
  const auto response = sfp::MgmtResponse::parse(*body);
  if (!response) return false;
  const auto it = outstanding_.find(response->seq);
  if (it == outstanding_.end()) return true;  // late duplicate: consumed
  Completion done = std::move(it->second.done);
  outstanding_.erase(it);
  if (done) done(*response);
  return true;
}

void FleetOrchestrator::submit(const std::string& module,
                               sfp::MgmtRequest request, Completion done) {
  const auto it = modules_.find(module);
  if (it == modules_.end()) {
    if (done) done(std::nullopt);
    return;
  }
  request.seq = next_seq_++;
  Outstanding entry{module, std::move(request), std::move(done), 1};
  const std::uint32_t seq = entry.request.seq;
  transmit(entry);
  outstanding_.emplace(seq, std::move(entry));
  arm_timeout(seq, 1);
}

void FleetOrchestrator::transmit(const Outstanding& entry) {
  const Module& module = modules_.at(entry.module);
  auto frame = sim_.packet_pool().make_from(sfp::make_mgmt_frame(
      module.mac, config_.mac, entry.request.serialize(config_.key)));
  ++sent_;
  module.transmit(std::move(frame));
}

sim::TimePs FleetOrchestrator::backoff_for(int attempt) const {
  sim::TimePs timeout = config_.timeout_ps;
  for (int i = 1; i < attempt && timeout < config_.max_timeout_ps; ++i) {
    timeout *= 2;
  }
  return std::min(timeout, config_.max_timeout_ps);
}

void FleetOrchestrator::arm_timeout(std::uint32_t seq, int attempt) {
  sim_.schedule_in(backoff_for(attempt), [this, seq, attempt]() {
    const auto it = outstanding_.find(seq);
    if (it == outstanding_.end()) return;  // answered meanwhile
    if (it->second.attempts != attempt) return;  // a retry is in flight
    if (it->second.attempts > config_.max_retries) {
      ++timeouts_;
      Completion done = std::move(it->second.done);
      outstanding_.erase(it);
      if (done) done(std::nullopt);
      return;
    }
    ++retries_;
    ++it->second.attempts;
    transmit(it->second);
    arm_timeout(seq, it->second.attempts);
  });
}

void FleetOrchestrator::ping(const std::string& module, std::uint64_t value,
                             Completion done) {
  sfp::MgmtRequest request;
  request.op = sfp::MgmtOp::ping;
  request.value = value;
  submit(module, std::move(request), std::move(done));
}

bool FleetOrchestrator::refuse_if_quarantined(const std::string& module,
                                              Completion& done) {
  const auto it = modules_.find(module);
  if (it == modules_.end() || it->second.health != ModuleHealth::quarantined) {
    return false;
  }
  ++refused_;
  if (done) done(std::nullopt);
  return true;
}

void FleetOrchestrator::table_insert(const std::string& module,
                                     const std::string& table,
                                     std::uint64_t key, std::uint64_t value,
                                     Completion done) {
  if (refuse_if_quarantined(module, done)) return;
  sfp::MgmtRequest request;
  request.op = sfp::MgmtOp::table_insert;
  request.table = table;
  request.key = key;
  request.value = value;
  submit(module, std::move(request), std::move(done));
}

void FleetOrchestrator::table_erase(const std::string& module,
                                    const std::string& table,
                                    std::uint64_t key, Completion done) {
  if (refuse_if_quarantined(module, done)) return;
  sfp::MgmtRequest request;
  request.op = sfp::MgmtOp::table_erase;
  request.table = table;
  request.key = key;
  submit(module, std::move(request), std::move(done));
}

void FleetOrchestrator::table_lookup(const std::string& module,
                                     const std::string& table,
                                     std::uint64_t key, Completion done) {
  if (refuse_if_quarantined(module, done)) return;
  sfp::MgmtRequest request;
  request.op = sfp::MgmtOp::table_lookup;
  request.table = table;
  request.key = key;
  submit(module, std::move(request), std::move(done));
}

void FleetOrchestrator::counter_read(const std::string& module,
                                     std::uint64_t index, Completion done) {
  if (refuse_if_quarantined(module, done)) return;
  sfp::MgmtRequest request;
  request.op = sfp::MgmtOp::counter_read;
  request.key = index;
  submit(module, std::move(request), std::move(done));
}

void FleetOrchestrator::deploy_bitstream(const std::string& module,
                                         const hw::Bitstream& bitstream,
                                         Completion done,
                                         std::size_t chunk_size) {
  if (config_.verify_before_deploy) {
    // Make sure the built-in factories exist, but never clobber an
    // already-registered name (tests stub apps by re-registering).
    if (!ppe::AppRegistry::instance().contains(bitstream.app_name())) {
      apps::register_builtin_apps();
    }
    last_verification_ = analysis::PipelineVerifier(config_.verifier)
                             .verify_bitstream(bitstream);
    if (last_verification_.has_errors()) {
      // Refuse locally: the design would not fit/run on the module, so the
      // bitstream never reaches the wire.
      ++rejected_deployments_;
      if (done) done(std::nullopt);
      return;
    }
  }
  const auto image = std::make_shared<net::Bytes>(bitstream.serialize());
  const std::size_t chunks = (image->size() + chunk_size - 1) / chunk_size;

  // Sequential state machine over completions: begin -> chunk i -> commit.
  // shared_ptr'd recursive lambda keeps the chain alive across events. The
  // stored function must capture itself only weakly — a strong self-capture
  // is a reference cycle the chain would leak on every deployment — while
  // each in-flight completion holds a strong ref to keep the chain alive.
  auto step = std::make_shared<std::function<void(std::size_t)>>();
  auto final_done = std::make_shared<Completion>(std::move(done));

  auto fail = [final_done](std::optional<sfp::MgmtResponse> response) {
    if (*final_done) (*final_done)(std::move(response));
  };

  const std::weak_ptr<std::function<void(std::size_t)>> weak_step = step;
  *step = [this, module, image, chunks, chunk_size, weak_step, final_done,
           fail](std::size_t index) {
    if (index < chunks) {
      sfp::MgmtRequest request;
      request.op = sfp::MgmtOp::reconfig_chunk;
      request.payload.resize(2);
      net::write_be16(request.payload, 0, static_cast<std::uint16_t>(index));
      const std::size_t offset = index * chunk_size;
      const std::size_t len = std::min(chunk_size, image->size() - offset);
      request.payload.insert(request.payload.end(), image->begin() + offset,
                             image->begin() + offset + len);
      auto self = weak_step.lock();  // we are running, so the chain is alive
      submit(module, std::move(request),
             [self, index, fail](std::optional<sfp::MgmtResponse> response) {
               if (!response || response->status != sfp::MgmtStatus::ok) {
                 fail(std::move(response));
                 return;
               }
               (*self)(index + 1);
             });
      return;
    }
    // All chunks delivered: commit.
    sfp::MgmtRequest commit;
    commit.op = sfp::MgmtOp::reconfig_commit;
    submit(module, std::move(commit),
           [final_done](std::optional<sfp::MgmtResponse> response) {
             if (*final_done) (*final_done)(std::move(response));
           });
  };

  sfp::MgmtRequest begin;
  begin.op = sfp::MgmtOp::reconfig_begin;
  begin.payload.resize(2);
  net::write_be16(begin.payload, 0, static_cast<std::uint16_t>(chunks));
  submit(module, std::move(begin),
         [step, fail](std::optional<sfp::MgmtResponse> response) {
           if (!response || response->status != sfp::MgmtStatus::ok) {
             fail(std::move(response));
             return;
           }
           (*step)(0);
         });
}

bool FleetOrchestrator::stage_golden(const hw::Bitstream& image) {
  return golden_store_.write(0, image).has_value();
}

void FleetOrchestrator::start_health_checks() {
  if (health_checks_running_ || config_.health_check_interval_ps == 0) return;
  health_checks_running_ = true;
  schedule_health_round();
}

void FleetOrchestrator::stop_health_checks() {
  health_checks_running_ = false;
}

void FleetOrchestrator::schedule_health_round() {
  sim_.schedule_in(config_.health_check_interval_ps, [this]() {
    if (!health_checks_running_) return;
    run_health_round();
    schedule_health_round();
  });
}

void FleetOrchestrator::run_health_round() {
  for (auto& [name, module] : modules_) {
    (void)module;
    sim_.metrics().add(health_checks_id_);
    ping(name, ++health_nonce_,
         [this, name = name](std::optional<sfp::MgmtResponse> response) {
           on_health_result(name, response.has_value() &&
                                      response->status == sfp::MgmtStatus::ok);
         });
  }
}

void FleetOrchestrator::on_health_result(const std::string& module, bool ok) {
  const auto it = modules_.find(module);
  if (it == modules_.end()) return;
  Module& entry = it->second;
  if (ok) {
    entry.failed_pings = 0;
    if (entry.health == ModuleHealth::quarantined) {
      // The module answers again (rebooted into golden, flap over, ...):
      // recovery is proven by responsiveness, so lift the quarantine.
      sim_.metrics().add(recoveries_id_);
    }
    entry.health = ModuleHealth::healthy;
    set_quarantined_gauge();
    return;
  }
  sim_.metrics().add(health_failures_id_);
  if (entry.health == ModuleHealth::quarantined) return;  // already isolated
  ++entry.failed_pings;
  entry.health = entry.failed_pings >= config_.quarantine_after
                     ? ModuleHealth::quarantined
                     : ModuleHealth::suspect;
  if (entry.health == ModuleHealth::quarantined) quarantine(module);
}

void FleetOrchestrator::quarantine(const std::string& module) {
  sim_.metrics().add(quarantines_id_);
  set_quarantined_gauge();
  if (config_.golden_redeploy && has_golden()) {
    (void)redeploy_golden(module, nullptr);
  }
}

bool FleetOrchestrator::redeploy_golden(const std::string& module,
                                        Completion done) {
  const auto golden = golden_store_.read(0);
  if (!golden) {
    if (done) done(std::nullopt);
    return false;
  }
  sim_.metrics().add(golden_redeploys_id_);
  deploy_bitstream(module, *golden, std::move(done));
  return true;
}

ModuleHealth FleetOrchestrator::health(const std::string& module) const {
  const auto it = modules_.find(module);
  return it == modules_.end() ? ModuleHealth::healthy : it->second.health;
}

std::uint64_t FleetOrchestrator::quarantined_count() const {
  std::uint64_t count = 0;
  for (const auto& [name, module] : modules_) {
    (void)name;
    if (module.health == ModuleHealth::quarantined) ++count;
  }
  return count;
}

void FleetOrchestrator::set_quarantined_gauge() {
  sim_.metrics().set(quarantined_gauge_id_, quarantined_count());
}

}  // namespace flexsfp::fabric
