#include "fabric/orchestrator.hpp"

#include "apps/register.hpp"
#include "ppe/registry.hpp"

namespace flexsfp::fabric {

FleetOrchestrator::FleetOrchestrator(sim::Simulation& sim,
                                     OrchestratorConfig config)
    : sim_(sim), config_(config) {}

void FleetOrchestrator::add_module(
    const std::string& name, net::MacAddress module_mac,
    std::function<void(net::PacketPtr)> transmit) {
  modules_[name] = Module{module_mac, std::move(transmit)};
}

bool FleetOrchestrator::deliver(const net::Packet& packet) {
  const auto body = sfp::mgmt_body(packet);
  if (!body) return false;
  const auto response = sfp::MgmtResponse::parse(*body);
  if (!response) return false;
  const auto it = outstanding_.find(response->seq);
  if (it == outstanding_.end()) return true;  // late duplicate: consumed
  Completion done = std::move(it->second.done);
  outstanding_.erase(it);
  if (done) done(*response);
  return true;
}

void FleetOrchestrator::submit(const std::string& module,
                               sfp::MgmtRequest request, Completion done) {
  const auto it = modules_.find(module);
  if (it == modules_.end()) {
    if (done) done(std::nullopt);
    return;
  }
  request.seq = next_seq_++;
  Outstanding entry{module, std::move(request), std::move(done), 1};
  const std::uint32_t seq = entry.request.seq;
  transmit(entry);
  outstanding_.emplace(seq, std::move(entry));
  arm_timeout(seq, 1);
}

void FleetOrchestrator::transmit(const Outstanding& entry) {
  const Module& module = modules_.at(entry.module);
  auto frame = std::make_shared<net::Packet>(sfp::make_mgmt_frame(
      module.mac, config_.mac, entry.request.serialize(config_.key)));
  ++sent_;
  module.transmit(std::move(frame));
}

void FleetOrchestrator::arm_timeout(std::uint32_t seq, int attempt) {
  sim_.schedule_in(config_.timeout_ps, [this, seq, attempt]() {
    const auto it = outstanding_.find(seq);
    if (it == outstanding_.end()) return;  // answered meanwhile
    if (it->second.attempts != attempt) return;  // a retry is in flight
    if (it->second.attempts > config_.max_retries) {
      ++timeouts_;
      Completion done = std::move(it->second.done);
      outstanding_.erase(it);
      if (done) done(std::nullopt);
      return;
    }
    ++retries_;
    ++it->second.attempts;
    transmit(it->second);
    arm_timeout(seq, it->second.attempts);
  });
}

void FleetOrchestrator::ping(const std::string& module, std::uint64_t value,
                             Completion done) {
  sfp::MgmtRequest request;
  request.op = sfp::MgmtOp::ping;
  request.value = value;
  submit(module, std::move(request), std::move(done));
}

void FleetOrchestrator::table_insert(const std::string& module,
                                     const std::string& table,
                                     std::uint64_t key, std::uint64_t value,
                                     Completion done) {
  sfp::MgmtRequest request;
  request.op = sfp::MgmtOp::table_insert;
  request.table = table;
  request.key = key;
  request.value = value;
  submit(module, std::move(request), std::move(done));
}

void FleetOrchestrator::table_erase(const std::string& module,
                                    const std::string& table,
                                    std::uint64_t key, Completion done) {
  sfp::MgmtRequest request;
  request.op = sfp::MgmtOp::table_erase;
  request.table = table;
  request.key = key;
  submit(module, std::move(request), std::move(done));
}

void FleetOrchestrator::table_lookup(const std::string& module,
                                     const std::string& table,
                                     std::uint64_t key, Completion done) {
  sfp::MgmtRequest request;
  request.op = sfp::MgmtOp::table_lookup;
  request.table = table;
  request.key = key;
  submit(module, std::move(request), std::move(done));
}

void FleetOrchestrator::counter_read(const std::string& module,
                                     std::uint64_t index, Completion done) {
  sfp::MgmtRequest request;
  request.op = sfp::MgmtOp::counter_read;
  request.key = index;
  submit(module, std::move(request), std::move(done));
}

void FleetOrchestrator::deploy_bitstream(const std::string& module,
                                         const hw::Bitstream& bitstream,
                                         Completion done,
                                         std::size_t chunk_size) {
  if (config_.verify_before_deploy) {
    // Make sure the built-in factories exist, but never clobber an
    // already-registered name (tests stub apps by re-registering).
    if (!ppe::AppRegistry::instance().contains(bitstream.app_name())) {
      apps::register_builtin_apps();
    }
    last_verification_ = analysis::PipelineVerifier(config_.verifier)
                             .verify_bitstream(bitstream);
    if (last_verification_.has_errors()) {
      // Refuse locally: the design would not fit/run on the module, so the
      // bitstream never reaches the wire.
      ++rejected_deployments_;
      if (done) done(std::nullopt);
      return;
    }
  }
  const auto image = std::make_shared<net::Bytes>(bitstream.serialize());
  const std::size_t chunks = (image->size() + chunk_size - 1) / chunk_size;

  // Sequential state machine over completions: begin -> chunk i -> commit.
  // shared_ptr'd recursive lambda keeps the chain alive across events. The
  // stored function must capture itself only weakly — a strong self-capture
  // is a reference cycle the chain would leak on every deployment — while
  // each in-flight completion holds a strong ref to keep the chain alive.
  auto step = std::make_shared<std::function<void(std::size_t)>>();
  auto final_done = std::make_shared<Completion>(std::move(done));

  auto fail = [final_done](std::optional<sfp::MgmtResponse> response) {
    if (*final_done) (*final_done)(std::move(response));
  };

  const std::weak_ptr<std::function<void(std::size_t)>> weak_step = step;
  *step = [this, module, image, chunks, chunk_size, weak_step, final_done,
           fail](std::size_t index) {
    if (index < chunks) {
      sfp::MgmtRequest request;
      request.op = sfp::MgmtOp::reconfig_chunk;
      request.payload.resize(2);
      net::write_be16(request.payload, 0, static_cast<std::uint16_t>(index));
      const std::size_t offset = index * chunk_size;
      const std::size_t len = std::min(chunk_size, image->size() - offset);
      request.payload.insert(request.payload.end(), image->begin() + offset,
                             image->begin() + offset + len);
      auto self = weak_step.lock();  // we are running, so the chain is alive
      submit(module, std::move(request),
             [self, index, fail](std::optional<sfp::MgmtResponse> response) {
               if (!response || response->status != sfp::MgmtStatus::ok) {
                 fail(std::move(response));
                 return;
               }
               (*self)(index + 1);
             });
      return;
    }
    // All chunks delivered: commit.
    sfp::MgmtRequest commit;
    commit.op = sfp::MgmtOp::reconfig_commit;
    submit(module, std::move(commit),
           [final_done](std::optional<sfp::MgmtResponse> response) {
             if (*final_done) (*final_done)(std::move(response));
           });
  };

  sfp::MgmtRequest begin;
  begin.op = sfp::MgmtOp::reconfig_begin;
  begin.payload.resize(2);
  net::write_be16(begin.payload, 0, static_cast<std::uint16_t>(chunks));
  submit(module, std::move(begin),
         [step, fail](std::optional<sfp::MgmtResponse> response) {
           if (!response || response->status != sfp::MgmtStatus::ok) {
             fail(std::move(response));
             return;
           }
           (*step)(0);
         });
}

}  // namespace flexsfp::fabric
