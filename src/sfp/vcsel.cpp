#include "sfp/vcsel.hpp"

#include <algorithm>
#include <cmath>

namespace flexsfp::sfp {

VcselModel::VcselModel(const VcselParams& params, sim::Rng& rng)
    : params_(params),
      ttf_hours_(rng.lognormal(params.ttf_mu_log_hours, params.ttf_sigma)) {}

double VcselModel::power_mw(double age_hours) const {
  if (age_hours >= ttf_hours_) return 0.0;
  // Power declines super-linearly with age, reaching fail_fraction exactly
  // at the wear-out life: p(t) = p0 * (1 - (1-f) * (t/ttf)^2).
  const double x = std::max(age_hours, 0.0) / ttf_hours_;
  const double fraction = 1.0 - (1.0 - params_.fail_fraction) * x * x;
  return params_.initial_power_mw * std::max(fraction, 0.0);
}

LaserHealth VcselModel::health(double age_hours) const {
  const double p = power_mw(age_hours);
  if (age_hours >= ttf_hours_ ||
      p <= params_.fail_fraction * params_.initial_power_mw) {
    return LaserHealth::failed;
  }
  if (p < params_.warn_fraction * params_.initial_power_mw) {
    return LaserHealth::degrading;
  }
  return LaserHealth::nominal;
}

OpticalFault VcselModel::diagnose(double age_hours) const {
  // A driver fault kills modulation while the laser bias telemetry still
  // reads healthy power; degradation shows the opposite signature.
  if (driver_fault_) return OpticalFault::driver_fault;
  if (health(age_hours) != LaserHealth::nominal) {
    return OpticalFault::laser_degradation;
  }
  return OpticalFault::none;
}

}  // namespace flexsfp::sfp
