// Egress arbiter: the merge point of Figure 1 where data-plane traffic and
// control-plane traffic share one transmit interface. Serializes at the
// interface line rate, so the "control traffic is negligible" assumption of
// §4.1 becomes a measurable property instead of an assumption.
#pragma once

#include <functional>

#include "sim/link.hpp"

namespace flexsfp::sfp {

class EgressArbiter final : public sim::QueuedServer {
 public:
  EgressArbiter(sim::Simulation& sim, sim::DataRate line_rate,
                std::size_t queue_capacity = 64);

  void set_output(std::function<void(net::PacketPtr)> output) {
    output_ = std::move(output);
  }

 protected:
  [[nodiscard]] sim::TimePs service_time(const net::Packet& packet) override;
  void finish(net::PacketPtr packet) override;

 private:
  sim::SerializationTimer line_rate_;
  std::function<void(net::PacketPtr)> output_;
};

}  // namespace flexsfp::sfp
