#include "sfp/standard_sfp.hpp"

#include <algorithm>

namespace flexsfp::sfp {

StandardSfp::StandardSfp(sim::Simulation& sim, sim::TimePs serdes_latency_ps)
    : sim_(sim), serdes_latency_ps_(serdes_latency_ps) {
  const std::string name = sim_.metrics().unique_name("standard-sfp");
  for (std::size_t port = 0; port < 2; ++port) {
    meters_[port].bind(sim_.metrics(), "sfp.ingress",
                       {{"port", std::to_string(port)}, {"sfp", name}});
  }
}

void StandardSfp::inject(int port, net::PacketPtr packet) {
  meters_[static_cast<std::size_t>(port)].record(packet->size());
  const int egress = port == edge_port ? optical_port : edge_port;
  auto& handler = egress_handlers_[static_cast<std::size_t>(egress)];
  if (!handler) return;
  sim_.schedule_in(serdes_latency_ps_,
                   [&handler, packet = std::move(packet)]() mutable {
                     handler(std::move(packet));
                   });
}

void StandardSfp::set_egress_handler(
    int port, std::function<void(net::PacketPtr)> handler) {
  egress_handlers_.at(static_cast<std::size_t>(port)) = std::move(handler);
}

hw::PowerBreakdown StandardSfp::power(sim::TimePs elapsed,
                                      sim::DataRate line_rate) const {
  const double bps = std::max(meters_[0].bits_per_second(elapsed),
                              meters_[1].bits_per_second(elapsed));
  const double utilization =
      line_rate.bps() > 0 ? bps / double(line_rate.bps()) : 0.0;
  return hw::PowerModel::standard_sfp(utilization);
}

}  // namespace flexsfp::sfp
