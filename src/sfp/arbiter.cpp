#include "sfp/arbiter.hpp"

namespace flexsfp::sfp {

EgressArbiter::EgressArbiter(sim::Simulation& sim, sim::DataRate line_rate,
                             std::size_t queue_capacity)
    : sim::QueuedServer(sim, queue_capacity, "arbiter"),
      line_rate_(line_rate) {}

sim::TimePs EgressArbiter::service_time(const net::Packet& packet) {
  return line_rate_(packet.wire_size());
}

void EgressArbiter::finish(net::PacketPtr packet) {
  if (sim().flight().sampled(packet->id())) {
    sim().flight().record(packet->id(), flight_stage(), obs::HopKind::egress,
                          sim().now(),
                          static_cast<std::uint32_t>(queue_depth()));
  }
  if (output_) output_(std::move(packet));
}

}  // namespace flexsfp::sfp
