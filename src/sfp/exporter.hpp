// Control-plane flow exporter: the Active-CP "originate traffic" role in
// practice (§3: "a FlexSFP could export NetFlow-like stats"). Periodically
// sweeps the FlowStats cache and emits UDP export datagrams from the
// embedded control plane toward a collector.
#pragma once

#include <cstdint>

#include "apps/telemetry.hpp"
#include "sfp/flexsfp.hpp"

namespace flexsfp::sfp {

/// Wire format of one exported record (48 bytes, NetFlow-v5-shaped).
struct ExportRecord {
  static constexpr std::size_t size() { return 48; }

  net::FiveTuple tuple;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t first_seen_us = 0;
  std::uint64_t last_seen_us = 0;
  std::uint8_t tcp_flags = 0;

  [[nodiscard]] static ExportRecord from_flow(const apps::FlowRecord& flow);
  void serialize_to(net::BytesSpan data, std::size_t offset) const;
  [[nodiscard]] static std::optional<ExportRecord> parse(net::BytesView data,
                                                         std::size_t offset);
};

struct FlowExporterConfig {
  sim::TimePs interval_ps = 1'000'000'000'000;  // 1 s sweep
  net::MacAddress collector_mac;
  net::Ipv4Address collector_ip;
  net::Ipv4Address exporter_ip;
  std::uint16_t collector_port = 2055;
  std::uint16_t source_port = 2055;
  /// Records per datagram (bounds frame size).
  std::size_t max_records_per_packet = 24;
  /// Which stage of the running app holds the flow cache.
  std::string stage_name = "flowstats";
  /// Egress side the collector lives on.
  int egress_port = FlexSfpModule::edge_port;
};

class FlowExporter {
 public:
  FlowExporter(sim::Simulation& sim, FlexSfpModule& module,
               FlowExporterConfig config);

  /// Schedule periodic sweeps (call once; runs until `stop()`).
  void start();
  void stop() { running_ = false; }

  /// Registry series exporter.datagrams / exporter.records.
  [[nodiscard]] std::uint64_t datagrams_sent() const {
    return sim_.metrics().value(datagrams_id_);
  }
  [[nodiscard]] std::uint64_t records_exported() const {
    return sim_.metrics().value(records_id_);
  }

  /// Decode an export datagram's records (for collectors and tests);
  /// nullopt when the packet is not an export datagram.
  [[nodiscard]] static std::optional<std::vector<ExportRecord>> decode(
      const net::Packet& packet, std::uint16_t collector_port = 2055);

 private:
  void sweep();
  void emit(const std::vector<apps::FlowRecord>& flows);

  sim::Simulation& sim_;
  FlexSfpModule& module_;
  FlowExporterConfig config_;
  bool running_ = false;
  obs::MetricId datagrams_id_;
  obs::MetricId records_id_;
  std::uint32_t sequence_ = 0;
};

}  // namespace flexsfp::sfp
