#include "sfp/shell.hpp"

#include "hw/resource_model.hpp"
#include "net/headers.hpp"

namespace flexsfp::sfp {

void set_egress_hint(net::Packet& packet, int port) {
  packet.set_user_metadata(kEgressHintTag |
                           std::uint64_t(std::uint8_t(port)));
}

void clear_egress_hint(net::Packet& packet) {
  if ((packet.user_metadata() & kEgressHintTagMask) == kEgressHintTag) {
    packet.set_user_metadata(0);
  }
}

std::optional<int> egress_hint(const net::Packet& packet) {
  const std::uint64_t v = packet.user_metadata();
  if ((v & kEgressHintTagMask) != kEgressHintTag) return std::nullopt;
  return static_cast<int>(v & 0xFFull);
}

std::string to_string(ShellKind kind) {
  switch (kind) {
    case ShellKind::one_way_filter: return "One-Way-Filter";
    case ShellKind::two_way_core: return "Two-Way-Core";
    case ShellKind::active_cp: return "Active-CP";
  }
  return "shell(?)";
}

ArchitectureShell::ArchitectureShell(sim::Simulation& sim, ppe::PpeAppPtr app,
                                     ShellConfig config)
    : sim_(sim), config_(config), name_(sim.metrics().unique_name("shell")) {
  for (std::size_t port = 0; port < 2; ++port) {
    ingress_meters_[port].bind(
        sim_.metrics(), "shell.ingress",
        {{"port", std::to_string(port)}, {"shell", name_}});
  }
  control_punts_id_ =
      sim_.metrics().counter("shell.control_punts", {{"shell", name_}});
  degraded_forwards_id_ =
      sim_.metrics().counter("shell.degraded_forwards", {{"shell", name_}});
  degraded_gauge_id_ =
      sim_.metrics().gauge("shell.degraded", {{"shell", name_}});
  egress_hints_id_ =
      sim_.metrics().counter("shell.egress_hints", {{"shell", name_}});
  flight_stage_ = sim_.flight().register_stage(name_);
  engine_ = std::make_unique<ppe::Engine>(sim, std::move(app),
                                          config.datapath,
                                          config.ppe_queue_capacity);
  for (std::size_t port = 0; port < 2; ++port) {
    arbiters_[port] = std::make_unique<EgressArbiter>(
        sim, config.line_rate, config.arbiter_queue_capacity);
    arbiters_[port]->set_output([this, port](net::PacketPtr packet) {
      deliver_egress(static_cast<int>(port), std::move(packet));
    });
  }

  // Forwarded packets leave on the opposite interface from where they
  // entered — unless an egress hint pins the interface (multi-port fabric
  // glue, hairpin forwarding); for the one-way shell the fallback is always
  // the configured egress.
  engine_->set_forward_handler([this](net::PacketPtr packet) {
    const int fallback =
        packet->ingress_port() == edge_port ? optical_port : edge_port;
    const int egress = resolve_egress(*packet, fallback);
    arbiters_[static_cast<std::size_t>(egress)]->handle_packet(
        std::move(packet));
  });
  engine_->set_control_handler(
      [this](net::PacketPtr packet) { punt_to_control(std::move(packet)); });
}

int ArchitectureShell::resolve_egress(const net::Packet& packet,
                                      int fallback) {
  const auto hint = egress_hint(packet);
  if (!hint || (*hint != edge_port && *hint != optical_port)) return fallback;
  sim_.metrics().add(egress_hints_id_);
  return *hint;
}

bool ArchitectureShell::terminates_locally(const net::Packet& packet) const {
  if (config_.kind != ShellKind::active_cp) return false;
  const auto eth = net::EthernetHeader::parse(packet.data(), 0);
  return eth && eth->dst == config_.module_mac;
}

void ArchitectureShell::inject(int port, net::PacketPtr packet) {
  packet->set_ingress_port(port);
  packet->set_ingress_time_ps(sim_.now());
  ingress_meters_[static_cast<std::size_t>(port)].record(packet->size());
  if (sim_.flight().sampled(packet->id())) {
    sim_.flight().record(packet->id(), flight_stage_, obs::HopKind::ingress,
                         sim_.now(), 0, std::uint64_t(port));
  }

  // The MAC/PCS pipeline delays the frame before the demux sees it.
  sim_.schedule_in(config_.interface_latency_ps, [this, port,
                                                  token = lifetime_.token(),
                                                  packet =
                                                      std::move(packet)]() mutable {
    if (!token.alive()) return;  // shell torn down while the frame crossed

    // Demux step of Figure 1: management frames (and, for ActiveCp, frames
    // addressed to the module) go to the control plane.
    if (is_mgmt_frame(*packet) || terminates_locally(*packet)) {
      punt_to_control(std::move(packet));
      return;
    }

    // Degraded passthrough: the PPE is faulted or mid-failed-reconfig, so
    // the shell behaves like a standard SFP — straight wire to the opposite
    // interface. Mgmt frames were already punted above, so the control
    // plane can still quarantine/redeploy this module.
    if (degraded_) {
      sim_.metrics().add(degraded_forwards_id_);
      if (sim_.flight().sampled(packet->id())) {
        sim_.flight().record(packet->id(), flight_stage_,
                             obs::HopKind::degraded, sim_.now(), 0,
                             std::uint64_t(port));
      }
      const int egress =
          resolve_egress(*packet, port == edge_port ? optical_port : edge_port);
      arbiters_[static_cast<std::size_t>(egress)]->handle_packet(
          std::move(packet));
      return;
    }

    switch (config_.kind) {
      case ShellKind::one_way_filter: {
        const bool processed_direction =
            (config_.direction == PpeDirection::edge_to_optical &&
             port == edge_port) ||
            (config_.direction == PpeDirection::optical_to_edge &&
             port == optical_port);
        if (processed_direction) {
          engine_->handle_packet(std::move(packet));
        } else {
          // Reverse path: straight to the egress arbiter, merging with any
          // control-plane traffic (Figure 1a's aggregation).
          const int egress = resolve_egress(
              *packet, port == edge_port ? optical_port : edge_port);
          arbiters_[static_cast<std::size_t>(egress)]->handle_packet(
              std::move(packet));
        }
        break;
      }
      case ShellKind::two_way_core:
      case ShellKind::active_cp:
        // Aggregation step of Figure 1b: both directions share the PPE.
        engine_->handle_packet(std::move(packet));
        break;
    }
  });
}

void ArchitectureShell::set_egress_handler(
    int port, std::function<void(net::PacketPtr)> handler) {
  egress_handlers_.at(static_cast<std::size_t>(port)) = std::move(handler);
}

void ArchitectureShell::set_degraded(bool degraded) {
  degraded_ = degraded;
  sim_.metrics().set(degraded_gauge_id_, degraded ? 1 : 0);
}

void ArchitectureShell::send_from_control(int port, net::PacketPtr packet) {
  arbiters_.at(static_cast<std::size_t>(port))->handle_packet(std::move(packet));
}

void ArchitectureShell::punt_to_control(net::PacketPtr packet) {
  sim_.metrics().add(control_punts_id_);
  if (sim_.flight().sampled(packet->id())) {
    sim_.flight().record(packet->id(), flight_stage_, obs::HopKind::punt,
                         sim_.now());
  }
  if (control_rx_) control_rx_(std::move(packet));
}

void ArchitectureShell::deliver_egress(int port, net::PacketPtr packet) {
  if (!egress_handlers_[static_cast<std::size_t>(port)]) return;
  // Egress MAC/PCS latency. The handler is re-resolved through `this` at
  // fire time (guarded by the lifetime token) — capturing a reference to the
  // member would dangle if the shell were torn down first.
  sim_.schedule_in(config_.interface_latency_ps,
                   [this, port, token = lifetime_.token(),
                    packet = std::move(packet)]() mutable {
                     if (!token.alive()) return;
                     auto& handler =
                         egress_handlers_[static_cast<std::size_t>(port)];
                     if (handler) handler(std::move(packet));
                   });
}

hw::ResourceUsage ArchitectureShell::shell_overhead_resources() const {
  using RM = hw::ResourceModel;
  const std::uint32_t w = config_.datapath.width_bits;
  hw::ResourceUsage usage;
  // Ingress demux (ethertype compare + steering) per interface.
  usage += RM::control_fsm(4, w);
  usage += RM::control_fsm(4, w);
  // Egress arbiters with their merge FIFOs.
  usage += RM::stream_fifo(64, 72);
  usage += RM::stream_fifo(64, 72);
  usage += RM::control_fsm(6, w);
  usage += RM::control_fsm(6, w);
  if (config_.kind != ShellKind::one_way_filter) {
    // Aggregator in front of the shared PPE plus the post-PPE demux — the
    // sub-linear extra hardware of the Two-Way-Core.
    usage += RM::stream_fifo(128, 72);
    usage += RM::control_fsm(8, w);
  }
  return usage;
}

}  // namespace flexsfp::sfp
