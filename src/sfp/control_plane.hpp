// The embedded (softcore-class) control plane: a Mi-V RV32 running a
// lightweight loop that performs startup configuration, answers management
// requests (table/counter access) and drives the over-the-network
// reprogramming FSM of §4.2: authenticate reconfiguration packets, assemble
// the bitstream, stage it to SPI flash, trigger a reboot.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hw/bitstream.hpp"
#include "ppe/app.hpp"
#include "sfp/mgmt_protocol.hpp"
#include "sim/simulation.hpp"

namespace flexsfp::sfp {

/// One step of the boot sequence the paper assigns to the Mi-V core:
/// "startup configurations of the transceivers, laser driver and limiting
/// amplifier and the NAT table".
struct BootStep {
  std::string name;
  sim::TimePs duration;
};

[[nodiscard]] std::vector<BootStep> default_boot_sequence();
[[nodiscard]] sim::TimePs boot_duration(const std::vector<BootStep>& steps);

enum class ReconfigState : std::uint8_t {
  idle,
  receiving,  // between begin and commit
  staging,    // verified, handed to the module for flash + reboot
};

struct ControlPlaneConfig {
  hw::AuthKey key;
  net::MacAddress mac;  // source MAC of responses / originated traffic
  /// IP identity of the control plane. When set (Active-CP model, §4.1's
  /// third architecture), the CP terminates traffic addressed to it — e.g.
  /// it answers ICMP echo so operators can ping the transceiver itself.
  std::optional<net::Ipv4Address> ip;
  /// Softcore time to parse + execute one management op (a Mi-V at ~50 MHz
  /// spends a few microseconds per request).
  sim::TimePs op_latency_ps = 2'000'000;  // 2 us
  /// Maximum chunks a transfer may declare (bounds reassembly memory).
  std::size_t max_chunks = 4096;
};

class ControlPlane {
 public:
  ControlPlane(sim::Simulation& sim, ControlPlaneConfig config);

  /// The running app, for table/counter ops (owned by the engine).
  void set_app_provider(std::function<ppe::PpeApp*()> provider) {
    app_provider_ = std::move(provider);
  }
  /// Send a response/originated frame out of the module (wired to
  /// ArchitectureShell::send_from_control on the edge port).
  void set_transmit(std::function<void(net::PacketPtr)> transmit) {
    transmit_ = std::move(transmit);
  }
  /// Called when a verified bitstream is ready to stage (module flashes it
  /// and reboots).
  void set_reconfig_sink(std::function<void(hw::Bitstream)> sink) {
    reconfig_sink_ = std::move(sink);
  }

  /// Entry point for frames the shell punts to the control plane.
  void handle_packet(net::PacketPtr packet);

  [[nodiscard]] ReconfigState reconfig_state() const { return state_; }
  /// Reset the FSM (module calls this after the reboot completes).
  void reconfig_reset() {
    state_ = ReconfigState::idle;
    chunks_.clear();
    chunks_seen_ = 0;
  }

  // --- stats ---------------------------------------------------------------
  [[nodiscard]] std::uint64_t requests_processed() const { return processed_; }
  [[nodiscard]] std::uint64_t auth_failures() const { return auth_failures_; }
  [[nodiscard]] std::uint64_t responses_sent() const { return responses_; }
  [[nodiscard]] std::uint64_t pings_answered() const { return pings_; }

 private:
  void execute(MgmtRequest request, net::MacAddress reply_to);
  /// Active-CP termination path: answer ICMP echo addressed to our IP.
  void handle_terminated(const net::Packet& packet);
  [[nodiscard]] MgmtResponse dispatch(const MgmtRequest& request);
  [[nodiscard]] MgmtResponse handle_reconfig(const MgmtRequest& request);
  void respond(const MgmtResponse& response, net::MacAddress reply_to);

  sim::Simulation& sim_;
  ControlPlaneConfig config_;
  std::function<ppe::PpeApp*()> app_provider_;
  std::function<void(net::PacketPtr)> transmit_;
  std::function<void(hw::Bitstream)> reconfig_sink_;

  ReconfigState state_ = ReconfigState::idle;
  std::vector<net::Bytes> chunks_;
  std::size_t chunks_seen_ = 0;

  std::uint64_t processed_ = 0;
  std::uint64_t auth_failures_ = 0;
  std::uint64_t responses_ = 0;
  std::uint64_t pings_ = 0;
};

}  // namespace flexsfp::sfp
