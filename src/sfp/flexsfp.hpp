// The FlexSFP module: the paper's prototype (§4.3) as one object — an
// MPF200T-class FPGA carrying an architecture shell + PPE app, a Mi-V
// control plane, a 128 Mb SPI flash with multiple design slots, two 10 Gb/s
// interfaces and a VCSEL whose wear the module can observe from inside.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "hw/device.hpp"
#include "hw/power_model.hpp"
#include "hw/spi_flash.hpp"
#include "ppe/registry.hpp"
#include "sfp/control_plane.hpp"
#include "sfp/shell.hpp"
#include "sfp/vcsel.hpp"

namespace flexsfp::sfp {

enum class ModuleState : std::uint8_t {
  booting,
  running,
  rebooting,  // reconfiguration in progress: datapath dark
  failed,     // optical failure
  degraded,   // PPE faulted / reconfig failed: passthrough, CP reachable
};

[[nodiscard]] std::string to_string(ModuleState state);

struct FlexSfpConfig {
  ShellConfig shell{};
  hw::AuthKey auth_key{0x5f5f464c45585f5f};
  /// IP identity of the embedded control plane (Active-CP shells terminate
  /// and answer traffic addressed to it, e.g. ICMP echo).
  std::optional<net::Ipv4Address> cp_ip;
  /// Flash slot reconfigurations are staged into (slot 0 = golden image).
  std::size_t staging_slot = 1;
  /// FPGA configuration reload time after a reconfig commit.
  sim::TimePs fpga_reload_ps = 150'000'000'000;  // 150 ms
  /// Run the boot sequence at construction time (tests may disable to get
  /// a module that is usable at t = 0).
  bool boot_at_start = true;
  std::uint64_t vcsel_seed = 42;
};

class FlexSfpModule {
 public:
  /// Build a module running `app` on the MPF200T prototype device.
  FlexSfpModule(sim::Simulation& sim, ppe::PpeAppPtr app,
                FlexSfpConfig config = {});

  static constexpr int edge_port = ArchitectureShell::edge_port;
  static constexpr int optical_port = ArchitectureShell::optical_port;

  /// Packet arriving at the module. While booting/rebooting/failed the
  /// datapath is dark and the packet is lost (counted).
  void inject(int port, net::PacketPtr packet);
  void set_egress_handler(int port,
                          std::function<void(net::PacketPtr)> handler);

  [[nodiscard]] ModuleState state() const { return state_; }
  /// Registry series module.dark_drops{module=..}.
  [[nodiscard]] std::uint64_t packets_lost_while_dark() const {
    return sim_.metrics().value(dark_drops_id_);
  }

  [[nodiscard]] ArchitectureShell& shell() { return *shell_; }
  [[nodiscard]] ControlPlane& control_plane() { return control_plane_; }
  [[nodiscard]] hw::SpiFlash& flash() { return flash_; }
  [[nodiscard]] const hw::FpgaDevice& device() const { return device_; }
  [[nodiscard]] ppe::PpeApp& app() { return shell_->engine().app(); }

  // --- reporting ------------------------------------------------------------
  /// Full design breakdown: Mi-V + electrical I/F + optical I/F + app
  /// (+ shell glue) — the structure of the paper's Table 1.
  [[nodiscard]] hw::ResourceBreakdown resource_report() const;
  /// Does the current design fit the device?
  [[nodiscard]] bool design_fits() const;

  /// Module power right now: optics at current utilization + FPGA.
  /// `elapsed` is the span utilization is averaged over.
  [[nodiscard]] hw::PowerBreakdown power(sim::TimePs elapsed) const;

  // --- failure model ---------------------------------------------------------
  [[nodiscard]] const VcselModel& vcsel() const { return *vcsel_; }
  [[nodiscard]] VcselModel& vcsel() { return *vcsel_; }
  /// Age the laser to `age_hours` of operation and fail the module if it
  /// wore out; returns the health telemetry.
  LaserHealth check_laser(double age_hours);

  // --- graceful degradation --------------------------------------------------
  /// Drop to the degraded passthrough mode: the shell bypasses the PPE
  /// (dumb-cable cut-through) while the control plane stays reachable for
  /// in-band recovery. Entered automatically when a staged reconfiguration
  /// fails mid-deploy; call fault_ppe() to inject a PPE fault directly.
  void degrade();
  /// Inject a PPE fault (a chaos experiment's hook): the engine can no
  /// longer be trusted, so the shell falls back to passthrough.
  void fault_ppe() { degrade(); }
  [[nodiscard]] bool is_degraded() const {
    return state_ == ModuleState::degraded;
  }
  /// Registry series module.degradations{module=..}; module.degraded is the
  /// current-mode gauge.
  [[nodiscard]] std::uint64_t degradations() const {
    return sim_.metrics().value(degradations_id_);
  }
  /// Reboot into the golden image (SpiFlash slot 0) — the local recovery
  /// path out of degraded mode. False when slot 0 is empty or unusable.
  bool reboot_from_golden();

  // --- reconfiguration (also reachable in-band via the mgmt protocol) --------
  /// Stage `bitstream` to flash and reboot into it. Returns false when the
  /// app name is unknown to the registry or flash staging failed.
  bool reconfigure(const hw::Bitstream& bitstream);
  [[nodiscard]] std::uint64_t reconfigurations() const {
    return sim_.metrics().value(reconfigs_id_);
  }
  /// Duration of the most recent dark window (flash + reload), for the
  /// reconfiguration-outage experiment.
  [[nodiscard]] sim::TimePs last_outage_ps() const { return last_outage_; }

 private:
  sim::Simulation& sim_;
  FlexSfpConfig config_;
  std::string name_;
  hw::FpgaDevice device_;
  hw::SpiFlash flash_;
  std::unique_ptr<ArchitectureShell> shell_;
  ControlPlane control_plane_;
  std::unique_ptr<VcselModel> vcsel_;
  ModuleState state_ = ModuleState::running;
  obs::MetricId dark_drops_id_;
  obs::MetricId reconfigs_id_;
  obs::MetricId degradations_id_;
  obs::MetricId degraded_gauge_id_;
  std::uint16_t flight_stage_ = 0;
  sim::TimePs last_outage_ = 0;
  sim::TimePs run_started_ = 0;
};

}  // namespace flexsfp::sfp
