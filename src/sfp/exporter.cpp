#include "sfp/exporter.hpp"

#include <algorithm>

#include "net/builder.hpp"

namespace flexsfp::sfp {

namespace {
constexpr std::uint16_t export_magic = 0x4658;  // "FX"
constexpr std::uint8_t export_version = 1;
}  // namespace

ExportRecord ExportRecord::from_flow(const apps::FlowRecord& flow) {
  ExportRecord record;
  record.tuple = flow.tuple;
  record.packets = flow.packets;
  record.bytes = flow.bytes;
  record.first_seen_us =
      static_cast<std::uint64_t>(flow.first_seen_ps / 1'000'000);
  record.last_seen_us =
      static_cast<std::uint64_t>(flow.last_seen_ps / 1'000'000);
  record.tcp_flags = flow.tcp_flags_seen;
  return record;
}

void ExportRecord::serialize_to(net::BytesSpan data,
                                std::size_t offset) const {
  net::write_be32(data, offset, tuple.src.value());
  net::write_be32(data, offset + 4, tuple.dst.value());
  net::write_be16(data, offset + 8, tuple.src_port);
  net::write_be16(data, offset + 10, tuple.dst_port);
  net::write_u8(data, offset + 12, tuple.protocol);
  net::write_u8(data, offset + 13, tcp_flags);
  net::write_be16(data, offset + 14, 0);  // reserved
  net::write_be64(data, offset + 16, packets);
  net::write_be64(data, offset + 24, bytes);
  net::write_be64(data, offset + 32, first_seen_us);
  net::write_be64(data, offset + 40, last_seen_us);
}

std::optional<ExportRecord> ExportRecord::parse(net::BytesView data,
                                                std::size_t offset) {
  if (offset + size() > data.size()) return std::nullopt;
  ExportRecord record;
  record.tuple.src = net::Ipv4Address{net::read_be32(data, offset)};
  record.tuple.dst = net::Ipv4Address{net::read_be32(data, offset + 4)};
  record.tuple.src_port = net::read_be16(data, offset + 8);
  record.tuple.dst_port = net::read_be16(data, offset + 10);
  record.tuple.protocol = data[offset + 12];
  record.tcp_flags = data[offset + 13];
  record.packets = net::read_be64(data, offset + 16);
  record.bytes = net::read_be64(data, offset + 24);
  record.first_seen_us = net::read_be64(data, offset + 32);
  record.last_seen_us = net::read_be64(data, offset + 40);
  return record;
}

FlowExporter::FlowExporter(sim::Simulation& sim, FlexSfpModule& module,
                           FlowExporterConfig config)
    : sim_(sim), module_(module), config_(std::move(config)) {
  // The wire format's count field is one byte: more than 255 records per
  // datagram would silently truncate (count mod 256) and desynchronize
  // collectors, so clamp the configuration up front.
  config_.max_records_per_packet =
      std::min<std::size_t>(config_.max_records_per_packet, 255);
  const std::string name = sim_.metrics().unique_name("exporter");
  datagrams_id_ =
      sim_.metrics().counter("exporter.datagrams", {{"exporter", name}});
  records_id_ =
      sim_.metrics().counter("exporter.records", {{"exporter", name}});
}

void FlowExporter::start() {
  if (running_) return;
  running_ = true;
  sim_.schedule_in(config_.interval_ps, [this]() { sweep(); });
}

void FlowExporter::sweep() {
  if (!running_) return;
  auto* stage = module_.app().find_stage(config_.stage_name);
  auto* flow_stats = dynamic_cast<apps::FlowStats*>(stage);
  if (flow_stats != nullptr) {
    const auto flows = flow_stats->sweep(sim_.now());
    if (!flows.empty()) emit(flows);
  }
  sim_.schedule_in(config_.interval_ps, [this]() { sweep(); });
}

void FlowExporter::emit(const std::vector<apps::FlowRecord>& flows) {
  std::size_t index = 0;
  while (index < flows.size()) {
    const std::size_t count =
        std::min(config_.max_records_per_packet, flows.size() - index);

    // Payload: magic(2) version(1) count(1) sequence(4) records.
    net::Bytes payload(8 + count * ExportRecord::size());
    net::write_be16(payload, 0, export_magic);
    payload[2] = export_version;
    payload[3] = static_cast<std::uint8_t>(count);
    net::write_be32(payload, 4, sequence_++);
    for (std::size_t i = 0; i < count; ++i) {
      ExportRecord::from_flow(flows[index + i])
          .serialize_to(payload, 8 + i * ExportRecord::size());
    }

    auto frame = sim_.packet_pool().make();
    net::PacketBuilder()
        .ethernet(config_.collector_mac, module_.shell().config().module_mac)
        .ipv4(config_.exporter_ip, config_.collector_ip, net::IpProto::udp)
        .udp(config_.source_port, config_.collector_port)
        .payload(payload)
        .build_into(frame->data());
    module_.shell().send_from_control(config_.egress_port, std::move(frame));
    sim_.metrics().add(datagrams_id_);
    sim_.metrics().add(records_id_, count);
    index += count;
  }
}

std::optional<std::vector<ExportRecord>> FlowExporter::decode(
    const net::Packet& packet, std::uint16_t collector_port) {
  const auto parsed = net::parse_packet(packet.data());
  if (!parsed.ok() || !parsed.outer.udp ||
      parsed.outer.udp->dst_port != collector_port) {
    return std::nullopt;
  }
  const auto& data = packet.data();
  const std::size_t payload = parsed.outer.payload_offset;
  if (payload + 8 > data.size()) return std::nullopt;
  if (net::read_be16(data, payload) != export_magic) return std::nullopt;
  if (data[payload + 2] != export_version) return std::nullopt;
  const std::size_t count = data[payload + 3];

  // Bound the record count by what the UDP datagram actually carries: a
  // short frame padded to the Ethernet minimum has bytes past the datagram
  // end, and a corrupted count would otherwise decode records from padding.
  if (parsed.outer.udp->length < net::UdpHeader::size() + 8) {
    return std::nullopt;
  }
  const std::size_t udp_payload =
      std::size_t{parsed.outer.udp->length} - net::UdpHeader::size();
  if (8 + count * ExportRecord::size() > udp_payload) return std::nullopt;

  std::vector<ExportRecord> records;
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto record =
        ExportRecord::parse(data, payload + 8 + i * ExportRecord::size());
    if (!record) return std::nullopt;
    records.push_back(*record);
  }
  return records;
}

}  // namespace flexsfp::sfp
