#include "sfp/control_plane.hpp"

#include <algorithm>

#include "net/checksum.hpp"
#include "net/headers.hpp"
#include "net/parser.hpp"

namespace flexsfp::sfp {

using namespace sim;  // time literals

std::vector<BootStep> default_boot_sequence() {
  return {
      {"transceiver-init", 2_ms},
      {"laser-driver-init", 1_ms},
      {"limiting-amplifier-init", 1_ms},
      {"table-load", 4_ms},
      {"csr-defaults", 100_us},
  };
}

sim::TimePs boot_duration(const std::vector<BootStep>& steps) {
  sim::TimePs total = 0;
  for (const auto& step : steps) total += step.duration;
  return total;
}

ControlPlane::ControlPlane(sim::Simulation& sim, ControlPlaneConfig config)
    : sim_(sim), config_(config) {}

void ControlPlane::handle_packet(net::PacketPtr packet) {
  const auto body = mgmt_body(*packet);
  if (!body) {
    // ActiveCp-terminated traffic: the CP participates in the data plane
    // (§4.1's third model). Currently it speaks ICMP echo.
    handle_terminated(*packet);
    return;
  }
  auto request = MgmtRequest::parse(*body);
  const auto eth = net::EthernetHeader::parse(packet->data(), 0);
  const net::MacAddress reply_to = eth ? eth->src : net::MacAddress{};
  if (!request) {
    respond(MgmtResponse{.seq = 0, .status = MgmtStatus::malformed, .value = 0, .payload = {}}, reply_to);
    return;
  }
  // The softcore takes op_latency to pick the request off its ring and
  // execute it.
  sim_.schedule_in(config_.op_latency_ps,
                   [this, request = std::move(*request), reply_to]() mutable {
                     execute(std::move(request), reply_to);
                   });
}

void ControlPlane::execute(MgmtRequest request, net::MacAddress reply_to) {
  ++processed_;
  if (!request.verify(config_.key)) {
    ++auth_failures_;
    respond(MgmtResponse{.seq = request.seq, .status = MgmtStatus::auth_failed, .value = 0, .payload = {}},
            reply_to);
    return;
  }
  respond(dispatch(request), reply_to);
}

MgmtResponse ControlPlane::dispatch(const MgmtRequest& request) {
  MgmtResponse response;
  response.seq = request.seq;

  ppe::PpeApp* app = app_provider_ ? app_provider_() : nullptr;

  switch (request.op) {
    case MgmtOp::ping:
      response.value = request.value;  // echo
      return response;

    case MgmtOp::table_insert:
      if (app == nullptr) {
        response.status = MgmtStatus::bad_state;
      } else if (!app->table_insert(request.table, request.key,
                                    request.value)) {
        const auto names = app->table_names();
        const bool known = std::find(names.begin(), names.end(),
                                     request.table) != names.end();
        response.status =
            known ? MgmtStatus::table_full : MgmtStatus::unknown_table;
      }
      return response;

    case MgmtOp::table_erase:
      if (app == nullptr) {
        response.status = MgmtStatus::bad_state;
      } else if (!app->table_erase(request.table, request.key)) {
        response.status = MgmtStatus::not_found;
      }
      return response;

    case MgmtOp::table_lookup: {
      if (app == nullptr) {
        response.status = MgmtStatus::bad_state;
        return response;
      }
      const auto hit = app->table_lookup(request.table, request.key);
      if (!hit) {
        response.status = MgmtStatus::not_found;
      } else {
        response.value = *hit;
      }
      return response;
    }

    case MgmtOp::counter_read: {
      if (app == nullptr) {
        response.status = MgmtStatus::bad_state;
        return response;
      }
      // key selects the snapshot index; payload returns packets|bytes.
      const auto snapshots = app->counters();
      if (request.key >= snapshots.size()) {
        response.status = MgmtStatus::not_found;
        return response;
      }
      const auto& snap = snapshots[static_cast<std::size_t>(request.key)];
      response.payload.resize(16);
      net::write_be64(response.payload, 0, snap.packets);
      net::write_be64(response.payload, 8, snap.bytes);
      response.value = snap.packets;
      return response;
    }

    case MgmtOp::reconfig_begin:
    case MgmtOp::reconfig_chunk:
    case MgmtOp::reconfig_commit:
    case MgmtOp::reconfig_abort:
      return handle_reconfig(request);
  }
  response.status = MgmtStatus::unknown_op;
  return response;
}

MgmtResponse ControlPlane::handle_reconfig(const MgmtRequest& request) {
  MgmtResponse response;
  response.seq = request.seq;

  switch (request.op) {
    case MgmtOp::reconfig_begin: {
      if (state_ != ReconfigState::idle) {
        response.status = MgmtStatus::bad_state;
        return response;
      }
      if (request.payload.size() < 2) {
        response.status = MgmtStatus::malformed;
        return response;
      }
      const std::size_t total_chunks = net::read_be16(request.payload, 0);
      if (total_chunks == 0 || total_chunks > config_.max_chunks) {
        response.status = MgmtStatus::malformed;
        return response;
      }
      chunks_.assign(total_chunks, {});
      chunks_seen_ = 0;
      state_ = ReconfigState::receiving;
      return response;
    }

    case MgmtOp::reconfig_chunk: {
      if (state_ != ReconfigState::receiving) {
        response.status = MgmtStatus::bad_state;
        return response;
      }
      if (request.payload.size() < 2) {
        response.status = MgmtStatus::malformed;
        return response;
      }
      const std::size_t index = net::read_be16(request.payload, 0);
      if (index >= chunks_.size()) {
        response.status = MgmtStatus::malformed;
        return response;
      }
      if (chunks_[index].empty()) ++chunks_seen_;  // retransmits are fine
      chunks_[index].assign(request.payload.begin() + 2,
                            request.payload.end());
      return response;
    }

    case MgmtOp::reconfig_commit: {
      if (state_ != ReconfigState::receiving ||
          chunks_seen_ != chunks_.size()) {
        response.status = MgmtStatus::bad_state;
        return response;
      }
      net::Bytes image;
      for (const auto& chunk : chunks_) {
        image.insert(image.end(), chunk.begin(), chunk.end());
      }
      const auto bitstream = hw::Bitstream::parse(image);
      if (!bitstream || !bitstream->verify(config_.key)) {
        // CRC or signature rejected: drop the staged data, stay usable.
        reconfig_reset();
        response.status = MgmtStatus::verify_failed;
        return response;
      }
      state_ = ReconfigState::staging;
      chunks_.clear();
      chunks_seen_ = 0;
      if (reconfig_sink_) reconfig_sink_(*bitstream);
      return response;
    }

    case MgmtOp::reconfig_abort:
      reconfig_reset();
      return response;

    default:
      response.status = MgmtStatus::unknown_op;
      return response;
  }
}

void ControlPlane::handle_terminated(const net::Packet& packet) {
  if (!config_.ip || !transmit_) return;
  const auto parsed = net::parse_packet(packet.data());
  if (!parsed.ok() || !parsed.outer.ipv4 || !parsed.outer.icmp) return;
  if (parsed.outer.ipv4->dst != *config_.ip) return;
  if (parsed.outer.icmp->type != 8) return;  // echo request only

  // Craft the reply in place on a copy: swap L2/L3 endpoints, flip the
  // ICMP type and patch both checksums.
  net::Bytes reply = packet.data();
  net::EthernetHeader eth = parsed.eth;
  std::swap(eth.dst, eth.src);
  eth.src = config_.mac;
  eth.serialize_to(reply, 0);

  const std::size_t l3 = parsed.outer.l3_offset;
  net::write_be32(reply, l3 + 12, parsed.outer.ipv4->dst.value());
  net::write_be32(reply, l3 + 16, parsed.outer.ipv4->src.value());
  // src/dst swap leaves the IPv4 header checksum unchanged (same words).

  const std::size_t l4 = parsed.outer.l4_offset;
  reply[l4] = 0;  // echo reply
  // Type changed from 8 to 0 in the high byte of the first ICMP word.
  const std::uint16_t old_word = static_cast<std::uint16_t>(
      (8 << 8) | parsed.outer.icmp->code);
  const std::uint16_t new_word = parsed.outer.icmp->code;
  const std::uint16_t patched = net::checksum_incremental_update(
      parsed.outer.icmp->checksum, old_word, new_word);
  net::write_be16(reply, l4 + 2, patched);

  ++pings_;
  auto frame = sim_.packet_pool().make(std::move(reply));
  sim_.schedule_in(config_.op_latency_ps,
                   [this, frame = std::move(frame)]() mutable {
                     transmit_(std::move(frame));
                   });
}

void ControlPlane::respond(const MgmtResponse& response,
                           net::MacAddress reply_to) {
  if (!transmit_) return;
  ++responses_;
  auto frame = sim_.packet_pool().make_from(
      make_mgmt_frame(reply_to, config_.mac, response.serialize()));
  transmit_(std::move(frame));
}

}  // namespace flexsfp::sfp
