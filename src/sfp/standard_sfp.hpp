// A plain, fixed-function SFP+ transceiver: the baseline the paper measures
// against. Pure electrical<->optical conversion — a short serdes latency and
// the optics power envelope, no processing.
#pragma once

#include <array>
#include <functional>

#include "hw/power_model.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"

namespace flexsfp::sfp {

class StandardSfp {
 public:
  explicit StandardSfp(sim::Simulation& sim,
                       sim::TimePs serdes_latency_ps = 25'000);  // 25 ns

  static constexpr int edge_port = 0;
  static constexpr int optical_port = 1;

  void inject(int port, net::PacketPtr packet);
  void set_egress_handler(int port,
                          std::function<void(net::PacketPtr)> handler);

  [[nodiscard]] const sim::TrafficMeter& meter(int port) const {
    return meters_.at(static_cast<std::size_t>(port));
  }
  /// Power draw at a utilization averaged over `elapsed`.
  [[nodiscard]] hw::PowerBreakdown power(sim::TimePs elapsed,
                                         sim::DataRate line_rate) const;

 private:
  sim::Simulation& sim_;
  sim::TimePs serdes_latency_ps_;
  std::array<std::function<void(net::PacketPtr)>, 2> egress_handlers_;
  std::array<sim::TrafficMeter, 2> meters_;
};

}  // namespace flexsfp::sfp
