#include "sfp/flexsfp.hpp"

#include "apps/register.hpp"
#include "hw/resource_model.hpp"

namespace flexsfp::sfp {

std::string to_string(ModuleState state) {
  switch (state) {
    case ModuleState::booting: return "booting";
    case ModuleState::running: return "running";
    case ModuleState::rebooting: return "rebooting";
    case ModuleState::failed: return "failed";
    case ModuleState::degraded: return "degraded";
  }
  return "state(?)";
}

FlexSfpModule::FlexSfpModule(sim::Simulation& sim, ppe::PpeAppPtr app,
                             FlexSfpConfig config)
    : sim_(sim),
      config_(config),
      name_(sim.metrics().unique_name("module")),
      device_(hw::FpgaDevice::mpf200t()),
      flash_(/*slots=*/4),
      control_plane_(sim, ControlPlaneConfig{.key = config.auth_key,
                                             .mac = config.shell.module_mac,
                                             .ip = config.cp_ip}) {
  apps::register_builtin_apps();

  dark_drops_id_ =
      sim_.metrics().counter("module.dark_drops", {{"module", name_}});
  reconfigs_id_ =
      sim_.metrics().counter("module.reconfigurations", {{"module", name_}});
  degradations_id_ =
      sim_.metrics().counter("module.degradations", {{"module", name_}});
  degraded_gauge_id_ =
      sim_.metrics().gauge("module.degraded", {{"module", name_}});
  flight_stage_ = sim_.flight().register_stage(name_);

  shell_ = std::make_unique<ArchitectureShell>(sim, std::move(app),
                                               config_.shell);
  shell_->set_control_rx([this](net::PacketPtr packet) {
    control_plane_.handle_packet(std::move(packet));
  });
  control_plane_.set_app_provider(
      [this]() -> ppe::PpeApp* { return &shell_->engine().app(); });
  control_plane_.set_transmit([this](net::PacketPtr packet) {
    shell_->send_from_control(edge_port, std::move(packet));
  });
  control_plane_.set_reconfig_sink([this](hw::Bitstream bitstream) {
    // A commit that fails mid-deploy must never black-hole the link: fall
    // back to the dumb-cable passthrough and wait for recovery.
    if (!reconfigure(bitstream)) {
      control_plane_.reconfig_reset();
      degrade();
    }
  });

  // Seed the golden image (slot 0) with the initial application.
  const auto golden = hw::Bitstream::create(
      shell_->engine().app().name(), shell_->engine().app().serialize_config(),
      config_.auth_key);
  (void)flash_.write(0, golden);

  sim::Rng vcsel_rng{config_.vcsel_seed};
  vcsel_ = std::make_unique<VcselModel>(VcselParams{}, vcsel_rng);

  if (config_.boot_at_start) {
    state_ = ModuleState::booting;
    const auto boot = boot_duration(default_boot_sequence());
    sim_.schedule_in(boot, [this]() {
      if (state_ == ModuleState::booting) {
        state_ = ModuleState::running;
        run_started_ = sim_.now();
      }
    });
  }
}

void FlexSfpModule::inject(int port, net::PacketPtr packet) {
  if (state_ != ModuleState::running && state_ != ModuleState::degraded) {
    // No light, no link: the wire drops it.
    sim_.metrics().add(dark_drops_id_);
    if (sim_.flight().sampled(packet->id())) {
      sim_.flight().record(packet->id(), flight_stage_,
                           obs::HopKind::dark_drop, sim_.now(), 0,
                           std::uint64_t(port));
    }
    return;
  }
  shell_->inject(port, std::move(packet));
}

void FlexSfpModule::set_egress_handler(
    int port, std::function<void(net::PacketPtr)> handler) {
  shell_->set_egress_handler(port, std::move(handler));
}

hw::ResourceBreakdown FlexSfpModule::resource_report() const {
  hw::ResourceBreakdown report;
  report.add("Mi-V", hw::ResourceModel::miv_rv32());
  report.add("Elec. I/F", hw::ResourceModel::ethernet_iface_electrical());
  report.add("Opt. I/F", hw::ResourceModel::ethernet_iface_optical());
  report.add(shell_->engine().app().name() + " app",
             shell_->engine().app().resource_usage(config_.shell.datapath));
  return report;
}

bool FlexSfpModule::design_fits() const {
  return device_.fits(resource_report().total() +
                      shell_->shell_overhead_resources());
}

hw::PowerBreakdown FlexSfpModule::power(sim::TimePs elapsed) const {
  // Utilization: the busier of the two directions over the window.
  const double edge_bps =
      shell_->ingress_meter(edge_port).bits_per_second(elapsed);
  const double opt_bps =
      shell_->ingress_meter(optical_port).bits_per_second(elapsed);
  const double line = double(config_.shell.line_rate.bps());
  const double utilization =
      line > 0 ? std::max(edge_bps, opt_bps) / line : 0.0;
  return hw::PowerModel::flexsfp(
      device_,
      resource_report().total() + shell_->shell_overhead_resources(),
      config_.shell.datapath.clock, utilization);
}

LaserHealth FlexSfpModule::check_laser(double age_hours) {
  const LaserHealth health = vcsel_->health(age_hours);
  if (health == LaserHealth::failed) state_ = ModuleState::failed;
  return health;
}

void FlexSfpModule::degrade() {
  if (state_ == ModuleState::degraded || state_ == ModuleState::failed) return;
  state_ = ModuleState::degraded;
  shell_->set_degraded(true);
  sim_.metrics().add(degradations_id_);
  sim_.metrics().set(degraded_gauge_id_, 1);
}

bool FlexSfpModule::reboot_from_golden() {
  const auto golden = flash_.read(0);
  if (!golden) return false;
  return reconfigure(*golden);
}

bool FlexSfpModule::reconfigure(const hw::Bitstream& bitstream) {
  if (!bitstream.verify(config_.auth_key)) return false;
  auto new_app =
      ppe::AppRegistry::instance().create(bitstream.app_name(),
                                          bitstream.config());
  if (new_app == nullptr) return false;

  const auto flash_time = flash_.write(config_.staging_slot, bitstream);
  if (!flash_time) return false;

  // Flash programming happens while the old design keeps forwarding; only
  // the FPGA reload darkens the datapath. (Simulation events are
  // std::function, hence the shared holder around the unique owner.)
  sim_.metrics().add(reconfigs_id_);
  last_outage_ = config_.fpga_reload_ps;
  auto holder = std::make_shared<ppe::PpeAppPtr>(std::move(new_app));
  sim_.schedule_in(*flash_time, [this, holder]() {
    state_ = ModuleState::rebooting;
    sim_.schedule_in(config_.fpga_reload_ps, [this, holder]() {
      shell_->engine().replace_app(std::move(*holder));
      // A successful reload clears any degraded passthrough: the fresh
      // design is trusted again.
      shell_->set_degraded(false);
      sim_.metrics().set(degraded_gauge_id_, 0);
      state_ = ModuleState::running;
      run_started_ = sim_.now();
      control_plane_.reconfig_reset();
    });
  });
  return true;
}

}  // namespace flexsfp::sfp
