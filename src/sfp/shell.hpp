// The three architecture shells of Figure 1.
//
// A shell owns the wiring between the module's two network interfaces
// (port 0 = edge/electrical connector, port 1 = optical), the Packet
// Processing Engine and the control-plane tap:
//
//   * OneWayFilter  — PPE on one direction only; the reverse direction goes
//                     straight to the egress arbiter where it merges with
//                     control-plane traffic (Figure 1a).
//   * TwoWayCore    — traffic from both interfaces is aggregated into one
//                     PPE, then demuxed to the opposite interface; the PPE
//                     must absorb twice the packet rate (Figure 1b).
//   * ActiveCp      — TwoWayCore plus a control plane that terminates and
//                     originates traffic (the "self-contained microservice
//                     node" third model).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "ppe/engine.hpp"
#include "sfp/arbiter.hpp"
#include "sfp/mgmt_protocol.hpp"

namespace flexsfp::sfp {

enum class ShellKind : std::uint8_t {
  one_way_filter = 0,
  two_way_core = 1,
  active_cp = 2,
};

[[nodiscard]] std::string to_string(ShellKind kind);

enum class PpeDirection : std::uint8_t {
  edge_to_optical = 0,
  optical_to_edge = 1,
};

// --- egress-hint side band ---------------------------------------------------
// Multi-port topologies (a module hanging off a crossbar fabric) sometimes
// need to pin which interface a packet leaves on instead of relying on the
// default cross-to-the-opposite-side rule — e.g. hairpinning a frame back
// out the interface it arrived on. The hint travels in the packet's
// user-metadata scratch word (models a side-band metadata bus): a tag byte
// on top, the port number below, so an untagged word never reads as a hint.
inline constexpr std::uint64_t kEgressHintTag = 0xE6ull << 56;
inline constexpr std::uint64_t kEgressHintTagMask = 0xFFull << 56;

void set_egress_hint(net::Packet& packet, int port);
void clear_egress_hint(net::Packet& packet);
/// The pinned egress port, or nullopt when the packet carries no hint.
[[nodiscard]] std::optional<int> egress_hint(const net::Packet& packet);

struct ShellConfig {
  ShellKind kind = ShellKind::one_way_filter;
  hw::DatapathConfig datapath{};
  PpeDirection direction = PpeDirection::edge_to_optical;  // one-way only
  std::size_t ppe_queue_capacity = 64;
  std::size_t arbiter_queue_capacity = 64;
  /// MAC/PCS traversal latency per interface crossing.
  sim::TimePs interface_latency_ps = 100'000;  // 100 ns
  /// Line rate of both interfaces.
  sim::DataRate line_rate = sim::line_rate_10g;
  /// The module's own MAC (ActiveCp terminates frames addressed to it).
  net::MacAddress module_mac;
};

class ArchitectureShell {
 public:
  ArchitectureShell(sim::Simulation& sim, ppe::PpeAppPtr app,
                    ShellConfig config);

  static constexpr int edge_port = 0;
  static constexpr int optical_port = 1;

  /// A packet arriving at the module on `port` (from the host system or
  /// from the fiber).
  void inject(int port, net::PacketPtr packet);

  /// Where packets leaving the module on `port` are delivered.
  void set_egress_handler(int port,
                          std::function<void(net::PacketPtr)> handler);
  /// Management (and, for ActiveCp, terminated) frames are delivered here.
  void set_control_rx(std::function<void(net::PacketPtr)> handler) {
    control_rx_ = std::move(handler);
  }
  /// Control-plane-originated traffic merges at the egress arbiter of
  /// `port` — the aggregation step of Figure 1a.
  void send_from_control(int port, net::PacketPtr packet);

  /// Degraded passthrough ("standard SFP" cut-through): data packets bypass
  /// the PPE and cross straight to the opposite egress arbiter. Management
  /// frames (and ActiveCp-terminated traffic) are still punted — the Mi-V
  /// stays reachable so the module can be recovered in-band. The cable
  /// degrades to a dumb cable; it never black-holes the link.
  void set_degraded(bool degraded);
  [[nodiscard]] bool degraded() const { return degraded_; }

  [[nodiscard]] ppe::Engine& engine() { return *engine_; }
  [[nodiscard]] const ppe::Engine& engine() const { return *engine_; }
  [[nodiscard]] const ShellConfig& config() const { return config_; }

  /// Fabric cost of the shell glue (demux, arbiters, CDC FIFOs) — what the
  /// Two-Way-Core's "hardware overhead ... is not linear" remark refers to.
  [[nodiscard]] hw::ResourceUsage shell_overhead_resources() const;

  // --- stats ----------------------------------------------------------------
  // Registry-backed: shell.ingress.{packets,bytes}{port=..,shell=..} and
  // shell.control_punts{shell=..}.
  [[nodiscard]] const sim::TrafficMeter& ingress_meter(int port) const {
    return ingress_meters_.at(static_cast<std::size_t>(port));
  }
  [[nodiscard]] std::uint64_t control_punts() const {
    return sim_.metrics().value(control_punts_id_);
  }
  /// Packets forwarded on the degraded passthrough path. Registry series
  /// shell.degraded_forwards{shell=..}; shell.degraded is the mode gauge.
  [[nodiscard]] std::uint64_t degraded_forwards() const {
    return sim_.metrics().value(degraded_forwards_id_);
  }
  /// Packets whose egress interface was pinned by an egress hint instead of
  /// the opposite-side rule. Registry series shell.egress_hints{shell=..}.
  [[nodiscard]] std::uint64_t egress_hints_honored() const {
    return sim_.metrics().value(egress_hints_id_);
  }
  [[nodiscard]] const EgressArbiter& arbiter(int port) const {
    return *arbiters_.at(static_cast<std::size_t>(port));
  }

 private:
  [[nodiscard]] bool terminates_locally(const net::Packet& packet) const;
  /// The interface this packet leaves on: its egress hint when it carries a
  /// valid one (counted), otherwise `fallback` (the opposite-side rule).
  [[nodiscard]] int resolve_egress(const net::Packet& packet, int fallback);
  void punt_to_control(net::PacketPtr packet);
  void deliver_egress(int port, net::PacketPtr packet);

  sim::Simulation& sim_;
  ShellConfig config_;
  std::string name_;
  std::unique_ptr<ppe::Engine> engine_;
  std::array<std::unique_ptr<EgressArbiter>, 2> arbiters_;
  std::array<std::function<void(net::PacketPtr)>, 2> egress_handlers_;
  std::function<void(net::PacketPtr)> control_rx_;
  std::array<sim::TrafficMeter, 2> ingress_meters_;
  obs::MetricId control_punts_id_;
  obs::MetricId degraded_forwards_id_;
  obs::MetricId degraded_gauge_id_;
  obs::MetricId egress_hints_id_;
  bool degraded_ = false;
  std::uint16_t flight_stage_ = 0;
  sim::Lifetime lifetime_;  // guards this-capturing scheduled closures
};

}  // namespace flexsfp::sfp
