// VCSEL wear-out model (§5.3 "Failure Recovery"): the paper cites lognormal
// time-to-failure with gradual optical power degradation as the dominant
// failure mode, and argues FlexSFP's internal visibility enables targeted
// diagnosis (laser vs driver). This model produces exactly that telemetry.
//
// Laser lifetimes are years — far beyond the picosecond simulation clock —
// so ages here are expressed in operating hours (double).
#pragma once

#include <cstdint>

#include "sim/random.hpp"

namespace flexsfp::sfp {

enum class LaserHealth : std::uint8_t {
  nominal,
  degrading,  // output power below warning threshold, still usable
  failed,     // below failure threshold or past wear-out life
};

enum class OpticalFault : std::uint8_t {
  none,
  laser_degradation,  // the VCSEL itself (replace the optical subassembly)
  driver_fault,       // the driver circuit (board-level repair)
};

struct VcselParams {
  double initial_power_mw = 1.0;
  /// Lognormal TTF parameters in hours (median = e^mu ~ 13.5 years with
  /// these defaults, sigma controls spread).
  double ttf_mu_log_hours = 11.68;
  double ttf_sigma = 0.6;
  /// Warning / failure thresholds as fractions of initial power.
  double warn_fraction = 0.8;
  double fail_fraction = 0.5;
};

class VcselModel {
 public:
  VcselModel(const VcselParams& params, sim::Rng& rng);

  /// Optical output power after `age_hours` of operation. Degradation is a
  /// smooth power-law decline toward the failure threshold at the sampled
  /// time-to-failure.
  [[nodiscard]] double power_mw(double age_hours) const;
  [[nodiscard]] LaserHealth health(double age_hours) const;
  /// The sampled wear-out life of this individual laser, hours.
  [[nodiscard]] double time_to_failure_hours() const { return ttf_hours_; }

  /// Inject a driver-circuit fault (for diagnosis tests).
  void inject_driver_fault() { driver_fault_ = true; }
  [[nodiscard]] bool driver_fault() const { return driver_fault_; }

  /// What a technician should replace, given internal telemetry at
  /// `age_hours`: distinguishes laser degradation from driver malfunction —
  /// the paper's "targeted repairs" argument.
  [[nodiscard]] OpticalFault diagnose(double age_hours) const;

  [[nodiscard]] const VcselParams& params() const { return params_; }

 private:
  VcselParams params_;
  double ttf_hours_;
  bool driver_fault_ = false;
};

}  // namespace flexsfp::sfp
