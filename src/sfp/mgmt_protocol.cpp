#include "sfp/mgmt_protocol.hpp"

#include "net/headers.hpp"

namespace flexsfp::sfp {

std::string to_string(MgmtOp op) {
  switch (op) {
    case MgmtOp::ping: return "ping";
    case MgmtOp::table_insert: return "table-insert";
    case MgmtOp::table_erase: return "table-erase";
    case MgmtOp::table_lookup: return "table-lookup";
    case MgmtOp::counter_read: return "counter-read";
    case MgmtOp::reconfig_begin: return "reconfig-begin";
    case MgmtOp::reconfig_chunk: return "reconfig-chunk";
    case MgmtOp::reconfig_commit: return "reconfig-commit";
    case MgmtOp::reconfig_abort: return "reconfig-abort";
  }
  return "op(?)";
}

std::string to_string(MgmtStatus status) {
  switch (status) {
    case MgmtStatus::ok: return "ok";
    case MgmtStatus::auth_failed: return "auth-failed";
    case MgmtStatus::unknown_op: return "unknown-op";
    case MgmtStatus::unknown_table: return "unknown-table";
    case MgmtStatus::table_full: return "table-full";
    case MgmtStatus::not_found: return "not-found";
    case MgmtStatus::bad_state: return "bad-state";
    case MgmtStatus::verify_failed: return "verify-failed";
    case MgmtStatus::malformed: return "malformed";
  }
  return "status(?)";
}

namespace {

// Body layout shared by serialize/parse:
// 'R' seq(4) op(1) table_len(1) table key(8) value(8)
// payload_len(2) payload tag(8)
constexpr std::uint8_t request_marker = 'R';
constexpr std::uint8_t response_marker = 'S';

net::Bytes request_body_without_tag(const MgmtRequest& request) {
  net::Bytes out(1 + 4 + 1 + 1 + request.table.size() + 8 + 8 + 2 +
                 request.payload.size());
  std::size_t offset = 0;
  out[offset++] = request_marker;
  net::write_be32(out, offset, request.seq);
  offset += 4;
  out[offset++] = static_cast<std::uint8_t>(request.op);
  out[offset++] = static_cast<std::uint8_t>(request.table.size());
  for (const char c : request.table) {
    out[offset++] = static_cast<std::uint8_t>(c);
  }
  net::write_be64(out, offset, request.key);
  offset += 8;
  net::write_be64(out, offset, request.value);
  offset += 8;
  net::write_be16(out, offset,
                  static_cast<std::uint16_t>(request.payload.size()));
  offset += 2;
  std::copy(request.payload.begin(), request.payload.end(),
            out.begin() + static_cast<std::ptrdiff_t>(offset));
  return out;
}

}  // namespace

net::Bytes MgmtRequest::serialize(hw::AuthKey key_material) const {
  net::Bytes body = request_body_without_tag(*this);
  const std::uint64_t tag = hw::keyed_tag(key_material, body);
  const std::size_t offset = body.size();
  body.resize(body.size() + 8);
  net::write_be64(body, offset, tag);
  return body;
}

std::optional<MgmtRequest> MgmtRequest::parse(net::BytesView data) {
  if (data.size() < 1 + 4 + 1 + 1 + 8 + 8 + 2 + 8) return std::nullopt;
  if (data[0] != request_marker) return std::nullopt;
  MgmtRequest request;
  request.seq = net::read_be32(data, 1);
  const std::uint8_t op = data[5];
  if (op > static_cast<std::uint8_t>(MgmtOp::reconfig_abort)) {
    return std::nullopt;
  }
  request.op = static_cast<MgmtOp>(op);
  const std::size_t table_len = data[6];
  std::size_t offset = 7;
  if (offset + table_len + 8 + 8 + 2 + 8 > data.size()) return std::nullopt;
  request.table.assign(reinterpret_cast<const char*>(data.data() + offset),
                       table_len);
  offset += table_len;
  request.key = net::read_be64(data, offset);
  offset += 8;
  request.value = net::read_be64(data, offset);
  offset += 8;
  const std::size_t payload_len = net::read_be16(data, offset);
  offset += 2;
  if (offset + payload_len + 8 > data.size()) return std::nullopt;
  request.payload.assign(
      data.begin() + static_cast<std::ptrdiff_t>(offset),
      data.begin() + static_cast<std::ptrdiff_t>(offset + payload_len));
  offset += payload_len;
  request.auth_tag = net::read_be64(data, offset);
  return request;
}

bool MgmtRequest::verify(hw::AuthKey key_material) const {
  return hw::keyed_tag(key_material, request_body_without_tag(*this)) ==
         auth_tag;
}

net::Bytes MgmtResponse::serialize() const {
  net::Bytes out(1 + 4 + 1 + 8 + 2 + payload.size());
  std::size_t offset = 0;
  out[offset++] = response_marker;
  net::write_be32(out, offset, seq);
  offset += 4;
  out[offset++] = static_cast<std::uint8_t>(status);
  net::write_be64(out, offset, value);
  offset += 8;
  net::write_be16(out, offset, static_cast<std::uint16_t>(payload.size()));
  offset += 2;
  std::copy(payload.begin(), payload.end(),
            out.begin() + static_cast<std::ptrdiff_t>(offset));
  return out;
}

std::optional<MgmtResponse> MgmtResponse::parse(net::BytesView data) {
  if (data.size() < 1 + 4 + 1 + 8 + 2) return std::nullopt;
  if (data[0] != response_marker) return std::nullopt;
  MgmtResponse response;
  response.seq = net::read_be32(data, 1);
  if (data[5] > static_cast<std::uint8_t>(MgmtStatus::malformed)) {
    return std::nullopt;
  }
  response.status = static_cast<MgmtStatus>(data[5]);
  response.value = net::read_be64(data, 6);
  const std::size_t payload_len = net::read_be16(data, 14);
  if (16 + payload_len > data.size()) return std::nullopt;
  response.payload.assign(
      data.begin() + 16,
      data.begin() + static_cast<std::ptrdiff_t>(16 + payload_len));
  return response;
}

net::Packet make_mgmt_frame(net::MacAddress dst, net::MacAddress src,
                            net::BytesView body) {
  net::Bytes frame(
      std::max<std::size_t>(net::EthernetHeader::size() + body.size(), 60), 0);
  net::EthernetHeader eth;
  eth.dst = dst;
  eth.src = src;
  eth.ether_type = static_cast<std::uint16_t>(net::EtherType::flexsfp_mgmt);
  eth.serialize_to(frame, 0);
  std::copy(body.begin(), body.end(),
            frame.begin() + net::EthernetHeader::size());
  return net::Packet{std::move(frame)};
}

std::optional<net::Bytes> mgmt_body(const net::Packet& packet) {
  const auto eth = net::EthernetHeader::parse(packet.data(), 0);
  if (!eth || eth->ether_type !=
                  static_cast<std::uint16_t>(net::EtherType::flexsfp_mgmt)) {
    return std::nullopt;
  }
  return net::Bytes(packet.data().begin() + net::EthernetHeader::size(),
                    packet.data().end());
}

bool is_mgmt_frame(const net::Packet& packet) {
  // Demux classification runs on every ingress frame; peek the EtherType
  // field directly rather than decoding the full Ethernet header. Mgmt
  // frames are never VLAN-tagged, so no tag walk is needed.
  const auto& data = packet.data();
  if (data.size() < net::EthernetHeader::size()) return false;
  return net::read_be16(data, 12) ==
         static_cast<std::uint16_t>(net::EtherType::flexsfp_mgmt);
}

}  // namespace flexsfp::sfp
