// FlexSFP management protocol: the network-accessible control interface of
// §4.1/§4.2. Requests ride in raw Ethernet frames (EtherType 0x88b7) and are
// authenticated with a keyed hash; operations cover table/counter access and
// the chunked, authenticated bitstream transfer used for over-the-network
// reprogramming.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "hw/bitstream.hpp"
#include "net/addresses.hpp"
#include "net/bytes.hpp"
#include "net/packet.hpp"

namespace flexsfp::sfp {

enum class MgmtOp : std::uint8_t {
  ping = 0,
  table_insert = 1,
  table_erase = 2,
  table_lookup = 3,
  counter_read = 4,
  reconfig_begin = 5,   // payload: app name + total chunk count (be16)
  reconfig_chunk = 6,   // payload: chunk index (be16) + chunk bytes
  reconfig_commit = 7,  // no payload; triggers verify + flash + reboot
  reconfig_abort = 8,
};

enum class MgmtStatus : std::uint8_t {
  ok = 0,
  auth_failed = 1,
  unknown_op = 2,
  unknown_table = 3,
  table_full = 4,
  not_found = 5,
  bad_state = 6,     // e.g. chunk without begin
  verify_failed = 7,  // bitstream signature/CRC rejected
  malformed = 8,
};

[[nodiscard]] std::string to_string(MgmtOp op);
[[nodiscard]] std::string to_string(MgmtStatus status);

struct MgmtRequest {
  std::uint32_t seq = 0;
  MgmtOp op = MgmtOp::ping;
  std::string table;      // table ops
  std::uint64_t key = 0;
  std::uint64_t value = 0;
  net::Bytes payload;     // reconfig chunks
  std::uint64_t auth_tag = 0;

  /// Serialize and sign with `key_material`.
  [[nodiscard]] net::Bytes serialize(hw::AuthKey key_material) const;
  /// Parse; nullopt when malformed. Authentication is checked separately
  /// via verify().
  [[nodiscard]] static std::optional<MgmtRequest> parse(net::BytesView data);
  [[nodiscard]] bool verify(hw::AuthKey key_material) const;
};

struct MgmtResponse {
  std::uint32_t seq = 0;
  MgmtStatus status = MgmtStatus::ok;
  std::uint64_t value = 0;
  net::Bytes payload;

  [[nodiscard]] net::Bytes serialize() const;
  [[nodiscard]] static std::optional<MgmtResponse> parse(net::BytesView data);
};

/// Wrap a serialized request/response into an Ethernet frame with the
/// FlexSFP management EtherType.
[[nodiscard]] net::Packet make_mgmt_frame(net::MacAddress dst,
                                          net::MacAddress src,
                                          net::BytesView body);

/// Extract the management body from a frame; nullopt when the frame is not
/// a management frame.
[[nodiscard]] std::optional<net::Bytes> mgmt_body(const net::Packet& packet);

/// True when the frame carries the management EtherType (the demux test the
/// shell applies per Figure 1).
[[nodiscard]] bool is_mgmt_frame(const net::Packet& packet);

}  // namespace flexsfp::sfp
