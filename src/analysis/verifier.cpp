#include "analysis/verifier.hpp"

#include <algorithm>
#include <array>
#include <cstdio>

#include "analysis/bpf_verifier.hpp"
#include "apps/bpf_filter.hpp"
#include "hw/bitstream.hpp"
#include "hw/resource_model.hpp"
#include "ppe/app.hpp"
#include "ppe/registry.hpp"

namespace flexsfp::analysis {

namespace {

std::string pct(double value) {
  std::array<char, 32> buf{};
  std::snprintf(buf.data(), buf.size(), "%.1f%%", value);
  return buf.data();
}

std::string join(const std::vector<std::string>& parts) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += "+";
    out += parts[i];
  }
  return out;
}

/// "acl/table:acl" — anchors a table diagnostic inside its stage.
std::string table_component(const ppe::StageProfile& stage,
                            const ppe::TableProfile& table) {
  return stage.stage + "/table:" + table.name;
}

std::string bank_component(const ppe::StageProfile& stage,
                           const ppe::CounterBankProfile& bank) {
  return stage.stage + "/counters:" + bank.name;
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() {
  // Mirrors the header's rule table; golden-tested so the two stay in sync.
  static const std::vector<RuleInfo> catalog = {
      {"FSL000", Severity::error,
       "bitstream names an unknown app or an unbuildable configuration"},
      {"FSL001", Severity::error,
       "aggregate resources exceed the device budget"},
      {"FSL002", Severity::error,
       "a stage's per-packet cycle cost breaks line rate at min-size packets"},
      {"FSL003", Severity::error,
       "table key wider than the header fields it is built from"},
      {"FSL004", Severity::error,
       "a single table outgrows the device's SRAM/FF budget"},
      {"FSL005", Severity::warning,
       "shadowed or duplicate ternary entries that cannot match"},
      {"FSL006", Severity::warning,
       "stage reads a header no upstream stage or the wire provides"},
      {"FSL007", Severity::error,
       "stages unreachable behind a constant non-forward verdict"},
      {"FSL008", Severity::error,
       "counter-bank index beyond the bank's slot count"},
      {"FSL009", Severity::error,
       "BPF packet load out of bounds on every frame (drops every packet "
       "reaching it)"},
      {"FSL010", Severity::warning,
       "BPF packet load not provably in-bounds at the declared minimum "
       "frame size"},
      {"FSL011", Severity::warning,
       "BPF instructions unreachable on every path (dead code)"},
      {"FSL012", Severity::warning,
       "BPF conditional branch statically decided (one edge is infeasible)"},
      {"FSL013", Severity::error,
       "BPF shift count >= 32 relies on the soft core's implicit '& 31' "
       "masking"},
      {"FSL014", Severity::warning,
       "BPF program returns the same verdict on every reachable path "
       "(constant filter)"},
  };
  return catalog;
}

PipelineVerifier::PipelineVerifier(VerifierOptions options)
    : options_(std::move(options)) {}

DiagnosticReport PipelineVerifier::verify(const ppe::PpeApp& app) const {
  DiagnosticReport report;
  std::vector<ppe::StageProfile> stages = app.stage_profiles();
  check_resources(app, report);
  // Runs first: it refines the profiles (honest BPF cycle costs,
  // path-sensitive constant verdicts) the later checks consume.
  check_bpf_stages(app, stages, report);
  check_line_rate(stages, report);
  check_tables(stages, report);
  check_pipeline_shape(stages, report);
  return report;
}

void PipelineVerifier::check_bpf_stages(const ppe::PpeApp& app,
                                        std::vector<ppe::StageProfile>& stages,
                                        DiagnosticReport& report) const {
  std::vector<const ppe::PpeApp*> stage_apps;
  stage_apps.reserve(stages.size());
  app.visit_stages(
      [&stage_apps](const ppe::PpeApp& stage) { stage_apps.push_back(&stage); });
  // A composition that overrides stage_profiles() without visit_stages()
  // loses the app<->profile alignment; fall back to profile-only checks.
  if (stage_apps.size() != stages.size()) return;

  const BpfVerifier verifier(BpfVerifierOptions{
      .min_frame_bytes = options_.bpf_min_frame_bytes,
      .max_frame_bytes = options_.bpf_max_frame_bytes});
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const auto* bpf = dynamic_cast<const apps::BpfFilter*>(stage_apps[i]);
    if (bpf == nullptr) continue;
    const BpfAnalysis analysis = verifier.analyze(bpf->program());
    verifier.add_diagnostics(analysis, stages[i].stage, report);
    if (!analysis.valid_structure) continue;
    // Honest sequential occupancy for FSL002: the longest terminating path
    // through the program DAG, not the instruction count.
    stages[i].match_action_cycles =
        std::max<std::uint64_t>(analysis.worst_case_path_cycles, 1);
    // Path-sensitive constant verdict for FSL007: strictly more programs
    // than the first-instruction-terminal shape the profile declares.
    stages[i].constant_verdict = analysis.constant_verdict;
  }
}

DiagnosticReport PipelineVerifier::verify_bitstream(
    const hw::Bitstream& bitstream) const {
  DiagnosticReport report;
  const ppe::AppRegistry& registry = ppe::AppRegistry::instance();
  if (!registry.contains(bitstream.app_name())) {
    report.error("FSL000", bitstream.app_name(),
                 "bitstream names an application with no registered factory",
                 "register the app (apps::register_builtin_apps) or fix the "
                 "bitstream's app name");
    return report;
  }
  const ppe::PpeAppPtr app =
      registry.create(bitstream.app_name(), bitstream.config());
  if (app == nullptr) {
    report.error("FSL000", bitstream.app_name(),
                 "application factory rejected the serialized configuration",
                 "rebuild the bitstream from a configuration the app's "
                 "parse() accepts");
    return report;
  }
  return verify(*app);
}

void PipelineVerifier::check_resources(const ppe::PpeApp& app,
                                       DiagnosticReport& report) const {
  using RM = hw::ResourceModel;
  hw::ResourceUsage usage = app.resource_usage(options_.datapath);
  if (options_.include_shell) {
    usage += RM::miv_rv32();
    usage += RM::ethernet_iface_electrical();
    usage += RM::ethernet_iface_optical();
  }
  const hw::DeviceCapacity& budget = options_.device.capacity();
  const hw::UtilizationReport util = options_.device.utilization(usage);

  report.note("FSL001", "device",
              options_.device.name() + " utilization: " +
                  std::to_string(usage.luts) + "/" +
                  std::to_string(budget.luts) + " LUTs (" + pct(util.luts_pct) +
                  "), " + std::to_string(usage.ffs) + "/" +
                  std::to_string(budget.ffs) + " FFs (" + pct(util.ffs_pct) +
                  "), " + std::to_string(usage.usram_blocks) + "/" +
                  std::to_string(budget.usram_blocks) + " uSRAM (" +
                  pct(util.usram_pct) + "), " +
                  std::to_string(usage.lsram_blocks) + "/" +
                  std::to_string(budget.lsram_blocks) + " LSRAM (" +
                  pct(util.lsram_pct) + ")" +
                  (options_.include_shell ? ", shell IP included" : ""));

  struct Dimension {
    const char* name;
    std::uint64_t used;
    std::uint64_t available;
    double used_pct;
  };
  const std::array<Dimension, 4> dimensions{{
      {"LUT", usage.luts, budget.luts, util.luts_pct},
      {"FF", usage.ffs, budget.ffs, util.ffs_pct},
      {"uSRAM block", usage.usram_blocks, budget.usram_blocks,
       util.usram_pct},
      {"LSRAM block", usage.lsram_blocks, budget.lsram_blocks,
       util.lsram_pct},
  }};
  for (const Dimension& dim : dimensions) {
    if (dim.used > dim.available) {
      report.error(
          "FSL001", "device",
          std::string(dim.name) + " demand " + std::to_string(dim.used) +
              " exceeds the " + options_.device.name() + " budget of " +
              std::to_string(dim.available) + " (" + pct(dim.used_pct) + ")",
          "shrink table capacities or target a larger device "
          "(MPF300T/MPF500T)");
    }
  }
  if (options_.device.fits(usage) &&
      util.worst() >= options_.utilization_warning_pct) {
    report.warning("FSL001", "device",
                   "design fits but worst-dimension utilization is " +
                       pct(util.worst()),
                   "leave headroom for routing congestion and future "
                   "control-plane features");
  }
}

void PipelineVerifier::check_line_rate(
    const std::vector<ppe::StageProfile>& stages,
    DiagnosticReport& report) const {
  const hw::DatapathConfig& datapath = options_.datapath;
  const std::uint64_t beats = datapath.beats_for(options_.min_packet_bytes);
  // Wire time of the worst-case packet, incl. preamble/SFD + FCS + IPG —
  // the same 24 bytes DatapathConfig::sustains_line_rate charges.
  const double wire_time_s = double(options_.min_packet_bytes + 24) * 8.0 /
                             double(options_.line_rate_bps);
  const double cycles_available = wire_time_s * double(datapath.clock.hz());

  // Stages overlap in a pipeline, so throughput is set per stage: each one
  // must individually clear the per-packet budget; the slowest over-budget
  // stage is the bottleneck.
  std::uint64_t worst_occupancy = 0;
  for (const ppe::StageProfile& stage : stages) {
    worst_occupancy =
        std::max(worst_occupancy,
                 std::max<std::uint64_t>(beats, stage.match_action_cycles));
  }
  for (const ppe::StageProfile& stage : stages) {
    const std::uint64_t occupancy =
        std::max<std::uint64_t>(beats, stage.match_action_cycles);
    if (datapath.sustains_line_rate(options_.line_rate_bps,
                                    options_.min_packet_bytes,
                                    occupancy - beats)) {
      continue;
    }
    std::array<char, 96> detail{};
    std::snprintf(detail.data(), detail.size(),
                  "but at %llu Gb/s the %u b x %.2f MHz datapath affords "
                  "only %.1f cycles",
                  static_cast<unsigned long long>(options_.line_rate_bps /
                                                  1'000'000'000),
                  datapath.width_bits, datapath.clock.mhz_value(),
                  cycles_available);
    std::string message = "needs " + std::to_string(occupancy) +
                          " cycles per " +
                          std::to_string(options_.min_packet_bytes) +
                          " B packet, " + detail.data();
    if (occupancy == worst_occupancy) message += " (pipeline bottleneck)";
    report.error("FSL002", stage.stage, std::move(message),
                 "reduce per-packet work (shorter program, fewer sequential "
                 "lookups) or widen/overclock the datapath");
  }
}

void PipelineVerifier::check_tables(
    const std::vector<ppe::StageProfile>& stages,
    DiagnosticReport& report) const {
  const hw::DeviceCapacity& budget = options_.device.capacity();
  for (const ppe::StageProfile& stage : stages) {
    for (const ppe::TableProfile& table : stage.tables) {
      const std::string component = table_component(stage, table);

      // FSL003: key geometry vs the header fields it is drawn from.
      if (table.capacity > 0 && table.key_bits == 0) {
        report.warning("FSL003", component,
                       "table declares a zero-width match key",
                       "declare the real key width so placement and timing "
                       "estimates are meaningful");
      }
      if (table.key_sources != 0) {
        std::uint32_t available_bits = 0;
        for (std::size_t i = 0; i < ppe::header_kind_count; ++i) {
          const auto kind = static_cast<ppe::HeaderKind>(i);
          if ((table.key_sources & ppe::header_bit(kind)) != 0) {
            available_bits += ppe::header_field_bits(kind);
          }
        }
        if (table.key_bits > available_bits) {
          report.error(
              "FSL003", component,
              "match key is " + std::to_string(table.key_bits) +
                  " bits but its source headers (" +
                  join(ppe::header_set_names(table.key_sources)) +
                  ") carry only " + std::to_string(available_bits) +
                  " field bits",
              "add the missing header layers to the key sources or shrink "
              "the key");
        }
      }

      // FSL004: per-table placement and capacity.
      if (table.capacity == 0) {
        report.warning("FSL004", component,
                       "table has zero capacity; every lookup will miss",
                       "size the table for the expected flow count");
      }
      switch (table.kind) {
        case ppe::TableKind::exact_match: {
          // Entry layout mirrors ResourceModel::exact_match_table:
          // key + value + 4 bits valid/version, LSRAM-resident.
          const std::uint64_t bits =
              table.capacity *
              (std::uint64_t{table.key_bits} + table.value_bits + 4);
          const std::uint64_t blocks = hw::lsram_blocks_for_bits(bits);
          if (blocks > budget.lsram_blocks) {
            report.error(
                "FSL004", component,
                "exact-match entries need " + std::to_string(blocks) +
                    " LSRAM blocks; the " + options_.device.name() +
                    " has " + std::to_string(budget.lsram_blocks) +
                    " in total",
                "reduce capacity or move cold entries to the control plane");
          }
          break;
        }
        case ppe::TableKind::lpm: {
          // Multi-stride trie: ~3 nodes x 40 bits per entry
          // (ResourceModel::lpm_table), LSRAM-resident.
          const std::uint64_t bits = table.capacity * 3 * 40;
          const std::uint64_t blocks = hw::lsram_blocks_for_bits(bits);
          if (blocks > budget.lsram_blocks) {
            report.error(
                "FSL004", component,
                "LPM trie needs " + std::to_string(blocks) +
                    " LSRAM blocks; the " + options_.device.name() +
                    " has " + std::to_string(budget.lsram_blocks) +
                    " in total",
                "reduce the prefix count or aggregate routes upstream");
          }
          break;
        }
        case ppe::TableKind::ternary: {
          // TCAM emulation keeps rule+mask in FFs: 2 FFs per key bit per
          // rule (ResourceModel::ternary_table).
          const std::uint64_t ffs =
              2 * std::uint64_t{table.key_bits} * table.capacity;
          if (ffs > budget.ffs) {
            report.error(
                "FSL004", component,
                "TCAM emulation needs " + std::to_string(ffs) +
                    " FFs for rule storage alone; the " +
                    options_.device.name() + " has " +
                    std::to_string(budget.ffs),
                "cut the rule capacity or recast the match as exact/LPM");
          } else if (table.capacity > 1024) {
            report.warning(
                "FSL004", component,
                "ternary capacity of " + std::to_string(table.capacity) +
                    " rules is costly to emulate in fabric (" +
                    std::to_string(ffs) + " FFs of rule storage)",
                "large rule sets fit better as exact-match or LPM tables");
          }
          break;
        }
      }

      // FSL005: installed entries that can never match.
      if (table.shadowed_entries > 0) {
        report.warning(
            "FSL005", component,
            std::to_string(table.shadowed_entries) +
                " installed entr" +
                (table.shadowed_entries == 1 ? "y is" : "ies are") +
                " shadowed by higher-priority rules and can never match",
            "remove or reprioritize the shadowed rules");
      }
      if (table.duplicate_entries > 0) {
        report.warning("FSL005", component,
                       std::to_string(table.duplicate_entries) +
                           " exactly duplicated entr" +
                           (table.duplicate_entries == 1 ? "y is" : "ies are") +
                           " installed",
                       "deduplicate the control plane's rule pushes");
      }
    }
  }
}

void PipelineVerifier::check_pipeline_shape(
    const std::vector<ppe::StageProfile>& stages,
    DiagnosticReport& report) const {
  // FSL006: walk the set of header layers available at each stage. A frame
  // from the wire may carry any non-synthetic layer; producers extend the
  // set, consumers shrink it.
  ppe::HeaderSet available = ppe::wire_header_set();
  for (const ppe::StageProfile& stage : stages) {
    const ppe::HeaderSet missing = stage.reads & ~available;
    if (missing != 0) {
      report.warning(
          "FSL006", stage.stage,
          "reads header(s) " + join(ppe::header_set_names(missing)) +
              " that no upstream stage produces",
          "insert the producing stage upstream (e.g. an INT source before "
          "an INT sink), or confirm another module on the path inserts it");
    }
    available = (available & ~stage.consumes) | stage.produces;
  }

  // FSL007: reachability behind constant verdicts.
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const ppe::StageProfile& stage = stages[i];
    if (!stage.constant_verdict.has_value()) continue;
    const ppe::Verdict verdict = *stage.constant_verdict;
    if (verdict == ppe::Verdict::forward) {
      report.note("FSL007", stage.stage,
                  "configuration makes this stage forward every packet "
                  "unconditionally (a no-op filter)",
                  "load a real program/ruleset before deploying");
    } else if (i + 1 < stages.size()) {
      report.error(
          "FSL007", stage.stage,
          "every packet gets verdict '" + ppe::to_string(verdict) +
              "' here, making the " + std::to_string(stages.size() - i - 1) +
              " downstream stage(s) unreachable",
          "drop the dead stages from the chain or fix this stage's "
          "configuration");
    } else {
      report.warning("FSL007", stage.stage,
                     "every packet gets verdict '" + ppe::to_string(verdict) +
                         "'; the design processes no traffic",
                     "confirm a constant " + ppe::to_string(verdict) +
                         " policy is intended");
    }
  }

  // FSL008: counter indices the datapath can address must exist.
  for (const ppe::StageProfile& stage : stages) {
    for (const ppe::CounterBankProfile& bank : stage.counter_banks) {
      const std::string component = bank_component(stage, bank);
      if (bank.slots == 0) {
        report.warning("FSL008", component,
                       "counter bank has zero slots; any update would throw",
                       "size the bank for the stage's counter indices");
        continue;
      }
      if (bank.max_index_used >= bank.slots) {
        report.error(
            "FSL008", component,
            "datapath addresses counter index " +
                std::to_string(bank.max_index_used) + " but the bank has " +
                std::to_string(bank.slots) +
                " slots (CounterBank::add would throw)",
            "size the bank to at least " +
                std::to_string(bank.max_index_used + 1) + " slots");
      }
    }
  }
}

}  // namespace flexsfp::analysis
