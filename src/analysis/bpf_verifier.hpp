// Kernel-verifier-style abstract interpreter for BPF soft-core stages.
//
// The deploy gate is the only thing standing between a developer-shipped
// packet program (§4.2) and a black-holing module, so — like the load-time
// verifiers of VeBPF and hXDP — this layer proves facts about a program for
// *all* packets before it is allowed near the datapath:
//
//   * value tracking: accumulator A and index X are abstracted per program
//     point as an interval [lo, hi] plus known-bits (a "tnum": the Linux
//     verifier's tristate number — value/mask pairs where mask bits are
//     unknown), joined at jump targets;
//   * packet-length tracking: a per-path lower/upper bound on the frame
//     size, seeded by the declared minimum frame and refined by branches on
//     `ld_len` and by surviving a packet load (execution past `pkt[at]`
//     proves size > at);
//   * load bounds: each packet load is classified `safe` (in-bounds for
//     every frame >= the declared minimum), `may_abort` (aborts — drops —
//     on some frame sizes), or `always_aborts` (out of bounds even at the
//     maximum frame: the instruction unconditionally drops);
//   * reachability: per-instruction reachability under branch-edge
//     feasibility (an edge whose refined state is empty is pruned), giving
//     dead code, statically decided branches, and a path-sensitive
//     generalization of BpfProgram::constant_verdict — all reachable paths
//     returning one verdict;
//   * worst-case latency: the longest *terminating* path through the
//     program DAG (forward-only jumps make every program a DAG, so a single
//     in-order pass with joins needs no widening), which FSL002 uses in
//     place of size() as the honest sequential cycle cost.
//
// The findings surface as rules FSL009–FSL014 through DiagnosticReport
// (see verifier.hpp for the catalog) and gate both `flexsfp-lint` and the
// FleetOrchestrator deployment path.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "apps/bpf_filter.hpp"

namespace flexsfp::analysis {

/// Tristate number: `value` holds the known bits, `mask` the unknown ones
/// (invariant: value & mask == 0). A concrete v is represented iff
/// (v & ~mask) == value. Top is {0, ~0}.
struct Tnum {
  std::uint32_t value = 0;
  std::uint32_t mask = 0xffffffffu;

  [[nodiscard]] static constexpr Tnum constant(std::uint32_t v) {
    return {v, 0};
  }
  [[nodiscard]] bool is_constant() const { return mask == 0; }
  /// Can `v` be a concretization of this tnum?
  [[nodiscard]] bool contains(std::uint32_t v) const {
    return (v & ~mask) == value;
  }
  /// Smallest/largest concretization (unknown bits all 0 / all 1).
  [[nodiscard]] std::uint32_t min() const { return value; }
  [[nodiscard]] std::uint32_t max() const { return value | mask; }

  friend bool operator==(const Tnum&, const Tnum&) = default;
};

[[nodiscard]] Tnum tnum_add(Tnum a, Tnum b);
[[nodiscard]] Tnum tnum_sub(Tnum a, Tnum b);
[[nodiscard]] Tnum tnum_and(Tnum a, Tnum b);
[[nodiscard]] Tnum tnum_or(Tnum a, Tnum b);
[[nodiscard]] Tnum tnum_lshift(Tnum a, std::uint8_t shift);
[[nodiscard]] Tnum tnum_rshift(Tnum a, std::uint8_t shift);
/// Least upper bound: bits the two sides disagree on become unknown.
[[nodiscard]] Tnum tnum_join(Tnum a, Tnum b);
/// Tightest tnum containing every value of [lo, hi] (common leading bits).
[[nodiscard]] Tnum tnum_range(std::uint32_t lo, std::uint32_t hi);

/// One abstract register: interval x known-bits, kept mutually tightened
/// (interval clamped into [tnum.min, tnum.max]; an interval collapsing to a
/// point becomes a tnum constant). `is_len` tags an exact copy of the frame
/// length so branches on it refine the per-path packet-size bounds.
struct AbstractValue {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0xffffffffu;
  Tnum bits;
  bool is_len = false;

  [[nodiscard]] static AbstractValue top() { return {}; }
  [[nodiscard]] static AbstractValue constant(std::uint32_t v) {
    return {v, v, Tnum::constant(v), false};
  }
  [[nodiscard]] static AbstractValue range(std::uint32_t lo, std::uint32_t hi);

  [[nodiscard]] bool is_constant() const { return lo == hi; }
  /// False when interval and known bits admit no common concretization.
  [[nodiscard]] bool consistent() const;
  /// Re-establish interval<->tnum tightening; false if bottom (empty).
  bool normalize();

  friend bool operator==(const AbstractValue&, const AbstractValue&) = default;
};

[[nodiscard]] AbstractValue join(const AbstractValue& a,
                                 const AbstractValue& b);

/// Bounds verdict for one packet-load instruction, relative to the declared
/// [min_frame_bytes, max_frame_bytes] envelope.
enum class LoadSafety : std::uint8_t {
  safe,           // end offset provably <= every admissible frame size
  may_abort,      // aborts (drops) for some admissible frame/offset combo
  always_aborts,  // out of bounds even at max_frame_bytes: drops every packet
};

[[nodiscard]] std::string_view to_string(LoadSafety safety);

struct LoadFact {
  std::size_t pc = 0;
  LoadSafety safety = LoadSafety::safe;
  /// Inclusive-exclusive byte range the load may touch: the access ends in
  /// [end_lo, end_hi] (offset range + access width).
  std::uint64_t end_lo = 0;
  std::uint64_t end_hi = 0;
};

struct DecidedBranch {
  std::size_t pc = 0;
  /// True when the condition always holds (the jf edge is infeasible).
  bool always_taken = false;
};

struct MaskedShift {
  std::size_t pc = 0;
  std::uint32_t count = 0;  // the raw shift count, >= 32
};

/// Everything one analysis run proves about a program. All "for every
/// packet" claims are relative to frames of at least
/// BpfVerifierOptions::min_frame_bytes (the property tests execute run()
/// against this contract).
struct BpfAnalysis {
  /// Structural validity under BpfProgram::assemble's historical rules
  /// (length, opcode range, forward in-range jumps, terminal end) — raw
  /// instruction vectors that fail it carry no further facts.
  bool valid_structure = false;

  std::size_t min_frame_bytes = 0;
  std::size_t max_frame_bytes = 0;

  std::vector<bool> reachable;            // per pc
  std::vector<std::size_t> dead_pcs;      // pcs with reachable[pc] == false
  std::vector<LoadFact> loads;            // reachable packet loads only
  std::vector<DecidedBranch> decided_branches;  // reachable cond. jumps
  std::vector<MaskedShift> masked_shifts;       // shift count >= 32 anywhere

  /// Which verdicts some reachable path can produce (aborting loads count
  /// as drop).
  bool can_accept = false;
  bool can_drop = false;
  bool can_punt = false;
  /// Set when every reachable path returns the same verdict — the
  /// path-sensitive generalization of BpfProgram::constant_verdict.
  std::optional<ppe::Verdict> constant_verdict;
  /// True for the degenerate shape BpfProgram::constant_verdict already
  /// catches (first instruction terminal) — FSL014 skips it.
  bool first_insn_terminal = false;

  /// Instructions executed on the longest terminating path: the honest
  /// sequential cycle cost of the stage (<= program size).
  std::uint64_t worst_case_path_cycles = 0;

  [[nodiscard]] bool has_load(LoadSafety safety) const;
};

struct BpfVerifierOptions {
  /// Smallest frame the datapath contract admits; every "safe" claim is
  /// proven against it (64 = minimum Ethernet frame).
  std::size_t min_frame_bytes = 64;
  /// Largest frame the datapath can present (jumbo). Loads past it abort
  /// on every packet.
  std::size_t max_frame_bytes = 9216;
};

class BpfVerifier {
 public:
  explicit BpfVerifier(BpfVerifierOptions options = {});

  [[nodiscard]] const BpfVerifierOptions& options() const { return options_; }

  /// Analyze a validated program.
  [[nodiscard]] BpfAnalysis analyze(const apps::BpfProgram& program) const;
  /// Analyze a raw instruction vector (pre-assemble: the hostile-bitstream
  /// path). Structural violations short-circuit with valid_structure=false;
  /// masked shifts — which assemble now rejects — are still reported.
  [[nodiscard]] BpfAnalysis analyze(
      const std::vector<apps::BpfInsn>& code) const;

  /// Render an analysis as FSL009–FSL014 diagnostics anchored at
  /// `component` (e.g. "bpf"). Used by PipelineVerifier and the lint tool.
  void add_diagnostics(const BpfAnalysis& analysis, std::string_view component,
                       DiagnosticReport& report) const;

 private:
  BpfVerifierOptions options_;
};

}  // namespace flexsfp::analysis
