// Structured diagnostics for deploy-time static verification.
//
// Every finding carries a stable rule id ("FSL001", ...) so CI gates and
// golden tests can match on identity rather than message text, a severity,
// the design component it is anchored to, and a fix-it hint. A report is an
// ordered collection with both a human rendering (compiler-style lines) and
// a machine-readable JSON rendering for CI consumption.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace flexsfp::analysis {

enum class Severity : std::uint8_t {
  note = 0,
  warning = 1,
  error = 2,
};

[[nodiscard]] std::string to_string(Severity severity);

struct Diagnostic {
  /// Stable rule id, e.g. "FSL001". Never renumbered.
  std::string rule;
  Severity severity = Severity::note;
  /// Design element the finding is anchored to ("nat", "acl/table:acl",
  /// "device", ...).
  std::string component;
  /// One-line statement of the finding.
  std::string message;
  /// Actionable fix-it hint; may be empty.
  std::string hint;

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

/// Ordered diagnostic collection produced by one verification run.
class DiagnosticReport {
 public:
  void add(Diagnostic diagnostic);
  void note(std::string rule, std::string component, std::string message,
            std::string hint = {});
  void warning(std::string rule, std::string component, std::string message,
               std::string hint = {});
  void error(std::string rule, std::string component, std::string message,
             std::string hint = {});

  /// Append every diagnostic of `other`, prefixing components with
  /// "<prefix>/" (used when verifying several designs in one run).
  void merge(std::string_view prefix, const DiagnosticReport& other);

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diagnostics_;
  }
  [[nodiscard]] bool empty() const { return diagnostics_.empty(); }
  [[nodiscard]] std::size_t count(Severity severity) const;
  [[nodiscard]] bool has_errors() const { return count(Severity::error) > 0; }
  [[nodiscard]] bool has_warnings() const {
    return count(Severity::warning) > 0;
  }
  /// Diagnostics matching one rule id.
  [[nodiscard]] std::vector<Diagnostic> by_rule(std::string_view rule) const;

  /// Compiler-style human rendering, one line per diagnostic:
  ///   error[FSL001] nat: LUT demand 210% of MPF200T budget
  ///       hint: shrink the table or target a larger device
  [[nodiscard]] std::string to_text() const;
  /// Machine-readable rendering for CI:
  ///   {"diagnostics":[{"rule":...}], "errors":N, "warnings":N, "notes":N}
  [[nodiscard]] std::string to_json() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

/// JSON string escaping helper shared by the report and the lint tool.
[[nodiscard]] std::string json_escape(std::string_view text);

}  // namespace flexsfp::analysis
