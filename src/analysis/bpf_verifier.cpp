#include "analysis/bpf_verifier.hpp"

#include <algorithm>
#include <bit>
#include <string>

#include "ppe/app.hpp"

namespace flexsfp::analysis {

using apps::BpfInsn;
using apps::BpfOp;

// --- tnum arithmetic (32-bit port of the kernel verifier's tnum.c) ----------

Tnum tnum_add(Tnum a, Tnum b) {
  const std::uint32_t sm = a.mask + b.mask;
  const std::uint32_t sv = a.value + b.value;
  const std::uint32_t sigma = sm + sv;
  const std::uint32_t chi = sigma ^ sv;  // bits a carry may corrupt
  const std::uint32_t mu = chi | a.mask | b.mask;
  return {sv & ~mu, mu};
}

Tnum tnum_sub(Tnum a, Tnum b) {
  const std::uint32_t dv = a.value - b.value;
  const std::uint32_t alpha = dv + a.mask;
  const std::uint32_t beta = dv - b.mask;
  const std::uint32_t chi = alpha ^ beta;
  const std::uint32_t mu = chi | a.mask | b.mask;
  return {dv & ~mu, mu};
}

Tnum tnum_and(Tnum a, Tnum b) {
  const std::uint32_t alpha = a.value | a.mask;
  const std::uint32_t beta = b.value | b.mask;
  const std::uint32_t v = a.value & b.value;
  return {v, alpha & beta & ~v};
}

Tnum tnum_or(Tnum a, Tnum b) {
  const std::uint32_t v = a.value | b.value;
  const std::uint32_t mu = a.mask | b.mask;
  return {v, mu & ~v};
}

Tnum tnum_lshift(Tnum a, std::uint8_t shift) {
  return {a.value << shift, a.mask << shift};
}

Tnum tnum_rshift(Tnum a, std::uint8_t shift) {
  return {a.value >> shift, a.mask >> shift};
}

Tnum tnum_join(Tnum a, Tnum b) {
  const std::uint32_t v = a.value ^ b.value;  // bits the sides disagree on
  const std::uint32_t mu = a.mask | b.mask | v;
  return {a.value & ~mu, mu};
}

Tnum tnum_range(std::uint32_t lo, std::uint32_t hi) {
  const std::uint32_t chi = lo ^ hi;
  if (chi == 0) return Tnum::constant(lo);
  const int bits = 32 - std::countl_zero(chi);
  if (bits == 32) return {};  // disagreement reaches the top bit: top
  const std::uint32_t delta = (std::uint32_t{1} << bits) - 1;
  return {lo & ~delta, delta};
}

namespace {

/// Greatest lower bound of two tnums; nullopt when their known bits
/// contradict (no common concretization).
std::optional<Tnum> tnum_intersect(Tnum a, Tnum b) {
  const std::uint32_t conflict = (a.value ^ b.value) & ~a.mask & ~b.mask;
  if (conflict != 0) return std::nullopt;
  const std::uint32_t mask = a.mask & b.mask;
  return Tnum{(a.value | b.value) & ~mask, mask};
}

}  // namespace

// --- abstract register ------------------------------------------------------

AbstractValue AbstractValue::range(std::uint32_t lo, std::uint32_t hi) {
  AbstractValue value{lo, hi, tnum_range(lo, hi), false};
  (void)value.normalize();
  return value;
}

bool AbstractValue::consistent() const {
  return lo <= hi && bits.min() <= hi && bits.max() >= lo;
}

bool AbstractValue::normalize() {
  // Interval <- tnum: every concretization lies in [value, value | mask].
  lo = std::max(lo, bits.min());
  hi = std::min(hi, bits.max());
  if (lo > hi) return false;
  // Tnum <- interval: the common leading bits of [lo, hi] are known.
  const auto met = tnum_intersect(bits, tnum_range(lo, hi));
  if (!met) return false;
  bits = *met;
  lo = std::max(lo, bits.min());
  hi = std::min(hi, bits.max());
  if (lo > hi) return false;
  if (lo == hi) bits = Tnum::constant(lo);
  return true;
}

AbstractValue join(const AbstractValue& a, const AbstractValue& b) {
  AbstractValue out;
  out.lo = std::min(a.lo, b.lo);
  out.hi = std::max(a.hi, b.hi);
  out.bits = tnum_join(a.bits, b.bits);
  out.is_len = a.is_len && b.is_len;
  (void)out.normalize();  // join of consistent states stays consistent
  return out;
}

std::string_view to_string(LoadSafety safety) {
  switch (safety) {
    case LoadSafety::safe: return "safe";
    case LoadSafety::may_abort: return "may-abort";
    case LoadSafety::always_aborts: return "always-aborts";
  }
  return "load-safety(?)";
}

bool BpfAnalysis::has_load(LoadSafety safety) const {
  return std::any_of(loads.begin(), loads.end(), [safety](const LoadFact& f) {
    return f.safety == safety;
  });
}

// --- the abstract interpreter -----------------------------------------------

namespace {

bool is_terminal(BpfOp op) {
  return op == BpfOp::ret_accept || op == BpfOp::ret_drop ||
         op == BpfOp::ret_punt;
}

bool is_cond_jump(BpfOp op) {
  return op == BpfOp::jeq || op == BpfOp::jgt || op == BpfOp::jge ||
         op == BpfOp::jset;
}

bool is_shift(BpfOp op) {
  return op == BpfOp::alu_lsh || op == BpfOp::alu_rsh;
}

std::size_t load_width(BpfOp op) {
  switch (op) {
    case BpfOp::ld_abs_u8:
    case BpfOp::ld_ind_u8: return 1;
    case BpfOp::ld_abs_u16:
    case BpfOp::ld_ind_u16: return 2;
    case BpfOp::ld_abs_u32:
    case BpfOp::ld_ind_u32: return 4;
    default: return 0;
  }
}

bool is_indexed_load(BpfOp op) {
  return op == BpfOp::ld_ind_u8 || op == BpfOp::ld_ind_u16 ||
         op == BpfOp::ld_ind_u32;
}

/// Abstract machine state at one program point along one set of paths.
struct State {
  AbstractValue a;
  AbstractValue x;
  /// Frame-size envelope proven along these paths (bytes). Seeded from the
  /// declared [min_frame, max_frame]; branches on ld_len and surviving
  /// packet loads tighten it.
  std::uint64_t min_len = 0;
  std::uint64_t max_len = 0;
};

State join(const State& a, const State& b) {
  return {join(a.a, b.a), join(a.x, b.x), std::min(a.min_len, b.min_len),
          std::max(a.max_len, b.max_len)};
}

// Interval transfers. All wraparound cases collapse conservatively to top
// unless the whole interval wraps together (then the shift is exact mod 2^32).

AbstractValue alu_add_const(AbstractValue v, std::uint32_t k) {
  const std::uint64_t lo = std::uint64_t{v.lo} + k;
  const std::uint64_t hi = std::uint64_t{v.hi} + k;
  if (hi <= 0xffffffffull) {
    v.lo = static_cast<std::uint32_t>(lo);
    v.hi = static_cast<std::uint32_t>(hi);
  } else if (lo > 0xffffffffull) {
    v.lo = static_cast<std::uint32_t>(lo);  // both wrapped once: exact
    v.hi = static_cast<std::uint32_t>(hi);
  } else {
    v.lo = 0;
    v.hi = 0xffffffffu;
  }
  v.bits = tnum_add(v.bits, Tnum::constant(k));
  v.is_len = v.is_len && k == 0;
  (void)v.normalize();
  return v;
}

AbstractValue alu_sub_const(AbstractValue v, std::uint32_t k) {
  if (v.lo >= k) {
    v.lo -= k;
    v.hi -= k;
  } else if (v.hi < k) {
    v.lo -= k;  // both wrap: exact mod 2^32
    v.hi -= k;
  } else {
    v.lo = 0;
    v.hi = 0xffffffffu;
  }
  v.bits = tnum_sub(v.bits, Tnum::constant(k));
  v.is_len = v.is_len && k == 0;
  (void)v.normalize();
  return v;
}

AbstractValue alu_and_const(AbstractValue v, std::uint32_t k) {
  v.lo = 0;
  v.hi = std::min(v.hi, k);  // A & k <= A and <= k
  v.bits = tnum_and(v.bits, Tnum::constant(k));
  v.is_len = v.is_len && k == 0xffffffffu;
  (void)v.normalize();
  return v;
}

AbstractValue alu_or_const(AbstractValue v, std::uint32_t k) {
  // A | k >= max(A, k); A | k = A + (k & ~A) <= A + k.
  v.lo = std::max(v.lo, k);
  v.hi = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(0xffffffffull, std::uint64_t{v.hi} + k));
  v.bits = tnum_or(v.bits, Tnum::constant(k));
  v.is_len = v.is_len && k == 0;
  (void)v.normalize();
  return v;
}

AbstractValue alu_lsh_const(AbstractValue v, std::uint8_t shift) {
  if (shift == 0) return v;
  if (v.hi > (0xffffffffu >> shift)) {
    v = AbstractValue::top();
  } else {
    v.lo <<= shift;
    v.hi <<= shift;
    v.bits = tnum_lshift(v.bits, shift);
  }
  v.is_len = false;
  (void)v.normalize();
  return v;
}

AbstractValue alu_rsh_const(AbstractValue v, std::uint8_t shift) {
  if (shift == 0) return v;
  v.lo >>= shift;
  v.hi >>= shift;
  v.bits = tnum_rshift(v.bits, shift);
  v.is_len = false;
  (void)v.normalize();
  return v;
}

AbstractValue alu_add_reg(const AbstractValue& a, const AbstractValue& b) {
  AbstractValue out;
  const std::uint64_t lo = std::uint64_t{a.lo} + b.lo;
  const std::uint64_t hi = std::uint64_t{a.hi} + b.hi;
  if (hi <= 0xffffffffull || lo > 0xffffffffull) {
    out.lo = static_cast<std::uint32_t>(lo);
    out.hi = static_cast<std::uint32_t>(hi);
  } else {
    out.lo = 0;
    out.hi = 0xffffffffu;
  }
  out.bits = tnum_add(a.bits, b.bits);
  out.is_len = false;
  (void)out.normalize();
  return out;
}

/// Outcome of evaluating a conditional's predicate against the abstract A.
/// Decisions come only from directly sound tests; edge refinements merely
/// tighten and fall back to the unrefined state when they would contradict
/// (so an edge is never pruned by refinement alone).
struct BranchEval {
  bool can_be_true = true;
  bool can_be_false = true;
  State on_true;
  State on_false;
};

void refine_len(State& state, const AbstractValue& a) {
  if (!a.is_len) return;
  state.min_len = std::max<std::uint64_t>(state.min_len, a.lo);
  state.max_len = std::min<std::uint64_t>(state.max_len, a.hi);
}

BranchEval eval_branch(const State& in, BpfOp op, std::uint32_t k) {
  BranchEval eval;
  eval.on_true = in;
  eval.on_false = in;
  const AbstractValue& a = in.a;

  AbstractValue true_a = a;
  AbstractValue false_a = a;
  bool true_ok = true;
  bool false_ok = true;

  switch (op) {
    case BpfOp::jeq:
      if (a.is_constant() && a.lo == k) eval.can_be_false = false;
      if (k < a.lo || k > a.hi || !a.bits.contains(k)) eval.can_be_true = false;
      true_a.lo = true_a.hi = k;
      true_a.bits = Tnum::constant(k);
      true_ok = a.lo <= k && k <= a.hi && a.bits.contains(k);
      if (false_a.lo == k && k < 0xffffffffu) false_a.lo = k + 1;
      if (false_a.hi == k && k > 0) false_a.hi = k - 1;
      false_ok = false_a.normalize();
      break;
    case BpfOp::jgt:
      if (a.lo > k) eval.can_be_false = false;
      if (a.hi <= k) eval.can_be_true = false;
      if (k == 0xffffffffu) {
        true_ok = false;
      } else {
        true_a.lo = std::max(true_a.lo, k + 1);
        true_ok = true_a.normalize();
      }
      false_a.hi = std::min(false_a.hi, k);
      false_ok = false_a.normalize();
      break;
    case BpfOp::jge:
      if (a.lo >= k) eval.can_be_false = false;
      if (a.hi < k) eval.can_be_true = false;
      true_a.lo = std::max(true_a.lo, k);
      true_ok = true_a.normalize();
      if (k == 0) {
        false_ok = false;
      } else {
        false_a.hi = std::min(false_a.hi, k - 1);
        false_ok = false_a.normalize();
      }
      break;
    case BpfOp::jset:
      if ((a.bits.value & k) != 0) eval.can_be_false = false;
      if ((a.bits.max() & k) == 0) eval.can_be_true = false;
      if (std::popcount(k) == 1) {
        // Exactly one tested bit: its value is known on both edges.
        true_a.bits.value |= k;
        true_a.bits.mask &= ~k;
        true_ok = true_a.normalize();
      }
      false_a.bits.mask &= ~k;  // every tested bit is 0 (value bits stay 0)
      false_ok = (false_a.bits.value & k) == 0 && false_a.normalize();
      break;
    default: break;
  }

  // Refinements that contradict a feasible edge fall back to the unrefined
  // state rather than pruning it (decisions above are the only pruning).
  if (true_ok) {
    eval.on_true.a = true_a;
    refine_len(eval.on_true, true_a);
    if (eval.on_true.min_len > eval.on_true.max_len) eval.on_true = in;
  }
  if (false_ok) {
    eval.on_false.a = false_a;
    refine_len(eval.on_false, false_a);
    if (eval.on_false.min_len > eval.on_false.max_len) eval.on_false = in;
  }
  return eval;
}

}  // namespace

BpfVerifier::BpfVerifier(BpfVerifierOptions options) : options_(options) {}

BpfAnalysis BpfVerifier::analyze(const apps::BpfProgram& program) const {
  return analyze(program.code());
}

BpfAnalysis BpfVerifier::analyze(const std::vector<BpfInsn>& code) const {
  BpfAnalysis out;
  out.min_frame_bytes = options_.min_frame_bytes;
  out.max_frame_bytes = options_.max_frame_bytes;

  // Masked shifts are a raw-bytecode property: report them even when the
  // rest of the program is not analyzable.
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    if (is_shift(code[pc].op) && code[pc].k >= 32) {
      out.masked_shifts.push_back({pc, code[pc].k});
    }
  }

  out.valid_structure = apps::BpfProgram::validate_structure(code);
  if (!out.valid_structure) return out;
  out.first_insn_terminal = is_terminal(code.front().op);

  const std::size_t n = code.size();
  std::vector<std::optional<State>> in(n);
  std::vector<bool> feas_true(n, false);
  std::vector<bool> feas_false(n, false);
  std::vector<bool> terminates_here(n, false);  // terminal or aborting load

  State entry;
  entry.min_len = options_.min_frame_bytes;
  entry.max_len = std::max<std::uint64_t>(options_.max_frame_bytes,
                                          options_.min_frame_bytes);
  in[0] = entry;

  const auto propagate = [&in](std::size_t to, const State& state) {
    in[to] = in[to] ? join(*in[to], state) : state;
  };

  // Jumps are forward-only, so pc order is a topological order of the CFG:
  // one in-order pass with joins at targets reaches the fixpoint (the
  // program is a DAG — no loops, hence no widening).
  for (std::size_t pc = 0; pc < n; ++pc) {
    if (!in[pc]) continue;
    State state = *in[pc];
    const BpfInsn& insn = code[pc];

    if (const std::size_t width = load_width(insn.op); width != 0) {
      const AbstractValue index =
          is_indexed_load(insn.op) ? state.x : AbstractValue::constant(0);
      // The interpreter computes `k + X` in uint32 arithmetic, so the
      // offset wraps mod 2^32: exact when the whole interval wraps (or
      // none of it), top when only part does.
      const std::uint64_t at_lo64 = std::uint64_t{insn.k} + index.lo;
      const std::uint64_t at_hi64 = std::uint64_t{insn.k} + index.hi;
      std::uint32_t at_lo = static_cast<std::uint32_t>(at_lo64);
      std::uint32_t at_hi = static_cast<std::uint32_t>(at_hi64);
      if (at_hi64 > 0xffffffffull && at_lo64 <= 0xffffffffull) {
        at_lo = 0;
        at_hi = 0xffffffffu;
      }
      const std::uint64_t end_lo = std::uint64_t{at_lo} + width;
      const std::uint64_t end_hi = std::uint64_t{at_hi} + width;
      LoadFact fact{pc, LoadSafety::safe, end_lo, end_hi};
      if (end_hi <= state.min_len) {
        fact.safety = LoadSafety::safe;
      } else if (end_lo > state.max_len) {
        fact.safety = LoadSafety::always_aborts;
      } else {
        fact.safety = LoadSafety::may_abort;
      }
      out.loads.push_back(fact);
      if (fact.safety != LoadSafety::safe) out.can_drop = true;  // abort path
      if (fact.safety == LoadSafety::always_aborts) {
        terminates_here[pc] = true;
        continue;  // no fall-through: the load drops every packet
      }
      // Surviving the load proves the frame holds at least end_lo bytes.
      state.min_len = std::max(state.min_len, end_lo);
      state.a = width == 1   ? AbstractValue::range(0, 0xff)
                : width == 2 ? AbstractValue::range(0, 0xffff)
                             : AbstractValue::top();
      propagate(pc + 1, state);
      continue;
    }

    switch (insn.op) {
      case BpfOp::ld_imm:
        state.a = AbstractValue::constant(insn.k);
        propagate(pc + 1, state);
        break;
      case BpfOp::ld_len: {
        state.a = AbstractValue::range(
            static_cast<std::uint32_t>(
                std::min<std::uint64_t>(state.min_len, 0xffffffffull)),
            static_cast<std::uint32_t>(
                std::min<std::uint64_t>(state.max_len, 0xffffffffull)));
        state.a.is_len = true;
        propagate(pc + 1, state);
        break;
      }
      case BpfOp::ldx_imm:
        state.x = AbstractValue::constant(insn.k);
        propagate(pc + 1, state);
        break;
      case BpfOp::tax:
        state.x = state.a;
        propagate(pc + 1, state);
        break;
      case BpfOp::txa:
        state.a = state.x;
        propagate(pc + 1, state);
        break;
      case BpfOp::alu_add:
        state.a = alu_add_const(state.a, insn.k);
        propagate(pc + 1, state);
        break;
      case BpfOp::alu_sub:
        state.a = alu_sub_const(state.a, insn.k);
        propagate(pc + 1, state);
        break;
      case BpfOp::alu_and:
        state.a = alu_and_const(state.a, insn.k);
        propagate(pc + 1, state);
        break;
      case BpfOp::alu_or:
        state.a = alu_or_const(state.a, insn.k);
        propagate(pc + 1, state);
        break;
      case BpfOp::alu_lsh:
        state.a = alu_lsh_const(state.a, insn.k & 31);
        propagate(pc + 1, state);
        break;
      case BpfOp::alu_rsh:
        state.a = alu_rsh_const(state.a, insn.k & 31);
        propagate(pc + 1, state);
        break;
      case BpfOp::alu_add_x:
        state.a = alu_add_reg(state.a, state.x);
        propagate(pc + 1, state);
        break;
      case BpfOp::jeq:
      case BpfOp::jgt:
      case BpfOp::jge:
      case BpfOp::jset: {
        const BranchEval eval = eval_branch(state, insn.op, insn.k);
        feas_true[pc] = eval.can_be_true;
        feas_false[pc] = eval.can_be_false;
        if (eval.can_be_true) propagate(pc + 1 + insn.jt, eval.on_true);
        if (eval.can_be_false) propagate(pc + 1 + insn.jf, eval.on_false);
        if (eval.can_be_true != eval.can_be_false) {
          out.decided_branches.push_back({pc, eval.can_be_true});
        }
        break;
      }
      case BpfOp::ja:
        propagate(pc + 1 + insn.k, state);
        break;
      case BpfOp::ret_accept:
        out.can_accept = true;
        terminates_here[pc] = true;
        break;
      case BpfOp::ret_drop:
        out.can_drop = true;
        terminates_here[pc] = true;
        break;
      case BpfOp::ret_punt:
        out.can_punt = true;
        terminates_here[pc] = true;
        break;
      default: break;  // load ops handled above
    }
  }

  out.reachable.resize(n);
  for (std::size_t pc = 0; pc < n; ++pc) {
    out.reachable[pc] = in[pc].has_value();
    if (!out.reachable[pc]) out.dead_pcs.push_back(pc);
  }

  const int verdicts = int(out.can_accept) + int(out.can_drop) + int(out.can_punt);
  if (verdicts == 1) {
    out.constant_verdict = out.can_accept ? ppe::Verdict::forward
                           : out.can_drop ? ppe::Verdict::drop
                                          : ppe::Verdict::to_control_plane;
  }

  // Longest terminating path over the reachable DAG, in reverse pc order.
  std::vector<std::uint64_t> longest(n, 0);
  for (std::size_t i = n; i-- > 0;) {
    if (!out.reachable[i]) continue;
    if (terminates_here[i]) {
      longest[i] = 1;
    } else if (is_cond_jump(code[i].op)) {
      std::uint64_t best = 0;
      if (feas_true[i]) best = std::max(best, longest[i + 1 + code[i].jt]);
      if (feas_false[i]) best = std::max(best, longest[i + 1 + code[i].jf]);
      longest[i] = 1 + best;
    } else if (code[i].op == BpfOp::ja) {
      longest[i] = 1 + longest[i + 1 + code[i].k];
    } else {
      longest[i] = 1 + longest[i + 1];
    }
  }
  out.worst_case_path_cycles = longest[0];
  return out;
}

// --- diagnostics rendering ---------------------------------------------------

namespace {

std::string pc_list(const std::vector<std::size_t>& pcs) {
  std::string out;
  for (std::size_t i = 0; i < pcs.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(pcs[i]);
  }
  return out;
}

}  // namespace

void BpfVerifier::add_diagnostics(const BpfAnalysis& analysis,
                                  std::string_view component,
                                  DiagnosticReport& report) const {
  const std::string where(component);

  // FSL013: masked shift counts (reported even for structurally invalid
  // bytecode — it is a raw-instruction property).
  for (const MaskedShift& shift : analysis.masked_shifts) {
    report.error(
        "FSL013", where,
        "shift count " + std::to_string(shift.count) + " at pc " +
            std::to_string(shift.pc) +
            " is >= 32 and relies on the soft core's implicit '& 31' masking",
        "use a shift count in [0, 31]; BpfProgram::assemble rejects masked "
        "counts");
  }
  if (!analysis.valid_structure) return;

  // FSL009/FSL010: packet-load bounds.
  for (const LoadFact& load : analysis.loads) {
    if (load.safety == LoadSafety::always_aborts) {
      report.error(
          "FSL009", where,
          "packet load at pc " + std::to_string(load.pc) +
              " reads up to byte " + std::to_string(load.end_hi) +
              " but no frame exceeds " +
              std::to_string(analysis.max_frame_bytes) +
              " B: every packet reaching it is dropped",
          "fix the load offset; the instruction can never succeed");
    } else if (load.safety == LoadSafety::may_abort) {
      report.warning(
          "FSL010", where,
          "packet load at pc " + std::to_string(load.pc) +
              " may read up to byte " + std::to_string(load.end_hi) +
              " of a frame only guaranteed to hold " +
              std::to_string(analysis.min_frame_bytes) +
              " B: shorter packets are silently dropped",
          "guard the load behind a ld_len check or raise the declared "
          "minimum frame size");
    }
  }

  // FSL011: dead code.
  if (!analysis.dead_pcs.empty()) {
    report.warning(
        "FSL011", where,
        std::to_string(analysis.dead_pcs.size()) + " instruction" +
            (analysis.dead_pcs.size() == 1 ? " is" : "s are") +
            " unreachable on every path (pc " + pc_list(analysis.dead_pcs) +
            "): dead code wastes instruction memory",
        "remove the dead instructions or fix the jump that was meant to "
        "reach them");
  }

  // FSL012: statically decided branches.
  for (const DecidedBranch& branch : analysis.decided_branches) {
    report.warning(
        "FSL012", where,
        "branch at pc " + std::to_string(branch.pc) + " is " +
            (branch.always_taken ? "always" : "never") +
            " taken: the value analysis decides the condition statically",
        "replace the branch with an unconditional jump, or fix the "
        "condition if both outcomes were intended");
  }

  // FSL014: the path-sensitive constant verdict. The degenerate
  // first-instruction-terminal shape stays FSL007's note; this rule flags
  // programs that *look* like real filters but cannot vary their verdict.
  // (Programs whose only verdict variation is abort-drops on short frames
  // still count as constant for frames >= the declared minimum.)
  if (analysis.constant_verdict.has_value() && !analysis.first_insn_terminal) {
    report.warning(
        "FSL014", where,
        "every reachable path returns '" +
            ppe::to_string(*analysis.constant_verdict) +
            "': the program is a constant filter despite inspecting the "
            "packet",
        "replace it with a one-instruction constant program, or fix the "
        "conditions that were meant to vary the verdict");
  }
}

}  // namespace flexsfp::analysis
