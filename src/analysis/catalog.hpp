// Deployable-design catalog: named, buildable pipeline configurations with
// their expected static-verification verdict. The lint tool iterates this
// catalog (CI runs it with --check-expectations, so a feasible design going
// red AND an infeasible one going green both fail the build); the
// deliberately broken entries double as golden inputs for the rule tests.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "ppe/app.hpp"

namespace flexsfp::analysis {

struct DeployableDesign {
  std::string name;
  std::string description;
  /// Expected verdict: true = verification must produce no error-severity
  /// diagnostics; false = it must produce at least one.
  bool expect_feasible = true;
  /// Build a fresh instance of the composed pipeline.
  std::function<ppe::PpeAppPtr()> build;
};

/// Every catalogued design, feasible and deliberately infeasible.
[[nodiscard]] const std::vector<DeployableDesign>& deployable_designs();

/// Catalog lookup; nullptr when `name` is not catalogued.
[[nodiscard]] const DeployableDesign* find_design(std::string_view name);

}  // namespace flexsfp::analysis
