#include "analysis/diagnostics.hpp"

#include <algorithm>
#include <array>
#include <cstdio>

namespace flexsfp::analysis {

std::string to_string(Severity severity) {
  switch (severity) {
    case Severity::note: return "note";
    case Severity::warning: return "warning";
    case Severity::error: return "error";
  }
  return "unknown";
}

void DiagnosticReport::add(Diagnostic diagnostic) {
  diagnostics_.push_back(std::move(diagnostic));
}

void DiagnosticReport::note(std::string rule, std::string component,
                            std::string message, std::string hint) {
  add({std::move(rule), Severity::note, std::move(component),
       std::move(message), std::move(hint)});
}

void DiagnosticReport::warning(std::string rule, std::string component,
                               std::string message, std::string hint) {
  add({std::move(rule), Severity::warning, std::move(component),
       std::move(message), std::move(hint)});
}

void DiagnosticReport::error(std::string rule, std::string component,
                             std::string message, std::string hint) {
  add({std::move(rule), Severity::error, std::move(component),
       std::move(message), std::move(hint)});
}

void DiagnosticReport::merge(std::string_view prefix,
                             const DiagnosticReport& other) {
  for (const Diagnostic& diagnostic : other.diagnostics_) {
    Diagnostic copy = diagnostic;
    copy.component = std::string(prefix) + "/" + copy.component;
    diagnostics_.push_back(std::move(copy));
  }
}

std::size_t DiagnosticReport::count(Severity severity) const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [severity](const Diagnostic& diagnostic) {
                      return diagnostic.severity == severity;
                    }));
}

std::vector<Diagnostic> DiagnosticReport::by_rule(std::string_view rule) const {
  std::vector<Diagnostic> out;
  for (const Diagnostic& diagnostic : diagnostics_) {
    if (diagnostic.rule == rule) out.push_back(diagnostic);
  }
  return out;
}

std::string DiagnosticReport::to_text() const {
  std::string out;
  for (const Diagnostic& diagnostic : diagnostics_) {
    out += to_string(diagnostic.severity);
    out += "[" + diagnostic.rule + "] ";
    out += diagnostic.component + ": " + diagnostic.message + "\n";
    if (!diagnostic.hint.empty()) {
      out += "    hint: " + diagnostic.hint + "\n";
    }
  }
  return out;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf.data();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string DiagnosticReport::to_json() const {
  std::string out = "{\"diagnostics\":[";
  for (std::size_t i = 0; i < diagnostics_.size(); ++i) {
    const Diagnostic& diagnostic = diagnostics_[i];
    if (i != 0) out += ",";
    out += "{\"rule\":\"" + json_escape(diagnostic.rule) + "\"";
    out += ",\"severity\":\"" + to_string(diagnostic.severity) + "\"";
    out += ",\"component\":\"" + json_escape(diagnostic.component) + "\"";
    out += ",\"message\":\"" + json_escape(diagnostic.message) + "\"";
    out += ",\"hint\":\"" + json_escape(diagnostic.hint) + "\"}";
  }
  out += "],\"errors\":" + std::to_string(count(Severity::error));
  out += ",\"warnings\":" + std::to_string(count(Severity::warning));
  out += ",\"notes\":" + std::to_string(count(Severity::note));
  out += "}";
  return out;
}

}  // namespace flexsfp::analysis
