// Deploy-time static pipeline verifier.
//
// Reproduces the paper's feasibility arithmetic (§5, Tables 1/2) — resource
// fit against a device budget and the width x f_clk >= line-rate inequality
// at minimum-size packets — plus structural sanity of the composed pipeline
// (table geometry, header availability, reachability, counter indexing),
// all from the apps' StageProfile introspection. No simulated cycle runs.
//
// Rule catalog (stable ids; severity is the rule's *maximum*):
//   FSL000 error    bitstream names an unknown app / unbuildable config
//   FSL001 error    aggregate resources exceed the device budget
//                   (note: always reports per-resource utilization)
//   FSL002 error    a stage's per-packet cycle cost breaks line rate at
//                   min-size packets (the bottleneck stage is flagged)
//   FSL003 error    table key wider than the header fields it is built from
//   FSL004 error    a single table outgrows the device's SRAM/FF budget
//                   (warning: zero capacity, oversized TCAM emulation)
//   FSL005 warning  shadowed / duplicate ternary entries that cannot match
//   FSL006 warning  stage reads a header no upstream stage or the wire
//                   provides
//   FSL007 error    stages unreachable behind a constant non-forward verdict
//                   (warning/note: constant verdict with nothing downstream)
//   FSL008 error    counter-bank index beyond the bank's slot count
//                   (CounterBank::add would throw at runtime)
//
// Rules FSL009–FSL014 come from the BPF abstract interpreter
// (analysis::BpfVerifier) run over every soft-core stage's program; their
// "for every packet" claims hold for frames >= bpf_min_frame_bytes:
//   FSL009 error    packet load out of bounds on every frame (the
//                   instruction drops every packet that reaches it)
//   FSL010 warning  packet load not provably in-bounds at the declared
//                   minimum frame size (short packets silently drop)
//   FSL011 warning  instructions unreachable on every path (dead code)
//   FSL012 warning  conditional branch statically decided (an edge is
//                   infeasible)
//   FSL013 error    shift count >= 32 masked by the soft core's '& 31'
//   FSL014 warning  every reachable path returns one verdict (constant
//                   filter despite inspecting the packet)
//
// FSL002 uses the interpreter's longest *terminating* path as a BPF
// stage's per-packet cycle cost instead of the program size, so a program
// whose worst-case path is shorter than its instruction count gets an
// honest budget.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "hw/clock.hpp"
#include "hw/device.hpp"
#include "ppe/introspect.hpp"

namespace flexsfp::hw {
class Bitstream;
}
namespace flexsfp::ppe {
class PpeApp;
}

namespace flexsfp::analysis {

/// One entry of the stable rule catalog above (--list-rules, docs, CI
/// allowlists). Ids are never renumbered; `max_severity` is the worst the
/// rule can report (some downgrade to warning/note in edge cases).
struct RuleInfo {
  std::string_view id;
  Severity max_severity = Severity::error;
  std::string_view summary;
};

/// Every rule the verifier can emit, ordered by id.
[[nodiscard]] const std::vector<RuleInfo>& rule_catalog();

struct VerifierOptions {
  /// Deployment target; the paper's prototype device by default.
  hw::FpgaDevice device = hw::FpgaDevice::mpf200t();
  /// Bus geometry: 64 bit at 156.25 MHz, the prototype datapath.
  hw::DatapathConfig datapath;
  /// Line rate the design must sustain, in bits/second.
  std::uint64_t line_rate_bps = 10'000'000'000ull;
  /// Worst-case (smallest) packet the line-rate inequality is evaluated at.
  std::size_t min_packet_bytes = 64;
  /// Charge the fixed shell IP (Mi-V soft core + both 10G Ethernet
  /// interfaces) against the budget, mirroring the paper's Table 1.
  bool include_shell = true;
  /// Resource fit above this percentage (but still fitting) is a warning.
  double utilization_warning_pct = 90.0;
  /// Frame-size envelope the BPF abstract interpreter proves packet loads
  /// against: "safe" means in-bounds for every frame >= the minimum;
  /// offsets past the maximum can never be read (FSL009).
  std::size_t bpf_min_frame_bytes = 64;
  std::size_t bpf_max_frame_bytes = 9216;
};

class PipelineVerifier {
 public:
  explicit PipelineVerifier(VerifierOptions options = VerifierOptions{});

  [[nodiscard]] const VerifierOptions& options() const { return options_; }

  /// Verify a composed application (a single app or an AppChain).
  [[nodiscard]] DiagnosticReport verify(const ppe::PpeApp& app) const;

  /// Verify what a bitstream would deploy: resolve the app through the
  /// registry (FSL000 on failure), rebuild it from the carried
  /// configuration, then run `verify` on the result.
  [[nodiscard]] DiagnosticReport verify_bitstream(
      const hw::Bitstream& bitstream) const;

 private:
  void check_resources(const ppe::PpeApp& app, DiagnosticReport& report) const;
  /// Run the BPF abstract interpreter over every soft-core stage: emits
  /// FSL009–FSL014 and patches the stage's match_action_cycles (honest
  /// worst-case path for FSL002) and constant_verdict (path-sensitive, for
  /// FSL007) in place.
  void check_bpf_stages(const ppe::PpeApp& app,
                        std::vector<ppe::StageProfile>& stages,
                        DiagnosticReport& report) const;
  void check_line_rate(const std::vector<ppe::StageProfile>& stages,
                       DiagnosticReport& report) const;
  void check_tables(const std::vector<ppe::StageProfile>& stages,
                    DiagnosticReport& report) const;
  void check_pipeline_shape(const std::vector<ppe::StageProfile>& stages,
                            DiagnosticReport& report) const;

  VerifierOptions options_;
};

}  // namespace flexsfp::analysis
