#include "analysis/catalog.hpp"

#include <memory>
#include <utility>

#include "apps/acl.hpp"
#include "apps/bpf_filter.hpp"
#include "apps/chain.hpp"
#include "apps/nat.hpp"
#include "apps/softwire.hpp"
#include "apps/telemetry.hpp"

namespace flexsfp::analysis {

namespace {

ppe::PpeAppPtr build_acl_edge() {
  auto acl = std::make_unique<apps::AclFirewall>();
  // Block telnet and legacy SMB from anywhere; everything else permitted
  // by the default action.
  apps::AclRuleSpec telnet;
  telnet.protocol = 6;
  telnet.dst_port_range = {{23, 23}};
  telnet.action = apps::AclAction::deny;
  telnet.priority = 100;
  (void)acl->add_rule(telnet);
  apps::AclRuleSpec smb;
  smb.protocol = 6;
  smb.dst_port_range = {{445, 445}};
  smb.action = apps::AclAction::deny;
  smb.priority = 90;
  (void)acl->add_rule(smb);
  return acl;
}

ppe::PpeAppPtr build_telemetry_chain() {
  auto chain = std::make_unique<apps::AppChain>();
  chain->append(std::make_unique<apps::IntStamper>(
      apps::IntStamperConfig{.role = apps::StamperRole::source}));
  chain->append(std::make_unique<apps::FlowStats>());
  chain->append(std::make_unique<apps::Sampler>());
  return chain;
}

/// A soft-core program far past the per-packet cycle budget: 47 ALU steps
/// before the terminal — every packet takes 48 sequential cycles.
apps::BpfProgram heavy_program() {
  std::vector<apps::BpfInsn> code;
  for (int i = 0; i < 47; ++i) {
    code.push_back({apps::BpfOp::alu_add, 1, 0, 0});
  }
  code.push_back({apps::BpfOp::ret_accept, 0, 0, 0});
  return *apps::BpfProgram::assemble(std::move(code));
}

/// A load past any admissible frame: `ld_abs_u32 20000` is out of bounds
/// even on a jumbo frame, so the instruction drops every packet reaching
/// it (FSL009).
apps::BpfProgram oob_load_program() {
  return *apps::BpfProgram::assemble({
      {apps::BpfOp::ld_abs_u32, 20000, 0, 0},
      {apps::BpfOp::ret_accept, 0, 0, 0},
  });
}

/// The guarded-deep-load idiom the abstract interpreter exists to admit:
/// a `ld_len` branch proves frames on the load's path are >= 110 bytes, so
/// the byte-100 load is safe even though it is far past the 64-byte
/// minimum frame. Without length tracking this would be a (spurious)
/// FSL010 warning.
apps::BpfProgram guarded_deep_load_program() {
  return *apps::BpfProgram::assemble({
      {apps::BpfOp::ld_len, 0, 0, 0},           // 0: A = frame length
      {apps::BpfOp::jge, 110, 0, 3},            // 1: if A < 110 goto 5
      {apps::BpfOp::ld_abs_u32, 100, 0, 0},     // 2: A = pkt[100..104)
      {apps::BpfOp::jeq, 0xdeadbeefu, 0, 1},    // 3: if A != magic goto 5
      {apps::BpfOp::ret_drop, 0, 0, 0},         // 4
      {apps::BpfOp::ret_accept, 0, 0, 0},       // 5
  });
}

/// The lw4o6 carrier-edge build the paper's feasibility question is asked
/// of: 32768 (ipv4, psid) leases. The 48->128-bit binding table plus the
/// 32->16-bit psid_map land well inside the MPF200T's 616 LSRAM blocks.
ppe::PpeAppPtr build_softwire_edge() {
  apps::LwAftrConfig config;
  config.aftr_addr = *net::Ipv6Address::parse("2001:db8:ffff::1");
  config.icmp_src = net::Ipv4Address::from_octets(192, 0, 2, 1);
  config.binding_capacity = 32768;
  return std::make_unique<apps::LwAftr>(config);
}

/// The same softwire asked to hold a million subscriber leases in one
/// module: the binding table alone wants ~15x the device's LSRAM.
ppe::PpeAppPtr build_softwire_oversized() {
  apps::LwAftrConfig config;
  config.aftr_addr = *net::Ipv6Address::parse("2001:db8:ffff::1");
  config.icmp_src = net::Ipv4Address::from_octets(192, 0, 2, 1);
  config.binding_capacity = 1048576;
  return std::make_unique<apps::LwAftr>(config);
}

ppe::PpeAppPtr build_dead_chain() {
  auto chain = std::make_unique<apps::AppChain>();
  chain->append(std::make_unique<apps::BpfFilter>(
      *apps::BpfProgram::assemble({{apps::BpfOp::ret_drop, 0, 0, 0}})));
  chain->append(std::make_unique<apps::AclFirewall>());
  return chain;
}

std::vector<DeployableDesign> make_catalog() {
  std::vector<DeployableDesign> designs;
  designs.push_back(
      {"nat-paper",
       "the paper's §5.1 case study: static source NAT, 32768 flows in LSRAM",
       true, [] { return std::make_unique<apps::StaticNat>(); }});
  designs.push_back({"acl-edge",
                     "5-tuple edge firewall with telnet/SMB deny rules",
                     true, build_acl_edge});
  designs.push_back(
      {"telnet-filter",
       "BPF soft-core telnet blocker (compact program, fits the cycle budget)",
       true, [] {
         return std::make_unique<apps::BpfFilter>(
             apps::bpf_programs::drop_tcp_dport_compact(23));
       }});
  designs.push_back({"telemetry-chain",
                     "INT source -> flow statistics -> 1-in-N sampler chain",
                     true, build_telemetry_chain});
  designs.push_back(
      {"int-sink-edge",
       "INT sink deployed alone: warns that the shim must arrive from the "
       "wire, but stays deployable",
       true, [] {
         return std::make_unique<apps::IntStamper>(
             apps::IntStamperConfig{.role = apps::StamperRole::sink});
       }});
  designs.push_back(
      {"nat-oversized",
       "NAT with a 524288-flow table: 16x the paper's build, several times "
       "the MPF200T's LSRAM — must be rejected",
       false, [] {
         return std::make_unique<apps::StaticNat>(
             apps::NatConfig{.table_capacity = 524288});
       }});
  designs.push_back(
      {"bpf-heavy-program",
       "48-instruction soft-core program: over the min-size-packet cycle "
       "budget at 10 Gb/s — must be rejected",
       false, [] {
         return std::make_unique<apps::BpfFilter>(heavy_program());
       }});
  designs.push_back(
      {"dead-chain",
       "drop-everything filter in front of an ACL: downstream stage is "
       "unreachable — must be rejected",
       false, build_dead_chain});
  designs.push_back(
      {"bpf-guarded-deep-load",
       "soft-core program whose ld_len guard proves a byte-100 load "
       "in-bounds: the abstract interpreter admits it warning-free",
       true, [] {
         return std::make_unique<apps::BpfFilter>(guarded_deep_load_program());
       }});
  designs.push_back(
      {"bpf-oob-load",
       "soft-core load at byte 20000: out of bounds on every admissible "
       "frame, drops every packet reaching it — must be rejected",
       false, [] {
         return std::make_unique<apps::BpfFilter>(oob_load_program());
       }});
  designs.push_back(
      {"bpf-general-dport",
       "general TCP dport blocker: honest worst-case path (12 cycles) still "
       "breaks the min-size-packet budget — must be rejected",
       false, [] {
         return std::make_unique<apps::BpfFilter>(
             apps::bpf_programs::drop_tcp_dport(23));
       }});
  designs.push_back(
      {"softwire-edge",
       "lw4o6 AFTR with a 32768-lease (ipv4, psid) binding table: the "
       "carrier softwire that fits the cable",
       true, build_softwire_edge});
  designs.push_back(
      {"softwire-oversized",
       "lw4o6 AFTR asked to hold 1M leases in one module: the binding "
       "table alone exceeds the MPF200T's LSRAM — must be rejected",
       false, build_softwire_oversized});
  return designs;
}

}  // namespace

const std::vector<DeployableDesign>& deployable_designs() {
  static const std::vector<DeployableDesign> catalog = make_catalog();
  return catalog;
}

const DeployableDesign* find_design(std::string_view name) {
  for (const DeployableDesign& design : deployable_designs()) {
    if (design.name == name) return &design;
  }
  return nullptr;
}

}  // namespace flexsfp::analysis
