// Per-packet flight recorder: a bounded, allocation-free ring of stage-hop
// events for a deterministic sample of packets.
//
// Hardware telemetry (INT, postcards) records where a packet went, when,
// and how deep the queues were — without ever allocating on the fast path.
// This is the simulated equivalent: components record (packet id, stage,
// hop kind, ps timestamp, queue depth) into a preallocated ring; a
// deterministic 1-in-N sampler keyed off net::PacketId decides which
// packets fly with the recorder on, so a shard-parallel run records exactly
// the packets the sequential oracle would regardless of thread scheduling.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace flexsfp::obs {

/// What happened to the packet at this hop.
enum class HopKind : std::uint8_t {
  emit,        // a traffic source released the packet
  ingress,     // the packet entered a module interface
  dark_drop,   // lost: the module was booting/rebooting/failed
  queue_drop,  // lost: a bounded FIFO overflowed
  serve,       // dequeued into a service element (PPE, arbiter, ...)
  forward,     // app verdict: forward
  app_drop,    // app verdict: drop
  punt,        // app verdict / demux: to the control plane
  transit,     // serialized onto a link
  egress,      // left the module through an egress arbiter
  deliver,     // reached a terminal sink
  fault_drop,    // lost: an injected fault (random loss / flap / targeted)
  fault_corrupt, // bits flipped in transit; packet continues corrupted
  fault_dup,     // an injected duplicate copy was created
  fault_reorder, // held back by an injected reorder window
  degraded,      // forwarded via the degraded passthrough (dumb-cable) path
};

[[nodiscard]] std::string to_string(HopKind kind);

/// One stage-hop record. 32 bytes, POD, ring-resident.
struct HopEvent {
  std::uint64_t packet = 0;   // net::PacketId
  std::int64_t time_ps = 0;   // simulation time of the hop
  std::uint64_t aux = 0;      // kind-specific: service/occupancy time in ps
  std::uint32_t queue_depth = 0;  // queue occupancy observed at the hop
  std::uint16_t stage = 0;    // interned stage name
  HopKind kind = HopKind::emit;

  friend bool operator==(const HopEvent&, const HopEvent&) = default;
};

struct FlightRecorderConfig {
  /// Ring slots; once full the oldest event is overwritten.
  std::size_t capacity = 4096;
  /// Record every packet whose hashed id falls in a 1-in-N class; 0
  /// disables recording entirely (sampled() is then always false).
  std::uint64_t sample_every = 64;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config = {});

  [[nodiscard]] bool enabled() const { return config_.sample_every != 0; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  [[nodiscard]] std::uint64_t sample_every() const {
    return config_.sample_every;
  }
  /// Reconfigure sampling/capacity; clears the ring (tests, CLI).
  void configure(FlightRecorderConfig config);

  /// Intern a stage name; same name returns the same id. Called at
  /// component construction, never on the packet path.
  [[nodiscard]] std::uint16_t register_stage(const std::string& name);
  [[nodiscard]] const std::string& stage_name(std::uint16_t stage) const;
  [[nodiscard]] std::size_t stage_count() const { return stages_.size(); }

  /// Deterministic sampling decision for a packet id: depends only on the
  /// id (hashed, so sampling is unbiased w.r.t. arrival order), never on
  /// time or scheduling.
  [[nodiscard]] bool sampled(std::uint64_t packet_id) const {
    if (config_.sample_every == 0) return false;
    if (config_.sample_every == 1) return true;
    // sample_mask_ short-circuits the runtime modulo for power-of-two N
    // (the default 64): same 1-in-N class, one AND instead of a division
    // on every packet.
    if (sample_mask_ != 0) return (mix(packet_id) & sample_mask_) == 0;
    return mix(packet_id) % config_.sample_every == 0;
  }

  /// Append one hop for an (already sampled) packet. Allocation-free.
  void record(std::uint64_t packet_id, std::uint16_t stage, HopKind kind,
              std::int64_t time_ps, std::uint32_t queue_depth = 0,
              std::uint64_t aux = 0);

  /// Events accepted into the ring since construction/clear.
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  /// Events lost to ring wrap (recorded - retained).
  [[nodiscard]] std::uint64_t overwritten() const {
    return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
  }
  [[nodiscard]] std::size_t retained() const {
    return recorded_ < ring_.size() ? static_cast<std::size_t>(recorded_)
                                    : ring_.size();
  }

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<HopEvent> events() const;
  /// Retained events of one packet, oldest first (its flight path).
  [[nodiscard]] std::vector<HopEvent> trace(std::uint64_t packet_id) const;

  /// {"stages":[...],"events":[{"packet":..,"stage":"ppe",...},...]}
  [[nodiscard]] std::string to_json() const;
  /// Header "packet,time_ps,stage,kind,queue_depth,aux".
  [[nodiscard]] std::string to_csv() const;

  void clear();

 private:
  // splitmix64 finalizer: decorrelates sequential packet ids.
  [[nodiscard]] static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  FlightRecorderConfig config_;
  /// sample_every - 1 when sample_every is a power of two, else 0.
  std::uint64_t sample_mask_ = 0;
  std::vector<HopEvent> ring_;  // preallocated, never resized on record()
  std::size_t head_ = 0;        // next write slot
  std::uint64_t recorded_ = 0;
  std::vector<std::string> stages_;
};

}  // namespace flexsfp::obs
