// The unified metric registry: the one place every layer's counters live.
//
// The paper treats telemetry as a first-class in-cable function (§3), and
// its evaluation is measurement arithmetic end to end — so counters cannot
// stay five bespoke mechanisms scattered across sim/ppe/sfp/fabric. A
// MetricRegistry holds named, labeled counters and gauges
// ("engine.forwarded{app=nat,stage=ppe}") behind integer handles: the hot
// path is one vector-indexed add, registration/snapshotting carry all the
// strings. Snapshots are key-sorted and merge deterministically, so the
// flow-sharded parallel testbed can fold per-shard registries in shard
// order and stay bit-identical to the sequential oracle.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace flexsfp::obs {

/// Label set of one metric series, e.g. {{"app","nat"},{"port","0"}}.
/// Sorted by key when interned so equal sets always render the same key.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind : std::uint8_t {
  counter,  // monotone; merge = sum, diff = subtract
  gauge,    // level/high-watermark; merge = max, diff = keep newer
};

[[nodiscard]] std::string to_string(MetricKind kind);

/// Handle to one registered series. Cheap to copy; add/set through it is a
/// single array access. An invalid (default) id makes add/set a no-op so
/// unbound components cost one branch, not a crash.
struct MetricId {
  static constexpr std::uint32_t invalid = 0xffffffffu;
  std::uint32_t index = invalid;

  [[nodiscard]] bool valid() const { return index != invalid; }
};

/// One series in a snapshot: identity + kind + value.
struct MetricSample {
  std::string name;
  Labels labels;  // sorted by key
  MetricKind kind = MetricKind::counter;
  std::uint64_t value = 0;

  /// Canonical rendering: "name" or "name{k1=v1,k2=v2}".
  [[nodiscard]] std::string key() const;

  friend bool operator==(const MetricSample&, const MetricSample&) = default;
};

[[nodiscard]] std::string metric_key(std::string_view name,
                                     const Labels& labels);

/// Point-in-time, key-sorted view of a registry (plus collector output).
/// Value semantics: merge across shards, diff across time, render to
/// JSON/CSV for machines.
class MetricSnapshot {
 public:
  /// Insert or accumulate (counter: add, gauge: max) one sample.
  void add_sample(MetricSample sample);

  [[nodiscard]] const std::vector<MetricSample>& samples() const {
    return samples_;
  }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool contains(std::string_view key) const;
  /// Value of the series with this exact key; 0 when absent.
  [[nodiscard]] std::uint64_t value(std::string_view key) const;
  /// Sum of every series whose name matches exactly (any labels).
  [[nodiscard]] std::uint64_t sum(std::string_view name) const;

  /// Fold `other` in: counters add, gauges take the max, new keys insert.
  /// Deterministic for a fixed merge order — the shard-merge primitive.
  void merge(const MetricSnapshot& other);
  /// Change since `base`: counters subtract (saturating at 0), gauges keep
  /// this snapshot's value, series absent from `base` pass through.
  [[nodiscard]] MetricSnapshot diff(const MetricSnapshot& base) const;
  /// Copy with `key=value` added to every series' labels (replacing any
  /// existing value) — how per-shard snapshots get their port identity
  /// before merging.
  [[nodiscard]] MetricSnapshot with_label(const std::string& key,
                                          const std::string& value) const;

  /// {"metrics":[{"key":...,"name":...,"labels":{...},"kind":...,
  ///              "value":N},...]}
  [[nodiscard]] std::string to_json() const;
  /// Header "key,kind,value", one series per line. Keys are quoted.
  [[nodiscard]] std::string to_csv() const;

  friend bool operator==(const MetricSnapshot&,
                         const MetricSnapshot&) = default;

 private:
  [[nodiscard]] std::size_t lower_bound_key(std::string_view key) const;

  std::vector<MetricSample> samples_;  // sorted by key()
  std::vector<std::string> keys_;      // parallel cache of sample keys
};

/// The per-simulation registry. Not thread-safe by design: one registry per
/// shard (per sim::Simulation), merged at the join barrier — exactly the
/// FlexSFP scaling model of independent per-port modules.
class MetricRegistry {
 public:
  using Collector = std::function<void(MetricSnapshot&)>;
  using CollectorToken = std::uint64_t;

  /// Register (or find) a counter/gauge series. Same name+labels returns
  /// the same handle — series identity is the rendered key.
  MetricId counter(std::string name, Labels labels = {});
  MetricId gauge(std::string name, Labels labels = {});

  // --- hot path -------------------------------------------------------------
  void add(MetricId id, std::uint64_t delta = 1) {
    if (id.valid()) values_[id.index] += delta;
  }
  void set(MetricId id, std::uint64_t value) {
    if (id.valid()) values_[id.index] = value;
  }
  /// Raise-to-at-least, for high-watermark gauges.
  void set_max(MetricId id, std::uint64_t value) {
    if (id.valid() && values_[id.index] < value) values_[id.index] = value;
  }

  [[nodiscard]] std::uint64_t value(MetricId id) const {
    return id.valid() ? values_[id.index] : 0;
  }
  /// Slow-path read by rendered key; 0 when absent.
  [[nodiscard]] std::uint64_t value(std::string_view key) const;
  void zero(MetricId id) {
    if (id.valid()) values_[id.index] = 0;
  }

  [[nodiscard]] std::size_t series_count() const { return values_.size(); }

  /// Deterministic per-registry instance names: "ppe", "ppe1", "ppe2"...
  /// in construction order, so identically built shards produce identical
  /// keys while two components in one simulation never collide.
  [[nodiscard]] std::string unique_name(const std::string& base);

  /// Collectors pull externally owned tallies (e.g. an app's in-datapath
  /// CounterBank) into every snapshot, so hardware-resident counters are
  /// read through the registry without being double-counted. The token
  /// unregisters when the owner dies.
  CollectorToken register_collector(Collector collector);
  void unregister_collector(CollectorToken token);

  /// All registered series plus collector output, key-sorted.
  [[nodiscard]] MetricSnapshot snapshot() const;

  /// Zero every registered value (registrations and collectors persist).
  void reset_values();

 private:
  struct Meta {
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::counter;
  };

  MetricId intern(std::string name, Labels labels, MetricKind kind);

  std::vector<Meta> meta_;
  std::vector<std::uint64_t> values_;
  std::unordered_map<std::string, std::uint32_t> by_key_;
  std::unordered_map<std::string, std::uint32_t> name_uses_;
  std::vector<std::pair<CollectorToken, Collector>> collectors_;
  CollectorToken next_collector_token_ = 1;
};

}  // namespace flexsfp::obs
