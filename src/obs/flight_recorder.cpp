#include "obs/flight_recorder.hpp"

#include <stdexcept>

namespace flexsfp::obs {

std::string to_string(HopKind kind) {
  switch (kind) {
    case HopKind::emit: return "emit";
    case HopKind::ingress: return "ingress";
    case HopKind::dark_drop: return "dark-drop";
    case HopKind::queue_drop: return "queue-drop";
    case HopKind::serve: return "serve";
    case HopKind::forward: return "forward";
    case HopKind::app_drop: return "app-drop";
    case HopKind::punt: return "punt";
    case HopKind::transit: return "transit";
    case HopKind::egress: return "egress";
    case HopKind::deliver: return "deliver";
    case HopKind::fault_drop: return "fault-drop";
    case HopKind::fault_corrupt: return "fault-corrupt";
    case HopKind::fault_dup: return "fault-dup";
    case HopKind::fault_reorder: return "fault-reorder";
    case HopKind::degraded: return "degraded";
  }
  return "hop(?)";
}

FlightRecorder::FlightRecorder(FlightRecorderConfig config) {
  configure(config);
}

void FlightRecorder::configure(FlightRecorderConfig config) {
  if (config.capacity == 0) config.capacity = 1;
  config_ = config;
  const std::uint64_t n = config_.sample_every;
  sample_mask_ = (n >= 2 && (n & (n - 1)) == 0) ? n - 1 : 0;
  ring_.assign(config_.capacity, HopEvent{});
  head_ = 0;
  recorded_ = 0;
}

std::uint16_t FlightRecorder::register_stage(const std::string& name) {
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (stages_[i] == name) return static_cast<std::uint16_t>(i);
  }
  if (stages_.size() >= 0xffff) {
    throw std::length_error("FlightRecorder: too many stages");
  }
  stages_.push_back(name);
  return static_cast<std::uint16_t>(stages_.size() - 1);
}

const std::string& FlightRecorder::stage_name(std::uint16_t stage) const {
  static const std::string unknown = "stage(?)";
  return stage < stages_.size() ? stages_[stage] : unknown;
}

void FlightRecorder::record(std::uint64_t packet_id, std::uint16_t stage,
                            HopKind kind, std::int64_t time_ps,
                            std::uint32_t queue_depth, std::uint64_t aux) {
  if (!enabled()) return;
  HopEvent& slot = ring_[head_];
  slot.packet = packet_id;
  slot.time_ps = time_ps;
  slot.aux = aux;
  slot.queue_depth = queue_depth;
  slot.stage = stage;
  slot.kind = kind;
  head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
  ++recorded_;
}

std::vector<HopEvent> FlightRecorder::events() const {
  std::vector<HopEvent> out;
  const std::size_t count = retained();
  out.reserve(count);
  // Oldest retained event: at slot 0 until the first wrap, then at head_.
  const std::size_t start = recorded_ <= ring_.size() ? 0 : head_;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::vector<HopEvent> FlightRecorder::trace(std::uint64_t packet_id) const {
  std::vector<HopEvent> out;
  for (const HopEvent& event : events()) {
    if (event.packet == packet_id) out.push_back(event);
  }
  return out;
}

std::string FlightRecorder::to_json() const {
  std::string out = "{\"stages\":[";
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (i != 0) out += ',';
    out += '"' + stages_[i] + '"';
  }
  out += "],\"sample_every\":" + std::to_string(config_.sample_every);
  out += ",\"recorded\":" + std::to_string(recorded_);
  out += ",\"overwritten\":" + std::to_string(overwritten());
  out += ",\"events\":[";
  bool first = true;
  for (const HopEvent& event : events()) {
    if (!first) out += ',';
    first = false;
    out += "{\"packet\":" + std::to_string(event.packet);
    out += ",\"time_ps\":" + std::to_string(event.time_ps);
    out += ",\"stage\":\"" + stage_name(event.stage) + '"';
    out += ",\"kind\":\"" + to_string(event.kind) + '"';
    out += ",\"queue_depth\":" + std::to_string(event.queue_depth);
    out += ",\"aux\":" + std::to_string(event.aux) + "}";
  }
  out += "]}";
  return out;
}

std::string FlightRecorder::to_csv() const {
  std::string out = "packet,time_ps,stage,kind,queue_depth,aux\n";
  for (const HopEvent& event : events()) {
    out += std::to_string(event.packet) + ',' +
           std::to_string(event.time_ps) + ',' + stage_name(event.stage) +
           ',' + to_string(event.kind) + ',' +
           std::to_string(event.queue_depth) + ',' +
           std::to_string(event.aux) + '\n';
  }
  return out;
}

void FlightRecorder::clear() {
  head_ = 0;
  recorded_ = 0;
}

}  // namespace flexsfp::obs
