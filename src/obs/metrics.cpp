#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace flexsfp::obs {

std::string to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::counter: return "counter";
    case MetricKind::gauge: return "gauge";
  }
  return "kind(?)";
}

std::string metric_key(std::string_view name, const Labels& labels) {
  std::string key{name};
  if (labels.empty()) return key;
  key += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) key += ',';
    key += labels[i].first;
    key += '=';
    key += labels[i].second;
  }
  key += '}';
  return key;
}

std::string MetricSample::key() const { return metric_key(name, labels); }

namespace {

Labels sorted_labels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string json_quote(std::string_view text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::size_t MetricSnapshot::lower_bound_key(std::string_view key) const {
  return static_cast<std::size_t>(
      std::lower_bound(keys_.begin(), keys_.end(), key) - keys_.begin());
}

void MetricSnapshot::add_sample(MetricSample sample) {
  sample.labels = sorted_labels(std::move(sample.labels));
  std::string key = sample.key();
  const std::size_t at = lower_bound_key(key);
  if (at < keys_.size() && keys_[at] == key) {
    MetricSample& existing = samples_[at];
    if (existing.kind == MetricKind::counter) {
      existing.value += sample.value;
    } else {
      existing.value = std::max(existing.value, sample.value);
    }
    return;
  }
  samples_.insert(samples_.begin() + static_cast<std::ptrdiff_t>(at),
                  std::move(sample));
  keys_.insert(keys_.begin() + static_cast<std::ptrdiff_t>(at),
               std::move(key));
}

bool MetricSnapshot::contains(std::string_view key) const {
  const std::size_t at = lower_bound_key(key);
  return at < keys_.size() && keys_[at] == key;
}

std::uint64_t MetricSnapshot::value(std::string_view key) const {
  const std::size_t at = lower_bound_key(key);
  return at < keys_.size() && keys_[at] == key ? samples_[at].value : 0;
}

std::uint64_t MetricSnapshot::sum(std::string_view name) const {
  std::uint64_t total = 0;
  for (const MetricSample& sample : samples_) {
    if (sample.name == name) total += sample.value;
  }
  return total;
}

void MetricSnapshot::merge(const MetricSnapshot& other) {
  for (const MetricSample& sample : other.samples_) add_sample(sample);
}

MetricSnapshot MetricSnapshot::diff(const MetricSnapshot& base) const {
  MetricSnapshot out;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    MetricSample d = samples_[i];
    if (d.kind == MetricKind::counter) {
      const std::uint64_t before = base.value(keys_[i]);
      d.value = d.value > before ? d.value - before : 0;
    }
    out.add_sample(std::move(d));
  }
  return out;
}

MetricSnapshot MetricSnapshot::with_label(const std::string& key,
                                          const std::string& value) const {
  MetricSnapshot out;
  for (MetricSample sample : samples_) {
    bool replaced = false;
    for (auto& label : sample.labels) {
      if (label.first == key) {
        label.second = value;
        replaced = true;
        break;
      }
    }
    if (!replaced) sample.labels.emplace_back(key, value);
    out.add_sample(std::move(sample));
  }
  return out;
}

std::string MetricSnapshot::to_json() const {
  std::string out = "{\"metrics\":[";
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const MetricSample& sample = samples_[i];
    if (i != 0) out += ',';
    out += "{\"key\":" + json_quote(keys_[i]);
    out += ",\"name\":" + json_quote(sample.name);
    out += ",\"labels\":{";
    for (std::size_t j = 0; j < sample.labels.size(); ++j) {
      if (j != 0) out += ',';
      out += json_quote(sample.labels[j].first) + ":" +
             json_quote(sample.labels[j].second);
    }
    out += "},\"kind\":" + json_quote(to_string(sample.kind));
    out += ",\"value\":" + std::to_string(sample.value) + "}";
  }
  out += "]}";
  return out;
}

std::string MetricSnapshot::to_csv() const {
  std::string out = "key,kind,value\n";
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    out += '"' + keys_[i] + "\"," + to_string(samples_[i].kind) + ',' +
           std::to_string(samples_[i].value) + '\n';
  }
  return out;
}

MetricId MetricRegistry::intern(std::string name, Labels labels,
                                MetricKind kind) {
  labels = sorted_labels(std::move(labels));
  std::string key = metric_key(name, labels);
  const auto found = by_key_.find(key);
  if (found != by_key_.end()) {
    if (meta_[found->second].kind != kind) {
      throw std::invalid_argument("metric '" + key +
                                  "' re-registered with a different kind");
    }
    return MetricId{found->second};
  }
  const auto index = static_cast<std::uint32_t>(values_.size());
  meta_.push_back(Meta{std::move(name), std::move(labels), kind});
  values_.push_back(0);
  by_key_.emplace(std::move(key), index);
  return MetricId{index};
}

MetricId MetricRegistry::counter(std::string name, Labels labels) {
  return intern(std::move(name), std::move(labels), MetricKind::counter);
}

MetricId MetricRegistry::gauge(std::string name, Labels labels) {
  return intern(std::move(name), std::move(labels), MetricKind::gauge);
}

std::uint64_t MetricRegistry::value(std::string_view key) const {
  const auto found = by_key_.find(std::string{key});
  return found != by_key_.end() ? values_[found->second] : 0;
}

std::string MetricRegistry::unique_name(const std::string& base) {
  const std::uint32_t uses = name_uses_[base]++;
  return uses == 0 ? base : base + std::to_string(uses);
}

MetricRegistry::CollectorToken MetricRegistry::register_collector(
    Collector collector) {
  const CollectorToken token = next_collector_token_++;
  collectors_.emplace_back(token, std::move(collector));
  return token;
}

void MetricRegistry::unregister_collector(CollectorToken token) {
  std::erase_if(collectors_,
                [token](const auto& entry) { return entry.first == token; });
}

MetricSnapshot MetricRegistry::snapshot() const {
  MetricSnapshot out;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    out.add_sample(MetricSample{meta_[i].name, meta_[i].labels, meta_[i].kind,
                                values_[i]});
  }
  for (const auto& [token, collector] : collectors_) collector(out);
  return out;
}

void MetricRegistry::reset_values() {
  std::fill(values_.begin(), values_.end(), 0);
}

}  // namespace flexsfp::obs
