#include "ppe/introspect.hpp"

namespace flexsfp::ppe {

std::string to_string(HeaderKind kind) {
  switch (kind) {
    case HeaderKind::ethernet: return "ethernet";
    case HeaderKind::vlan: return "vlan";
    case HeaderKind::ipv4: return "ipv4";
    case HeaderKind::ipv6: return "ipv6";
    case HeaderKind::tcp: return "tcp";
    case HeaderKind::udp: return "udp";
    case HeaderKind::icmp: return "icmp";
    case HeaderKind::gre: return "gre";
    case HeaderKind::vxlan: return "vxlan";
    case HeaderKind::telemetry_shim: return "telemetry-shim";
  }
  return "unknown";
}

std::uint32_t header_field_bits(HeaderKind kind) {
  switch (kind) {
    case HeaderKind::ethernet: return 14 * 8;        // dst+src+ethertype
    case HeaderKind::vlan: return 4 * 8;             // TPID+TCI
    case HeaderKind::ipv4: return 20 * 8;            // base header
    case HeaderKind::ipv6: return 40 * 8;
    case HeaderKind::tcp: return 20 * 8;
    case HeaderKind::udp: return 8 * 8;
    case HeaderKind::icmp: return 8 * 8;
    case HeaderKind::gre: return 4 * 8;
    case HeaderKind::vxlan: return 8 * 8;
    case HeaderKind::telemetry_shim: return 12 * 8;
  }
  return 0;
}

std::vector<std::string> header_set_names(HeaderSet set) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < header_kind_count; ++i) {
    const auto kind = static_cast<HeaderKind>(i);
    if ((set & header_bit(kind)) != 0) names.push_back(to_string(kind));
  }
  return names;
}

std::string to_string(TableKind kind) {
  switch (kind) {
    case TableKind::exact_match: return "exact-match";
    case TableKind::ternary: return "ternary";
    case TableKind::lpm: return "lpm";
  }
  return "unknown";
}

}  // namespace flexsfp::ppe
