// The Packet Processing Engine execution model.
//
// The engine streams packets through the app on a `DatapathConfig` bus:
// a packet of N bytes occupies the pipe for ceil(N / width) bus beats
// (back-to-back packets overlap in the pipeline, so occupancy — not
// pipeline depth — bounds throughput), and leaves the engine
// pipeline_latency_cycles() later. This reproduces the paper's line-rate
// arithmetic: 64 bit x 156.25 MHz = 10 Gb/s of bus bandwidth.
#pragma once

#include <functional>

#include "hw/clock.hpp"
#include "ppe/app.hpp"
#include "sim/link.hpp"
#include "sim/stats.hpp"

namespace flexsfp::ppe {

class Engine final : public sim::QueuedServer {
 public:
  /// `queue_capacity` models the ingress store-and-forward FIFO in packets.
  Engine(sim::Simulation& sim, PpeAppPtr app, hw::DatapathConfig datapath,
         std::size_t queue_capacity = 64);

  /// Where forwarded packets go (set by the architecture shell).
  void set_forward_handler(std::function<void(net::PacketPtr)> handler) {
    forward_ = std::move(handler);
  }
  /// Where control-plane punts go.
  void set_control_handler(std::function<void(net::PacketPtr)> handler) {
    control_ = std::move(handler);
  }

  [[nodiscard]] PpeApp& app() { return *app_; }
  [[nodiscard]] const PpeApp& app() const { return *app_; }
  /// Swap the running application (reconfiguration); packets already queued
  /// are processed by the new app, as after a partial-reconfig swap.
  void replace_app(PpeAppPtr app);

  [[nodiscard]] const hw::DatapathConfig& datapath() const { return datapath_; }

  [[nodiscard]] std::uint64_t forwarded() const { return forwarded_; }
  [[nodiscard]] std::uint64_t dropped_by_app() const { return dropped_; }
  [[nodiscard]] std::uint64_t punted() const { return punted_; }
  /// Queue-full losses are on the base class: drops().

  /// Engine-internal latency (queue wait + streaming + pipeline depth).
  [[nodiscard]] const sim::LatencyHistogram& latency() const {
    return latency_;
  }

 protected:
  [[nodiscard]] sim::TimePs service_time(const net::Packet& packet) override;
  void finish(net::PacketPtr packet) override;

 private:
  PpeAppPtr app_;
  hw::DatapathConfig datapath_;
  std::function<void(net::PacketPtr)> forward_;
  std::function<void(net::PacketPtr)> control_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t punted_ = 0;
  sim::LatencyHistogram latency_;
};

}  // namespace flexsfp::ppe
