// The Packet Processing Engine execution model.
//
// The engine streams packets through the app on a `DatapathConfig` bus:
// a packet of N bytes occupies the pipe for ceil(N / width) bus beats
// (back-to-back packets overlap in the pipeline, so occupancy — not
// pipeline depth — bounds throughput), and leaves the engine
// pipeline_latency_cycles() later. This reproduces the paper's line-rate
// arithmetic: 64 bit x 156.25 MHz = 10 Gb/s of bus bandwidth.
#pragma once

#include <functional>

#include "hw/clock.hpp"
#include "ppe/app.hpp"
#include "sim/link.hpp"
#include "sim/stats.hpp"

namespace flexsfp::ppe {

class Engine final : public sim::QueuedServer {
 public:
  /// `queue_capacity` models the ingress store-and-forward FIFO in packets.
  Engine(sim::Simulation& sim, PpeAppPtr app, hw::DatapathConfig datapath,
         std::size_t queue_capacity = 64);
  ~Engine() override;

  /// Where forwarded packets go (set by the architecture shell).
  void set_forward_handler(std::function<void(net::PacketPtr)> handler) {
    forward_ = std::move(handler);
  }
  /// Where control-plane punts go.
  void set_control_handler(std::function<void(net::PacketPtr)> handler) {
    control_ = std::move(handler);
  }

  [[nodiscard]] PpeApp& app() { return *app_; }
  [[nodiscard]] const PpeApp& app() const { return *app_; }
  /// Swap the running application (reconfiguration); packets already queued
  /// are processed by the new app, as after a partial-reconfig swap.
  void replace_app(PpeAppPtr app);

  [[nodiscard]] const hw::DatapathConfig& datapath() const { return datapath_; }

  // Verdict tallies live in the registry as engine.forwarded /
  // engine.app_drops / engine.punted, labeled {app=<name>,stage=<ppe>}; app
  // swaps open a fresh series per app name, and these accessors sum across
  // every app this engine has run.
  [[nodiscard]] std::uint64_t forwarded() const { return sum(forwarded_ids_); }
  [[nodiscard]] std::uint64_t dropped_by_app() const {
    return sum(dropped_ids_);
  }
  [[nodiscard]] std::uint64_t punted() const { return sum(punted_ids_); }
  /// Queue-full losses are on the base class: drops().

  /// Engine-internal latency (queue wait + streaming + pipeline depth).
  [[nodiscard]] const sim::LatencyHistogram& latency() const {
    return latency_;
  }

 protected:
  [[nodiscard]] sim::TimePs service_time(const net::Packet& packet) override;
  void finish(net::PacketPtr packet) override;

 private:
  /// (Re)intern the verdict series for the current app's label set.
  void bind_app_series();
  /// Push the live app's CounterBank snapshots into a registry snapshot.
  void collect_app_counters(obs::MetricSnapshot& snap) const;
  [[nodiscard]] std::uint64_t sum(const std::vector<obs::MetricId>& ids) const;

  PpeAppPtr app_;
  hw::DatapathConfig datapath_;
  // One-entry memo over the size -> service-time arithmetic (cycles_to_time
  // divides to derive the cycle period); sizes repeat across packets.
  std::size_t last_size_ = ~std::size_t{0};
  sim::TimePs last_service_ = 0;
  // Pipeline-drain latency is a property of the app, not the packet; cached
  // at bind time so finish() doesn't redo the cycles_to_time division per
  // packet.
  sim::TimePs drain_ = 0;
  std::function<void(net::PacketPtr)> forward_;
  std::function<void(net::PacketPtr)> control_;
  sim::LatencyHistogram latency_;
  obs::MetricId forwarded_id_;
  obs::MetricId dropped_id_;
  obs::MetricId punted_id_;
  std::vector<obs::MetricId> forwarded_ids_;
  std::vector<obs::MetricId> dropped_ids_;
  std::vector<obs::MetricId> punted_ids_;
  obs::MetricRegistry::CollectorToken collector_token_ = 0;
};

}  // namespace flexsfp::ppe
